# Empty dependencies file for test_doppelganger.
# This may be replaced when dependencies are built.
