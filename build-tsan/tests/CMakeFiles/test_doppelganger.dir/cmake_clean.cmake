file(REMOVE_RECURSE
  "CMakeFiles/test_doppelganger.dir/test_doppelganger.cpp.o"
  "CMakeFiles/test_doppelganger.dir/test_doppelganger.cpp.o.d"
  "test_doppelganger"
  "test_doppelganger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doppelganger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
