file(REMOVE_RECURSE
  "CMakeFiles/test_gan_extra.dir/test_gan_extra.cpp.o"
  "CMakeFiles/test_gan_extra.dir/test_gan_extra.cpp.o.d"
  "test_gan_extra"
  "test_gan_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gan_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
