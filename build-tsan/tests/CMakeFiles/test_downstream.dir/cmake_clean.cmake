file(REMOVE_RECURSE
  "CMakeFiles/test_downstream.dir/test_downstream.cpp.o"
  "CMakeFiles/test_downstream.dir/test_downstream.cpp.o.d"
  "test_downstream"
  "test_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
