# Empty dependencies file for test_downstream.
# This may be replaced when dependencies are built.
