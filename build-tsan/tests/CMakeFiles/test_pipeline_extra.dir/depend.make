# Empty dependencies file for test_pipeline_extra.
# This may be replaced when dependencies are built.
