file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_extra.dir/test_pipeline_extra.cpp.o"
  "CMakeFiles/test_pipeline_extra.dir/test_pipeline_extra.cpp.o.d"
  "test_pipeline_extra"
  "test_pipeline_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
