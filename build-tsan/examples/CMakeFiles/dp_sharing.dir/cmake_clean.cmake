file(REMOVE_RECURSE
  "CMakeFiles/dp_sharing.dir/dp_sharing.cpp.o"
  "CMakeFiles/dp_sharing.dir/dp_sharing.cpp.o.d"
  "dp_sharing"
  "dp_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
