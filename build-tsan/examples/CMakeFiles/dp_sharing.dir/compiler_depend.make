# Empty compiler generated dependencies file for dp_sharing.
# This may be replaced when dependencies are built.
