file(REMOVE_RECURSE
  "CMakeFiles/telemetry_eval.dir/telemetry_eval.cpp.o"
  "CMakeFiles/telemetry_eval.dir/telemetry_eval.cpp.o.d"
  "telemetry_eval"
  "telemetry_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
