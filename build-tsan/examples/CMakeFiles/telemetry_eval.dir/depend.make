# Empty dependencies file for telemetry_eval.
# This may be replaced when dependencies are built.
