file(REMOVE_RECURSE
  "CMakeFiles/pcap_synthesis.dir/pcap_synthesis.cpp.o"
  "CMakeFiles/pcap_synthesis.dir/pcap_synthesis.cpp.o.d"
  "pcap_synthesis"
  "pcap_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
