# Empty compiler generated dependencies file for pcap_synthesis.
# This may be replaced when dependencies are built.
