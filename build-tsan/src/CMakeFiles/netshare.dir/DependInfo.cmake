
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/netshare.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stopwatch.cpp" "src/CMakeFiles/netshare.dir/common/stopwatch.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/common/stopwatch.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/netshare.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/netshare.cpp" "src/CMakeFiles/netshare.dir/core/netshare.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/core/netshare.cpp.o.d"
  "/root/repo/src/core/postprocess.cpp" "src/CMakeFiles/netshare.dir/core/postprocess.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/core/postprocess.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/CMakeFiles/netshare.dir/core/preprocess.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/core/preprocess.cpp.o.d"
  "/root/repo/src/core/train.cpp" "src/CMakeFiles/netshare.dir/core/train.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/core/train.cpp.o.d"
  "/root/repo/src/datagen/attacks.cpp" "src/CMakeFiles/netshare.dir/datagen/attacks.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/datagen/attacks.cpp.o.d"
  "/root/repo/src/datagen/distributions.cpp" "src/CMakeFiles/netshare.dir/datagen/distributions.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/datagen/distributions.cpp.o.d"
  "/root/repo/src/datagen/presets.cpp" "src/CMakeFiles/netshare.dir/datagen/presets.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/datagen/presets.cpp.o.d"
  "/root/repo/src/datagen/workload.cpp" "src/CMakeFiles/netshare.dir/datagen/workload.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/datagen/workload.cpp.o.d"
  "/root/repo/src/downstream/classifier.cpp" "src/CMakeFiles/netshare.dir/downstream/classifier.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/classifier.cpp.o.d"
  "/root/repo/src/downstream/decision_tree.cpp" "src/CMakeFiles/netshare.dir/downstream/decision_tree.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/decision_tree.cpp.o.d"
  "/root/repo/src/downstream/features.cpp" "src/CMakeFiles/netshare.dir/downstream/features.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/features.cpp.o.d"
  "/root/repo/src/downstream/gradient_boosting.cpp" "src/CMakeFiles/netshare.dir/downstream/gradient_boosting.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/gradient_boosting.cpp.o.d"
  "/root/repo/src/downstream/logistic_regression.cpp" "src/CMakeFiles/netshare.dir/downstream/logistic_regression.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/logistic_regression.cpp.o.d"
  "/root/repo/src/downstream/mlp_classifier.cpp" "src/CMakeFiles/netshare.dir/downstream/mlp_classifier.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/mlp_classifier.cpp.o.d"
  "/root/repo/src/downstream/netml.cpp" "src/CMakeFiles/netshare.dir/downstream/netml.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/netml.cpp.o.d"
  "/root/repo/src/downstream/ocsvm.cpp" "src/CMakeFiles/netshare.dir/downstream/ocsvm.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/ocsvm.cpp.o.d"
  "/root/repo/src/downstream/random_forest.cpp" "src/CMakeFiles/netshare.dir/downstream/random_forest.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/downstream/random_forest.cpp.o.d"
  "/root/repo/src/embed/bit_encoding.cpp" "src/CMakeFiles/netshare.dir/embed/bit_encoding.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/embed/bit_encoding.cpp.o.d"
  "/root/repo/src/embed/ip2vec.cpp" "src/CMakeFiles/netshare.dir/embed/ip2vec.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/embed/ip2vec.cpp.o.d"
  "/root/repo/src/embed/transforms.cpp" "src/CMakeFiles/netshare.dir/embed/transforms.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/embed/transforms.cpp.o.d"
  "/root/repo/src/eval/fidelity.cpp" "src/CMakeFiles/netshare.dir/eval/fidelity.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/eval/fidelity.cpp.o.d"
  "/root/repo/src/eval/harness.cpp" "src/CMakeFiles/netshare.dir/eval/harness.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/eval/harness.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/netshare.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/eval/report.cpp.o.d"
  "/root/repo/src/gan/ctgan.cpp" "src/CMakeFiles/netshare.dir/gan/ctgan.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/ctgan.cpp.o.d"
  "/root/repo/src/gan/doppelganger.cpp" "src/CMakeFiles/netshare.dir/gan/doppelganger.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/doppelganger.cpp.o.d"
  "/root/repo/src/gan/ewgan_gp.cpp" "src/CMakeFiles/netshare.dir/gan/ewgan_gp.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/ewgan_gp.cpp.o.d"
  "/root/repo/src/gan/packet_gans.cpp" "src/CMakeFiles/netshare.dir/gan/packet_gans.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/packet_gans.cpp.o.d"
  "/root/repo/src/gan/stan.cpp" "src/CMakeFiles/netshare.dir/gan/stan.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/stan.cpp.o.d"
  "/root/repo/src/gan/tabular_gan.cpp" "src/CMakeFiles/netshare.dir/gan/tabular_gan.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/tabular_gan.cpp.o.d"
  "/root/repo/src/gan/timeseries.cpp" "src/CMakeFiles/netshare.dir/gan/timeseries.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/gan/timeseries.cpp.o.d"
  "/root/repo/src/metrics/consistency.cpp" "src/CMakeFiles/netshare.dir/metrics/consistency.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/metrics/consistency.cpp.o.d"
  "/root/repo/src/metrics/divergence.cpp" "src/CMakeFiles/netshare.dir/metrics/divergence.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/metrics/divergence.cpp.o.d"
  "/root/repo/src/metrics/field_metrics.cpp" "src/CMakeFiles/netshare.dir/metrics/field_metrics.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/metrics/field_metrics.cpp.o.d"
  "/root/repo/src/metrics/rank.cpp" "src/CMakeFiles/netshare.dir/metrics/rank.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/metrics/rank.cpp.o.d"
  "/root/repo/src/ml/gru.cpp" "src/CMakeFiles/netshare.dir/ml/gru.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/gru.cpp.o.d"
  "/root/repo/src/ml/kernels.cpp" "src/CMakeFiles/netshare.dir/ml/kernels.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/kernels.cpp.o.d"
  "/root/repo/src/ml/layers.cpp" "src/CMakeFiles/netshare.dir/ml/layers.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/layers.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/CMakeFiles/netshare.dir/ml/loss.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/loss.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/CMakeFiles/netshare.dir/ml/matrix.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/matrix.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/netshare.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/optim.cpp" "src/CMakeFiles/netshare.dir/ml/optim.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/optim.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/CMakeFiles/netshare.dir/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/ml/serialize.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/netshare.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/five_tuple.cpp" "src/CMakeFiles/netshare.dir/net/five_tuple.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/five_tuple.cpp.o.d"
  "/root/repo/src/net/flow_collector.cpp" "src/CMakeFiles/netshare.dir/net/flow_collector.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/flow_collector.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/netshare.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/netflow_io.cpp" "src/CMakeFiles/netshare.dir/net/netflow_io.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/netflow_io.cpp.o.d"
  "/root/repo/src/net/pcap_io.cpp" "src/CMakeFiles/netshare.dir/net/pcap_io.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/pcap_io.cpp.o.d"
  "/root/repo/src/net/ports.cpp" "src/CMakeFiles/netshare.dir/net/ports.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/ports.cpp.o.d"
  "/root/repo/src/net/records.cpp" "src/CMakeFiles/netshare.dir/net/records.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/records.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/netshare.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/net/trace.cpp.o.d"
  "/root/repo/src/privacy/accountant.cpp" "src/CMakeFiles/netshare.dir/privacy/accountant.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/privacy/accountant.cpp.o.d"
  "/root/repo/src/privacy/dp_sgd.cpp" "src/CMakeFiles/netshare.dir/privacy/dp_sgd.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/privacy/dp_sgd.cpp.o.d"
  "/root/repo/src/sketch/count_min.cpp" "src/CMakeFiles/netshare.dir/sketch/count_min.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/sketch/count_min.cpp.o.d"
  "/root/repo/src/sketch/count_sketch.cpp" "src/CMakeFiles/netshare.dir/sketch/count_sketch.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/sketch/count_sketch.cpp.o.d"
  "/root/repo/src/sketch/heavy_hitter.cpp" "src/CMakeFiles/netshare.dir/sketch/heavy_hitter.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/sketch/heavy_hitter.cpp.o.d"
  "/root/repo/src/sketch/nitrosketch.cpp" "src/CMakeFiles/netshare.dir/sketch/nitrosketch.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/sketch/nitrosketch.cpp.o.d"
  "/root/repo/src/sketch/univmon.cpp" "src/CMakeFiles/netshare.dir/sketch/univmon.cpp.o" "gcc" "src/CMakeFiles/netshare.dir/sketch/univmon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
