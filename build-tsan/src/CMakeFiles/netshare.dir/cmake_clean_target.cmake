file(REMOVE_RECURSE
  "libnetshare.a"
)
