# Empty dependencies file for netshare.
# This may be replaced when dependencies are built.
