file(REMOVE_RECURSE
  "CMakeFiles/fig10_fidelity.dir/fig10_fidelity.cpp.o"
  "CMakeFiles/fig10_fidelity.dir/fig10_fidelity.cpp.o.d"
  "fig10_fidelity"
  "fig10_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
