# Empty compiler generated dependencies file for fig10_fidelity.
# This may be replaced when dependencies are built.
