# Empty dependencies file for fig01_flow_length.
# This may be replaced when dependencies are built.
