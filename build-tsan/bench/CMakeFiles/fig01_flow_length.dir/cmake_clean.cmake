file(REMOVE_RECURSE
  "CMakeFiles/fig01_flow_length.dir/fig01_flow_length.cpp.o"
  "CMakeFiles/fig01_flow_length.dir/fig01_flow_length.cpp.o.d"
  "fig01_flow_length"
  "fig01_flow_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_flow_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
