# Empty compiler generated dependencies file for fig02_large_support.
# This may be replaced when dependencies are built.
