file(REMOVE_RECURSE
  "CMakeFiles/fig02_large_support.dir/fig02_large_support.cpp.o"
  "CMakeFiles/fig02_large_support.dir/fig02_large_support.cpp.o.d"
  "fig02_large_support"
  "fig02_large_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_large_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
