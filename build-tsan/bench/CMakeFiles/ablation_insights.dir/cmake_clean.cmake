file(REMOVE_RECURSE
  "CMakeFiles/ablation_insights.dir/ablation_insights.cpp.o"
  "CMakeFiles/ablation_insights.dir/ablation_insights.cpp.o.d"
  "ablation_insights"
  "ablation_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
