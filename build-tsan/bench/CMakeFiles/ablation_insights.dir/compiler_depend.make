# Empty compiler generated dependencies file for ablation_insights.
# This may be replaced when dependencies are built.
