file(REMOVE_RECURSE
  "CMakeFiles/fig13_sketch.dir/fig13_sketch.cpp.o"
  "CMakeFiles/fig13_sketch.dir/fig13_sketch.cpp.o.d"
  "fig13_sketch"
  "fig13_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
