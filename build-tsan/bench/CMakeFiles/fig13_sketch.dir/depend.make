# Empty dependencies file for fig13_sketch.
# This may be replaced when dependencies are built.
