# Empty dependencies file for fig05_privacy.
# This may be replaced when dependencies are built.
