file(REMOVE_RECURSE
  "CMakeFiles/fig05_privacy.dir/fig05_privacy.cpp.o"
  "CMakeFiles/fig05_privacy.dir/fig05_privacy.cpp.o.d"
  "fig05_privacy"
  "fig05_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
