# Empty dependencies file for fig16_17_more_fidelity.
# This may be replaced when dependencies are built.
