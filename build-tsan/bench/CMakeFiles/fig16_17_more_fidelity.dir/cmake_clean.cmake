file(REMOVE_RECURSE
  "CMakeFiles/fig16_17_more_fidelity.dir/fig16_17_more_fidelity.cpp.o"
  "CMakeFiles/fig16_17_more_fidelity.dir/fig16_17_more_fidelity.cpp.o.d"
  "fig16_17_more_fidelity"
  "fig16_17_more_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_more_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
