file(REMOVE_RECURSE
  "CMakeFiles/fig04_scalability.dir/fig04_scalability.cpp.o"
  "CMakeFiles/fig04_scalability.dir/fig04_scalability.cpp.o.d"
  "fig04_scalability"
  "fig04_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
