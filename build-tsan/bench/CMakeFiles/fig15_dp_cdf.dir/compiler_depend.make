# Empty compiler generated dependencies file for fig15_dp_cdf.
# This may be replaced when dependencies are built.
