file(REMOVE_RECURSE
  "CMakeFiles/fig14_netml.dir/fig14_netml.cpp.o"
  "CMakeFiles/fig14_netml.dir/fig14_netml.cpp.o.d"
  "fig14_netml"
  "fig14_netml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_netml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
