# Empty dependencies file for fig14_netml.
# This may be replaced when dependencies are built.
