# Empty dependencies file for fig12_prediction.
# This may be replaced when dependencies are built.
