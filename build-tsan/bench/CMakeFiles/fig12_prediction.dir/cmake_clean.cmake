file(REMOVE_RECURSE
  "CMakeFiles/fig12_prediction.dir/fig12_prediction.cpp.o"
  "CMakeFiles/fig12_prediction.dir/fig12_prediction.cpp.o.d"
  "fig12_prediction"
  "fig12_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
