file(REMOVE_RECURSE
  "CMakeFiles/fig03_top_ports.dir/fig03_top_ports.cpp.o"
  "CMakeFiles/fig03_top_ports.dir/fig03_top_ports.cpp.o.d"
  "fig03_top_ports"
  "fig03_top_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_top_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
