# Empty compiler generated dependencies file for fig03_top_ports.
# This may be replaced when dependencies are built.
