file(REMOVE_RECURSE
  "CMakeFiles/table06_07_consistency.dir/table06_07_consistency.cpp.o"
  "CMakeFiles/table06_07_consistency.dir/table06_07_consistency.cpp.o.d"
  "table06_07_consistency"
  "table06_07_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_07_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
