# Empty dependencies file for table06_07_consistency.
# This may be replaced when dependencies are built.
