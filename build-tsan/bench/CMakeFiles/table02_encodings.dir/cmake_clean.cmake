file(REMOVE_RECURSE
  "CMakeFiles/table02_encodings.dir/table02_encodings.cpp.o"
  "CMakeFiles/table02_encodings.dir/table02_encodings.cpp.o.d"
  "table02_encodings"
  "table02_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
