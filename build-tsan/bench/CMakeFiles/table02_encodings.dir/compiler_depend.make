# Empty compiler generated dependencies file for table02_encodings.
# This may be replaced when dependencies are built.
