// Telemetry-algorithm evaluation on synthetic data (the paper's motivating
// scenario #1): a data holder shares a NetShare-generated trace; a consumer
// uses it to choose between sketching algorithms for heavy-hitter detection.
// We verify that the consumer's choice on synthetic data matches the choice
// they would have made on the real (unshared) data.
#include <iostream>
#include <memory>

#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/heavy_hitter.hpp"
#include "sketch/nitrosketch.hpp"
#include "sketch/univmon.hpp"

using namespace netshare;

namespace {

// Candidate provisioning options a consumer might compare.
std::vector<std::pair<std::string, std::unique_ptr<sketch::Sketch>>>
candidates(std::uint64_t seed) {
  std::vector<std::pair<std::string, std::unique_ptr<sketch::Sketch>>> v;
  v.emplace_back("CMS 4x512",
                 std::make_unique<sketch::CountMinSketch>(4, 512, seed));
  v.emplace_back("CMS 2x128",
                 std::make_unique<sketch::CountMinSketch>(2, 128, seed));
  v.emplace_back("CS 4x512",
                 std::make_unique<sketch::CountSketch>(4, 512, seed));
  v.emplace_back("UnivMon 4L",
                 std::make_unique<sketch::UnivMon>(4, 4, 128, seed));
  v.emplace_back("NitroSketch p=0.5",
                 std::make_unique<sketch::NitroSketch>(4, 512, 0.5, seed));
  return v;
}

void rank_sketches(const std::string& label,
                   const std::vector<std::uint64_t>& keys) {
  std::cout << "\nHeavy-hitter estimation error on " << label << ":\n";
  std::string best;
  double best_err = 1e300;
  for (auto& [name, s] : candidates(1234)) {
    const auto report = sketch::evaluate_heavy_hitters(*s, keys, 0.001);
    std::cout << "  " << name << ": mean relative error "
              << report.mean_relative_error << " over " << report.num_heavy
              << " heavy hitters\n";
    if (report.mean_relative_error < best_err && report.num_heavy > 0) {
      best_err = report.mean_relative_error;
      best = name;
    }
  }
  std::cout << "  -> best choice on " << label << ": " << best << "\n";
}

}  // namespace

int main() {
  std::cout << "Data holder: simulating a backbone trace and training "
               "NetShare...\n";
  const auto real = datagen::make_dataset(datagen::DatasetId::kCaida, 2500, 11);

  core::NetShareConfig config;
  config.seed_iterations = 300;
  config.finetune_iterations = 100;
  core::NetShare model(config, core::make_public_ip2vec());
  model.fit(real.packets);

  Rng rng(12);
  const auto synthetic = model.generate_packets(2500, rng);
  std::cout << "Shared synthetic trace: " << synthetic.size() << " packets\n";

  const auto real_keys =
      sketch::extract_keys(real.packets, sketch::HeavyHitterKey::kDstIp);
  const auto syn_keys =
      sketch::extract_keys(synthetic, sketch::HeavyHitterKey::kDstIp);

  rank_sketches("REAL data (data holder's private view)", real_keys);
  rank_sketches("SYNTHETIC data (what the consumer sees)", syn_keys);

  std::cout << "\nIf the best choice matches, the synthetic trace preserved "
               "the ordering the consumer needed (the paper's order-"
               "preservation property).\n";
  return 0;
}
