// Trace inspection CLI: prints the distribution summaries the paper's
// fidelity metrics are built on, for a NetFlow CSV or a pcap file (or, with
// no arguments, a simulated demo of each). Useful for eyeballing real vs
// synthetic traces produced by the other examples.
//
//   ./trace_stats trace.csv     # NetFlow CSV (see quickstart)
//   ./trace_stats trace.pcap    # pcap (see pcap_synthesis)
#include <algorithm>
#include <iostream>
#include <map>

#include "datagen/presets.hpp"
#include "eval/report.hpp"
#include "metrics/consistency.hpp"
#include "net/netflow_io.hpp"
#include "net/pcap_io.hpp"

using namespace netshare;

namespace {

void top_k(const std::string& label, std::map<std::uint64_t, std::size_t> counts,
           std::size_t k, std::size_t total,
           const std::function<std::string(std::uint64_t)>& fmt) {
  std::vector<std::pair<std::size_t, std::uint64_t>> ranked;
  for (const auto& [v, c] : counts) ranked.push_back({c, v});
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << label << " (top " << k << "):\n";
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    std::cout << "  " << fmt(ranked[i].second) << "  "
              << eval::format_double(
                     100.0 * static_cast<double>(ranked[i].first) /
                         static_cast<double>(total),
                     2)
              << "%\n";
  }
}

void describe(const net::FlowTrace& t, const std::string& name) {
  std::cout << "\n--- NetFlow trace: " << name << " (" << t.size()
            << " records) ---\n";
  std::map<std::uint64_t, std::size_t> srcs, dsts, ports, protos;
  std::vector<double> pkts, bytes, durations;
  for (const auto& r : t.records) {
    srcs[r.key.src_ip.value()]++;
    dsts[r.key.dst_ip.value()]++;
    ports[r.key.dst_port]++;
    protos[static_cast<std::uint64_t>(r.key.protocol)]++;
    pkts.push_back(static_cast<double>(r.packets));
    bytes.push_back(static_cast<double>(r.bytes));
    durations.push_back(r.duration);
  }
  std::cout << "distinct: " << srcs.size() << " src IPs, " << dsts.size()
            << " dst IPs, " << ports.size() << " dst ports\n";
  top_k("dst ports", ports, 5, t.size(),
        [](std::uint64_t p) { return std::to_string(p); });
  top_k("src IPs", srcs, 3, t.size(), [](std::uint64_t v) {
    return net::Ipv4Address(static_cast<std::uint32_t>(v)).to_string();
  });
  eval::print_cdf(std::cout, "packets/flow", pkts);
  eval::print_cdf(std::cout, "bytes/flow", bytes);
  eval::print_cdf(std::cout, "duration (s)", durations);
  const auto checks = metrics::check_flow_consistency(t);
  std::cout << "validity: T1 " << checks.test1_ip_validity * 100 << "%  T2 "
            << checks.test2_bytes_vs_packets * 100 << "%  T3 "
            << checks.test3_port_protocol * 100 << "%\n";
}

void describe(const net::PacketTrace& t, const std::string& name) {
  std::cout << "\n--- packet trace: " << name << " (" << t.size()
            << " packets) ---\n";
  std::map<std::uint64_t, std::size_t> dsts, ports;
  std::vector<double> sizes, fs;
  for (const auto& p : t.packets) {
    dsts[p.key.dst_ip.value()]++;
    ports[p.key.dst_port]++;
    sizes.push_back(static_cast<double>(p.size));
  }
  for (const auto& agg : net::aggregate_flows(t)) {
    fs.push_back(static_cast<double>(agg.packets));
  }
  std::cout << "distinct: " << dsts.size() << " dst IPs, " << fs.size()
            << " flows, span "
            << eval::format_double(t.end_time() - t.start_time(), 2) << "s\n";
  top_k("dst ports", ports, 5, t.size(),
        [](std::uint64_t p) { return std::to_string(p); });
  eval::print_cdf(std::cout, "packet size (B)", sizes);
  eval::print_cdf(std::cout, "flow size (pkts)", fs);
  const auto checks = metrics::check_packet_consistency(t);
  std::cout << "validity: T1 " << checks.test1_ip_validity * 100 << "%  T3 "
            << checks.test3_port_protocol * 100 << "%  T4 "
            << checks.test4_min_packet_size * 100 << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout << "No input given; describing simulated demo traces.\n";
    describe(datagen::make_dataset(datagen::DatasetId::kUgr16, 1000, 1).flows,
             "UGR16-like (simulated)");
    describe(datagen::make_dataset(datagen::DatasetId::kCaida, 1500, 2).packets,
             "CAIDA-like (simulated)");
    return 0;
  }
  const std::string path = argv[1];
  try {
    if (path.size() > 5 && path.substr(path.size() - 5) == ".pcap") {
      describe(net::read_pcap_file(path), path);
    } else {
      describe(net::read_netflow_csv_file(path), path);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
