// Quickstart: train NetShare on a NetFlow trace and write a synthetic trace.
//
//   ./quickstart [input.csv] [output.csv]
//
// Without arguments, a demo ISP-like NetFlow trace is simulated, NetShare is
// trained on it, and the synthetic result is written to
// synthetic_netflow.csv together with a fidelity report.
#include <iostream>

#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "metrics/field_metrics.hpp"
#include "net/netflow_io.hpp"

using namespace netshare;

int main(int argc, char** argv) {
  // 1. Load (or simulate) the real trace.
  net::FlowTrace real;
  if (argc > 1) {
    std::cout << "Loading NetFlow CSV from " << argv[1] << "\n";
    real = net::read_netflow_csv_file(argv[1]);
  } else {
    std::cout << "Simulating a demo ISP NetFlow trace (UGR16-like)...\n";
    real = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 42).flows;
  }
  std::cout << "Real trace: " << real.size() << " flow records\n";

  // 2. Configure NetShare. The IP2Vec port embedding is trained on public
  //    backbone data (Insight 2), so it can be shared across models.
  core::NetShareConfig config;
  config.num_chunks = 5;          // Insight 3: chunked parallel fine-tuning
  config.seed_iterations = 300;   // chunk-0 (seed) training
  config.finetune_iterations = 100;
  auto ip2vec = core::make_public_ip2vec();

  // 3. Train.
  core::NetShare model(config, ip2vec);
  std::cout << "Training (merge -> flow split -> encode -> chunked GANs)...\n";
  model.fit(real);
  std::cout << "Trained in " << model.train_cpu_seconds() << " CPU-seconds\n";

  // 4. Generate a synthetic trace of the same size.
  Rng rng(7);
  const net::FlowTrace synthetic = model.generate_flows(real.size(), rng);

  // 5. Report fidelity (the paper's JSD/EMD metric suite).
  const auto report = metrics::compare_flows(real, synthetic);
  std::cout << "\nFidelity (lower is better):\n";
  for (const auto& [field, v] : report.jsd) {
    std::cout << "  JSD " << field << " = " << v << "\n";
  }
  for (const auto& [field, v] : report.emd) {
    std::cout << "  EMD " << field << " = " << v << "\n";
  }

  // 6. Write the shareable synthetic trace.
  const std::string out = argc > 2 ? argv[2] : "synthetic_netflow.csv";
  net::write_netflow_csv_file(synthetic, out);
  std::cout << "\nWrote " << synthetic.size() << " synthetic records to "
            << out << "\n";
  return 0;
}
