// netshared: the NetShare generation daemon (DESIGN.md §13, §14).
//
//   ./netshared [--socket PATH] [--snapshots DIR] [--records N]
//               [--chunks M] [--workers W] [--deadline-ms D]
//               [--records-per-sec R] [--jobs-per-sec J]
//               [--watchdog-stall-ms S] [--send-timeout-ms T]
//               [--max-frame BYTES]
//
// Boots a demo model (trains one if DIR holds no snapshot-v1 checkpoints,
// writing chunk_<c>.ckpt files it then publishes), binds a local AF_UNIX
// socket speaking the length-prefixed protocol (serve/protocol.hpp), and
// serves multi-tenant generate / stats / publish requests until SIGINT or
// SIGTERM. Shutdown is graceful: new jobs are shed with a typed Draining
// reply, queued and in-flight jobs complete, telemetry is flushed to
// RUN_telemetry.json, exit code 0. Fatal startup failures (unloadable
// snapshots, an unbindable socket) also flush RUN_telemetry.json — the
// counters and diags up to the failure are the crash report — and exit 1.
//
// The resilience flags (DESIGN.md §14) map straight onto ServiceConfig:
// --deadline-ms is the default per-job budget, --records-per-sec /
// --jobs-per-sec set the default tenant rate class, --watchdog-stall-ms
// tunes the stall detector, --send-timeout-ms bounds a reply write to a
// stuck reader, and --max-frame bounds inbound request frames.
//
// Quick senses check from another shell (Python, stdlib only):
//   import socket, struct
//   s = socket.socket(socket.AF_UNIX); s.connect("/tmp/netshared.sock")
//   body = struct.pack("<BI", 2, 1)                    # kStats, request 1
//   s.sendall(struct.pack("<I", len(body)) + body)
//   ln, = struct.unpack("<I", s.recv(4)); print(s.recv(ln)[5+4:].decode())
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include <unistd.h>

#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "serve/socket.hpp"
#include "telemetry/telemetry.hpp"

using namespace netshare;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool has_snapshots(const std::string& dir) {
  return std::filesystem::exists(dir + "/chunk_0.ckpt") ||
         std::filesystem::exists(dir + "/chunk_1.ckpt");
}

// Fatal exit: whatever telemetry accumulated up to the failure IS the crash
// report, so flush it before dying nonzero.
[[noreturn]] void die(const std::string& what) {
  std::cerr << "[netshared] fatal: " << what << "\n";
  telemetry::write_run_json("RUN_telemetry.json");
  std::cerr << "[netshared] telemetry flushed to RUN_telemetry.json\n";
  std::exit(1);
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    die(e.what());
  }
}

namespace {

int run(int argc, char** argv) {
  std::string socket_path = "/tmp/netshared.sock";
  std::string snapshot_dir = "netshared_snapshots";
  std::size_t records = 1200;
  std::size_t chunks = 5;
  serve::ServiceConfig service_cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--snapshots") {
      snapshot_dir = next();
    } else if (arg == "--records") {
      records = std::stoul(next());
    } else if (arg == "--chunks") {
      chunks = std::stoul(next());
    } else if (arg == "--workers") {
      service_cfg.workers = std::stoul(next());
    } else if (arg == "--deadline-ms") {
      service_cfg.default_deadline_ms = std::stoull(next());
    } else if (arg == "--records-per-sec") {
      service_cfg.rate_limit.default_class.records_per_sec = std::stod(next());
    } else if (arg == "--jobs-per-sec") {
      service_cfg.rate_limit.default_class.jobs_per_sec = std::stod(next());
    } else if (arg == "--watchdog-stall-ms") {
      service_cfg.watchdog_stall_ms = std::stoull(next());
    } else if (arg == "--send-timeout-ms") {
      service_cfg.socket_send_timeout_ms = std::stoull(next());
    } else if (arg == "--max-frame") {
      service_cfg.max_frame_bytes = std::stoul(next());
    } else {
      std::cerr << "usage: netshared [--socket PATH] [--snapshots DIR] "
                   "[--records N] [--chunks M] [--workers W] "
                   "[--deadline-ms D] [--records-per-sec R] "
                   "[--jobs-per-sec J] [--watchdog-stall-ms S] "
                   "[--send-timeout-ms T] [--max-frame BYTES]\n";
      return 2;
    }
  }

  // --- bootstrap: a demo ISP-like model, trained once then served from its
  // snapshot files (a restart reuses them — this is the resume path).
  core::NetShareConfig config;
  config.num_chunks = chunks;
  config.seed_iterations = 60;
  config.finetune_iterations = 20;
  config.checkpoint_dir = snapshot_dir;
  auto ip2vec = core::make_public_ip2vec();
  const net::FlowTrace reference =
      datagen::make_dataset(datagen::DatasetId::kUgr16, records, 42).flows;

  auto train_demo = [&] {
    std::cout << "[netshared] training the demo model (" << records
              << " records, " << chunks << " chunks)...\n";
    core::NetShare model(config, core::make_public_ip2vec());
    model.fit(reference);  // checkpoint_dir set: writes chunk_<c>.ckpt
    std::cout << "[netshared] trained in " << model.train_cpu_seconds()
              << " CPU-seconds\n";
  };
  if (!has_snapshots(snapshot_dir)) {
    std::cout << "[netshared] no snapshots in " << snapshot_dir << "\n";
    train_demo();
  }

  serve::ModelRegistry registry;
  registry.define("default",
                  serve::ModelSpec{config, reference, std::move(ip2vec)});
  std::uint64_t version = 0;
  try {
    version = registry.publish("default", snapshot_dir);
  } catch (const std::exception& e) {
    // Snapshots from an earlier run with different --records/--chunks (or
    // corrupted files) don't fit the model this config builds. The trainer's
    // resume path rejects and rewrites them, so retrain and publish again.
    std::cout << "[netshared] snapshots in " << snapshot_dir
              << " don't fit the current config (" << e.what() << ")\n";
    train_demo();
    version = registry.publish("default", snapshot_dir);
  }
  std::cout << "[netshared] published model 'default' v" << version
            << " from " << snapshot_dir << "\n";

  serve::Service service(registry, service_cfg);
  serve::SocketServer server(service, registry, socket_path);
  const auto& live = service.config();  // post-sanitize values
  std::cout << "[netshared] serving on " << socket_path << " ("
            << live.workers << " workers, deadline "
            << live.default_deadline_ms << " ms, rate "
            << live.rate_limit.default_class.records_per_sec << " rec/s + "
            << live.rate_limit.default_class.jobs_per_sec
            << " jobs/s, watchdog " << live.watchdog_stall_ms
            << " ms, send timeout " << live.socket_send_timeout_ms
            << " ms, max frame "
            << (live.max_frame_bytes == 0 ? serve::FrameReader::kMaxFrame
                                          : live.max_frame_bytes)
            << " B)\n";

  if (::pipe(g_signal_pipe) != 0) die("pipe() failed");
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // Block until a termination signal pokes the pipe.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "[netshared] draining (new jobs get a Draining reply)...\n";
  service.begin_drain();
  service.drain();  // queued + in-flight jobs complete and stream out
  server.stop();
  telemetry::write_run_json("RUN_telemetry.json");
  const auto stats = service.stats();
  std::cout << "[netshared] done: " << stats.completed << " jobs completed, "
            << stats.shed_overloaded << " shed (overload), "
            << stats.shed_draining << " shed (draining); telemetry in "
            << "RUN_telemetry.json\n";
  return 0;
}

}  // namespace
