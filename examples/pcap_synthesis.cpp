// PCAP synthesis end-to-end: simulate a backbone packet trace, train
// NetShare's packet path, and materialize the synthetic trace as a genuine
// libpcap file (valid IPv4 headers with RFC 1071 checksums) that tcpdump or
// wireshark can open. Also demonstrates the IP-remap privacy extension.
#include <iostream>

#include "core/netshare.hpp"
#include "core/postprocess.hpp"
#include "datagen/presets.hpp"
#include "metrics/consistency.hpp"
#include "net/pcap_io.hpp"

using namespace netshare;

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "synthetic_backbone.pcap";

  std::cout << "Simulating a backbone packet trace (CAIDA-like)...\n";
  const auto real = datagen::make_dataset(datagen::DatasetId::kCaida, 2000, 42);

  core::NetShareConfig config;
  config.max_seq_len = 8;
  config.num_chunks = 4;
  config.seed_iterations = 300;
  config.finetune_iterations = 100;
  core::NetShare model(config, core::make_public_ip2vec());
  std::cout << "Training the packet path...\n";
  model.fit(real.packets);

  Rng rng(9);
  net::PacketTrace synthetic = model.generate_packets(2000, rng);

  // Privacy extension (Sec. 5): remap synthetic endpoints into private
  // ranges before sharing.
  core::IpRemapConfig remap;
  synthetic = core::remap_ips(synthetic, remap);

  // Validity checks (App. B) on what we are about to share.
  const auto checks = metrics::check_packet_consistency(synthetic);
  std::cout << "Validity: IPs " << checks.test1_ip_validity * 100
            << "%, bytes-vs-packets " << checks.test2_bytes_vs_packets * 100
            << "%, port-protocol " << checks.test3_port_protocol * 100
            << "%, min size " << checks.test4_min_packet_size * 100 << "%\n";

  net::write_pcap_file(synthetic, out_path);
  std::cout << "Wrote " << synthetic.size() << " packets to " << out_path
            << " (libpcap format, LINKTYPE_RAW)\n";

  // Round-trip through our own reader as a sanity check.
  const auto back = net::read_pcap_file(out_path);
  std::cout << "Re-read " << back.size() << " packets; first packet "
            << back.packets.front().key.to_string() << "\n";
  return 0;
}
