// Differentially-private trace sharing (Insight 4): pre-train NetShare on a
// PUBLIC trace, then fine-tune on the private trace with DP-SGD under a
// chosen (epsilon, delta) budget, and report what the privacy cost does to
// fidelity.
#include <iostream>

#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "metrics/field_metrics.hpp"
#include "privacy/accountant.hpp"

using namespace netshare;

int main(int argc, char** argv) {
  const double target_epsilon = argc > 1 ? std::stod(argv[1]) : 50.0;
  constexpr double kDelta = 1e-5;

  const auto priv = datagen::make_dataset(datagen::DatasetId::kCaida, 800, 21);
  const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub, 800, 22);
  auto ip2vec = core::make_public_ip2vec();

  // Stage 1: non-private pre-training on PUBLIC data.
  core::NetShareConfig base;
  base.netshare_v0 = true;  // single model keeps the DP analysis simple
  base.max_seq_len = 6;
  base.seed_iterations = 250;
  std::cout << "Pre-training on public data (" << pub.name << ")...\n";
  core::NetShare public_model(base, ip2vec);
  public_model.fit(pub.packets);

  // Stage 2: DP fine-tuning on PRIVATE data.
  core::NetShareConfig dp_cfg = base;
  dp_cfg.dp = true;
  dp_cfg.seed_iterations = 60;
  dp_cfg.dg.batch_size = 16;
  dp_cfg.public_snapshot = public_model.snapshot();
  const double q = static_cast<double>(dp_cfg.dg.batch_size) /
                   static_cast<double>(priv.packets.size());
  const auto steps = static_cast<std::size_t>(dp_cfg.seed_iterations) *
                     static_cast<std::size_t>(dp_cfg.dg.d_steps_per_g);
  dp_cfg.dp_config.noise_multiplier =
      privacy::noise_multiplier_for_epsilon(target_epsilon, q, steps, kDelta);
  std::cout << "DP fine-tuning on private data: target epsilon = "
            << target_epsilon << ", noise multiplier = "
            << dp_cfg.dp_config.noise_multiplier << "\n";

  core::NetShare private_model(dp_cfg, ip2vec);
  private_model.fit(priv.packets);

  const auto spent = privacy::compute_epsilon(
      q, dp_cfg.dp_config.noise_multiplier, private_model.dp_steps(), kDelta);
  std::cout << "Accountant: spent epsilon = " << spent.epsilon << " at delta "
            << kDelta << " (RDP order " << spent.best_order << ")\n";

  Rng rng(23);
  const auto synthetic = private_model.generate_packets(priv.packets.size(), rng);
  const auto report = metrics::compare_packets(priv.packets, synthetic);
  std::cout << "\nFidelity of the DP synthetic trace vs private data:\n"
            << "  mean JSD over categorical fields: " << report.mean_jsd()
            << "\n  raw EMDs:";
  for (const auto& [field, v] : report.emd) {
    std::cout << ' ' << field << '=' << v;
  }
  std::cout << "\n\nTry different budgets: ./dp_sharing 10   (strict)\n"
            << "                       ./dp_sharing 1e6  (almost no privacy)\n";
  return 0;
}
