// Tests of the parallel zero-allocation generation path (DESIGN.md §7):
// batched sampling must be bitwise identical to per-series sampling, to any
// partition of the series range, and to any worker / kernel-thread count;
// steady-state batched sampling must perform zero Matrix heap allocations;
// and the parallel postprocess passes must match their serial results while
// enforcing the header-validity invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/netshare.hpp"
#include "core/parallel.hpp"
#include "core/postprocess.hpp"
#include "core/train.hpp"
#include "datagen/presets.hpp"
#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"

namespace netshare {
namespace {

bool matrix_eq(const ml::Matrix& a, const ml::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (a(r, c) != b(r, c)) return false;  // bitwise: exact compare
    }
  }
  return true;
}

bool series_eq(const gan::GeneratedSeries& a, const gan::GeneratedSeries& b) {
  if (!matrix_eq(a.attributes, b.attributes)) return false;
  if (a.features.size() != b.features.size()) return false;
  for (std::size_t t = 0; t < a.features.size(); ++t) {
    if (!matrix_eq(a.features[t], b.features[t])) return false;
  }
  return a.lengths == b.lengths;
}

gan::TimeSeriesSpec tiny_spec() {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{ml::OutputSegment::Kind::kSoftmax, 3},
                             {ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

gan::TimeSeriesDataset tiny_data(std::size_t n, std::uint64_t seed) {
  gan::TimeSeriesDataset data;
  data.spec = tiny_spec();
  data.attributes = ml::Matrix(n, 4);
  data.features.assign(4, ml::Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

gan::DgConfig tiny_dg() {
  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  return dg;
}

gan::DoppelGanger& tiny_trained_model() {
  static gan::DoppelGanger* model = [] {
    auto* m = new gan::DoppelGanger(tiny_spec(), tiny_dg(), 4321);
    m->fit(tiny_data(64, 78), 3);
    return m;
  }();
  return *model;
}

TEST(SampleInto, BatchedEqualsPerSeriesBitwise) {
  gan::DoppelGanger& model = tiny_trained_model();
  gan::GeneratedSeries batched, one;
  model.sample_into(24, 99, 0, batched);
  ASSERT_EQ(batched.attributes.rows(), 24u);
  for (std::size_t i = 0; i < 24; ++i) {
    model.sample_into(1, 99, i, one);
    EXPECT_EQ(one.lengths[0], batched.lengths[i]) << "series " << i;
    for (std::size_t c = 0; c < batched.attributes.cols(); ++c) {
      EXPECT_EQ(one.attributes(0, c), batched.attributes(i, c))
          << "series " << i << " attr " << c;
    }
    for (std::size_t t = 0; t < batched.features.size(); ++t) {
      for (std::size_t c = 0; c < batched.features[t].cols(); ++c) {
        EXPECT_EQ(one.features[t](0, c), batched.features[t](i, c))
            << "series " << i << " step " << t;
      }
    }
  }
}

TEST(SampleInto, AdaptiveMatchesFullUnrollReferenceBitwise) {
  // The length-adaptive fast path must reproduce the training-path full
  // unroll exactly: the reference computes every step for every series and
  // discards those at or past the sampled length, the fast path skips them.
  gan::DoppelGanger& model = tiny_trained_model();
  gan::GeneratedSeries fast, reference;
  for (std::uint64_t seed : {3u, 99u, 1234u}) {
    model.sample_into(37, seed, 0, fast);
    model.sample_reference_into(37, seed, 0, reference);
    EXPECT_TRUE(series_eq(fast, reference)) << "seed " << seed;
  }
}

TEST(SampleInto, PartitionInvariant) {
  gan::DoppelGanger& model = tiny_trained_model();
  gan::GeneratedSeries whole, head, tail;
  model.sample_into(5, 7, 0, whole);
  model.sample_into(3, 7, 0, head);
  model.sample_into(2, 7, 3, tail);
  for (std::size_t i = 0; i < 5; ++i) {
    const gan::GeneratedSeries& part = i < 3 ? head : tail;
    const std::size_t j = i < 3 ? i : i - 3;
    EXPECT_EQ(part.lengths[j], whole.lengths[i]);
    for (std::size_t c = 0; c < whole.attributes.cols(); ++c) {
      EXPECT_EQ(part.attributes(j, c), whole.attributes(i, c));
    }
  }
}

TEST(SampleInto, KernelThreadCountInvariant) {
  gan::DoppelGanger& model = tiny_trained_model();
  gan::GeneratedSeries serial, parallel;
  {
    ml::kernels::KernelConfig cfg;
    cfg.threads = 1;
    ml::kernels::ConfigOverride guard(cfg);
    model.sample_into(32, 5, 0, serial);
  }
  {
    ml::kernels::KernelConfig cfg;
    cfg.threads = 4;
    cfg.min_parallel_flops = 0;
    ml::kernels::ConfigOverride guard(cfg);
    model.sample_into(32, 5, 0, parallel);
  }
  EXPECT_TRUE(series_eq(serial, parallel));
}

TEST(SampleInto, ZeroSteadyStateAllocations) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ml::kernels::KernelConfig cfg;
    cfg.threads = threads;
    cfg.min_parallel_flops = 0;
    ml::kernels::ConfigOverride guard(cfg);
    gan::DoppelGanger& model = tiny_trained_model();
    gan::GeneratedSeries out;
    model.sample_into(32, 11, 0, out);  // warm-up populates pools
    ml::alloc_counter::reset();
    model.sample_into(32, 11, 0, out);
    model.sample_into(32, 12, 0, out);
    EXPECT_EQ(ml::alloc_counter::count(), 0u)
        << "batched sampling allocated Matrix storage in steady state at "
        << threads << " kernel thread(s)";
  }
}

TEST(SampleInto, ZeroSeriesYieldsEmptyOutput) {
  gan::DoppelGanger& model = tiny_trained_model();
  gan::GeneratedSeries out;
  model.sample_into(0, 1, 0, out);
  EXPECT_EQ(out.attributes.rows(), 0u);
  EXPECT_EQ(out.lengths.size(), 0u);
  ASSERT_EQ(out.features.size(), tiny_spec().max_len);
  for (const auto& step : out.features) EXPECT_EQ(step.rows(), 0u);
}

core::NetShareConfig tiny_config() {
  core::NetShareConfig cfg;
  cfg.use_ip2vec_ports = false;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 4;
  cfg.finetune_iterations = 2;
  cfg.threads = 4;
  cfg.dg = tiny_dg();
  return cfg;
}

core::ChunkedTrainer& tiny_trainer_with_empty_chunk() {
  static core::ChunkedTrainer* trainer = [] {
    core::NetShareConfig cfg = tiny_config();
    auto* t = new core::ChunkedTrainer(tiny_spec(), cfg);
    // Chunk 1 is empty: its dataset has zero samples and gets no model.
    std::vector<gan::TimeSeriesDataset> chunks{
        tiny_data(40, 78), tiny_data(0, 79), tiny_data(32, 80)};
    t->fit(chunks);
    return t;
  }();
  return *trainer;
}

TEST(SampleChunks, BitwiseEqualAcrossWorkerCounts) {
  core::ChunkedTrainer& trainer = tiny_trainer_with_empty_chunk();
  const std::vector<std::size_t> counts{20, 0, 17};
  std::vector<gan::GeneratedSeries> baseline;
  trainer.sample_chunks(counts, 424242, baseline, 1);
  ASSERT_EQ(baseline.size(), 3u);
  EXPECT_EQ(baseline[0].attributes.rows(), 20u);
  EXPECT_EQ(baseline[1].attributes.rows(), 0u);
  EXPECT_EQ(baseline[2].attributes.rows(), 17u);
  for (std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<gan::GeneratedSeries> out;
    trainer.sample_chunks(counts, 424242, out, workers);
    ASSERT_EQ(out.size(), baseline.size());
    for (std::size_t c = 0; c < out.size(); ++c) {
      EXPECT_TRUE(series_eq(out[c], baseline[c]))
          << "chunk " << c << " differs at " << workers << " workers";
    }
  }
}

TEST(SampleChunks, ChunkWithoutModelYieldsEmptySeries) {
  core::ChunkedTrainer& trainer = tiny_trainer_with_empty_chunk();
  EXPECT_FALSE(trainer.has_model(1));
  gan::GeneratedSeries out;
  trainer.sample_chunk_into(1, 10, 7, 0, out);
  EXPECT_EQ(out.attributes.rows(), 0u);
  EXPECT_EQ(out.lengths.size(), 0u);
}

TEST(SampleChunks, RejectsCountSizeMismatch) {
  core::ChunkedTrainer& trainer = tiny_trainer_with_empty_chunk();
  std::vector<gan::GeneratedSeries> out;
  EXPECT_THROW(trainer.sample_chunks({1, 2}, 7, out), std::invalid_argument);
}

TEST(SampleChunks, ChunkStreamPartitionInvariant) {
  core::ChunkedTrainer& trainer = tiny_trainer_with_empty_chunk();
  gan::GeneratedSeries whole, head, tail;
  trainer.sample_chunk_into(2, 5, 31, 0, whole);
  trainer.sample_chunk_into(2, 3, 31, 0, head);
  trainer.sample_chunk_into(2, 2, 31, 3, tail);
  for (std::size_t i = 0; i < 5; ++i) {
    const gan::GeneratedSeries& part = i < 3 ? head : tail;
    const std::size_t j = i < 3 ? i : i - 3;
    EXPECT_EQ(part.lengths[j], whole.lengths[i]);
    for (std::size_t c = 0; c < whole.attributes.cols(); ++c) {
      EXPECT_EQ(part.attributes(j, c), whole.attributes(i, c));
    }
  }
}

TEST(GeneratePackets, RepeatDeterministicWithSameSeed) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCaida, 300, 21);
  core::NetShare model(tiny_config(), nullptr);
  model.fit(bundle.packets);
  Rng rng_a(5), rng_b(5);
  const net::PacketTrace a = model.generate_packets(120, rng_a);
  const net::PacketTrace b = model.generate_packets(120, rng_b);
  EXPECT_EQ(a.size(), 120u);
  EXPECT_EQ(a.packets, b.packets);
}

TEST(ParallelPhaseBudget, ClampsToOneInsideWorkerThread) {
  // At top level the budget is capped only by the physical core count.
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t expected = cores == 0 ? 4u : std::min<std::size_t>(4, cores);
  EXPECT_EQ(core::parallel_phase_budget(4), expected);
  ThreadPool pool(2);
  std::vector<std::size_t> got(2, 0);
  pool.parallel_for(2, [&](std::size_t i) {
    got[i] = core::parallel_phase_budget(4);
  });
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[1], 1u);
}

net::PacketTrace dirty_packets() {
  net::PacketTrace trace;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    net::PacketRecord p;
    p.timestamp = i * 0.01;
    p.key.src_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 24)));
    p.key.dst_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 24)));
    p.key.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    p.key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const int proto = static_cast<int>(rng.uniform_int(0, 2));
    p.key.protocol = proto == 0 ? net::Protocol::kTcp
                     : proto == 1 ? net::Protocol::kUdp
                                  : net::Protocol::kIcmp;
    p.size = static_cast<std::uint32_t>(rng.uniform_int(0, 70000));
    p.ttl = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    trace.packets.push_back(p);
  }
  return trace;
}

TEST(Postprocess, RepairPacketHeadersEnforcesInvariants) {
  net::PacketTrace trace = dirty_packets();
  const core::RepairStats stats = core::repair_packet_headers(trace, 4);
  EXPECT_GT(stats.size_clamped, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  for (const auto& p : trace.packets) {
    EXPECT_GE(p.size, net::min_packet_size(p.key.protocol));
    EXPECT_LE(p.size, net::kMaxPacketSize);
    EXPECT_GE(p.ttl, 1);
    if (p.key.protocol == net::Protocol::kIcmp) {
      EXPECT_EQ(p.key.src_port, 0);
      EXPECT_EQ(p.key.dst_port, 0);
    }
  }
}

TEST(Postprocess, RepairMatchesSerialAtAnyThreadCount) {
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    net::PacketTrace serial = dirty_packets();
    net::PacketTrace parallel = dirty_packets();
    const core::RepairStats s1 = core::repair_packet_headers(serial, 1);
    const core::RepairStats sn = core::repair_packet_headers(parallel, threads);
    EXPECT_EQ(serial.packets, parallel.packets) << threads << " threads";
    EXPECT_EQ(s1.size_clamped, sn.size_clamped);
    EXPECT_EQ(s1.ttl_fixed, sn.ttl_fixed);
    EXPECT_EQ(s1.ports_zeroed, sn.ports_zeroed);
    EXPECT_EQ(s1.checksum_failures, sn.checksum_failures);
  }
}

TEST(Postprocess, RepairFlowFieldsEnforcesInvariants) {
  net::FlowTrace trace;
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    net::FlowRecord r;
    r.start_time = i * 0.1;
    r.duration = rng.uniform(-1.0, 2.0);
    r.packets = static_cast<std::uint64_t>(rng.uniform_int(0, 50));
    r.bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 200));
    r.key.protocol =
        rng.uniform_int(0, 1) == 0 ? net::Protocol::kTcp : net::Protocol::kIcmp;
    r.key.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    r.key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    trace.records.push_back(r);
  }
  net::FlowTrace parallel = trace;
  const core::RepairStats s1 = core::repair_flow_fields(trace, 1);
  const core::RepairStats s4 = core::repair_flow_fields(parallel, 4);
  EXPECT_EQ(trace.records, parallel.records);
  EXPECT_EQ(s1.total_repairs(), s4.total_repairs());
  EXPECT_GT(s1.duration_fixed, 0u);
  for (const auto& r : trace.records) {
    EXPECT_GE(r.packets, 1u);
    EXPECT_GE(r.bytes, r.packets * net::min_packet_size(r.key.protocol));
    EXPECT_GE(r.duration, 0.0);
    if (r.key.protocol == net::Protocol::kIcmp) {
      EXPECT_EQ(r.key.src_port, 0);
      EXPECT_EQ(r.key.dst_port, 0);
    }
  }
}

TEST(Postprocess, RemapAndRetrainThreadInvariant) {
  net::PacketTrace trace = dirty_packets();
  const core::IpRemapConfig remap_cfg;
  const net::PacketTrace m1 = core::remap_ips(trace, remap_cfg, 1);
  const net::PacketTrace m4 = core::remap_ips(trace, remap_cfg, 4);
  EXPECT_EQ(m1.packets, m4.packets);
  const std::map<std::uint16_t, double> dist{{80, 0.7}, {443, 0.3}};
  Rng rng_a(31), rng_b(31);
  const net::PacketTrace p1 = core::retrain_dst_ports(m1, dist, rng_a, 1);
  const net::PacketTrace p4 = core::retrain_dst_ports(m4, dist, rng_b, 4);
  EXPECT_EQ(p1.packets, p4.packets);
}

}  // namespace
}  // namespace netshare
