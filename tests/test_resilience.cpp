// Resilience layer tests (DESIGN.md §14): request deadlines, per-tenant
// token-bucket rate limiting, client retry/backoff, socket reconnection,
// the scheduler watchdog, injected registry faults, daemon frame bounds,
// and a protocol fuzz smoke. Time-window behavior is driven through the
// injected ManualClock and fault schedules through the deterministic chaos
// plan, so every scenario replays exactly — no sleeps-as-synchronization.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/rate_limiter.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"
#include "serve_test_util.hpp"

namespace netshare::serve {
namespace {

using namespace serve_test;

// Spins (real time) until `pred` holds or ~5 s pass; returns the verdict.
// Used only where a background thread (watchdog, scheduler) must observe a
// manual-clock step — the observed state itself is deterministic.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// A worker_hook gate: blocks the first sampling call until release(), so
// tests hold a batch stuck at a point they control.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void hook(std::size_t /*chunk*/, std::size_t /*job*/) {
    std::unique_lock<std::mutex> lock(mu);
    if (released) return;
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void await_entered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

// ---------------------------------------------------------------------------
// Token buckets and the tenant rate limiter (pure state, explicit clock).
// ---------------------------------------------------------------------------

TEST(Resilience, TokenBucketAdmitsDeniesAndRefills) {
  TokenBucket b(10.0, 1.0);  // 10 tokens/s, capacity 10
  std::uint64_t wait = 0;
  EXPECT_TRUE(b.try_take(10.0, 1000, &wait));   // drain the full burst
  EXPECT_FALSE(b.try_take(5.0, 1000, &wait));   // same instant: empty
  EXPECT_EQ(wait, 500u);                        // 5 tokens at 10/s
  EXPECT_FALSE(b.try_take(5.0, 1400, &wait));   // 4 refilled, still short
  EXPECT_EQ(wait, 100u);
  EXPECT_TRUE(b.try_take(5.0, 1500, &wait));    // exactly refilled
}

TEST(Resilience, TokenBucketOversizedCostGoesNegativeNeverWedges) {
  TokenBucket b(10.0, 1.0);  // capacity 10
  std::uint64_t wait = 0;
  // Cost 25 exceeds a full burst: admitted against the full bucket, balance
  // driven to -15 so later refills repay it. An oversized job is throttled,
  // never permanently wedged.
  EXPECT_TRUE(b.try_take(25.0, 1000, &wait));
  EXPECT_DOUBLE_EQ(b.tokens(), -15.0);
  EXPECT_FALSE(b.try_take(1.0, 1000, &wait));
  EXPECT_EQ(wait, 1600u);  // needs 16 tokens at 10/s
  EXPECT_TRUE(b.try_take(1.0, 2600, &wait));
}

TEST(Resilience, TenantLimiterShedChargesNothingAndHintsLargerWait) {
  RateLimitConfig cfg;
  cfg.default_class.records_per_sec = 100.0;  // capacity 100
  cfg.default_class.jobs_per_sec = 2.0;       // capacity 2
  TenantRateLimiter lim(cfg);

  EXPECT_TRUE(lim.admit("t", 100, 1000).allowed);
  EXPECT_TRUE(lim.admit("t", 0, 1000).allowed);  // second job, zero records
  // Both buckets are now empty. A 50-record job needs 500 ms of record
  // refill and 500 ms of job refill; the hint is the larger of the two
  // (here equal), and the shed must charge NEITHER bucket.
  auto v = lim.admit("t", 50, 1000);
  EXPECT_FALSE(v.allowed);
  EXPECT_EQ(v.retry_after_ms, 500u);
  // Repeating the same ask at the same instant reports the same wait —
  // proof the failed admit consumed nothing.
  v = lim.admit("t", 50, 1000);
  EXPECT_FALSE(v.allowed);
  EXPECT_EQ(v.retry_after_ms, 500u);
  EXPECT_TRUE(lim.admit("t", 50, 1500).allowed);
}

TEST(Resilience, TenantLimiterPerTenantOverrideAndUncappedDefault) {
  RateLimitConfig cfg;
  cfg.default_class = {};  // all-zero: uncapped
  cfg.per_tenant["metered"] = RateClass{0.0, 1.0, 1.0};  // 1 job/s
  TenantRateLimiter lim(cfg);

  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(lim.admit("free", 1 << 16, 1000).allowed);
  }
  EXPECT_TRUE(lim.admit("metered", 1, 1000).allowed);
  auto v = lim.admit("metered", 1, 1000);
  EXPECT_FALSE(v.allowed);
  EXPECT_EQ(v.retry_after_ms, 1000u);
  EXPECT_DOUBLE_EQ(lim.class_for("metered").jobs_per_sec, 1.0);
  EXPECT_DOUBLE_EQ(lim.class_for("free").jobs_per_sec, 0.0);
}

// ---------------------------------------------------------------------------
// Rate limiting at service admission (kRateLimited + retry-after).
// ---------------------------------------------------------------------------

ServiceConfig one_job_per_sec_config() {
  ServiceConfig cfg;
  cfg.rate_limit.default_class.jobs_per_sec = 1.0;
  cfg.rate_limit.per_tenant["vip"] = RateClass{};  // uncapped override
  return cfg;
}

TEST(Resilience, ServiceShedsRateLimitedWithRetryAfterHint) {
  ScopedManualClock mc;
  ServiceHarness h(one_job_per_sec_config());

  ClientResult r1 = h.client->generate("m", "t", 40, 7);
  ASSERT_TRUE(r1.ok) << r1.message;

  // Same instant: the tenant's job bucket is empty, shed is typed and the
  // hint is exactly one bucket refill — deterministic under the manual
  // clock.
  ClientResult r2 = h.client->generate("m", "t", 40, 8);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, ErrorCode::kRateLimited);
  EXPECT_EQ(r2.retry_after_ms, 1000u);

  // The vip override is uncapped: back-to-back jobs admit freely.
  EXPECT_TRUE(h.client->generate("m", "vip", 40, 9).ok);
  EXPECT_TRUE(h.client->generate("m", "vip", 40, 10).ok);

  // Honoring the hint admits the retried job.
  mc.clock().advance_ms(1000);
  ClientResult r3 = h.client->generate("m", "t", 40, 8);
  EXPECT_TRUE(r3.ok) << r3.message;

  // Callbacks fire before the service settles its accounting; drain() is
  // the barrier that makes the counters safe to read.
  h.service->drain();
  const ServiceStatsSnapshot s = h.service->stats();
  EXPECT_EQ(s.shed_rate_limited, 1u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(Resilience, RateLimitRetryAfterCrossesTheWire) {
  ScopedManualClock mc;
  SocketHarness h(one_job_per_sec_config());
  SocketClient client(h.path);

  ClientResult r1 = client.generate("m", "t", 30, 5);
  ASSERT_TRUE(r1.ok) << r1.message;
  ClientResult r2 = client.generate("m", "t", 30, 6);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, ErrorCode::kRateLimited);
  EXPECT_EQ(r2.retry_after_ms, 1000u);
}

// ---------------------------------------------------------------------------
// Deadlines: reaped while queued, abandoned mid-batch.
// ---------------------------------------------------------------------------

TEST(Resilience, QueuedJobPastDeadlineIsReapedTyped) {
  ScopedManualClock mc;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_coalesce = 1;       // the second job must queue, not coalesce
  cfg.watchdog_poll_ms = 20;  // the nudge is what reaps with no traffic
  WorkerGate gate;
  ChaosPlan plan;
  plan.worker_hook = [&](std::size_t c, std::size_t j) { gate.hook(c, j); };
  ScopedChaosPlan chaos(plan);
  ServiceHarness h(cfg);

  // Job 1 occupies the model, stuck inside the gate.
  auto job1 = h.client->submit("m", "t", 40, 1);
  gate.await_entered();
  // Job 2 queues behind it with a 500 ms budget, which then expires with no
  // submit/finish traffic — only the watchdog nudge wakes the scheduler.
  auto job2 = h.client->submit("m", "t", 40, 2, /*deadline_ms=*/500);
  mc.clock().advance_ms(1000);

  ClientResult r2 = job2->wait();
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(r2.message.find("queued"), std::string::npos) << r2.message;

  gate.release();
  ClientResult r1 = job1->wait();
  EXPECT_TRUE(r1.ok) << r1.message;

  h.service->drain();  // settle accounting before reading counters
  const ServiceStatsSnapshot s = h.service->stats();
  EXPECT_EQ(s.deadline_exceeded, 1u);
  EXPECT_EQ(s.errors, 0u);  // a deadline is not an execution error
  EXPECT_EQ(s.completed, 1u);
}

TEST(Resilience, RunningJobPastDeadlineAbandonsRemainingChunks) {
  ScopedManualClock mc;
  ServiceConfig cfg;
  cfg.workers = 1;
  // The hook burns the whole budget "inside" chunk 0; the between-parts
  // check at the next chunk abandons the rest of the job.
  ChaosPlan plan;
  plan.worker_hook = [&](std::size_t chunk, std::size_t /*job*/) {
    if (chunk == 0) mc.clock().advance_ms(1000);
  };
  ScopedChaosPlan chaos(plan);
  ServiceHarness h(cfg);

  ClientResult r = h.client->generate("m", "t", 90, 3, /*deadline_ms=*/500);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(r.message.find("mid-batch"), std::string::npos) << r.message;
  h.service->drain();  // settle accounting before reading counters
  EXPECT_EQ(h.service->stats().deadline_exceeded, 1u);
}

TEST(Resilience, DefaultDeadlineAppliesWhenWireCarriesNone) {
  ScopedManualClock mc;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.default_deadline_ms = 500;
  ChaosPlan plan;
  plan.worker_hook = [&](std::size_t chunk, std::size_t /*job*/) {
    if (chunk == 0) mc.clock().advance_ms(1000);
  };
  ScopedChaosPlan chaos(plan);
  ServiceHarness h(cfg);

  ClientResult r = h.client->generate("m", "t", 90, 3);  // no wire deadline
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Client retry: pure backoff schedule, then end-to-end over both clients.
// ---------------------------------------------------------------------------

TEST(Resilience, RetryBackoffIsPureJitteredExponentialHonoringHints) {
  RetryPolicy p;
  p.base_backoff_ms = 50;
  p.max_backoff_ms = 2000;
  p.seed = 11;

  // Pure function of (seed, attempt, hint): replays exactly.
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(retry_backoff_ms(p, attempt, 0), retry_backoff_ms(p, attempt, 0));
  }
  // Jitter window [b/2, b] with b doubling per attempt, capped.
  const std::uint64_t w1 = retry_backoff_ms(p, 1, 0);
  EXPECT_GE(w1, 25u);
  EXPECT_LE(w1, 50u);
  const std::uint64_t w5 = retry_backoff_ms(p, 5, 0);
  EXPECT_GE(w5, 400u);
  EXPECT_LE(w5, 800u);
  const std::uint64_t w12 = retry_backoff_ms(p, 12, 0);
  EXPECT_GE(w12, 1000u);
  EXPECT_LE(w12, 2000u);
  // A server hint larger than the jittered wait wins outright.
  EXPECT_EQ(retry_backoff_ms(p, 1, 5000), 5000u);
  // Different seeds decorrelate the schedule (not a hard guarantee per
  // attempt, so assert over the whole horizon).
  RetryPolicy q = p;
  q.seed = 12;
  bool differs = false;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    differs = differs ||
              retry_backoff_ms(p, attempt, 0) != retry_backoff_ms(q, attempt, 0);
  }
  EXPECT_TRUE(differs);

  EXPECT_TRUE(retryable(ErrorCode::kOverloaded));
  EXPECT_TRUE(retryable(ErrorCode::kRateLimited));
  EXPECT_FALSE(retryable(ErrorCode::kModelNotFound));
  EXPECT_FALSE(retryable(ErrorCode::kBadRequest));
  EXPECT_FALSE(retryable(ErrorCode::kDeadlineExceeded));
}

TEST(Resilience, GenerateWithRetryRidesOutRateLimitDeterministically) {
  ScopedManualClock mc;
  ServiceHarness h(one_job_per_sec_config());

  // Burn tenant t's budget, and keep the oracle bytes for the retried job.
  ClientResult first = h.client->generate("m", "t", 40, 7);
  ASSERT_TRUE(first.ok);
  ClientResult oracle = h.client->generate("m", "vip", 40, 8);
  ASSERT_TRUE(oracle.ok);

  std::vector<std::uint64_t> slept;
  RetryPolicy pol;
  pol.seed = 3;
  // The injected sleep advances the manual clock instead of waiting, so the
  // whole retry dance runs in zero real time.
  pol.sleep_fn = [&](std::uint64_t ms) {
    slept.push_back(ms);
    mc.clock().advance_ms(ms);
  };

  ClientResult r = h.client->generate_with_retry("m", "t", 40, 8, pol);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.attempts, 2u);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_EQ(slept[0], 1000u);  // the server hint dominates the 50 ms jitter
  // Retried output is bitwise the job's bytes — a retry can only repeat,
  // never diverge (pure function of snapshot, config, seed).
  EXPECT_EQ(r.trace.records, oracle.trace.records);
}

TEST(Resilience, GenerateWithRetryExhaustsBudgetTyped) {
  ScopedManualClock mc;
  ServiceHarness h(one_job_per_sec_config());
  ASSERT_TRUE(h.client->generate("m", "t", 40, 7).ok);

  RetryPolicy pol;
  pol.max_attempts = 3;
  pol.sleep_fn = [](std::uint64_t) {};  // never advances the clock
  ClientResult r = h.client->generate_with_retry("m", "t", 40, 8, pol);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kRateLimited);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(h.service->stats().shed_rate_limited, 3u);
}

TEST(Resilience, SocketClientReconnectsAcrossServerRestart) {
  SocketHarness h;
  SocketClient client(h.path);
  ClientResult before = client.generate("m", "t", 50, 21);
  ASSERT_TRUE(before.ok) << before.message;

  // Bounce the daemon front-end: every connection dies, the Service and
  // registry (and thus the published snapshot) survive.
  h.server->stop();
  h.server = std::make_unique<SocketServer>(*h.service, h.registry, h.path);

  RetryPolicy pol;
  pol.sleep_fn = [](std::uint64_t) {};
  ClientResult after = client.generate_with_retry("m", "t", 50, 21, pol);
  ASSERT_TRUE(after.ok) << after.message;
  EXPECT_GE(after.attempts, 2u);  // first attempt died with the old server
  EXPECT_EQ(after.trace.records, before.trace.records);
}

TEST(Resilience, SocketClientRetryExhaustsWhenDaemonStaysDown) {
  std::unique_ptr<SocketClient> client;
  {
    SocketHarness h;
    client = std::make_unique<SocketClient>(h.path);
    ASSERT_TRUE(client->generate("m", "t", 30, 2).ok);
  }  // harness gone: socket closed and unlinked

  RetryPolicy pol;
  pol.max_attempts = 3;
  pol.sleep_fn = [](std::uint64_t) {};
  ClientResult r = client->generate_with_retry("m", "t", 30, 2, pol);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kInternal);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_NE(r.message.find("reconnect"), std::string::npos) << r.message;
}

// ---------------------------------------------------------------------------
// Registry fault injection: a failed publish never disturbs what serves.
// ---------------------------------------------------------------------------

TEST(Resilience, InjectedSnapshotLoadFailureLeavesServingVersionUntouched) {
  ServiceHarness h;
  auto serving = h.registry.acquire("m");
  ASSERT_NE(serving, nullptr);

  {
    ChaosPlan plan;
    plan.p_registry_load_fail = 1.0;
    ScopedChaosPlan chaos(plan);
    try {
      h.registry.publish("m", snapshot_b().dir);
      FAIL() << "publish should have failed under chaos";
    } catch (const ml::SnapshotError& e) {
      EXPECT_EQ(e.kind(), ml::SnapshotError::Kind::kIo);
    }
    // The failed build installed nothing and generation is undisturbed.
    EXPECT_EQ(h.registry.acquire("m").get(), serving.get());
    EXPECT_TRUE(h.client->generate("m", "t", 30, 4).ok);
  }

  // With the plan cleared the same publish succeeds and hot-swaps.
  const std::uint64_t v = h.registry.publish("m", snapshot_b().dir);
  EXPECT_GT(v, serving->version());
  EXPECT_NE(h.registry.acquire("m").get(), serving.get());
}

// ---------------------------------------------------------------------------
// Watchdog: a stuck batch is one reported stall episode, then recovery.
// ---------------------------------------------------------------------------

TEST(Resilience, WatchdogReportsStuckBatchOnceAndRecovers) {
  ScopedManualClock mc;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.watchdog_poll_ms = 20;    // real-time poll pacing
  cfg.watchdog_stall_ms = 300;  // manual-clock stall window
  WorkerGate gate;
  ChaosPlan plan;
  plan.worker_hook = [&](std::size_t c, std::size_t j) { gate.hook(c, j); };
  ScopedChaosPlan chaos(plan);
  ServiceHarness h(cfg);

  auto job = h.client->submit("m", "t", 40, 5);
  gate.await_entered();  // batch is running and will export nothing
  mc.clock().advance_ms(400);

  // The watchdog polls on real time but measures the window on the manual
  // clock: within a few polls it must flag the stall, exactly once.
  ASSERT_TRUE(eventually([&] { return h.service->stats().stalled; }));
  ServiceStatsSnapshot s = h.service->stats();
  EXPECT_EQ(s.watchdog_stalls, 1u);
  EXPECT_GE(s.progress_age_ms, 300u);

  // More stalled time within the same episode does not re-report.
  mc.clock().advance_ms(400);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(h.service->stats().watchdog_stalls, 1u);

  gate.release();
  ClientResult r = job->wait();
  EXPECT_TRUE(r.ok) << r.message;  // a stall report never kills the job
  ASSERT_TRUE(eventually([&] { return !h.service->stats().stalled; }));
  s = h.service->stats();
  EXPECT_EQ(s.watchdog_stalls, 1u);
  EXPECT_EQ(s.progress_age_ms, 0u);  // idle: the age window is reset
}

// ---------------------------------------------------------------------------
// Frame bounds: reader-level and daemon-level (ServiceConfig plumbing).
// ---------------------------------------------------------------------------

TEST(Resilience, FrameReaderHonorsConfiguredBound) {
  EXPECT_EQ(FrameReader{}.max_frame(), FrameReader::kMaxFrame);
  EXPECT_EQ(FrameReader{0}.max_frame(), FrameReader::kMaxFrame);

  FrameReader r(600);
  std::vector<std::uint8_t> ok_frame;
  encode(StatsRequest{9}, ok_frame);
  r.feed(ok_frame.data(), ok_frame.size());
  EXPECT_TRUE(r.next().has_value());

  const std::uint8_t oversized[4] = {0xbc, 0x02, 0, 0};  // len = 700
  r.feed(oversized, sizeof(oversized));
  EXPECT_THROW(r.next(), ProtocolError);
}

TEST(Resilience, DaemonDropsOversizedInboundFrameOthersUnaffected) {
  ServiceConfig cfg;
  cfg.max_frame_bytes = 100;  // below the floor: sanitize raises it to 512
  SocketHarness h(cfg);
  EXPECT_EQ(h.service->config().max_frame_bytes, 512u);

  // A raw peer claiming a 1 MiB frame is desynced or hostile; the daemon
  // must drop it at the length prefix, before buffering the body.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, h.path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint8_t huge_len[4] = {0, 0, 0x10, 0};  // 1 MiB length prefix
  ASSERT_EQ(::send(fd, huge_len, sizeof(huge_len), MSG_NOSIGNAL), 4);
  std::uint8_t buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // clean EOF: dropped
  ::close(fd);

  // The daemon itself is unharmed: a well-formed client still serves.
  SocketClient client(h.path);
  EXPECT_TRUE(client.generate("m", "t", 30, 6).ok);
}

// ---------------------------------------------------------------------------
// Protocol fuzz smoke: hostile bytes produce typed rejections, never crashes.
// ---------------------------------------------------------------------------

// Feeds `stream` to a FrameReader in randomly sized slices, handing every
// complete frame to the per-type decoders. The only acceptable outcome per
// frame is a decoded message or a ProtocolError; anything else escapes and
// fails the test (and trips asan first, which is the point of the smoke).
void fuzz_stream(const std::vector<std::uint8_t>& stream, std::mt19937_64& rng,
                 std::size_t* frames, std::size_t* rejected) {
  FrameReader reader(1u << 16);
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        stream.size() - off, 1 + static_cast<std::size_t>(rng() % 4096));
    reader.feed(stream.data() + off, n);
    off += n;
    for (;;) {
      std::optional<FrameBody> frame;
      try {
        frame = reader.next();
      } catch (const ProtocolError&) {
        ++*rejected;
        reader = FrameReader(1u << 16);  // desynced stream: start over
        break;
      }
      if (!frame) break;
      ++*frames;
      try {
        switch (frame_type(*frame)) {
          case MsgType::kGenerate: decode_generate(*frame); break;
          case MsgType::kStats: decode_stats(*frame); break;
          case MsgType::kPublish: decode_publish(*frame); break;
          case MsgType::kChunk: decode_chunk(*frame); break;
          case MsgType::kDone: decode_done(*frame); break;
          case MsgType::kError: decode_error(*frame); break;
          case MsgType::kStatsReply: decode_stats_reply(*frame); break;
        }
      } catch (const ProtocolError&) {
        ++*rejected;
      }
    }
  }
}

TEST(Resilience, FuzzSmokeRandomStreamsRejectTyped) {
  std::size_t frames = 0, rejected = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::uint8_t> stream(1u << 20);
    for (auto& b : stream) b = static_cast<std::uint8_t>(rng());
    // Random u32 length prefixes are almost always oversized, so a pure
    // random stream exercises mostly the frame bound; seed some small
    // lengths to reach the decoders too.
    for (std::size_t i = 0; i + 4 < stream.size(); i += 997) {
      stream[i] = static_cast<std::uint8_t>(rng() % 64);
      stream[i + 1] = 0;
      stream[i + 2] = 0;
      stream[i + 3] = 0;
    }
    fuzz_stream(stream, rng, &frames, &rejected);
  }
  EXPECT_GT(rejected, 0u);  // hostile input was actually exercised
}

TEST(Resilience, FuzzSmokeBitFlippedFramesRejectTypedOrDecode) {
  // 10k structurally valid frames, each with one random bit flipped —
  // every corruption either still decodes (benign field flip) or throws
  // ProtocolError; nothing crashes, hangs, or leaks (asan-enforced).
  std::vector<std::uint8_t> pristine;
  GenerateRequest gen;
  gen.request_id = 1;
  gen.model_id = "model-id";
  gen.tenant = "tenant";
  gen.n_flows = 1000;
  gen.seed = 42;
  gen.deadline_ms = 1500;
  encode(gen, pristine);
  encode(PublishRequest{2, "model-id", "/tmp/snapshot"}, pristine);
  encode(StatsRequest{3}, pristine);
  encode(DoneReply{4, 1000, 7}, pristine);
  encode(ErrorReply{5, ErrorCode::kRateLimited, "slow down", 250}, pristine);
  encode(StatsReply{6, "{\"ok\":true}"}, pristine);
  ChunkReply chunk;
  chunk.request_id = 7;
  chunk.chunk_index = 1;
  chunk.part.records.resize(3);
  encode(chunk, pristine);

  std::mt19937_64 rng(2026);
  std::size_t frames = 0, rejected = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::vector<std::uint8_t> stream = pristine;
    const std::size_t bit = rng() % (stream.size() * 8);
    stream[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    fuzz_stream(stream, rng, &frames, &rejected);
  }
  EXPECT_GT(frames, 0u);
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace netshare::serve
