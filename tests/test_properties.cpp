// Parameterized property-style sweeps over the library's core invariants:
// codec round-trips over randomized values, checksum algebra across buffer
// sizes, EMD metric axioms, Zipf normalization across exponents, sketch
// guarantees across geometries, and DP accountant monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/distributions.hpp"
#include "embed/bit_encoding.hpp"
#include "embed/transforms.hpp"
#include "metrics/divergence.hpp"
#include "net/checksum.hpp"
#include "net/flow_collector.hpp"
#include "privacy/accountant.hpp"
#include "sketch/count_min.hpp"

namespace netshare {
namespace {

// --- Codec round-trips over randomized inputs -------------------------------

class BitCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitCodecProperty, IpRoundTripsForRandomAddresses) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL));
    const net::Ipv4Address ip(v);
    EXPECT_EQ(embed::bits_to_ip(embed::ip_to_bits(ip)), ip);
    EXPECT_EQ(embed::bytes_to_ip(embed::ip_to_bytes(ip)), ip);
  }
}

TEST_P(BitCodecProperty, PortRoundTripsForRandomPorts) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto p = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    EXPECT_EQ(embed::bits_to_port(embed::port_to_bits(p)), p);
    EXPECT_EQ(embed::bytes_to_port(embed::port_to_bytes(p)), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitCodecProperty,
                         ::testing::Values(1u, 17u, 7777u, 123456789u));

// --- Log transform properties ----------------------------------------------

class LogTransformProperty : public ::testing::TestWithParam<double> {};

TEST_P(LogTransformProperty, MonotoneAndBounded) {
  const embed::LogTransform t(GetParam());
  double prev = -1.0;
  for (double x = 0.0; x <= GetParam(); x += GetParam() / 37.0) {
    const double y = t.encode(x);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
    EXPECT_GT(y, prev - 1e-12);  // non-decreasing
    prev = y;
    EXPECT_NEAR(t.decode(y), x, 1e-6 * (1.0 + x));
  }
}

INSTANTIATE_TEST_SUITE_P(MaxValues, LogTransformProperty,
                         ::testing::Values(10.0, 1e3, 1e6, 1e9));

// --- Checksum algebra across sizes and splits --------------------------------

class ChecksumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChecksumProperty, SplitInvariance) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::uint16_t whole = net::internet_checksum(data.data(), data.size());
  for (std::size_t cut : {std::size_t{0}, data.size() / 3, data.size() / 2,
                          data.size()}) {
    net::ChecksumAccumulator acc;
    acc.add(data.data(), cut);
    acc.add(data.data() + cut, data.size() - cut);
    EXPECT_EQ(acc.finalize(), whole) << "cut=" << cut;
  }
}

TEST_P(ChecksumProperty, VerificationDetectsSingleBitFlips) {
  Rng rng(GetParam() + 99);
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::uint16_t sum = net::internet_checksum(data.data(), data.size());
  // Append the checksum; total must verify to zero; a bit flip must not.
  std::vector<std::uint8_t> with_sum = data;
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xff));
  // Only even-length payloads keep the appended checksum word-aligned.
  if (data.size() % 2 == 0) {
    EXPECT_EQ(net::internet_checksum(with_sum.data(), with_sum.size()), 0);
    with_sum[data.size() / 2] ^= 0x10;
    EXPECT_NE(net::internet_checksum(with_sum.data(), with_sum.size()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChecksumProperty,
                         ::testing::Values(2u, 20u, 21u, 64u, 1499u, 1500u));

// --- EMD metric axioms -------------------------------------------------------

class EmdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmdProperty, SymmetryNonNegativityIdentity) {
  Rng rng(GetParam());
  std::vector<double> a, b;
  for (int i = 0; i < 150; ++i) {
    a.push_back(rng.normal(0.0, 2.0));
    b.push_back(rng.normal(1.0, 1.0));
  }
  const double ab = metrics::emd_1d(a, b);
  const double ba = metrics::emd_1d(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GE(ab, 0.0);
  EXPECT_NEAR(metrics::emd_1d(a, a), 0.0, 1e-12);
}

TEST_P(EmdProperty, TriangleInequalityOnSamples) {
  Rng rng(GetParam() + 5);
  std::vector<double> a, b, c;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.uniform(0, 10));
    b.push_back(rng.uniform(5, 15));
    c.push_back(rng.uniform(-5, 5));
  }
  EXPECT_LE(metrics::emd_1d(a, c),
            metrics::emd_1d(a, b) + metrics::emd_1d(b, c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdProperty,
                         ::testing::Values(3u, 31u, 314u, 3141u));

// --- Zipf sampler across exponents -------------------------------------------

class ZipfProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfProperty, PmfNormalizedAndMonotone) {
  const datagen::ZipfSampler z(64, GetParam());
  double total = 0.0;
  double prev = 2.0;
  for (std::size_t k = 0; k < 64; ++k) {
    const double p = z.probability(k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfProperty,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

// --- Count-Min guarantee across geometries ------------------------------------

struct CmsGeometry {
  std::size_t depth;
  std::size_t width;
};

class CmsProperty : public ::testing::TestWithParam<CmsGeometry> {};

TEST_P(CmsProperty, NeverUnderestimatesAnyKey) {
  const auto [depth, width] = GetParam();
  sketch::CountMinSketch cms(depth, width, 5);
  Rng rng(6);
  std::unordered_map<std::uint64_t, std::uint64_t> exact;
  for (int i = 0; i < 5000; ++i) {
    const auto k = static_cast<std::uint64_t>(rng.uniform_int(0, 200));
    cms.update(k);
    exact[k]++;
  }
  for (const auto& [k, c] : exact) {
    EXPECT_GE(cms.estimate(k), static_cast<double>(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CmsProperty,
                         ::testing::Values(CmsGeometry{1, 32},
                                           CmsGeometry{3, 64},
                                           CmsGeometry{5, 512},
                                           CmsGeometry{8, 16}));

// --- DP accountant monotonicity across budgets --------------------------------

class AccountantProperty : public ::testing::TestWithParam<double> {};

TEST_P(AccountantProperty, EpsilonMonotoneInSteps) {
  const double sigma = GetParam();
  double prev = 0.0;
  for (std::size_t steps : {10u, 100u, 1000u, 10000u}) {
    const double eps = privacy::compute_epsilon(0.02, sigma, steps, 1e-5).epsilon;
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, AccountantProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 8.0));

// --- Flow collector conservation across timeout settings ----------------------

class CollectorProperty : public ::testing::TestWithParam<double> {};

TEST_P(CollectorProperty, PacketsAndBytesAreConserved) {
  Rng rng(42);
  net::PacketTrace trace;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    net::PacketRecord p;
    p.timestamp = rng.uniform(0.0, 120.0);
    p.key.src_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i % 7));
    p.key.dst_ip = net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i % 5));
    p.key.src_port = static_cast<std::uint16_t>(1000 + i % 11);
    p.key.dst_port = 80;
    p.key.protocol = net::Protocol::kTcp;
    p.size = 40 + static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    total_bytes += p.size;
    trace.packets.push_back(p);
  }
  const net::FlowCollector collector({GetParam(), GetParam() * 3});
  const auto flows = collector.collect(trace);
  std::uint64_t pkts = 0, bytes = 0;
  for (const auto& r : flows.records) {
    pkts += r.packets;
    bytes += r.bytes;
  }
  EXPECT_EQ(pkts, 500u);
  EXPECT_EQ(bytes, total_bytes);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, CollectorProperty,
                         ::testing::Values(0.5, 5.0, 15.0, 120.0));

}  // namespace
}  // namespace netshare
