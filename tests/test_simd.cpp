// Lockdown suite for the SIMD kernel tier (DESIGN.md §10): randomized
// ragged-shape property sweep against the scalar-tier oracle across every
// register-block candidate and thread count, forced-fallback equivalence
// (NETSHARE_SIMD=off env and KernelConfig::simd API), autotuner determinism
// (same shapes → same plan, global memo and Workspace snapshot), and a
// per-tier end-to-end DoppelGanger fit+sample bitwise check.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"

namespace netshare::ml {
namespace {

// memcmp, not double ==: even a -0.0 vs +0.0 divergence (a reduction-order
// or zero-skip tell) must fail.
void expect_bitwise(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  EXPECT_EQ(std::memcmp(got.data().data(), want.data().data(),
                        got.size() * sizeof(double)),
            0)
      << what << ": SIMD tier diverged from the scalar oracle";
}

bool simd_available() {
  return kernels::supported_tier() == kernels::SimdTier::kAvx2;
}

kernels::KernelConfig tier_cfg(kernels::SimdTier tier, std::size_t threads,
                               unsigned force_jtile = 0) {
  kernels::KernelConfig cfg;
  cfg.threads = threads;
  cfg.min_parallel_flops = threads > 1 ? 0 : cfg.min_parallel_flops;
  cfg.simd = tier;
  cfg.force_jtile = force_jtile;
  return cfg;
}

// Restores (or clears) an environment variable on scope exit, so a failing
// assertion can never leak NETSHARE_SIMD=off into unrelated tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
    kernels::reload_simd_env();
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// Random matrix with exact zeros sprinkled in, to drive the zero-skip
// branches through the same path on both tiers.
Matrix randn_with_zeros(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m = Matrix::randn(rows, cols, rng);
  for (auto& v : m.data()) {
    if (rng.bernoulli(0.15)) v = 0.0;
  }
  return m;
}

struct RaggedShape {
  std::size_t m, k, n;
};

// Ragged tails 1..17, primes, tile boundaries of every jtile candidate
// (8/16/32 plus the 4-wide and scalar column tails), and empty matrices.
std::vector<RaggedShape> ragged_shapes() {
  std::vector<RaggedShape> shapes = {
      {0, 5, 7}, {5, 0, 7},  {5, 7, 0},  {0, 0, 0},  {1, 1, 1},
      {1, 17, 1}, {2, 3, 5},  {7, 11, 13}, {17, 17, 17}, {3, 1, 31},
      {13, 29, 37}, {9, 16, 33}, {5, 8, 32}, {6, 64, 8}, {11, 5, 16},
      {4, 7, 41},  {23, 13, 64}, {8, 31, 24},
  };
  Rng rng(424242);
  for (int i = 0; i < 24; ++i) {  // randomized ragged sweep
    shapes.push_back(
        {static_cast<std::size_t>(rng.uniform_int(1, 70)),
         static_cast<std::size_t>(rng.uniform_int(1, 70)),
         static_cast<std::size_t>(rng.uniform_int(1, 70))});
  }
  return shapes;
}

// One shape's worth of operands plus the scalar-tier oracle outputs.
struct OracleCase {
  Matrix a, b, at, bt, bias, acc0;
  Matrix want_mm, want_bias, want_ta, want_acc, want_tb;
};

OracleCase make_oracle(const RaggedShape& s, Rng& rng) {
  OracleCase oc;
  oc.a = randn_with_zeros(s.m, s.k, rng);
  oc.b = randn_with_zeros(s.k, s.n, rng);
  oc.at = randn_with_zeros(s.k, s.m, rng);  // trans_a input (k × m)
  oc.bt = randn_with_zeros(s.n, s.k, rng);  // trans_b input (n × k)
  oc.bias = randn_with_zeros(1, s.n, rng);
  oc.acc0 = Matrix::randn(s.m, s.n, rng);   // pre-existing accumulator
  kernels::ConfigOverride guard(tier_cfg(kernels::SimdTier::kScalar, 1));
  kernels::matmul_into(oc.a, oc.b, oc.want_mm);
  kernels::matmul_bias_into(oc.a, oc.b, oc.bias, oc.want_bias);
  kernels::matmul_trans_a_into(oc.at, oc.b, oc.want_ta);
  oc.want_acc = oc.acc0;
  kernels::matmul_trans_a_acc_into(oc.at, oc.b, oc.want_acc);
  kernels::matmul_trans_b_into(oc.a, oc.bt, oc.want_tb);
  return oc;
}

TEST(Simd, PropertySweepRaggedShapesMatchScalarOracle) {
  if (!simd_available()) GTEST_SKIP() << "host has no AVX2";
  Rng rng(9001);
  Matrix got;
  for (const RaggedShape& s : ragged_shapes()) {
    const OracleCase oc = make_oracle(s, rng);
    // jtile 0 = autotuned path; 8/16/32 pin each register-block candidate.
    for (const unsigned jt : {0u, 8u, 16u, 32u}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        kernels::ConfigOverride guard(
            tier_cfg(kernels::SimdTier::kAvx2, threads, jt));
        SCOPED_TRACE("shape=" + std::to_string(s.m) + "x" +
                     std::to_string(s.k) + "x" + std::to_string(s.n) +
                     " jtile=" + std::to_string(jt) +
                     " threads=" + std::to_string(threads));
        kernels::matmul_into(oc.a, oc.b, got);
        expect_bitwise(got, oc.want_mm, "matmul_into");
        kernels::matmul_bias_into(oc.a, oc.b, oc.bias, got);
        expect_bitwise(got, oc.want_bias, "matmul_bias_into");
        kernels::matmul_trans_a_into(oc.at, oc.b, got);
        expect_bitwise(got, oc.want_ta, "matmul_trans_a_into");
        got = oc.acc0;
        kernels::matmul_trans_a_acc_into(oc.at, oc.b, got);
        expect_bitwise(got, oc.want_acc, "matmul_trans_a_acc_into");
        kernels::matmul_trans_b_into(oc.a, oc.bt, got);
        expect_bitwise(got, oc.want_tb, "matmul_trans_b_into");
      }
    }
  }
}

TEST(Simd, FusedGateMatchesScalarOracleAcrossCandidatesAndThreads) {
  if (!simd_available()) GTEST_SKIP() << "host has no AVX2";
  Rng rng(9002);
  const RaggedShape gate_shapes[] = {
      {1, 1, 1}, {2, 3, 5}, {17, 13, 17}, {33, 7, 41}, {16, 16, 48},
      {5, 11, 19}, {13, 2, 37},
  };
  Matrix scratch, out, want;
  for (const RaggedShape& s : gate_shapes) {  // batch=m, in=k, hid=n
    const Matrix x = randn_with_zeros(s.m, s.k, rng);
    const Matrix wx = randn_with_zeros(s.k, s.n, rng);
    const Matrix h = randn_with_zeros(s.m, s.n, rng);
    const Matrix wh = randn_with_zeros(s.n, s.n, rng);
    const Matrix bias = randn_with_zeros(1, s.n, rng);
    for (const auto act :
         {kernels::GateAct::kSigmoid, kernels::GateAct::kTanh}) {
      {
        kernels::ConfigOverride guard(
            tier_cfg(kernels::SimdTier::kScalar, 1));
        kernels::gru_gate_into(x, wx, h, wh, bias, act, scratch, want);
      }
      for (const unsigned jt : {0u, 8u, 16u, 32u}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
          kernels::ConfigOverride guard(
              tier_cfg(kernels::SimdTier::kAvx2, threads, jt));
          SCOPED_TRACE("gate=" + std::to_string(s.m) + "x" +
                       std::to_string(s.k) + "x" + std::to_string(s.n) +
                       " jtile=" + std::to_string(jt) +
                       " threads=" + std::to_string(threads));
          kernels::gru_gate_into(x, wx, h, wh, bias, act, scratch, out);
          expect_bitwise(out, want, "gru_gate_into");
        }
      }
    }
  }
}

TEST(Simd, EnvForcedFallbackMatchesDispatchedPath) {
  Rng rng(9003);
  const Matrix a = randn_with_zeros(43, 29, rng);
  const Matrix b = randn_with_zeros(29, 37, rng);
  Matrix dispatched, fallback;
  kernels::matmul_into(a, b, dispatched);
  {
    ScopedEnv env("NETSHARE_SIMD", "off");
    kernels::reload_simd_env();
    EXPECT_EQ(kernels::active_tier(), kernels::SimdTier::kScalar)
        << "NETSHARE_SIMD=off must pin the scalar tier";
    kernels::matmul_into(a, b, fallback);
  }
  // ScopedEnv restored + reloaded: dispatch is back to the CPU's best tier.
  EXPECT_EQ(kernels::active_tier(), kernels::supported_tier());
  expect_bitwise(fallback, dispatched, "env-forced scalar fallback");
}

TEST(Simd, ApiForcedFallbackMatchesDispatchedPath) {
  Rng rng(9004);
  const Matrix a = randn_with_zeros(31, 41, rng);
  const Matrix b = randn_with_zeros(41, 23, rng);
  const Matrix bias = randn_with_zeros(1, 23, rng);
  Matrix dispatched, fallback;
  kernels::matmul_bias_into(a, b, bias, dispatched);
  {
    kernels::ConfigOverride guard(tier_cfg(kernels::SimdTier::kScalar, 2));
    EXPECT_EQ(kernels::active_tier(), kernels::SimdTier::kScalar);
    kernels::matmul_bias_into(a, b, bias, fallback);
  }
  expect_bitwise(fallback, dispatched, "API-forced scalar fallback");
}

TEST(Simd, AutotunerDecidesDeterministicPlanAndWorkspaceCachesIt) {
  if (!simd_available()) GTEST_SKIP() << "host has no AVX2";
  Rng rng(9005);
  // Unique prime dims so this test owns the memo entry regardless of what
  // other tests dispatched before it; flops are far above the tuning floor.
  const std::size_t m = 59, k = 61, n = 53;
  const Matrix a = Matrix::randn(m, k, rng);
  const Matrix b = Matrix::randn(k, n, rng);
  Matrix c;
  kernels::ConfigOverride guard(tier_cfg(kernels::SimdTier::kAvx2, 1));
  // 3 candidates × 2 timing rounds: the 7th dispatch runs on a decided plan.
  for (int i = 0; i < 8; ++i) kernels::matmul_into(a, b, c);
  const kernels::TunePlan plan =
      kernels::tuned_plan(kernels::TuneOp::kMatmul, m, k, n);
  EXPECT_TRUE(plan.decided) << "autotuner should have converged";
  EXPECT_TRUE(plan.jtile == 8 || plan.jtile == 16 || plan.jtile == 32);
  // Same shapes → same plan: the memo is immutable once decided.
  for (int i = 0; i < 3; ++i) {
    const kernels::TunePlan again =
        kernels::tuned_plan(kernels::TuneOp::kMatmul, m, k, n);
    EXPECT_EQ(again.decided, plan.decided);
    EXPECT_EQ(again.jtile, plan.jtile);
  }
  // The per-model Workspace snapshot returns the same plan and memoizes it.
  Workspace ws;
  const kernels::TunePlan from_ws =
      ws.tune_plan(kernels::TuneOp::kMatmul, m, k, n);
  EXPECT_TRUE(from_ws.decided);
  EXPECT_EQ(from_ws.jtile, plan.jtile);
  EXPECT_EQ(ws.cached_plans(), 1u);
  const kernels::TunePlan cached =
      ws.tune_plan(kernels::TuneOp::kMatmul, m, k, n);
  EXPECT_EQ(cached.jtile, plan.jtile);
  EXPECT_EQ(ws.cached_plans(), 1u);
  // An undecided shape reports the default plan and is never cached stale.
  const kernels::TunePlan undecided =
      ws.tune_plan(kernels::TuneOp::kTransB, 997, 991, 983);
  EXPECT_FALSE(undecided.decided);
  EXPECT_EQ(ws.cached_plans(), 1u);
}

TEST(Simd, AutotunerConvergesForTheFusedGate) {
  if (!simd_available()) GTEST_SKIP() << "host has no AVX2";
  Rng rng(9006);
  const std::size_t batch = 43, in = 19, hid = 47;
  const Matrix x = Matrix::randn(batch, in, rng);
  const Matrix wx = Matrix::randn(in, hid, rng);
  const Matrix h = Matrix::randn(batch, hid, rng);
  const Matrix wh = Matrix::randn(hid, hid, rng);
  const Matrix bias = Matrix::randn(1, hid, rng);
  Matrix scratch, out;
  kernels::ConfigOverride guard(tier_cfg(kernels::SimdTier::kAvx2, 1));
  for (int i = 0; i < 6; ++i) {  // 2 gate candidates × 2 rounds, plus slack
    kernels::gru_gate_into(x, wx, h, wh, bias, kernels::GateAct::kSigmoid,
                           scratch, out);
  }
  const kernels::TunePlan plan =
      kernels::tuned_plan(kernels::TuneOp::kGate, batch, in + hid, hid);
  EXPECT_TRUE(plan.decided);
  EXPECT_TRUE(plan.jtile == 8 || plan.jtile == 16)
      << "gate competes only the 8/16 candidates (register pressure)";
}

// --- end-to-end: full DoppelGanger fit+sample per kernel tier -------------

gan::TimeSeriesSpec tiny_spec() {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSoftmax, 3},
                             {OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

gan::TimeSeriesDataset tiny_data(std::size_t n) {
  gan::TimeSeriesDataset data;
  data.spec = tiny_spec();
  data.attributes = Matrix(n, 4);
  data.features.assign(4, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

std::vector<double> train_and_snapshot(kernels::SimdTier tier,
                                       std::size_t kernel_threads,
                                       gan::GeneratedSeries* sampled) {
  kernels::ConfigOverride guard(tier_cfg(tier, kernel_threads));
  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  gan::DoppelGanger model(tiny_spec(), dg, 1234);
  model.fit(tiny_data(64), 25);
  Rng sample_rng(55);
  *sampled = model.sample(12, sample_rng);
  return model.snapshot();
}

TEST(Simd, DoppelGangerFitAndSampleBitwiseIdenticalAcrossTiers) {
  if (!simd_available()) {
    GTEST_SKIP() << "host has no AVX2: only the scalar tier exists";
  }
  gan::GeneratedSeries scalar_out, simd_out, simd_mt_out;
  const std::vector<double> scalar_snap =
      train_and_snapshot(kernels::SimdTier::kScalar, 1, &scalar_out);
  const std::vector<double> simd_snap =
      train_and_snapshot(kernels::SimdTier::kAvx2, 1, &simd_out);
  const std::vector<double> simd_mt_snap =
      train_and_snapshot(kernels::SimdTier::kAvx2, 8, &simd_mt_out);

  ASSERT_EQ(scalar_snap.size(), simd_snap.size());
  EXPECT_EQ(std::memcmp(scalar_snap.data(), simd_snap.data(),
                        scalar_snap.size() * sizeof(double)),
            0)
      << "SIMD-tier training changed the learned weights";
  EXPECT_EQ(std::memcmp(scalar_snap.data(), simd_mt_snap.data(),
                        scalar_snap.size() * sizeof(double)),
            0)
      << "SIMD-tier training is thread-count dependent";

  for (const gan::GeneratedSeries* out : {&simd_out, &simd_mt_out}) {
    expect_bitwise(out->attributes, scalar_out.attributes,
                   "sampled attributes");
    ASSERT_EQ(out->features.size(), scalar_out.features.size());
    for (std::size_t t = 0; t < scalar_out.features.size(); ++t) {
      expect_bitwise(out->features[t], scalar_out.features[t],
                     "sampled features");
    }
    EXPECT_EQ(out->lengths, scalar_out.lengths);
  }
}

}  // namespace
}  // namespace netshare::ml
