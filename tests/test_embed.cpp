// Tests for field encodings: bit/byte codecs, transforms, and the scalable
// IP2Vec engine (sharded vocabulary, alias negative sampler, batched
// deterministic training, blocked nearest-neighbour decode).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/netshare.hpp"
#include "core/preprocess.hpp"
#include "datagen/presets.hpp"
#include "embed/alias_sampler.hpp"
#include "embed/bit_encoding.hpp"
#include "embed/ip2vec.hpp"
#include "embed/transforms.hpp"
#include "embed/vocab.hpp"
#include "ml/kernels.hpp"
#include "ml/workspace.hpp"

namespace netshare::embed {
namespace {

TEST(BitEncoding, IpRoundTripExhaustiveOctets) {
  for (std::uint32_t v : {0u, 1u, 0x7f000001u, 0xc0a80101u, 0xffffffffu}) {
    const net::Ipv4Address ip(v);
    EXPECT_EQ(bits_to_ip(ip_to_bits(ip)), ip);
  }
}

TEST(BitEncoding, PortRoundTrip) {
  for (std::uint16_t p : {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{80},
                          std::uint16_t{1024}, std::uint16_t{65535}}) {
    EXPECT_EQ(bits_to_port(port_to_bits(p)), p);
  }
}

TEST(BitEncoding, SoftBitsDecodeByThreshold) {
  auto bits = port_to_bits(80);
  for (auto& b : bits) b = b > 0.5 ? 0.9 : 0.1;  // GAN-style soft outputs
  EXPECT_EQ(bits_to_port(bits), 80);
}

TEST(BitEncoding, RejectsWrongWidth) {
  std::vector<double> short_vec(5, 0.0);
  EXPECT_THROW(bits_to_ip(short_vec), std::invalid_argument);
  EXPECT_THROW(bits_to_port(short_vec), std::invalid_argument);
}

TEST(ByteEncoding, RoundTrips) {
  const net::Ipv4Address ip(10, 20, 30, 40);
  EXPECT_EQ(bytes_to_ip(ip_to_bytes(ip)), ip);
  EXPECT_EQ(bytes_to_port(port_to_bytes(8080)), 8080);
}

TEST(LogTransform, MapsToUnitIntervalMonotonically) {
  LogTransform t(1e8);
  EXPECT_DOUBLE_EQ(t.encode(0.0), 0.0);
  EXPECT_NEAR(t.encode(1e8), 1.0, 1e-12);
  EXPECT_LT(t.encode(100.0), t.encode(1000.0));
  // Small values occupy a substantial share of the coded range — the whole
  // point of the log transform for large-support fields (Insight 2).
  EXPECT_GT(t.encode(1000.0), 0.3);
}

TEST(LogTransform, RoundTripAccuracy) {
  LogTransform t(1e6);
  for (double x : {0.0, 1.0, 42.0, 9999.0, 1e6}) {
    EXPECT_NEAR(t.decode(t.encode(x)), x, 1e-6 * (1.0 + x));
  }
}

TEST(LogTransform, DecodesClampedInput) {
  LogTransform t(100.0);
  EXPECT_DOUBLE_EQ(t.decode(-0.5), 0.0);
  EXPECT_NEAR(t.decode(1.5), 100.0, 1e-9);
}

TEST(MinMaxTransform, FitAndRoundTrip) {
  const std::vector<double> data{3.0, 7.0, 5.0, 9.0};
  const auto t = MinMaxTransform::fit(data);
  EXPECT_DOUBLE_EQ(t.encode(3.0), 0.0);
  EXPECT_DOUBLE_EQ(t.encode(9.0), 1.0);
  EXPECT_NEAR(t.decode(t.encode(5.0)), 5.0, 1e-12);
}

TEST(MinMaxTransform, DegenerateRangeIsSafe) {
  const std::vector<double> data{4.0, 4.0};
  const auto t = MinMaxTransform::fit(data);
  EXPECT_NO_THROW(t.encode(4.0));
}

TEST(OneHot, RoundTripAndSoftDecode) {
  const auto v = one_hot(2, 5);
  EXPECT_EQ(one_hot_decode(v), 2u);
  const std::vector<double> soft{0.1, 0.2, 0.6, 0.05, 0.05};
  EXPECT_EQ(one_hot_decode(soft), 2u);
  EXPECT_THROW(one_hot(5, 5), std::invalid_argument);
}

class Ip2VecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub, 3000, 21);
    auto sentences = sentences_from_packets(pub.packets);
    Rng rng(22);
    Ip2Vec::Config cfg;
    cfg.dim = 8;
    cfg.epochs = 2;
    model_.train(sentences, cfg, rng);
  }
  Ip2Vec model_;
};

TEST_F(Ip2VecTest, VocabularyCoversCommonServicePorts) {
  for (std::uint32_t port : {53u, 80u, 443u}) {
    EXPECT_TRUE(model_.contains({TokenKind::kPort, port})) << port;
  }
  EXPECT_TRUE(model_.contains(
      {TokenKind::kProtocol, static_cast<std::uint32_t>(net::Protocol::kTcp)}));
}

TEST_F(Ip2VecTest, EmbedNearestRoundTripsInVocabTokens) {
  // The key decode property: the NN of a token's own embedding is the token.
  for (std::uint32_t port : {53u, 80u, 443u}) {
    const Token t{TokenKind::kPort, port};
    const auto v = model_.embed(t);
    EXPECT_EQ(model_.nearest(v, TokenKind::kPort), t);
  }
}

TEST_F(Ip2VecTest, NearestRespectsKind) {
  const Token t{TokenKind::kPort, 80};
  const auto v = model_.embed(t);
  const Token p = model_.nearest(v, TokenKind::kProtocol);
  EXPECT_EQ(p.kind, TokenKind::kProtocol);
}

TEST_F(Ip2VecTest, OovThrows) {
  EXPECT_THROW(model_.embed({TokenKind::kPort, 64999}), std::out_of_range);
}

TEST(Ip2Vec, PortsCooccurringWithSameProtocolClusterTogether) {
  // Two TCP service ports should be closer to each other than a TCP port is
  // to a UDP port, because they share protocol context words.
  net::FlowTrace trace;
  Rng rng(23);
  for (int i = 0; i < 1200; ++i) {
    net::FlowRecord r;
    r.key.src_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i % 17));
    r.key.dst_ip = net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i % 13));
    r.key.src_port = static_cast<std::uint16_t>(1024 + (i * 31) % 1000);
    switch (i % 3) {
      case 0:
        r.key.dst_port = 80;
        r.key.protocol = net::Protocol::kTcp;
        break;
      case 1:
        r.key.dst_port = 443;
        r.key.protocol = net::Protocol::kTcp;
        break;
      default:
        r.key.dst_port = 53;
        r.key.protocol = net::Protocol::kUdp;
        break;
    }
    trace.records.push_back(r);
  }
  Ip2Vec model;
  Ip2Vec::Config cfg;
  cfg.dim = 8;
  cfg.epochs = 6;
  model.train(sentences_from_flows(trace), cfg, rng);

  auto dist = [&](std::uint32_t a, std::uint32_t b) {
    const auto va = model.embed({TokenKind::kPort, a});
    const auto vb = model.embed({TokenKind::kPort, b});
    double d = 0.0;
    for (std::size_t k = 0; k < va.size(); ++k) {
      d += (va[k] - vb[k]) * (va[k] - vb[k]);
    }
    return d;
  };
  EXPECT_LT(dist(80, 443), dist(80, 53));
}

// ---------------------------------------------------------------------------
// TokenHash

TEST(TokenHash, SpreadsStridedIpValues) {
  // Regression for the identity-hash pitfall: libstdc++'s std::hash of an
  // integer is the identity, so IP values sharing low bits (a stride-1024
  // scan here) would all collapse into one power-of-two bucket. The mixed
  // hash must keep the max bucket load near the uniform expectation.
  constexpr std::size_t kBuckets = 1024;
  std::vector<int> load(kBuckets, 0);
  TokenHash h;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    ++load[h(Token{TokenKind::kIp, i * 1024u}) & (kBuckets - 1)];
  }
  // Uniform expectation 4 per bucket; identity hashing would put all 4096
  // into bucket 0.
  EXPECT_LT(*std::max_element(load.begin(), load.end()), 20);
}

TEST(TokenHash, KindParticipatesInHash) {
  TokenHash h;
  EXPECT_NE(h(Token{TokenKind::kIp, 443}), h(Token{TokenKind::kPort, 443}));
}

// ---------------------------------------------------------------------------
// Alias sampler

TEST(AliasSampler, MatchesWeightsApproximately) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 2.0};
  const AliasTable table(weights);
  std::vector<double> freq(weights.size(), 0.0);
  constexpr int kDraws = 200000;
  for (int c = 0; c < kDraws; ++c) {
    freq[table.sample(mix_seed(123, static_cast<std::uint64_t>(c)))] += 1.0;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 8.0 * kDraws;
    EXPECT_NEAR(freq[i], expected, 0.05 * expected) << i;
  }
}

TEST(AliasSampler, SampleIsPureInBits) {
  const AliasTable table({0.5, 1.5, 4.0});
  for (std::uint64_t bits : {0ull, 1ull, 0x123456789abcdef0ull, ~0ull}) {
    EXPECT_EQ(table.sample(bits), table.sample(bits));
  }
}

TEST(AliasSampler, DrawNegativeNeverReturnsPositive) {
  // Concentrate nearly all mass on slot 0, then draw with positive == 0:
  // the legacy sampler would silently drop such interactions; the bounded
  // resample must always land elsewhere.
  const AliasTable table({1e9, 1.0, 1.0});
  for (std::uint64_t c = 0; c < 5000; ++c) {
    const std::size_t s = draw_negative(table, 0, 42, c);
    EXPECT_NE(s, 0u);
    EXPECT_EQ(s, draw_negative(table, 0, 42, c));  // counter-deterministic
  }
}

// ---------------------------------------------------------------------------
// Sharded vocabulary

TEST(ShardedVocab, DirectShardsUseFirstOccurrenceOrder) {
  ShardedVocab v;
  v.build({{{TokenKind::kPort, 80}, {TokenKind::kProtocol, 6}},
           {{TokenKind::kPort, 53}, {TokenKind::kPort, 80}}},
          {});
  EXPECT_EQ(v.kind_size(TokenKind::kPort), 2u);
  EXPECT_EQ(v.kind_slot({TokenKind::kPort, 80}), 0u);
  EXPECT_EQ(v.kind_slot({TokenKind::kPort, 53}), 1u);
  EXPECT_EQ(v.kind_slot({TokenKind::kPort, 443}), ShardedVocab::npos);
  EXPECT_EQ(v.token_at(TokenKind::kPort, 1), (Token{TokenKind::kPort, 53}));
  // Global layout is packed in TokenKind order.
  EXPECT_EQ(v.kind_offset(TokenKind::kPort), v.kind_size(TokenKind::kIp));
  EXPECT_EQ(v.size(), 3u);
  // Counts follow slots: port 80 occurred twice.
  EXPECT_EQ(v.slot_counts()[v.lookup({TokenKind::kPort, 80})], 2u);
}

TEST(ShardedVocab, UncappedUnseenIpIsOov) {
  ShardedVocab v;
  v.build({{{TokenKind::kIp, 100}, {TokenKind::kIp, 200}}}, {});
  EXPECT_FALSE(v.ip_capped());
  EXPECT_NE(v.kind_slot({TokenKind::kIp, 100}), ShardedVocab::npos);
  EXPECT_EQ(v.kind_slot({TokenKind::kIp, 999}), ShardedVocab::npos);
}

TEST(ShardedVocab, FrequencyCapFoldsRareIpsIntoTailBuckets) {
  // 64 IPs with strictly decreasing frequency; cap at 8 exact slots.
  std::vector<std::vector<Token>> sentences;
  for (std::uint32_t ip = 0; ip < 64; ++ip) {
    for (std::uint32_t rep = 0; rep < 64 - ip; ++rep) {
      sentences.push_back({{TokenKind::kIp, 1000 + ip}});
    }
  }
  VocabConfig cfg;
  cfg.max_ip_slots = 8;
  cfg.ip_tail_buckets = 16;
  ShardedVocab v;
  v.build(sentences, cfg);
  EXPECT_TRUE(v.ip_capped());
  EXPECT_EQ(v.ip_exact_slots(), 8u);
  EXPECT_LE(v.kind_size(TokenKind::kIp), 8u + 16u);
  EXPECT_GT(v.kind_size(TokenKind::kIp), 8u);
  // The most frequent IPs keep exact slots...
  for (std::uint32_t ip = 0; ip < 8; ++ip) {
    EXPECT_TRUE(v.contains_exact({TokenKind::kIp, 1000 + ip})) << ip;
  }
  // ...rare IPs resolve to shared tail slots (not OOV, not exact).
  for (std::uint32_t ip = 40; ip < 64; ++ip) {
    const Token t{TokenKind::kIp, 1000 + ip};
    EXPECT_FALSE(v.contains_exact(t)) << ip;
    const std::size_t slot = v.kind_slot(t);
    ASSERT_NE(slot, ShardedVocab::npos) << ip;
    EXPECT_GE(slot, v.ip_exact_slots()) << ip;
  }
  // Rebuilding from the same input reproduces the exact layout.
  ShardedVocab w;
  w.build(sentences, cfg);
  ASSERT_EQ(w.size(), v.size());
  for (std::size_t g = 0; g < v.size(); ++g) {
    EXPECT_EQ(w.token_at_global(g), v.token_at_global(g));
  }
}

// ---------------------------------------------------------------------------
// Batched deterministic training

std::vector<std::vector<Token>> small_public_sentences(std::size_t records,
                                                       std::uint64_t seed) {
  const auto pub =
      datagen::make_dataset(datagen::DatasetId::kCaidaPub, records, seed);
  return sentences_from_packets(pub.packets);
}

TEST(Ip2VecTrain, BatchedEngineMatchesReferenceAtAnyWorkerCount) {
  const auto sentences = small_public_sentences(600, 11);
  for (std::uint64_t seed : {7ull, 99ull}) {
    Ip2Vec::Config cfg;
    cfg.dim = 6;
    cfg.epochs = 2;
    cfg.batch_interactions = 64;
    Ip2Vec ref;
    {
      Rng rng(seed);
      ref.train_reference(sentences, cfg, rng);
    }
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      cfg.workers = workers;
      Ip2Vec m;
      Rng rng(seed);
      m.train(sentences, cfg, rng);
      EXPECT_TRUE(m.bitwise_equal(ref))
          << "workers=" << workers << " seed=" << seed;
    }
  }
}

TEST(Ip2VecTrain, IdentityHoldsUnderFrequencyCap) {
  const auto sentences = small_public_sentences(600, 13);
  Ip2Vec::Config cfg;
  cfg.dim = 4;
  cfg.epochs = 1;
  cfg.vocab.max_ip_slots = 32;
  cfg.vocab.ip_tail_buckets = 16;
  Ip2Vec ref;
  {
    Rng rng(3);
    ref.train_reference(sentences, cfg, rng);
  }
  EXPECT_TRUE(ref.vocab().ip_capped());
  for (std::size_t workers : {1u, 3u}) {
    cfg.workers = workers;
    Ip2Vec m;
    Rng rng(3);
    m.train(sentences, cfg, rng);
    EXPECT_TRUE(m.bitwise_equal(ref)) << workers;
  }
}

TEST(Ip2VecTrain, BatchSizeOneIsThePerPairOracle) {
  // batch_interactions == 1 degenerates to classic sequential SGD; the
  // engine and the nested-loop reference must still agree bitwise.
  const auto sentences = small_public_sentences(200, 17);
  Ip2Vec::Config cfg;
  cfg.dim = 4;
  cfg.epochs = 1;
  cfg.batch_interactions = 1;
  cfg.workers = 4;
  Ip2Vec a, b;
  Rng ra(5), rb(5);
  a.train(sentences, cfg, ra);
  b.train_reference(sentences, cfg, rb);
  EXPECT_TRUE(a.bitwise_equal(b));
}

// ---------------------------------------------------------------------------
// Batched nearest-neighbour decode

class NearestBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto sentences = small_public_sentences(1200, 19);
    Rng rng(29);
    Ip2Vec::Config cfg;
    cfg.dim = 6;
    cfg.epochs = 2;
    model_.train(sentences, cfg, rng);
  }

  // Queries spread over the embedding coordinate range.
  ml::Matrix make_queries(std::size_t n, std::uint64_t seed) const {
    ml::Matrix q(n, model_.dim());
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < model_.dim(); ++k) {
        q(i, k) = rng.uniform(-0.8, 0.8);
      }
    }
    return q;
  }

  Ip2Vec model_;
};

TEST_F(NearestBatchTest, MatchesReferenceAcrossKernelThreadCounts) {
  const ml::Matrix q = make_queries(777, 31);
  for (TokenKind kind : {TokenKind::kIp, TokenKind::kPort}) {
    std::vector<Token> ref(q.rows());
    model_.nearest_batch_reference(q, kind, {}, ref);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ml::kernels::KernelConfig kcfg;
      kcfg.threads = threads;
      kcfg.min_parallel_flops = 1;  // force the parallel kernel path
      ml::kernels::ConfigOverride guard(kcfg);
      ml::Workspace ws;
      std::vector<Token> got(q.rows());
      model_.nearest_batch(q, kind, {}, got, ws);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "threads=" << threads << " row=" << i;
      }
    }
  }
}

TEST_F(NearestBatchTest, MatchesTheLinearScanOracle) {
  // Scoring-form equivalence: argmin of ‖e‖² − 2⟨q,e⟩ == argmin of ‖q−e‖²
  // (ties may differ only at exact float equality, which the uniform random
  // queries don't produce).
  const ml::Matrix q = make_queries(64, 37);
  ml::Workspace ws;
  std::vector<Token> got(q.rows());
  model_.nearest_batch(q, TokenKind::kPort, {}, got, ws);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const std::span<const double> row(q.row_ptr(i), q.cols());
    EXPECT_EQ(got[i], model_.nearest(row, TokenKind::kPort)) << i;
  }
}

TEST_F(NearestBatchTest, MasksRestrictAndFallBack) {
  const ml::Matrix q = make_queries(33, 41);
  const std::size_t nports = model_.vocab().kind_size(TokenKind::kPort);
  // Accept only slot 3 -> every row decodes to that token.
  std::vector<std::uint8_t> only3(nports, 0);
  only3[3] = 1;
  std::vector<const std::uint8_t*> masks(q.rows(), only3.data());
  std::vector<Token> got(q.rows());
  ml::Workspace ws;
  model_.nearest_batch(q, TokenKind::kPort, masks, got, ws);
  const Token expected = model_.vocab().token_at(TokenKind::kPort, 3);
  for (const Token& t : got) EXPECT_EQ(t, expected);
  // All-rejecting mask falls back to the unmasked nearest (nearest_if
  // semantics).
  std::vector<std::uint8_t> none(nports, 0);
  std::fill(masks.begin(), masks.end(), none.data());
  std::vector<Token> fallback(q.rows());
  model_.nearest_batch(q, TokenKind::kPort, masks, fallback, ws);
  std::vector<Token> unmasked(q.rows());
  model_.nearest_batch(q, TokenKind::kPort, {}, unmasked, ws);
  for (std::size_t i = 0; i < fallback.size(); ++i) {
    EXPECT_EQ(fallback[i], unmasked[i]) << i;
  }
}

TEST_F(NearestBatchTest, ZeroSteadyStateAllocationsPerBatch) {
  const ml::Matrix q = make_queries(128, 43);
  ml::Workspace ws;
  std::vector<Token> out(q.rows());
  // Warm the pool, then a steady-state batch must not allocate a single
  // Matrix (the ISSUE's decode gate; also enforced in BENCH_embed.json).
  for (int warm = 0; warm < 2; ++warm) {
    ws.reset();
    model_.nearest_batch(q, TokenKind::kPort, {}, out, ws);
  }
  ml::alloc_counter::reset();
  ws.reset();
  model_.nearest_batch(q, TokenKind::kPort, {}, out, ws);
  EXPECT_EQ(ml::alloc_counter::count(), 0u);
}

TEST(TupleCodecBatch, DecodeBatchMatchesPerRowDecode) {
  core::NetShareConfig cfg;
  const auto ip2vec = core::make_public_ip2vec_for(cfg, 2015, 800);
  core::TupleCodec codec(cfg, ip2vec.get());
  const std::size_t dim = codec.dim(false);
  ml::Matrix attrs(50, dim);
  Rng rng(47);
  for (std::size_t i = 0; i < attrs.rows(); ++i) {
    for (std::size_t k = 0; k < dim; ++k) attrs(i, k) = rng.uniform();
  }
  std::vector<net::FiveTuple> batched(attrs.rows());
  ml::Workspace ws;
  codec.decode_batch(attrs, batched, ws);
  for (std::size_t i = 0; i < attrs.rows(); ++i) {
    EXPECT_EQ(batched[i], codec.decode(attrs.row_ptr(i))) << i;
  }
}

// ---------------------------------------------------------------------------
// Million-token vocabulary support in the data generator

TEST(PresetOverrides, WidenAddressWindowsForLargeIpPools) {
  // Defaults: the legacy 16/18-bit windows (published preset addresses are
  // unchanged bit-for-bit).
  datagen::TraceSimulator legacy(
      datagen::preset_config(datagen::DatasetId::kCidds));
  EXPECT_EQ(legacy.src_address_window(), 1u << 16);
  EXPECT_EQ(legacy.dst_address_window(), 1u << 18);
  // A million-IP override widens each window to the covering power of two,
  // keeping the stride map injective over the pool.
  datagen::PresetOverrides ov;
  ov.num_src_ips = 1'000'000;
  ov.num_dst_ips = 300'000;
  ov.src_zipf_alpha = 0.4;
  const auto cfg = datagen::preset_config(datagen::DatasetId::kCidds, ov);
  EXPECT_EQ(cfg.num_src_ips, 1'000'000u);
  EXPECT_EQ(cfg.src_zipf_alpha, 0.4);
  datagen::TraceSimulator wide(cfg);
  EXPECT_EQ(wide.src_address_window(), 1u << 20);
  EXPECT_EQ(wide.dst_address_window(), 1u << 19);
}

TEST(PresetOverrides, OverriddenPoolYieldsMoreDistinctAddresses) {
  datagen::PresetOverrides ov;
  ov.num_src_ips = 1u << 18;
  ov.src_zipf_alpha = 0.0;  // uniform ranks: maximal distinct addresses
  const auto bundle =
      datagen::make_dataset(datagen::DatasetId::kCidds, 4000, 3, ov);
  std::set<std::uint32_t> src;
  for (const auto& r : bundle.flows.records) src.insert(r.key.src_ip.value());
  // CIDDS defaults to 24 source IPs; the widened pool must blow far past it.
  EXPECT_GT(src.size(), 500u);
}

}  // namespace
}  // namespace netshare::embed
