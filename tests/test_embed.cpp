// Tests for field encodings: bit/byte codecs, transforms, IP2Vec.
#include <gtest/gtest.h>

#include "datagen/presets.hpp"
#include "embed/bit_encoding.hpp"
#include "embed/ip2vec.hpp"
#include "embed/transforms.hpp"

namespace netshare::embed {
namespace {

TEST(BitEncoding, IpRoundTripExhaustiveOctets) {
  for (std::uint32_t v : {0u, 1u, 0x7f000001u, 0xc0a80101u, 0xffffffffu}) {
    const net::Ipv4Address ip(v);
    EXPECT_EQ(bits_to_ip(ip_to_bits(ip)), ip);
  }
}

TEST(BitEncoding, PortRoundTrip) {
  for (std::uint16_t p : {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{80},
                          std::uint16_t{1024}, std::uint16_t{65535}}) {
    EXPECT_EQ(bits_to_port(port_to_bits(p)), p);
  }
}

TEST(BitEncoding, SoftBitsDecodeByThreshold) {
  auto bits = port_to_bits(80);
  for (auto& b : bits) b = b > 0.5 ? 0.9 : 0.1;  // GAN-style soft outputs
  EXPECT_EQ(bits_to_port(bits), 80);
}

TEST(BitEncoding, RejectsWrongWidth) {
  std::vector<double> short_vec(5, 0.0);
  EXPECT_THROW(bits_to_ip(short_vec), std::invalid_argument);
  EXPECT_THROW(bits_to_port(short_vec), std::invalid_argument);
}

TEST(ByteEncoding, RoundTrips) {
  const net::Ipv4Address ip(10, 20, 30, 40);
  EXPECT_EQ(bytes_to_ip(ip_to_bytes(ip)), ip);
  EXPECT_EQ(bytes_to_port(port_to_bytes(8080)), 8080);
}

TEST(LogTransform, MapsToUnitIntervalMonotonically) {
  LogTransform t(1e8);
  EXPECT_DOUBLE_EQ(t.encode(0.0), 0.0);
  EXPECT_NEAR(t.encode(1e8), 1.0, 1e-12);
  EXPECT_LT(t.encode(100.0), t.encode(1000.0));
  // Small values occupy a substantial share of the coded range — the whole
  // point of the log transform for large-support fields (Insight 2).
  EXPECT_GT(t.encode(1000.0), 0.3);
}

TEST(LogTransform, RoundTripAccuracy) {
  LogTransform t(1e6);
  for (double x : {0.0, 1.0, 42.0, 9999.0, 1e6}) {
    EXPECT_NEAR(t.decode(t.encode(x)), x, 1e-6 * (1.0 + x));
  }
}

TEST(LogTransform, DecodesClampedInput) {
  LogTransform t(100.0);
  EXPECT_DOUBLE_EQ(t.decode(-0.5), 0.0);
  EXPECT_NEAR(t.decode(1.5), 100.0, 1e-9);
}

TEST(MinMaxTransform, FitAndRoundTrip) {
  const std::vector<double> data{3.0, 7.0, 5.0, 9.0};
  const auto t = MinMaxTransform::fit(data);
  EXPECT_DOUBLE_EQ(t.encode(3.0), 0.0);
  EXPECT_DOUBLE_EQ(t.encode(9.0), 1.0);
  EXPECT_NEAR(t.decode(t.encode(5.0)), 5.0, 1e-12);
}

TEST(MinMaxTransform, DegenerateRangeIsSafe) {
  const std::vector<double> data{4.0, 4.0};
  const auto t = MinMaxTransform::fit(data);
  EXPECT_NO_THROW(t.encode(4.0));
}

TEST(OneHot, RoundTripAndSoftDecode) {
  const auto v = one_hot(2, 5);
  EXPECT_EQ(one_hot_decode(v), 2u);
  const std::vector<double> soft{0.1, 0.2, 0.6, 0.05, 0.05};
  EXPECT_EQ(one_hot_decode(soft), 2u);
  EXPECT_THROW(one_hot(5, 5), std::invalid_argument);
}

class Ip2VecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub, 3000, 21);
    auto sentences = sentences_from_packets(pub.packets);
    Rng rng(22);
    Ip2Vec::Config cfg;
    cfg.dim = 8;
    cfg.epochs = 2;
    model_.train(sentences, cfg, rng);
  }
  Ip2Vec model_;
};

TEST_F(Ip2VecTest, VocabularyCoversCommonServicePorts) {
  for (std::uint32_t port : {53u, 80u, 443u}) {
    EXPECT_TRUE(model_.contains({TokenKind::kPort, port})) << port;
  }
  EXPECT_TRUE(model_.contains(
      {TokenKind::kProtocol, static_cast<std::uint32_t>(net::Protocol::kTcp)}));
}

TEST_F(Ip2VecTest, EmbedNearestRoundTripsInVocabTokens) {
  // The key decode property: the NN of a token's own embedding is the token.
  for (std::uint32_t port : {53u, 80u, 443u}) {
    const Token t{TokenKind::kPort, port};
    const auto v = model_.embed(t);
    EXPECT_EQ(model_.nearest(v, TokenKind::kPort), t);
  }
}

TEST_F(Ip2VecTest, NearestRespectsKind) {
  const Token t{TokenKind::kPort, 80};
  const auto v = model_.embed(t);
  const Token p = model_.nearest(v, TokenKind::kProtocol);
  EXPECT_EQ(p.kind, TokenKind::kProtocol);
}

TEST_F(Ip2VecTest, OovThrows) {
  EXPECT_THROW(model_.embed({TokenKind::kPort, 64999}), std::out_of_range);
}

TEST(Ip2Vec, PortsCooccurringWithSameProtocolClusterTogether) {
  // Two TCP service ports should be closer to each other than a TCP port is
  // to a UDP port, because they share protocol context words.
  net::FlowTrace trace;
  Rng rng(23);
  for (int i = 0; i < 1200; ++i) {
    net::FlowRecord r;
    r.key.src_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i % 17));
    r.key.dst_ip = net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i % 13));
    r.key.src_port = static_cast<std::uint16_t>(1024 + (i * 31) % 1000);
    switch (i % 3) {
      case 0:
        r.key.dst_port = 80;
        r.key.protocol = net::Protocol::kTcp;
        break;
      case 1:
        r.key.dst_port = 443;
        r.key.protocol = net::Protocol::kTcp;
        break;
      default:
        r.key.dst_port = 53;
        r.key.protocol = net::Protocol::kUdp;
        break;
    }
    trace.records.push_back(r);
  }
  Ip2Vec model;
  Ip2Vec::Config cfg;
  cfg.dim = 8;
  cfg.epochs = 6;
  model.train(sentences_from_flows(trace), cfg, rng);

  auto dist = [&](std::uint32_t a, std::uint32_t b) {
    const auto va = model.embed({TokenKind::kPort, a});
    const auto vb = model.embed({TokenKind::kPort, b});
    double d = 0.0;
    for (std::size_t k = 0; k < va.size(); ++k) {
      d += (va[k] - vb[k]) * (va[k] - vb[k]);
    }
    return d;
  };
  EXPECT_LT(dist(80, 443), dist(80, 53));
}

}  // namespace
}  // namespace netshare::embed
