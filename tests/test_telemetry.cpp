// Tests for the telemetry subsystem (DESIGN.md §8): thread-sharded metric
// aggregation (run under the TSan preset), histogram bucket semantics, span
// nesting and Chrome-trace JSON validity, diag rate limiting, the runtime
// kill switch, and the zero-allocations-per-op contract (counting global
// operator new, extending the tests/test_alloc.cpp pattern).
//
// This binary only builds when NETSHARE_TELEMETRY=ON (tests/CMakeLists.txt);
// the compiled-out macro mode is covered by every other test target when the
// option is OFF.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace netshare;

static_assert(telemetry::kCompiledIn,
              "test_telemetry must be built with NETSHARE_TELEMETRY=ON");

// ---------------------------------------------------------------------------
// Counting global operator new: every heap allocation in this binary bumps
// g_heap_allocs, so a window with an unchanged count provably performed zero
// allocations (stricter than test_alloc.cpp, which counts Matrix buffers).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t find_counter(const telemetry::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

const telemetry::HistogramSnapshot* find_hist(
    const telemetry::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

bool has_gauge(const telemetry::MetricsSnapshot& snap, const std::string& name,
               double* value = nullptr) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) {
      if (value != nullptr) *value = v;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax validator — enough to prove the
// trace file is well-formed JSON (Perfetto/Chrome would reject it otherwise).
// ---------------------------------------------------------------------------

struct JsonCursor {
  const char* p;
  const char* end;
  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
};

bool parse_value(JsonCursor& c);

bool parse_string(JsonCursor& c) {
  if (c.p >= c.end || *c.p != '"') return false;
  ++c.p;
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\') {
      ++c.p;
      if (c.p >= c.end) return false;
    }
    ++c.p;
  }
  if (c.p >= c.end) return false;
  ++c.p;  // closing quote
  return true;
}

bool parse_number(JsonCursor& c) {
  const char* start = c.p;
  if (c.p < c.end && (*c.p == '-' || *c.p == '+')) ++c.p;
  while (c.p < c.end &&
         (std::isdigit(static_cast<unsigned char>(*c.p)) || *c.p == '.' ||
          *c.p == 'e' || *c.p == 'E' || *c.p == '-' || *c.p == '+')) {
    ++c.p;
  }
  return c.p > start;
}

bool parse_object(JsonCursor& c) {
  ++c.p;  // '{'
  c.skip_ws();
  if (c.p < c.end && *c.p == '}') {
    ++c.p;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (c.p >= c.end || *c.p != ':') return false;
    ++c.p;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == '}') {
      ++c.p;
      return true;
    }
    return false;
  }
}

bool parse_array(JsonCursor& c) {
  ++c.p;  // '['
  c.skip_ws();
  if (c.p < c.end && *c.p == ']') {
    ++c.p;
    return true;
  }
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == ']') {
      ++c.p;
      return true;
    }
    return false;
  }
}

bool parse_value(JsonCursor& c) {
  c.skip_ws();
  if (c.p >= c.end) return false;
  switch (*c.p) {
    case '{':
      return parse_object(c);
    case '[':
      return parse_array(c);
    case '"':
      return parse_string(c);
    case 't':
      if (c.end - c.p >= 4 && std::strncmp(c.p, "true", 4) == 0) {
        c.p += 4;
        return true;
      }
      return false;
    case 'f':
      if (c.end - c.p >= 5 && std::strncmp(c.p, "false", 5) == 0) {
        c.p += 5;
        return true;
      }
      return false;
    case 'n':
      if (c.end - c.p >= 4 && std::strncmp(c.p, "null", 4) == 0) {
        c.p += 4;
        return true;
      }
      return false;
    default:
      return parse_number(c);
  }
}

bool valid_json(const std::string& text) {
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!parse_value(c)) return false;
  c.skip_ws();
  return c.p == c.end;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Extracts ts/dur/tid for the first trace event named `name`, relying on the
// writer's one-event-per-line layout.
bool find_event(const std::string& json, const std::string& name, double* ts,
                double* dur, unsigned* tid) {
  const std::string needle = "\"name\": \"" + name + "\"";
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) continue;
    const std::size_t ts_at = line.find("\"ts\": ");
    const std::size_t dur_at = line.find("\"dur\": ");
    const std::size_t tid_at = line.find("\"tid\": ");
    if (ts_at == std::string::npos || dur_at == std::string::npos ||
        tid_at == std::string::npos) {
      return false;
    }
    *ts = std::strtod(line.c_str() + ts_at + 6, nullptr);
    *dur = std::strtod(line.c_str() + dur_at + 7, nullptr);
    *tid = static_cast<unsigned>(
        std::strtoul(line.c_str() + tid_at + 7, nullptr, 10));
    return true;
  }
  return false;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::reset_for_testing();
  }
};

TEST_F(TelemetryTest, CounterAggregatesAcrossEightThreads) {
  const std::uint32_t id = telemetry::register_counter("test.shard.counter");
  ASSERT_NE(id, telemetry::kInvalidMetricId);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  // A concurrent scraper runs the whole time: scrapes only read the relaxed
  // shard slots, so TSan passing here is the aggregation-safety proof.
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)telemetry::snapshot_metrics();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) telemetry::counter_add(id, 1);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const auto snap = telemetry::snapshot_metrics();
  EXPECT_EQ(find_counter(snap, "test.shard.counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, HistogramShardsAggregateAcrossThreads) {
  const std::uint32_t id =
      telemetry::register_histogram("test.shard.hist", {10.0, 20.0});
  ASSERT_NE(id, telemetry::kInvalidMetricId);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        telemetry::histogram_observe(id, static_cast<double>(t * 3));
      }
    });
  }
  for (auto& w : writers) w.join();

  const auto snap = telemetry::snapshot_metrics();
  const auto* h = find_hist(snap, "test.shard.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // t*3 for t in [0,8): 0,3,6,9 -> <=10; 12,15,18 -> (10,20]; 21 -> overflow.
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 4u * kPerThread);
  EXPECT_EQ(h->counts[1], 3u * kPerThread);
  EXPECT_EQ(h->counts[2], 1u * kPerThread);
}

TEST_F(TelemetryTest, HistogramBucketEdgesAreUpperInclusive) {
  const std::uint32_t id =
      telemetry::register_histogram("test.hist.edges", {1.0, 2.0, 4.0});
  ASSERT_NE(id, telemetry::kInvalidMetricId);
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    telemetry::histogram_observe(id, v);
  }
  const auto snap = telemetry::snapshot_metrics();
  const auto* h = find_hist(snap, "test.hist.edges");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(h->counts[0], 2u);      // 0.5, 1.0 in (-inf, 1]
  EXPECT_EQ(h->counts[1], 2u);      // 1.5, 2.0 in (1, 2]
  EXPECT_EQ(h->counts[2], 2u);      // 3.0, 4.0 in (2, 4]
  EXPECT_EQ(h->counts[3], 1u);      // 5.0 > 4
  EXPECT_EQ(h->total, 7u);
  EXPECT_DOUBLE_EQ(h->sum, 17.0);
}

TEST_F(TelemetryTest, RegistrationDedupesByNameAndFirstEdgesWin) {
  const std::uint32_t a = telemetry::register_counter("test.dedupe.counter");
  const std::uint32_t b = telemetry::register_counter("test.dedupe.counter");
  EXPECT_EQ(a, b);
  const std::uint32_t h1 =
      telemetry::register_histogram("test.dedupe.hist", {1.0, 2.0});
  const std::uint32_t h2 =
      telemetry::register_histogram("test.dedupe.hist", {100.0});
  EXPECT_EQ(h1, h2);
  const auto snap = telemetry::snapshot_metrics();
  const auto* h = find_hist(snap, "test.dedupe.hist");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->edges.size(), 2u);  // first registration's edges
  EXPECT_DOUBLE_EQ(h->edges[0], 1.0);
  EXPECT_DOUBLE_EQ(h->edges[1], 2.0);
}

TEST_F(TelemetryTest, SpanNestingProducesValidChromeTrace) {
  {
    TELEM_SPAN("test.span.outer", {"outer_arg", 7});
    // A little real work so inner's window is strictly inside outer's.
    double acc = 0.0;
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) acc += i;
    sink = acc;
    {
      TELEM_SPAN("test.span.inner");
      for (int i = 0; i < 1000; ++i) acc += i;
      sink = acc;
    }
    for (int i = 0; i < 1000; ++i) acc += i;
    sink = acc;
    (void)sink;
  }
  EXPECT_EQ(telemetry::trace_event_count(), 2u);

  const std::string path = ::testing::TempDir() + "telem_trace.json";
  ASSERT_TRUE(telemetry::write_run_json(path));
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(valid_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outer_arg\": 7"), std::string::npos);

  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  unsigned outer_tid = 0, inner_tid = 0;
  ASSERT_TRUE(
      find_event(json, "test.span.outer", &outer_ts, &outer_dur, &outer_tid));
  ASSERT_TRUE(
      find_event(json, "test.span.inner", &inner_ts, &inner_dur, &inner_tid));
  // Chrome's flame view nests events by containment on the same tid.
  EXPECT_EQ(outer_tid, inner_tid);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, ZeroAllocationsPerOpAfterWarmup) {
  const std::uint32_t cid = telemetry::register_counter("test.alloc.counter");
  const std::uint32_t gid = telemetry::register_gauge("test.alloc.gauge");
  const std::uint32_t hid =
      telemetry::register_histogram("test.alloc.hist", {1.0, 10.0, 100.0});

  // Warm-up: first op acquires this thread's shard (one-time allocation).
  telemetry::counter_add(cid, 1);
  telemetry::gauge_set(gid, 1.0);
  telemetry::histogram_observe(hid, 5.0);
  { TELEM_SPAN("test.alloc.span"); }

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    telemetry::counter_add(cid, 2);
    telemetry::gauge_set(gid, static_cast<double>(i));
    telemetry::histogram_observe(hid, static_cast<double>(i));
    TELEM_SPAN("test.alloc.span");
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after)
      << "telemetry ops allocated " << (after - before)
      << " times in the steady state";
}

TEST_F(TelemetryTest, DiagRateLimitsPrintingButKeepsCounting) {
  telemetry::DiagSite site("test.diag.limited", telemetry::Severity::kWarn, 2);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 7; ++i) site.emit("occurrence %d", i);
  const std::string err = ::testing::internal::GetCapturedStderr();

  int lines = 0;
  for (char ch : err) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2) << err;
  EXPECT_NE(err.find("[netshare][warn][test.diag.limited] occurrence 0"),
            std::string::npos);
  EXPECT_NE(err.find("print limit reached"), std::string::npos);
  EXPECT_EQ(site.count(), 7u);
  EXPECT_EQ(telemetry::diag_count("test.diag.limited"), 7u);

  const auto snap = telemetry::snapshot_metrics();
  bool found = false;
  for (const auto& d : snap.diags) {
    if (d.id == "test.diag.limited") {
      found = true;
      EXPECT_EQ(d.count, 7u);
      EXPECT_EQ(d.severity, telemetry::Severity::kWarn);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, DiagCountsEvenWhenRuntimeDisabled) {
  // Diags are control-plane: the runtime data-plane switch must not silence
  // them (an oversubscription warning still matters in a disabled run).
  telemetry::DiagSite site("test.diag.disabled", telemetry::Severity::kError,
                           0);
  telemetry::set_enabled(false);
  site.emit("still counted");
  telemetry::set_enabled(true);
  EXPECT_EQ(site.count(), 1u);
}

TEST_F(TelemetryTest, RuntimeDisableMakesMetricOpsNoOps) {
  const std::uint32_t cid = telemetry::register_counter("test.disable.counter");
  const std::uint32_t hid =
      telemetry::register_histogram("test.disable.hist", {1.0});
  telemetry::counter_add(cid, 1);

  telemetry::set_enabled(false);
  telemetry::counter_add(cid, 100);
  telemetry::histogram_observe(hid, 0.5);
  const std::uint64_t spans_before = telemetry::trace_event_count();
  { TELEM_SPAN("test.disable.span"); }
  telemetry::set_enabled(true);

  EXPECT_EQ(telemetry::trace_event_count(), spans_before);
  const auto snap = telemetry::snapshot_metrics();
  EXPECT_EQ(find_counter(snap, "test.disable.counter"), 1u);
  const auto* h = find_hist(snap, "test.disable.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total, 0u);
}

TEST_F(TelemetryTest, ResetClearsValuesButKeepsRegistrations) {
  const std::uint32_t cid = telemetry::register_counter("test.reset.counter");
  const std::uint32_t gid = telemetry::register_gauge("test.reset.gauge");
  telemetry::counter_add(cid, 5);
  telemetry::gauge_set(gid, 42.0);
  { TELEM_SPAN("test.reset.span"); }
  ASSERT_GE(telemetry::trace_event_count(), 1u);

  telemetry::reset_for_testing();
  const auto snap = telemetry::snapshot_metrics();
  EXPECT_EQ(find_counter(snap, "test.reset.counter"), 0u);
  EXPECT_FALSE(has_gauge(snap, "test.reset.gauge"));  // unset after reset
  EXPECT_EQ(telemetry::trace_event_count(), 0u);

  // The cached id (what the macros hold in their static locals) stays live.
  telemetry::counter_add(cid, 3);
  EXPECT_EQ(find_counter(telemetry::snapshot_metrics(), "test.reset.counter"),
            3u);
}

TEST_F(TelemetryTest, SpanBufferOverflowDropsAndCounts) {
  // Fill this thread's span buffer far past its fixed capacity: recording
  // must degrade to counted drops, never reallocate or corrupt.
  for (int i = 0; i < 6000; ++i) {
    TELEM_SPAN("test.overflow.span");
  }
  const auto snap = telemetry::snapshot_metrics();
  EXPECT_GT(snap.spans_dropped, 0u);
  EXPECT_EQ(snap.spans_recorded + snap.spans_dropped, 6000u);
}

TEST_F(TelemetryTest, GaugeReportsLastWrittenValue) {
  const std::uint32_t gid = telemetry::register_gauge("test.gauge.last");
  telemetry::gauge_set(gid, 1.0);
  telemetry::gauge_set(gid, -3.5);
  double v = 0.0;
  ASSERT_TRUE(has_gauge(telemetry::snapshot_metrics(), "test.gauge.last", &v));
  EXPECT_DOUBLE_EQ(v, -3.5);
}

}  // namespace
