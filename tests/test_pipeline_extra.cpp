// Extra integration coverage: file-level IO round trips, the thread pool,
// NetShare's ablation configurations (naive parallel, no flow tags, min-max
// counters), Ip2Vec filtered decode, and postprocess edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "metrics/consistency.hpp"
#include "net/netflow_io.hpp"
#include "net/pcap_io.hpp"

namespace netshare {
namespace {

std::shared_ptr<embed::Ip2Vec> test_ip2vec() {
  static std::shared_ptr<embed::Ip2Vec> model =
      core::make_public_ip2vec(99, 2000, 4);
  return model;
}

core::NetShareConfig quick_config() {
  core::NetShareConfig cfg;
  cfg.max_seq_len = 4;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 25;
  cfg.finetune_iterations = 10;
  cfg.threads = 2;
  cfg.dg.attr_hidden = {24};
  cfg.dg.rnn_hidden = 16;
  cfg.dg.disc_hidden = {32};
  cfg.dg.aux_hidden = {16};
  cfg.dg.batch_size = 24;
  return cfg;
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitReturnsWaitableFuture) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto fut = pool.submit([&] { ran = true; });
  fut.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelResultsMatchSerial) {
  ThreadPool pool(4);
  std::vector<double> out(100, 0.0);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], i * 2.0);
  }
}

TEST(Stopwatch, CpuClocksAdvanceUnderWork) {
  const double t0 = thread_cpu_seconds();
  const double p0 = process_cpu_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(thread_cpu_seconds(), t0);
  EXPECT_GE(process_cpu_seconds(), p0);
}

TEST(FileIo, PcapFileRoundTrip) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 300, 1);
  const std::string path = "/tmp/netshare_test_roundtrip.pcap";
  net::write_pcap_file(bundle.packets, path);
  const auto back = net::read_pcap_file(path);
  ASSERT_EQ(back.size(), bundle.packets.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.packets[i].key, bundle.packets.packets[i].key);
  }
  std::remove(path.c_str());
}

TEST(FileIo, NetflowCsvFileRoundTrip) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kTon, 300, 2);
  const std::string path = "/tmp/netshare_test_roundtrip.csv";
  net::write_netflow_csv_file(bundle.flows, path);
  const auto back = net::read_netflow_csv_file(path);
  ASSERT_EQ(back.size(), bundle.flows.size());
  EXPECT_EQ(back.records, bundle.flows.records);
  std::remove(path.c_str());
}

TEST(FileIo, MissingFilesThrow) {
  EXPECT_THROW(net::read_pcap_file("/nonexistent/foo.pcap"),
               std::runtime_error);
  EXPECT_THROW(net::read_netflow_csv_file("/nonexistent/foo.csv"),
               std::runtime_error);
}

TEST(Ip2VecFiltered, NearestIfRespectsPredicate) {
  auto model = test_ip2vec();
  const embed::Token t80{embed::TokenKind::kPort, 80};
  const auto v = model->embed(t80);
  // Excluding port 80 must return some other port.
  const auto other = model->nearest_if(
      v, embed::TokenKind::kPort,
      [](const embed::Token& t) { return t.value != 80; });
  EXPECT_NE(other.value, 80u);
  // Accept-all returns port 80 itself.
  EXPECT_EQ(model->nearest(v, embed::TokenKind::kPort).value, 80u);
}

TEST(Ip2VecFiltered, FallsBackWhenNothingQualifies) {
  auto model = test_ip2vec();
  const auto v = model->embed({embed::TokenKind::kPort, 80});
  const auto tok = model->nearest_if(v, embed::TokenKind::kPort,
                                     [](const embed::Token&) { return false; });
  EXPECT_EQ(tok.kind, embed::TokenKind::kPort);  // fallback, not a throw
}

TEST(NetShareAblations, NaiveParallelTrainsAndGenerates) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 300, 3);
  core::NetShareConfig cfg = quick_config();
  cfg.naive_parallel = true;
  core::NetShare model(cfg, test_ip2vec());
  model.fit(bundle.flows);
  Rng rng(4);
  EXPECT_EQ(model.generate_flows(150, rng).size(), 150u);
}

TEST(NetShareAblations, NoFlowTagsChangesAttributeWidth) {
  core::NetShareConfig with = quick_config();
  core::NetShareConfig without = quick_config();
  without.use_flow_tags = false;
  core::FlowEncoder enc_with(with, test_ip2vec().get());
  core::FlowEncoder enc_without(without, test_ip2vec().get());
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 200, 5);
  enc_with.fit(bundle.flows);
  enc_without.fit(bundle.flows);
  EXPECT_EQ(enc_with.spec().attribute_dim(),
            enc_without.spec().attribute_dim() + 1 + with.num_chunks);
}

TEST(NetShareAblations, MinMaxCountersStillRoundTrip) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 300, 6);
  core::NetShareConfig cfg = quick_config();
  cfg.log_transform = false;
  cfg.use_ip2vec_ports = false;
  core::FlowEncoder enc(cfg, nullptr);
  enc.fit(bundle.flows);
  const auto chunks = enc.encode(bundle.flows);
  std::size_t decoded = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    decoded += enc.decode(chunks[c], c).size();
  }
  EXPECT_GT(decoded, bundle.flows.size() * 8 / 10);
}

TEST(NetShareJointDecode, SynthesizedTracesAreTest3Compliant) {
  // The joint (port, protocol) NN decode should give near-perfect Test 3.
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 600, 7);
  core::NetShareConfig cfg = quick_config();
  cfg.max_seq_len = 5;
  core::NetShare model(cfg, test_ip2vec());
  model.fit(bundle.packets);
  Rng rng(8);
  const auto syn = model.generate_packets(400, rng);
  const auto res = metrics::check_packet_consistency(syn);
  EXPECT_GT(res.test3_port_protocol, 0.99);
  EXPECT_GT(res.test4_min_packet_size, 0.99);
}

TEST(PublicIp2Vec, DeterministicForFixedSeed) {
  auto a = core::make_public_ip2vec(123, 800, 4);
  auto b = core::make_public_ip2vec(123, 800, 4);
  const embed::Token t{embed::TokenKind::kPort, 443};
  ASSERT_TRUE(a->contains(t));
  const auto va = a->embed(t);
  const auto vb = b->embed(t);
  for (std::size_t k = 0; k < va.size(); ++k) {
    EXPECT_DOUBLE_EQ(va[k], vb[k]);
  }
}

}  // namespace
}  // namespace netshare
