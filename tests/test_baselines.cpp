// Tests for the baseline synthesizers: CTGAN, E-WGAN-GP, STAN, PAC-GAN,
// PacketCGAN, Flow-WGAN — including the structural pathologies the paper
// documents (per-packet baselines never produce multi-packet flows).
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/presets.hpp"
#include "gan/ctgan.hpp"
#include "gan/ewgan_gp.hpp"
#include "gan/packet_gans.hpp"
#include "gan/stan.hpp"
#include "metrics/field_metrics.hpp"

namespace netshare::gan {
namespace {

TabularGanConfig quick_gan() {
  TabularGanConfig cfg;
  cfg.iterations = 80;
  cfg.batch_size = 32;
  cfg.gen_hidden = {48, 48};
  cfg.disc_hidden = {48, 48};
  return cfg;
}

TEST(ModeNormalizer, RoundTripsWithinModeSpread) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.normal(10.0, 1.0));
  for (int i = 0; i < 300; ++i) values.push_back(rng.normal(100.0, 5.0));
  ModeNormalizer norm;
  norm.fit(values, 2, rng);
  std::vector<double> buf(norm.width());
  for (double v : {9.0, 11.0, 95.0, 105.0}) {
    norm.encode(v, buf.data());
    EXPECT_NEAR(norm.decode(buf.data()), v, 3.0) << v;
  }
}

TEST(ModeNormalizer, FindsSeparatedModes) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(0.0, 0.1));
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(50.0, 0.1));
  ModeNormalizer norm;
  norm.fit(values, 2, rng);
  ASSERT_EQ(norm.centers().size(), 2u);
  EXPECT_NEAR(norm.centers()[0], 0.0, 1.0);
  EXPECT_NEAR(norm.centers()[1], 50.0, 1.0);
}

TEST(ModeNormalizer, RejectsEmpty) {
  ModeNormalizer norm;
  Rng rng(3);
  EXPECT_THROW(norm.fit({}, 3, rng), std::invalid_argument);
}

TEST(TabularGan, LearnsSimpleMarginal) {
  // One softmax(2) with skew {0.8, 0.2} + one sigmoid around 0.3.
  Rng data_rng(4);
  ml::Matrix rows(400, 3);
  for (std::size_t i = 0; i < 400; ++i) {
    const std::size_t c = data_rng.bernoulli(0.8) ? 0 : 1;
    rows(i, c) = 1.0;
    rows(i, 2) = std::clamp(0.3 + data_rng.normal(0.0, 0.05), 0.0, 1.0);
  }
  TabularGanConfig cfg = quick_gan();
  cfg.iterations = 250;
  TabularGan gan({{ml::OutputSegment::Kind::kSoftmax, 2},
                  {ml::OutputSegment::Kind::kSigmoid, 1}},
                 cfg, 5);
  gan.fit(rows);
  Rng rng(6);
  const ml::Matrix syn = gan.sample(400, rng);
  double c0 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    c0 += syn(i, 0) > syn(i, 1) ? 1.0 / 400 : 0.0;
    mean2 += syn(i, 2) / 400;
  }
  EXPECT_GT(c0, 0.5);
  EXPECT_NEAR(mean2, 0.3, 0.15);
}

TEST(TabularGan, SampleBeforeFitThrows) {
  TabularGan gan({{ml::OutputSegment::Kind::kSigmoid, 2}}, quick_gan(), 7);
  Rng rng(8);
  EXPECT_THROW(gan.sample(2, rng), std::logic_error);
}

TEST(TabularGan, ConditionalSamplingMatchesMarginal) {
  // Condition on a softmax(2) column whose real marginal is {0.7, 0.3}.
  Rng data_rng(9);
  ml::Matrix rows(500, 3);
  for (std::size_t i = 0; i < 500; ++i) {
    const std::size_t c = data_rng.bernoulli(0.7) ? 0 : 1;
    rows(i, c) = 1.0;
    rows(i, 2) = 0.5;
  }
  TabularGanConfig cfg = quick_gan();
  cfg.condition = {{0, 2}};
  TabularGan gan({{ml::OutputSegment::Kind::kSoftmax, 2},
                  {ml::OutputSegment::Kind::kSigmoid, 1}},
                 cfg, 10);
  gan.fit(rows);
  Rng rng(11);
  const ml::Matrix syn = gan.sample(600, rng);
  double c0 = 0.0;
  for (std::size_t i = 0; i < 600; ++i) {
    c0 += syn(i, 0) > syn(i, 1) ? 1.0 / 600 : 0.0;
  }
  EXPECT_NEAR(c0, 0.7, 0.2);
}

class FlowBaselines : public ::testing::Test {
 protected:
  void SetUp() override {
    bundle_ = datagen::make_dataset(datagen::DatasetId::kCidds, 600, 12);
  }
  datagen::DatasetBundle bundle_;
};

TEST_F(FlowBaselines, CtganGeneratesValidRecords) {
  CtganConfig cfg;
  cfg.gan = quick_gan();
  CtganFlow model(cfg, 13);
  model.fit(bundle_.flows);
  EXPECT_GT(model.train_cpu_seconds(), 0.0);
  Rng rng(14);
  const auto syn = model.generate(300, rng);
  ASSERT_EQ(syn.size(), 300u);
  for (const auto& r : syn.records) {
    EXPECT_GE(r.packets, 1u);
    EXPECT_GE(r.bytes, 1u);
    EXPECT_GE(r.duration, 0.0);
  }
}

TEST_F(FlowBaselines, EwganGeneratesFromTrainingVocabulary) {
  EwganConfig cfg;
  cfg.gan = quick_gan();
  EwganGpFlow model(cfg, 15);
  model.fit(bundle_.flows);
  Rng rng(16);
  const auto syn = model.generate(300, rng);
  ASSERT_EQ(syn.size(), 300u);
  // Key (non-)privacy property: every synthetic IP is a training-set IP.
  std::set<std::uint32_t> train_ips;
  for (const auto& r : bundle_.flows.records) {
    train_ips.insert(r.key.src_ip.value());
    train_ips.insert(r.key.dst_ip.value());
  }
  for (const auto& r : syn.records) {
    EXPECT_TRUE(train_ips.count(r.key.src_ip.value()));
    EXPECT_TRUE(train_ips.count(r.key.dst_ip.value()));
  }
}

TEST_F(FlowBaselines, StanGeneratesHostGroupedRecords) {
  StanConfig cfg;
  cfg.epochs = 2;
  StanFlow model(cfg, 17);
  model.fit(bundle_.flows);
  EXPECT_GT(model.train_cpu_seconds(), 0.0);
  Rng rng(18);
  const auto syn = model.generate(300, rng);
  ASSERT_EQ(syn.size(), 300u);
  // Hosts drawn from real data.
  std::set<std::uint32_t> train_srcs;
  for (const auto& r : bundle_.flows.records) {
    train_srcs.insert(r.key.src_ip.value());
  }
  for (const auto& r : syn.records) {
    EXPECT_TRUE(train_srcs.count(r.key.src_ip.value()));
    EXPECT_GE(r.packets, 1u);
  }
}

TEST_F(FlowBaselines, GenerateBeforeFitThrows) {
  Rng rng(19);
  CtganFlow ctgan({quick_gan(), 3}, 20);
  EXPECT_THROW(ctgan.generate(2, rng), std::logic_error);
  EwganGpFlow ewgan({quick_gan(), 4, 2, 32}, 21);
  EXPECT_THROW(ewgan.generate(2, rng), std::logic_error);
  StanFlow stan({}, 22);
  EXPECT_THROW(stan.generate(2, rng), std::logic_error);
}

class PacketBaselines : public ::testing::Test {
 protected:
  void SetUp() override {
    bundle_ = datagen::make_dataset(datagen::DatasetId::kCaida, 1200, 23);
  }
  datagen::DatasetBundle bundle_;
};

TEST_F(PacketBaselines, AllThreeGenerateValidPackets) {
  PacketGanConfig cfg{quick_gan()};
  for (auto factory : {&make_pac_gan, &make_packet_cgan, &make_flow_wgan}) {
    auto model = factory(cfg, 24);
    model->fit(bundle_.packets);
    Rng rng(25);
    const auto syn = model->generate(400, rng);
    ASSERT_EQ(syn.size(), 400u) << model->name();
    for (const auto& p : syn.packets) {
      EXPECT_GE(p.size, net::min_packet_size(p.key.protocol)) << model->name();
      EXPECT_GE(p.timestamp, 0.0) << model->name();
    }
  }
}

TEST_F(PacketBaselines, PerPacketModelsProduceSingletonFlows) {
  // The paper's C1/Fig. 1b: per-packet tabular baselines essentially never
  // generate two packets with the same 5-tuple.
  PacketGanConfig cfg{quick_gan()};
  auto model = make_pac_gan(cfg, 26);
  model->fit(bundle_.packets);
  Rng rng(27);
  const auto syn = model->generate(500, rng);
  const auto aggs = net::aggregate_flows(syn);
  std::size_t multi = 0;
  for (const auto& a : aggs) multi += a.packets > 1;
  EXPECT_LT(multi, aggs.size() / 20);  // overwhelmingly singletons
}

TEST_F(PacketBaselines, PacGanTimestampsAreGaussianFitted) {
  PacketGanConfig cfg{quick_gan()};
  auto model = make_pac_gan(cfg, 28);
  model->fit(bundle_.packets);
  Rng rng(29);
  const auto syn = model->generate(800, rng);
  double mean = 0.0;
  for (const auto& p : syn.packets) mean += p.timestamp / 800.0;
  double real_mean = 0.0;
  for (const auto& p : bundle_.packets.packets) {
    real_mean += p.timestamp / static_cast<double>(bundle_.packets.size());
  }
  EXPECT_NEAR(mean, real_mean, 8.0);
}

}  // namespace
}  // namespace netshare::gan
