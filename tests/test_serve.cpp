// Generation-as-a-service tests (DESIGN.md §13): wire protocol round-trips
// and malformed-frame rejection, registry snapshot loading with the typed
// corruption taxonomy, hot-swap under load, admission control / DRR
// fairness / drain semantics, the socket transport — and the load-bearing
// property: a served job's output is bitwise identical to the serial
// per-job oracle and to offline NetShare::generate_flows, at any scheduler
// worker count and under any coalescing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ml/serialize.hpp"
#include "serve/protocol.hpp"
#include "serve_test_util.hpp"

namespace netshare {
namespace {

namespace fs = std::filesystem;
using namespace serve;
using namespace serve_test;

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

net::FlowTrace sample_trace() {
  net::FlowTrace t;
  for (int i = 0; i < 3; ++i) {
    net::FlowRecord r;
    r.key.src_ip = net::Ipv4Address(0x0a000001u + static_cast<unsigned>(i));
    r.key.dst_ip = net::Ipv4Address(0xc0a80001u);
    r.key.src_port = static_cast<std::uint16_t>(1024 + i);
    r.key.dst_port = 443;
    r.key.protocol = i == 2 ? net::Protocol::kUdp : net::Protocol::kTcp;
    r.start_time = 0.25 * i;
    r.duration = 1.5;
    r.packets = 10 + static_cast<std::uint64_t>(i);
    r.bytes = 4000;
    r.is_attack = i == 1;
    r.attack_type = i == 1 ? net::AttackType::kDos : net::AttackType::kNone;
    t.records.push_back(r);
  }
  return t;
}

TEST(ServeProtocol, GenerateRequestRoundTrip) {
  GenerateRequest req;
  req.request_id = 77;
  req.model_id = "default";
  req.tenant = "acme";
  req.n_flows = 12345;
  req.seed = 0xdeadbeefcafef00dull;
  req.deadline_ms = 2500;
  std::vector<std::uint8_t> bytes;
  encode(req, bytes);

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame_type(*frame), MsgType::kGenerate);
  const GenerateRequest out = decode_generate(*frame);
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.model_id, req.model_id);
  EXPECT_EQ(out.tenant, req.tenant);
  EXPECT_EQ(out.n_flows, req.n_flows);
  EXPECT_EQ(out.seed, req.seed);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServeProtocol, ChunkReplyRoundTripPreservesRecordsBitwise) {
  ChunkReply reply;
  reply.request_id = 9;
  reply.chunk_index = 2;
  reply.part = sample_trace();
  std::vector<std::uint8_t> bytes;
  encode(reply, bytes);

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  const ChunkReply out = decode_chunk(*reader.next());
  EXPECT_EQ(out.request_id, 9u);
  EXPECT_EQ(out.chunk_index, 2u);
  EXPECT_EQ(out.part.records, reply.part.records);
}

TEST(ServeProtocol, AllReplyTypesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode(DoneReply{4, 500, 3}, bytes);
  encode(ErrorReply{5, ErrorCode::kOverloaded, "queue full", 750}, bytes);
  encode(StatsReply{6, "{\"queue_depth\":0}"}, bytes);
  encode(PublishRequest{7, "m", "/tmp/snaps"}, bytes);
  encode(StatsRequest{8}, bytes);

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  const DoneReply done = decode_done(*reader.next());
  EXPECT_EQ(done.request_id, 4u);
  EXPECT_EQ(done.records, 500u);
  EXPECT_EQ(done.model_version, 3u);
  const ErrorReply err = decode_error(*reader.next());
  EXPECT_EQ(err.request_id, 5u);
  EXPECT_EQ(err.code, ErrorCode::kOverloaded);
  EXPECT_EQ(err.message, "queue full");
  EXPECT_EQ(err.retry_after_ms, 750u);
  const StatsReply stats = decode_stats_reply(*reader.next());
  EXPECT_EQ(stats.request_id, 6u);
  EXPECT_EQ(stats.json, "{\"queue_depth\":0}");
  const PublishRequest pub = decode_publish(*reader.next());
  EXPECT_EQ(pub.request_id, 7u);
  EXPECT_EQ(pub.model_id, "m");
  EXPECT_EQ(pub.snapshot_dir, "/tmp/snaps");
  EXPECT_EQ(decode_stats(*reader.next()).request_id, 8u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServeProtocol, FrameReaderReassemblesByteAtATimeFeeds) {
  GenerateRequest req;
  req.request_id = 1;
  req.model_id = "m";
  req.tenant = "t";
  req.n_flows = 10;
  req.seed = 2;
  std::vector<std::uint8_t> bytes;
  encode(req, bytes);
  encode(StatsRequest{2}, bytes);

  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint8_t b : bytes) {
    reader.feed(&b, 1);
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(decode_generate(frames[0]).request_id, 1u);
  EXPECT_EQ(decode_stats(frames[1]).request_id, 2u);
}

TEST(ServeProtocol, RejectsMalformedFrames) {
  // Truncated payload.
  std::vector<std::uint8_t> bytes;
  encode(StatsRequest{3}, bytes);
  std::vector<std::uint8_t> body(bytes.begin() + 4, bytes.end() - 1);
  EXPECT_THROW(decode_stats(body), ProtocolError);
  // Trailing bytes.
  body.assign(bytes.begin() + 4, bytes.end());
  body.push_back(0);
  EXPECT_THROW(decode_stats(body), ProtocolError);
  // Wrong type for the decoder.
  body.assign(bytes.begin() + 4, bytes.end());
  EXPECT_THROW(decode_generate(body), ProtocolError);
  // Unknown type byte.
  EXPECT_THROW(frame_type(std::vector<std::uint8_t>{250}), ProtocolError);
  EXPECT_THROW(frame_type(std::vector<std::uint8_t>{}), ProtocolError);
  // Oversized length prefix: a desynced peer, not a frame.
  FrameReader reader;
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  reader.feed(huge, 4);
  EXPECT_THROW(reader.next(), ProtocolError);
  // Chunk reply whose record count exceeds its own payload.
  std::vector<std::uint8_t> lying;
  encode(ChunkReply{1, 0, net::FlowTrace{}}, lying);
  lying[4 + 1 + 4 + 4] = 200;  // count field: claims 200 records, carries 0
  std::vector<std::uint8_t> lying_body(lying.begin() + 4, lying.end());
  EXPECT_THROW(decode_chunk(lying_body), ProtocolError);
}

TEST(ServeProtocol, OversizedChunkPartsSplitAcrossFramesAndReassemble) {
  const net::FlowTrace part = sample_trace();  // 3 records
  std::vector<std::uint8_t> bytes;
  encode_chunk_frames(21, 1, part, bytes, 2);  // force a split at 2 records
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  net::FlowTrace joined;
  std::size_t frames = 0;
  while (auto f = reader.next()) {
    const ChunkReply r = decode_chunk(*f);
    EXPECT_EQ(r.request_id, 21u);
    EXPECT_EQ(r.chunk_index, 1u);
    EXPECT_LE(r.part.records.size(), 2u);
    joined.records.insert(joined.records.end(), r.part.records.begin(),
                          r.part.records.end());
    ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(joined.records, part.records);
  // Within the single-frame limit the split path emits one ordinary frame.
  std::vector<std::uint8_t> whole;
  encode_chunk_frames(22, 0, part, whole);
  FrameReader reader2;
  reader2.feed(whole.data(), whole.size());
  EXPECT_EQ(decode_chunk(*reader2.next()).part.records, part.records);
  EXPECT_FALSE(reader2.next().has_value());
}

TEST(ServeProtocol, SnapshotErrorKindsMapOneToOne) {
  using Kind = ml::SnapshotError::Kind;
  EXPECT_EQ(error_code_for(Kind::kIo), ErrorCode::kSnapshotIo);
  EXPECT_EQ(error_code_for(Kind::kTruncated), ErrorCode::kSnapshotTruncated);
  EXPECT_EQ(error_code_for(Kind::kBadMagic), ErrorCode::kSnapshotBadMagic);
  EXPECT_EQ(error_code_for(Kind::kBadVersion), ErrorCode::kSnapshotBadVersion);
  EXPECT_EQ(error_code_for(Kind::kChecksum), ErrorCode::kSnapshotChecksum);
  EXPECT_STREQ(to_string(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(ErrorCode::kDraining), "draining");
}

// ---------------------------------------------------------------------------
// Model registry: snapshot loading, corruption taxonomy, hot-swap.
// (Shared fixture — tiny model, snapshots, harnesses — in serve_test_util.hpp.)
// ---------------------------------------------------------------------------

TEST(ServeRegistry, PublishedModelMatchesOfflineGenerateFlowsBitwise) {
  TrainedModel& t = snapshot_a();
  ModelRegistry registry;
  registry.define("m", spec_for(t));
  EXPECT_EQ(registry.models_loaded(), 0u);
  const std::uint64_t v = registry.publish("m", t.dir);
  EXPECT_GE(v, 1u);
  EXPECT_EQ(registry.models_loaded(), 1u);
  auto model = registry.acquire("m");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->version(), v);

  // The offline path derives its sample seed from the Rng engine; serving
  // takes that derived seed directly. Same snapshot + config + seed ==
  // bitwise-identical traces.
  const std::size_t n = 90;
  Rng rng(7);
  const std::uint64_t derived = Rng(7).engine()();
  const net::FlowTrace offline = t.model->generate_flows(n, rng);
  const net::FlowTrace served = model->generate(n, derived);
  ASSERT_EQ(served.size(), offline.size());
  EXPECT_EQ(served.records, offline.records);
}

TEST(ServeRegistry, AcquireUnknownOrUnpublishedReturnsNull) {
  ModelRegistry registry;
  EXPECT_EQ(registry.acquire("nope"), nullptr);
  registry.define("m", spec_for(snapshot_a()));
  EXPECT_EQ(registry.acquire("m"), nullptr);  // defined but never published
  EXPECT_THROW(registry.publish("ghost", snapshot_a().dir),
               std::invalid_argument);
}

TEST(ServeRegistry, PublishRejectsCorruptSnapshotsWithTypedKinds) {
  TrainedModel& t = snapshot_a();
  // Work on a scratch copy so the shared fixture stays intact.
  const std::string dir = t.dir + "_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& e : fs::directory_iterator(t.dir)) {
    fs::copy_file(e.path(), dir + "/" + e.path().filename().string());
  }
  ModelRegistry registry;
  registry.define("m", spec_for(t));

  auto expect_kind = [&](ml::SnapshotError::Kind kind) {
    try {
      registry.publish("m", dir);
      FAIL() << "publish accepted a corrupt snapshot";
    } catch (const ml::SnapshotError& e) {
      EXPECT_EQ(e.kind(), kind) << e.what();
    }
    EXPECT_EQ(registry.models_loaded(), 0u)
        << "a failed publish must not install anything";
  };

  flip_byte(dir + "/chunk_0.ckpt", -2);  // payload byte vs stored CRC
  expect_kind(ml::SnapshotError::Kind::kChecksum);
  fs::copy_file(t.dir + "/chunk_0.ckpt", dir + "/chunk_0.ckpt",
                fs::copy_options::overwrite_existing);

  flip_byte(dir + "/chunk_1.ckpt", 0);  // magic
  expect_kind(ml::SnapshotError::Kind::kBadMagic);
  fs::copy_file(t.dir + "/chunk_1.ckpt", dir + "/chunk_1.ckpt",
                fs::copy_options::overwrite_existing);

  flip_byte(dir + "/chunk_2.ckpt", 8);  // version word
  expect_kind(ml::SnapshotError::Kind::kBadVersion);
  fs::resize_file(dir + "/chunk_2.ckpt", 10);
  expect_kind(ml::SnapshotError::Kind::kTruncated);
  fs::remove(dir + "/chunk_2.ckpt");
  expect_kind(ml::SnapshotError::Kind::kIo);

  fs::remove_all(dir);
}

TEST(ServeRegistry, PublishRejectsWrongShapeSnapshot) {
  TrainedModel& t = snapshot_a();
  const std::string dir = t.dir + "_shape";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& e : fs::directory_iterator(t.dir)) {
    fs::copy_file(e.path(), dir + "/" + e.path().filename().string());
  }
  // A valid snapshot file of the wrong parameter count.
  ml::save_snapshot_file(std::vector<double>{1.0, 2.0, 3.0},
                         dir + "/chunk_1.ckpt");
  ModelRegistry registry;
  registry.define("m", spec_for(t));
  EXPECT_THROW(registry.publish("m", dir), std::invalid_argument);
  EXPECT_EQ(registry.models_loaded(), 0u);
  fs::remove_all(dir);
}

TEST(ServeRegistry, HotSwapKeepsOldHandlesValid) {
  ModelRegistry registry;
  registry.define("m", spec_for(snapshot_a()));
  const std::uint64_t v1 = registry.publish("m", snapshot_a().dir);
  auto old_handle = registry.acquire("m");
  ASSERT_NE(old_handle, nullptr);

  registry.define("m", spec_for(snapshot_b()));
  const std::uint64_t v2 = registry.publish("m", snapshot_b().dir);
  EXPECT_GT(v2, v1);
  auto new_handle = registry.acquire("m");
  ASSERT_NE(new_handle, nullptr);
  EXPECT_NE(new_handle.get(), old_handle.get());
  EXPECT_EQ(old_handle->version(), v1);
  EXPECT_EQ(new_handle->version(), v2);
  EXPECT_NE(old_handle->config_hash(), new_handle->config_hash());

  // The retained old handle still samples — and produces the old model's
  // bytes, not the new one's.
  const net::FlowTrace from_old = old_handle->generate(40, 5);
  const net::FlowTrace from_new = new_handle->generate(40, 5);
  Rng rng(3);
  (void)rng;
  EXPECT_NE(from_old.records, from_new.records);
  auto fresh = ModelRegistry();
  fresh.define("m", spec_for(snapshot_a()));
  fresh.publish("m", snapshot_a().dir);
  EXPECT_EQ(fresh.acquire("m")->generate(40, 5).records, from_old.records);
}

TEST(ServeRegistry, ConcurrentPublishesNeverRegressTheVersion) {
  // publish() builds outside the registry lock, so two builds of the same
  // model can finish in either order; the install must be version-ordered,
  // never completion-ordered.
  TrainedModel& t = snapshot_a();
  ModelRegistry registry;
  registry.define("m", spec_for(t));
  for (int round = 0; round < 4; ++round) {
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    std::thread ta([&] { va = registry.publish("m", t.dir); });
    std::thread tb([&] { vb = registry.publish("m", t.dir); });
    ta.join();
    tb.join();
    EXPECT_NE(va, vb);
    EXPECT_EQ(registry.acquire("m")->version(), std::max(va, vb))
        << "a slow older build must not overwrite a newer installed version";
  }
}

// ---------------------------------------------------------------------------
// Service: determinism under coalescing and concurrency.
// ---------------------------------------------------------------------------

struct JobSpec {
  std::string tenant;
  std::size_t n;
  std::uint64_t seed;
};

const std::vector<JobSpec>& job_mix() {
  static const std::vector<JobSpec>* jobs = new std::vector<JobSpec>{
      {"alpha", 60, 101}, {"beta", 35, 102},  {"alpha", 80, 103},
      {"gamma", 50, 104}, {"beta", 45, 105},  {"gamma", 70, 106},
  };
  return *jobs;
}

// The per-job serial oracle: one job at a time, no coalescing, one worker.
std::vector<net::FlowTrace> serial_oracle() {
  static std::vector<net::FlowTrace>* oracle = [] {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.max_coalesce = 1;
    ServiceHarness h(cfg);
    auto* out = new std::vector<net::FlowTrace>();
    for (const JobSpec& j : job_mix()) {
      ClientResult r = h.client->generate("m", j.tenant, j.n, j.seed);
      EXPECT_TRUE(r.ok) << r.message;
      out->push_back(std::move(r.trace));
    }
    return out;
  }();
  return *oracle;
}

TEST(ServeService, CoalescedConcurrentBitwiseEqualsSerialOracleAtAnyWorkers) {
  const std::vector<net::FlowTrace>& oracle = serial_oracle();
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.max_coalesce = 4;
    ServiceHarness h(cfg);
    std::vector<std::shared_ptr<ServeClient::PendingJob>> jobs;
    for (const JobSpec& j : job_mix()) {
      jobs.push_back(h.client->submit("m", j.tenant, j.n, j.seed));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const ClientResult r = jobs[i]->wait();
      ASSERT_TRUE(r.ok) << r.message;
      EXPECT_EQ(r.trace.records, oracle[i].records)
          << "job " << i << " diverged at " << workers << " workers";
    }
    h.service->drain();  // settle the counters (callbacks fire before them)
    const ServiceStatsSnapshot stats = h.service->stats();
    EXPECT_EQ(stats.completed, job_mix().size());
    EXPECT_EQ(stats.errors, 0u);
  }
}

TEST(ServeService, ForcedCoalescingStillBitwiseEqual) {
  // Pin the single worker with a fat lead job; everything submitted behind
  // it must coalesce (the model goes busy at dispatch, so later jobs queue
  // until the lead batch finishes, then dispatch as one batch).
  const std::vector<net::FlowTrace>& oracle = serial_oracle();
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_coalesce = 8;
  cfg.drr_quantum = 1 << 20;  // credit never the limiting factor here
  ServiceHarness h(cfg);
  auto lead = h.client->submit("m", "lead", 300, 999);
  std::vector<std::shared_ptr<ServeClient::PendingJob>> jobs;
  for (const JobSpec& j : job_mix()) {
    jobs.push_back(h.client->submit("m", j.tenant, j.n, j.seed));
  }
  ASSERT_TRUE(lead->wait().ok);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ClientResult r = jobs[i]->wait();
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.trace.records, oracle[i].records) << "job " << i;
  }
  h.service->drain();
  const ServiceStatsSnapshot stats = h.service->stats();
  EXPECT_EQ(stats.completed, job_mix().size() + 1);
  EXPECT_GT(stats.coalesced_jobs, 0u)
      << "jobs queued behind a busy model must batch";
  EXPECT_LT(stats.batches, job_mix().size() + 1);
}

TEST(ServeService, ServedJobBitwiseEqualsOfflineGenerateFlows) {
  ServiceHarness h;
  const std::size_t n = 75;
  Rng rng(11);
  const std::uint64_t derived = Rng(11).engine()();
  const net::FlowTrace offline = snapshot_a().model->generate_flows(n, rng);
  const ClientResult served = h.client->generate("m", "t", n, derived);
  ASSERT_TRUE(served.ok) << served.message;
  EXPECT_EQ(served.trace.records, offline.records);
}

// ---------------------------------------------------------------------------
// Hot-swap under load.
// ---------------------------------------------------------------------------

TEST(ServeService, HotSwapMidStreamDropsNothingAndRetargetsNewJobs) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.tenant_inflight_cap = 16;
  ServiceHarness h(cfg);
  const std::uint64_t v1 = h.registry.acquire("m")->version();

  // Serial per-job oracles, computed on fresh registries so the service
  // under test shares no state with them.
  ModelRegistry oracle_reg;
  oracle_reg.define("a", spec_for(snapshot_a()));
  oracle_reg.define("b", spec_for(snapshot_b()));
  oracle_reg.publish("a", snapshot_a().dir);
  oracle_reg.publish("b", snapshot_b().dir);
  std::vector<net::FlowTrace> want_old, want_new;
  for (std::uint64_t s = 0; s < 4; ++s) {
    want_old.push_back(oracle_reg.acquire("a")->generate(50, 200 + s));
    want_new.push_back(oracle_reg.acquire("b")->generate(50, 300 + s));
  }

  // 4 in-flight jobs pinned to v1...
  std::vector<std::shared_ptr<ServeClient::PendingJob>> old_jobs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    old_jobs.push_back(h.client->submit("m", "t", 50, 200 + s));
  }
  // ... then the swap lands mid-stream ...
  h.registry.define("m", spec_for(snapshot_b()));
  const std::uint64_t v2 = h.registry.publish("m", snapshot_b().dir);
  ASSERT_GT(v2, v1);
  // ... and post-swap jobs resolve the new version.
  std::vector<std::shared_ptr<ServeClient::PendingJob>> new_jobs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    new_jobs.push_back(h.client->submit("m", "t", 50, 300 + s));
  }

  for (std::size_t i = 0; i < old_jobs.size(); ++i) {
    const ClientResult r = old_jobs[i]->wait();
    ASSERT_TRUE(r.ok) << "hot-swap dropped an in-flight job: " << r.message;
    EXPECT_EQ(r.model_version, v1);
    EXPECT_EQ(r.trace.records, want_old[i].records) << "old job " << i;
  }
  for (std::size_t i = 0; i < new_jobs.size(); ++i) {
    const ClientResult r = new_jobs[i]->wait();
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.model_version, v2);
    EXPECT_EQ(r.trace.records, want_new[i].records) << "new job " << i;
  }
  EXPECT_EQ(h.service->stats().errors, 0u);
}

// ---------------------------------------------------------------------------
// Admission control, fairness, drain.
// ---------------------------------------------------------------------------

TEST(ServeService, TypedRejectionsForBadAndUnroutableJobs) {
  ServiceHarness h;
  ClientResult r = h.client->generate("", "t", 10, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);
  r = h.client->generate("m", "t", 0, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);
  r = h.client->generate("ghost", "t", 10, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kModelNotFound);
  EXPECT_EQ(h.service->stats().rejected_other, 3u);
}

TEST(ServeService, OversizedJobsRejectSynchronouslyAndServiceStaysLive) {
  ServiceConfig cfg;
  cfg.max_flows_per_job = 1000;
  ServiceHarness h(cfg);
  // These n_flows values used to hold the scheduler inside the service lock
  // for ~n/quantum credit-accrual scans (and >= 2^63 went negative past DRR
  // entirely); admission now sheds them with a typed verdict.
  const std::uint64_t huge[] = {1001, std::uint64_t{1} << 40, ~std::uint64_t{0}};
  for (std::uint64_t n : huge) {
    const ClientResult r =
        h.client->generate("m", "t", static_cast<std::size_t>(n), 7);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, ErrorCode::kBadRequest) << n;
  }
  EXPECT_EQ(h.service->stats().rejected_other, 3u);
  // A job at the cap is admitted, and the scheduler still runs.
  EXPECT_TRUE(h.client->generate("m", "t", 1000, 8).ok);
  // The cap can never exceed what one kChunk reply frame can carry.
  ServiceConfig wide;
  wide.max_flows_per_job = ~std::size_t{0};
  ServiceHarness w(wide);
  const ClientResult over = w.client->generate(
      "m", "t", kMaxChunkRecords + 1, 9);
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.code, ErrorCode::kBadRequest);
}

TEST(ServeService, StarvedCreditFastForwardsInsteadOfSpinning) {
  // Worst-case quantum: every head job costs hundreds of DRR visits. The
  // scheduler must grant the needed credit in one step, not hold the
  // service mutex for cost/quantum scans — submit/stats stay responsive
  // and both tenants' jobs complete.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_coalesce = 1;
  cfg.drr_quantum = 1;
  ServiceHarness h(cfg);
  auto a = h.client->submit("m", "a", 300, 1);
  auto b = h.client->submit("m", "b", 200, 2);
  EXPECT_GE(h.service->stats().submitted, 2u);  // mu_ not monopolized
  EXPECT_TRUE(a->wait().ok);
  EXPECT_TRUE(b->wait().ok);
  h.service->drain();
  EXPECT_EQ(h.service->stats().completed, 2u);
}

TEST(ServeService, RejectedJobsDoNotRegisterTenantState) {
  ServiceHarness h;
  for (int i = 0; i < 50; ++i) {
    const ClientResult r =
        h.client->generate("ghost", "tenant_" + std::to_string(i), 10, 1);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, ErrorCode::kModelNotFound);
  }
  ServiceStatsSnapshot stats = h.service->stats();
  EXPECT_EQ(stats.tenants.size(), 0u)
      << "wire-supplied tenants on rejected jobs must not grow "
         "tenants_/rr_order_";
  EXPECT_EQ(stats.rejected_other, 50u);
  // Accepted work registers the tenant; its later rejections then count.
  ASSERT_TRUE(h.client->generate("m", "real", 20, 1).ok);
  EXPECT_FALSE(h.client->generate("ghost", "real", 20, 1).ok);
  h.service->drain();  // settle the counters (callbacks fire before them)
  stats = h.service->stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant, "real");
  EXPECT_EQ(stats.tenants[0].shed, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
}

TEST(ServeService, OverloadShedsWithTypedReplyAndCountsIt) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.max_coalesce = 1;
  cfg.tenant_inflight_cap = 99;
  ServiceHarness h(cfg);
  std::atomic<std::uint64_t> done{0};
  auto submit_one = [&](std::size_t n, std::uint64_t seed) {
    JobCallbacks cbs;
    cbs.on_done = [&done](std::uint64_t, std::uint64_t) { ++done; };
    cbs.on_error = [](ErrorCode, const std::string& m) { ADD_FAILURE() << m; };
    return h.service->submit(GenerateJob{"m", "t", n, seed}, std::move(cbs));
  };
  // A fat lead occupies the single worker (its model goes busy), so later
  // submits pile into the bounded queue until admission must shed — the
  // verdict is synchronous and typed.
  ASSERT_TRUE(submit_one(1500, 1).accepted);
  std::uint64_t accepted = 1;
  SubmitResult shed;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    shed = submit_one(30, 2 + i);
    if (!shed.accepted) break;
    ++accepted;
  }
  ASSERT_FALSE(shed.accepted) << "the queue bound never shed";
  EXPECT_EQ(shed.code, ErrorCode::kOverloaded);
  h.service->drain();
  const ServiceStatsSnapshot stats = h.service->stats();
  EXPECT_EQ(stats.shed_overloaded, 1u);
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(done.load(), accepted);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeService, PerTenantInflightCapShedsOnlyTheNoisyTenant) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_coalesce = 1;
  cfg.tenant_inflight_cap = 2;
  ServiceHarness h(cfg);
  auto a1 = h.client->submit("m", "noisy", 150, 1);
  auto a2 = h.client->submit("m", "noisy", 30, 2);
  const ClientResult shed = h.client->generate("m", "noisy", 30, 3);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, ErrorCode::kOverloaded);
  auto b1 = h.client->submit("m", "quiet", 30, 4);  // other tenants unharmed
  EXPECT_TRUE(a1->wait().ok);
  EXPECT_TRUE(a2->wait().ok);
  EXPECT_TRUE(b1->wait().ok);
  const ServiceStatsSnapshot stats = h.service->stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "noisy");
  EXPECT_EQ(stats.tenants[0].shed, 1u);
  EXPECT_EQ(stats.tenants[1].shed, 0u);
}

TEST(ServeService, DrrInterleavesTenantsInsteadOfFifoWithinOne) {
  // With per-job batches and one worker, DRR must alternate the two tenants
  // once both have queued work — not empty tenant A's backlog first.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_coalesce = 1;
  ServiceHarness h(cfg);
  std::mutex order_mu;
  std::vector<std::string> order;
  auto tracked = [&](const std::string& tenant, std::size_t n,
                     std::uint64_t seed) {
    JobCallbacks cbs;
    cbs.on_done = [&order, &order_mu, tenant](std::uint64_t, std::uint64_t) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tenant);
    };
    cbs.on_error = [](ErrorCode, const std::string&) { FAIL(); };
    const SubmitResult sr =
        h.service->submit(GenerateJob{"m", tenant, n, seed}, std::move(cbs));
    ASSERT_TRUE(sr.accepted) << sr.message;
  };
  // The first job pins the worker long enough for the backlog to form.
  tracked("A", 250, 1);
  tracked("A", 20, 2);
  tracked("A", 20, 3);
  tracked("B", 20, 4);
  tracked("B", 20, 5);
  h.service->drain();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "A");
  // After the lead, visits alternate: B (rr cursor moved past A), A, B, A.
  const std::vector<std::string> want = {"A", "B", "A", "B", "A"};
  EXPECT_EQ(order, want)
      << "DRR should interleave tenants, not drain one backlog first";
}

TEST(ServeService, DrainCompletesInFlightAndShedsNewWithTyped) {
  ServiceConfig cfg;
  cfg.workers = 2;
  ServiceHarness h(cfg);
  std::vector<std::shared_ptr<ServeClient::PendingJob>> jobs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    jobs.push_back(h.client->submit("m", "t", 60, 400 + s));
  }
  h.service->begin_drain();
  const ClientResult rejected = h.client->generate("m", "t", 10, 9);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, ErrorCode::kDraining);
  h.service->drain();
  for (auto& job : jobs) {
    const ClientResult r = job->wait();
    EXPECT_TRUE(r.ok) << "drain dropped an accepted job: " << r.message;
  }
  const ServiceStatsSnapshot stats = h.service->stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.shed_draining, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST(ServeService, StatsJsonCarriesTheOpsSurface) {
  ServiceHarness h;
  ASSERT_TRUE(h.client->generate("m", "acme", 40, 1).ok);
  const ServiceStatsSnapshot stats = h.service->stats();
  EXPECT_EQ(stats.models_loaded, 1u);
  const std::string json = to_json(stats);
  EXPECT_NE(json.find("\"queue_depth\":0"), std::string::npos);
  EXPECT_NE(json.find("\"models_loaded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("latency_p99_ms"), std::string::npos);

  std::vector<std::uint64_t> hist(kLatencyBuckets, 0);
  hist[3] = 98;  // <= 10ms
  hist[7] = 2;   // <= 200ms
  EXPECT_DOUBLE_EQ(latency_percentile_ms(hist, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(latency_percentile_ms(hist, 0.99), 200.0);
  EXPECT_DOUBLE_EQ(latency_percentile_ms(std::vector<std::uint64_t>(
                       kLatencyBuckets, 0), 0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Socket transport.
// ---------------------------------------------------------------------------

TEST(ServeSocket, GenerateOverTheWireBitwiseEqualsInProcess) {
  SocketHarness h;
  const net::FlowTrace want = h.client->generate("m", "t", 66, 55).trace;
  SocketClient wire(h.path);
  const ClientResult got = wire.generate("m", "t", 66, 55);
  ASSERT_TRUE(got.ok) << got.message;
  EXPECT_EQ(got.trace.records, want.records);
}

TEST(ServeSocket, StatsAndTypedErrorsOverTheWire) {
  SocketHarness h;
  SocketClient wire(h.path);
  const ClientResult bad = wire.generate("ghost", "t", 10, 1);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrorCode::kModelNotFound);
  const std::string json = wire.stats();
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
}

TEST(ServeSocket, PublishOverTheWireHotSwapsAndRejectsCorruption) {
  SocketHarness h;
  SocketClient wire(h.path);
  const std::uint64_t v1 = h.registry.acquire("m")->version();

  // A corrupt directory first: typed checksum rejection, old version stays.
  const std::string dir = snapshot_a().dir + "_wire";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& e : fs::directory_iterator(snapshot_a().dir)) {
    fs::copy_file(e.path(), dir + "/" + e.path().filename().string());
  }
  flip_byte(dir + "/chunk_0.ckpt", -1);
  const ClientResult rejected = wire.publish("m", dir);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, ErrorCode::kSnapshotChecksum);
  EXPECT_EQ(h.registry.acquire("m")->version(), v1);
  fs::remove_all(dir);

  const ClientResult ok = wire.publish("m", snapshot_a().dir);
  ASSERT_TRUE(ok.ok) << ok.message;
  EXPECT_GT(ok.model_version, v1);
  EXPECT_EQ(h.registry.acquire("m")->version(), ok.model_version);
}

}  // namespace
}  // namespace netshare
