// Shared serving-test fixture: one tiny offline-trained NetShare model,
// snapshotted to disk, plus the Service/Socket harnesses built on it. Used
// by test_serve.cpp (functional), test_resilience.cpp (deadlines, rate
// limits, retry, watchdog, chaos) and test_soak.cpp (chaos soak), so every
// suite serves bitwise-identical models without re-deriving the setup.
//
// Everything here is inline — each test binary instantiates its own statics
// (training happens once per process, on first use).
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace netshare::serve_test {

inline gan::DgConfig tiny_dg() {
  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  return dg;
}

inline core::NetShareConfig tiny_config() {
  core::NetShareConfig cfg;
  cfg.use_ip2vec_ports = false;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 4;
  cfg.finetune_iterations = 2;
  cfg.threads = 4;
  cfg.dg = tiny_dg();
  return cfg;
}

inline const net::FlowTrace& reference_flows() {
  static const net::FlowTrace* trace = new net::FlowTrace(
      datagen::make_dataset(datagen::DatasetId::kCidds, 250, 22).flows);
  return *trace;
}

// One offline-trained NetShare whose checkpoint files every serving test
// loads. Kept alive as the offline oracle for generate_flows identity.
struct TrainedModel {
  std::string dir;
  core::NetShareConfig config;
  std::unique_ptr<core::NetShare> model;
};

inline TrainedModel train_snapshot(std::uint64_t config_seed) {
  namespace fs = std::filesystem;
  TrainedModel t;
  t.dir = (fs::temp_directory_path() /
           ("netshare_serve_" + std::to_string(::getpid()) + "_" +
            std::to_string(config_seed)))
              .string();
  fs::create_directories(t.dir);
  t.config = tiny_config();
  t.config.seed = config_seed;
  t.config.checkpoint_dir = t.dir;
  t.model = std::make_unique<core::NetShare>(t.config, nullptr);
  t.model->fit(reference_flows());
  return t;
}

// Snapshot A/B: same shapes, different weights (training seed differs).
inline TrainedModel& snapshot_a() {
  static TrainedModel* t = new TrainedModel(train_snapshot(42));
  return *t;
}
inline TrainedModel& snapshot_b() {
  static TrainedModel* t = new TrainedModel(train_snapshot(43));
  return *t;
}

inline serve::ModelSpec spec_for(const TrainedModel& t) {
  serve::ModelSpec spec;
  spec.config = t.config;
  spec.reference = reference_flows();
  return spec;
}

// Corrupts one byte of the file at `offset` (negative: from the end).
inline void flip_byte(const std::string& path, std::ptrdiff_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(0, std::ios::end);
  const std::ptrdiff_t size = f.tellg();
  const std::ptrdiff_t pos = offset >= 0 ? offset : size + offset;
  f.seekg(pos);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(pos);
  f.write(&b, 1);
}

// Registry + service + in-process client over snapshot A, published as "m".
struct ServiceHarness {
  explicit ServiceHarness(serve::ServiceConfig cfg = {}) {
    registry.define("m", spec_for(snapshot_a()));
    registry.publish("m", snapshot_a().dir);
    service = std::make_unique<serve::Service>(registry, cfg);
    client = std::make_unique<serve::ServeClient>(*service);
  }
  serve::ModelRegistry registry;
  std::unique_ptr<serve::Service> service;
  std::unique_ptr<serve::ServeClient> client;
};

// ServiceHarness plus the AF_UNIX daemon front-end.
struct SocketHarness : ServiceHarness {
  explicit SocketHarness(serve::ServiceConfig cfg = {}) : ServiceHarness(cfg) {
    path = "/tmp/netshare_serve_test_" + std::to_string(::getpid()) + ".sock";
    server = std::make_unique<serve::SocketServer>(*service, registry, path);
  }
  ~SocketHarness() {
    server->stop();
    std::remove(path.c_str());
  }
  std::string path;
  std::unique_ptr<serve::SocketServer> server;
};

}  // namespace netshare::serve_test
