// Fault-tolerance tests (DESIGN.md §9): snapshot-file corruption produces
// typed errors and never a partially-restored model; injected numeric faults
// trigger rollback-and-retry (recoverable) or bounded failure (persistent);
// a failed fine-tune chunk falls back to the seed snapshot without failing
// the whole fit; durable checkpoints resume bitwise-identically at any
// worker count; and the guards preserve the healthy-path determinism and
// zero-steady-state-allocation contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/netshare.hpp"
#include "core/train.hpp"
#include "eval/report.hpp"
#include "gan/doppelganger.hpp"
#include "gan/tabular_gan.hpp"
#include "ml/health.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare {
namespace {

namespace fs = std::filesystem;
using ml::SnapshotError;
using ml::health::FaultPlan;
using ml::health::ScopedFaultPlan;
using ml::health::TrainingDivergedError;

// ---------------------------------------------------------------------------
// Fixtures (the tiny DoppelGanger setup shared with test_generate.cpp).
// ---------------------------------------------------------------------------

bool matrix_eq(const ml::Matrix& a, const ml::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (a(r, c) != b(r, c)) return false;  // bitwise: exact compare
    }
  }
  return true;
}

bool series_eq(const gan::GeneratedSeries& a, const gan::GeneratedSeries& b) {
  if (!matrix_eq(a.attributes, b.attributes)) return false;
  if (a.features.size() != b.features.size()) return false;
  for (std::size_t t = 0; t < a.features.size(); ++t) {
    if (!matrix_eq(a.features[t], b.features[t])) return false;
  }
  return a.lengths == b.lengths;
}

gan::TimeSeriesSpec tiny_spec() {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{ml::OutputSegment::Kind::kSoftmax, 3},
                             {ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

gan::TimeSeriesDataset tiny_data(std::size_t n, std::uint64_t seed) {
  gan::TimeSeriesDataset data;
  data.spec = tiny_spec();
  data.attributes = ml::Matrix(n, 4);
  data.features.assign(4, ml::Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

gan::DgConfig tiny_dg() {
  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  dg.health.check_every = 5;
  dg.health.checkpoint_every = 5;
  return dg;
}

core::NetShareConfig tiny_trainer_config() {
  core::NetShareConfig cfg;
  cfg.use_ip2vec_ports = false;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 6;
  cfg.finetune_iterations = 8;
  cfg.threads = 4;
  cfg.seed = 5000;
  cfg.dg = tiny_dg();
  return cfg;
}

std::vector<gan::TimeSeriesDataset> tiny_chunks() {
  // Chunk 1 is empty: exercises the kEmpty report row alongside the others.
  std::vector<gan::TimeSeriesDataset> chunks;
  chunks.push_back(tiny_data(24, 78));
  chunks.push_back(tiny_data(0, 79));
  chunks.push_back(tiny_data(20, 80));
  return chunks;
}

// Fresh per-test scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "netshare_robust_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string write_valid_snapshot(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "netshare_robust_" + name + ".ckpt";
  ml::save_snapshot_file({1.0, -2.5, 3.25, 0.125}, path);
  return path;
}

void patch_byte(const std::string& path, std::size_t offset,
                unsigned char value) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(&value), 1);
}

SnapshotError::Kind load_kind(const std::string& path) {
  try {
    ml::load_snapshot_file(path);
  } catch (const SnapshotError& e) {
    return e.kind();
  }
  ADD_FAILURE() << path << ": load did not throw SnapshotError";
  return SnapshotError::Kind::kIo;
}

// ---------------------------------------------------------------------------
// Snapshot file corruption → typed errors, no partial restore.
// ---------------------------------------------------------------------------

TEST(SnapshotFile, RoundTripSurvivesCrc) {
  const std::string path = write_valid_snapshot("roundtrip");
  const std::vector<double> back = ml::load_snapshot_file(path);
  EXPECT_EQ(back, (std::vector<double>{1.0, -2.5, 3.25, 0.125}));
  std::remove(path.c_str());
}

TEST(SnapshotFile, TruncatedPayloadIsTyped) {
  const std::string path = write_valid_snapshot("truncated");
  fs::resize_file(path, fs::file_size(path) - 9);  // cuts payload + crc
  EXPECT_EQ(load_kind(path), SnapshotError::Kind::kTruncated);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingChecksumIsTruncated) {
  const std::string path = write_valid_snapshot("nocrc");
  fs::resize_file(path, fs::file_size(path) - 2);  // clips the crc field
  EXPECT_EQ(load_kind(path), SnapshotError::Kind::kTruncated);
  std::remove(path.c_str());
}

TEST(SnapshotFile, FlippedPayloadByteIsChecksumError) {
  const std::string path = write_valid_snapshot("flipped");
  // Offset 23 lands inside the first payload double (8 magic + 4 version +
  // 8 count + 3).
  patch_byte(path, 23, 0x7f);
  EXPECT_EQ(load_kind(path), SnapshotError::Kind::kChecksum);
  std::remove(path.c_str());
}

TEST(SnapshotFile, WrongVersionIsTyped) {
  const std::string path = write_valid_snapshot("version");
  patch_byte(path, 8, 99);  // version field follows the 8-byte magic
  try {
    ml::load_snapshot_file(path);
    FAIL() << "load accepted an unknown format version";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kBadVersion);
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(SnapshotFile, ZeroLengthFileIsTruncated) {
  const std::string path =
      ::testing::TempDir() + "netshare_robust_empty.ckpt";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_EQ(load_kind(path), SnapshotError::Kind::kTruncated);
  std::remove(path.c_str());
}

TEST(SnapshotFile, ForeignBytesAreBadMagic) {
  const std::string path =
      ::testing::TempDir() + "netshare_robust_foreign.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a netshare snapshot at all";
  }
  EXPECT_EQ(load_kind(path), SnapshotError::Kind::kBadMagic);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileIsIoError) {
  EXPECT_EQ(load_kind(::testing::TempDir() + "netshare_robust_nofile.ckpt"),
            SnapshotError::Kind::kIo);
}

TEST(Restore, MismatchLeavesModelUntouchedAndNamesSizes) {
  Rng rng(41);
  ml::Mlp model({3, 5, 2}, ml::Activation::kRelu, rng);
  const std::vector<double> before =
      ml::snapshot_parameters(model.parameters());
  std::vector<double> wrong(before.size() - 3, 0.5);
  try {
    ml::restore_parameters(model.parameters(), wrong);
    FAIL() << "restore accepted a mismatched snapshot";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(before.size())), std::string::npos)
        << msg;
    EXPECT_NE(msg.find(std::to_string(wrong.size())), std::string::npos)
        << msg;
  }
  // Validation runs before any write: the model is bitwise untouched.
  EXPECT_EQ(ml::snapshot_parameters(model.parameters()), before);
}

// ---------------------------------------------------------------------------
// Numeric health guard: rollback-and-retry inside the train loops.
// ---------------------------------------------------------------------------

TEST(HealthGuard, InjectedNanRollsBackAndRecovers) {
  gan::DoppelGanger model(tiny_spec(), tiny_dg(), 4321);
  FaultPlan plan;
  plan.nan_at_step = 8;  // detected by the step-10 check (check_every = 5)
  {
    ScopedFaultPlan arm(plan);
    model.fit(tiny_data(64, 78), 20);
  }
  const auto stats = model.health_stats();
  EXPECT_GE(stats.injected, 1);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_GE(stats.last_bad_step, plan.nan_at_step);
  EXPECT_FALSE(stats.last_issue.empty());
  // The recovered model is usable: every sampled value is finite.
  gan::GeneratedSeries out;
  model.sample_into(16, 7, 0, out);
  ASSERT_EQ(out.attributes.rows(), 16u);
  for (std::size_t r = 0; r < out.attributes.rows(); ++r) {
    for (std::size_t c = 0; c < out.attributes.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(out.attributes(r, c)));
    }
  }
}

TEST(HealthGuard, PersistentNanExhaustsRetriesAndThrows) {
  gan::DgConfig dg = tiny_dg();
  dg.health.max_retries = 1;
  gan::DoppelGanger model(tiny_spec(), dg, 4321);
  FaultPlan plan;
  plan.nan_at_step = 2;
  plan.nan_repeats = true;  // re-poisons after every rollback
  ScopedFaultPlan arm(plan);
  EXPECT_THROW(model.fit(tiny_data(64, 78), 20), TrainingDivergedError);
  EXPECT_EQ(model.health_stats().rollbacks, 1);
}

TEST(HealthGuard, HealthyPathBitwiseIdenticalWithGuardsOnOrOff) {
  const gan::TimeSeriesDataset data = tiny_data(64, 78);
  gan::DgConfig off = tiny_dg();
  off.health.enabled = false;
  gan::DgConfig on = tiny_dg();
  on.health.check_every = 3;
  on.health.checkpoint_every = 3;
  gan::DoppelGanger a(tiny_spec(), off, 4321);
  gan::DoppelGanger b(tiny_spec(), on, 4321);
  a.fit(data, 10);
  b.fit(data, 10);
  EXPECT_GT(b.health_stats().checks, 0);
  EXPECT_EQ(b.health_stats().rollbacks, 0);
  // Guards only read on a healthy run: identical weights, bit for bit.
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(HealthGuard, SteadyStateTrainingAllocatesNothingWithGuardsOn) {
  ml::kernels::KernelConfig cfg;
  cfg.threads = 4;
  ml::kernels::ConfigOverride guard(cfg);
  gan::DgConfig dg = tiny_dg();
  dg.health.check_every = 1;  // guard + checkpoint on every iteration
  dg.health.checkpoint_every = 1;
  gan::DoppelGanger model(tiny_spec(), dg, 4321);
  const gan::TimeSeriesDataset data = tiny_data(64, 78);
  model.fit(data, 1);  // warm-up populates pools and the monitor buffer
  ml::alloc_counter::reset();
  model.fit(data, 2);
  EXPECT_EQ(ml::alloc_counter::count(), 0u)
      << "health-guarded training allocated Matrix storage in steady state";
}

TEST(HealthGuard, TabularGanRollsBackAndRecovers) {
  std::vector<ml::OutputSegment> segments = {
      {ml::OutputSegment::Kind::kSoftmax, 3},
      {ml::OutputSegment::Kind::kSigmoid, 2}};
  ml::Matrix rows(64, 5);
  Rng rng(91);
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    rows(i, rng.categorical({0.4, 0.4, 0.2})) = 1.0;
    rows(i, 3) = rng.uniform(0.1, 0.9);
    rows(i, 4) = rng.uniform(0.1, 0.9);
  }
  gan::TabularGanConfig cfg;
  cfg.gen_hidden = {24};
  cfg.disc_hidden = {24};
  cfg.iterations = 20;
  cfg.batch_size = 16;
  cfg.health.check_every = 5;
  cfg.health.checkpoint_every = 5;
  gan::TabularGan model(segments, cfg, 777);
  FaultPlan plan;
  plan.nan_at_step = 8;
  {
    ScopedFaultPlan arm(plan);
    model.fit(rows);
  }
  EXPECT_GE(model.health_stats().rollbacks, 1);
  Rng sample_rng(92);
  const ml::Matrix out = model.sample(8, sample_rng);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(out(i, j)));
    }
  }
}

// ---------------------------------------------------------------------------
// Chunk fault isolation + the training report.
// ---------------------------------------------------------------------------

TEST(ChunkFaults, UnrecoverableChunkFallsBackToSeedSnapshot) {
  core::NetShareConfig cfg = tiny_trainer_config();
  cfg.dg.health.max_retries = 1;
  core::ChunkedTrainer trainer(tiny_spec(), cfg);
  FaultPlan plan;
  plan.nan_at_step = 2;
  plan.nan_repeats = true;
  plan.nan_model_seed = cfg.seed + 1000 + 2;  // only chunk 2's model
  const auto diags_before =
      telemetry::diag_count("core.train.chunk_failed");
  {
    ScopedFaultPlan arm(plan);
    ASSERT_NO_THROW(trainer.fit(tiny_chunks()));  // the run survives
  }
  const core::TrainReport& report = trainer.report();
  ASSERT_EQ(report.chunks.size(), 3u);
  EXPECT_EQ(report.seed_chunk, 0u);
  EXPECT_TRUE(report.chunks[0].is_seed);
  EXPECT_EQ(report.chunks[0].status, core::ChunkTrainReport::Status::kTrained);
  EXPECT_EQ(report.chunks[1].status, core::ChunkTrainReport::Status::kEmpty);
  const core::ChunkTrainReport& failed = report.chunks[2];
  EXPECT_EQ(failed.status, core::ChunkTrainReport::Status::kSeedFallback);
  EXPECT_EQ(failed.rollbacks, 1);
  EXPECT_EQ(failed.attempts, 2);
  EXPECT_NE(failed.error.find("diverged"), std::string::npos) << failed.error;
  EXPECT_EQ(report.count(core::ChunkTrainReport::Status::kSeedFallback), 1u);
  if (telemetry::kCompiledIn) {
    EXPECT_GT(telemetry::diag_count("core.train.chunk_failed"), diags_before);
  }
  // The fallback model is the seed snapshot: present and sampling cleanly.
  ASSERT_TRUE(trainer.has_model(2));
  gan::GeneratedSeries out;
  trainer.sample_chunk_into(2, 10, 7, 0, out);
  EXPECT_EQ(out.attributes.rows(), 10u);
  gan::GeneratedSeries seed_out;
  gan::DoppelGanger seed_copy(tiny_spec(), cfg.dg, cfg.seed + 1000 + 2);
  seed_copy.restore(trainer.seed_snapshot());
  seed_copy.sample_into(10, mix_seed(7, 2), 0, seed_out);
  EXPECT_TRUE(series_eq(out, seed_out));
}

TEST(ChunkFaults, ReportRendersEveryStatus) {
  core::TrainReport report;
  report.chunks.resize(4);
  report.chunks[0].is_seed = true;
  report.chunks[0].status = core::ChunkTrainReport::Status::kTrained;
  report.chunks[0].attempts = 2;
  report.chunks[0].rollbacks = 1;
  report.chunks[1].status = core::ChunkTrainReport::Status::kEmpty;
  report.chunks[2].status = core::ChunkTrainReport::Status::kResumed;
  report.chunks[3].status = core::ChunkTrainReport::Status::kSeedFallback;
  report.chunks[3].error = "training diverged";
  std::ostringstream out;
  eval::print_train_report(out, report);
  const std::string text = out.str();
  for (const char* needle :
       {"seed", "fine-tune", "trained", "empty", "resumed", "seed-fallback",
        "training diverged", "1 trained, 1 resumed, 1 seed-fallback, 1 empty"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  }
}

// ---------------------------------------------------------------------------
// Durable checkpoint / resume.
// ---------------------------------------------------------------------------

TEST(CheckpointResume, ResumedRunsAreBitwiseIdenticalAtAnyWorkerCount) {
  const std::string dir = scratch_dir("resume");
  core::NetShareConfig cfg = tiny_trainer_config();
  cfg.checkpoint_dir = dir;
  const auto chunks = tiny_chunks();
  const std::vector<std::size_t> counts{12, 0, 9};

  core::ChunkedTrainer first(tiny_spec(), cfg);
  first.fit(chunks);
  EXPECT_EQ(first.report().count(core::ChunkTrainReport::Status::kTrained),
            2u);
  EXPECT_TRUE(fs::exists(dir + "/chunk_0.ckpt"));
  EXPECT_FALSE(fs::exists(dir + "/chunk_1.ckpt"));  // empty chunk: no model
  EXPECT_TRUE(fs::exists(dir + "/chunk_2.ckpt"));
  std::vector<gan::GeneratedSeries> baseline;
  first.sample_chunks(counts, 424242, baseline, 1);

  // A new trainer finds every checkpoint valid: nothing retrains, and the
  // sampled output matches the uninterrupted run bit for bit at any worker
  // count.
  core::ChunkedTrainer resumed(tiny_spec(), cfg);
  resumed.fit(chunks);
  EXPECT_EQ(resumed.report().count(core::ChunkTrainReport::Status::kResumed),
            2u);
  EXPECT_EQ(resumed.report().count(core::ChunkTrainReport::Status::kTrained),
            0u);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<gan::GeneratedSeries> out;
    resumed.sample_chunks(counts, 424242, out, workers);
    ASSERT_EQ(out.size(), baseline.size());
    for (std::size_t c = 0; c < out.size(); ++c) {
      EXPECT_TRUE(series_eq(out[c], baseline[c]))
          << "chunk " << c << " differs at " << workers << " workers";
    }
  }

  // Kill-between-chunks simulation: chunk 2's checkpoint is gone, the seed's
  // survives. Only chunk 2 retrains, and because it fine-tunes from the
  // bit-identical restored seed with the same model seed, the result is
  // still bitwise identical to the uninterrupted run.
  fs::remove(dir + "/chunk_2.ckpt");
  core::ChunkedTrainer partial(tiny_spec(), cfg);
  partial.fit(chunks);
  EXPECT_EQ(partial.report().chunks[0].status,
            core::ChunkTrainReport::Status::kResumed);
  EXPECT_EQ(partial.report().chunks[2].status,
            core::ChunkTrainReport::Status::kTrained);
  std::vector<gan::GeneratedSeries> out;
  partial.sample_chunks(counts, 424242, out, 4);
  for (std::size_t c = 0; c < out.size(); ++c) {
    EXPECT_TRUE(series_eq(out[c], baseline[c])) << "chunk " << c;
  }
  fs::remove_all(dir);
}

TEST(CheckpointResume, CorruptCheckpointIsRejectedAndRetrained) {
  const std::string dir = scratch_dir("corrupt");
  core::NetShareConfig cfg = tiny_trainer_config();
  cfg.checkpoint_dir = dir;
  const auto chunks = tiny_chunks();

  core::ChunkedTrainer first(tiny_spec(), cfg);
  first.fit(chunks);
  std::vector<gan::GeneratedSeries> baseline;
  first.sample_chunks({12, 0, 9}, 424242, baseline, 1);

  patch_byte(dir + "/chunk_2.ckpt", 23, 0x7f);  // payload byte: CRC mismatch
  const auto diags_before =
      telemetry::diag_count("core.train.checkpoint_invalid");
  core::ChunkedTrainer second(tiny_spec(), cfg);
  second.fit(chunks);
  if (telemetry::kCompiledIn) {
    EXPECT_GT(telemetry::diag_count("core.train.checkpoint_invalid"),
              diags_before);
  }
  EXPECT_EQ(second.report().chunks[0].status,
            core::ChunkTrainReport::Status::kResumed);
  EXPECT_EQ(second.report().chunks[2].status,
            core::ChunkTrainReport::Status::kTrained);
  std::vector<gan::GeneratedSeries> out;
  second.sample_chunks({12, 0, 9}, 424242, out, 4);
  for (std::size_t c = 0; c < out.size(); ++c) {
    EXPECT_TRUE(series_eq(out[c], baseline[c])) << "chunk " << c;
  }
  fs::remove_all(dir);
}

TEST(CheckpointResume, FailedCheckpointWriteNeverFailsTraining) {
  const std::string dir = scratch_dir("failwrite");
  core::NetShareConfig cfg = tiny_trainer_config();
  cfg.checkpoint_dir = dir;
  FaultPlan plan;
  plan.fail_nth_snapshot_write = 1;  // the seed chunk's checkpoint write
  const auto diags_before =
      telemetry::diag_count("core.train.checkpoint_write_failed");
  core::ChunkedTrainer trainer(tiny_spec(), cfg);
  {
    ScopedFaultPlan arm(plan);
    ASSERT_NO_THROW(trainer.fit(tiny_chunks()));
  }
  if (telemetry::kCompiledIn) {
    EXPECT_GT(telemetry::diag_count("core.train.checkpoint_write_failed"),
              diags_before);
  }
  // Training finished; only the failed write's file is missing, so a later
  // resume retrains exactly that chunk.
  EXPECT_EQ(trainer.report().count(core::ChunkTrainReport::Status::kTrained),
            2u);
  EXPECT_FALSE(fs::exists(dir + "/chunk_0.ckpt"));
  EXPECT_TRUE(fs::exists(dir + "/chunk_2.ckpt"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// API preconditions.
// ---------------------------------------------------------------------------

TEST(Preconditions, GenerateBeforeFitThrowsWithExactMessage) {
  core::NetShareConfig cfg = tiny_trainer_config();
  core::NetShare model(cfg, nullptr);
  Rng rng(60);
  try {
    model.generate_flows(10, rng);
    FAIL() << "generate_flows accepted an unfit model";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "NetShare::generate_flows: fit a flow trace first");
  }
  try {
    model.generate_packets(10, rng);
    FAIL() << "generate_packets accepted an unfit model";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(),
                 "NetShare::generate_packets: fit a packet trace first");
  }
  try {
    model.train_report();
    FAIL() << "train_report accepted an unfit model";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "NetShare::train_report: fit a trace first");
  }
}

}  // namespace
}  // namespace netshare
