// Tests for the NetShare core pipeline: tuple codec, encoders (including the
// encode -> decode round-trip invariant), chunk grid, chunked trainer, and
// postprocessing privacy extensions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/netshare.hpp"
#include "core/postprocess.hpp"
#include "datagen/presets.hpp"
#include "metrics/field_metrics.hpp"
#include "net/ports.hpp"

namespace netshare::core {
namespace {

std::shared_ptr<embed::Ip2Vec> shared_ip2vec() {
  static std::shared_ptr<embed::Ip2Vec> model =
      make_public_ip2vec(2015, 2500, 8);
  return model;
}

NetShareConfig tiny_config() {
  NetShareConfig cfg;
  cfg.max_seq_len = 4;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 60;
  cfg.finetune_iterations = 25;
  cfg.threads = 3;
  cfg.dg.attr_hidden = {32};
  cfg.dg.rnn_hidden = 24;
  cfg.dg.disc_hidden = {48, 48};
  cfg.dg.aux_hidden = {16};
  cfg.dg.batch_size = 32;
  return cfg;
}

TEST(ChunkGrid, CoversRangeEvenly) {
  const auto chunks = make_chunk_grid(10.0, 40.0, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_DOUBLE_EQ(chunks[0].start_time, 10.0);
  EXPECT_DOUBLE_EQ(chunks[1].start_time, 20.0);
  EXPECT_DOUBLE_EQ(chunks[2].start_time, 30.0);
  EXPECT_DOUBLE_EQ(chunks[0].duration, 10.0);
}

TEST(ChunkGrid, DegenerateRangeIsSafe) {
  const auto chunks = make_chunk_grid(5.0, 5.0, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_GT(chunks[0].duration, 0.0);
}

TEST(TupleCodec, BitModeRoundTripsExactly) {
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;
  TupleCodec codec(cfg, nullptr);
  net::FiveTuple key{net::Ipv4Address(42, 1, 2, 3), net::Ipv4Address(8, 8, 8, 8),
                     51514, 443, net::Protocol::kTcp};
  std::vector<double> buf(codec.dim(false), 0.0);
  codec.encode(key, buf.data());
  EXPECT_EQ(codec.decode(buf.data()), key);
}

TEST(TupleCodec, Ip2VecModeRoundTripsVocabPorts) {
  NetShareConfig cfg = tiny_config();
  TupleCodec codec(cfg, shared_ip2vec().get());
  for (std::uint16_t port : {std::uint16_t{53}, std::uint16_t{80},
                             std::uint16_t{443}}) {
    net::FiveTuple key{net::Ipv4Address(10, 1, 2, 3),
                       net::Ipv4Address(10, 4, 5, 6), 30000, port,
                       *net::well_known_port_protocol(port) == net::Protocol::kUdp
                           ? net::Protocol::kUdp
                           : net::Protocol::kTcp};
    std::vector<double> buf(codec.dim(false), 0.0);
    codec.encode(key, buf.data());
    const net::FiveTuple back = codec.decode(buf.data());
    EXPECT_EQ(back.dst_port, port);
    EXPECT_EQ(back.src_ip, key.src_ip);
    EXPECT_EQ(back.dst_ip, key.dst_ip);
    EXPECT_EQ(back.protocol, key.protocol);
  }
}

TEST(TupleCodec, IcmpZeroesPorts) {
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;
  TupleCodec codec(cfg, nullptr);
  net::FiveTuple key{net::Ipv4Address(1, 1, 1, 1), net::Ipv4Address(2, 2, 2, 2),
                     0, 0, net::Protocol::kIcmp};
  std::vector<double> buf(codec.dim(false), 0.0);
  codec.encode(key, buf.data());
  const auto back = codec.decode(buf.data());
  EXPECT_EQ(back.protocol, net::Protocol::kIcmp);
  EXPECT_EQ(back.src_port, 0);
  EXPECT_EQ(back.dst_port, 0);
}

TEST(FlowEncoder, EncodeDecodeRoundTripPreservesRecords) {
  // Feed the encoder's own encoding back through decode: records must come
  // back with the right keys, counts, and approximate values.
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 600, 51);
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;  // exact port round-trip
  FlowEncoder enc(cfg, nullptr);
  enc.fit(bundle.flows);
  const auto chunks = enc.encode(bundle.flows);
  ASSERT_EQ(chunks.size(), 3u);

  std::size_t encoded_records = 0;
  net::FlowTrace decoded_all;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t len : chunks[c].lengths) encoded_records += len;
    const net::FlowTrace dec = enc.decode(chunks[c], c);
    decoded_all.records.insert(decoded_all.records.end(), dec.records.begin(),
                               dec.records.end());
  }
  // All records survive (up to per-flow truncation at max_seq_len).
  EXPECT_EQ(decoded_all.size(), encoded_records);
  EXPECT_LE(decoded_all.size(), bundle.flows.size());
  EXPECT_GT(decoded_all.size(), bundle.flows.size() * 9 / 10);

  // Distributions of the decoded trace match the original closely.
  decoded_all.sort_by_time();
  const auto rep = metrics::compare_flows(bundle.flows, decoded_all);
  EXPECT_LT(rep.jsd.at("DP"), 0.05);
  EXPECT_LT(rep.jsd.at("PR"), 0.05);
  EXPECT_LT(rep.jsd.at("SA"), 0.10);
}

TEST(FlowEncoder, AttackLabelsSurviveRoundTrip) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kTon, 800, 52);
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;
  FlowEncoder enc(cfg, nullptr);
  enc.fit(bundle.flows);
  const auto chunks = enc.encode(bundle.flows);
  std::size_t real_attacks = 0, decoded_attacks = 0;
  for (const auto& r : bundle.flows.records) real_attacks += r.is_attack;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (const auto& r : enc.decode(chunks[c], c).records) {
      decoded_attacks += r.is_attack;
    }
  }
  // Within truncation losses.
  EXPECT_NEAR(static_cast<double>(decoded_attacks),
              static_cast<double>(real_attacks), real_attacks * 0.25 + 5.0);
}

TEST(PacketEncoder, EncodeDecodeRoundTripPreservesPackets) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 1500, 53);
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;
  cfg.max_seq_len = 6;
  PacketEncoder enc(cfg, nullptr);
  enc.fit(bundle.packets);
  const auto chunks = enc.encode(bundle.packets);

  net::PacketTrace decoded_all;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const auto dec = enc.decode(chunks[c], c);
    decoded_all.packets.insert(decoded_all.packets.end(), dec.packets.begin(),
                               dec.packets.end());
  }
  EXPECT_LE(decoded_all.size(), bundle.packets.size());
  // Truncation at max_seq_len drops packets of elephant flows (documented
  // scale-down); the bulk must survive.
  EXPECT_GT(decoded_all.size(), bundle.packets.size() / 3);
  decoded_all.sort_by_time();
  const auto rep = metrics::compare_packets(bundle.packets, decoded_all);
  EXPECT_LT(rep.jsd.at("DP"), 0.05);
  EXPECT_LT(rep.jsd.at("PR"), 0.05);
}

TEST(PacketEncoder, ChunkCountsAreConsistent) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCaida, 1000, 54);
  NetShareConfig cfg = tiny_config();
  cfg.use_ip2vec_ports = false;
  PacketEncoder enc(cfg, nullptr);
  enc.fit(bundle.packets);
  std::size_t records = 0;
  for (const auto& c : enc.chunks()) records += c.real_records;
  EXPECT_EQ(records, bundle.packets.size());
}

TEST(NetShareEndToEnd, FlowPathProducesFaithfulTrace) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 800, 55);
  NetShareConfig cfg = tiny_config();
  cfg.seed_iterations = 120;
  cfg.finetune_iterations = 40;
  NetShare model(cfg, shared_ip2vec());
  model.fit(bundle.flows);
  EXPECT_GT(model.train_cpu_seconds(), 0.0);

  Rng rng(56);
  const net::FlowTrace syn = model.generate_flows(800, rng);
  ASSERT_EQ(syn.size(), 800u);
  // Timestamps within the (extended) trace horizon, sorted.
  for (std::size_t i = 1; i < syn.size(); ++i) {
    EXPECT_LE(syn.records[i - 1].start_time, syn.records[i].start_time);
  }
  for (const auto& r : syn.records) {
    EXPECT_GE(r.packets, 1u);
    EXPECT_GE(r.bytes, 1u);
  }
  // Learned structure: protocol mix nearly exact, destination-port mass on
  // real service ports, and start times spread over the trace horizon.
  const auto rep_syn = metrics::compare_flows(bundle.flows, syn);
  EXPECT_LT(rep_syn.jsd.at("PR"), 0.20);
  EXPECT_LT(rep_syn.jsd.at("DP"), 0.75);
  const double real_span =
      bundle.flows.end_time() - bundle.flows.start_time();
  const double syn_span = syn.records.back().start_time -
                          syn.records.front().start_time;
  EXPECT_GT(syn_span, 0.3 * real_span);
}

TEST(NetShareEndToEnd, PacketPathProducesPackets) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 1200, 58);
  NetShareConfig cfg = tiny_config();
  cfg.max_seq_len = 6;
  cfg.seed_iterations = 100;
  cfg.finetune_iterations = 30;
  NetShare model(cfg, shared_ip2vec());
  model.fit(bundle.packets);

  Rng rng(59);
  const net::PacketTrace syn = model.generate_packets(1000, rng);
  ASSERT_EQ(syn.size(), 1000u);
  for (const auto& p : syn.packets) {
    EXPECT_GE(p.size, net::min_packet_size(p.key.protocol));
    EXPECT_LE(p.size, 1500u);
    EXPECT_GE(p.ttl, 1);
  }
  // NetShare's flow split should produce some multi-packet flows — the
  // capability every per-packet baseline lacks (Fig. 1b).
  const auto aggs = net::aggregate_flows(syn);
  std::size_t multi = 0;
  for (const auto& a : aggs) multi += a.packets > 1;
  EXPECT_GT(multi, 0u);
}

TEST(NetShareEndToEnd, GenerateBeforeFitThrows) {
  NetShare model(tiny_config(), shared_ip2vec());
  Rng rng(60);
  EXPECT_THROW(model.generate_flows(10, rng), std::logic_error);
  EXPECT_THROW(model.generate_packets(10, rng), std::logic_error);
}

TEST(NetShareEndToEnd, V0UsesSingleChunk) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 400, 61);
  NetShareConfig cfg = tiny_config();
  cfg.netshare_v0 = true;
  cfg.seed_iterations = 40;
  NetShare model(cfg, shared_ip2vec());
  model.fit(bundle.flows);
  Rng rng(62);
  const auto syn = model.generate_flows(200, rng);
  EXPECT_EQ(syn.size(), 200u);
}

TEST(NetShareEndToEnd, EpochMergeOverloadMatchesMerged) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 400, 63);
  const auto epochs = bundle.flows.split_epochs(120.0);
  NetShareConfig cfg = tiny_config();
  cfg.seed_iterations = 30;
  cfg.finetune_iterations = 10;
  NetShare model(cfg, shared_ip2vec());
  EXPECT_NO_THROW(model.fit(epochs));
}

TEST(NetShareEndToEnd, PublicPretrainSnapshotTransfers) {
  // Insight 4 mechanics: snapshot from a public model loads into a private
  // model with the same spec and DP training runs.
  const auto pub = datagen::make_dataset(datagen::DatasetId::kDcPub, 500, 64);
  NetShareConfig cfg = tiny_config();
  cfg.netshare_v0 = true;
  cfg.max_seq_len = 4;
  cfg.seed_iterations = 30;
  NetShare public_model(cfg, shared_ip2vec());
  public_model.fit(pub.packets);

  const auto priv = datagen::make_dataset(datagen::DatasetId::kDc, 500, 65);
  NetShareConfig dp_cfg = cfg;
  dp_cfg.dp = true;
  dp_cfg.dp_config = {1.0, 1.0};
  dp_cfg.seed_iterations = 5;
  dp_cfg.public_snapshot = public_model.snapshot();
  NetShare private_model(dp_cfg, shared_ip2vec());
  private_model.fit(priv.packets);
  EXPECT_GT(private_model.dp_steps(), 0u);
  Rng rng(66);
  EXPECT_EQ(private_model.generate_packets(100, rng).size(), 100u);
}

TEST(Postprocess, IpRemapMovesIntoSubnetPreservingStructure) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 400, 67);
  IpRemapConfig remap;
  const net::FlowTrace mapped = remap_ips(bundle.flows, remap);
  ASSERT_EQ(mapped.size(), bundle.flows.size());
  std::set<std::uint32_t> orig_srcs, mapped_srcs;
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    const auto& m = mapped.records[i];
    EXPECT_EQ(m.key.src_ip.octet(0), 10);
    EXPECT_TRUE(m.key.dst_ip.is_private());
    // Non-key fields untouched.
    EXPECT_EQ(m.packets, bundle.flows.records[i].packets);
    orig_srcs.insert(bundle.flows.records[i].key.src_ip.value());
    mapped_srcs.insert(m.key.src_ip.value());
  }
  // Distinctness preserved.
  EXPECT_EQ(orig_srcs.size(), mapped_srcs.size());
}

TEST(Postprocess, RetrainDstPortsMatchesTargetDistribution) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 2000, 68);
  Rng rng(69);
  const std::map<std::uint16_t, double> dist{{8080, 0.75}, {9090, 0.25}};
  const auto out = retrain_dst_ports(bundle.flows, dist, rng);
  std::size_t c8080 = 0;
  for (const auto& r : out.records) {
    EXPECT_TRUE(r.key.dst_port == 8080 || r.key.dst_port == 9090);
    c8080 += r.key.dst_port == 8080;
  }
  EXPECT_NEAR(static_cast<double>(c8080) / out.size(), 0.75, 0.05);
}

TEST(Postprocess, RetrainRejectsEmptyDistribution) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 50, 70);
  Rng rng(71);
  EXPECT_THROW(retrain_dst_ports(bundle.flows, {}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace netshare::core
