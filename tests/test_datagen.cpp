// Tests for the workload simulator substrate: samplers, presets, attack
// signatures, and the structural properties the paper's experiments rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "datagen/presets.hpp"
#include "metrics/consistency.hpp"
#include "net/ports.hpp"

namespace netshare::datagen {
namespace {

TEST(ZipfSampler, ProbabilitiesSumToOneAndDecay) {
  ZipfSampler z(100, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(1), z.probability(50));
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchTheory) {
  ZipfSampler z(20, 1.0);
  Rng rng(1);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.sample(rng)]++;
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.probability(k), 0.01);
  }
}

TEST(ZipfSampler, RejectsEmptySupport) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Distributions, ParetoRespectsScaleAndTail) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sample_pareto(rng, 10.0, 1.5), 10.0);
  }
}

TEST(Distributions, LognormalMedianNearExpMu) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(sample_lognormal(rng, 2.0, 0.5));
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  EXPECT_NEAR(v[v.size() / 2], std::exp(2.0), 0.3);
}

TEST(Distributions, HeavyTailCapsAtMax) {
  Rng rng(4);
  HeavyTailConfig cfg{1.0, 1.0, 0.5, 100.0, 0.5, 1e4};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(sample_heavy_tail(rng, cfg), 1e4);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> w{1.0, 0.0, 3.0};
  int c0 = 0, c2 = 0;
  for (int i = 0; i < 40000; ++i) {
    const auto k = rng.categorical(w);
    ASSERT_NE(k, 1u);
    if (k == 0) ++c0;
    if (k == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c0) / 40000, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(c2) / 40000, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(6);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(7);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(AttackSignatures, AllTypesHaveSignatures) {
  using net::AttackType;
  for (auto t : {AttackType::kDos, AttackType::kDdos, AttackType::kBruteForce,
                 AttackType::kPortScan, AttackType::kBackdoor,
                 AttackType::kInjection, AttackType::kMitm,
                 AttackType::kPassword, AttackType::kRansomware,
                 AttackType::kScanning, AttackType::kXss}) {
    const AttackSignature s = attack_signature(t);
    EXPECT_EQ(s.type, t);
    EXPECT_FALSE(s.dst_ports.empty());
    EXPECT_GE(s.burst_flows, 1);
  }
  EXPECT_THROW(attack_signature(AttackType::kNone), std::invalid_argument);
}

TEST(TraceSimulator, GeneratesRequestedPacketBudget) {
  TraceSimulator sim(preset_config(DatasetId::kCaida));
  Rng rng(8);
  const auto labeled = sim.generate_packets(5000, rng);
  EXPECT_GE(labeled.packets.size(), 5000u);
}

TEST(TraceSimulator, PacketsAreTimeSorted) {
  TraceSimulator sim(preset_config(DatasetId::kCaida));
  Rng rng(9);
  const auto labeled = sim.generate_packets(2000, rng);
  for (std::size_t i = 1; i < labeled.packets.size(); ++i) {
    EXPECT_LE(labeled.packets.packets[i - 1].timestamp,
              labeled.packets.packets[i].timestamp);
  }
}

TEST(TraceSimulator, PacketSizesRespectProtocolMinimums) {
  TraceSimulator sim(preset_config(DatasetId::kDc));
  Rng rng(10);
  const auto labeled = sim.generate_packets(3000, rng);
  for (const auto& p : labeled.packets.packets) {
    EXPECT_GE(p.size, net::min_packet_size(p.key.protocol));
    EXPECT_LE(p.size, 1500u);
  }
}

TEST(TraceSimulator, WellKnownPortsGetCompliantProtocols) {
  TraceSimulator sim(preset_config(DatasetId::kUgr16));
  Rng rng(11);
  const auto flows = sim.generate_flows(1500, rng);
  const auto res = metrics::check_flow_consistency(flows);
  EXPECT_GT(res.test3_port_protocol, 0.97);
  EXPECT_GT(res.test1_ip_validity, 0.99);
  EXPECT_GT(res.test2_bytes_vs_packets, 0.99);
}

TEST(TraceSimulator, FlowSizeIsHeavyTailed) {
  TraceSimulator sim(preset_config(DatasetId::kCaida));
  Rng rng(12);
  const auto labeled = sim.generate_packets(20000, rng);
  const auto aggs = net::aggregate_flows(labeled.packets);
  std::size_t singletons = 0, elephants = 0;
  for (const auto& a : aggs) {
    if (a.packets <= 2) ++singletons;
    if (a.packets >= 50) ++elephants;
  }
  // Mice are plentiful, elephants exist.
  EXPECT_GT(singletons, aggs.size() / 5);
  EXPECT_GT(elephants, 0u);
}

TEST(TraceSimulator, TonHasRoughlyPaperAttackShare) {
  const auto bundle = make_dataset(DatasetId::kTon, 3000, 13);
  std::size_t attacks = 0;
  std::set<net::AttackType> types;
  for (const auto& r : bundle.flows.records) {
    if (r.is_attack) {
      ++attacks;
      types.insert(r.attack_type);
    }
  }
  const double share = static_cast<double>(attacks) /
                       static_cast<double>(bundle.flows.size());
  // Paper: 34.93% attacks over nine types.
  EXPECT_GT(share, 0.15);
  EXPECT_LT(share, 0.60);
  EXPECT_GE(types.size(), 7u);
}

TEST(Presets, EveryDatasetGenerates) {
  for (auto id : {DatasetId::kUgr16, DatasetId::kCidds, DatasetId::kTon,
                  DatasetId::kCaida, DatasetId::kDc, DatasetId::kCa,
                  DatasetId::kCaidaPub, DatasetId::kDcPub}) {
    const auto bundle = make_dataset(id, 500, 14);
    EXPECT_GE(bundle.size(), 500u) << dataset_name(id);
    EXPECT_EQ(bundle.is_pcap, dataset_is_pcap(id));
    if (bundle.is_pcap) {
      EXPECT_FALSE(bundle.packets.empty());
      EXPECT_TRUE(bundle.flows.empty());
    } else {
      EXPECT_FALSE(bundle.flows.empty());
    }
  }
}

TEST(Presets, DeterministicUnderSameSeed) {
  const auto a = make_dataset(DatasetId::kCidds, 400, 77);
  const auto b = make_dataset(DatasetId::kCidds, 400, 77);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows.records[i], b.flows.records[i]);
  }
}

TEST(Presets, DifferentSeedsDiffer) {
  const auto a = make_dataset(DatasetId::kCidds, 400, 1);
  const auto b = make_dataset(DatasetId::kCidds, 400, 2);
  bool any_diff = a.flows.size() != b.flows.size();
  for (std::size_t i = 0; !any_diff && i < a.flows.size(); ++i) {
    any_diff = !(a.flows.records[i] == b.flows.records[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Presets, CollectorProducesRepeatedFiveTuples) {
  // The Fig. 1a phenomenon: some 5-tuples appear in multiple NetFlow records.
  const auto bundle = make_dataset(DatasetId::kUgr16, 3000, 15);
  const auto groups = bundle.flows.group_by_flow();
  std::size_t multi = 0;
  for (const auto& [key, idx] : groups) {
    if (idx.size() > 1) ++multi;
  }
  EXPECT_GT(multi, 0u);
}

}  // namespace
}  // namespace netshare::datagen
