// Tests for the DP substrate: DP-SGD clipping/noising and the RDP accountant.
#include <gtest/gtest.h>

#include <cmath>

#include "privacy/accountant.hpp"
#include "privacy/dp_sgd.hpp"

namespace netshare::privacy {
namespace {

TEST(DpSgd, ClipsLargePerExampleGradients) {
  ml::Parameter w(ml::Matrix(1, 4, 0.0));
  DpSgdAggregator agg({&w}, {1.0, 0.0});  // no noise
  w.grad.fill(10.0);                      // norm 20 -> clipped to 1
  agg.accumulate_example();
  Rng rng(1);
  agg.finalize_batch(1, rng);
  double sq = 0.0;
  for (double g : w.grad.data()) sq += g * g;
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-9);
}

TEST(DpSgd, SmallGradientsPassUnclipped) {
  ml::Parameter w(ml::Matrix(1, 4, 0.0));
  DpSgdAggregator agg({&w}, {10.0, 0.0});
  w.grad.fill(0.5);  // norm 1 < 10
  agg.accumulate_example();
  Rng rng(2);
  agg.finalize_batch(1, rng);
  EXPECT_NEAR(w.grad(0, 0), 0.5, 1e-12);
}

TEST(DpSgd, AveragesAcrossBatch) {
  ml::Parameter w(ml::Matrix(1, 2, 0.0));
  DpSgdAggregator agg({&w}, {100.0, 0.0});
  w.grad.fill(1.0);
  agg.accumulate_example();
  w.grad.fill(3.0);
  agg.accumulate_example();
  Rng rng(3);
  agg.finalize_batch(2, rng);
  EXPECT_NEAR(w.grad(0, 0), 2.0, 1e-12);
}

TEST(DpSgd, NoiseHasExpectedScale) {
  ml::Parameter w(ml::Matrix(1, 2000, 0.0));
  const double sigma = 2.0, clip = 1.0;
  DpSgdAggregator agg({&w}, {clip, sigma});
  // Zero gradient: output should be pure noise with stddev sigma*clip/B.
  agg.accumulate_example();
  Rng rng(4);
  const std::size_t B = 4;
  agg.finalize_batch(B, rng);
  double var = 0.0;
  for (double g : w.grad.data()) var += g * g;
  var /= static_cast<double>(w.grad.size());
  const double expect_sd = sigma * clip / static_cast<double>(B);
  EXPECT_NEAR(std::sqrt(var), expect_sd, 0.1 * expect_sd);
}

TEST(DpSgd, SumResetsBetweenBatches) {
  ml::Parameter w(ml::Matrix(1, 2, 0.0));
  DpSgdAggregator agg({&w}, {100.0, 0.0});
  w.grad.fill(5.0);
  agg.accumulate_example();
  Rng rng(5);
  agg.finalize_batch(1, rng);
  // Second batch with zero grads must not see the first batch's sum.
  w.zero_grad();
  agg.accumulate_example();
  agg.finalize_batch(1, rng);
  EXPECT_NEAR(w.grad(0, 0), 0.0, 1e-12);
}

TEST(Accountant, EpsilonIncreasesWithSteps) {
  const double e1 = compute_epsilon(0.01, 1.0, 100, 1e-5).epsilon;
  const double e2 = compute_epsilon(0.01, 1.0, 10000, 1e-5).epsilon;
  EXPECT_LT(e1, e2);
}

TEST(Accountant, EpsilonDecreasesWithNoise) {
  const double e1 = compute_epsilon(0.01, 0.5, 1000, 1e-5).epsilon;
  const double e2 = compute_epsilon(0.01, 4.0, 1000, 1e-5).epsilon;
  EXPECT_GT(e1, e2);
}

TEST(Accountant, EpsilonIncreasesWithSamplingRate) {
  const double e1 = compute_epsilon(0.001, 1.0, 1000, 1e-5).epsilon;
  const double e2 = compute_epsilon(0.1, 1.0, 1000, 1e-5).epsilon;
  EXPECT_LT(e1, e2);
}

TEST(Accountant, RejectsBadArguments) {
  EXPECT_THROW(compute_epsilon(0.0, 1.0, 10, 1e-5), std::invalid_argument);
  EXPECT_THROW(compute_epsilon(0.5, 0.0, 10, 1e-5), std::invalid_argument);
  EXPECT_THROW(compute_epsilon(0.5, 1.0, 10, 2.0), std::invalid_argument);
}

TEST(Accountant, NoiseSearchInvertsEpsilon) {
  const double q = 0.02;
  const std::size_t steps = 500;
  const double delta = 1e-5;
  for (double target : {1.0, 10.0, 100.0}) {
    const double sigma = noise_multiplier_for_epsilon(target, q, steps, delta);
    const double achieved = compute_epsilon(q, sigma, steps, delta).epsilon;
    EXPECT_LE(achieved, target * 1.001);
    // And not grossly over-noised:
    const double loose = compute_epsilon(q, sigma * 0.8, steps, delta).epsilon;
    EXPECT_GT(loose, target * 0.999);
  }
}

}  // namespace
}  // namespace netshare::privacy
