// Tests for the downstream-task substrate: feature extraction, the five
// classifiers, OCSVM, and NetML modes.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/presets.hpp"
#include "downstream/classifier.hpp"
#include "downstream/netml.hpp"

namespace netshare::downstream {
namespace {

// A cleanly separable 3-class dataset.
LabeledDataset separable_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  LabeledDataset ds;
  ds.num_classes = 3;
  ds.x = ml::Matrix(n, 4);
  ds.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::size_t>(rng.uniform_int(0, 2));
    ds.y[i] = cls;
    ds.x(i, 0) = static_cast<double>(cls) + rng.normal(0.0, 0.15);
    ds.x(i, 1) = (cls == 1 ? 1.0 : 0.0) + rng.normal(0.0, 0.15);
    ds.x(i, 2) = rng.normal(0.0, 1.0);  // noise feature
    ds.x(i, 3) = (cls == 2 ? -1.0 : 1.0) + rng.normal(0.0, 0.15);
  }
  return ds;
}

TEST(Features, ShapesAndLabelRange) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kTon, 800, 1);
  const auto ds = traffic_type_features(bundle.flows);
  EXPECT_EQ(ds.size(), bundle.flows.size());
  EXPECT_EQ(ds.num_classes, 12u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_LT(ds.y[i], ds.num_classes);
    for (std::size_t j = 0; j < ds.x.cols(); ++j) {
      EXPECT_GE(ds.x(i, j), 0.0);
      EXPECT_LE(ds.x(i, j), 1.5);
    }
  }
}

TEST(Features, TimeSplitRespectsOrderAndFraction) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 500, 2);
  const auto [train, test] = time_split(bundle.flows, 0.8);
  EXPECT_NEAR(static_cast<double>(train.size()),
              0.8 * static_cast<double>(bundle.flows.size()), 2.0);
  EXPECT_EQ(train.size() + test.size(), bundle.flows.size());
  EXPECT_THROW(time_split(bundle.flows, 0.0), std::invalid_argument);
}

class AllClassifiers : public ::testing::TestWithParam<const char*> {};

TEST_P(AllClassifiers, LearnsSeparableData) {
  const auto train = separable_dataset(400, 3);
  const auto test = separable_dataset(200, 4);
  auto clf = make_classifier(GetParam(), 5);
  EXPECT_EQ(clf->name(), GetParam());
  clf->fit(train);
  EXPECT_GT(clf->accuracy(test), 0.85) << GetParam();
}

TEST_P(AllClassifiers, BeatsChanceOnTrafficTypes) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kTon, 900, 6);
  const auto [train, test] = time_split(bundle.flows, 0.8);
  auto clf = make_classifier(GetParam(), 7);
  clf->fit(train);
  // Majority class (benign) is ~50-65%; a real model should beat 0.55.
  EXPECT_GT(clf->accuracy(test), 0.55) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FivePaperModels, AllClassifiers,
                         ::testing::Values("DT", "LR", "RF", "GB", "MLP"));

TEST(ClassifierFactory, RejectsUnknownKind) {
  EXPECT_THROW(make_classifier("SVM", 1), std::invalid_argument);
}

TEST(OneClassSvm, FlagsRoughlyNuFractionOnCleanData) {
  Rng rng(8);
  ml::Matrix x(400, 3);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal(5.0, 1.0);
  }
  OneClassSvm svm({0.1, 60, 0.05}, 9);
  svm.fit(x);
  const double ratio = svm.anomaly_ratio(x);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.4);
}

TEST(OneClassSvm, OutliersScoreAnomalous) {
  Rng rng(10);
  ml::Matrix x(400, 2);
  for (std::size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.normal(1.0, 0.1);
    x(i, 1) = rng.normal(2.0, 0.1);
  }
  OneClassSvm svm({0.05, 60, 0.05}, 11);
  svm.fit(x);
  // A point far outside the training cloud.
  const std::vector<double> outlier{-50.0, 80.0};
  EXPECT_TRUE(svm.is_anomaly(outlier));
}

TEST(NetML, AllModesProduceFeatures) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 2500, 12);
  for (NetmlMode mode : all_netml_modes()) {
    const ml::Matrix x = netml_features(bundle.packets, mode);
    EXPECT_GT(x.rows(), 0u) << netml_mode_name(mode);
    EXPECT_GT(x.cols(), 0u) << netml_mode_name(mode);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        EXPECT_TRUE(std::isfinite(x(i, j))) << netml_mode_name(mode);
      }
    }
  }
}

TEST(NetML, ModeNamesAreUnique) {
  std::set<std::string> names;
  for (NetmlMode mode : all_netml_modes()) {
    names.insert(netml_mode_name(mode));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(NetML, SingletonFlowsAreExcluded) {
  // A trace of all-distinct 5-tuples has no multi-packet flows.
  net::PacketTrace t;
  for (int i = 0; i < 50; ++i) {
    net::PacketRecord p;
    p.timestamp = i * 0.1;
    p.key.src_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    p.key.dst_ip = net::Ipv4Address(10, 0, 1, 1);
    p.key.src_port = static_cast<std::uint16_t>(2000 + i);
    p.key.dst_port = 80;
    p.key.protocol = net::Protocol::kTcp;
    t.packets.push_back(p);
  }
  const ml::Matrix x = netml_features(t, NetmlMode::kStats);
  EXPECT_EQ(x.rows(), 0u);
  EXPECT_THROW(
      netml_anomaly_ratio(t, NetmlMode::kStats, OcSvmConfig{}, 13),
      std::invalid_argument);
}

TEST(NetML, AnomalyRatioIsStableAcrossSeeds) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kDc, 3000, 14);
  const double r1 =
      netml_anomaly_ratio(bundle.packets, NetmlMode::kStats, OcSvmConfig{}, 15);
  const double r2 =
      netml_anomaly_ratio(bundle.packets, NetmlMode::kStats, OcSvmConfig{}, 16);
  EXPECT_NEAR(r1, r2, 0.15);
  EXPECT_GE(r1, 0.0);
  EXPECT_LE(r1, 1.0);
}

}  // namespace
}  // namespace netshare::downstream
