// Tests for the fidelity metric suite: JSD, EMD, Spearman, per-field
// reports, and protocol-compliance checks.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/presets.hpp"
#include "metrics/consistency.hpp"
#include "metrics/field_metrics.hpp"
#include "metrics/rank.hpp"

namespace netshare::metrics {
namespace {

TEST(Jsd, IdenticalDistributionsGiveZero) {
  const std::vector<std::uint64_t> v{1, 1, 2, 3, 3, 3};
  const Pmf p = empirical_pmf(v);
  EXPECT_NEAR(jsd(p, p), 0.0, 1e-12);
}

TEST(Jsd, DisjointDistributionsGiveOneBit) {
  const std::vector<std::uint64_t> a{1, 1, 2};
  const std::vector<std::uint64_t> b{3, 4, 4};
  EXPECT_NEAR(jsd(empirical_pmf(a), empirical_pmf(b)), 1.0, 1e-12);
}

TEST(Jsd, IsSymmetric) {
  const std::vector<std::uint64_t> a{1, 1, 2, 5};
  const std::vector<std::uint64_t> b{1, 2, 2, 2, 9};
  const Pmf pa = empirical_pmf(a), pb = empirical_pmf(b);
  EXPECT_NEAR(jsd(pa, pb), jsd(pb, pa), 1e-12);
}

TEST(Jsd, BetweenZeroAndOne) {
  const std::vector<std::uint64_t> a{1, 2, 3, 4, 4, 4, 7};
  const std::vector<std::uint64_t> b{2, 2, 3, 8};
  const double d = jsd(empirical_pmf(a), empirical_pmf(b));
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(RankFrequencyPmf, IgnoresIdentityKeepsProfile) {
  // {a:2, b:1} and {x:2, y:1} have identical popularity profiles.
  const std::vector<std::uint64_t> a{10, 10, 20};
  const std::vector<std::uint64_t> b{777, 777, 888};
  EXPECT_NEAR(jsd(rank_frequency_pmf(a), rank_frequency_pmf(b)), 0.0, 1e-12);
}

TEST(Emd, IdenticalSamplesGiveZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_NEAR(emd_1d(a, a), 0.0, 1e-12);
}

TEST(Emd, PointMassesGiveDistance) {
  // EMD between delta(0) and delta(5) is 5.
  EXPECT_NEAR(emd_1d({0.0, 0.0}, {5.0, 5.0}), 5.0, 1e-12);
}

TEST(Emd, ShiftInvarianceProperty) {
  // EMD(a, a + c) == c for any constant shift.
  const std::vector<double> a{1.0, 4.0, 9.0, 16.0};
  std::vector<double> b = a;
  for (auto& x : b) x += 3.0;
  EXPECT_NEAR(emd_1d(a, b), 3.0, 1e-9);
}

TEST(Emd, HandlesUnequalSampleCounts) {
  // {0,2} vs {1}: |F_a - F_b| is 0.5 on [0,1) and 0.5 on [1,2) -> 1.0.
  EXPECT_NEAR(emd_1d({0.0, 2.0}, {1.0}), 1.0, 1e-12);
}

TEST(Emd, RejectsEmpty) {
  EXPECT_THROW(emd_1d({}, {1.0}), std::invalid_argument);
}

TEST(NormalizeEmds, MapsToPointOnePointNine) {
  const std::vector<double> v{2.0, 4.0, 6.0};
  const auto n = normalize_emds(v);
  EXPECT_NEAR(n[0], 0.1, 1e-12);
  EXPECT_NEAR(n[1], 0.5, 1e-12);
  EXPECT_NEAR(n[2], 0.9, 1e-12);
}

TEST(NormalizeEmds, DegenerateInputsGoToFloor) {
  const std::vector<double> v{3.0, 3.0};
  const auto n = normalize_emds(v);
  EXPECT_NEAR(n[0], 0.1, 1e-12);
  EXPECT_NEAR(n[1], 0.1, 1e-12);
}

TEST(Spearman, PerfectAgreementIsOne) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, PerfectReversalIsMinusOne) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{8, 6, 4, 2};
  EXPECT_NEAR(spearman(a, b), -1.0, 1e-12);
}

TEST(Spearman, HandlesTiesWithMidranks) {
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{1, 2, 2, 3};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, ConstantSideGivesZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(a, b), 0.0);
}

TEST(Spearman, RejectsMismatchedSizes) {
  EXPECT_THROW(spearman(std::vector<double>{1.0},
                        std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Midranks, AssignsAverageRankToTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto r = midranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(FieldMetrics, SelfComparisonIsNearZero) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kUgr16, 1000, 31);
  const auto rep = compare_flows(bundle.flows, bundle.flows);
  EXPECT_NEAR(rep.mean_jsd(), 0.0, 1e-12);
  EXPECT_NEAR(rep.mean_raw_emd(), 0.0, 1e-12);
}

TEST(FieldMetrics, IndependentSeedsAreClose) {
  // Two draws of the same preset should be much closer than different
  // presets. (CIDDS is used as the "same" pair: its small address pool makes
  // the rank-frequency profiles stable at this sample size.)
  const auto a = datagen::make_dataset(datagen::DatasetId::kCidds, 1500, 32);
  const auto b = datagen::make_dataset(datagen::DatasetId::kCidds, 1500, 33);
  const auto c = datagen::make_dataset(datagen::DatasetId::kTon, 1500, 34);
  const auto same = compare_flows(a.flows, b.flows);
  const auto diff = compare_flows(a.flows, c.flows);
  EXPECT_LT(same.mean_jsd(), diff.mean_jsd());
}

TEST(FieldMetrics, ReportsContainExpectedFields) {
  const auto fl = datagen::make_dataset(datagen::DatasetId::kCidds, 500, 35);
  const auto rep = compare_flows(fl.flows, fl.flows);
  for (const char* f : {"SA", "DA", "SP", "DP", "PR"}) {
    EXPECT_TRUE(rep.jsd.count(f)) << f;
  }
  for (const char* f : {"TS", "TD", "PKT", "BYT"}) {
    EXPECT_TRUE(rep.emd.count(f)) << f;
  }

  const auto pc = datagen::make_dataset(datagen::DatasetId::kCaida, 800, 36);
  const auto prep = compare_packets(pc.packets, pc.packets);
  for (const char* f : {"PS", "PAT", "FS"}) {
    EXPECT_TRUE(prep.emd.count(f)) << f;
  }
}

TEST(FieldMetrics, MeanNormalizedEmdOrdersModels) {
  const auto real = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 37);
  const auto close = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 38);
  const auto far = datagen::make_dataset(datagen::DatasetId::kTon, 1200, 39);
  std::vector<FidelityReport> reports{compare_flows(real.flows, close.flows),
                                      compare_flows(real.flows, far.flows)};
  const auto means = mean_normalized_emds(reports);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_LT(means[0], means[1]);
}

TEST(Consistency, SimulatedTracesAreHighlyCompliant) {
  const auto fl = datagen::make_dataset(datagen::DatasetId::kUgr16, 1500, 40);
  const auto res = check_flow_consistency(fl.flows);
  EXPECT_GT(res.test1_ip_validity, 0.99);
  EXPECT_GT(res.test2_bytes_vs_packets, 0.99);
  EXPECT_GT(res.test3_port_protocol, 0.97);

  const auto pc = datagen::make_dataset(datagen::DatasetId::kCaida, 2000, 41);
  const auto pres = check_packet_consistency(pc.packets);
  EXPECT_GT(pres.test1_ip_validity, 0.99);
  EXPECT_GT(pres.test4_min_packet_size, 0.999);
}

TEST(Consistency, DetectsViolations) {
  net::FlowTrace t;
  net::FlowRecord bad;
  bad.key.src_ip = net::Ipv4Address(230, 0, 0, 1);  // multicast source
  bad.key.dst_ip = net::Ipv4Address(0, 1, 2, 3);    // 0.x destination
  bad.key.dst_port = 80;
  bad.key.protocol = net::Protocol::kUdp;  // violates 80/TCP
  bad.packets = 10;
  bad.bytes = 1;  // violates byte/packet bound
  t.records.push_back(bad);
  const auto res = check_flow_consistency(t);
  EXPECT_DOUBLE_EQ(res.test1_ip_validity, 0.0);
  EXPECT_DOUBLE_EQ(res.test2_bytes_vs_packets, 0.0);
  EXPECT_DOUBLE_EQ(res.test3_port_protocol, 0.0);
}

}  // namespace
}  // namespace netshare::metrics
