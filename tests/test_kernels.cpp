// Determinism/regression harness for the blocked parallel matmul kernels:
// bitwise equivalence against the serial reference kernels across shapes and
// thread counts, config plumbing, and a seeded end-to-end check that
// DoppelGanger training is bit-for-bit unchanged by kernel parallelism.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"

namespace netshare::ml {
namespace {

// Strict bitwise comparison: memcmp, not double ==, so that even a -0.0
// versus +0.0 divergence (a reduction-order tell) fails the test.
void expect_bitwise(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  EXPECT_EQ(std::memcmp(got.data().data(), want.data().data(),
                        got.size() * sizeof(double)),
            0)
      << what << ": blocked kernel diverged from serial reference";
}

struct Shape {
  std::size_t rows, inner, cols;
  const char* label;
};

// Tall, wide, inner-dim 1, tile-aligned, and non-multiple-of-tile shapes
// (default tiles are block_k=64, block_j=256).
const Shape kShapes[] = {
    {300, 8, 4, "tall"},
    {6, 7, 301, "wide"},
    {50, 1, 60, "inner-dim-1"},
    {1, 17, 1, "single-row-col"},
    {64, 64, 64, "tile-aligned"},
    {130, 97, 203, "non-multiple-of-tile"},
    {33, 200, 129, "k-spans-tiles"},
};

TEST(Kernels, BitwiseIdenticalToReferenceAcrossShapesAndThreads) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::randn(s.rows, s.inner, rng);
    const Matrix b = Matrix::randn(s.inner, s.cols, rng);
    const Matrix at = Matrix::randn(s.inner, s.rows, rng);  // for trans_a
    const Matrix bt = Matrix::randn(s.cols, s.inner, rng);  // for trans_b
    const Matrix ref = reference::matmul(a, b);
    const Matrix ref_ta = reference::matmul_trans_a(at, b);
    const Matrix ref_tb = reference::matmul_trans_b(a, bt);
    for (std::size_t threads = 1; threads <= 8; ++threads) {
      kernels::KernelConfig cfg;
      cfg.threads = threads;
      cfg.min_parallel_flops = 0;  // force the parallel dispatch path
      kernels::ConfigOverride guard(cfg);
      SCOPED_TRACE(std::string(s.label) + " threads=" +
                   std::to_string(threads));
      expect_bitwise(matmul(a, b), ref, "matmul");
      expect_bitwise(matmul_trans_a(at, b), ref_ta, "matmul_trans_a");
      expect_bitwise(matmul_trans_b(a, bt), ref_tb, "matmul_trans_b");
    }
  }
}

TEST(Kernels, IntoVariantsMatchAllocatingAndReferenceAcrossThreads) {
  Rng rng(105);
  for (const Shape& s : kShapes) {
    const Matrix a = Matrix::randn(s.rows, s.inner, rng);
    const Matrix b = Matrix::randn(s.inner, s.cols, rng);
    const Matrix at = Matrix::randn(s.inner, s.rows, rng);
    const Matrix bt = Matrix::randn(s.cols, s.inner, rng);
    const Matrix ref = reference::matmul(a, b);
    const Matrix ref_ta = reference::matmul_trans_a(at, b);
    const Matrix ref_tb = reference::matmul_trans_b(a, bt);
    // Start from a deliberately wrong-shaped buffer: the into-kernels must
    // reshape it (capacity reuse) and still produce bitwise-identical output.
    Matrix c(3, 7, 42.0);
    for (std::size_t threads = 1; threads <= 8; ++threads) {
      kernels::KernelConfig cfg;
      cfg.threads = threads;
      cfg.min_parallel_flops = 0;
      kernels::ConfigOverride guard(cfg);
      SCOPED_TRACE(std::string(s.label) + " threads=" +
                   std::to_string(threads));
      kernels::matmul_into(a, b, c);
      expect_bitwise(c, ref, "matmul_into");
      expect_bitwise(c, matmul(a, b), "matmul_into vs allocating");
      kernels::matmul_trans_a_into(at, b, c);
      expect_bitwise(c, ref_ta, "matmul_trans_a_into");
      expect_bitwise(c, matmul_trans_a(at, b),
                     "matmul_trans_a_into vs allocating");
      kernels::matmul_trans_b_into(a, bt, c);
      expect_bitwise(c, ref_tb, "matmul_trans_b_into");
      expect_bitwise(c, matmul_trans_b(a, bt),
                     "matmul_trans_b_into vs allocating");
    }
  }
}

TEST(Kernels, ElementwiseIntoHelpersMatchAllocatingCounterparts) {
  Rng rng(108);
  const Matrix a = Matrix::randn(37, 23, rng);
  const Matrix b = Matrix::randn(37, 23, rng);
  Matrix out(1, 1);  // wrong shape on purpose
  hadamard_into(a, b, out);
  expect_bitwise(out, hadamard(a, b), "hadamard_into");
  sum_rows_into(a, out);
  expect_bitwise(out, sum_rows(a), "sum_rows_into");
  concat_cols_into(a, b, out);
  expect_bitwise(out, concat_cols(a, b), "concat_cols_into");
  slice_rows_into(a, 5, 21, out);
  expect_bitwise(out, slice_rows(a, 5, 21), "slice_rows_into");
  const std::vector<Matrix> pieces{a, b};
  stack_rows_into(pieces, out);
  expect_bitwise(out, stack_rows(pieces), "stack_rows_into");
  Matrix out2(2, 2);
  stack_rows_into({&a, &b}, out2);
  expect_bitwise(out2, out, "stack_rows_into(initializer_list)");
}

TEST(Kernels, FusedGruGateMatchesUnfusedCompositionAcrossThreads) {
  Rng rng(107);
  const std::size_t batch = 33, in = 29, hid = 41;
  const Matrix x = Matrix::randn(batch, in, rng);
  const Matrix wx = Matrix::randn(in, hid, rng);
  const Matrix h = Matrix::randn(batch, hid, rng);
  const Matrix wh = Matrix::randn(hid, hid, rng);
  const Matrix bias = Matrix::randn(1, hid, rng);
  for (const auto act :
       {kernels::GateAct::kSigmoid, kernels::GateAct::kTanh}) {
    // Unfused composition on the serial reference kernels.
    Matrix want = reference::matmul(x, wx);
    want += reference::matmul(h, wh);
    add_row_broadcast_inplace(want, bias);
    if (act == kernels::GateAct::kSigmoid) {
      sigmoid_inplace(want);
    } else {
      tanh_inplace(want);
    }
    Matrix scratch, out;
    for (std::size_t threads = 1; threads <= 8; ++threads) {
      kernels::KernelConfig cfg;
      cfg.threads = threads;
      cfg.min_parallel_flops = 0;
      kernels::ConfigOverride guard(cfg);
      SCOPED_TRACE(std::string(act == kernels::GateAct::kSigmoid
                                   ? "sigmoid"
                                   : "tanh") +
                   " threads=" + std::to_string(threads));
      kernels::gru_gate_into(x, wx, h, wh, bias, act, scratch, out);
      expect_bitwise(out, want, "gru_gate_into");
    }
  }
}

TEST(Kernels, ZeroEntriesTakeTheSkipPathIdentically) {
  Rng rng(102);
  Matrix a = Matrix::randn(70, 66, rng);
  Matrix b = Matrix::randn(66, 70, rng);
  // Exact zeros exercise the aik == 0.0 skip branch shared with the seed
  // kernels; a fully zero row exercises empty accumulation.
  for (std::size_t k = 0; k < a.cols(); k += 3) a(7, k) = 0.0;
  for (std::size_t k = 0; k < a.cols(); ++k) a(20, k) = 0.0;
  kernels::KernelConfig cfg;
  cfg.threads = 5;
  cfg.min_parallel_flops = 0;
  kernels::ConfigOverride guard(cfg);
  expect_bitwise(matmul(a, b), reference::matmul(a, b), "matmul with zeros");
  // trans_a reduces over rows of a: b2 must share a's row count.
  const Matrix b2 = Matrix::randn(70, 50, rng);
  expect_bitwise(matmul_trans_a(a, b2), reference::matmul_trans_a(a, b2),
                 "matmul_trans_a with zeros");
}

TEST(Kernels, OddBlockSizesDoNotChangeResults) {
  Rng rng(103);
  const Matrix a = Matrix::randn(45, 83, rng);
  const Matrix b = Matrix::randn(83, 61, rng);
  const Matrix ref = reference::matmul(a, b);
  for (std::size_t bk : {1u, 3u, 64u, 1000u}) {
    kernels::KernelConfig cfg;
    cfg.threads = 3;
    cfg.min_parallel_flops = 0;
    cfg.block_k = bk;
    cfg.block_j = bk == 3 ? 7 : 128;
    kernels::ConfigOverride guard(cfg);
    SCOPED_TRACE("block_k=" + std::to_string(bk));
    expect_bitwise(matmul(a, b), ref, "matmul");
  }
}

TEST(Kernels, SerialFallbackBelowFlopThreshold) {
  Rng rng(104);
  const Matrix a = Matrix::randn(16, 16, rng);
  const Matrix b = Matrix::randn(16, 16, rng);
  kernels::KernelConfig cfg;
  cfg.threads = 8;
  cfg.min_parallel_flops = ~std::size_t{0};  // everything below threshold
  kernels::ConfigOverride guard(cfg);
  expect_bitwise(matmul(a, b), reference::matmul(a, b), "serial fallback");
}

TEST(Kernels, ConfigRoundTripAndOverrideRestore) {
  const kernels::KernelConfig before = kernels::config();
  {
    kernels::KernelConfig cfg;
    cfg.threads = 6;
    cfg.block_k = 32;
    kernels::ConfigOverride guard(cfg);
    EXPECT_EQ(kernels::config().threads, 6u);
    EXPECT_EQ(kernels::config().block_k, 32u);
    EXPECT_EQ(kernels::effective_threads(), 6u);
  }
  EXPECT_EQ(kernels::config().threads, before.threads);
  EXPECT_EQ(kernels::config().block_k, before.block_k);
}

TEST(Kernels, ConcurrentCallersShareThePoolSafely) {
  // Several caller threads issuing parallel matmuls against the shared
  // kernel pool at once — the situation ChunkedTrainer creates during
  // parallel chunk fine-tuning. Run under NETSHARE_SANITIZE=thread this is
  // the central race check.
  kernels::KernelConfig cfg;
  cfg.threads = 4;
  cfg.min_parallel_flops = 0;
  kernels::ConfigOverride guard(cfg);
  std::vector<std::thread> callers;
  std::vector<int> ok(4, 0);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([t, &ok] {
      Rng rng(200 + static_cast<std::uint64_t>(t));
      const Matrix a = Matrix::randn(90, 70, rng);
      const Matrix b = Matrix::randn(70, 80, rng);
      const Matrix want = reference::matmul(a, b);
      int good = 0;
      for (int rep = 0; rep < 10; ++rep) {
        const Matrix got = matmul(a, b);
        good += std::memcmp(got.data().data(), want.data().data(),
                            got.size() * sizeof(double)) == 0;
      }
      ok[static_cast<std::size_t>(t)] = good;
    });
  }
  for (auto& c : callers) c.join();
  for (int good : ok) EXPECT_EQ(good, 10);
}

// --- scalar-tier property sweep: ragged + empty shapes vs reference -------

TEST(Kernels, ScalarKernelPropertySweepRaggedAndEmptyShapes) {
  // Pin the scalar tier explicitly: this sweep is the oracle-coverage
  // backstop for the blocked kernels themselves (the SIMD tier is swept
  // separately in test_simd.cpp, using these kernels as ITS oracle).
  kernels::KernelConfig cfg;
  cfg.simd = kernels::SimdTier::kScalar;
  cfg.threads = 2;
  cfg.min_parallel_flops = 0;
  kernels::ConfigOverride guard(cfg);
  Rng rng(606);
  std::vector<std::array<std::size_t, 3>> shapes = {
      {0, 4, 6}, {4, 0, 6}, {4, 6, 0}, {0, 0, 0}, {1, 1, 1}, {0, 0, 5},
  };
  for (int i = 0; i < 30; ++i) {  // randomized ragged sweep, zeros included
    shapes.push_back({static_cast<std::size_t>(rng.uniform_int(0, 40)),
                      static_cast<std::size_t>(rng.uniform_int(0, 40)),
                      static_cast<std::size_t>(rng.uniform_int(0, 40))});
  }
  Matrix c(2, 2, 42.0);  // wrong shape on purpose: kernels must reshape
  for (const auto& [m, k, n] : shapes) {
    SCOPED_TRACE("shape=" + std::to_string(m) + "x" + std::to_string(k) +
                 "x" + std::to_string(n));
    Matrix a = Matrix::randn(m, k, rng);
    Matrix b = Matrix::randn(k, n, rng);
    Matrix at = Matrix::randn(k, m, rng);
    Matrix bt = Matrix::randn(n, k, rng);
    for (auto* mat : {&a, &b, &at, &bt}) {  // drive the zero-skip branches
      for (auto& v : mat->data()) {
        if (rng.bernoulli(0.2)) v = 0.0;
      }
    }
    kernels::matmul_into(a, b, c);
    expect_bitwise(c, reference::matmul(a, b), "matmul_into");
    kernels::matmul_trans_a_into(at, b, c);
    expect_bitwise(c, reference::matmul_trans_a(at, b),
                   "matmul_trans_a_into");
    kernels::matmul_trans_b_into(a, bt, c);
    expect_bitwise(c, reference::matmul_trans_b(a, bt),
                   "matmul_trans_b_into");
    // Fused variants against their unfused compositions on the reference.
    const Matrix bias = Matrix::randn(1, n, rng);
    Matrix want_bias = reference::matmul(a, b);
    add_row_broadcast_inplace(want_bias, bias);
    kernels::matmul_bias_into(a, b, bias, c);
    expect_bitwise(c, want_bias, "matmul_bias_into");
    Matrix acc = Matrix::randn(m, n, rng);
    Matrix want_acc = acc;
    want_acc += reference::matmul_trans_a(at, b);
    kernels::matmul_trans_a_acc_into(at, b, acc);
    expect_bitwise(acc, want_acc, "matmul_trans_a_acc_into");
  }
}

TEST(Kernels, IntoKernelsOperateOnAdjacentWorkspaceBuffers) {
  // Pooled buffers come back-to-back from the same arena epoch; the kernels
  // must treat them as fully independent operands (no aliasing between
  // distinct pool slots) and reuse them identically across reset epochs.
  Workspace ws;
  Rng rng(607);
  Matrix expected;
  for (int epoch = 0; epoch < 3; ++epoch) {
    ws.reset();
    Matrix& a = ws.get(19, 23);
    Matrix& b = ws.get(23, 17);
    Matrix& c = ws.get(19, 17);   // output, same epoch as its inputs
    Matrix& d = ws.get(19, 17);   // second slot of the same shape class
    randn_fill(a, rng);
    randn_fill(b, rng);
    kernels::matmul_into(a, b, c);
    expect_bitwise(c, reference::matmul(a, b),
                   "matmul_into on pooled buffers");
    kernels::matmul_trans_b_into(c, b, d);  // pooled output feeds pooled in
    expect_bitwise(d, reference::matmul_trans_b(c, b),
                   "matmul_trans_b_into chained through the pool");
  }
}

// --- end-to-end: GAN training is bitwise independent of kernel threads ----

gan::TimeSeriesSpec tiny_spec() {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSoftmax, 3},
                             {OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

gan::TimeSeriesDataset tiny_data(std::size_t n) {
  gan::TimeSeriesDataset data;
  data.spec = tiny_spec();
  data.attributes = Matrix(n, 4);
  data.features.assign(4, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

std::vector<double> train_and_snapshot(std::size_t kernel_threads,
                                       gan::GeneratedSeries* sampled) {
  kernels::KernelConfig cfg;
  cfg.threads = kernel_threads;
  cfg.min_parallel_flops = kernel_threads > 1 ? 0 : cfg.min_parallel_flops;
  kernels::ConfigOverride guard(cfg);

  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  gan::DoppelGanger model(tiny_spec(), dg, 1234);
  model.fit(tiny_data(64), 25);
  Rng sample_rng(55);
  *sampled = model.sample(12, sample_rng);
  return model.snapshot();
}

TEST(Kernels, DoppelGangerFitAndGenerateBitwiseIdenticalKernelsOnVsOff) {
  gan::GeneratedSeries serial_out, parallel_out;
  const std::vector<double> serial_snap = train_and_snapshot(1, &serial_out);
  const std::vector<double> parallel_snap =
      train_and_snapshot(8, &parallel_out);

  ASSERT_EQ(serial_snap.size(), parallel_snap.size());
  EXPECT_EQ(std::memcmp(serial_snap.data(), parallel_snap.data(),
                        serial_snap.size() * sizeof(double)),
            0)
      << "training with parallel kernels changed the learned weights";

  expect_bitwise(parallel_out.attributes, serial_out.attributes,
                 "sampled attributes");
  ASSERT_EQ(parallel_out.features.size(), serial_out.features.size());
  for (std::size_t t = 0; t < serial_out.features.size(); ++t) {
    expect_bitwise(parallel_out.features[t], serial_out.features[t],
                   "sampled features");
  }
  EXPECT_EQ(parallel_out.lengths, serial_out.lengths);
}

}  // namespace
}  // namespace netshare::ml
