// Tests for the ML substrate, including finite-difference gradient checks of
// every differentiable module (Linear, activations, MixedHead, MLP, GRU).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>

#include "ml/gru.hpp"
#include "ml/kernels.hpp"
#include "ml/loss.hpp"
#include "ml/mlp.hpp"
#include "ml/optim.hpp"
#include "ml/serialize.hpp"

namespace netshare::ml {
namespace {

TEST(Matrix, BasicOpsAndShapes) {
  Matrix a(2, 3, 1.0);
  Matrix b(2, 3, 2.0);
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c(1, 2), 6.0);
  EXPECT_THROW(a += Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, MatmulMatchesHandComputation) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, TransposedMatmulsAgreeWithExplicitTranspose) {
  Rng rng(7);
  const Matrix a = Matrix::randn(4, 3, rng);
  const Matrix b = Matrix::randn(4, 5, rng);
  const Matrix ta = matmul_trans_a(a, b);  // a^T b: [3,5]
  const Matrix ref_a = matmul(transpose(a), b);
  for (std::size_t i = 0; i < ta.rows(); ++i) {
    for (std::size_t j = 0; j < ta.cols(); ++j) {
      EXPECT_NEAR(ta(i, j), ref_a(i, j), 1e-12);
    }
  }
  const Matrix x = Matrix::randn(2, 3, rng);
  const Matrix y = Matrix::randn(4, 3, rng);
  const Matrix xy = matmul_trans_b(x, y);  // x y^T: [2,4]
  const Matrix ref_xy = matmul(x, transpose(y));
  for (std::size_t i = 0; i < xy.rows(); ++i) {
    for (std::size_t j = 0; j < xy.cols(); ++j) {
      EXPECT_NEAR(xy(i, j), ref_xy(i, j), 1e-12);
    }
  }
}

TEST(Matrix, ConcatSplitRoundTrip) {
  Rng rng(3);
  Matrix a = Matrix::randn(3, 2, rng);
  Matrix b = Matrix::randn(3, 4, rng);
  const Matrix c = concat_cols(a, b);
  auto [l, r] = split_cols(c, 2);
  EXPECT_EQ(l, a);
  EXPECT_EQ(r, b);
}

TEST(Matrix, StackSliceRoundTrip) {
  Rng rng(4);
  std::vector<Matrix> parts{Matrix::randn(2, 3, rng), Matrix::randn(2, 3, rng)};
  const Matrix stacked = stack_rows(parts);
  EXPECT_EQ(slice_rows(stacked, 0, 2), parts[0]);
  EXPECT_EQ(slice_rows(stacked, 2, 4), parts[1]);
}

// --- finite-difference gradient checking helpers ---------------------------

// Checks dLoss/dInput of a module against central differences, where
// Loss = sum(output .* coeff) for a fixed random coeff matrix.
void check_input_gradient(Module& module, const Matrix& x, Rng& rng,
                          double tol = 1e-5) {
  const Matrix y0 = module.forward(x);
  Matrix coeff = Matrix::randn(y0.rows(), y0.cols(), rng);
  const Matrix gin = module.backward(coeff);

  const double h = 1e-6;
  for (std::size_t idx = 0; idx < x.size(); idx += std::max<std::size_t>(1, x.size() / 23)) {
    Matrix xp = x, xm = x;
    xp.data()[idx] += h;
    xm.data()[idx] -= h;
    double fp = 0.0, fm = 0.0;
    {
      const Matrix yp = module.forward(xp);
      for (std::size_t i = 0; i < yp.size(); ++i) fp += yp.data()[i] * coeff.data()[i];
      const Matrix ym = module.forward(xm);
      for (std::size_t i = 0; i < ym.size(); ++i) fm += ym.data()[i] * coeff.data()[i];
    }
    const double numeric = (fp - fm) / (2 * h);
    EXPECT_NEAR(gin.data()[idx], numeric, tol) << "input index " << idx;
  }
}

// Checks dLoss/dParam for every parameter of a module.
void check_param_gradients(Module& module, const Matrix& x, Rng& rng,
                           double tol = 1e-5) {
  const Matrix y0 = module.forward(x);
  Matrix coeff = Matrix::randn(y0.rows(), y0.cols(), rng);
  module.zero_grad();
  module.backward(coeff);

  for (Parameter* p : module.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size();
         idx += std::max<std::size_t>(1, p->value.size() / 11)) {
      const double h = 1e-6;
      const double orig = p->value.data()[idx];
      p->value.data()[idx] = orig + h;
      const Matrix yp = module.forward(x);
      p->value.data()[idx] = orig - h;
      const Matrix ym = module.forward(x);
      p->value.data()[idx] = orig;
      double fp = 0.0, fm = 0.0;
      for (std::size_t i = 0; i < yp.size(); ++i) {
        fp += yp.data()[i] * coeff.data()[i];
        fm += ym.data()[i] * coeff.data()[i];
      }
      const double numeric = (fp - fm) / (2 * h);
      EXPECT_NEAR(p->grad.data()[idx], numeric, tol) << "param index " << idx;
    }
  }
}

TEST(GradCheck, LinearInputAndParams) {
  Rng rng(11);
  Linear lin(4, 3, rng);
  const Matrix x = Matrix::randn(5, 4, rng);
  check_input_gradient(lin, x, rng);
  check_param_gradients(lin, x, rng);
}

TEST(GradCheck, Activations) {
  Rng rng(12);
  for (Activation act : {Activation::kLeakyRelu, Activation::kTanh,
                         Activation::kSigmoid, Activation::kIdentity}) {
    ActivationLayer layer(act);
    const Matrix x = Matrix::randn(4, 6, rng);
    check_input_gradient(layer, x, rng);
  }
}

TEST(GradCheck, MixedHeadAllSegmentKinds) {
  Rng rng(13);
  MixedHead head({{OutputSegment::Kind::kSoftmax, 3},
                  {OutputSegment::Kind::kSigmoid, 2},
                  {OutputSegment::Kind::kTanh, 1},
                  {OutputSegment::Kind::kIdentity, 2}});
  const Matrix x = Matrix::randn(4, 8, rng);
  check_input_gradient(head, x, rng);
}

TEST(GradCheck, MlpEndToEnd) {
  Rng rng(14);
  Mlp mlp({5, 8, 7, 2}, Activation::kTanh, rng);
  const Matrix x = Matrix::randn(3, 5, rng);
  check_input_gradient(mlp, x, rng, 1e-4);
  check_param_gradients(mlp, x, rng, 1e-4);
}

TEST(GradCheck, GruBptt) {
  Rng rng(15);
  const std::size_t in = 3, hidden = 4, T = 3, B = 2;
  Gru gru(in, hidden, rng);

  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) xs.push_back(Matrix::randn(B, in, rng));
  std::vector<Matrix> coeff;
  {
    auto hs = gru.forward(xs);
    for (const auto& h : hs) coeff.push_back(Matrix::randn(h.rows(), h.cols(), rng));
  }

  auto loss_of = [&](const std::vector<Matrix>& inputs) {
    const auto hs = gru.forward(inputs);
    double f = 0.0;
    for (std::size_t t = 0; t < hs.size(); ++t) {
      for (std::size_t i = 0; i < hs[t].size(); ++i) {
        f += hs[t].data()[i] * coeff[t].data()[i];
      }
    }
    return f;
  };

  gru.forward(xs);
  gru.zero_grad();
  const auto gxs = gru.backward(coeff);

  const double h = 1e-6;
  // Input gradients.
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t idx = 0; idx < xs[t].size(); ++idx) {
      auto xp = xs, xm = xs;
      xp[t].data()[idx] += h;
      xm[t].data()[idx] -= h;
      const double numeric = (loss_of(xp) - loss_of(xm)) / (2 * h);
      EXPECT_NEAR(gxs[t].data()[idx], numeric, 1e-5)
          << "t=" << t << " idx=" << idx;
    }
  }
  // Parameter gradients (sample a few entries of each).
  gru.forward(xs);
  gru.zero_grad();
  gru.backward(coeff);
  for (Parameter* p : gru.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size();
         idx += std::max<std::size_t>(1, p->value.size() / 7)) {
      const double orig = p->value.data()[idx];
      p->value.data()[idx] = orig + h;
      const double fp = loss_of(xs);
      p->value.data()[idx] = orig - h;
      const double fm = loss_of(xs);
      p->value.data()[idx] = orig;
      EXPECT_NEAR(p->grad.data()[idx], (fp - fm) / (2 * h), 1e-5);
    }
  }
}

// Batched BPTT through the blocked *parallel* kernels: same finite-difference
// check as GruBptt, but with a batch and shapes big enough that every matmul
// in forward and backward takes the multi-threaded dispatch path (the
// per-module checks above run serial-sized problems).
TEST(GradCheck, GruBpttBatchedThroughParallelKernels) {
  kernels::KernelConfig kcfg;
  kcfg.threads = 4;
  kcfg.min_parallel_flops = 0;  // force parallel dispatch at any size
  kernels::ConfigOverride kernel_guard(kcfg);

  Rng rng(21);
  const std::size_t in = 5, hidden = 7, T = 4, B = 8;
  Gru gru(in, hidden, rng);

  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) xs.push_back(Matrix::randn(B, in, rng));
  std::vector<Matrix> coeff;
  {
    auto hs = gru.forward(xs);
    for (const auto& h : hs) {
      coeff.push_back(Matrix::randn(h.rows(), h.cols(), rng));
    }
  }

  auto loss_of = [&](const std::vector<Matrix>& inputs) {
    const auto hs = gru.forward(inputs);
    double f = 0.0;
    for (std::size_t t = 0; t < hs.size(); ++t) {
      for (std::size_t i = 0; i < hs[t].size(); ++i) {
        f += hs[t].data()[i] * coeff[t].data()[i];
      }
    }
    return f;
  };

  gru.forward(xs);
  gru.zero_grad();
  const auto gxs = gru.backward(coeff);

  const double h = 1e-6;
  // Input gradients (sampled — the batched problem has many entries).
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t idx = 0; idx < xs[t].size();
         idx += std::max<std::size_t>(1, xs[t].size() / 13)) {
      auto xp = xs, xm = xs;
      xp[t].data()[idx] += h;
      xm[t].data()[idx] -= h;
      const double numeric = (loss_of(xp) - loss_of(xm)) / (2 * h);
      EXPECT_NEAR(gxs[t].data()[idx], numeric, 1e-4)
          << "t=" << t << " idx=" << idx;
    }
  }
  // Parameter gradients (sampled across all nine GRU parameters).
  gru.forward(xs);
  gru.zero_grad();
  gru.backward(coeff);
  for (Parameter* p : gru.parameters()) {
    for (std::size_t idx = 0; idx < p->value.size();
         idx += std::max<std::size_t>(1, p->value.size() / 7)) {
      const double orig = p->value.data()[idx];
      p->value.data()[idx] = orig + h;
      const double fp = loss_of(xs);
      p->value.data()[idx] = orig - h;
      const double fm = loss_of(xs);
      p->value.data()[idx] = orig;
      EXPECT_NEAR(p->grad.data()[idx], (fp - fm) / (2 * h), 1e-4);
    }
  }
}

// The batched forward/backward must also be bitwise independent of the
// kernel thread count (the GRU is the deepest matmul consumer).
TEST(GradCheck, GruBatchedForwardBackwardBitwiseStableAcrossThreads) {
  auto run = [](std::size_t threads) {
    kernels::KernelConfig kcfg;
    kcfg.threads = threads;
    kcfg.min_parallel_flops = 0;
    kernels::ConfigOverride kernel_guard(kcfg);
    Rng rng(22);
    Gru gru(6, 9, rng);
    std::vector<Matrix> xs, coeff;
    for (std::size_t t = 0; t < 5; ++t) {
      xs.push_back(Matrix::randn(16, 6, rng));
    }
    auto hs = gru.forward(xs);
    for (const auto& hmat : hs) {
      coeff.push_back(Matrix::randn(hmat.rows(), hmat.cols(), rng));
    }
    gru.zero_grad();
    auto gxs = gru.backward(coeff);
    std::vector<double> flat;
    for (const auto& hmat : hs) {
      flat.insert(flat.end(), hmat.data().begin(), hmat.data().end());
    }
    for (const auto& g : gxs) {
      flat.insert(flat.end(), g.data().begin(), g.data().end());
    }
    for (Parameter* p : gru.parameters()) {
      flat.insert(flat.end(), p->grad.data().begin(), p->grad.data().end());
    }
    return flat;
  };
  const std::vector<double> serial = run(1);
  for (std::size_t threads : {2u, 5u, 8u}) {
    const std::vector<double> parallel = run(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

TEST(Losses, MseGradientMatchesFiniteDifference) {
  Rng rng(16);
  const Matrix pred = Matrix::randn(3, 2, rng);
  const Matrix target = Matrix::randn(3, 2, rng);
  Matrix grad;
  mse_loss(pred, target, &grad);
  const double h = 1e-6;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Matrix p = pred;
    p.data()[i] += h;
    const double fp = mse_loss(p, target, nullptr);
    p.data()[i] -= 2 * h;
    const double fm = mse_loss(p, target, nullptr);
    EXPECT_NEAR(grad.data()[i], (fp - fm) / (2 * h), 1e-6);
  }
}

TEST(Losses, BceWithLogitsIsStableAtExtremes) {
  Matrix logits(1, 2);
  logits(0, 0) = 500.0;
  logits(0, 1) = -500.0;
  Matrix target(1, 2);
  target(0, 0) = 1.0;
  target(0, 1) = 0.0;
  Matrix grad;
  const double loss = bce_with_logits_loss(logits, target, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(Losses, SoftmaxCrossEntropyGradCheck) {
  Rng rng(17);
  const Matrix logits = Matrix::randn(4, 3, rng);
  const std::vector<std::size_t> labels{0, 2, 1, 2};
  Matrix grad;
  softmax_cross_entropy_loss(logits, labels, &grad);
  const double h = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix l = logits;
    l.data()[i] += h;
    const double fp = softmax_cross_entropy_loss(l, labels, nullptr);
    l.data()[i] -= 2 * h;
    const double fm = softmax_cross_entropy_loss(l, labels, nullptr);
    EXPECT_NEAR(grad.data()[i], (fp - fm) / (2 * h), 1e-6);
  }
}

TEST(Optim, SgdDecreasesQuadratic) {
  // Minimize ||w||^2 by hand-fed gradients.
  Parameter w(Matrix(1, 3, 2.0));
  Sgd opt({&w}, 0.1);
  for (int i = 0; i < 100; ++i) {
    w.zero_grad();
    for (std::size_t j = 0; j < 3; ++j) w.grad(0, j) = 2.0 * w.value(0, j);
    opt.step();
  }
  EXPECT_LT(frobenius_norm(w.value), 1e-5);
}

TEST(Optim, AdamDecreasesQuadratic) {
  Parameter w(Matrix(1, 3, 2.0));
  Adam opt({&w}, 0.05);
  for (int i = 0; i < 400; ++i) {
    w.zero_grad();
    for (std::size_t j = 0; j < 3; ++j) w.grad(0, j) = 2.0 * w.value(0, j);
    opt.step();
  }
  EXPECT_LT(frobenius_norm(w.value), 1e-3);
}

TEST(Optim, ClipGradNormScalesDown) {
  Parameter w(Matrix(1, 4, 0.0));
  w.grad.fill(3.0);  // norm = 6
  const double pre = clip_grad_norm({&w}, 1.0);
  EXPECT_NEAR(pre, 6.0, 1e-12);
  double sq = 0.0;
  for (double g : w.grad.data()) sq += g * g;
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-9);
}

TEST(Optim, ClipGradNormNoOpWhenSmall) {
  Parameter w(Matrix(1, 4, 0.0));
  w.grad.fill(0.1);
  clip_grad_norm({&w}, 10.0);
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.1);
}

TEST(Optim, WeightClippingClampsValues) {
  Parameter w(Matrix(2, 2, 0.0));
  w.value(0, 0) = 5.0;
  w.value(1, 1) = -5.0;
  clip_weights({&w}, 0.01);
  EXPECT_DOUBLE_EQ(w.value(0, 0), 0.01);
  EXPECT_DOUBLE_EQ(w.value(1, 1), -0.01);
}

TEST(Serialize, SnapshotRestoreRoundTrip) {
  Rng rng(18);
  Mlp a({3, 5, 2}, Activation::kRelu, rng);
  Mlp b({3, 5, 2}, Activation::kRelu, rng);
  const auto snap = snapshot_parameters(a.parameters());
  restore_parameters(b.parameters(), snap);
  const Matrix x = Matrix::randn(2, 3, rng);
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(Serialize, RestoreRejectsWrongSize) {
  Rng rng(19);
  Mlp a({3, 5, 2}, Activation::kRelu, rng);
  std::vector<double> tiny(3, 0.0);
  EXPECT_THROW(restore_parameters(a.parameters(), tiny), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
  const std::vector<double> snap{1.0, -2.5, 3.25};
  const std::string path = "/tmp/netshare_test_snapshot.bin";
  save_snapshot_file(snap, path);
  EXPECT_EQ(load_snapshot_file(path), snap);
}

TEST(Serialize, SaveRejectsUnwritablePath) {
  EXPECT_THROW(
      save_snapshot_file({1.0}, "/nonexistent_dir/netshare_snapshot.bin"),
      std::runtime_error);
}

TEST(Serialize, LoadRejectsMissingFile) {
  EXPECT_THROW(load_snapshot_file("/tmp/netshare_test_snapshot_missing.bin"),
               std::runtime_error);
}

TEST(Serialize, LoadRejectsTruncatedPayload) {
  // A valid header promising 4 doubles but only 2 present: read must fail
  // loudly, never return a half-restored snapshot.
  const std::string path = "/tmp/netshare_test_snapshot_truncated.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t n = 4;
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    const double payload[2] = {1.0, 2.0};
    out.write(reinterpret_cast<const char*>(payload), sizeof payload);
  }
  EXPECT_THROW(load_snapshot_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsEmptyFile) {
  const std::string path = "/tmp/netshare_test_snapshot_empty.bin";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(load_snapshot_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RestoreRejectsSnapshotLargerThanModel) {
  Rng rng(23);
  Mlp a({3, 5, 2}, Activation::kRelu, rng);
  std::vector<double> snap = snapshot_parameters(a.parameters());
  snap.push_back(0.0);  // one trailing extra weight
  EXPECT_THROW(restore_parameters(a.parameters(), snap),
               std::invalid_argument);
}

TEST(Serialize, RestoredFileSnapshotDrivesIdenticalModel) {
  Rng rng(29);
  Mlp a({4, 6, 3}, Activation::kRelu, rng);
  Rng rng2(31);
  Mlp b({4, 6, 3}, Activation::kRelu, rng2);
  const std::string path = "/tmp/netshare_test_snapshot_model.bin";
  save_snapshot_file(snapshot_parameters(a.parameters()), path);
  restore_parameters(b.parameters(), load_snapshot_file(path));
  Rng xr(37);
  const Matrix x = Matrix::randn(2, 4, xr);
  EXPECT_EQ(a.forward(x), b.forward(x));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netshare::ml
