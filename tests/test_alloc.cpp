// Steady-state allocation tests for the training hot path: after a
// one-iteration warm-up, GRU BPTT, MLP forward/backward, and full
// DoppelGanger training iterations must perform zero Matrix heap
// allocations (DESIGN.md §6). The counter in ml/matrix.cpp increments
// whenever a Matrix acquires new backing storage, so these tests fail the
// moment someone reintroduces a per-iteration temporary.
#include <gtest/gtest.h>

#include <vector>

#include "gan/doppelganger.hpp"
#include "ml/gru.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/workspace.hpp"

namespace netshare::ml {
namespace {

TEST(AllocCounter, CountsConstructionCopyAndGrowthOnly) {
  alloc_counter::reset();
  Matrix a(4, 5, 1.0);
  EXPECT_EQ(alloc_counter::count(), 1u);
  Matrix b = a;  // copy construction allocates
  EXPECT_EQ(alloc_counter::count(), 2u);
  alloc_counter::reset();
  b = a;  // same shape: capacity reuse, no allocation
  EXPECT_EQ(alloc_counter::count(), 0u);
  b.resize(2, 3);  // shrink: capacity reuse
  b.resize(4, 5);  // regrow within original capacity
  EXPECT_EQ(alloc_counter::count(), 0u);
  b.resize(6, 7);  // genuine growth
  EXPECT_EQ(alloc_counter::count(), 1u);
  alloc_counter::reset();
  Matrix c;  // empty: no storage
  Matrix d = std::move(a);  // move: steals storage
  (void)c;
  (void)d;
  EXPECT_EQ(alloc_counter::count(), 0u);
}

TEST(Workspace, ReissuesSameBuffersInCallOrderAfterReset) {
  Workspace ws;
  Matrix& a = ws.get(3, 4);
  Matrix& b = ws.get(3, 4);  // same shape within one epoch: distinct buffer
  Matrix& c = ws.get(2, 2);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(ws.pooled_buffers(), 3u);
  EXPECT_EQ(ws.pooled_doubles(), 3u * 4u + 3u * 4u + 2u * 2u);
  ws.reset();
  // Same call sequence maps to the same buffers, with no new allocations.
  alloc_counter::reset();
  EXPECT_EQ(&ws.get(3, 4), &a);
  EXPECT_EQ(&ws.get(3, 4), &b);
  EXPECT_EQ(&ws.get(2, 2), &c);
  EXPECT_EQ(alloc_counter::count(), 0u);
  EXPECT_EQ(ws.pooled_buffers(), 3u);
}

TEST(Gru, SteadyStateForwardBackwardAllocatesNothing) {
  Rng rng(11);
  Gru gru(6, 8, rng);
  std::vector<Matrix> xs(5, Matrix::zeros(16, 6));
  for (auto& x : xs) randn_fill(x, rng);
  std::vector<Matrix> ghs(5, Matrix::zeros(16, 8));
  for (auto& g : ghs) randn_fill(g, rng, 0.1);
  gru.forward(xs);
  gru.backward(ghs);  // warm-up populates every persistent buffer
  alloc_counter::reset();
  gru.forward(xs);
  gru.backward(ghs);
  EXPECT_EQ(alloc_counter::count(), 0u)
      << "GRU BPTT allocated in steady state";
}

TEST(Mlp, SteadyStateForwardBackwardAllocatesNothing) {
  Rng rng(12);
  Mlp mlp({7, 12, 12, 3}, Activation::kLeakyRelu, rng);
  Matrix x = Matrix::randn(20, 7, rng);
  Matrix g = Matrix::randn(20, 3, rng);
  mlp.forward(x);
  mlp.backward(g);
  alloc_counter::reset();
  mlp.forward(x);
  mlp.backward(g);
  EXPECT_EQ(alloc_counter::count(), 0u)
      << "MLP forward/backward allocated in steady state";
}

gan::TimeSeriesSpec tiny_spec() {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSoftmax, 3},
                             {OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

gan::TimeSeriesDataset tiny_data(std::size_t n) {
  gan::TimeSeriesDataset data;
  data.spec = tiny_spec();
  data.attributes = Matrix(n, 4);
  data.features.assign(4, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(78);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

void expect_zero_steady_state_allocs(std::size_t kernel_threads) {
  kernels::KernelConfig cfg;
  cfg.threads = kernel_threads;
  kernels::ConfigOverride guard(cfg);

  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  gan::DoppelGanger model(tiny_spec(), dg, 4321);
  const gan::TimeSeriesDataset data = tiny_data(64);
  model.fit(data, 1);  // warm-up iteration populates pools and caches
  alloc_counter::reset();
  model.fit(data, 2);  // iterations 2-3: the steady state
  EXPECT_EQ(alloc_counter::count(), 0u)
      << "DoppelGanger training allocated Matrix storage in steady state at "
      << kernel_threads << " kernel thread(s)";
}

TEST(DoppelGanger, SteadyStateTrainingAllocatesNothingSerial) {
  expect_zero_steady_state_allocs(1);
}

TEST(DoppelGanger, SteadyStateTrainingAllocatesNothingParallel) {
  expect_zero_steady_state_allocs(4);
}

}  // namespace
}  // namespace netshare::ml
