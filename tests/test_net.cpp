// Tests for the net substrate: addresses, checksums, headers, 5-tuples,
// traces, pcap/netflow IO, and the NetFlow collector.
#include <gtest/gtest.h>

#include <sstream>

#include "net/checksum.hpp"
#include "net/flow_collector.hpp"
#include "net/ipv4.hpp"
#include "net/netflow_io.hpp"
#include "net/pcap_io.hpp"
#include "net/ports.hpp"
#include "net/trace.hpp"

namespace netshare::net {
namespace {

TEST(Ipv4Address, FormatsAndParsesDottedQuad) {
  Ipv4Address a(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(Ipv4Address::parse("192.168.1.42"), a);
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  EXPECT_THROW(Ipv4Address::parse("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("a.b.c.d"), std::invalid_argument);
}

TEST(Ipv4Address, OctetsAreMsbFirst) {
  Ipv4Address a(10, 20, 30, 40);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 20);
  EXPECT_EQ(a.octet(2), 30);
  EXPECT_EQ(a.octet(3), 40);
}

TEST(Ipv4Address, ClassPredicates) {
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(240, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(255, 1, 2, 3).is_broadcast_prefix());
  EXPECT_TRUE(Ipv4Address(0, 1, 2, 3).is_zero_prefix());
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
}

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 documentation:
  // 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data, sizeof data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0xab};
  // word is 0xab00; checksum = ~0xab00 = 0x54ff.
  EXPECT_EQ(internet_checksum(data, 1), 0x54ff);
}

TEST(Checksum, AccumulatorMatchesSinglePass) {
  std::vector<std::uint8_t> data(37);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  ChecksumAccumulator acc;
  acc.add(data.data(), 10);
  acc.add(data.data() + 10, 27);
  EXPECT_EQ(acc.finalize(), internet_checksum(data.data(), data.size()));
}

TEST(Checksum, AccumulatorHandlesOddSplit) {
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7};
  ChecksumAccumulator acc;
  acc.add(data.data(), 3);  // odd split
  acc.add(data.data() + 3, 4);
  EXPECT_EQ(acc.finalize(), internet_checksum(data.data(), data.size()));
}

TEST(Ipv4Header, SerializeProducesValidChecksum) {
  Ipv4Header h;
  h.total_length = 60;
  h.protocol = Protocol::kTcp;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(10, 0, 0, 2);
  const auto bytes = h.serialize();
  // Checksum over the serialized header (with its checksum field) must be 0.
  EXPECT_EQ(internet_checksum(bytes.data(), bytes.size()), 0);
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.total_length = 1500;
  h.identification = 0x1234;
  h.ttl = 57;
  h.protocol = Protocol::kUdp;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(200, 100, 50, 25);
  const auto bytes = h.serialize();
  const Ipv4Header parsed = Ipv4Header::parse(bytes.data(), bytes.size());
  EXPECT_EQ(parsed.total_length, h.total_length);
  EXPECT_EQ(parsed.identification, h.identification);
  EXPECT_EQ(parsed.ttl, h.ttl);
  EXPECT_EQ(parsed.protocol, h.protocol);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_TRUE(parsed.checksum_valid());
}

TEST(Ipv4Header, ParseRejectsShortOrNonIpv4) {
  std::uint8_t short_buf[10] = {};
  EXPECT_THROW(Ipv4Header::parse(short_buf, sizeof short_buf),
               std::invalid_argument);
  std::uint8_t v6[20] = {};
  v6[0] = 0x65;
  EXPECT_THROW(Ipv4Header::parse(v6, sizeof v6), std::invalid_argument);
}

TEST(MinPacketSize, MatchesPaperAppendixB) {
  EXPECT_EQ(min_packet_size(Protocol::kTcp), 40u);
  EXPECT_EQ(min_packet_size(Protocol::kUdp), 28u);
}

TEST(FiveTuple, EqualityAndHashing) {
  FiveTuple a{Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), 1000, 80,
              Protocol::kTcp};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.dst_port = 81;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());  // overwhelmingly likely
}

TEST(FiveTuple, OrderingIsStrictWeak) {
  FiveTuple a{Ipv4Address(1, 0, 0, 1), Ipv4Address(2, 0, 0, 1), 10, 20,
              Protocol::kTcp};
  FiveTuple b = a;
  b.src_port = 11;
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(WellKnownPorts, PinsExpectedProtocols) {
  EXPECT_EQ(well_known_port_protocol(80), Protocol::kTcp);
  EXPECT_EQ(well_known_port_protocol(53), Protocol::kUdp);
  EXPECT_EQ(well_known_port_protocol(443), Protocol::kTcp);
  EXPECT_EQ(well_known_port_protocol(12345), std::nullopt);
}

TEST(AttackTypes, NameRoundTrip) {
  for (int i = 0; i <= static_cast<int>(AttackType::kXss); ++i) {
    const auto t = static_cast<AttackType>(i);
    EXPECT_EQ(attack_type_from_name(attack_type_name(t)), t);
  }
  EXPECT_THROW(attack_type_from_name("nonsense"), std::invalid_argument);
}

PacketTrace tiny_trace() {
  PacketTrace t;
  FiveTuple f1{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1111, 80,
               Protocol::kTcp};
  FiveTuple f2{Ipv4Address(3, 3, 3, 3), Ipv4Address(4, 4, 4, 4), 2222, 53,
               Protocol::kUdp};
  t.packets.push_back({5.0, f1, 100, 64, 0x10});
  t.packets.push_back({1.0, f2, 60, 32, 0x10});
  t.packets.push_back({3.0, f1, 1500, 64, 0x10});
  return t;
}

TEST(PacketTrace, SortByTimeIsStableAscending) {
  PacketTrace t = tiny_trace();
  t.sort_by_time();
  EXPECT_DOUBLE_EQ(t.packets[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(t.packets[1].timestamp, 3.0);
  EXPECT_DOUBLE_EQ(t.packets[2].timestamp, 5.0);
}

TEST(PacketTrace, EpochSplitAndMergeRoundTrip) {
  PacketTrace t = tiny_trace();
  t.sort_by_time();
  const auto epochs = t.split_epochs(2.0);
  ASSERT_EQ(epochs.size(), 3u);  // [1,3), [3,5), [5,7)
  EXPECT_EQ(epochs[0].size(), 1u);
  EXPECT_EQ(epochs[1].size(), 1u);
  EXPECT_EQ(epochs[2].size(), 1u);
  const PacketTrace merged = PacketTrace::merge(epochs);
  EXPECT_EQ(merged.size(), t.size());
  EXPECT_EQ(merged.packets, t.packets);
}

TEST(PacketTrace, GroupByFlowKeepsFirstSeenOrder) {
  PacketTrace t = tiny_trace();  // f1 at idx 0, f2 at idx 1, f1 at idx 2
  const auto groups = t.group_by_flow();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].second, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1].second, (std::vector<std::size_t>{1}));
}

TEST(AggregateFlows, SumsPacketsAndBytes) {
  const auto aggs = aggregate_flows(tiny_trace());
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].packets, 2u);
  EXPECT_EQ(aggs[0].bytes, 1600u);
  EXPECT_DOUBLE_EQ(aggs[0].first_seen, 3.0);
  EXPECT_DOUBLE_EQ(aggs[0].last_seen, 5.0);
  EXPECT_EQ(aggs[1].packets, 1u);
}

TEST(PcapIo, WriteReadRoundTrip) {
  PacketTrace t = tiny_trace();
  t.sort_by_time();
  std::stringstream ss;
  write_pcap(t, ss);
  const PacketTrace back = read_pcap(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.packets[i].key, t.packets[i].key) << "packet " << i;
    EXPECT_EQ(back.packets[i].size, t.packets[i].size);
    EXPECT_EQ(back.packets[i].ttl, t.packets[i].ttl);
    EXPECT_NEAR(back.packets[i].timestamp, t.packets[i].timestamp, 1e-5);
  }
}

TEST(PcapIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a pcap file at all";
  EXPECT_THROW(read_pcap(ss), std::runtime_error);
}

TEST(NetflowIo, CsvRoundTrip) {
  FlowTrace t;
  FlowRecord r;
  r.key = {Ipv4Address(9, 8, 7, 6), Ipv4Address(5, 4, 3, 2), 4242, 443,
           Protocol::kTcp};
  r.start_time = 12.5;
  r.duration = 3.25;
  r.packets = 17;
  r.bytes = 12345;
  r.is_attack = true;
  r.attack_type = AttackType::kDos;
  t.records.push_back(r);

  std::stringstream ss;
  write_netflow_csv(t, ss);
  const FlowTrace back = read_netflow_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records[0], r);
}

TEST(NetflowIo, RejectsMissingHeader) {
  std::stringstream ss;
  ss << "1,2,3\n";
  EXPECT_THROW(read_netflow_csv(ss), std::runtime_error);
}

TEST(FlowCollector, SinglePacketMakesSingleRecord) {
  PacketTrace t;
  FiveTuple f{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2,
              Protocol::kUdp};
  t.packets.push_back({0.0, f, 100, 64, 0});
  const FlowTrace flows = FlowCollector({15.0, 60.0}).collect(t);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.records[0].packets, 1u);
  EXPECT_EQ(flows.records[0].bytes, 100u);
}

TEST(FlowCollector, InactiveTimeoutSplitsFlow) {
  PacketTrace t;
  FiveTuple f{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2,
              Protocol::kTcp};
  t.packets.push_back({0.0, f, 100, 64, 0});
  t.packets.push_back({1.0, f, 100, 64, 0});
  t.packets.push_back({30.0, f, 100, 64, 0});  // idle 29s > 15s timeout
  const FlowTrace flows = FlowCollector({15.0, 600.0}).collect(t);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows.records[0].packets, 2u);
  EXPECT_EQ(flows.records[1].packets, 1u);
}

TEST(FlowCollector, ActiveTimeoutSplitsLongFlow) {
  PacketTrace t;
  FiveTuple f{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2,
              Protocol::kTcp};
  for (int i = 0; i < 100; ++i) {
    t.packets.push_back({i * 1.0, f, 100, 64, 0});
  }
  const FlowTrace flows = FlowCollector({15.0, 30.0}).collect(t);
  // 100 seconds of 1s-spaced packets with a 30s active timeout -> >= 3 records.
  EXPECT_GE(flows.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& r : flows.records) total += r.packets;
  EXPECT_EQ(total, 100u);
}

TEST(FlowCollector, DistinctTuplesStaySeparate) {
  PacketTrace t = tiny_trace();
  const FlowTrace flows = FlowCollector({15.0, 60.0}).collect(t);
  EXPECT_EQ(flows.size(), 2u);
}

}  // namespace
}  // namespace netshare::net
