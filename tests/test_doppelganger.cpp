// Tests for the DoppelGANger time-series GAN: shape contracts, determinism,
// snapshot/restore, and end-to-end learning on a small synthetic dataset.
#include <gtest/gtest.h>

#include <cmath>

#include "gan/doppelganger.hpp"

namespace netshare::gan {
namespace {

using ml::Matrix;
using ml::OutputSegment;

// Toy dataset: attribute = categorical(3) one-hot with skew {0.6,0.3,0.1} +
// one continuous in [0,1] centered per category; feature = one continuous
// whose level tracks the attribute category; length grows with category.
TimeSeriesSpec toy_spec() {
  TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSoftmax, 3},
                             {OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 4;
  return spec;
}

TimeSeriesDataset toy_data(std::size_t n, std::uint64_t seed) {
  TimeSeriesDataset data;
  data.spec = toy_spec();
  data.attributes = Matrix(n, 4);
  data.features.assign(4, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.6, 0.3, 0.1});
    data.attributes(i, cat) = 1.0;
    const double level = 0.2 + 0.3 * static_cast<double>(cat);
    data.attributes(i, 3) = level + rng.normal(0.0, 0.03);
    data.lengths[i] = cat + 1;  // 1..3
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) =
          std::clamp(level + rng.normal(0.0, 0.05), 0.0, 1.0);
    }
  }
  return data;
}

DgConfig small_config() {
  DgConfig cfg;
  cfg.attr_noise_dim = 4;
  cfg.feat_noise_dim = 4;
  cfg.attr_hidden = {24};
  cfg.rnn_hidden = 24;
  cfg.disc_hidden = {32, 32};
  cfg.aux_hidden = {16};
  cfg.iterations = 120;
  cfg.batch_size = 32;
  return cfg;
}

TEST(DoppelGanger, SampleShapesMatchSpec) {
  DoppelGanger gan(toy_spec(), small_config(), 1);
  Rng rng(2);
  const GeneratedSeries s = gan.sample(10, rng);
  EXPECT_EQ(s.attributes.rows(), 10u);
  EXPECT_EQ(s.attributes.cols(), 4u);
  ASSERT_EQ(s.features.size(), 4u);
  EXPECT_EQ(s.features[0].rows(), 10u);
  EXPECT_EQ(s.features[0].cols(), 1u);
  for (std::size_t len : s.lengths) {
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 4u);
  }
}

TEST(DoppelGanger, OutputsRespectHeadRanges) {
  DoppelGanger gan(toy_spec(), small_config(), 3);
  Rng rng(4);
  const GeneratedSeries s = gan.sample(32, rng);
  for (std::size_t i = 0; i < 32; ++i) {
    double softmax_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      const double p = s.attributes(i, j);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      softmax_sum += p;
    }
    EXPECT_NEAR(softmax_sum, 1.0, 1e-9);
    EXPECT_GE(s.attributes(i, 3), 0.0);
    EXPECT_LE(s.attributes(i, 3), 1.0);
  }
}

TEST(DoppelGanger, FitRejectsBadInputs) {
  DoppelGanger gan(toy_spec(), small_config(), 5);
  TimeSeriesDataset empty;
  empty.spec = toy_spec();
  empty.attributes = Matrix(0, 4);
  EXPECT_THROW(gan.fit(empty), std::invalid_argument);

  TimeSeriesDataset wrong = toy_data(8, 6);
  wrong.features.pop_back();
  EXPECT_THROW(gan.fit(wrong), std::invalid_argument);
}

TEST(DoppelGanger, SnapshotRestoreReproducesSamples) {
  DoppelGanger a(toy_spec(), small_config(), 7);
  a.fit(toy_data(64, 8), 10);
  DoppelGanger b(toy_spec(), small_config(), 99);
  b.restore(a.snapshot());
  Rng ra(11), rb(11);
  const GeneratedSeries sa = a.sample(8, ra);
  const GeneratedSeries sb = b.sample(8, rb);
  EXPECT_EQ(sa.attributes, sb.attributes);
  EXPECT_EQ(sa.lengths, sb.lengths);
}

TEST(DoppelGanger, TrainingTracksCpuTime) {
  DoppelGanger gan(toy_spec(), small_config(), 12);
  EXPECT_DOUBLE_EQ(gan.train_cpu_seconds(), 0.0);
  gan.fit(toy_data(64, 13), 5);
  EXPECT_GT(gan.train_cpu_seconds(), 0.0);
}

TEST(DoppelGanger, LearnsToyDistribution) {
  const TimeSeriesDataset data = toy_data(400, 14);
  DoppelGanger gan(toy_spec(), small_config(), 15);
  gan.fit(data);
  Rng rng(16);
  const GeneratedSeries s = gan.sample(400, rng);

  // Category marginal: majority class should dominate in the synthetic data.
  std::vector<double> cat_freq(3, 0.0);
  for (std::size_t i = 0; i < s.attributes.rows(); ++i) {
    std::size_t arg = 0;
    for (std::size_t j = 1; j < 3; ++j) {
      if (s.attributes(i, j) > s.attributes(i, arg)) arg = j;
    }
    cat_freq[arg] += 1.0 / 400.0;
  }
  EXPECT_GT(cat_freq[0], cat_freq[2]);

  // Continuous attribute mean within a loose band of the real mean (~0.33).
  double syn_mean = 0.0, real_mean = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    syn_mean += s.attributes(i, 3) / 400.0;
    real_mean += data.attributes(i, 3) / 400.0;
  }
  EXPECT_NEAR(syn_mean, real_mean, 0.15);

  // Mean series length in a sane band around the real mean (~1.5).
  double syn_len = 0.0, real_len = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    syn_len += static_cast<double>(s.lengths[i]) / 400.0;
    real_len += static_cast<double>(data.lengths[i]) / 400.0;
  }
  EXPECT_NEAR(syn_len, real_len, 1.0);
}

TEST(DoppelGanger, FineTuningFromSnapshotPreservesFit) {
  // Warm start (Insight 3): restoring a trained seed and fine-tuning briefly
  // on the same distribution must not destroy the learned fit.
  const TimeSeriesDataset data = toy_data(300, 17);
  DgConfig cfg = small_config();
  cfg.iterations = 150;
  DoppelGanger seed(toy_spec(), cfg, 18);
  seed.fit(data);

  auto attr_mean_err = [&](DoppelGanger& g) {
    Rng rng(20);
    const GeneratedSeries s = g.sample(300, rng);
    double real_mean = 0.0, syn_mean = 0.0;
    for (std::size_t i = 0; i < 300; ++i) {
      real_mean += data.attributes(i, 3) / 300.0;
      syn_mean += s.attributes(i, 3) / 300.0;
    }
    return std::fabs(real_mean - syn_mean);
  };
  const double seed_err = attr_mean_err(seed);

  DoppelGanger warm(toy_spec(), cfg, 19);
  warm.restore(seed.snapshot());
  warm.fit(data, 30);
  EXPECT_LE(attr_mean_err(warm), seed_err + 0.12);
}

TEST(DoppelGanger, DpModeRunsAndCountsSteps) {
  DgConfig cfg = small_config();
  cfg.iterations = 3;
  cfg.batch_size = 8;
  cfg.dp = true;
  cfg.dp_config = {1.0, 1.0};
  DoppelGanger gan(toy_spec(), cfg, 21);
  gan.fit(toy_data(32, 22));
  EXPECT_EQ(gan.dp_steps(), 3u * 2u);  // iterations * d_steps_per_g
  Rng rng(23);
  const GeneratedSeries s = gan.sample(4, rng);
  EXPECT_EQ(s.attributes.rows(), 4u);
}

}  // namespace
}  // namespace netshare::gan
