// Streaming-dataflow tests (DESIGN.md §11): the StreamExecutor's scheduling
// contract (per-chunk stage order, admission bound, bounded-queue
// backpressure, dependency edges, error propagation) and — the load-bearing
// property — bitwise identity of the streaming pipeline's output vs the
// batch pipeline at any worker count, including under mid-stream chunk
// faults (seed-snapshot fallback) and checkpoint/resume.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/netshare.hpp"
#include "core/stream.hpp"
#include "core/train.hpp"
#include "datagen/presets.hpp"
#include "eval/report.hpp"
#include "gan/doppelganger.hpp"
#include "ml/health.hpp"

namespace netshare {
namespace {

namespace fs = std::filesystem;
using core::kNumStreamStages;
using core::StreamExecutor;
using core::StreamOptions;
using core::StreamStage;
using ml::health::FaultPlan;
using ml::health::ScopedFaultPlan;

// ---------------------------------------------------------------------------
// Executor scheduling contract (synthetic bodies).
// ---------------------------------------------------------------------------

// Records each chunk's stage sequence. Stages of one chunk never overlap
// (they form a dependency chain), so the per-chunk vectors need no locking.
struct StageLog {
  explicit StageLog(std::size_t chunks) : per_chunk(chunks) {}
  std::array<StreamExecutor::Body, kNumStreamStages> bodies() {
    std::array<StreamExecutor::Body, kNumStreamStages> b;
    for (std::size_t s = 0; s < kNumStreamStages; ++s) {
      b[s] = [this, s](std::size_t c) { per_chunk[c].push_back(s); };
    }
    return b;
  }
  std::vector<std::vector<std::size_t>> per_chunk;
};

TEST(StreamExecutor, RunsEveryStageOfEveryChunkInOrder) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const std::size_t M = 5;
    StageLog log(M);
    StreamOptions opts;
    opts.workers = workers;
    StreamExecutor exec(M, log.bodies(), opts);
    exec.run();
    for (std::size_t c = 0; c < M; ++c) {
      ASSERT_EQ(log.per_chunk[c].size(), kNumStreamStages)
          << "chunk " << c << " at " << workers << " workers";
      for (std::size_t s = 0; s < kNumStreamStages; ++s) {
        EXPECT_EQ(log.per_chunk[c][s], s) << "chunk " << c;
      }
    }
    EXPECT_EQ(exec.stats().chunks, M);
    EXPECT_EQ(exec.stats().workers, workers);
    EXPECT_GT(exec.stats().wall_sec, 0.0);
  }
}

TEST(StreamExecutor, HonorsChunksInFlightBound) {
  const std::size_t M = 6;
  StageLog log(M);
  StreamOptions opts;
  opts.workers = 4;
  opts.max_in_flight = 2;
  StreamExecutor exec(M, log.bodies(), opts);
  exec.run();
  for (std::size_t c = 0; c < M; ++c) {
    EXPECT_EQ(log.per_chunk[c].size(), kNumStreamStages);
  }
  EXPECT_GE(exec.stats().peak_in_flight, 1u);
  EXPECT_LE(exec.stats().peak_in_flight, 2u);
}

TEST(StreamExecutor, FullHandoffQueueParksInsteadOfBlocking) {
  // Constructed burst: S3(0) completes only after S1(1) and S1(2), and then
  // unblocks S2(1) and S2(2) at once. With queue_capacity == 1 the second
  // handoff must park (backpressure), and the run must still complete —
  // a blocking producer would deadlock this single-worker schedule.
  const std::size_t M = 3;
  StageLog log(M);
  StreamOptions opts;
  opts.workers = 1;
  opts.max_in_flight = M;
  opts.queue_capacity = 1;
  StreamExecutor exec(M, log.bodies(), opts);
  exec.add_dependency(StreamStage::kExport, 0, StreamStage::kTrain, 1);
  exec.add_dependency(StreamStage::kExport, 0, StreamStage::kTrain, 2);
  exec.add_dependency(StreamStage::kGenerate, 1, StreamStage::kExport, 0);
  exec.add_dependency(StreamStage::kGenerate, 2, StreamStage::kExport, 0);
  exec.run();
  for (std::size_t c = 0; c < M; ++c) {
    ASSERT_EQ(log.per_chunk[c].size(), kNumStreamStages) << "chunk " << c;
  }
  EXPECT_GE(exec.stats().backpressure_parks, 1u);
}

TEST(StreamExecutor, CrossChunkDependencyOrdersTrainStages) {
  // The seed edge of the real pipeline: train(c) waits for train(0).
  const std::size_t M = 5;
  std::atomic<bool> train0_done{false};
  std::atomic<int> violations{0};
  std::array<StreamExecutor::Body, kNumStreamStages> bodies{};
  bodies[static_cast<std::size_t>(StreamStage::kTrain)] = [&](std::size_t c) {
    if (c == 0) {
      train0_done.store(true);
    } else if (!train0_done.load()) {
      violations.fetch_add(1);
    }
  };
  StreamOptions opts;
  opts.workers = 4;
  opts.max_in_flight = M;
  StreamExecutor exec(M, std::move(bodies), opts);
  for (std::size_t c = 1; c < M; ++c) {
    exec.add_dependency(StreamStage::kTrain, c, StreamStage::kTrain, 0);
  }
  exec.run();
  EXPECT_EQ(violations.load(), 0);
}

TEST(StreamExecutor, BodyExceptionCancelsRunAndPropagates) {
  const std::size_t M = 4;
  std::array<StreamExecutor::Body, kNumStreamStages> bodies{};
  bodies[static_cast<std::size_t>(StreamStage::kTrain)] = [](std::size_t c) {
    if (c == 1) throw std::runtime_error("chunk 1 train failed");
  };
  StreamOptions opts;
  opts.workers = 2;
  opts.max_in_flight = 2;
  StreamExecutor exec(M, std::move(bodies), opts);
  try {
    exec.run();
    FAIL() << "run accepted a throwing body";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1 train failed");
  }
}

TEST(StreamExecutor, DetectsStalledGraphInsteadOfHanging) {
  StageLog log(3);
  StreamOptions opts;
  opts.workers = 1;
  opts.max_in_flight = 3;
  StreamExecutor exec(3, log.bodies(), opts);
  exec.add_dependency(StreamStage::kTrain, 1, StreamStage::kTrain, 2);
  exec.add_dependency(StreamStage::kTrain, 2, StreamStage::kTrain, 1);
  EXPECT_THROW(exec.run(), std::logic_error);
}

TEST(StreamExecutor, RejectsSelfDependencyAndReuse) {
  StageLog log(2);
  StreamExecutor exec(2, log.bodies(), StreamOptions{});
  EXPECT_THROW(
      exec.add_dependency(StreamStage::kTrain, 1, StreamStage::kTrain, 1),
      std::invalid_argument);
  EXPECT_THROW(exec.add_dependency(StreamStage::kTrain, 2,
                                   StreamStage::kTrain, 0),
               std::out_of_range);
  exec.run();
  EXPECT_THROW(exec.run(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Streaming pipeline vs batch oracle (bitwise).
// ---------------------------------------------------------------------------

gan::DgConfig tiny_dg() {
  gan::DgConfig dg;
  dg.attr_noise_dim = 4;
  dg.feat_noise_dim = 4;
  dg.attr_hidden = {16};
  dg.rnn_hidden = 16;
  dg.disc_hidden = {24};
  dg.aux_hidden = {12};
  dg.batch_size = 16;
  return dg;
}

core::NetShareConfig tiny_config() {
  core::NetShareConfig cfg;
  cfg.use_ip2vec_ports = false;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 4;
  cfg.finetune_iterations = 2;
  cfg.threads = 4;
  cfg.dg = tiny_dg();
  return cfg;
}

const datagen::DatasetBundle& caida_bundle() {
  static const datagen::DatasetBundle* bundle = new datagen::DatasetBundle(
      datagen::make_dataset(datagen::DatasetId::kCaida, 200, 21));
  return *bundle;
}

net::PacketTrace batch_packets(const core::NetShareConfig& cfg,
                               std::uint64_t rng_seed, std::size_t n) {
  core::NetShare model(cfg, nullptr);
  model.fit(caida_bundle().packets);
  Rng rng(rng_seed);
  return model.generate_packets(n, rng);
}

net::PacketTrace stream_packets(core::NetShareConfig cfg, std::size_t workers,
                                std::uint64_t rng_seed, std::size_t n,
                                core::StreamStats* stats = nullptr) {
  cfg.streaming = true;
  cfg.stream_workers = workers;
  core::NetShare model(cfg, nullptr);
  Rng rng(rng_seed);
  return model.fit_generate_packets(caida_bundle().packets, n, rng, stats);
}

TEST(StreamPipeline, PacketsBitwiseEqualBatchAtAnyWorkerCount) {
  const std::size_t n = 100;
  const net::PacketTrace oracle = batch_packets(tiny_config(), 5, n);
  ASSERT_EQ(oracle.size(), n);
  for (std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::StreamStats stats;
    const net::PacketTrace out =
        stream_packets(tiny_config(), workers, 5, n, &stats);
    EXPECT_EQ(out.packets, oracle.packets)
        << "streaming diverged at " << workers << " workers";
    EXPECT_EQ(stats.chunks, 3u);
    EXPECT_EQ(stats.workers, workers);
    EXPECT_GE(stats.peak_in_flight, 1u);
    EXPECT_LE(stats.peak_in_flight, 2u);  // default stream_max_in_flight
    EXPECT_GE(stats.overlap_frac, 0.0);
    EXPECT_LE(stats.overlap_frac, 1.0);
  }
}

TEST(StreamPipeline, PacketsBitwiseEqualBatchAcrossSeeds) {
  const std::size_t n = 80;
  const net::PacketTrace oracle = batch_packets(tiny_config(), 99, n);
  const net::PacketTrace out = stream_packets(tiny_config(), 2, 99, n);
  EXPECT_EQ(out.packets, oracle.packets);
}

TEST(StreamPipeline, FlowsBitwiseEqualBatch) {
  const std::size_t n = 90;
  const datagen::DatasetBundle bundle =
      datagen::make_dataset(datagen::DatasetId::kCidds, 250, 22);
  core::NetShareConfig cfg = tiny_config();
  net::FlowTrace oracle;
  {
    core::NetShare model(cfg, nullptr);
    model.fit(bundle.flows);
    Rng rng(7);
    oracle = model.generate_flows(n, rng);
  }
  cfg.streaming = true;
  cfg.stream_workers = 4;
  core::NetShare model(cfg, nullptr);
  Rng rng(7);
  const net::FlowTrace out = model.fit_generate_flows(bundle.flows, n, rng);
  EXPECT_EQ(out.records, oracle.records);
}

TEST(StreamPipeline, SmallQueueManyChunksStillBitwiseEqual) {
  // Tighter than the defaults: more chunks than in-flight slots and a
  // one-deep handoff queue force admission throttling and backpressure.
  const std::size_t n = 100;
  core::NetShareConfig cfg = tiny_config();
  cfg.num_chunks = 6;
  const net::PacketTrace oracle = batch_packets(cfg, 11, n);
  cfg.streaming = true;
  cfg.stream_workers = 4;
  cfg.stream_max_in_flight = 2;
  cfg.stream_queue_capacity = 1;
  core::StreamStats stats;
  core::NetShare model(cfg, nullptr);
  Rng rng(11);
  const net::PacketTrace out =
      model.fit_generate_packets(caida_bundle().packets, n, rng, &stats);
  EXPECT_EQ(out.packets, oracle.packets);
  EXPECT_EQ(stats.chunks, 6u);
  EXPECT_LE(stats.peak_in_flight, 2u);
}

TEST(StreamPipeline, MidStreamChunkFaultFallsBackAndMatchesBatch) {
  // PR 5's chunk fault isolation must survive the move to streaming: chunk
  // 2's model diverges past its retry budget mid-stream, falls back to the
  // seed snapshot, and the completed run stays bitwise-equal to a batch run
  // under the same fault.
  const std::size_t n = 80;
  core::NetShareConfig cfg = tiny_config();
  cfg.seed = 5000;
  cfg.finetune_iterations = 3;
  cfg.dg.health.check_every = 1;
  cfg.dg.health.checkpoint_every = 2;
  cfg.dg.health.max_retries = 1;
  FaultPlan plan;
  plan.nan_at_step = 2;
  plan.nan_repeats = true;
  plan.nan_model_seed = cfg.seed + 1000 + 2;  // only chunk 2's model
  net::PacketTrace oracle;
  {
    ScopedFaultPlan arm(plan);
    oracle = batch_packets(cfg, 13, n);
  }
  cfg.streaming = true;
  cfg.stream_workers = 2;
  core::NetShare model(cfg, nullptr);
  net::PacketTrace out;
  {
    ScopedFaultPlan arm(plan);
    Rng rng(13);
    ASSERT_NO_THROW(
        out = model.fit_generate_packets(caida_bundle().packets, n, rng));
  }
  EXPECT_EQ(out.packets, oracle.packets);
  const core::TrainReport& report = model.train_report();
  ASSERT_EQ(report.chunks.size(), 3u);
  EXPECT_EQ(report.chunks[2].status,
            core::ChunkTrainReport::Status::kSeedFallback);
  EXPECT_EQ(report.count(core::ChunkTrainReport::Status::kSeedFallback), 1u);
}

TEST(StreamPipeline, CheckpointResumeMidStreamBitwiseIdentical) {
  // Run A checkpoints every chunk; deleting chunk 1's file simulates a run
  // killed before that write. Run B resumes the surviving chunks, retrains
  // chunk 1, and must reproduce run A bitwise.
  const std::size_t n = 80;
  const std::string dir =
      ::testing::TempDir() + "netshare_stream_ckpt";
  fs::remove_all(dir);
  core::NetShareConfig cfg = tiny_config();
  cfg.checkpoint_dir = dir;
  cfg.streaming = true;
  cfg.stream_workers = 4;
  net::PacketTrace a, b;
  {
    core::NetShare model(cfg, nullptr);
    Rng rng(23);
    a = model.fit_generate_packets(caida_bundle().packets, n, rng);
  }
  ASSERT_TRUE(fs::exists(dir + "/chunk_1.ckpt"));
  fs::remove(dir + "/chunk_1.ckpt");
  core::NetShare model(cfg, nullptr);
  {
    Rng rng(23);
    b = model.fit_generate_packets(caida_bundle().packets, n, rng);
  }
  EXPECT_EQ(b.packets, a.packets);
  const core::TrainReport& report = model.train_report();
  EXPECT_EQ(report.chunks[0].status, core::ChunkTrainReport::Status::kResumed);
  EXPECT_EQ(report.chunks[1].status, core::ChunkTrainReport::Status::kTrained);
  EXPECT_EQ(report.chunks[2].status, core::ChunkTrainReport::Status::kResumed);
  fs::remove_all(dir);
}

TEST(StreamPipeline, ReportCarriesPerChunkStageTimings) {
  core::NetShareConfig cfg = tiny_config();
  cfg.streaming = true;
  cfg.stream_workers = 2;
  core::NetShare model(cfg, nullptr);
  Rng rng(31);
  model.fit_generate_packets(caida_bundle().packets, 60, rng);
  const core::TrainReport& report = model.train_report();
  bool any_train = false, any_generate = false;
  for (const auto& r : report.chunks) {
    if (r.train_sec > 0.0) any_train = true;
    if (r.generate_sec > 0.0) any_generate = true;
  }
  EXPECT_TRUE(any_train);
  EXPECT_TRUE(any_generate);
  std::ostringstream out;
  eval::print_train_report(out, report);
  EXPECT_NE(out.str().find("train_s"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("gen_s"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace netshare
