// Additional GAN-substrate coverage: tabular WGAN regimes (Lipschitz penalty
// vs weight clipping), dataset row views, spec arithmetic, and DoppelGANger
// configuration sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "gan/doppelganger.hpp"
#include "gan/tabular_gan.hpp"

namespace netshare::gan {
namespace {

using ml::Matrix;
using ml::OutputSegment;

TEST(TimeSeriesSpec, DimensionArithmetic) {
  TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSigmoid, 10},
                             {OutputSegment::Kind::kSoftmax, 3}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 2}};
  spec.max_len = 5;
  EXPECT_EQ(spec.attribute_dim(), 13u);
  EXPECT_EQ(spec.feature_dim(), 2u);
}

TEST(TimeSeriesDataset, TakeSelectsRows) {
  TimeSeriesDataset data;
  data.spec.attribute_segments = {{OutputSegment::Kind::kSigmoid, 2}};
  data.spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  data.spec.max_len = 2;
  data.attributes = Matrix(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    data.attributes(i, 0) = static_cast<double>(i);
  }
  data.features.assign(2, Matrix(3, 1));
  data.features[0](2, 0) = 9.0;
  data.lengths = {1, 2, 2};

  const auto sub = data.take({2, 0});
  EXPECT_EQ(sub.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(sub.attributes(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.attributes(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(sub.features[0](0, 0), 9.0);
  EXPECT_EQ(sub.lengths, (std::vector<std::size_t>{2, 1}));
  EXPECT_THROW(data.take({5}), std::out_of_range);
}

// Simple skewed two-column dataset both regimes should learn.
Matrix toy_rows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.bernoulli(0.75) ? 0 : 1;
    rows(i, c) = 1.0;
    rows(i, 2) = std::clamp(0.6 + rng.normal(0.0, 0.05), 0.0, 1.0);
  }
  return rows;
}

class TabularRegimes : public ::testing::TestWithParam<bool> {};

TEST_P(TabularRegimes, BothLipschitzControlsLearnTheMarginal) {
  const bool weight_clip = GetParam();
  TabularGanConfig cfg;
  cfg.iterations = 250;
  cfg.batch_size = 32;
  cfg.gen_hidden = {32, 32};
  cfg.disc_hidden = {32, 32};
  cfg.weight_clip = weight_clip;
  cfg.weight_clip_c = 0.1;
  TabularGan gan({{OutputSegment::Kind::kSoftmax, 2},
                  {OutputSegment::Kind::kSigmoid, 1}},
                 cfg, 11);
  gan.fit(toy_rows(400, 12));
  Rng rng(13);
  const Matrix syn = gan.sample(400, rng);
  double c0 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    c0 += syn(i, 0) > syn(i, 1) ? 1.0 / 400 : 0.0;
    mean2 += syn(i, 2) / 400;
  }
  EXPECT_GT(c0, 0.5) << (weight_clip ? "weight clip" : "LP");
  EXPECT_NEAR(mean2, 0.6, 0.25);
}

INSTANTIATE_TEST_SUITE_P(LipschitzControls, TabularRegimes,
                         ::testing::Values(false, true));

TEST(TabularGan, RejectsWrongWidthInput) {
  TabularGanConfig cfg;
  TabularGan gan({{OutputSegment::Kind::kSigmoid, 4}}, cfg, 14);
  EXPECT_THROW(gan.fit(Matrix(10, 3)), std::invalid_argument);
  EXPECT_THROW(gan.fit(Matrix(0, 4)), std::invalid_argument);
}

TEST(DoppelGangerConfig, SingleCriticStepAndNoAuxStillTrain) {
  TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSoftmax, 2}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 3;

  TimeSeriesDataset data;
  data.spec = spec;
  Rng drng(15);
  data.attributes = Matrix(64, 2);
  data.features.assign(3, Matrix(64, 1));
  data.lengths.assign(64, 2);
  for (std::size_t i = 0; i < 64; ++i) {
    data.attributes(i, drng.bernoulli(0.5) ? 0 : 1) = 1.0;
    data.features[0](i, 0) = 0.5;
    data.features[1](i, 0) = 0.5;
  }

  DgConfig cfg;
  cfg.attr_hidden = {16};
  cfg.rnn_hidden = 12;
  cfg.disc_hidden = {16};
  cfg.aux_hidden = {8};
  cfg.iterations = 10;
  cfg.batch_size = 16;
  cfg.d_steps_per_g = 1;
  cfg.aux_weight = 0.0;
  DoppelGanger gan(spec, cfg, 16);
  EXPECT_NO_THROW(gan.fit(data));
  Rng rng(17);
  EXPECT_EQ(gan.sample(5, rng).num_samples(), 5u);
}

TEST(DoppelGangerConfig, BatchLargerThanDatasetIsClamped) {
  TimeSeriesSpec spec;
  spec.attribute_segments = {{OutputSegment::Kind::kSigmoid, 2}};
  spec.feature_segments = {{OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 2;
  TimeSeriesDataset data;
  data.spec = spec;
  data.attributes = Matrix(5, 2, 0.5);
  data.features.assign(2, Matrix(5, 1, 0.5));
  data.lengths.assign(5, 1);

  DgConfig cfg;
  cfg.attr_hidden = {8};
  cfg.rnn_hidden = 8;
  cfg.disc_hidden = {8};
  cfg.aux_hidden = {8};
  cfg.iterations = 3;
  cfg.batch_size = 64;  // > 5 samples
  DoppelGanger gan(spec, cfg, 18);
  EXPECT_NO_THROW(gan.fit(data));
}

}  // namespace
}  // namespace netshare::gan
