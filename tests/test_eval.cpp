// Tests for the evaluation harness: reporting utilities, model sets, and the
// fit+generate runners (at tiny training budgets).
#include <gtest/gtest.h>

#include <sstream>

#include "datagen/presets.hpp"
#include "eval/fidelity.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

namespace netshare::eval {
namespace {

EvalOptions tiny_options() {
  EvalOptions opt;
  opt.gan_iterations = 20;
  opt.netshare_seed_iters = 20;
  opt.netshare_ft_iters = 8;
  opt.netshare_chunks = 2;
  opt.max_seq_len = 4;
  return opt;
}

TEST(TextTable, AlignsColumnsAndPrintsSeparator) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"longer-name", "2.5"});
  std::ostringstream out;
  table.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable table({"m", "a", "b"});
  const std::vector<double> vals{1.23456, 7.0};
  table.add_row("x", vals, 2);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_NE(out.str().find("7.00"), std::string::npos);
}

TEST(Report, CdfPrintsQuantiles) {
  std::ostringstream out;
  print_cdf(out, "test", {1.0, 2.0, 3.0, 4.0});
  EXPECT_NE(out.str().find("p50"), std::string::npos);
  EXPECT_NE(out.str().find("p99"), std::string::npos);
}

TEST(Report, CdfHandlesEmpty) {
  std::ostringstream out;
  print_cdf(out, "empty", {});
  EXPECT_NE(out.str().find("no samples"), std::string::npos);
}

TEST(Harness, StandardModelSetsHaveExpectedNames) {
  const auto opt = tiny_options();
  const auto flow = standard_flow_models(opt);
  ASSERT_EQ(flow.size(), 4u);
  EXPECT_EQ(flow[0]->name(), "NetShare");
  EXPECT_EQ(flow[1]->name(), "CTGAN");
  EXPECT_EQ(flow[2]->name(), "E-WGAN-GP");
  EXPECT_EQ(flow[3]->name(), "STAN");

  const auto packet = standard_packet_models(opt);
  ASSERT_EQ(packet.size(), 5u);
  EXPECT_EQ(packet[0]->name(), "NetShare");
  EXPECT_EQ(packet[4]->name(), "Flow-WGAN");
}

TEST(Harness, V0OptionAppendsModel) {
  auto opt = tiny_options();
  opt.include_netshare_v0 = true;
  const auto flow = standard_flow_models(opt);
  EXPECT_EQ(flow.back()->name(), "NetShare-V0");
}

TEST(Harness, RunFlowModelsProducesRequestedSizes) {
  const auto opt = tiny_options();
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCidds, 300, 1);
  auto runs = run_flow_models(standard_flow_models(opt), bundle.flows, 200, 2);
  ASSERT_EQ(runs.size(), 4u);
  for (const auto& run : runs) {
    EXPECT_EQ(run.synthetic.size(), 200u) << run.name;
    EXPECT_GT(run.cpu_seconds, 0.0) << run.name;
  }
}

TEST(Harness, FidelityFigureRunsOnBothTraceKinds) {
  const auto opt = tiny_options();
  std::ostringstream out;
  const auto flow_result =
      fidelity_figure(out, datagen::DatasetId::kCidds, 250, opt, 3);
  EXPECT_EQ(flow_result.model_names.size(), 4u);
  EXPECT_EQ(flow_result.mean_jsd.size(), 4u);
  const auto pkt_result =
      fidelity_figure(out, datagen::DatasetId::kDc, 400, opt, 4);
  EXPECT_EQ(pkt_result.model_names.size(), 5u);
  EXPECT_NE(out.str().find("JSD"), std::string::npos);
  EXPECT_NE(out.str().find("Normalized EMD"), std::string::npos);
}

TEST(Harness, ScaledRespectsMinimumOfOne) {
  EXPECT_GE(scaled(1), 1);
  EXPECT_GE(scaled(1000), 1);
}

}  // namespace
}  // namespace netshare::eval
