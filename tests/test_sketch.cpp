// Tests for the sketching substrate: accuracy bounds, unbiasedness,
// heavy-hitter harness, and UnivMon's G-sum recursion.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.hpp"
#include "datagen/presets.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/heavy_hitter.hpp"
#include "sketch/nitrosketch.hpp"
#include "sketch/univmon.hpp"

namespace netshare::sketch {
namespace {

std::vector<std::uint64_t> zipf_stream(std::size_t n, std::size_t universe,
                                       double alpha, std::uint64_t seed) {
  datagen::ZipfSampler z(universe, alpha);
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = 1000 + z.sample(rng);
  return keys;
}

std::unordered_map<std::uint64_t, std::uint64_t> exact_counts(
    const std::vector<std::uint64_t>& keys) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (auto k : keys) counts[k]++;
  return counts;
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch cms(4, 256, 7);
  const auto keys = zipf_stream(20000, 500, 1.1, 1);
  for (auto k : keys) cms.update(k);
  for (const auto& [k, c] : exact_counts(keys)) {
    EXPECT_GE(cms.estimate(k), static_cast<double>(c)) << k;
  }
}

TEST(CountMin, ErrorWithinEpsilonN) {
  // Classic CMS guarantee: error <= e/width * N with probability 1-delta.
  const std::size_t width = 512;
  CountMinSketch cms(5, width, 8);
  const auto keys = zipf_stream(30000, 400, 1.0, 2);
  for (auto k : keys) cms.update(k);
  const double bound =
      std::exp(1.0) / static_cast<double>(width) * 30000.0;
  std::size_t violations = 0;
  const auto exact = exact_counts(keys);
  for (const auto& [k, c] : exact) {
    if (cms.estimate(k) - static_cast<double>(c) > bound) ++violations;
  }
  EXPECT_LE(violations, exact.size() / 50);
}

TEST(CountMin, WeightedUpdates) {
  CountMinSketch cms(3, 64, 9);
  cms.update(42, 100);
  cms.update(42, 50);
  EXPECT_GE(cms.estimate(42), 150.0);
}

TEST(CountMin, ClearResets) {
  CountMinSketch cms(3, 64, 10);
  cms.update(1, 10);
  cms.clear();
  EXPECT_DOUBLE_EQ(cms.estimate(1), 0.0);
}

TEST(CountMin, RejectsZeroDimensions) {
  EXPECT_THROW(CountMinSketch(0, 8), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(8, 0), std::invalid_argument);
}

TEST(CountSketch, ApproximatelyUnbiasedOnHeavyKeys) {
  const auto keys = zipf_stream(30000, 400, 1.1, 3);
  const auto exact = exact_counts(keys);
  // Average estimate across independent sketches approaches the true count.
  const std::uint64_t heavy_key = 1000;  // rank-0 key
  const double truth = static_cast<double>(exact.at(heavy_key));
  double sum = 0.0;
  const int reps = 10;
  for (int r = 0; r < reps; ++r) {
    CountSketch cs(5, 256, 100 + r);
    for (auto k : keys) cs.update(k);
    sum += cs.signed_estimate(heavy_key);
  }
  EXPECT_NEAR(sum / reps, truth, 0.15 * truth);
}

TEST(CountSketch, EstimateClampedNonNegative) {
  CountSketch cs(3, 16, 11);
  cs.update(5, 1);
  for (std::uint64_t k = 100; k < 200; ++k) {
    EXPECT_GE(cs.estimate(k), 0.0);
  }
}

TEST(NitroSketch, MatchesCountSketchInExpectation) {
  const auto keys = zipf_stream(40000, 300, 1.1, 4);
  const auto exact = exact_counts(keys);
  const std::uint64_t heavy_key = 1000;
  const double truth = static_cast<double>(exact.at(heavy_key));
  double sum = 0.0;
  const int reps = 10;
  for (int r = 0; r < reps; ++r) {
    NitroSketch ns(5, 256, 0.2, 200 + r);
    for (auto k : keys) ns.update(k);
    sum += ns.estimate(heavy_key);
  }
  // Sampled updates keep the estimator unbiased, with higher variance.
  EXPECT_NEAR(sum / reps, truth, 0.3 * truth);
}

TEST(NitroSketch, FullProbabilityDegeneratesToCountSketch) {
  const auto keys = zipf_stream(5000, 100, 1.0, 5);
  NitroSketch ns(5, 256, 1.0, 12);
  CountSketch cs(5, 256, 12);  // same seed -> same hashes
  for (auto k : keys) {
    ns.update(k);
    cs.update(k);
  }
  for (std::uint64_t k = 1000; k < 1010; ++k) {
    EXPECT_NEAR(ns.estimate(k), cs.estimate(k), 1e-9);
  }
}

TEST(NitroSketch, RejectsBadProbability) {
  EXPECT_THROW(NitroSketch(3, 16, 0.0), std::invalid_argument);
  EXPECT_THROW(NitroSketch(3, 16, 1.5), std::invalid_argument);
}

TEST(UnivMon, PointQueriesTrackHeavyKeys) {
  UnivMon um(6, 5, 256, 13);
  const auto keys = zipf_stream(30000, 300, 1.2, 6);
  for (auto k : keys) um.update(k);
  const auto exact = exact_counts(keys);
  const double truth = static_cast<double>(exact.at(1000));
  EXPECT_NEAR(um.estimate(1000), truth, 0.3 * truth);
}

TEST(UnivMon, GsumCardinalityIsReasonable) {
  UnivMon um(8, 5, 512, 14);
  // 64 distinct keys with equal weight.
  for (std::uint64_t k = 0; k < 64; ++k) um.update(k, 100);
  const double card = um.g_sum([](double) { return 1.0; });
  EXPECT_GT(card, 16.0);
  EXPECT_LT(card, 256.0);
}

TEST(UnivMon, LevelsSampleRoughlyHalf) {
  UnivMon um(4, 3, 64, 15);
  (void)um;  // construction-only check
  EXPECT_EQ(um.levels(), 4u);
}

TEST(HeavyHitterHarness, PerfectSketchGivesZeroError) {
  // CMS with huge width ~= exact counting.
  CountMinSketch cms(4, 1 << 16, 16);
  const auto keys = zipf_stream(20000, 100, 1.3, 7);
  const auto report = evaluate_heavy_hitters(cms, keys, 0.001);
  EXPECT_GT(report.num_heavy, 0u);
  EXPECT_LT(report.mean_relative_error, 0.01);
}

TEST(HeavyHitterHarness, TinySketchGivesLargeError) {
  CountMinSketch tiny(2, 8, 17);
  const auto keys = zipf_stream(20000, 500, 1.0, 8);
  const auto report = evaluate_heavy_hitters(tiny, keys, 0.001);
  EXPECT_GT(report.mean_relative_error, 0.05);
}

TEST(HeavyHitterHarness, ExtractsKeysPerKind) {
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kCaida, 500, 18);
  const auto dst = extract_keys(bundle.packets, HeavyHitterKey::kDstIp);
  const auto src = extract_keys(bundle.packets, HeavyHitterKey::kSrcIp);
  const auto ft = extract_keys(bundle.packets, HeavyHitterKey::kFiveTuple);
  EXPECT_EQ(dst.size(), bundle.packets.size());
  EXPECT_EQ(src.size(), bundle.packets.size());
  EXPECT_EQ(ft.size(), bundle.packets.size());
  EXPECT_NE(dst[0], src[0]);
}

}  // namespace
}  // namespace netshare::sketch
