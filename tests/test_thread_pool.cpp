// ThreadPool hardening tests: exception propagation through submit and
// parallel_for, zero-task and fewer-tasks-than-threads edge cases, worker
// survival after a throwing task, and destruction with queued work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare {
namespace {

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WorkerSurvivesThrowingTask) {
  ThreadPool pool(1);  // single worker: it must outlive the throwing task
  auto bad = pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(bad.get(), std::logic_error);

  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAfterAllTasksRan) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Every task references `ran` (caller stack state), so parallel_for must
  // not return — not even by throwing — until all of them have finished.
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&ran](std::size_t i) {
                          ran.fetch_add(1);
                          if (i % 7 == 3) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelForAllTasksThrowingStillTerminates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(16, [](std::size_t) { throw std::out_of_range("x"); }),
      std::out_of_range);
}

TEST(ThreadPool, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForFewerTasksThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.parallel_for(3, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, ParallelForManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(500, [&sum](std::size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 500u * 501u / 2u);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ran.fetch_add(1);
      });
    }
    // Destructor runs with most tasks still queued behind the single worker.
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, OversubscriptionClampIsCountedOnDiagChannel) {
  // parallel_phase_budget requested from inside a pool worker must clamp to
  // 1 and report through the structured diag channel — asserted via the
  // telemetry counter, not by scraping stderr (the print is rate-limited).
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "diag counters require NETSHARE_TELEMETRY=ON";
  }
  const std::uint64_t before =
      telemetry::diag_count("core.parallel.oversubscribed");

  ThreadPool pool(2);
  std::atomic<std::size_t> clamped_budget{0};
  pool.parallel_for(1, [&](std::size_t) {
    clamped_budget.store(core::parallel_phase_budget(4));
  });
  EXPECT_EQ(clamped_budget.load(), 1u);
  EXPECT_EQ(telemetry::diag_count("core.parallel.oversubscribed"), before + 1);

  // Top-level call (not on a worker): no clamp, no new diag occurrence.
  const std::size_t top = core::parallel_phase_budget(2);
  EXPECT_GE(top, 1u);
  EXPECT_EQ(telemetry::diag_count("core.parallel.oversubscribed"), before + 1);
}

}  // namespace
}  // namespace netshare
