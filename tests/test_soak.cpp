// Chaos soak for the generation daemon (DESIGN.md §14): a multi-tenant
// retrying workload over the socket transport with the full deterministic
// fault plan armed — fragmented and aborted reply writes, slow-reader
// stalls, injected snapshot-load failures under a concurrent republisher,
// and worker delays — while some jobs carry tight deadlines and every
// tenant is rate-limited.
//
// The assertions are schedule-independent (thread interleaving decides
// WHICH job a fault hits, not what faults exist — see chaos.hpp):
//   1. No hangs: the run finishes (ctest enforces the wall-clock TIMEOUT).
//   2. Every failure is typed: a shed, a deadline, or a transport loss —
//      never a malformed reply, a wrong-job payload, or an untyped error.
//   3. Every success is bitwise correct: the merged trace equals the
//      offline LoadedModel::generate oracle for that job's (n, seed),
//      no matter how many retries or hot-swaps happened around it.
//
// Not labeled tier1: run via `ctest -L soak` or scripts/run_soak, which
// repeats it under asan and tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"
#include "serve_test_util.hpp"

namespace netshare::serve {
namespace {

using namespace serve_test;

struct SoakOutcome {
  std::string tenant;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  ClientResult result;
};

TEST(Soak, ChaosWorkloadNoHangsTypedFailuresBitwiseSuccesses) {
  ServiceConfig cfg;
  cfg.workers = 3;
  // Tight enough that sheds actually happen under the burst, loose enough
  // that retries drain the backlog.
  cfg.rate_limit.default_class.jobs_per_sec = 40.0;
  cfg.rate_limit.default_class.burst_seconds = 0.5;
  SocketHarness h(cfg);

  // Offline oracle per (n, seed): pure function of the published snapshot.
  // The republisher below re-publishes the SAME snapshot directory, so a
  // mid-run hot-swap changes the serving version but never the bytes.
  auto oracle_model = h.registry.acquire("m");
  ASSERT_NE(oracle_model, nullptr);
  std::map<std::pair<std::size_t, std::uint64_t>, net::FlowTrace> oracle;
  for (std::size_t v = 0; v < 4; ++v) {
    const std::size_t n = 30 + 20 * v;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      oracle[{n, seed}] = oracle_model->generate(n, seed);
    }
  }

  ChaosPlan plan;
  plan.seed = 2026;
  plan.p_send_short_write = 0.25;
  plan.p_send_disconnect = 0.05;
  plan.p_send_stall = 0.05;
  plan.send_stall_ms = 5;
  plan.p_registry_load_fail = 0.4;
  plan.p_worker_delay = 0.2;
  plan.worker_delay_ms = 5;
  ScopedChaosPlan chaos(plan);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 25;
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};

  std::mutex out_mu;
  std::vector<SoakOutcome> outcomes;
  std::atomic<bool> publishing{true};

  // Concurrent republisher: hammers publish over the wire while jobs run.
  // Under p_registry_load_fail each build either installs the identical
  // snapshot or fails typed before touching what serves.
  std::thread republisher([&] {
    auto pub = std::make_unique<SocketClient>(h.path);
    std::size_t published = 0, failed = 0;
    // Runs for the whole workload, then keeps going (bounded) until both a
    // successful and an injected-failure publish have been observed, so the
    // assertions below never depend on how fast the workers finished.
    for (int iter = 0;
         (publishing.load(std::memory_order_relaxed) || published == 0 ||
          failed == 0) &&
         iter < 500;
         ++iter) {
      try {
        ClientResult r = pub->publish("m", snapshot_a().dir);
        if (r.ok) {
          ++published;
        } else {
          EXPECT_EQ(r.code, ErrorCode::kSnapshotIo) << r.message;
          ++failed;
        }
      } catch (const std::runtime_error&) {
        // Chaos killed this connection mid-publish; re-dial and go on.
        pub = std::make_unique<SocketClient>(h.path);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(published, 0u);
    EXPECT_GT(failed, 0u);
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SocketClient client(h.path);
      RetryPolicy pol;
      pol.max_attempts = 6;
      pol.base_backoff_ms = 5;
      pol.max_backoff_ms = 100;
      pol.seed = static_cast<std::uint64_t>(t) + 1;
      std::vector<SoakOutcome> local;
      for (int j = 0; j < kJobsPerThread; ++j) {
        SoakOutcome o;
        o.tenant = tenants[static_cast<std::size_t>(t + j) % tenants.size()];
        o.n = 30 + 20 * (static_cast<std::size_t>(j) % 4);
        o.seed = 1 + (static_cast<std::uint64_t>(t * kJobsPerThread + j) % 8);
        // Every 5th job carries a deadline tight enough that worker delays
        // and queueing can legitimately expire it — that failure must then
        // be typed kDeadlineExceeded, never a hang or a partial trace.
        const std::uint64_t deadline_ms = j % 5 == 4 ? 40 : 0;
        o.result = client.generate_with_retry("m", o.tenant, o.n, o.seed, pol,
                                              deadline_ms);
        local.push_back(std::move(o));
      }
      std::lock_guard<std::mutex> lock(out_mu);
      for (auto& o : local) outcomes.push_back(std::move(o));
    });
  }
  for (auto& w : workers) w.join();
  publishing.store(false, std::memory_order_relaxed);
  republisher.join();

  std::size_t ok = 0, shed = 0, expired = 0, transport = 0;
  for (const SoakOutcome& o : outcomes) {
    if (o.result.ok) {
      ++ok;
      // Bitwise identity with the offline oracle: retries, coalescing,
      // chaos and hot-swaps may reorder everything around the job but can
      // never change its bytes.
      EXPECT_EQ(o.result.trace.records, oracle.at({o.n, o.seed}).records)
          << "tenant " << o.tenant << " n=" << o.n << " seed=" << o.seed;
      continue;
    }
    switch (o.result.code) {
      case ErrorCode::kRateLimited:
      case ErrorCode::kOverloaded:
        ++shed;
        break;
      case ErrorCode::kDeadlineExceeded:
        ++expired;
        break;
      case ErrorCode::kInternal:
        // Only transport loss is acceptable here — a sampling failure
        // would also surface as kInternal but with a different message.
        EXPECT_NE(o.result.message.find("connection"), std::string::npos)
            << o.result.message;
        ++transport;
        break;
      default:
        ADD_FAILURE() << "untyped soak failure: " << o.result.message;
    }
  }
  ASSERT_EQ(outcomes.size(),
            static_cast<std::size_t>(kThreads * kJobsPerThread));
  // The run must do real work: most jobs succeed despite the fault plan.
  EXPECT_GT(ok, outcomes.size() / 2);
  ::testing::Test::RecordProperty("soak_ok", static_cast<int>(ok));
  ::testing::Test::RecordProperty("soak_shed", static_cast<int>(shed));
  ::testing::Test::RecordProperty("soak_expired", static_cast<int>(expired));
  ::testing::Test::RecordProperty("soak_transport",
                                  static_cast<int>(transport));

  // The service itself stayed coherent under fire. drain() is the barrier
  // that settles the last jobs' accounting before the counters are read.
  h.service->drain();
  const ServiceStatsSnapshot s = h.service->stats();
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.running, 0u);
  EXPECT_GE(s.completed, ok);  // dropped-reply jobs completed server-side too
}

}  // namespace
}  // namespace netshare::serve
