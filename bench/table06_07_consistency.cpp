// Tables 6 and 7 (Appendix B): protocol / domain-knowledge compliance of
// generated traces. Test 1: IP address validity; Test 2: byte/packet-count
// relationship; Test 3: port-protocol compliance; Test 4 (PCAP): minimum
// packet size.
#include <iostream>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/consistency.hpp"

using namespace netshare;

namespace {
std::string pct(double v) { return eval::format_double(100.0 * v, 2) + "%"; }
}  // namespace

int main() {
  eval::EvalOptions opt;

  eval::print_banner(std::cout,
                     "Table 6: NetFlow consistency checks (UGR16-like)");
  {
    const auto ugr = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 601);
    auto runs = eval::run_flow_models(eval::standard_flow_models(opt),
                                      ugr.flows, ugr.flows.size(), 602);
    eval::TextTable table({"test", "Real"});
    std::vector<metrics::ConsistencyResult> results{
        metrics::check_flow_consistency(ugr.flows)};
    std::vector<std::string> names;
    for (const auto& run : runs) {
      names.push_back(run.name);
      results.push_back(metrics::check_flow_consistency(run.synthetic));
    }
    eval::TextTable t({"test", "Real", names[0], names[1], names[2], names[3]});
    auto row = [&](const std::string& label, auto getter) {
      std::vector<std::string> cells{label};
      for (const auto& r : results) cells.push_back(pct(getter(r)));
      t.add_row(std::move(cells));
    };
    row("Test1 (IP validity)",
        [](const metrics::ConsistencyResult& r) { return r.test1_ip_validity; });
    row("Test2 (bytes vs packets)", [](const metrics::ConsistencyResult& r) {
      return r.test2_bytes_vs_packets;
    });
    row("Test3 (port-protocol)", [](const metrics::ConsistencyResult& r) {
      return r.test3_port_protocol;
    });
    t.print(std::cout);
  }

  eval::print_banner(std::cout,
                     "Table 7: PCAP consistency checks (CAIDA-like)");
  {
    const auto caida =
        datagen::make_dataset(datagen::DatasetId::kCaida, 2000, 603);
    auto runs = eval::run_packet_models(eval::standard_packet_models(opt),
                                        caida.packets, caida.packets.size(),
                                        604);
    std::vector<metrics::ConsistencyResult> results{
        metrics::check_packet_consistency(caida.packets)};
    std::vector<std::string> header{"test", "Real"};
    for (const auto& run : runs) {
      header.push_back(run.name);
      results.push_back(metrics::check_packet_consistency(run.synthetic));
    }
    eval::TextTable t(std::move(header));
    auto row = [&](const std::string& label, auto getter) {
      std::vector<std::string> cells{label};
      for (const auto& r : results) cells.push_back(pct(getter(r)));
      t.add_row(std::move(cells));
    };
    row("Test1 (IP validity)",
        [](const metrics::ConsistencyResult& r) { return r.test1_ip_validity; });
    row("Test2 (bytes vs packets)", [](const metrics::ConsistencyResult& r) {
      return r.test2_bytes_vs_packets;
    });
    row("Test3 (port-protocol)", [](const metrics::ConsistencyResult& r) {
      return r.test3_port_protocol;
    });
    row("Test4 (min packet size)", [](const metrics::ConsistencyResult& r) {
      return r.test4_min_packet_size;
    });
    t.print(std::cout);
  }
  return 0;
}
