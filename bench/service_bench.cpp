// Generation-service trajectory (DESIGN.md §13, §14): per-tenant latency
// percentiles and throughput under a 1 / 4 / 16-tenant mix at nominal load,
// the admission-control shed rate at 2x overload, and the rate-limiter shed
// rate for a tenant bursting far above its configured class. Emits
// BENCH_service.json (path overridable via argv[1]); the `service` kind in
// scripts/check_bench_regression gates p99 growth, zero-shed-at-nominal
// (the nominal sweep runs with the resilience layer at its defaults, so a
// rate-limiter or deadline check leaking latency into the nominal path
// shows up against the p99 baseline), that overload actually sheds, and
// that the over-rate burst sheds typed kRateLimited.
//
// The model under service is the scaled-down demo model (tiny DoppelGanger,
// 3 chunks) trained once into a temp snapshot dir — the bench measures the
// serving layer (queueing, coalescing, DRR, streaming merge), not GAN
// training.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/stopwatch.hpp"
#include "core/netshare.hpp"
#include "datagen/presets.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"

namespace {

using namespace netshare;
using netshare::Stopwatch;

core::NetShareConfig bench_config() {
  core::NetShareConfig cfg;
  cfg.use_ip2vec_ports = false;
  cfg.num_chunks = 3;
  cfg.seed_iterations = 6;
  cfg.finetune_iterations = 3;
  cfg.threads = 4;
  cfg.dg.attr_noise_dim = 4;
  cfg.dg.feat_noise_dim = 4;
  cfg.dg.attr_hidden = {16};
  cfg.dg.rnn_hidden = 16;
  cfg.dg.disc_hidden = {24};
  cfg.dg.aux_hidden = {12};
  cfg.dg.batch_size = 16;
  return cfg;
}

struct SweepRow {
  std::size_t tenants = 0;
  std::size_t jobs = 0;
  std::size_t records_per_job = 0;
  double wall_sec = 0.0;
  double jobs_per_sec = 0.0;
  double records_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double shed_rate = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_jobs = 0;
};

// Aggregates every tenant's latency histogram into one.
std::vector<std::uint64_t> merged_hist(const serve::ServiceStatsSnapshot& s) {
  std::vector<std::uint64_t> hist(serve::kLatencyBuckets, 0);
  for (const auto& t : s.tenants) {
    for (std::size_t i = 0; i < hist.size() && i < t.latency_hist.size(); ++i) {
      hist[i] += t.latency_hist[i];
    }
  }
  return hist;
}

double mean_latency_ms(const serve::ServiceStatsSnapshot& s) {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& t : s.tenants) {
    sum += t.latency_sum_ms;
    n += t.latency_count;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_service.json";

  // --- train + snapshot the demo model once -----------------------------
  const std::string snap_dir =
      (std::filesystem::temp_directory_path() /
       ("netshare_service_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(snap_dir);
  core::NetShareConfig cfg = bench_config();
  cfg.checkpoint_dir = snap_dir;
  const net::FlowTrace reference =
      datagen::make_dataset(datagen::DatasetId::kUgr16, 300, 42).flows;
  {
    Stopwatch sw;
    core::NetShare model(cfg, nullptr);
    model.fit(reference);
    std::printf("trained demo model in %.2fs\n", sw.seconds());
  }

  serve::ModelSpec spec;
  spec.config = cfg;
  spec.reference = reference;

  // --- tenant sweep at nominal load -------------------------------------
  // Fixed total work per row (jobs x records) so rows compare the tenant
  // mix, not the workload size.
  // Sized so each row's wall clock clears the gate's noise floor on a
  // shared 1-core box (sub-100ms walls make 20% tolerances meaningless).
  constexpr std::size_t kTotalJobs = 96;
  constexpr std::size_t kRecordsPerJob = 800;
  std::vector<SweepRow> sweep;
  for (std::size_t tenants : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    serve::ModelRegistry registry;
    registry.define("m", spec);
    registry.publish("m", snap_dir);
    serve::ServiceConfig scfg;
    scfg.workers = 2;
    scfg.queue_capacity = kTotalJobs + 8;  // nominal: nothing sheds
    scfg.tenant_inflight_cap = kTotalJobs;
    serve::Service service(registry, scfg);
    serve::ServeClient client(service);

    Stopwatch sw;
    std::vector<std::shared_ptr<serve::ServeClient::PendingJob>> jobs;
    jobs.reserve(kTotalJobs);
    for (std::size_t i = 0; i < kTotalJobs; ++i) {
      const std::string tenant = "tenant" + std::to_string(i % tenants);
      jobs.push_back(client.submit("m", tenant, kRecordsPerJob, 1000 + i));
    }
    std::size_t ok = 0;
    for (auto& job : jobs) ok += job->wait().ok ? 1 : 0;
    service.drain();  // settle the stats counters
    const double wall = sw.seconds();
    const serve::ServiceStatsSnapshot stats = service.stats();

    SweepRow row;
    row.tenants = tenants;
    row.jobs = kTotalJobs;
    row.records_per_job = kRecordsPerJob;
    row.wall_sec = wall;
    row.jobs_per_sec = static_cast<double>(kTotalJobs) / wall;
    row.records_per_sec =
        static_cast<double>(kTotalJobs * kRecordsPerJob) / wall;
    const std::vector<std::uint64_t> hist = merged_hist(stats);
    row.p50_ms = serve::latency_percentile_ms(hist, 0.5);
    row.p99_ms = serve::latency_percentile_ms(hist, 0.99);
    row.mean_ms = mean_latency_ms(stats);
    row.shed_rate =
        static_cast<double>(stats.shed_overloaded + stats.shed_draining) /
        static_cast<double>(kTotalJobs);
    row.batches = stats.batches;
    row.coalesced_jobs = stats.coalesced_jobs;
    sweep.push_back(row);
    std::printf(
        "tenants=%2zu: %.3fs wall, %.1f jobs/s, %.0f rec/s, "
        "p50=%.0fms p99=%.0fms, %llu batches (%llu coalesced), ok=%zu/%zu\n",
        tenants, wall, row.jobs_per_sec, row.records_per_sec, row.p50_ms,
        row.p99_ms, static_cast<unsigned long long>(row.batches),
        static_cast<unsigned long long>(row.coalesced_jobs), ok, kTotalJobs);
  }
  const double shed_rate_nominal =
      (sweep[0].shed_rate + sweep[1].shed_rate + sweep[2].shed_rate) / 3.0;

  // --- shed rate at 2x overload -----------------------------------------
  // Capacity bounds sized so the offered burst is twice what admission can
  // hold: 1 worker busy on a fat lead job + queue_capacity queued slots,
  // offered = 2 x (queue + inflight headroom). Typed sheds are the expected
  // behaviour here, not an error.
  double shed_rate_overload = 0.0;
  {
    serve::ModelRegistry registry;
    registry.define("m", spec);
    registry.publish("m", snap_dir);
    serve::ServiceConfig scfg;
    scfg.workers = 1;
    scfg.queue_capacity = 16;
    scfg.max_coalesce = 1;
    scfg.tenant_inflight_cap = 64;
    serve::Service service(registry, scfg);

    std::atomic<std::uint64_t> done{0};
    auto submit_one = [&](std::size_t n, std::uint64_t seed) {
      serve::JobCallbacks cbs;
      cbs.on_done = [&done](std::uint64_t, std::uint64_t) { ++done; };
      cbs.on_error = [](serve::ErrorCode, const std::string&) {};
      return service.submit(serve::GenerateJob{"m", "burst", n, seed},
                            std::move(cbs));
    };
    // The lead occupies the single worker so the burst meets a full queue.
    submit_one(2000, 1);
    const std::size_t offered = 2 * (scfg.queue_capacity + 1);
    std::size_t shed = 0;
    for (std::size_t i = 0; i < offered; ++i) {
      const serve::SubmitResult r = submit_one(kRecordsPerJob, 100 + i);
      if (!r.accepted) {
        ++shed;
        if (r.code != serve::ErrorCode::kOverloaded) {
          std::fprintf(stderr, "unexpected shed code %d\n",
                       static_cast<int>(r.code));
          return 1;
        }
      }
    }
    service.begin_drain();
    service.drain();
    shed_rate_overload =
        static_cast<double>(shed) / static_cast<double>(offered);
    std::printf("overload: offered %zu, shed %zu (rate %.2f), drained %llu\n",
                offered, shed, shed_rate_overload,
                static_cast<unsigned long long>(done.load()));
  }

  // --- shed rate for a tenant bursting over its rate class --------------
  // One tenant capped at 8 jobs/s offers a 64-job burst back-to-back. The
  // burst bucket admits about one second's worth instantly; the rest must
  // shed typed kRateLimited with a retry-after hint. Queue capacity is
  // oversized so nothing here can shed kOverloaded — every shed is the
  // limiter's.
  double shed_rate_rate_limited = 0.0;
  {
    serve::ModelRegistry registry;
    registry.define("m", spec);
    registry.publish("m", snap_dir);
    serve::ServiceConfig scfg;
    scfg.workers = 2;
    scfg.queue_capacity = 256;
    scfg.tenant_inflight_cap = 256;
    scfg.rate_limit.default_class.jobs_per_sec = 8.0;
    serve::Service service(registry, scfg);

    constexpr std::size_t kOffered = 64;
    std::size_t shed = 0;
    std::uint64_t hint_sum_ms = 0;
    for (std::size_t i = 0; i < kOffered; ++i) {
      serve::JobCallbacks cbs;
      cbs.on_done = [](std::uint64_t, std::uint64_t) {};
      cbs.on_error = [](serve::ErrorCode, const std::string&) {};
      const serve::SubmitResult r = service.submit(
          serve::GenerateJob{"m", "overrate", 100, 500 + i}, std::move(cbs));
      if (!r.accepted) {
        ++shed;
        hint_sum_ms += r.retry_after_ms;
        if (r.code != serve::ErrorCode::kRateLimited) {
          std::fprintf(stderr, "unexpected shed code %d\n",
                       static_cast<int>(r.code));
          return 1;
        }
      }
    }
    service.begin_drain();
    service.drain();
    shed_rate_rate_limited =
        static_cast<double>(shed) / static_cast<double>(kOffered);
    std::printf(
        "over-rate: offered %zu at 8 jobs/s cap, shed %zu (rate %.2f), "
        "mean retry-after %.0f ms\n",
        kOffered, shed, shed_rate_rate_limited,
        shed == 0 ? 0.0
                  : static_cast<double>(hint_sum_ms) /
                        static_cast<double>(shed));
  }

  std::filesystem::remove_all(snap_dir);

  // --- JSON ------------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  // The histogram bucket edges behind every percentile in this file; the
  // regression gate uses them to allow one-bucket jitter.
  std::fprintf(f, "  \"latency_edges_ms\": [");
  for (std::size_t i = 0; i < serve::kLatencyBuckets - 1; ++i) {
    std::fprintf(f, "%s%.0f", i ? ", " : "", serve::kLatencyEdgesMs[i]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"tenant_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(
        f,
        "    {\"tenants\": %zu, \"jobs\": %zu, \"records_per_job\": %zu, "
        "\"wall_sec\": %.4f, \"jobs_per_sec\": %.2f, "
        "\"records_per_sec\": %.1f, \"p50_ms\": %.1f, \"p99_ms\": %.1f, "
        "\"mean_ms\": %.2f, \"shed_rate\": %.4f, \"batches\": %llu, "
        "\"coalesced_jobs\": %llu}%s\n",
        r.tenants, r.jobs, r.records_per_job, r.wall_sec, r.jobs_per_sec,
        r.records_per_sec, r.p50_ms, r.p99_ms, r.mean_ms, r.shed_rate,
        static_cast<unsigned long long>(r.batches),
        static_cast<unsigned long long>(r.coalesced_jobs),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"shed_rate_nominal\": %.4f,\n", shed_rate_nominal);
  std::fprintf(f, "  \"shed_rate_overload\": %.4f,\n", shed_rate_overload);
  std::fprintf(f, "  \"shed_rate_rate_limited\": %.4f\n",
               shed_rate_rate_limited);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
