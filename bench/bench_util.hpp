// Shared timing helpers for the bench executables, built on
// common::Stopwatch so the benches and the library agree on one clock.
#pragma once

#include <cstddef>
#include <functional>

#include "common/stopwatch.hpp"

namespace netshare::bench {

// Runs fn repeatedly until ~min_seconds of wall clock, returns best
// per-iteration seconds (best-of is stabler than mean on a shared CI core).
inline double time_best(const std::function<void()>& fn,
                        double min_seconds = 0.3) {
  fn();  // warm-up
  double best = 1e100;
  double total = 0.0;
  while (total < min_seconds) {
    Stopwatch sw;
    fn();
    const double s = sw.seconds();
    if (s < best) best = s;
    total += s;
  }
  return best;
}

// GFLOP/s of an r×k×n product (2·r·k·n flops) that took `seconds` — the one
// accounting every micro-bench row shares, so no bench can disagree on the
// flop model.
inline double gflops(std::size_t rows, std::size_t inner, std::size_t cols,
                     double seconds) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(inner) *
         static_cast<double>(cols) / seconds / 1e9;
}

// Convenience: time fn and convert straight to GFLOP/s.
inline double gflops_of(std::size_t rows, std::size_t inner,
                        std::size_t cols, const std::function<void()>& fn,
                        double min_seconds = 0.3) {
  return gflops(rows, inner, cols, time_best(fn, min_seconds));
}

}  // namespace netshare::bench
