// Shared timing helpers for the bench executables, built on
// common::Stopwatch so the benches and the library agree on one clock.
#pragma once

#include <functional>

#include "common/stopwatch.hpp"

namespace netshare::bench {

// Runs fn repeatedly until ~min_seconds of wall clock, returns best
// per-iteration seconds (best-of is stabler than mean on a shared CI core).
inline double time_best(const std::function<void()>& fn,
                        double min_seconds = 0.3) {
  fn();  // warm-up
  double best = 1e100;
  double total = 0.0;
  while (total < min_seconds) {
    Stopwatch sw;
    fn();
    const double s = sw.seconds();
    if (s < best) best = s;
    total += s;
  }
  return best;
}

}  // namespace netshare::bench
