// Figure 13: relative error of heavy-hitter count estimation by four
// sketching algorithms (CMS, CS, UnivMon, NitroSketch) on real vs synthetic
// PCAP traces. For each sketch we compute its HH estimation error on the
// real trace and on each model's synthetic trace (10 independent sketch
// seeds), and report |err_syn - err_real| / err_real. Heavy-hitter keys per
// the paper: destination IP (CAIDA), source IP (DC), five-tuple (CA). A
// model is N/A if its synthetic trace contains no heavy hitters.
#include <functional>
#include <iostream>
#include <memory>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/rank.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/heavy_hitter.hpp"
#include "sketch/nitrosketch.hpp"
#include "sketch/univmon.hpp"

using namespace netshare;

namespace {

// The paper uses 0.1% of 1M records; at this repo's trace sizes (~2000
// packets) the same fraction would make 2-packet flows "heavy". We keep the
// heavy-hitter *count* comparable by using 1%.
constexpr double kHhThreshold = 0.01;
constexpr int kRuns = 10;

// Roughly memory-matched sketches (the paper matches memory across sketches).
std::unique_ptr<sketch::Sketch> make_sketch(const std::string& kind,
                                            std::uint64_t seed) {
  // Sketch widths scaled to the trace sizes so the real traces already
  // produce non-trivial estimation error (as the paper's 1M-record traces
  // do against its memory budgets).
  if (kind == "CMS") return std::make_unique<sketch::CountMinSketch>(3, 96, seed);
  if (kind == "CS") return std::make_unique<sketch::CountSketch>(3, 96, seed);
  if (kind == "UnivMon") {
    return std::make_unique<sketch::UnivMon>(4, 3, 32, seed);
  }
  return std::make_unique<sketch::NitroSketch>(3, 96, 0.3, seed);
}

const std::vector<std::string> kSketches{"CMS", "CS", "UnivMon", "NitroSketch"};

// Mean HH estimation error over kRuns sketch seeds; nullopt if no HHs.
std::optional<double> mean_hh_error(const std::string& kind,
                                    const std::vector<std::uint64_t>& keys) {
  double total = 0.0;
  for (int r = 0; r < kRuns; ++r) {
    auto s = make_sketch(kind, 1000 + static_cast<std::uint64_t>(r));
    const auto report = sketch::evaluate_heavy_hitters(*s, keys, kHhThreshold);
    if (report.num_heavy == 0) return std::nullopt;
    total += report.mean_relative_error;
  }
  return total / kRuns;
}

void sketch_figure(const std::string& title, datagen::DatasetId dataset,
                   sketch::HeavyHitterKey key_kind, std::size_t records,
                   std::uint64_t seed) {
  eval::print_banner(std::cout, title);
  const auto bundle = datagen::make_dataset(dataset, records, seed);
  const auto real_keys = sketch::extract_keys(bundle.packets, key_kind);

  eval::EvalOptions opt;
  auto runs = eval::run_packet_models(eval::standard_packet_models(opt),
                                      bundle.packets, bundle.packets.size(),
                                      seed + 1);

  std::vector<std::string> header{"model"};
  for (const auto& s : kSketches) header.push_back(s);
  eval::TextTable table(std::move(header));

  // Real sketch errors (denominators).
  std::vector<std::optional<double>> real_err;
  for (const auto& s : kSketches) real_err.push_back(mean_hh_error(s, real_keys));

  // Per-model relative errors + rank correlation of sketch orderings.
  std::vector<double> real_rank_vals;
  for (const auto& e : real_err) real_rank_vals.push_back(e.value_or(0.0));

  for (const auto& run : runs) {
    const auto syn_keys = sketch::extract_keys(run.synthetic, key_kind);
    std::vector<std::string> cells{run.name};
    std::vector<double> syn_rank_vals;
    bool all_valid = true;
    for (std::size_t s = 0; s < kSketches.size(); ++s) {
      const auto syn_err = mean_hh_error(kSketches[s], syn_keys);
      if (!syn_err || !real_err[s] || *real_err[s] <= 0.0) {
        cells.push_back("N/A");
        all_valid = false;
        syn_rank_vals.push_back(0.0);
        continue;
      }
      const double rel = std::fabs(*syn_err - *real_err[s]) / *real_err[s];
      cells.push_back(eval::format_double(100.0 * rel, 1) + "%");
      syn_rank_vals.push_back(*syn_err);
    }
    if (all_valid) {
      cells.push_back("rank-corr " +
                      eval::format_double(
                          metrics::spearman(real_rank_vals, syn_rank_vals), 2));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  sketch_figure("Figure 13a: CAIDA (HH key: destination IP)",
                datagen::DatasetId::kCaida, sketch::HeavyHitterKey::kDstIp,
                2500, 1301);
  sketch_figure("Figure 13b: DC (HH key: source IP)", datagen::DatasetId::kDc,
                sketch::HeavyHitterKey::kSrcIp, 2500, 1302);
  sketch_figure("Figure 13c: CA (HH key: five-tuple)", datagen::DatasetId::kCa,
                sketch::HeavyHitterKey::kFiveTuple, 2500, 1303);
  std::cout << "\nExpected shape (paper): NetShare achieves the smallest "
               "relative errors (~48% smaller on average) and preserves "
               "sketch rankings.\n";
  return 0;
}
