// Figure 15: packet-level query distributions under DP on CAIDA-like data —
// source-port and packet-length CDFs for: real data, NetShare without noise
// (eps = inf), naive DP-SGD at eps = 24, and DP with same-domain public
// pretraining at eps = 24.
#include <iostream>
#include <optional>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "privacy/accountant.hpp"

using namespace netshare;

namespace {

core::NetShareConfig base_config(bool dp) {
  eval::EvalOptions opt;
  core::NetShareConfig cfg = eval::bench_netshare_config(opt);
  cfg.netshare_v0 = true;
  cfg.max_seq_len = 6;
  cfg.seed_iterations = eval::scaled(dp ? 80 : 300);
  cfg.dg.batch_size = dp ? 16 : 64;
  cfg.dp = dp;
  return cfg;
}

net::PacketTrace train_and_generate(
    const net::PacketTrace& priv,
    const std::optional<std::vector<double>>& snapshot, bool dp,
    double target_eps, std::uint64_t seed) {
  core::NetShareConfig cfg = base_config(dp);
  cfg.seed = seed;
  cfg.public_snapshot = snapshot;
  if (dp) {
    const double q = static_cast<double>(cfg.dg.batch_size) /
                     static_cast<double>(priv.size());
    const auto steps = static_cast<std::size_t>(cfg.seed_iterations) *
                       static_cast<std::size_t>(cfg.dg.d_steps_per_g);
    cfg.dp_config.noise_multiplier =
        privacy::noise_multiplier_for_epsilon(target_eps, q, steps, 1e-5);
  }
  core::NetShare model(cfg, eval::shared_public_ip2vec());
  model.fit(priv);
  Rng rng(seed + 1);
  return model.generate_packets(priv.size(), rng);
}

std::vector<double> src_ports(const net::PacketTrace& t) {
  std::vector<double> v;
  for (const auto& p : t.packets) v.push_back(p.key.src_port);
  return v;
}
std::vector<double> sizes(const net::PacketTrace& t) {
  std::vector<double> v;
  for (const auto& p : t.packets) v.push_back(static_cast<double>(p.size));
  return v;
}

}  // namespace

int main() {
  const auto priv = datagen::make_dataset(datagen::DatasetId::kCaida, 900, 1501);
  const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub, 900, 1502);

  std::cerr << "  [pretrain] public model...\n";
  std::vector<double> same_snap;
  {
    core::NetShareConfig cfg = base_config(false);
    core::NetShare pub_model(cfg, eval::shared_public_ip2vec());
    pub_model.fit(pub.packets);
    same_snap = pub_model.snapshot();
  }

  std::cerr << "  [train] eps=inf...\n";
  const auto no_dp = train_and_generate(priv.packets, std::nullopt, false, 0, 1510);
  std::cerr << "  [train] naive DP eps=24...\n";
  const auto naive = train_and_generate(priv.packets, std::nullopt, true, 24.0, 1511);
  std::cerr << "  [train] DP-pretrain-SAME eps=24...\n";
  const auto pre = train_and_generate(priv.packets, same_snap, true, 24.0, 1512);

  eval::print_banner(std::cout, "Figure 15a: source port number CDF");
  eval::print_cdf(std::cout, "Real", src_ports(priv.packets));
  eval::print_cdf(std::cout, "NetShare (eps=inf)", src_ports(no_dp));
  eval::print_cdf(std::cout, "NetShare (eps=24, Naive DP)", src_ports(naive));
  eval::print_cdf(std::cout, "NetShare (eps=24, DP-pretrain-SAME)",
                  src_ports(pre));

  eval::print_banner(std::cout, "Figure 15b: packet length CDF (bytes)");
  eval::print_cdf(std::cout, "Real", sizes(priv.packets));
  eval::print_cdf(std::cout, "NetShare (eps=inf)", sizes(no_dp));
  eval::print_cdf(std::cout, "NetShare (eps=24, Naive DP)", sizes(naive));
  eval::print_cdf(std::cout, "NetShare (eps=24, DP-pretrain-SAME)", sizes(pre));

  std::cout << "\nExpected shape (paper): eps=inf closely tracks the real "
               "CDFs; naive DP at eps=24 is visibly distorted; same-domain "
               "pretraining mitigates but does not eliminate the gap.\n";
  return 0;
}
