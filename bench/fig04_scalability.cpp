// Figure 4: scalability-fidelity trade-offs on UGR16 (NetFlow) and CAIDA
// (PCAP). Scalability = total CPU seconds spent training (thread-CPU summed
// across parallel chunk trainers, the analogue of the paper's CPU-hours);
// fidelity = mean JSD over categorical fields and mean normalized EMD over
// continuous fields. Includes NetShare-V0 (monolithic, no chunking), which
// is more expensive for comparable fidelity — the paper's Insight 3.
#include <iostream>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/field_metrics.hpp"

using namespace netshare;

namespace {

void scalability_figure(const std::string& title, datagen::DatasetId dataset,
                        std::size_t records, std::uint64_t seed) {
  eval::print_banner(std::cout, title);
  eval::EvalOptions opt;
  opt.include_netshare_v0 = true;
  const auto bundle = datagen::make_dataset(dataset, records, seed);

  std::vector<std::string> names;
  std::vector<double> cpu;
  std::vector<metrics::FidelityReport> reports;
  if (bundle.is_pcap) {
    auto runs = eval::run_packet_models(eval::standard_packet_models(opt),
                                        bundle.packets, bundle.packets.size(),
                                        seed + 1);
    for (const auto& run : runs) {
      names.push_back(run.name);
      cpu.push_back(run.cpu_seconds);
      reports.push_back(metrics::compare_packets(bundle.packets, run.synthetic));
    }
  } else {
    auto runs = eval::run_flow_models(eval::standard_flow_models(opt),
                                      bundle.flows, bundle.flows.size(),
                                      seed + 1);
    for (const auto& run : runs) {
      names.push_back(run.name);
      cpu.push_back(run.cpu_seconds);
      reports.push_back(metrics::compare_flows(bundle.flows, run.synthetic));
    }
  }

  const auto norm_emd = metrics::mean_normalized_emds(reports);
  eval::TextTable table(
      {"model", "train CPU (s)", "avg JSD", "avg normalized EMD"});
  for (std::size_t m = 0; m < names.size(); ++m) {
    table.add_row({names[m], eval::format_double(cpu[m], 1),
                   eval::format_double(reports[m].mean_jsd(), 3),
                   eval::format_double(norm_emd[m], 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  scalability_figure("Figure 4a/4b: UGR16 (NetFlow) scalability-fidelity",
                     datagen::DatasetId::kUgr16, 1200, 401);
  scalability_figure("Figure 4c/4d: CAIDA (PCAP) scalability-fidelity",
                     datagen::DatasetId::kCaida, 2000, 402);
  std::cout << "\nExpected shape (paper): NetShare reaches the best fidelity; "
               "NetShare-V0 reaches similar fidelity at ~an order of magnitude "
               "more CPU; simple tabular GANs are cheap but low-fidelity.\n";
  return 0;
}
