// Figure 14 + Table 4: header-based anomaly detection with NetML.
//
// For each PCAP dataset and each of NetML's six flow representations, run
// the OCSVM detector on the real and synthetic traces (5 runs each) and
// compare anomaly ratios: |ratio_syn - ratio_real| / ratio_real. NetML only
// processes flows with > 1 packet, so per-packet baselines that generate
// none are N/A (exactly as in the paper's plots). Table 4 reports the
// Spearman rank correlation of the modes' orderings.
#include <iostream>
#include <optional>

#include "datagen/presets.hpp"
#include "downstream/netml.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/rank.hpp"

using namespace netshare;

namespace {

constexpr int kRuns = 5;

std::optional<double> mean_ratio(const net::PacketTrace& trace,
                                 downstream::NetmlMode mode,
                                 std::uint64_t seed) {
  double total = 0.0;
  for (int r = 0; r < kRuns; ++r) {
    try {
      total += downstream::netml_anomaly_ratio(
          trace, mode, downstream::OcSvmConfig{}, seed + static_cast<std::uint64_t>(r));
    } catch (const std::invalid_argument&) {
      return std::nullopt;  // too few multi-packet flows
    }
  }
  return total / kRuns;
}

void netml_figure(const std::string& title, datagen::DatasetId dataset,
                  std::size_t records, std::uint64_t seed,
                  eval::TextTable& table4) {
  eval::print_banner(std::cout, title);
  const auto bundle = datagen::make_dataset(dataset, records, seed);

  const auto modes = downstream::all_netml_modes();
  std::vector<double> real_ratios;
  for (auto mode : modes) {
    const auto r = mean_ratio(bundle.packets, mode, seed + 10);
    real_ratios.push_back(r.value_or(0.0));
  }

  eval::EvalOptions opt;
  auto runs = eval::run_packet_models(eval::standard_packet_models(opt),
                                      bundle.packets, bundle.packets.size(),
                                      seed + 1);

  std::vector<std::string> header{"model"};
  for (auto mode : modes) header.push_back(downstream::netml_mode_name(mode));
  eval::TextTable table(std::move(header));

  std::vector<std::string> t4_row{bundle.name};
  for (const auto& run : runs) {
    std::vector<std::string> cells{run.name};
    std::vector<double> syn_ratios;
    bool all_valid = true;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const auto syn = mean_ratio(run.synthetic, modes[m], seed + 20);
      if (!syn || real_ratios[m] <= 0.0) {
        cells.push_back("N/A");
        all_valid = false;
        syn_ratios.push_back(0.0);
        continue;
      }
      const double rel = std::fabs(*syn - real_ratios[m]) / real_ratios[m];
      cells.push_back(eval::format_double(100.0 * rel, 1) + "%");
      syn_ratios.push_back(*syn);
    }
    table.add_row(std::move(cells));
    t4_row.push_back(all_valid ? eval::format_double(metrics::spearman(
                                     real_ratios, syn_ratios), 2)
                               : "N/A");
  }
  table.print(std::cout);
  table4.add_row(std::move(t4_row));
}

}  // namespace

int main() {
  eval::TextTable table4({"dataset", "NetShare", "CTGAN", "PAC-GAN",
                          "PacketCGAN", "Flow-WGAN"});
  netml_figure("Figure 14a: CAIDA anomaly-detection relative error",
               datagen::DatasetId::kCaida, 2000, 1401, table4);
  netml_figure("Figure 14b: DC anomaly-detection relative error",
               datagen::DatasetId::kDc, 2000, 1402, table4);
  netml_figure("Figure 14c: CA anomaly-detection relative error",
               datagen::DatasetId::kCa, 2000, 1403, table4);
  eval::print_banner(std::cout,
                     "Table 4: rank correlation of NetML modes (N/A = model "
                     "generates no multi-packet flows)");
  table4.print(std::cout);
  return 0;
}
