// Figure 2: distributions of NetFlow's unbounded (large-support) fields on
// UGR16-like data — packets per flow (left) and bytes per flow (right).
// Baselines compress the range and miss small values; NetShare's log
// transform (Insight 2) preserves both.
#include <iostream>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/divergence.hpp"

using namespace netshare;

namespace {
std::vector<double> field(const net::FlowTrace& t, bool bytes) {
  std::vector<double> v;
  v.reserve(t.size());
  for (const auto& r : t.records) {
    v.push_back(static_cast<double>(bytes ? r.bytes : r.packets));
  }
  return v;
}
}  // namespace

int main() {
  eval::EvalOptions opt;
  const auto ugr = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 201);
  auto runs = eval::run_flow_models(eval::standard_flow_models(opt), ugr.flows,
                                    ugr.flows.size(), 202);

  for (const bool bytes : {false, true}) {
    eval::print_banner(std::cout, bytes
                                      ? "Figure 2b: # bytes per flow (UGR16)"
                                      : "Figure 2a: # packets per flow (UGR16)");
    const auto real = field(ugr.flows, bytes);
    eval::print_cdf(std::cout, "Real", real);
    eval::TextTable table({"model", "EMD vs real", "max value"});
    for (const auto& run : runs) {
      auto syn = field(run.synthetic, bytes);
      eval::print_cdf(std::cout, run.name, syn);
      double mx = 0;
      for (double v : syn) mx = std::max(mx, v);
      table.add_row({run.name,
                     eval::format_double(metrics::emd_1d(real, syn), 1),
                     eval::format_double(mx, 0)});
    }
    std::cout << '\n';
    table.print(std::cout);
  }
  return 0;
}
