// Micro-benchmark of the kernel layer: serial reference vs the scalar tier
// vs the dispatched (SIMD where supported) tier, plus end-to-end
// DoppelGANger training throughput. The thread sweep is clamped to
// hardware_concurrency — thread counts beyond the machine's cores measure
// oversubscription, not scaling — with the requested sweep and the clamp
// recorded in the JSON for transparency. Emits BENCH_kernels.json (path
// overridable via argv[1]); scripts/check_bench_regression gates it against
// the committed baseline, comparing only like-for-like thread counts.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"

using namespace netshare;
using bench::gflops;
using bench::time_best;
using ml::Matrix;

namespace {

const std::size_t kRequestedThreadCounts[] = {1, 2, 4, 8};

// The benched sweep: requested counts that fit in the machine (always at
// least {1}).
std::vector<std::size_t> clamped_thread_counts() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw > 0 ? hw : 1;
  std::vector<std::size_t> counts;
  for (std::size_t t : kRequestedThreadCounts) {
    if (t <= cores) counts.push_back(t);
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

ml::kernels::KernelConfig tier_cfg(ml::kernels::SimdTier tier,
                                   std::size_t threads) {
  ml::kernels::KernelConfig cfg;
  cfg.threads = threads;
  cfg.min_parallel_flops = 0;
  cfg.simd = tier;
  return cfg;
}

// One throughput row: serial reference plus, per benched thread count, the
// dispatched tier ("kernel") and the pinned scalar tier ("scalar").
struct TierRow {
  double reference = 0.0;
  std::vector<double> kernel;
  std::vector<double> scalar;
};

enum class Op { kMatmul, kTransA, kTransB };

TierRow bench_op(Op op, std::size_t n,
                 const std::vector<std::size_t>& threads) {
  Rng rng(op == Op::kMatmul ? 2 : 3);
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  TierRow row;
  const auto run_ref = [&] {
    switch (op) {
      case Op::kMatmul: ml::reference::matmul(a, b); break;
      case Op::kTransA: ml::reference::matmul_trans_a(a, b); break;
      case Op::kTransB: ml::reference::matmul_trans_b(a, b); break;
    }
  };
  row.reference = gflops(n, n, n, time_best(run_ref));
  const auto run_kernel = [&] {
    switch (op) {
      case Op::kMatmul: ml::matmul(a, b); break;
      case Op::kTransA: ml::matmul_trans_a(a, b); break;
      case Op::kTransB: ml::matmul_trans_b(a, b); break;
    }
  };
  for (const std::size_t t : threads) {
    {
      ml::kernels::ConfigOverride guard(
          tier_cfg(ml::kernels::SimdTier::kAvx2, t));
      row.kernel.push_back(gflops(n, n, n, time_best(run_kernel)));
    }
    {
      ml::kernels::ConfigOverride guard(
          tier_cfg(ml::kernels::SimdTier::kScalar, t));
      row.scalar.push_back(gflops(n, n, n, time_best(run_kernel)));
    }
  }
  return row;
}

// End-to-end: DoppelGANger iterations/sec on a toy trace at each benched
// thread count, dispatched tier and pinned-scalar tier. Training is bitwise
// identical across every row; only wall-clock may differ.
gan::TimeSeriesDataset toy_data(std::size_t n) {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{ml::OutputSegment::Kind::kSoftmax, 3},
                             {ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 8;
  gan::TimeSeriesDataset data;
  data.spec = spec;
  data.attributes = Matrix(n, 4);
  data.features.assign(8, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = 2 * cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

struct DgResult {
  double iters_per_sec;
  double allocs_per_iter;  // steady-state Matrix allocations per iteration
};

DgResult bench_dg_iters_per_sec(ml::kernels::SimdTier tier,
                                std::size_t threads, int warmup,
                                int iterations) {
  ml::kernels::ConfigOverride guard(tier_cfg(tier, threads));
  const gan::TimeSeriesDataset data = toy_data(256);
  gan::DgConfig dg;  // paper-shaped defaults: rnn 48, disc {96,96}
  gan::DoppelGanger model(data.spec, dg, 99);
  // Warm-up iterations populate the workspace pools, module buffers, and
  // the autotuner's shape memos so the timed window measures steady state.
  model.fit(data, warmup);
  ml::alloc_counter::reset();
  Stopwatch sw;
  model.fit(data, iterations);
  const double s = sw.seconds();
  return {iterations / s,
          static_cast<double>(ml::alloc_counter::count()) / iterations};
}

// Fused GRU gate vs the unfused matmul + add + bias + activation
// composition, at the paper-shaped GRU step (batch 64, input 12, hidden 48).
// fused_scalar pins the scalar tier for the SIMD-vs-scalar delta.
double bench_gate(bool fused, ml::kernels::SimdTier tier) {
  ml::kernels::ConfigOverride guard(tier_cfg(tier, 1));
  Rng rng(5);
  const Matrix x = Matrix::randn(64, 12, rng);
  const Matrix wx = Matrix::randn(12, 48, rng);
  const Matrix h = Matrix::randn(64, 48, rng);
  const Matrix wh = Matrix::randn(48, 48, rng);
  const Matrix bias = Matrix::randn(1, 48, rng);
  Matrix scratch, out;
  const double sec = time_best([&] {
    if (fused) {
      ml::kernels::gru_gate_into(x, wx, h, wh, bias,
                                 ml::kernels::GateAct::kSigmoid, scratch, out);
    } else {
      Matrix u = ml::matmul(x, wx) + ml::matmul(h, wh);
      ml::add_row_broadcast_inplace(u, bias);
      ml::sigmoid_inplace(u);
    }
  });
  return 1.0 / sec;  // gates/sec
}

std::string json_array(const std::vector<double>& v) {
  std::string s = "[";
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.3f", i ? ", " : "", v[i]);
    s += buf;
  }
  return s + "]";
}

std::string json_array(const std::vector<std::size_t>& v) {
  std::string s = "[";
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%zu", i ? ", " : "", v[i]);
    s += buf;
  }
  return s + "]";
}

const char* tier_name(ml::kernels::SimdTier t) {
  return t == ml::kernels::SimdTier::kAvx2 ? "avx2" : "scalar";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const int dg_warmup = 3;
  const int dg_iterations = 20;

  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<std::size_t> threads = clamped_thread_counts();
  std::size_t max_requested = 0;
  for (std::size_t t : kRequestedThreadCounts) {
    max_requested = std::max(max_requested, t);
  }
  // Bench honesty: the flag records that the requested sweep was clamped so
  // a reader of the JSON knows why thread columns are missing on small boxes.
  const bool clamped = hw > 0 && max_requested > hw;
  if (clamped) {
    std::printf("NOTE: clamping thread sweep to %zu count(s) on %u core(s); "
                "requested up to %zu\n",
                threads.size(), hw, max_requested);
  }
  const bool simd_supported =
      ml::kernels::supported_tier() == ml::kernels::SimdTier::kAvx2;
  const char* simd_active = tier_name(ml::kernels::active_tier());
  std::printf("simd: supported=%s active=%s\n",
              simd_supported ? "true" : "false", simd_active);

  const std::size_t mm_sizes[] = {128, 256, 512};
  std::vector<TierRow> mm;
  for (std::size_t n : mm_sizes) {
    mm.push_back(bench_op(Op::kMatmul, n, threads));
    std::printf("matmul %zu^3: ref %.2f, scalar@1t %.2f, kernel@1t %.2f "
                "GFLOP/s (simd/scalar %.2fx)\n",
                n, mm.back().reference, mm.back().scalar[0],
                mm.back().kernel[0], mm.back().kernel[0] / mm.back().scalar[0]);
  }
  const TierRow ta = bench_op(Op::kTransA, 256, threads);
  const TierRow tb = bench_op(Op::kTransB, 256, threads);
  for (const auto* row : {&ta, &tb}) {
    std::printf("%s 256: ref %.2f, scalar@1t %.2f, kernel@1t %.2f GFLOP/s "
                "(simd/scalar %.2fx, kernel/ref %.2fx)\n",
                row == &ta ? "matmul_trans_a" : "matmul_trans_b",
                row->reference, row->scalar[0], row->kernel[0],
                row->kernel[0] / row->scalar[0],
                row->kernel[0] / row->reference);
  }

  const double gate_unfused =
      bench_gate(false, ml::kernels::SimdTier::kAvx2);
  const double gate_fused = bench_gate(true, ml::kernels::SimdTier::kAvx2);
  const double gate_fused_scalar =
      bench_gate(true, ml::kernels::SimdTier::kScalar);
  std::printf("gru gate 64x12x48: unfused %.0f/s, fused %.0f/s (%.2fx), "
              "fused_scalar %.0f/s\n",
              gate_unfused, gate_fused, gate_fused / gate_unfused,
              gate_fused_scalar);

  std::vector<double> dg_ips, dg_allocs, dg_scalar_ips;
  for (const std::size_t t : threads) {
    const DgResult r = bench_dg_iters_per_sec(ml::kernels::SimdTier::kAvx2, t,
                                              dg_warmup, dg_iterations);
    const DgResult rs = bench_dg_iters_per_sec(
        ml::kernels::SimdTier::kScalar, t, dg_warmup, dg_iterations);
    dg_ips.push_back(r.iters_per_sec);
    dg_allocs.push_back(r.allocs_per_iter);
    dg_scalar_ips.push_back(rs.iters_per_sec);
    std::printf("doppelganger @%zu threads: %.2f iters/sec (scalar tier "
                "%.2f), %.1f allocs/iter\n",
                t, r.iters_per_sec, rs.iters_per_sec, r.allocs_per_iter);
  }

  // Autotune transparency: the plans the benches above converged on, read
  // through a Workspace (the per-model snapshot path models use).
  ml::Workspace ws;
  struct PlanQuery {
    const char* op_name;
    ml::kernels::TuneOp op;
    std::size_t m, k, n;
  };
  const PlanQuery queries[] = {
      {"matmul", ml::kernels::TuneOp::kMatmul, 128, 128, 128},
      {"matmul", ml::kernels::TuneOp::kMatmul, 256, 256, 256},
      {"matmul", ml::kernels::TuneOp::kMatmul, 512, 512, 512},
      {"trans_a", ml::kernels::TuneOp::kTransA, 256, 256, 256},
      {"trans_b", ml::kernels::TuneOp::kTransB, 256, 256, 256},
      {"gate", ml::kernels::TuneOp::kGate, 64, 60, 48},
  };

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"requested_thread_counts\": [1, 2, 4, 8],\n");
  std::fprintf(f, "  \"thread_counts\": %s,\n", json_array(threads).c_str());
  std::fprintf(f, "  \"thread_counts_exceed_cores\": %s,\n",
               clamped ? "true" : "false");
  std::fprintf(f, "  \"simd\": {\"supported\": %s, \"active\": \"%s\"},\n",
               simd_supported ? "true" : "false", simd_active);
  std::fprintf(f, "  \"matmul_gflops\": [\n");
  for (std::size_t i = 0; i < mm.size(); ++i) {
    std::fprintf(f,
                 "    {\"size\": %zu, \"reference\": %.3f, \"kernel\": %s, "
                 "\"scalar\": %s, \"simd_speedup_1t\": %.3f}%s\n",
                 mm_sizes[i], mm[i].reference,
                 json_array(mm[i].kernel).c_str(),
                 json_array(mm[i].scalar).c_str(),
                 mm[i].kernel[0] / mm[i].scalar[0],
                 i + 1 < mm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  for (const auto* row : {&ta, &tb}) {
    std::fprintf(f,
                 "  \"matmul_trans_%s_256_gflops\": {\"reference\": %.3f, "
                 "\"kernel\": %s, \"scalar\": %s, "
                 "\"simd_speedup_1t\": %.3f},\n",
                 row == &ta ? "a" : "b", row->reference,
                 json_array(row->kernel).c_str(),
                 json_array(row->scalar).c_str(),
                 row->kernel[0] / row->scalar[0]);
  }
  std::fprintf(f,
               "  \"gru_gate_per_sec\": {\"unfused\": %.1f, \"fused\": %.1f, "
               "\"fused_scalar\": %.1f},\n",
               gate_unfused, gate_fused, gate_fused_scalar);
  std::fprintf(f, "  \"autotune_plans\": [\n");
  for (std::size_t i = 0; i < std::size(queries); ++i) {
    const PlanQuery& q = queries[i];
    const ml::kernels::TunePlan plan = ws.tune_plan(q.op, q.m, q.k, q.n);
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": [%zu, %zu, %zu], "
                 "\"jtile\": %u, \"decided\": %s}%s\n",
                 q.op_name, q.m, q.k, q.n, plan.jtile,
                 plan.decided ? "true" : "false",
                 i + 1 < std::size(queries) ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"doppelganger_iters_per_sec\": {\"iterations\": %d, "
               "\"warmup_iterations\": %d, \"kernel\": %s, \"scalar\": %s},\n",
               dg_iterations, dg_warmup, json_array(dg_ips).c_str(),
               json_array(dg_scalar_ips).c_str());
  std::fprintf(f, "  \"doppelganger_allocs_per_iter\": %s\n",
               json_array(dg_allocs).c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
