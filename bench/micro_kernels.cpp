// Micro-benchmark of the blocked parallel matmul kernel layer against the
// serial reference kernels, plus end-to-end DoppelGANger training
// throughput, at 1/2/4/8 kernel threads. Emits BENCH_kernels.json (path
// overridable via argv[1]) so later PRs have a perf trajectory to regress
// against; the first recorded baseline is committed at the repo root and
// referenced from EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"

using namespace netshare;
using bench::time_best;
using ml::Matrix;

namespace {

double gflops(std::size_t r, std::size_t k, std::size_t c, double seconds) {
  return 2.0 * static_cast<double>(r) * static_cast<double>(k) *
         static_cast<double>(c) / seconds / 1e9;
}

const std::size_t kThreadCounts[] = {1, 2, 4, 8};

struct MatmulRow {
  std::size_t n;
  double reference;
  double kernel[4];  // GFLOP/s at kThreadCounts
};

MatmulRow bench_matmul(std::size_t n) {
  Rng rng(2);
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  MatmulRow row{};
  row.n = n;
  row.reference =
      gflops(n, n, n, time_best([&] { ml::reference::matmul(a, b); }));
  for (int t = 0; t < 4; ++t) {
    ml::kernels::KernelConfig cfg;
    cfg.threads = kThreadCounts[t];
    cfg.min_parallel_flops = 0;
    ml::kernels::ConfigOverride guard(cfg);
    row.kernel[t] = gflops(n, n, n, time_best([&] { ml::matmul(a, b); }));
  }
  return row;
}

// Shapes sized like the GRU/MLP hot paths (batch x hidden reductions).
struct TransRow {
  const char* name;
  double reference;
  double kernel[4];
};

TransRow bench_trans(bool trans_a) {
  Rng rng(3);
  const std::size_t n = 256;
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  TransRow row{};
  row.name = trans_a ? "matmul_trans_a" : "matmul_trans_b";
  const auto ref = [&] {
    trans_a ? ml::reference::matmul_trans_a(a, b)
            : ml::reference::matmul_trans_b(a, b);
  };
  row.reference = gflops(n, n, n, time_best(ref));
  for (int t = 0; t < 4; ++t) {
    ml::kernels::KernelConfig cfg;
    cfg.threads = kThreadCounts[t];
    cfg.min_parallel_flops = 0;
    ml::kernels::ConfigOverride guard(cfg);
    const auto run = [&] {
      trans_a ? ml::matmul_trans_a(a, b) : ml::matmul_trans_b(a, b);
    };
    row.kernel[t] = gflops(n, n, n, time_best(run));
  }
  return row;
}

// End-to-end: DoppelGANger iterations/sec on a toy trace at each kernel
// thread count. Training is bitwise identical across rows; only wall-clock
// may differ.
gan::TimeSeriesDataset toy_data(std::size_t n) {
  gan::TimeSeriesSpec spec;
  spec.attribute_segments = {{ml::OutputSegment::Kind::kSoftmax, 3},
                             {ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.feature_segments = {{ml::OutputSegment::Kind::kSigmoid, 1}};
  spec.max_len = 8;
  gan::TimeSeriesDataset data;
  data.spec = spec;
  data.attributes = Matrix(n, 4);
  data.features.assign(8, Matrix(n, 1));
  data.lengths.resize(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
    data.attributes(i, cat) = 1.0;
    data.attributes(i, 3) = rng.uniform(0.2, 0.8);
    data.lengths[i] = 2 * cat + 1;
    for (std::size_t t = 0; t < data.lengths[i]; ++t) {
      data.features[t](i, 0) = rng.uniform(0.1, 0.9);
    }
  }
  return data;
}

struct DgResult {
  double iters_per_sec;
  double allocs_per_iter;  // steady-state Matrix allocations per iteration
};

DgResult bench_dg_iters_per_sec(std::size_t threads, int warmup,
                                int iterations) {
  ml::kernels::KernelConfig cfg;
  cfg.threads = threads;
  cfg.min_parallel_flops = 0;
  ml::kernels::ConfigOverride guard(cfg);
  const gan::TimeSeriesDataset data = toy_data(256);
  gan::DgConfig dg;  // paper-shaped defaults: rnn 48, disc {96,96}
  gan::DoppelGanger model(data.spec, dg, 99);
  // Warm-up iterations populate the workspace pools and module buffers so
  // the timed window measures the steady state, not first-touch allocation.
  model.fit(data, warmup);
  ml::alloc_counter::reset();
  Stopwatch sw;
  model.fit(data, iterations);
  const double s = sw.seconds();
  return {iterations / s,
          static_cast<double>(ml::alloc_counter::count()) / iterations};
}

// Fused GRU gate vs the unfused matmul + add + bias + activation
// composition, at the paper-shaped GRU step (batch 64, input 12, hidden 48).
double bench_gate(bool fused) {
  Rng rng(5);
  const Matrix x = Matrix::randn(64, 12, rng);
  const Matrix wx = Matrix::randn(12, 48, rng);
  const Matrix h = Matrix::randn(64, 48, rng);
  const Matrix wh = Matrix::randn(48, 48, rng);
  const Matrix bias = Matrix::randn(1, 48, rng);
  Matrix scratch, out;
  const double sec = time_best([&] {
    if (fused) {
      ml::kernels::gru_gate_into(x, wx, h, wh, bias,
                                 ml::kernels::GateAct::kSigmoid, scratch, out);
    } else {
      Matrix u = ml::matmul(x, wx) + ml::matmul(h, wh);
      ml::add_row_broadcast_inplace(u, bias);
      ml::sigmoid_inplace(u);
    }
  });
  return 1.0 / sec;  // gates/sec
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const int dg_warmup = 3;
  const int dg_iterations = 20;

  // Bench honesty: thread counts beyond the machine's cores measure
  // oversubscription, not scaling — flag it up front and in the JSON.
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t max_threads = 0;
  for (std::size_t t : kThreadCounts) max_threads = std::max(max_threads, t);
  const bool oversubscribed = hw > 0 && max_threads > hw;
  if (oversubscribed) {
    std::printf("WARNING: benchmarking up to %zu kernel threads on %u "
                "core(s); multi-thread rows measure oversubscription, only "
                "the 1-thread column is meaningful for regressions\n",
                max_threads, hw);
  }

  std::vector<MatmulRow> mm;
  for (std::size_t n : {128, 256, 512}) {
    mm.push_back(bench_matmul(n));
    std::printf("matmul %zux%zux%zu: ref %.2f GFLOP/s, kernel@4t %.2f "
                "GFLOP/s (%.2fx)\n",
                n, n, n, mm.back().reference, mm.back().kernel[2],
                mm.back().kernel[2] / mm.back().reference);
  }
  std::vector<TransRow> trans{bench_trans(true), bench_trans(false)};
  for (const auto& row : trans) {
    std::printf("%s 256: ref %.2f GFLOP/s, kernel@4t %.2f GFLOP/s (%.2fx)\n",
                row.name, row.reference, row.kernel[2],
                row.kernel[2] / row.reference);
  }

  const double gate_unfused = bench_gate(false);
  const double gate_fused = bench_gate(true);
  std::printf("gru gate 64x12x48: unfused %.0f/s, fused %.0f/s (%.2fx)\n",
              gate_unfused, gate_fused, gate_fused / gate_unfused);

  DgResult dg[4];
  for (int t = 0; t < 4; ++t) {
    dg[t] = bench_dg_iters_per_sec(kThreadCounts[t], dg_warmup, dg_iterations);
    std::printf("doppelganger @%zu kernel threads: %.2f iters/sec, "
                "%.1f allocs/iter\n",
                kThreadCounts[t], dg[t].iters_per_sec, dg[t].allocs_per_iter);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"thread_counts\": [1, 2, 4, 8],\n");
  std::fprintf(f, "  \"matmul_gflops\": [\n");
  for (std::size_t i = 0; i < mm.size(); ++i) {
    std::fprintf(f,
                 "    {\"size\": %zu, \"reference\": %.3f, "
                 "\"kernel\": [%.3f, %.3f, %.3f, %.3f]}%s\n",
                 mm[i].n, mm[i].reference, mm[i].kernel[0], mm[i].kernel[1],
                 mm[i].kernel[2], mm[i].kernel[3],
                 i + 1 < mm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  for (const auto& row : trans) {
    std::fprintf(f,
                 "  \"%s_256_gflops\": {\"reference\": %.3f, "
                 "\"kernel\": [%.3f, %.3f, %.3f, %.3f]},\n",
                 row.name, row.reference, row.kernel[0], row.kernel[1],
                 row.kernel[2], row.kernel[3]);
  }
  std::fprintf(f,
               "  \"gru_gate_per_sec\": {\"unfused\": %.1f, \"fused\": %.1f},\n",
               gate_unfused, gate_fused);
  std::fprintf(f,
               "  \"doppelganger_iters_per_sec\": {\"iterations\": %d, "
               "\"warmup_iterations\": %d, "
               "\"kernel\": [%.3f, %.3f, %.3f, %.3f]},\n",
               dg_iterations, dg_warmup, dg[0].iters_per_sec,
               dg[1].iters_per_sec, dg[2].iters_per_sec, dg[3].iters_per_sec);
  std::fprintf(f,
               "  \"doppelganger_allocs_per_iter\": [%.1f, %.1f, %.1f, %.1f]"
               ",\n",
               dg[0].allocs_per_iter, dg[1].allocs_per_iter,
               dg[2].allocs_per_iter, dg[3].allocs_per_iter);
  std::fprintf(f, "  \"thread_counts_exceed_cores\": %s\n",
               oversubscribed ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
