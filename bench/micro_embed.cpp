// Embedding-engine micro-bench (DESIGN.md §12): vocabulary scaling from
// ~10^3 to 10^6 tokens, batched nearest-neighbour decode vs the retained
// linear-scan oracle at the production dim (4), steady-state decode
// allocations, and batched-trainer throughput.
//
// Small scales come from the datagen presets via PresetOverrides (the
// vocabulary-scaling knob); the 10^5 / 10^6 scales synthesize sentences
// directly so the bench measures the engine, not the trace simulator.
// Emits BENCH_embed.json (path overridable via argv[1]).
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "datagen/presets.hpp"
#include "embed/ip2vec.hpp"
#include "embed/token.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"
#include "net/trace.hpp"

namespace {

using netshare::Rng;
using netshare::Stopwatch;
using netshare::bench::time_best;
using netshare::embed::Ip2Vec;
using netshare::embed::Token;
using netshare::embed::TokenKind;
using netshare::ml::Matrix;

constexpr std::size_t kDim = 4;  // the production encoder dim

// Synthetic sentence set with `num_ips` distinct IP tokens: every sentence
// introduces two fresh IPs; ports come from a small fixed pool so the IP
// shard dominates the vocabulary like a backbone trace.
std::vector<std::vector<Token>> synth_sentences(std::size_t num_ips,
                                                std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = num_ips / 2;
  std::vector<std::vector<Token>> sentences;
  sentences.reserve(n);
  constexpr std::uint32_t kService[] = {53, 80, 443, 22, 25};
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = static_cast<std::uint32_t>(2 * i);
    const auto dst = static_cast<std::uint32_t>(2 * i + 1);
    if (i % 97 == 96) {  // ICMP sentences carry no ports
      sentences.push_back({{TokenKind::kIp, src},
                           {TokenKind::kIp, dst},
                           {TokenKind::kProtocol, 1}});
      continue;
    }
    const auto sport =
        static_cast<std::uint32_t>(1024 + rng.uniform_int(0, 63));
    const std::uint32_t dport = kService[rng.uniform_int(0, 4)];
    const std::uint32_t proto = i % 2 ? 17 : 6;
    sentences.push_back({{TokenKind::kIp, src},
                         {TokenKind::kIp, dst},
                         {TokenKind::kPort, sport},
                         {TokenKind::kPort, dport},
                         {TokenKind::kProtocol, proto}});
  }
  return sentences;
}

// Datagen sentence set through the PresetOverrides vocabulary-scaling knob:
// uniform (alpha 0) address popularity over widened pools so records visit
// the whole pool instead of a Zipf head.
std::vector<std::vector<Token>> datagen_sentences(std::size_t pool_per_side,
                                                  std::size_t records,
                                                  std::uint64_t seed) {
  netshare::datagen::PresetOverrides ov;
  ov.num_src_ips = pool_per_side;
  ov.num_dst_ips = pool_per_side;
  ov.src_zipf_alpha = 0.0;
  ov.dst_zipf_alpha = 0.0;
  const auto bundle = netshare::datagen::make_dataset(
      netshare::datagen::DatasetId::kCidds, records, seed, ov);
  return netshare::embed::sentences_from_flows(bundle.flows);
}

Matrix make_queries(std::size_t n, std::uint64_t seed) {
  Matrix q(n, kDim);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kDim; ++k) q(i, k) = rng.uniform(-0.8, 0.8);
  }
  return q;
}

struct ScaleRow {
  std::size_t target = 0;
  const char* source = "";
  std::size_t sentences = 0;
  std::size_t tokens = 0;
  std::size_t ip_tokens = 0;
  double train_sec = 0.0;
  double decode_us_per_query = 0.0;
};

// Trains at the production dim and times a 256-query batched IP decode.
ScaleRow bench_scale(std::size_t target, const char* source,
                     std::vector<std::vector<Token>> sentences, int epochs,
                     Ip2Vec& model) {
  ScaleRow row;
  row.target = target;
  row.source = source;
  row.sentences = sentences.size();
  Ip2Vec::Config cfg;
  cfg.dim = kDim;
  cfg.epochs = epochs;
  cfg.negatives = 2;
  Rng rng(target ^ 0x9e3779b97f4a7c15ULL);
  Stopwatch sw;
  model.train(sentences, cfg, rng);
  row.train_sec = sw.seconds();
  row.tokens = model.vocab_size();
  row.ip_tokens = model.vocab().kind_size(TokenKind::kIp);

  const Matrix q = make_queries(256, 17);
  std::vector<Token> out(q.rows());
  netshare::ml::Workspace ws;
  const double sec = time_best(
      [&] {
        ws.reset();
        model.nearest_batch(q, TokenKind::kIp, {}, out, ws);
      },
      0.1);
  row.decode_us_per_query = sec / static_cast<double>(q.rows()) * 1e6;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_embed.json";

  // --- Vocabulary scaling, 10^3 .. 10^6 tokens -------------------------
  std::vector<ScaleRow> scaling;
  Ip2Vec model_small, model_10k, model_100k, model_1m;
  scaling.push_back(bench_scale(1000, "datagen",
                                datagen_sentences(300, 600, 1), 2,
                                model_small));
  scaling.push_back(bench_scale(10000, "datagen",
                                datagen_sentences(3000, 8000, 2), 2,
                                model_10k));
  scaling.push_back(
      bench_scale(100000, "synthetic", synth_sentences(100000, 3), 1,
                  model_100k));
  scaling.push_back(
      bench_scale(1000000, "synthetic", synth_sentences(1000000, 4), 1,
                  model_1m));
  for (const auto& r : scaling) {
    std::printf(
        "scale %7zu (%s): %zu sentences -> %zu tokens (%zu IPs), "
        "train %.2fs, decode %.2f us/query\n",
        r.target, r.source, r.sentences, r.tokens, r.ip_tokens, r.train_sec,
        r.decode_us_per_query);
  }

  // --- Batched decode vs the linear-scan oracle at 10^5 vocab ----------
  // model_100k is already trained at the production dim; both sides decode
  // the same 512 queries over the IP shard.
  const Matrix q512 = make_queries(512, 23);
  std::vector<Token> out_batch(q512.rows());
  netshare::ml::Workspace ws;
  const double batch_sec = time_best([&] {
    ws.reset();
    model_100k.nearest_batch(q512, TokenKind::kIp, {}, out_batch, ws);
  });
  const double scan_sec = time_best([&] {
    for (std::size_t i = 0; i < q512.rows(); ++i) {
      out_batch[i] = model_100k.nearest(
          {q512.row_ptr(i), kDim}, TokenKind::kIp);
    }
  });
  const double speedup = scan_sec / batch_sec;
  std::printf("decode@100k: batch %.2f us/query, scan %.2f us/query (%.1fx)\n",
              batch_sec / 512 * 1e6, scan_sec / 512 * 1e6, speedup);

  // --- Steady-state allocations per decoded batch ----------------------
  for (int warm = 0; warm < 2; ++warm) {
    ws.reset();
    model_100k.nearest_batch(q512, TokenKind::kIp, {}, out_batch, ws);
  }
  netshare::ml::alloc_counter::reset();
  ws.reset();
  model_100k.nearest_batch(q512, TokenKind::kIp, {}, out_batch, ws);
  const std::uint64_t allocs = netshare::ml::alloc_counter::count();
  std::printf("decode allocs/batch: %llu\n",
              static_cast<unsigned long long>(allocs));

  // --- Million-token decode (batched only; the scan would take minutes) -
  const Matrix q256 = make_queries(256, 29);
  std::vector<Token> out256(q256.rows());
  ws.reset();
  Stopwatch sw_m;
  model_1m.nearest_batch(q256, TokenKind::kIp, {}, out256, ws);
  const double m_decode_sec = sw_m.seconds();
  const ScaleRow& m = scaling.back();
  std::printf("million vocab: %zu tokens, train %.2fs, decode %.2f us/query\n",
              m.tokens, m.train_sec,
              m_decode_sec / static_cast<double>(q256.rows()) * 1e6);

  // --- Trainer throughput vs batch size / workers (informational) ------
  struct ThroughputRow {
    std::size_t batch;
    std::size_t workers;
    double mips;  // million interactions / sec
  };
  std::vector<ThroughputRow> throughput;
  {
    const auto sentences = synth_sentences(20000, 5);
    const double interactions =  // pairs * (1 + negatives), 1 epoch
        static_cast<double>(sentences.size()) * 20.0 * 3.0;
    for (const auto& [batch, workers] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {64, 1}, {256, 1}, {64, 2}}) {
      Ip2Vec t;
      Ip2Vec::Config cfg;
      cfg.dim = kDim;
      cfg.epochs = 1;
      cfg.negatives = 2;
      cfg.batch_interactions = batch;
      cfg.workers = workers;
      Rng rng(11);
      Stopwatch sw;
      t.train(sentences, cfg, rng);
      throughput.push_back({batch, workers, interactions / sw.seconds() / 1e6});
      std::printf("train batch=%zu workers=%zu: %.2f Mi interactions/s\n",
                  batch, workers, throughput.back().mips);
    }
  }

  // --- JSON ------------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"embed\",\n  \"dim\": %zu,\n", kDim);
  std::fprintf(f, "  \"vocab_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& r = scaling[i];
    std::fprintf(f,
                 "    {\"target\": %zu, \"source\": \"%s\", "
                 "\"sentences\": %zu, \"tokens\": %zu, \"ip_tokens\": %zu, "
                 "\"train_sec\": %.4f, \"decode_us_per_query\": %.3f}%s\n",
                 r.target, r.source, r.sentences, r.tokens, r.ip_tokens,
                 r.train_sec, r.decode_us_per_query,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"decode_speedup_100k\": %.3f,\n", speedup);
  std::fprintf(f, "  \"decode_batch_us_per_query_100k\": %.3f,\n",
               batch_sec / 512 * 1e6);
  std::fprintf(f, "  \"decode_scan_us_per_query_100k\": %.3f,\n",
               scan_sec / 512 * 1e6);
  std::fprintf(f, "  \"decode_allocs_per_batch\": %llu,\n",
               static_cast<unsigned long long>(allocs));
  std::fprintf(f,
               "  \"million_vocab\": {\"tokens\": %zu, \"sentences\": %zu, "
               "\"train_sec\": %.4f, \"decode_batch_sec\": %.4f, "
               "\"decode_us_per_query\": %.3f},\n",
               m.tokens, m.sentences, m.train_sec, m_decode_sec,
               m_decode_sec / static_cast<double>(q256.rows()) * 1e6);
  std::fprintf(f, "  \"train_throughput\": [\n");
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    const auto& r = throughput[i];
    std::fprintf(f,
                 "    {\"batch_interactions\": %zu, \"workers\": %zu, "
                 "\"mi_interactions_per_sec\": %.3f}%s\n",
                 r.batch, r.workers, r.mips,
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
