// Ablations of NetShare's design insights (DESIGN.md Sec. 3):
//   I1 — flow-split time-series formulation vs per-record tabular (CTGAN),
//   I2 — IP2Vec ports vs bit-encoded ports; log transform vs min-max,
//   I3 — chunked fine-tuning vs naive parallel (fresh models per chunk) vs
//        monolithic NetShare-V0 (cost + fidelity), and flow tags on/off.
#include <iostream>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/field_metrics.hpp"

using namespace netshare;

namespace {

struct VariantResult {
  std::string name;
  double cpu = 0.0;
  metrics::FidelityReport report;
  double multi_record_share = 0.0;
};

VariantResult run_variant(const std::string& name, core::NetShareConfig cfg,
                          const net::FlowTrace& real, std::uint64_t seed) {
  std::cerr << "  [fit] " << name << "...\n";
  cfg.seed = seed;
  core::NetShare model(cfg, eval::shared_public_ip2vec());
  model.fit(real);
  Rng rng(seed + 1);
  const auto syn = model.generate_flows(real.size(), rng);
  VariantResult res;
  res.name = name;
  res.cpu = model.train_cpu_seconds();
  res.report = metrics::compare_flows(real, syn);
  std::size_t multi = 0, groups = 0;
  for (const auto& [key, idx] : syn.group_by_flow()) {
    (void)key;
    ++groups;
    multi += idx.size() > 1;
  }
  res.multi_record_share =
      groups ? static_cast<double>(multi) / static_cast<double>(groups) : 0.0;
  return res;
}

}  // namespace

int main() {
  eval::EvalOptions opt;
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 3001);
  const core::NetShareConfig base = eval::bench_netshare_config(opt);

  std::vector<VariantResult> variants;
  variants.push_back(run_variant("NetShare (full)", base, bundle.flows, 3010));

  {  // I2a: bit-encoded ports instead of IP2Vec.
    core::NetShareConfig cfg = base;
    cfg.use_ip2vec_ports = false;
    variants.push_back(run_variant("I2a: bit-encoded ports", cfg, bundle.flows, 3011));
  }
  {  // I2b: min-max instead of log transform on counters.
    core::NetShareConfig cfg = base;
    cfg.log_transform = false;
    variants.push_back(run_variant("I2b: min-max counters", cfg, bundle.flows, 3012));
  }
  {  // I3a: naive parallel (fresh model per chunk, full budget each).
    core::NetShareConfig cfg = base;
    cfg.naive_parallel = true;
    variants.push_back(run_variant("I3a: naive parallel", cfg, bundle.flows, 3013));
  }
  {  // I3b: monolithic V0 with the equivalent total budget.
    core::NetShareConfig cfg = base;
    cfg.netshare_v0 = true;
    cfg.seed_iterations =
        base.seed_iterations +
        static_cast<int>(base.num_chunks - 1) * base.finetune_iterations;
    variants.push_back(run_variant("I3b: NetShare-V0", cfg, bundle.flows, 3014));
  }
  {  // I3c: flow tags off.
    core::NetShareConfig cfg = base;
    cfg.use_flow_tags = false;
    variants.push_back(run_variant("I3c: no flow tags", cfg, bundle.flows, 3015));
  }

  eval::print_banner(std::cout, "Insight ablations on UGR16 (NetFlow)");
  eval::TextTable table({"variant", "train CPU (s)", "avg JSD", "DP JSD",
                         "PKT EMD", "BYT EMD", "multi-record share"});
  for (const auto& v : variants) {
    table.add_row({v.name, eval::format_double(v.cpu, 1),
                   eval::format_double(v.report.mean_jsd(), 3),
                   eval::format_double(v.report.jsd.at("DP"), 3),
                   eval::format_double(v.report.emd.at("PKT"), 1),
                   eval::format_double(v.report.emd.at("BYT"), 1),
                   eval::format_double(v.multi_record_share, 3)});
  }
  table.print(std::cout);

  // I1: the tabular formulation cannot produce multi-record 5-tuples.
  eval::print_banner(std::cout,
                     "I1: flow-split time series vs per-record tabular");
  {
    gan::CtganFlow ctgan({gan::TabularGanConfig{}, 3}, 3016);
    std::cerr << "  [fit] CTGAN (tabular formulation)...\n";
    ctgan.fit(bundle.flows);
    Rng rng(3017);
    const auto syn = ctgan.generate(bundle.flows.size(), rng);
    std::size_t multi = 0, groups = 0;
    for (const auto& [key, idx] : syn.group_by_flow()) {
      (void)key;
      ++groups;
      multi += idx.size() > 1;
    }
    std::size_t real_multi = 0, real_groups = 0;
    for (const auto& [key, idx] : bundle.flows.group_by_flow()) {
      (void)key;
      ++real_groups;
      real_multi += idx.size() > 1;
    }
    std::cout << "real multi-record 5-tuple share: "
              << eval::format_double(
                     static_cast<double>(real_multi) / real_groups, 3)
              << "; NetShare: "
              << eval::format_double(variants[0].multi_record_share, 3)
              << "; tabular CTGAN: "
              << eval::format_double(
                     groups ? static_cast<double>(multi) / groups : 0.0, 3)
              << '\n';
  }
  return 0;
}
