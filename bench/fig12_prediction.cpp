// Figure 12 + Table 3: flow-based traffic-type prediction.
//
// Protocol (Fig. 11): real data A is split by time into train/test; each
// generator produces synthetic B (and B'). Accuracy preservation: train on
// synthetic B, test on real A' — compared with train-on-real. Order
// preservation (Table 3): Spearman rank correlation between the five
// classifiers' rankings on real(train)/real(test) vs synth(train)/
// synth(test).
#include <iostream>

#include "datagen/presets.hpp"
#include "downstream/classifier.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/rank.hpp"

using namespace netshare;

namespace {

const std::vector<std::string> kModels{"DT", "LR", "RF", "GB", "MLP"};

std::vector<double> accuracies(const downstream::LabeledDataset& train,
                               const downstream::LabeledDataset& test,
                               std::uint64_t seed) {
  std::vector<double> acc;
  for (const auto& kind : kModels) {
    auto clf = downstream::make_classifier(kind, seed++);
    clf->fit(train);
    acc.push_back(clf->accuracy(test));
  }
  return acc;
}

void prediction_experiment(datagen::DatasetId dataset, std::size_t records,
                           std::uint64_t seed, bool print_fig12,
                           eval::TextTable& table3) {
  const auto bundle = datagen::make_dataset(dataset, records, seed);
  const auto [real_train, real_test] =
      downstream::time_split(bundle.flows, 0.8);
  const auto real_acc = accuracies(real_train, real_test, seed + 1);

  eval::EvalOptions opt;
  auto runs = eval::run_flow_models(eval::standard_flow_models(opt),
                                    bundle.flows, bundle.flows.size(), seed + 2);

  eval::TextTable fig12({"generator", "DT", "LR", "RF", "GB", "MLP"});
  fig12.add_row("Real", real_acc);

  std::vector<std::string> names{"Real"};
  std::vector<std::vector<double>> synth_self_acc;  // B-train / B'-test
  for (const auto& run : runs) {
    // Accuracy preservation: train on synthetic, test on real.
    const auto [syn_train, syn_unused] =
        downstream::time_split(run.synthetic, 0.8);
    (void)syn_unused;
    fig12.add_row(run.name, accuracies(syn_train, real_test, seed + 3));
    // Order preservation: train & test on synthetic.
    const auto [bt, bp] = downstream::time_split(run.synthetic, 0.8);
    synth_self_acc.push_back(accuracies(bt, bp, seed + 4));
    names.push_back(run.name);
  }

  if (print_fig12) {
    eval::print_banner(std::cout,
                       "Figure 12: traffic-type prediction accuracy on " +
                           bundle.name +
                           " (train on synthetic, test on real)");
    fig12.print(std::cout);
  }

  // Table 3 row: rank correlation of classifier rankings.
  std::vector<std::string> row{bundle.name};
  for (std::size_t m = 0; m < synth_self_acc.size(); ++m) {
    row.push_back(eval::format_double(
        metrics::spearman(real_acc, synth_self_acc[m]), 2));
  }
  table3.add_row(std::move(row));
}

}  // namespace

int main() {
  eval::TextTable table3(
      {"dataset", "NetShare", "CTGAN", "E-WGAN-GP", "STAN"});
  prediction_experiment(datagen::DatasetId::kTon, 1200, 1201, true, table3);
  prediction_experiment(datagen::DatasetId::kCidds, 1200, 1202, false, table3);
  eval::print_banner(std::cout,
                     "Table 3: rank correlation of prediction algorithms "
                     "(higher is better)");
  table3.print(std::cout);
  return 0;
}
