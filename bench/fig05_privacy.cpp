// Figure 5 + Table 5: privacy-fidelity trade-offs. Sweeps the DP budget
// epsilon (delta = 1e-5) and compares three training regimes (Insight 4):
//   Naive DP            — DP-SGD from scratch,
//   DP Pretrained-SAME  — warm start from a public model of the same domain,
//   DP Pretrained-DIFF  — warm start from a public model of a different
//                         domain.
// The accountant inverts epsilon to a noise multiplier for the fixed number
// of DP-SGD steps. Fidelity = mean JSD / mean normalized EMD vs the real
// trace (EMDs normalized across all regimes and epsilons, per footnote 1).
#include <iostream>
#include <optional>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "metrics/field_metrics.hpp"
#include "privacy/accountant.hpp"

using namespace netshare;

namespace {

struct SweepPoint {
  std::string regime;
  double epsilon = 0.0;
  metrics::FidelityReport report;
};

// All sweep regimes (including "w/o DP") use the SAME optimizer steps and
// batch size; the only difference is DP-SGD's clipping + noise. This
// isolates the privacy cost, mirroring the paper's comparison.
core::NetShareConfig dp_base_config(bool dp) {
  eval::EvalOptions opt;
  core::NetShareConfig cfg = eval::bench_netshare_config(opt);
  cfg.netshare_v0 = true;  // single-model training for the DP study
  cfg.max_seq_len = 6;
  cfg.seed_iterations = eval::scaled(80);
  cfg.dg.batch_size = 16;
  cfg.dp = dp;
  return cfg;
}

// Trains a non-DP NetShare on a public dataset (full batched budget — public
// data has no privacy constraint) and returns its snapshot.
template <typename TraceT>
std::vector<double> public_snapshot(const TraceT& trace) {
  core::NetShareConfig cfg = dp_base_config(false);
  cfg.seed_iterations = eval::scaled(300);
  cfg.dg.batch_size = 64;
  core::NetShare model(cfg, eval::shared_public_ip2vec());
  model.fit(trace);
  return model.snapshot();
}

template <typename TraceT>
metrics::FidelityReport run_dp(
    const TraceT& priv, const std::optional<std::vector<double>>& snapshot,
    double target_eps, std::uint64_t seed) {
  core::NetShareConfig cfg = dp_base_config(true);
  cfg.seed = seed;
  cfg.public_snapshot = snapshot;
  const std::size_t n = priv.size();
  const double q =
      static_cast<double>(cfg.dg.batch_size) / static_cast<double>(n);
  const std::size_t steps = static_cast<std::size_t>(cfg.seed_iterations) *
                            static_cast<std::size_t>(cfg.dg.d_steps_per_g);
  cfg.dp_config.noise_multiplier =
      privacy::noise_multiplier_for_epsilon(target_eps, q, steps, 1e-5);
  core::NetShare model(cfg, eval::shared_public_ip2vec());
  model.fit(priv);
  Rng rng(seed + 1);
  if constexpr (std::is_same_v<TraceT, net::FlowTrace>) {
    return metrics::compare_flows(priv, model.generate_flows(n, rng));
  } else {
    return metrics::compare_packets(priv, model.generate_packets(n, rng));
  }
}

template <typename TraceT>
metrics::FidelityReport run_nodp(const TraceT& priv, std::uint64_t seed) {
  core::NetShareConfig cfg = dp_base_config(false);
  cfg.seed = seed;
  core::NetShare model(cfg, eval::shared_public_ip2vec());
  model.fit(priv);
  Rng rng(seed + 1);
  if constexpr (std::is_same_v<TraceT, net::FlowTrace>) {
    return metrics::compare_flows(priv, model.generate_flows(priv.size(), rng));
  } else {
    return metrics::compare_packets(priv,
                                    model.generate_packets(priv.size(), rng));
  }
}

template <typename TraceT>
void privacy_sweep(const std::string& title, const TraceT& priv,
                   const std::vector<double>& same_snap,
                   const std::vector<double>& diff_snap, std::uint64_t seed) {
  eval::print_banner(std::cout, title);
  const std::vector<double> epsilons{24.24, 93.52, 1e3, 1e5};

  std::vector<SweepPoint> points;
  std::uint64_t s = seed;
  for (double eps : epsilons) {
    std::cerr << "  [dp] eps=" << eps << "\n";
    points.push_back({"Naive DP", eps, run_dp(priv, std::nullopt, eps, ++s)});
    points.push_back(
        {"DP Pretrained-SAME", eps, run_dp(priv, same_snap, eps, ++s)});
    points.push_back(
        {"DP Pretrained-DIFF", eps, run_dp(priv, diff_snap, eps, ++s)});
  }
  points.push_back({"w/o DP (eps=inf)", 1e30, run_nodp(priv, ++s)});

  // Normalize EMDs across ALL regimes and epsilons (footnote 1).
  std::vector<metrics::FidelityReport> all_reports;
  for (const auto& p : points) all_reports.push_back(p.report);
  const auto norm = metrics::mean_normalized_emds(all_reports);

  eval::TextTable table({"regime", "epsilon", "avg JSD", "avg norm. EMD"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({points[i].regime,
                   points[i].epsilon > 1e20
                       ? "inf"
                       : eval::format_double(points[i].epsilon, 2),
                   eval::format_double(points[i].report.mean_jsd(), 3),
                   eval::format_double(norm[i], 3)});
  }
  table.print(std::cout);

  // Table 5 analogue: EMD degradation of the two regimes at eps=24.24
  // relative to the non-DP model.
  const double nodp = norm.back();
  eval::print_banner(std::cout, "Table 5 summary (eps = 24.24)");
  std::cout << "Naive DP norm. EMD: " << eval::format_double(norm[0], 3)
            << " (" << eval::format_double(norm[0] / std::max(1e-9, nodp), 1)
            << "x of w/o DP)\n"
            << "DP-pretrain-SAME norm. EMD: " << eval::format_double(norm[1], 3)
            << " (" << eval::format_double(norm[1] / std::max(1e-9, nodp), 1)
            << "x of w/o DP)\n";
}

}  // namespace

int main() {
  // NetFlow sweep (Fig. 5a/5b): private = UGR16; SAME public = a second
  // UGR16-like collection window; DIFF public = CIDDS-like.
  {
    const auto priv = datagen::make_dataset(datagen::DatasetId::kUgr16, 600, 501);
    const auto same = datagen::make_dataset(datagen::DatasetId::kUgr16, 600, 777);
    const auto diff = datagen::make_dataset(datagen::DatasetId::kCidds, 600, 778);
    std::cerr << "  [pretrain] public flow models...\n";
    const auto same_snap = public_snapshot(same.flows);
    const auto diff_snap = public_snapshot(diff.flows);
    privacy_sweep("Figure 5a/5b: NetFlow (UGR16) privacy-fidelity", priv.flows,
                  same_snap, diff_snap, 510);
  }
  // PCAP sweep (Fig. 5c/5d): private = CAIDA NY 2018-like; SAME public =
  // CAIDA Chicago 2015-like; DIFF public = data-center trace.
  {
    const auto priv = datagen::make_dataset(datagen::DatasetId::kCaida, 900, 502);
    const auto same = datagen::make_dataset(datagen::DatasetId::kCaidaPub, 900, 779);
    const auto diff = datagen::make_dataset(datagen::DatasetId::kDcPub, 900, 780);
    std::cerr << "  [pretrain] public packet models...\n";
    const auto same_snap = public_snapshot(same.packets);
    const auto diff_snap = public_snapshot(diff.packets);
    privacy_sweep("Figure 5c/5d: PCAP (CAIDA) privacy-fidelity", priv.packets,
                  same_snap, diff_snap, 520);
  }
  std::cout << "\nExpected shape (paper): fidelity degrades as epsilon "
               "shrinks; pretraining on same-domain public data dominates "
               "different-domain pretraining, which dominates naive DP.\n";
  return 0;
}
