// Figure 1: distribution of the number of records/packets sharing a 5-tuple.
//  (a) CDF of NetFlow records with the same five-tuple (UGR16-like).
//  (b) CDF of flow size (# packets per flow) on CAIDA-like PCAP — the paper
//      notes every per-packet baseline is absent from this plot because it
//      generates no multi-packet flows; we report each model's multi-packet
//      flow share to make that visible.
#include <iostream>
#include <map>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

using namespace netshare;

namespace {

std::vector<double> records_per_tuple(const net::FlowTrace& trace) {
  std::vector<double> counts;
  for (const auto& [key, idx] : trace.group_by_flow()) {
    (void)key;
    counts.push_back(static_cast<double>(idx.size()));
  }
  return counts;
}

std::vector<double> packets_per_flow(const net::PacketTrace& trace) {
  std::vector<double> counts;
  for (const auto& agg : net::aggregate_flows(trace)) {
    counts.push_back(static_cast<double>(agg.packets));
  }
  return counts;
}

}  // namespace

int main() {
  eval::EvalOptions opt;

  eval::print_banner(std::cout,
                     "Figure 1a: # NetFlow records with the same five-tuple "
                     "(UGR16-like)");
  const auto ugr = datagen::make_dataset(datagen::DatasetId::kUgr16, 1200, 101);
  eval::print_cdf(std::cout, "Real", records_per_tuple(ugr.flows));
  {
    auto runs = eval::run_flow_models(eval::standard_flow_models(opt),
                                      ugr.flows, ugr.flows.size(), 102);
    for (const auto& run : runs) {
      eval::print_cdf(std::cout, run.name, records_per_tuple(run.synthetic));
    }
  }

  eval::print_banner(std::cout,
                     "Figure 1b: flow size (# packets per flow) on CAIDA-like "
                     "PCAP");
  const auto caida =
      datagen::make_dataset(datagen::DatasetId::kCaida, 2000, 103);
  eval::print_cdf(std::cout, "Real", packets_per_flow(caida.packets));
  {
    auto runs = eval::run_packet_models(eval::standard_packet_models(opt),
                                        caida.packets, caida.packets.size(),
                                        104);
    eval::TextTable table({"model", "multi-packet flow share", "max flow size"});
    for (const auto& run : runs) {
      eval::print_cdf(std::cout, run.name, packets_per_flow(run.synthetic));
      const auto sizes = packets_per_flow(run.synthetic);
      std::size_t multi = 0;
      double mx = 0;
      for (double s : sizes) {
        multi += s > 1;
        mx = std::max(mx, s);
      }
      table.add_row({run.name,
                     eval::format_double(
                         static_cast<double>(multi) /
                             std::max<std::size_t>(1, sizes.size()),
                         3),
                     eval::format_double(mx, 0)});
    }
    std::cout << "\nPer-packet baselines generate (almost) no multi-packet "
                 "flows (paper's C1):\n";
    table.print(std::cout);
  }
  return 0;
}
