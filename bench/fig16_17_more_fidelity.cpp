// Figures 16 and 17 (Appendix A): JSD / normalized EMD on the remaining four
// datasets — CIDDS and TON (NetFlow), DC and CA (PCAP).
#include <iostream>

#include "eval/fidelity.hpp"
#include "eval/report.hpp"

using namespace netshare;

int main() {
  eval::EvalOptions opt;
  eval::print_banner(std::cout, "Figure 16a/16b: CIDDS (NetFlow)");
  eval::fidelity_figure(std::cout, datagen::DatasetId::kCidds, 1000, opt, 1601);
  eval::print_banner(std::cout, "Figure 16c/16d: TON (NetFlow)");
  eval::fidelity_figure(std::cout, datagen::DatasetId::kTon, 1000, opt, 1602);
  eval::print_banner(std::cout, "Figure 17a/17b: DC (PCAP)");
  eval::fidelity_figure(std::cout, datagen::DatasetId::kDc, 1600, opt, 1701);
  eval::print_banner(std::cout, "Figure 17c/17d: CA (PCAP)");
  eval::fidelity_figure(std::cout, datagen::DatasetId::kCa, 1600, opt, 1702);
  return 0;
}
