// Figure 10: Jensen-Shannon divergence and normalized Earth Mover's Distance
// between real and synthetic distributions on UGR16 (NetFlow) and CAIDA
// (PCAP). The paper's headline Finding 1: NetShare is ~46% better across
// distributional metrics than the baselines.
#include <iostream>

#include "eval/fidelity.hpp"
#include "eval/report.hpp"

using namespace netshare;

int main() {
  eval::EvalOptions opt;
  eval::print_banner(std::cout, "Figure 10a/10b: UGR16 (NetFlow)");
  const auto ugr =
      eval::fidelity_figure(std::cout, datagen::DatasetId::kUgr16, 1200, opt,
                            1001);
  eval::print_banner(std::cout, "Figure 10c/10d: CAIDA (PCAP)");
  const auto caida =
      eval::fidelity_figure(std::cout, datagen::DatasetId::kCaida, 2000, opt,
                            1002);

  // Headline aggregate: NetShare's improvement over the baseline mean.
  // "Across all distributional metrics": combine mean JSD and mean
  // normalized EMD per model, then compare NetShare to the baseline mean.
  auto improvement = [](const eval::FidelityFigureResult& r) {
    double netshare = 0.0, baseline_mean = 0.0;
    int count = 0;
    for (std::size_t m = 0; m < r.model_names.size(); ++m) {
      const double combined = 0.5 * (r.mean_jsd[m] + r.mean_norm_emd[m]);
      if (r.model_names[m] == "NetShare") {
        netshare = combined;
      } else {
        baseline_mean += combined;
        ++count;
      }
    }
    baseline_mean /= std::max(1, count);
    return 1.0 - netshare / std::max(1e-9, baseline_mean);
  };
  eval::print_banner(std::cout, "Finding 1 summary");
  std::cout << "NetShare improvement (mean of JSD + normalized EMD) vs "
               "baseline mean: UGR16 "
            << eval::format_double(100 * improvement(ugr), 1) << "%, CAIDA "
            << eval::format_double(100 * improvement(caida), 1)
            << "% (paper reports ~46% across all traces/metrics)\n";
  return 0;
}
