// End-to-end pipeline benchmark: preprocess -> train -> generate ->
// postprocess on a PCAP-preset trace, timed per stage, plus a gated
// comparison of the generate stage on the new path (length-adaptive
// sampling, chunk-parallel on the thread budget) against the serial
// reference path (full-unroll sampler, one chunk at a time, one kernel
// thread), and of the end-to-end run on the streaming stage graph
// (DESIGN.md 11) against the stage-lockstep batch path — both bitwise
// identical. Emits BENCH_pipeline.json (path overridable via argv[1]); the
// committed baseline at the repo root is gated by
// scripts/check_bench_regression (see EXPERIMENTS.md).
//
// Bench honesty: the requested thread budget is clamped to
// hardware_concurrency() before anything is measured (thread counts above
// the core count measure oversubscription, not scaling); the JSON records
// both the requested and the effective budget. On a 1-core container the
// gated speedup therefore does NOT come from threads. It comes from
// length-adaptive
// early exit: the reference unrolls every series through all max_len RNN
// steps (that was the only sampler before this path existed), while the
// adaptive path stops each series at its sampled length and compacts the
// batch, so compute is proportional to the total emitted length. Generated
// series on this workload are far shorter than max_len, and the two paths
// are bitwise identical (asserted in tests/test_generate.cpp), so the
// speedup holds on any core count.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/netshare.hpp"
#include "core/postprocess.hpp"
#include "core/preprocess.hpp"
#include "core/stream.hpp"
#include "core/train.hpp"
#include "datagen/presets.hpp"
#include "eval/report.hpp"
#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "telemetry/telemetry.hpp"

using namespace netshare;
using bench::time_best;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  const std::string telem_path = argc > 2 ? argv[2] : "RUN_telemetry.json";
  const std::size_t kRecords = 2000;
  const std::size_t kSampleBatch = 64;

  core::NetShareConfig config;
  config.use_ip2vec_ports = false;  // keep the bench self-contained & fast
  // The kCaida preset averages ~14.5 packets per flow, so the scaled-down
  // max_seq_len default of 8 truncates nearly every flow; 16 keeps the
  // bench workload representative of real per-flow series lengths.
  config.max_seq_len = 16;
  config.seed_iterations = 40;
  config.finetune_iterations = 15;
  // Like bench/micro_kernels, the requested budget is clamped to the core
  // count before anything is measured: running 4 software threads on 1 core
  // measures oversubscription, not scaling. Both numbers land in the JSON
  // (threads_requested vs threads) so a reader knows why.
  const std::size_t threads_requested = 4;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw > 0 ? hw : 1;
  config.threads = std::min(threads_requested, cores);
  if (config.threads < threads_requested) {
    std::printf("WARNING: requested a %zu-thread budget on %zu core(s); "
                "clamping to %zu. The gated speedup reflects the "
                "length-adaptive sampler, not thread scaling\n",
                threads_requested, cores, config.threads);
  }

  const auto bundle =
      datagen::make_dataset(datagen::DatasetId::kCaida, kRecords, 42);

  // Stage 1: preprocess (fit normalizers + chunked encode).
  Stopwatch sw;
  core::PacketEncoder encoder(config, nullptr);
  encoder.fit(bundle.packets);
  const auto datasets = encoder.encode(bundle.packets);
  const double preprocess_sec = sw.seconds();

  // Stage 2: train (seed chunk + parallel fine-tune).
  sw.reset();
  core::ChunkedTrainer trainer(encoder.spec(), config);
  trainer.fit(datasets);
  const double train_sec = sw.seconds();

  // Health-guard overhead on the train stage: same model / seed / data with
  // the numeric guards on vs off, gated at <= 2% by check_bench_regression.
  // The cadence here (check every 5 steps, checkpoint every 10) is 4x denser
  // than the default policy, so the gate bounds the default from above.
  std::size_t seed_c = 0;
  while (seed_c < datasets.size() && datasets[seed_c].num_samples() == 0) {
    ++seed_c;
  }
  const int kGuardIters = 10;
  const auto time_train = [&](bool guards_on) {
    gan::DgConfig dg = config.dg;
    dg.health.enabled = guards_on;
    dg.health.check_every = 5;
    dg.health.checkpoint_every = 10;
    gan::DoppelGanger model(encoder.spec(), dg, config.seed);
    model.fit(datasets[seed_c], 1);  // warm-up populates pools and caches
    // ~3 timed repeats: best-of rides out shared-core noise, which on this
    // container is larger than the gated 2% overhead ceiling.
    return time_best([&] { model.fit(datasets[seed_c], kGuardIters); }, 1.2);
  };
  const double train_guard_off_sec = time_train(false);
  const double train_guard_on_sec = time_train(true);
  const double train_guard_overhead_frac =
      (train_guard_on_sec - train_guard_off_sec) / train_guard_off_sec;

  // Stage 3: generate — chunk-parallel batched sampling, then decode.
  const auto& chunks = encoder.chunks();
  std::vector<std::size_t> counts(chunks.size(), 0);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    counts[c] = chunks[c].real_flows;
  }
  sw.reset();
  std::vector<gan::GeneratedSeries> series;
  trainer.sample_chunks(counts, 1234, series);
  const double sample_sec = sw.seconds();
  sw.reset();
  net::PacketTrace synth;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (counts[c] == 0 || !trainer.has_model(c)) continue;
    const net::PacketTrace part = encoder.decode(series[c], c);
    synth.packets.insert(synth.packets.end(), part.packets.begin(),
                         part.packets.end());
  }
  synth.sort_by_time();
  const double decode_sec = sw.seconds();
  const double generate_sec = sample_sec + decode_sec;
  // Printed after generation so the per-chunk gen_s column is populated
  // alongside train_s.
  eval::print_train_report(std::cout, trainer.report());
  std::cout.flush();

  // Stage 4: postprocess (IP remap + port retrain + header repair, all on
  // the 4-thread budget).
  sw.reset();
  net::PacketTrace post = core::remap_ips(synth, core::IpRemapConfig{},
                                          config.threads);
  Rng post_rng(99);
  post = core::retrain_dst_ports(post, {{80, 0.6}, {443, 0.3}, {53, 0.1}},
                                 post_rng, config.threads);
  const core::RepairStats repair =
      core::repair_packet_headers(post, config.threads);
  const double postprocess_sec = sw.seconds();

  // Gated generate comparison: the full generate stage (sample every chunk's
  // count + decode + merge-sort) on the new path vs the serial reference.
  net::PacketTrace gen_buf;
  const auto decode_all = [&](const std::vector<gan::GeneratedSeries>& s) {
    gen_buf.packets.clear();
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (counts[c] == 0 || !trainer.has_model(c)) continue;
      const net::PacketTrace part = encoder.decode(s[c], c);
      gen_buf.packets.insert(gen_buf.packets.end(), part.packets.begin(),
                             part.packets.end());
    }
    gen_buf.sort_by_time();
  };
  const double parallel_gen_sec = time_best([&] {
    trainer.sample_chunks(counts, 1234, series);
    decode_all(series);
  });
  const std::size_t parallel_gen_packets = gen_buf.size();

  // Same workload with telemetry runtime-disabled: the ON/OFF delta is the
  // instrumentation overhead, gated at <= 3% by scripts/check_bench_regression
  // (the compile-time switch removes even the disabled-check branch).
  telemetry::set_enabled(false);
  const double telemetry_off_gen_sec = time_best([&] {
    trainer.sample_chunks(counts, 1234, series);
    decode_all(series);
  });
  telemetry::set_enabled(true);

  std::vector<gan::GeneratedSeries> ref_series(chunks.size());
  const double serial_gen_sec = time_best([&] {
    ml::kernels::KernelConfig cfg;
    cfg.threads = 1;
    ml::kernels::ConfigOverride guard(cfg);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      trainer.sample_chunk_reference_into(c, counts[c], 1234, 0,
                                          ref_series[c]);
    }
    decode_all(ref_series);
  });
  if (gen_buf.size() != parallel_gen_packets) {
    std::fprintf(stderr,
                 "ERROR: serial reference decoded %zu packets, parallel "
                 "path decoded %zu — paths diverged\n",
                 gen_buf.size(), parallel_gen_packets);
    return 1;
  }
  const double speedup = serial_gen_sec / parallel_gen_sec;

  // End-to-end batch vs streaming dataflow through the NetShare facade
  // (DESIGN.md 11): the same encode -> train -> sample -> export work, once
  // with the stage-lockstep batch path and once with the chunk-streaming
  // stage graph. Both paths are bitwise identical (asserted below and in
  // tests/test_stream.cpp), so the delta is pure scheduling. Streaming runs
  // at >= 2 workers even on a 1-core host — there overlap is time-sliced
  // rather than parallel, so the gate in scripts/check_bench_regression
  // only demands stream <= batch outright when the host has >= 2 cores.
  const std::size_t kE2eTarget = 600;
  const std::size_t stream_workers = std::max<std::size_t>(2, config.threads);
  core::NetShareConfig e2e_cfg = config;
  net::PacketTrace batch_out, stream_out;
  core::StreamStats stream_stats{};
  double e2e_batch_sec = 1e100;
  double e2e_stream_sec = 1e100;
  for (int rep = 0; rep < 2; ++rep) {  // best-of-2 rides out core sharing
    {
      core::NetShareConfig c = e2e_cfg;
      c.streaming = false;
      core::NetShare model(c, nullptr);
      Rng rng(1234);
      sw.reset();
      net::PacketTrace out =
          model.fit_generate_packets(bundle.packets, kE2eTarget, rng);
      e2e_batch_sec = std::min(e2e_batch_sec, sw.seconds());
      batch_out = std::move(out);
    }
    {
      core::NetShareConfig c = e2e_cfg;
      c.streaming = true;
      c.stream_workers = stream_workers;
      core::NetShare model(c, nullptr);
      Rng rng(1234);
      core::StreamStats stats{};
      sw.reset();
      net::PacketTrace out =
          model.fit_generate_packets(bundle.packets, kE2eTarget, rng, &stats);
      e2e_stream_sec = std::min(e2e_stream_sec, sw.seconds());
      stream_out = std::move(out);
      stream_stats = stats;
    }
  }
  if (!(batch_out.packets == stream_out.packets)) {
    std::fprintf(stderr,
                 "ERROR: streaming pipeline produced %zu packets, batch "
                 "produced %zu (or contents differ) — paths diverged\n",
                 stream_out.size(), batch_out.size());
    return 1;
  }

  // Informational micro numbers on the seed-chunk model, plus the
  // zero-allocation assertion on the adaptive path.
  std::size_t c0 = 0;
  while (c0 < chunks.size() && !trainer.has_model(c0)) ++c0;
  gan::GeneratedSeries buf;
  double batched_sec = 0.0;
  double allocs_per_batch = 0.0;
  {
    ml::kernels::KernelConfig cfg;
    cfg.threads = 1;
    ml::kernels::ConfigOverride guard(cfg);
    trainer.sample_chunk_into(c0, kSampleBatch, 7, 0, buf);  // warm-up
    ml::alloc_counter::reset();
    trainer.sample_chunk_into(c0, kSampleBatch, 7, 0, buf);
    allocs_per_batch = static_cast<double>(ml::alloc_counter::count());
    batched_sec = time_best(
        [&] { trainer.sample_chunk_into(c0, kSampleBatch, 7, 0, buf); });
  }
  double per_series_sec = 0.0;
  {
    ml::kernels::KernelConfig cfg;
    cfg.threads = 1;
    ml::kernels::ConfigOverride guard(cfg);
    per_series_sec = time_best([&] {
      for (std::size_t i = 0; i < kSampleBatch; ++i) {
        trainer.sample_chunk_into(c0, 1, 7, i, buf);
      }
    });
  }

  std::printf("preprocess  %.3fs\ntrain       %.3fs (cpu %.3fs)\n"
              "generate    %.3fs (sample %.3fs + decode %.3fs, %zu packets)\n"
              "postprocess %.3fs (%zu repairs, %zu checksum failures)\n",
              preprocess_sec, train_sec, trainer.train_cpu_seconds(),
              generate_sec, sample_sec, decode_sec, synth.size(),
              postprocess_sec, repair.total_repairs(),
              repair.checksum_failures);
  std::printf("generate stage: serial reference %.4fs, adaptive+parallel "
              "%.4fs (%.2fx), %zu packets\n",
              serial_gen_sec, parallel_gen_sec, speedup, parallel_gen_packets);
  std::printf("sample %zu series @1t: batched %.4fs, per-series %.4fs, "
              "%.0f allocs/batch\n",
              kSampleBatch, batched_sec, per_series_sec, allocs_per_batch);
  std::printf("train health guards (%d iters): ON %.4fs vs OFF %.4fs "
              "(%+.2f%%)\n",
              kGuardIters, train_guard_on_sec, train_guard_off_sec,
              100.0 * train_guard_overhead_frac);
  std::printf("e2e: batch %.3fs vs streaming %.3fs @%zu workers "
              "(overlap %.1f%%, peak %zu chunks in flight, %zu parks)\n",
              e2e_batch_sec, e2e_stream_sec, stream_workers,
              100.0 * stream_stats.overlap_frac, stream_stats.peak_in_flight,
              stream_stats.backpressure_parks);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"threads_requested\": %zu,\n", threads_requested);
  std::fprintf(f, "  \"threads\": %zu,\n", config.threads);
  std::fprintf(f, "  \"records\": %zu,\n", kRecords);
  std::fprintf(f, "  \"generated_records\": %zu,\n", synth.size());
  std::fprintf(f,
               "  \"stages_sec\": {\"preprocess\": %.4f, \"train\": %.4f, "
               "\"generate\": %.4f, \"postprocess\": %.4f},\n",
               preprocess_sec, train_sec, generate_sec, postprocess_sec);
  std::fprintf(f, "  \"train_cpu_sec\": %.4f,\n", trainer.train_cpu_seconds());
  std::fprintf(f, "  \"train_guard_on_sec\": %.6f,\n", train_guard_on_sec);
  std::fprintf(f, "  \"train_guard_off_sec\": %.6f,\n", train_guard_off_sec);
  std::fprintf(f, "  \"train_guard_overhead_frac\": %.4f,\n",
               train_guard_overhead_frac);
  std::fprintf(f, "  \"generate_serial_sec\": %.6f,\n", serial_gen_sec);
  std::fprintf(f, "  \"generate_parallel_sec\": %.6f,\n", parallel_gen_sec);
  std::fprintf(f, "  \"generate_sample_batched_sec\": %.6f,\n", batched_sec);
  std::fprintf(f, "  \"generate_sample_per_series_sec\": %.6f,\n",
               per_series_sec);
  std::fprintf(f, "  \"generate_decode_sec\": %.4f,\n", decode_sec);
  std::fprintf(f, "  \"generate_speedup_4t\": %.3f,\n", speedup);
  std::fprintf(f, "  \"generate_allocs_per_batch\": %.1f,\n", allocs_per_batch);
  std::fprintf(f, "  \"repair_total\": %zu,\n", repair.total_repairs());
  std::fprintf(f, "  \"repair_checksum_failures\": %zu,\n",
               repair.checksum_failures);
  std::fprintf(f, "  \"e2e_records_target\": %zu,\n", kE2eTarget);
  std::fprintf(f, "  \"e2e_batch_sec\": %.4f,\n", e2e_batch_sec);
  std::fprintf(f, "  \"e2e_stream_sec\": %.4f,\n", e2e_stream_sec);
  std::fprintf(f, "  \"stream_workers\": %zu,\n", stream_workers);
  std::fprintf(f, "  \"stream_overlap_frac\": %.4f,\n",
               stream_stats.overlap_frac);
  std::fprintf(f, "  \"stream_peak_in_flight\": %zu,\n",
               stream_stats.peak_in_flight);
  std::fprintf(f, "  \"stream_backpressure_parks\": %zu,\n",
               stream_stats.backpressure_parks);
  // Honest after the clamp above: the emitted thread budget never exceeds
  // the core count (threads_requested records what was asked for).
  std::fprintf(f, "  \"thread_counts_exceed_cores\": %s\n",
               config.threads > cores ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (telemetry::kCompiledIn) {
    const double frac =
        (parallel_gen_sec - telemetry_off_gen_sec) / telemetry_off_gen_sec;
    std::printf("telemetry overhead on generate stage: ON %.4fs vs OFF "
                "%.4fs (%+.2f%%)\n",
                parallel_gen_sec, telemetry_off_gen_sec, 100.0 * frac);
    telemetry::OverheadInfo oh;
    oh.telemetry_on_sec = parallel_gen_sec;
    oh.telemetry_off_sec = telemetry_off_gen_sec;
    if (!telemetry::write_run_json(telem_path, oh)) {
      std::fprintf(stderr, "cannot open %s for writing\n", telem_path.c_str());
      return 1;
    }
    const telemetry::MetricsSnapshot snap = telemetry::snapshot_metrics();
    std::printf("wrote %s (%zu counters, %zu gauges, %zu histograms, "
                "%llu spans recorded, %llu dropped)\n",
                telem_path.c_str(), snap.counters.size(), snap.gauges.size(),
                snap.histograms.size(),
                static_cast<unsigned long long>(snap.spans_recorded),
                static_cast<unsigned long long>(snap.spans_dropped));
  } else {
    std::printf("telemetry compiled out (NETSHARE_TELEMETRY=OFF); "
                "skipping %s\n",
                telem_path.c_str());
  }
  return 0;
}
