// google-benchmark micro-benchmarks of the performance-critical substrates:
// checksums, sketch updates, matrix multiply, GRU steps, codecs, pcap IO.
#include <benchmark/benchmark.h>

#include <sstream>

#include "common/rng.hpp"
#include "embed/bit_encoding.hpp"
#include "gan/doppelganger.hpp"
#include "ml/gru.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "net/pcap_io.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/nitrosketch.hpp"
#include "sketch/univmon.hpp"

using namespace netshare;

static void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500);

static void BM_Ipv4HeaderSerialize(benchmark::State& state) {
  net::Ipv4Header h;
  h.total_length = 1500;
  h.src = net::Ipv4Address(10, 0, 0, 1);
  h.dst = net::Ipv4Address(10, 0, 0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.serialize());
  }
}
BENCHMARK(BM_Ipv4HeaderSerialize);

template <typename SketchT>
static void sketch_update_bench(benchmark::State& state, SketchT& sketch) {
  Rng rng(1);
  std::vector<std::uint64_t> keys(4096);
  for (auto& k : keys) k = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.update(keys[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}

static void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinSketch s(4, 1024);
  sketch_update_bench(state, s);
}
BENCHMARK(BM_CountMinUpdate);

static void BM_CountSketchUpdate(benchmark::State& state) {
  sketch::CountSketch s(4, 1024);
  sketch_update_bench(state, s);
}
BENCHMARK(BM_CountSketchUpdate);

static void BM_NitroSketchUpdate(benchmark::State& state) {
  // The point of NitroSketch: sampled updates are cheaper than CS updates.
  sketch::NitroSketch s(4, 1024, 0.1);
  sketch_update_bench(state, s);
}
BENCHMARK(BM_NitroSketchUpdate);

static void BM_UnivMonUpdate(benchmark::State& state) {
  sketch::UnivMon s(6, 4, 256);
  sketch_update_bench(state, s);
}
BENCHMARK(BM_UnivMonUpdate);

static void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const ml::Matrix a = ml::Matrix::randn(n, n, rng);
  const ml::Matrix b = ml::Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

static void BM_GruForward(benchmark::State& state) {
  Rng rng(3);
  ml::Gru gru(32, 48, rng);
  std::vector<ml::Matrix> xs;
  for (int t = 0; t < 8; ++t) xs.push_back(ml::Matrix::randn(64, 32, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.forward(xs));
  }
}
BENCHMARK(BM_GruForward);

// Generation path: batched sample_into vs the per-series path (batch 1),
// each at 1 and 4 kernel threads. The model is trained once and shared —
// sampling throughput does not depend on convergence.
static gan::DoppelGanger& trained_sampler() {
  static gan::DoppelGanger* model = [] {
    gan::TimeSeriesSpec spec;
    spec.attribute_segments = {{ml::OutputSegment::Kind::kSoftmax, 3},
                               {ml::OutputSegment::Kind::kSigmoid, 1}};
    spec.feature_segments = {{ml::OutputSegment::Kind::kSigmoid, 1}};
    spec.max_len = 8;
    gan::TimeSeriesDataset data;
    data.spec = spec;
    data.attributes = ml::Matrix(64, 4);
    data.features.assign(8, ml::Matrix(64, 1));
    data.lengths.resize(64);
    Rng rng(78);
    for (std::size_t i = 0; i < 64; ++i) {
      const std::size_t cat = rng.categorical({0.5, 0.3, 0.2});
      data.attributes(i, cat) = 1.0;
      data.attributes(i, 3) = rng.uniform(0.2, 0.8);
      data.lengths[i] = 2 * cat + 1;
      for (std::size_t t = 0; t < data.lengths[i]; ++t) {
        data.features[t](i, 0) = rng.uniform(0.1, 0.9);
      }
    }
    auto* m = new gan::DoppelGanger(spec, gan::DgConfig{}, 4321);
    m->fit(data, 2);
    return m;
  }();
  return *model;
}

static void BM_DoppelGangerSample(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  ml::kernels::KernelConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(1));
  cfg.min_parallel_flops = 0;
  ml::kernels::ConfigOverride guard(cfg);
  gan::DoppelGanger& model = trained_sampler();
  constexpr std::size_t kSeries = 64;
  gan::GeneratedSeries out;
  model.sample_into(batched ? kSeries : 1, 7, 0, out);  // warm-up
  for (auto _ : state) {
    if (batched) {
      model.sample_into(kSeries, 7, 0, out);
    } else {
      for (std::size_t i = 0; i < kSeries; ++i) model.sample_into(1, 7, i, out);
    }
    benchmark::DoNotOptimize(out.lengths.data());
  }
  state.SetItemsProcessed(state.iterations() * kSeries);
  state.SetLabel(batched ? "batched" : "per-series");
}
BENCHMARK(BM_DoppelGangerSample)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4});

static void BM_IpBitCodec(benchmark::State& state) {
  const net::Ipv4Address ip(192, 168, 10, 20);
  for (auto _ : state) {
    const auto bits = embed::ip_to_bits(ip);
    benchmark::DoNotOptimize(embed::bits_to_ip(bits));
  }
}
BENCHMARK(BM_IpBitCodec);

static void BM_PcapWrite(benchmark::State& state) {
  net::PacketTrace trace;
  Rng rng(4);
  for (int i = 0; i < 256; ++i) {
    net::PacketRecord p;
    p.timestamp = i * 0.001;
    p.key.src_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30)));
    p.key.dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30)));
    p.key.src_port = 1234;
    p.key.dst_port = 80;
    p.size = 1500;
    trace.packets.push_back(p);
  }
  for (auto _ : state) {
    std::ostringstream out;
    net::write_pcap(trace, out);
    benchmark::DoNotOptimize(out.str());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PcapWrite);

BENCHMARK_MAIN();
