// Table 2: encoding trade-offs for IPs and ports. The paper's table is
// qualitative; this bench grounds each verdict in measurements:
//   fidelity    — decode accuracy under additive noise simulating GAN output
//                 blur (higher = more robust recovery of the true value),
//   scalability — encoded width (model input dims) and codec throughput,
//   privacy     — whether the codec's dictionary depends on training data
//                 (vector embeddings built from private data are not DP).
#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "datagen/presets.hpp"
#include "embed/bit_encoding.hpp"
#include "embed/ip2vec.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

using namespace netshare;

namespace {

// Fraction of values recovered exactly after encoding + Gaussian noise.
template <typename EncodeFn, typename DecodeFn, typename Value>
double noisy_roundtrip_accuracy(const std::vector<Value>& values,
                                EncodeFn encode, DecodeFn decode,
                                double noise_sd, Rng& rng) {
  std::size_t ok = 0;
  for (const Value& v : values) {
    auto coded = encode(v);
    for (auto& c : coded) c = std::clamp(c + rng.normal(0.0, noise_sd), 0.0, 1.0);
    ok += decode(coded) == v;
  }
  return static_cast<double>(ok) / static_cast<double>(values.size());
}

}  // namespace

int main() {
  Rng rng(2001);
  const auto bundle = datagen::make_dataset(datagen::DatasetId::kUgr16, 2000, 2002);
  std::vector<net::Ipv4Address> ips;
  std::vector<std::uint16_t> ports;
  for (const auto& r : bundle.flows.records) {
    ips.push_back(r.key.src_ip);
    ports.push_back(r.key.dst_port);
  }

  auto ip2vec = eval::shared_public_ip2vec();
  const double noise = 0.15;

  eval::print_banner(std::cout,
                     "Table 2: encoding trade-offs (measured groundings of "
                     "the paper's qualitative verdicts)");
  eval::TextTable table({"field/encoding", "noisy decode acc", "width (dims)",
                         "dictionary data-dependent (DP risk)"});

  // IP encodings.
  table.add_row({"IP/byte",
                 eval::format_double(noisy_roundtrip_accuracy(
                     ips, [](net::Ipv4Address ip) { return embed::ip_to_bytes(ip); },
                     [](const std::vector<double>& c) {
                       return embed::bytes_to_ip(c);
                     },
                     noise, rng), 3),
                 "4", "no"});
  table.add_row({"IP/bit",
                 eval::format_double(noisy_roundtrip_accuracy(
                     ips, [](net::Ipv4Address ip) { return embed::ip_to_bits(ip); },
                     [](const std::vector<double>& c) {
                       return embed::bits_to_ip(c);
                     },
                     noise, rng), 3),
                 "32", "no"});
  table.add_row({"IP/vector (IP2Vec on private data)", "(high when in vocab)",
                 "d=4-8", "YES - decoded IPs are training-set IPs"});

  // Port encodings.
  table.add_row({"port/byte",
                 eval::format_double(noisy_roundtrip_accuracy(
                     ports, [](std::uint16_t p) { return embed::port_to_bytes(p); },
                     [](const std::vector<double>& c) {
                       return embed::bytes_to_port(c);
                     },
                     noise, rng), 3),
                 "2", "no"});
  table.add_row({"port/bit",
                 eval::format_double(noisy_roundtrip_accuracy(
                     ports, [](std::uint16_t p) { return embed::port_to_bits(p); },
                     [](const std::vector<double>& c) {
                       return embed::bits_to_port(c);
                     },
                     noise, rng), 3),
                 "16", "no"});
  // Port/vector with PUBLIC vocabulary: NN decode after noise.
  {
    std::size_t ok = 0, considered = 0;
    for (std::uint16_t p : ports) {
      const embed::Token t{embed::TokenKind::kPort, p};
      if (!ip2vec->contains(t)) continue;
      ++considered;
      auto v = ip2vec->embed(t);
      std::vector<double> noisy(v.begin(), v.end());
      for (auto& c : noisy) c += rng.normal(0.0, noise * 0.2);
      ok += ip2vec->nearest(noisy, embed::TokenKind::kPort).value == p;
    }
    table.add_row({"port/vector (IP2Vec on PUBLIC data)",
                   eval::format_double(static_cast<double>(ok) /
                                           std::max<std::size_t>(1, considered),
                                       3),
                   "d=" + std::to_string(ip2vec->dim()),
                   "no (public vocabulary) - NetShare's choice"});
  }
  table.print(std::cout);

  std::cout << "\nNetShare uses bit encoding for IPs and public-vocabulary "
               "IP2Vec for ports (paper Table 2's starred combination).\n";
  return 0;
}
