// Figure 3: relative frequency of the top-5 service destination ports on
// TON-like NetFlow. Baselines miss the heavy service-port modes; NetShare's
// public-data IP2Vec port encoding captures them.
#include <algorithm>
#include <iostream>
#include <map>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

using namespace netshare;

namespace {
std::map<std::uint16_t, double> port_frequency(const net::FlowTrace& t) {
  std::map<std::uint16_t, double> freq;
  for (const auto& r : t.records) freq[r.key.dst_port] += 1.0;
  for (auto& [p, f] : freq) f /= static_cast<double>(t.size());
  return freq;
}
}  // namespace

int main() {
  eval::EvalOptions opt;
  const auto ton = datagen::make_dataset(datagen::DatasetId::kTon, 1200, 301);
  const auto real_freq = port_frequency(ton.flows);

  // Top-5 service destination ports in the real data.
  std::vector<std::pair<double, std::uint16_t>> ranked;
  for (const auto& [p, f] : real_freq) {
    if (p < 1024) ranked.push_back({f, p});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  ranked.resize(std::min<std::size_t>(5, ranked.size()));

  eval::print_banner(std::cout,
                     "Figure 3: top-5 service destination ports (TON-like)");
  std::vector<std::string> header{"model"};
  for (const auto& [f, p] : ranked) header.push_back("port " + std::to_string(p));
  header.push_back("captured mass");
  eval::TextTable table(std::move(header));

  auto add_model = [&](const std::string& name,
                       const std::map<std::uint16_t, double>& freq) {
    std::vector<std::string> cells{name};
    double mass = 0.0;
    for (const auto& [f, p] : ranked) {
      (void)f;
      auto it = freq.find(p);
      const double v = it == freq.end() ? 0.0 : it->second;
      mass += v;
      cells.push_back(eval::format_double(v, 3));
    }
    cells.push_back(eval::format_double(mass, 3));
    table.add_row(std::move(cells));
  };

  add_model("Real", real_freq);
  auto runs = eval::run_flow_models(eval::standard_flow_models(opt), ton.flows,
                                    ton.flows.size(), 302);
  for (const auto& run : runs) {
    add_model(run.name, port_frequency(run.synthetic));
  }
  table.print(std::cout);
  return 0;
}
