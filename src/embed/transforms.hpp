// Continuous-field transforms (Insight 2): log(1+x) range compression for
// large-support fields, min-max [0,1] normalization (the DoppelGANger
// configuration in Appendix C), and one-hot encoding for small categoricals.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netshare::embed {

// y = log1p(x) / log1p(max_value), mapping [0, max] -> [0, 1].
class LogTransform {
 public:
  explicit LogTransform(double max_value);

  double encode(double x) const;
  double decode(double y) const;
  double max_value() const { return max_value_; }

 private:
  double max_value_;
  double denom_;
};

// Affine [min,max] -> [0,1]; fit() learns the range from data.
class MinMaxTransform {
 public:
  MinMaxTransform() = default;
  MinMaxTransform(double lo, double hi);

  static MinMaxTransform fit(std::span<const double> values);

  double encode(double x) const;
  double decode(double y) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
};

// One-hot over k classes.
std::vector<double> one_hot(std::size_t index, std::size_t k);
// Argmax decode (GAN outputs are soft).
std::size_t one_hot_decode(std::span<const double> probs);

}  // namespace netshare::embed
