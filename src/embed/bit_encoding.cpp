#include "embed/bit_encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::embed {

std::vector<double> ip_to_bits(net::Ipv4Address ip) {
  std::vector<double> bits(kIpBits);
  for (std::size_t i = 0; i < kIpBits; ++i) {
    bits[i] = (ip.value() >> (31 - i)) & 1u ? 1.0 : 0.0;
  }
  return bits;
}

net::Ipv4Address bits_to_ip(std::span<const double> bits) {
  if (bits.size() != kIpBits) throw std::invalid_argument("bits_to_ip: size");
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < kIpBits; ++i) {
    v = (v << 1) | (bits[i] >= 0.5 ? 1u : 0u);
  }
  return net::Ipv4Address(v);
}

std::vector<double> port_to_bits(std::uint16_t port) {
  std::vector<double> bits(kPortBits);
  for (std::size_t i = 0; i < kPortBits; ++i) {
    bits[i] = (port >> (15 - i)) & 1u ? 1.0 : 0.0;
  }
  return bits;
}

std::uint16_t bits_to_port(std::span<const double> bits) {
  if (bits.size() != kPortBits) throw std::invalid_argument("bits_to_port: size");
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < kPortBits; ++i) {
    v = static_cast<std::uint16_t>((v << 1) | (bits[i] >= 0.5 ? 1u : 0u));
  }
  return v;
}

std::vector<double> ip_to_bytes(net::Ipv4Address ip) {
  std::vector<double> bytes(kIpBytes);
  for (std::size_t i = 0; i < kIpBytes; ++i) {
    bytes[i] = static_cast<double>(ip.octet(static_cast<int>(i))) / 255.0;
  }
  return bytes;
}

net::Ipv4Address bytes_to_ip(std::span<const double> bytes) {
  if (bytes.size() != kIpBytes) throw std::invalid_argument("bytes_to_ip: size");
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < kIpBytes; ++i) {
    const double b = std::clamp(bytes[i], 0.0, 1.0) * 255.0;
    v = (v << 8) | static_cast<std::uint32_t>(std::lround(b));
  }
  return net::Ipv4Address(v);
}

std::vector<double> port_to_bytes(std::uint16_t port) {
  return {static_cast<double>(port >> 8) / 255.0,
          static_cast<double>(port & 0xff) / 255.0};
}

std::uint16_t bytes_to_port(std::span<const double> bytes) {
  if (bytes.size() != kPortBytes) {
    throw std::invalid_argument("bytes_to_port: size");
  }
  const auto hi = static_cast<std::uint32_t>(
      std::lround(std::clamp(bytes[0], 0.0, 1.0) * 255.0));
  const auto lo = static_cast<std::uint32_t>(
      std::lround(std::clamp(bytes[1], 0.0, 1.0) * 255.0));
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

}  // namespace netshare::embed
