// Bit and byte encodings of IPs/ports (Table 2). NetShare uses bit encoding
// for IP addresses: training-data-independent, hence compatible with DP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace netshare::embed {

// 32 values in {0,1}, most-significant bit first.
std::vector<double> ip_to_bits(net::Ipv4Address ip);
// Decodes with 0.5 thresholding (GAN outputs are in [0,1]).
net::Ipv4Address bits_to_ip(std::span<const double> bits);

// 16 values in {0,1}, most-significant bit first.
std::vector<double> port_to_bits(std::uint16_t port);
std::uint16_t bits_to_port(std::span<const double> bits);

// Byte encoding (PAC-GAN / Flow-WGAN style): each byte scaled to [0,1].
std::vector<double> ip_to_bytes(net::Ipv4Address ip);
net::Ipv4Address bytes_to_ip(std::span<const double> bytes);
std::vector<double> port_to_bytes(std::uint16_t port);
std::uint16_t bytes_to_port(std::span<const double> bytes);

constexpr std::size_t kIpBits = 32;
constexpr std::size_t kPortBits = 16;
constexpr std::size_t kIpBytes = 4;
constexpr std::size_t kPortBytes = 2;

}  // namespace netshare::embed
