#include "embed/alias_sampler.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace netshare::embed {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  if (n > 0xffffffffULL) throw std::invalid_argument("AliasTable: too large");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    sum += w;
  }
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = static_cast<std::uint32_t>(i);
  }
  if (sum <= 0.0) return;  // uniform

  // Vose's method: partition columns into under/over-full by the scaled
  // weight, then pair them off. Stacks are filled in ascending slot order,
  // so construction is deterministic.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers round to probability 1 (self-alias).
  for (std::uint32_t s : small) prob_[s] = 1.0;
  for (std::uint32_t l : large) prob_[l] = 1.0;
}

std::size_t draw_negative(const AliasTable& table, std::size_t positive,
                          std::uint64_t seed, std::uint64_t counter) {
  const std::size_t n = table.size();
  for (std::uint64_t r = 0; r < kNegativeRetries; ++r) {
    const std::size_t s =
        table.sample(mix_seed(seed, counter * kNegativeRetries + r));
    if (s != positive) return s;
  }
  // All retries collided (possible only under an extremely concentrated
  // distribution): take the next slot, which differs whenever n > 1.
  return (positive + 1) % n;
}

}  // namespace netshare::embed
