// Sharded IP2Vec vocabulary (DESIGN.md §12): one dense index shard per
// TokenKind, so hot-path lookups are flat-array reads instead of hashed
// unordered_map probes.
//
//  - Small-domain kinds (ports, protocols, bucketed counters/times) use a
//    direct value -> slot array: O(1), no hashing at all.
//  - IPs use an open-addressing table keyed by the 32-bit address, probed
//    with the splitmix64-mixed hash (token.hpp).
//  - With `max_ip_slots` set, only the most frequent IPs keep exact slots;
//    the tail folds into `ip_tail_buckets` shared hash buckets. This is the
//    frequency cap that makes million-IP traces trainable at bounded table
//    size, and it strengthens the paper's public-data-only privacy argument:
//    rare (more identifying) addresses are only ever represented by a
//    many-to-one bucket.
//
// Slot order within a shard is first-occurrence order over the build input
// (ties in the frequency cap also break by first occurrence), so the layout
// is a pure function of the sentences — independent of hash capacity,
// worker count, or build batching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "embed/token.hpp"

namespace netshare::embed {

struct VocabConfig {
  // Exact slots granted to distinct IPs; 0 = uncapped (every distinct IP
  // gets its own slot, the legacy behaviour).
  std::size_t max_ip_slots = 0;
  // Shared tail buckets for frequency-capped IPs (rounded up to a power of
  // two). Only consulted when the cap is active.
  std::size_t ip_tail_buckets = 256;
};

class ShardedVocab {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  // (Re)builds the vocabulary from sentences: one counting pass, then slot
  // assignment (with the IP frequency cap applied when configured).
  void build(const std::vector<std::vector<Token>>& sentences,
             const VocabConfig& config);

  std::size_t size() const { return total_; }
  std::size_t kind_size(TokenKind k) const {
    return kind_size_[static_cast<std::size_t>(k)];
  }
  std::size_t kind_offset(TokenKind k) const {
    return kind_offset_[static_cast<std::size_t>(k)];
  }

  // Slot of `t` within its kind's shard, or npos. A frequency-capped IP
  // resolves to its tail bucket; an IP never seen at build time also
  // resolves to its tail bucket when that bucket was materialized (so OOV
  // addresses decode deterministically under the cap), else npos.
  std::size_t kind_slot(const Token& t) const;
  // Global dense index (kind_offset + kind_slot), or npos.
  std::size_t lookup(const Token& t) const {
    const std::size_t s = kind_slot(t);
    return s == npos ? npos : kind_offset(t.kind) + s;
  }
  // True only for tokens holding their own exact slot (tail-mapped IPs and
  // unseen values return false).
  bool contains_exact(const Token& t) const;

  // Representative token of a slot: the exact value for exact slots, the
  // bucket's most frequent member (ties by first occurrence) for tail slots.
  Token token_at(TokenKind kind, std::size_t slot) const;
  Token token_at_global(std::size_t index) const;

  // Build-input occurrence count per global slot (tail slot = sum over its
  // members) — the unigram distribution the negative sampler is built from.
  const std::vector<std::uint64_t>& slot_counts() const { return counts_; }

  // IP shard layout: slots [0, ip_exact_slots) are exact addresses,
  // [ip_exact_slots, kind_size(kIp)) are materialized tail buckets.
  std::size_t ip_exact_slots() const { return ip_exact_; }
  bool ip_capped() const { return ip_capped_; }

 private:
  std::size_t ip_probe(std::uint32_t value) const;

  // Per-kind direct shards (every kind except kIp): value -> slot + 1
  // (0 = absent), plus the reverse slot -> value map.
  std::vector<std::uint32_t> direct_slot_[kNumTokenKinds];
  std::vector<std::uint32_t> value_of_slot_[kNumTokenKinds];

  // IP shard: open addressing, power-of-two capacity, keys are value + 1
  // (0 = empty), vals are final slots.
  std::vector<std::uint64_t> ip_keys_;
  std::vector<std::uint32_t> ip_slot_;
  std::size_t ip_exact_ = 0;
  bool ip_capped_ = false;
  std::uint32_t tail_mask_ = 0;  // bucket index mask (power-of-two buckets)
  std::vector<std::uint32_t> tail_slot_of_bucket_;  // dense slot or absent

  std::size_t kind_size_[kNumTokenKinds] = {};
  std::size_t kind_offset_[kNumTokenKinds] = {};
  std::size_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace netshare::embed
