#include "embed/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::embed {

LogTransform::LogTransform(double max_value)
    : max_value_(max_value), denom_(std::log1p(max_value)) {
  if (max_value <= 0.0) throw std::invalid_argument("LogTransform: max_value");
}

double LogTransform::encode(double x) const {
  x = std::clamp(x, 0.0, max_value_);
  return std::log1p(x) / denom_;
}

double LogTransform::decode(double y) const {
  y = std::clamp(y, 0.0, 1.0);
  return std::expm1(y * denom_);
}

MinMaxTransform::MinMaxTransform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (hi <= lo) throw std::invalid_argument("MinMaxTransform: empty range");
}

MinMaxTransform MinMaxTransform::fit(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("MinMaxTransform::fit: empty");
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  if (*hi <= *lo) return MinMaxTransform(*lo, *lo + 1.0);
  return MinMaxTransform(*lo, *hi);
}

double MinMaxTransform::encode(double x) const {
  return std::clamp((x - lo_) / (hi_ - lo_), 0.0, 1.0);
}

double MinMaxTransform::decode(double y) const {
  return lo_ + std::clamp(y, 0.0, 1.0) * (hi_ - lo_);
}

std::vector<double> one_hot(std::size_t index, std::size_t k) {
  if (index >= k) throw std::invalid_argument("one_hot: index out of range");
  std::vector<double> v(k, 0.0);
  v[index] = 1.0;
  return v;
}

std::size_t one_hot_decode(std::span<const double> probs) {
  if (probs.empty()) throw std::invalid_argument("one_hot_decode: empty");
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace netshare::embed
