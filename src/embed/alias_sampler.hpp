// Walker alias-table sampling for the skip-gram negative sampler
// (DESIGN.md §12). A draw is a pure function of the 64 random bits fed in,
// so counter-based bit streams (common/rng.hpp mix_seed) make the sampled
// sequence independent of how callers batch or thread the work — the same
// construction as the generation path's NoiseStream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace netshare::embed {

class AliasTable {
 public:
  AliasTable() = default;
  // Builds the table for unnormalized non-negative weights (all-zero weights
  // degrade to uniform). O(n) Vose construction, deterministic.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  // Draws a slot from 64 random bits: the high 32 bits pick the column (via
  // a multiply-shift, no modulo bias beyond 2^-32), the low 32 bits the
  // coin flip against the column's cutoff. Pure function of `bits`.
  std::size_t sample(std::uint64_t bits) const {
    const std::uint64_t n = prob_.size();
    const std::size_t col = static_cast<std::size_t>(((bits >> 32) * n) >> 32);
    const double u =
        static_cast<double>(bits & 0xffffffffULL) * 0x1.0p-32;
    return u < prob_[col] ? col : alias_[col];
  }

 private:
  std::vector<double> prob_;         // acceptance cutoff per column
  std::vector<std::uint32_t> alias_; // fallback slot per column
};

// Deterministic negative draw for skip-gram training: samples from `table`
// with bits mix_seed(seed, counter * kNegativeRetries + retry), resampling
// while the draw equals the positive context (bounded retries), and falls
// back to the slot after the positive. This replaces the legacy behaviour
// where a collision silently *dropped* the negative (training fewer than
// `negatives` per pair). Pure function of its arguments: the same
// (seed, counter) yields the same negative at any worker count.
inline constexpr std::uint64_t kNegativeRetries = 16;
std::size_t draw_negative(const AliasTable& table, std::size_t positive,
                          std::uint64_t seed, std::uint64_t counter);

}  // namespace netshare::embed
