#include "embed/ip2vec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "ml/kernels.hpp"

namespace netshare::embed {

namespace {

std::vector<Token> record_sentence(const net::FiveTuple& key) {
  std::vector<Token> s;
  s.reserve(5);
  s.push_back({TokenKind::kIp, key.src_ip.value()});
  s.push_back({TokenKind::kIp, key.dst_ip.value()});
  if (key.protocol != net::Protocol::kIcmp) {
    s.push_back({TokenKind::kPort, key.src_port});
    s.push_back({TokenKind::kPort, key.dst_port});
  }
  s.push_back({TokenKind::kProtocol, static_cast<std::uint32_t>(key.protocol)});
  return s;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

std::vector<std::vector<Token>> sentences_from_flows(const net::FlowTrace& t) {
  std::vector<std::vector<Token>> out;
  out.reserve(t.size());
  for (const auto& r : t.records) out.push_back(record_sentence(r.key));
  return out;
}

std::vector<std::vector<Token>> sentences_from_packets(
    const net::PacketTrace& t) {
  std::vector<std::vector<Token>> out;
  out.reserve(t.size());
  for (const auto& p : t.packets) out.push_back(record_sentence(p.key));
  return out;
}

// ---------------------------------------------------------------------------
// Training

Ip2Vec::TrainSetup Ip2Vec::prepare_training(
    const std::vector<std::vector<Token>>& sentences, const Config& config,
    Rng& rng) {
  if (config.dim == 0) throw std::invalid_argument("Ip2Vec::train: dim == 0");
  dim_ = config.dim;
  vocab_.build(sentences, config.vocab);
  if (vocab_.size() == 0) {
    throw std::invalid_argument("Ip2Vec::train: no tokens");
  }

  // Table blocks, initialized in a fixed draw order (kind-major ascending
  // slots, all in-vectors then all out-vectors) so the starting point is a
  // pure function of (sentences, config, rng state).
  const double init = 0.5 / static_cast<double>(dim_);
  auto make_blocks = [&](std::vector<ml::Matrix>& blocks, std::size_t slots) {
    blocks.clear();
    for (std::size_t at = 0; at < slots; at += kBlockRows) {
      blocks.emplace_back(std::min(kBlockRows, slots - at), dim_);
    }
  };
  auto fill_blocks = [&](std::vector<ml::Matrix>& blocks) {
    for (auto& b : blocks) {
      for (double& x : b.data()) x = rng.uniform(-init, init);
    }
  };
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    make_blocks(in_blocks_[k], vocab_.kind_size(static_cast<TokenKind>(k)));
    make_blocks(out_blocks_[k], vocab_.kind_size(static_cast<TokenKind>(k)));
  }
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) fill_blocks(in_blocks_[k]);
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) fill_blocks(out_blocks_[k]);

  TrainSetup ts;
  // Sentences resolved to dense global ids ONCE — the per-pair vocab_.at()
  // hash lookups of the legacy trainer hoisted out of the epoch loops.
  std::size_t token_total = 0;
  for (const auto& s : sentences) token_total += s.size();
  ts.tokens.reserve(token_total);
  ts.tok_begin.reserve(sentences.size() + 1);
  ts.pair_begin.reserve(sentences.size() + 1);
  ts.tok_begin.push_back(0);
  ts.pair_begin.push_back(0);
  for (const auto& s : sentences) {
    for (const Token& t : s) {
      ts.tokens.push_back(static_cast<std::uint32_t>(vocab_.lookup(t)));
    }
    const std::uint64_t len = s.size();
    ts.tok_begin.push_back(ts.tokens.size());
    ts.pair_begin.push_back(ts.pair_begin.back() +
                            (len < 2 ? 0 : len * (len - 1)));
  }

  // Negative-sampling distribution: unigram^neg_power over the whole
  // vocabulary (the legacy sampler's uniform-over-vocab domain, reweighted).
  const auto& counts = vocab_.slot_counts();
  std::vector<double> weights(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(counts[i]), config.neg_power);
  }
  ts.alias = AliasTable(weights);
  ts.neg_seed = rng.engine()();
  return ts;
}

void Ip2Vec::train(const std::vector<std::vector<Token>>& sentences,
                   const Config& config, Rng& rng) {
  const TrainSetup ts = prepare_training(sentences, config, rng);
  const std::uint64_t total_pairs = ts.total_pairs();
  const auto negatives = static_cast<std::uint64_t>(
      std::max(0, config.negatives));
  const std::uint64_t ipp = 1 + negatives;  // interactions per pair
  const std::uint64_t total_inter = total_pairs * ipp;
  const std::uint64_t batch =
      std::max<std::uint64_t>(1, config.batch_interactions);

  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (ThreadPool::on_worker_thread() || ml::kernels::in_kernel_task()) {
    workers = 1;  // already inside a parallel context: don't oversubscribe
  }
  workers = static_cast<std::size_t>(
      std::min<std::uint64_t>(workers, std::max<std::uint64_t>(1, total_inter)));

  // Row-pointer caches: one indirection per interaction instead of a
  // kind-offset scan. Valid for the duration of this call (blocks are not
  // resized during training).
  std::vector<double*> inr(vocab_.size());
  std::vector<double*> outr(vocab_.size());
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    const std::size_t off = vocab_.kind_offset(static_cast<TokenKind>(k));
    const std::size_t sz = vocab_.kind_size(static_cast<TokenKind>(k));
    for (std::size_t s = 0; s < sz; ++s) {
      inr[off + s] = in_row(k, s);
      outr[off + s] = out_row(k, s);
    }
  }

  std::vector<std::uint32_t> centers(batch), others(batch);
  std::vector<double> coeff(batch);
  const double lr = config.lr;
  const std::size_t dim = dim_;

  // Phase A for interactions [k0, k1) of the batch starting at `bs`:
  // resolve each interaction to (center, other, label) and compute its
  // coefficient lr * (label − σ(u·v)) against the pre-batch tables. Pure
  // reads with one independent rounding chain per interaction, so the
  // partition into ranges cannot affect any value.
  auto coefficients = [&](std::uint64_t epoch, std::uint64_t bs,
                          std::uint64_t k0, std::uint64_t k1) {
    std::uint64_t s = static_cast<std::uint64_t>(
        std::upper_bound(ts.pair_begin.begin(), ts.pair_begin.end(), k0 / ipp) -
        ts.pair_begin.begin() - 1);
    for (std::uint64_t k = k0; k < k1; ++k) {
      const std::uint64_t p = k / ipp;
      const std::uint64_t r = k % ipp;
      while (p >= ts.pair_begin[s + 1]) ++s;
      const std::uint64_t len = ts.tok_begin[s + 1] - ts.tok_begin[s];
      const std::uint64_t lp = p - ts.pair_begin[s];
      const std::uint64_t i = lp / (len - 1);
      const std::uint64_t jr = lp % (len - 1);
      const std::uint64_t j = jr + (jr >= i ? 1 : 0);
      const std::uint32_t center = ts.tokens[ts.tok_begin[s] + i];
      const std::uint32_t context = ts.tokens[ts.tok_begin[s] + j];
      std::uint32_t other = context;
      double label = 1.0;
      if (r != 0) {
        other = static_cast<std::uint32_t>(draw_negative(
            ts.alias, context, ts.neg_seed,
            (epoch * total_pairs + p) * negatives + (r - 1)));
        label = 0.0;
      }
      const double* u = inr[center];
      const double* v = outr[other];
      double dot = 0.0;
      for (std::size_t d = 0; d < dim; ++d) dot += u[d] * v[d];
      centers[k - bs] = center;
      others[k - bs] = other;
      coeff[k - bs] = lr * (label - sigmoid(dot));
    }
  };

  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);

  for (std::uint64_t epoch = 0;
       epoch < static_cast<std::uint64_t>(std::max(0, config.epochs));
       ++epoch) {
    for (std::uint64_t bs = 0; bs < total_inter; bs += batch) {
      const std::uint64_t be = std::min(bs + batch, total_inter);
      const std::uint64_t len = be - bs;
      if (pool && len > 1) {
        const std::uint64_t nr = std::min<std::uint64_t>(workers, len);
        const std::uint64_t chunk = (len + nr - 1) / nr;
        pool->parallel_for(static_cast<std::size_t>(nr), [&](std::size_t r) {
          const std::uint64_t k0 = bs + static_cast<std::uint64_t>(r) * chunk;
          const std::uint64_t k1 = std::min(k0 + chunk, be);
          if (k0 < k1) coefficients(epoch, bs, k0, k1);
        });
      } else {
        coefficients(epoch, bs, bs, be);
      }
      // Apply serially in interaction order — the same update rule as the
      // legacy per-pair SGD, so batch_interactions == 1 reproduces it.
      for (std::uint64_t k = 0; k < len; ++k) {
        double* u = inr[centers[k]];
        double* v = outr[others[k]];
        const double c = coeff[k];
        for (std::size_t d = 0; d < dim; ++d) {
          const double ud = u[d];
          u[d] += c * v[d];
          v[d] += c * ud;
        }
      }
    }
  }
  finalize_tables();
}

void Ip2Vec::train_reference(const std::vector<std::vector<Token>>& sentences,
                             const Config& config, Rng& rng) {
  const TrainSetup ts = prepare_training(sentences, config, rng);
  const std::uint64_t total_pairs = ts.total_pairs();
  const auto negatives = static_cast<std::uint64_t>(
      std::max(0, config.negatives));
  const std::uint64_t batch =
      std::max<std::uint64_t>(1, config.batch_interactions);
  const std::size_t dim = dim_;

  // Naive traversal: nested sentence/pair loops (vs the engine's flat
  // interaction-index arithmetic), one pending batch of coefficients
  // computed at push time (tables only change at flush, so values are read
  // against the pre-batch state exactly like the engine's phase A).
  struct Pending {
    std::uint32_t center, other;
    double coeff;
  };
  std::vector<Pending> pending;
  pending.reserve(batch);

  // Locate rows by global id with plain kind-offset scans (no caches).
  auto in_of = [&](std::uint32_t g) {
    for (std::size_t k = kNumTokenKinds; k-- > 0;) {
      const std::size_t off = vocab_.kind_offset(static_cast<TokenKind>(k));
      if (g >= off) return in_row(k, g - off);
    }
    throw std::out_of_range("Ip2Vec::train_reference: global id");
  };
  auto out_of = [&](std::uint32_t g) {
    for (std::size_t k = kNumTokenKinds; k-- > 0;) {
      const std::size_t off = vocab_.kind_offset(static_cast<TokenKind>(k));
      if (g >= off) return out_row(k, g - off);
    }
    throw std::out_of_range("Ip2Vec::train_reference: global id");
  };
  auto apply_pending = [&]() {
    for (const Pending& e : pending) {
      double* u = in_of(e.center);
      double* v = out_of(e.other);
      for (std::size_t d = 0; d < dim; ++d) {
        const double ud = u[d];
        u[d] += e.coeff * v[d];
        v[d] += e.coeff * ud;
      }
    }
    pending.clear();
  };
  auto push = [&](std::uint32_t center, std::uint32_t other, double label) {
    const double* u = in_of(center);
    const double* v = out_of(other);
    double dot = 0.0;
    for (std::size_t d = 0; d < dim; ++d) dot += u[d] * v[d];
    pending.push_back({center, other, config.lr * (label - sigmoid(dot))});
    if (pending.size() == batch) apply_pending();
  };

  for (std::uint64_t epoch = 0;
       epoch < static_cast<std::uint64_t>(std::max(0, config.epochs));
       ++epoch) {
    std::uint64_t p = 0;  // global pair index within the epoch
    for (std::size_t s = 0; s + 1 < ts.tok_begin.size(); ++s) {
      const std::uint64_t len = ts.tok_begin[s + 1] - ts.tok_begin[s];
      if (len < 2) continue;
      for (std::uint64_t i = 0; i < len; ++i) {
        const std::uint32_t center = ts.tokens[ts.tok_begin[s] + i];
        for (std::uint64_t j = 0; j < len; ++j) {
          if (i == j) continue;
          const std::uint32_t context = ts.tokens[ts.tok_begin[s] + j];
          push(center, context, 1.0);
          for (std::uint64_t r = 0; r < negatives; ++r) {
            const std::uint32_t neg = static_cast<std::uint32_t>(draw_negative(
                ts.alias, context, ts.neg_seed,
                (epoch * total_pairs + p) * negatives + r));
            push(center, neg, 0.0);
          }
          ++p;
        }
      }
    }
    apply_pending();  // epoch boundary: batches never span epochs
  }
  finalize_tables();
}

void Ip2Vec::finalize_tables() {
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    const std::size_t slots = vocab_.kind_size(static_cast<TokenKind>(k));
    norms_[k].resize(slots);
    dec_blocks_[k].clear();
    for (std::size_t at = 0; at < slots; at += kBlockRows) {
      const std::size_t mb = std::min(kBlockRows, slots - at);
      ml::Matrix t(dim_, mb);
      for (std::size_t j = 0; j < mb; ++j) {
        const double* e = in_row(k, at + j);
        double n2 = 0.0;
        for (std::size_t d = 0; d < dim_; ++d) {
          t(d, j) = e[d];
          n2 += e[d] * e[d];
        }
        norms_[k][at + j] = n2;
      }
      dec_blocks_[k].push_back(std::move(t));
    }
  }
}

// ---------------------------------------------------------------------------
// Lookup / decode

std::span<const double> Ip2Vec::embed(const Token& t) const {
  const std::size_t slot = vocab_.kind_slot(t);
  if (slot == ShardedVocab::npos) {
    throw std::out_of_range("Ip2Vec::embed: OOV token");
  }
  return {in_row(static_cast<std::size_t>(t.kind), slot), dim_};
}

std::span<const double> Ip2Vec::slot_vector(TokenKind kind,
                                            std::size_t slot) const {
  if (slot >= vocab_.kind_size(kind)) {
    throw std::out_of_range("Ip2Vec::slot_vector: slot");
  }
  return {in_row(static_cast<std::size_t>(kind), slot), dim_};
}

std::span<const double> Ip2Vec::slot_out_vector(TokenKind kind,
                                                std::size_t slot) const {
  if (slot >= vocab_.kind_size(kind)) {
    throw std::out_of_range("Ip2Vec::slot_out_vector: slot");
  }
  const auto k = static_cast<std::size_t>(kind);
  return {out_blocks_[k][slot >> kBlockShift].row_ptr(slot & (kBlockRows - 1)),
          dim_};
}

Token Ip2Vec::nearest(std::span<const double> vec, TokenKind kind) const {
  return nearest_if(vec, kind, [](const Token&) { return true; });
}

Token Ip2Vec::nearest_if(
    std::span<const double> vec, TokenKind kind,
    const std::function<bool(const Token&)>& accept) const {
  if (vec.size() != dim_) throw std::invalid_argument("Ip2Vec::nearest: dim");
  const auto ki = static_cast<std::size_t>(kind);
  const std::size_t m = vocab_.kind_size(kind);
  constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();
  double best = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  std::size_t best_slot = kNoSlot, best_any_slot = kNoSlot;
  for (std::size_t w = 0; w < m; ++w) {
    const double* u = in_row(ki, w);
    const double cap = std::max(best, best_any);
    double d2 = 0.0;
    for (std::size_t k = 0; k < dim_ && d2 < cap; ++k) {
      const double d = u[k] - vec[k];
      d2 += d * d;
    }
    if (d2 < best_any) {
      best_any = d2;
      best_any_slot = w;
    }
    if (d2 < best && accept(vocab_.token_at(kind, w))) {
      best = d2;
      best_slot = w;
    }
  }
  if (best_slot == kNoSlot) best_slot = best_any_slot;
  if (best_slot == kNoSlot) {
    throw std::out_of_range("Ip2Vec::nearest: no tokens of kind");
  }
  return vocab_.token_at(kind, best_slot);
}

void Ip2Vec::nearest_batch(const ml::Matrix& queries, TokenKind kind,
                           std::span<const std::uint8_t* const> masks,
                           std::span<Token> out, ml::Workspace& ws) const {
  const std::size_t n = queries.rows();
  if (queries.cols() != dim_) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: dim");
  }
  if (out.size() != n) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: out size");
  }
  if (!masks.empty() && masks.size() != n) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: masks size");
  }
  const auto ki = static_cast<std::size_t>(kind);
  const std::size_t m = vocab_.kind_size(kind);
  if (m == 0) throw std::out_of_range("Ip2Vec::nearest: no tokens of kind");
  if (n == 0) return;
  const auto& dec = dec_blocks_[ki];
  const double* norms = norms_[ki].data();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Fixed pooled scratch: a query panel, one score panel reused (via
  // capacity-preserving resize) across candidate blocks, and per-row
  // running minima [best, best_slot, any, any_slot].
  ml::Matrix& qb = ws.get(std::min(n, kQueryBlock), dim_);
  ml::Matrix& scores = ws.get(std::min(n, kQueryBlock), std::min(m, kBlockRows));
  ml::Matrix& run = ws.get(n, 4);
  for (std::size_t i = 0; i < n; ++i) {
    double* br = run.row_ptr(i);
    br[0] = kInf;
    br[1] = 0.0;
    br[2] = kInf;
    br[3] = 0.0;
  }

  for (std::size_t rb = 0; rb < n; rb += kQueryBlock) {
    const std::size_t nb = std::min(kQueryBlock, n - rb);
    qb.resize(nb, dim_);
    for (std::size_t i = 0; i < nb; ++i) {
      std::memcpy(qb.row_ptr(i), queries.row_ptr(rb + i),
                  dim_ * sizeof(double));
    }
    for (std::size_t b = 0; b < dec.size(); ++b) {
      const std::size_t sb = b << kBlockShift;
      const std::size_t mb = dec[b].cols();
      // Cross terms for the whole (query panel × candidate block) tile in
      // one kernel call: bitwise identical to the serial reference at any
      // thread count / SIMD tier (DESIGN.md §5/§10).
      ml::kernels::matmul_into(qb, dec[b], scores);
      for (std::size_t i = 0; i < nb; ++i) {
        const double* row = scores.row_ptr(i);
        double* br = run.row_ptr(rb + i);
        // Norm-form score: ‖e‖² − 2⟨q,e⟩ (the per-row ‖q‖² constant cannot
        // change the argmin). Score and argmin are fused into one read-only
        // sweep of the product tile — the tile is far larger than cache, so
        // a separate score pass would double its memory traffic. Strict <
        // keeps the first minimum, so ascending blocks × ascending j
        // reproduce the serial scan order.
        if (masks.empty()) {
          for (std::size_t j = 0; j < mb; ++j) {
            const double s = norms[sb + j] - 2.0 * row[j];
            if (s < br[2]) {
              br[2] = s;
              br[3] = static_cast<double>(sb + j);
            }
          }
        } else {
          const std::uint8_t* mask = masks[rb + i];
          for (std::size_t j = 0; j < mb; ++j) {
            const double s = norms[sb + j] - 2.0 * row[j];
            if (s < br[2]) {
              br[2] = s;
              br[3] = static_cast<double>(sb + j);
            }
            if (s < br[0] && mask[sb + j]) {
              br[0] = s;
              br[1] = static_cast<double>(sb + j);
            }
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double* br = run.row_ptr(i);
    // Masked rows where nothing qualified fall back to the unfiltered
    // nearest, mirroring nearest_if.
    const std::size_t slot = static_cast<std::size_t>(
        (!masks.empty() && br[0] < kInf) ? br[1] : br[3]);
    out[i] = vocab_.token_at(kind, slot);
  }
}

void Ip2Vec::nearest_batch_reference(
    const ml::Matrix& queries, TokenKind kind,
    std::span<const std::uint8_t* const> masks, std::span<Token> out) const {
  const std::size_t n = queries.rows();
  if (queries.cols() != dim_) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: dim");
  }
  if (out.size() != n) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: out size");
  }
  if (!masks.empty() && masks.size() != n) {
    throw std::invalid_argument("Ip2Vec::nearest_batch: masks size");
  }
  const auto ki = static_cast<std::size_t>(kind);
  const std::size_t m = vocab_.kind_size(kind);
  if (m == 0) throw std::out_of_range("Ip2Vec::nearest: no tokens of kind");
  const double* norms = norms_[ki].data();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < n; ++i) {
    const double* q = queries.row_ptr(i);
    const std::uint8_t* mask = masks.empty() ? nullptr : masks[i];
    double best = kInf, any = kInf;
    std::size_t best_slot = 0, any_slot = 0;
    bool has_best = false;
    for (std::size_t j = 0; j < m; ++j) {
      const double* e = in_row(ki, j);
      // Ascending-k accumulation with one rounding per product and the
      // reference kernel's zero-skip — bitwise the chain matmul_into
      // produces for this element.
      double acc = 0.0;
      for (std::size_t k = 0; k < dim_; ++k) {
        const double qk = q[k];
        if (qk == 0.0) continue;
        acc += qk * e[k];
      }
      const double s = norms[j] - 2.0 * acc;
      if (s < any) {
        any = s;
        any_slot = j;
      }
      if (s < best && (!mask || mask[j])) {
        best = s;
        best_slot = j;
        has_best = true;
      }
    }
    out[i] = vocab_.token_at(kind, (mask && has_best) ? best_slot : any_slot);
  }
}

bool Ip2Vec::bitwise_equal(const Ip2Vec& other) const {
  if (dim_ != other.dim_ || vocab_.size() != other.vocab_.size()) return false;
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    const auto kind = static_cast<TokenKind>(k);
    const std::size_t sz = vocab_.kind_size(kind);
    if (sz != other.vocab_.kind_size(kind)) return false;
    for (std::size_t s = 0; s < sz; ++s) {
      if (!(vocab_.token_at(kind, s) == other.vocab_.token_at(kind, s))) {
        return false;
      }
    }
    for (std::size_t b = 0; b < in_blocks_[k].size(); ++b) {
      const auto& a = in_blocks_[k][b];
      const auto& c = other.in_blocks_[k][b];
      if (a.rows() != c.rows() ||
          std::memcmp(a.data().data(), c.data().data(),
                      a.rows() * a.cols() * sizeof(double)) != 0) {
        return false;
      }
    }
    for (std::size_t b = 0; b < out_blocks_[k].size(); ++b) {
      const auto& a = out_blocks_[k][b];
      const auto& c = other.out_blocks_[k][b];
      if (a.rows() != c.rows() ||
          std::memcmp(a.data().data(), c.data().data(),
                      a.rows() * a.cols() * sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace netshare::embed
