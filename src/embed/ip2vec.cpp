#include "embed/ip2vec.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace netshare::embed {

namespace {
std::vector<Token> record_sentence(const net::FiveTuple& key) {
  std::vector<Token> s;
  s.reserve(5);
  s.push_back({TokenKind::kIp, key.src_ip.value()});
  s.push_back({TokenKind::kIp, key.dst_ip.value()});
  if (key.protocol != net::Protocol::kIcmp) {
    s.push_back({TokenKind::kPort, key.src_port});
    s.push_back({TokenKind::kPort, key.dst_port});
  }
  s.push_back({TokenKind::kProtocol, static_cast<std::uint32_t>(key.protocol)});
  return s;
}
}  // namespace

std::vector<std::vector<Token>> sentences_from_flows(const net::FlowTrace& t) {
  std::vector<std::vector<Token>> out;
  out.reserve(t.size());
  for (const auto& r : t.records) out.push_back(record_sentence(r.key));
  return out;
}

std::vector<std::vector<Token>> sentences_from_packets(
    const net::PacketTrace& t) {
  std::vector<std::vector<Token>> out;
  out.reserve(t.size());
  for (const auto& p : t.packets) out.push_back(record_sentence(p.key));
  return out;
}

void Ip2Vec::sgd_pair(std::size_t center, std::size_t context, double label,
                      double lr) {
  double* u = &in_vecs_[center * dim_];
  double* v = &out_vecs_[context * dim_];
  double dot = 0.0;
  for (std::size_t k = 0; k < dim_; ++k) dot += u[k] * v[k];
  const double sig = 1.0 / (1.0 + std::exp(-dot));
  const double g = lr * (label - sig);
  for (std::size_t k = 0; k < dim_; ++k) {
    const double uk = u[k];
    u[k] += g * v[k];
    v[k] += g * uk;
  }
}

void Ip2Vec::train(const std::vector<std::vector<Token>>& sentences,
                   const Config& config, Rng& rng) {
  dim_ = config.dim;
  vocab_.clear();
  words_.clear();
  for (const auto& s : sentences) {
    for (const Token& t : s) {
      if (vocab_.try_emplace(t, words_.size()).second) words_.push_back(t);
    }
  }
  if (words_.empty()) throw std::invalid_argument("Ip2Vec::train: no tokens");

  in_vecs_.assign(words_.size() * dim_, 0.0);
  out_vecs_.assign(words_.size() * dim_, 0.0);
  const double init = 0.5 / static_cast<double>(dim_);
  for (auto& v : in_vecs_) v = rng.uniform(-init, init);
  for (auto& v : out_vecs_) v = rng.uniform(-init, init);

  const auto vocab_n = static_cast<std::int64_t>(words_.size());
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& s : sentences) {
      for (std::size_t i = 0; i < s.size(); ++i) {
        const std::size_t center = vocab_.at(s[i]);
        for (std::size_t j = 0; j < s.size(); ++j) {
          if (i == j) continue;
          sgd_pair(center, vocab_.at(s[j]), 1.0, config.lr);
          for (int n = 0; n < config.negatives; ++n) {
            const auto neg = static_cast<std::size_t>(
                rng.uniform_int(0, vocab_n - 1));
            if (words_[neg] == s[j]) continue;
            sgd_pair(center, neg, 0.0, config.lr);
          }
        }
      }
    }
  }
}

std::span<const double> Ip2Vec::embed(const Token& t) const {
  auto it = vocab_.find(t);
  if (it == vocab_.end()) throw std::out_of_range("Ip2Vec::embed: OOV token");
  return {&in_vecs_[it->second * dim_], dim_};
}

Token Ip2Vec::nearest(std::span<const double> vec, TokenKind kind) const {
  return nearest_if(vec, kind, [](const Token&) { return true; });
}

Token Ip2Vec::nearest_if(
    std::span<const double> vec, TokenKind kind,
    const std::function<bool(const Token&)>& accept) const {
  if (vec.size() != dim_) throw std::invalid_argument("Ip2Vec::nearest: dim");
  double best = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  const Token* best_token = nullptr;
  const Token* best_any_token = nullptr;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w].kind != kind) continue;
    const double* u = &in_vecs_[w * dim_];
    const double cap = std::max(best, best_any);
    double d2 = 0.0;
    for (std::size_t k = 0; k < dim_ && d2 < cap; ++k) {
      const double d = u[k] - vec[k];
      d2 += d * d;
    }
    if (d2 < best_any) {
      best_any = d2;
      best_any_token = &words_[w];
    }
    if (d2 < best && accept(words_[w])) {
      best = d2;
      best_token = &words_[w];
    }
  }
  if (!best_token) best_token = best_any_token;
  if (!best_token) throw std::out_of_range("Ip2Vec::nearest: no tokens of kind");
  return *best_token;
}

}  // namespace netshare::embed
