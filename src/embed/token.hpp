// Token alphabet shared by the IP2Vec embedding engine (DESIGN.md §12):
// header-field values tagged with their field kind. Split out of ip2vec.hpp
// so the vocabulary / sampler units can depend on tokens without pulling in
// the trainer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace netshare::embed {

enum class TokenKind : std::uint8_t {
  kIp,
  kPort,
  kProtocol,
  // Extended kinds used by the E-WGAN-GP baseline, which embeds every
  // NetFlow field (Ring et al. 2019): bucketed counters and times.
  kPackets,
  kBytes,
  kDuration,
  kStartTime,
};

inline constexpr std::size_t kNumTokenKinds = 7;

struct Token {
  TokenKind kind;
  std::uint32_t value;

  friend bool operator==(const Token&, const Token&) = default;
};

// splitmix64 finalizer (Steele et al.). libstdc++'s std::hash<uint64_t> is
// the identity, so hashing `(kind << 32) ^ value` directly clusters
// sequential IPs into consecutive buckets; the finalizer spreads them.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct TokenHash {
  std::size_t operator()(const Token& t) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(t.kind) << 32) ^ t.value));
  }
};

}  // namespace netshare::embed
