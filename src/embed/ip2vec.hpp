// IP2Vec (Ring et al. 2017): Word2Vec-style skip-gram embeddings of header
// field values, trained with negative sampling. Each 5-tuple is a "sentence"
// whose words are its IPs, ports, and protocol.
//
// NetShare's privacy-aware variant (Insight 2) trains the dictionary ONLY on
// public data and uses it to encode port numbers and protocols (IPs use bit
// encoding); decoding is nearest-neighbour search over the public vocabulary,
// so the mapping never depends on private data.
//
// Scalable engine (DESIGN.md §12): the vocabulary is sharded per kind
// (embed/vocab.hpp), training is interaction-batched — coefficients of a
// batch are computed against the state left by the previous batch (a pure,
// parallelizable read phase), then applied serially in interaction order —
// so embeddings are bitwise identical at any worker count, negatives come
// from a counter-driven alias sampler (embed/alias_sampler.hpp), and decode
// is a blocked nearest-neighbour kernel over the SIMD matmul tier. The
// linear scan (nearest / nearest_if) and the serial scorer
// (nearest_batch_reference) are retained as oracles.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "embed/alias_sampler.hpp"
#include "embed/token.hpp"
#include "embed/vocab.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"
#include "net/trace.hpp"

namespace netshare::embed {

// Builds IP2Vec sentences from traces: one sentence per record with tokens
// {srcIP, dstIP, srcPort, dstPort, protocol} (ICMP records skip ports).
std::vector<std::vector<Token>> sentences_from_flows(const net::FlowTrace& t);
std::vector<std::vector<Token>> sentences_from_packets(const net::PacketTrace& t);

class Ip2Vec {
 public:
  struct Config {
    std::size_t dim = 8;
    int epochs = 4;
    int negatives = 4;
    double lr = 0.05;
    // Negative-sampling distribution: unigram count^neg_power over the whole
    // vocabulary (word2vec's 0.75; 0 = uniform like the legacy sampler).
    double neg_power = 0.75;
    // Interactions per training batch. Value-affecting (fixed regardless of
    // worker count); 1 degenerates to classic per-pair sequential SGD.
    // Stability bound: a batch applies stale coefficients, so a row touched
    // t times in one batch moves by ~t·lr of its partner's magnitude —
    // divergence when t·lr ≳ 1. Hot tokens (protocols appear in every
    // sentence) are touched ~batch/15 times per batch, so keep
    // batch_interactions·lr ≲ 15 (the default 64·0.05 = 3.2 is safe).
    std::size_t batch_interactions = 64;
    // Coefficient-phase fan-out. Speed only: any value (including 0 =
    // hardware concurrency) yields bitwise-identical embeddings, because
    // the apply phase is serial in interaction order.
    std::size_t workers = 1;
    VocabConfig vocab;
  };

  // Builds the vocabulary and trains skip-gram embeddings (batched engine).
  void train(const std::vector<std::vector<Token>>& sentences,
             const Config& config, Rng& rng);
  // Naive serial implementation of the identical training semantics — the
  // oracle the batched engine is bitwise-tested against.
  void train_reference(const std::vector<std::vector<Token>>& sentences,
                       const Config& config, Rng& rng);

  // True when `t` resolves to a slot — its own exact slot, or (for
  // frequency-capped IPs) its tail bucket.
  bool contains(const Token& t) const {
    return vocab_.lookup(t) != ShardedVocab::npos;
  }
  std::size_t vocab_size() const { return vocab_.size(); }
  std::size_t dim() const { return dim_; }
  const ShardedVocab& vocab() const { return vocab_; }

  // Input-side embedding of a token; throws std::out_of_range if OOV.
  std::span<const double> embed(const Token& t) const;
  // Raw table rows by (kind, slot) — test/bench access.
  std::span<const double> slot_vector(TokenKind kind, std::size_t slot) const;
  std::span<const double> slot_out_vector(TokenKind kind,
                                          std::size_t slot) const;

  // Nearest in-vocabulary token of the given kind by L2 distance — the
  // retained linear-scan oracle.
  Token nearest(std::span<const double> vec, TokenKind kind) const;

  // Nearest token of the given kind satisfying `accept` (falls back to the
  // unfiltered nearest if nothing qualifies). Used for the paper's joint
  // (port, protocol) decode: the search is restricted to ports compatible
  // with the already-decoded protocol.
  Token nearest_if(std::span<const double> vec, TokenKind kind,
                   const std::function<bool(const Token&)>& accept) const;

  // Batched nearest-neighbour decode: for each row q of `queries` (n × dim),
  // writes the nearest token of `kind` into out[i], minimizing the norm-form
  // score ‖e‖² − 2⟨q,e⟩ (equal to ‖q−e‖² up to the per-row constant ‖q‖²)
  // with one blocked matmul per candidate block. `masks`, when non-empty,
  // holds one per-row accept mask over the kind's slots (1 = accepted);
  // rows whose mask rejects everything fall back to the unmasked nearest,
  // mirroring nearest_if. All scratch comes from `ws` (a fixed number of
  // pooled buffers per call — zero allocations once warm); `ws` is not
  // reset, so callers may hold other pooled buffers across the call.
  // Output is bitwise identical to nearest_batch_reference at any kernel
  // thread count / SIMD tier (the kernel determinism contract).
  void nearest_batch(const ml::Matrix& queries, TokenKind kind,
                     std::span<const std::uint8_t* const> masks,
                     std::span<Token> out, ml::Workspace& ws) const;
  // Serial same-scoring oracle for nearest_batch.
  void nearest_batch_reference(const ml::Matrix& queries, TokenKind kind,
                               std::span<const std::uint8_t* const> masks,
                               std::span<Token> out) const;

  // Exact table equality (layout + both tables bitwise) — test support.
  bool bitwise_equal(const Ip2Vec& other) const;

 private:
  // Row-major table blocks: kBlockRows rows per block (ragged last block).
  static constexpr std::size_t kBlockShift = 12;
  static constexpr std::size_t kBlockRows = std::size_t{1} << kBlockShift;
  // Query rows processed per decode panel.
  static constexpr std::size_t kQueryBlock = 512;

  struct TrainSetup {
    std::vector<std::uint32_t> tokens;     // sentences resolved to global ids
    std::vector<std::uint64_t> tok_begin;  // per-sentence offsets (n + 1)
    std::vector<std::uint64_t> pair_begin; // per-sentence pair prefix (n + 1)
    AliasTable alias;
    std::uint64_t neg_seed = 0;
    std::uint64_t total_pairs() const { return pair_begin.back(); }
  };

  // Shared by both train paths: builds the vocabulary, initializes the
  // tables (identical draw order), resolves sentences to dense ids, builds
  // the alias table, and draws the negative-stream seed.
  TrainSetup prepare_training(const std::vector<std::vector<Token>>& sentences,
                              const Config& config, Rng& rng);
  void finalize_tables();  // norm tables + transposed decode blocks

  double* in_row(std::size_t kind, std::size_t slot) {
    return in_blocks_[kind][slot >> kBlockShift].row_ptr(slot & (kBlockRows - 1));
  }
  const double* in_row(std::size_t kind, std::size_t slot) const {
    return in_blocks_[kind][slot >> kBlockShift].row_ptr(slot & (kBlockRows - 1));
  }
  double* out_row(std::size_t kind, std::size_t slot) {
    return out_blocks_[kind][slot >> kBlockShift].row_ptr(slot & (kBlockRows - 1));
  }

  std::size_t dim_ = 0;
  ShardedVocab vocab_;
  // Per-kind embedding tables in fixed-size row blocks (training layout).
  std::array<std::vector<ml::Matrix>, kNumTokenKinds> in_blocks_;
  std::array<std::vector<ml::Matrix>, kNumTokenKinds> out_blocks_;
  // Decode layout: per-kind blocks of in-vectors stored transposed
  // (dim × block) so the candidate axis is contiguous for matmul_into, plus
  // the precomputed per-slot squared norms.
  std::array<std::vector<ml::Matrix>, kNumTokenKinds> dec_blocks_;
  std::array<std::vector<double>, kNumTokenKinds> norms_;
};

}  // namespace netshare::embed
