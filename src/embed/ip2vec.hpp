// IP2Vec (Ring et al. 2017): Word2Vec-style skip-gram embeddings of header
// field values, trained with negative sampling. Each 5-tuple is a "sentence"
// whose words are its IPs, ports, and protocol.
//
// NetShare's privacy-aware variant (Insight 2) trains the dictionary ONLY on
// public data and uses it to encode port numbers and protocols (IPs use bit
// encoding); decoding is nearest-neighbour search over the public vocabulary,
// so the mapping never depends on private data.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/trace.hpp"

namespace netshare::embed {

enum class TokenKind : std::uint8_t {
  kIp,
  kPort,
  kProtocol,
  // Extended kinds used by the E-WGAN-GP baseline, which embeds every
  // NetFlow field (Ring et al. 2019): bucketed counters and times.
  kPackets,
  kBytes,
  kDuration,
  kStartTime,
};

struct Token {
  TokenKind kind;
  std::uint32_t value;

  friend bool operator==(const Token&, const Token&) = default;
};

struct TokenHash {
  std::size_t operator()(const Token& t) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(t.kind) << 32) ^ t.value);
  }
};

// Builds IP2Vec sentences from traces: one sentence per record with tokens
// {srcIP, dstIP, srcPort, dstPort, protocol} (ICMP records skip ports).
std::vector<std::vector<Token>> sentences_from_flows(const net::FlowTrace& t);
std::vector<std::vector<Token>> sentences_from_packets(const net::PacketTrace& t);

class Ip2Vec {
 public:
  struct Config {
    std::size_t dim = 8;
    int epochs = 4;
    int negatives = 4;
    double lr = 0.05;
  };

  // Builds the vocabulary and trains skip-gram embeddings.
  void train(const std::vector<std::vector<Token>>& sentences,
             const Config& config, Rng& rng);

  bool contains(const Token& t) const { return vocab_.count(t) > 0; }
  std::size_t vocab_size() const { return words_.size(); }
  std::size_t dim() const { return dim_; }

  // Input-side embedding of a token; throws std::out_of_range if OOV.
  std::span<const double> embed(const Token& t) const;

  // Nearest in-vocabulary token of the given kind by L2 distance.
  Token nearest(std::span<const double> vec, TokenKind kind) const;

  // Nearest token of the given kind satisfying `accept` (falls back to the
  // unfiltered nearest if nothing qualifies). Used for the paper's joint
  // (port, protocol) decode: the search is restricted to ports compatible
  // with the already-decoded protocol.
  Token nearest_if(std::span<const double> vec, TokenKind kind,
                   const std::function<bool(const Token&)>& accept) const;

 private:
  void sgd_pair(std::size_t center, std::size_t context, double label,
                double lr);

  std::size_t dim_ = 0;
  std::unordered_map<Token, std::size_t, TokenHash> vocab_;
  std::vector<Token> words_;
  std::vector<double> in_vecs_;   // vocab x dim (embeddings used downstream)
  std::vector<double> out_vecs_;  // vocab x dim (context vectors)
};

}  // namespace netshare::embed
