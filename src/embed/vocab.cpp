#include "embed/vocab.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace netshare::embed {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 1));
}

}  // namespace

std::size_t ShardedVocab::ip_probe(std::uint32_t value) const {
  const std::size_t mask = ip_keys_.size() - 1;
  const std::uint64_t key = static_cast<std::uint64_t>(value) + 1;
  std::size_t at = static_cast<std::size_t>(mix64(value)) & mask;
  while (true) {
    const std::uint64_t k = ip_keys_[at];
    if (k == key) return at;
    if (k == 0) return npos;
    at = (at + 1) & mask;
  }
}

std::size_t ShardedVocab::kind_slot(const Token& t) const {
  const auto k = static_cast<std::size_t>(t.kind);
  if (t.kind != TokenKind::kIp) {
    const auto& direct = direct_slot_[k];
    if (t.value >= direct.size()) return npos;
    const std::uint32_t s = direct[t.value];
    return s == 0 ? npos : s - 1;
  }
  if (!ip_keys_.empty()) {
    const std::size_t at = ip_probe(t.value);
    if (at != npos) return ip_slot_[at];
  }
  if (ip_capped_) {
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(mix64(t.value)) & tail_mask_;
    const std::uint32_t s = tail_slot_of_bucket_[bucket];
    if (s != 0) return ip_exact_ + (s - 1);
  }
  return npos;
}

bool ShardedVocab::contains_exact(const Token& t) const {
  if (t.kind != TokenKind::kIp) return kind_slot(t) != npos;
  if (ip_keys_.empty()) return false;
  const std::size_t at = ip_probe(t.value);
  return at != npos;
}

Token ShardedVocab::token_at(TokenKind kind, std::size_t slot) const {
  const auto k = static_cast<std::size_t>(kind);
  if (slot >= kind_size_[k]) {
    throw std::out_of_range("ShardedVocab::token_at: slot");
  }
  return Token{kind, value_of_slot_[k][slot]};
}

Token ShardedVocab::token_at_global(std::size_t index) const {
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    if (index < kind_offset_[k] + kind_size_[k]) {
      return Token{static_cast<TokenKind>(k), // NOLINT
                   value_of_slot_[k][index - kind_offset_[k]]};
    }
  }
  throw std::out_of_range("ShardedVocab::token_at_global: index");
}

void ShardedVocab::build(const std::vector<std::vector<Token>>& sentences,
                         const VocabConfig& config) {
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    direct_slot_[k].clear();
    value_of_slot_[k].clear();
    kind_size_[k] = 0;
    kind_offset_[k] = 0;
  }
  ip_keys_.clear();
  ip_slot_.clear();
  tail_slot_of_bucket_.clear();
  counts_.clear();
  ip_exact_ = 0;
  ip_capped_ = false;
  tail_mask_ = 0;
  total_ = 0;

  // --- Pass 1: count distinct values per kind in first-occurrence order.
  std::vector<std::uint64_t> kind_counts[kNumTokenKinds];
  // Temporary IP table sized up front for the worst case (every token a new
  // IP) so the counting pass never rehashes.
  std::size_t token_total = 0;
  for (const auto& s : sentences) token_total += s.size();
  std::vector<std::uint64_t> tmp_keys(pow2_at_least(2 * token_total + 2), 0);
  std::vector<std::uint32_t> tmp_ids(tmp_keys.size(), 0);
  const std::size_t tmp_mask = tmp_keys.size() - 1;
  std::vector<std::uint32_t> ip_values;  // first-occurrence order
  std::vector<std::uint64_t> ip_counts;

  for (const auto& s : sentences) {
    for (const Token& t : s) {
      const auto k = static_cast<std::size_t>(t.kind);
      if (t.kind != TokenKind::kIp) {
        auto& direct = direct_slot_[k];
        if (t.value >= direct.size()) direct.resize(t.value + 1, 0);
        if (direct[t.value] == 0) {
          value_of_slot_[k].push_back(t.value);
          kind_counts[k].push_back(0);
          direct[t.value] =
              static_cast<std::uint32_t>(value_of_slot_[k].size());
        }
        ++kind_counts[k][direct[t.value] - 1];
      } else {
        const std::uint64_t key = static_cast<std::uint64_t>(t.value) + 1;
        std::size_t at = static_cast<std::size_t>(mix64(t.value)) & tmp_mask;
        while (tmp_keys[at] != 0 && tmp_keys[at] != key) {
          at = (at + 1) & tmp_mask;
        }
        if (tmp_keys[at] == 0) {
          tmp_keys[at] = key;
          tmp_ids[at] = static_cast<std::uint32_t>(ip_values.size());
          ip_values.push_back(t.value);
          ip_counts.push_back(0);
        }
        ++ip_counts[tmp_ids[at]];
      }
    }
  }

  // --- Pass 2: assign IP slots, applying the frequency cap.
  const std::size_t distinct_ips = ip_values.size();
  std::vector<std::uint32_t> kept(distinct_ips);
  std::iota(kept.begin(), kept.end(), 0u);
  std::vector<std::uint32_t> capped;
  if (config.max_ip_slots > 0 && distinct_ips > config.max_ip_slots) {
    ip_capped_ = true;
    // Top-K by count, ties by first occurrence; kept slots stay in
    // first-occurrence order.
    std::sort(kept.begin(), kept.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (ip_counts[a] != ip_counts[b]) {
                  return ip_counts[a] > ip_counts[b];
                }
                return a < b;
              });
    capped.assign(kept.begin() + static_cast<std::ptrdiff_t>(
                                     config.max_ip_slots),
                  kept.end());
    kept.resize(config.max_ip_slots);
    std::sort(kept.begin(), kept.end());
    std::sort(capped.begin(), capped.end());
  }
  ip_exact_ = kept.size();

  auto& ip_value_of_slot = value_of_slot_[static_cast<std::size_t>(
      TokenKind::kIp)];
  ip_value_of_slot.reserve(kept.size());
  std::vector<std::uint64_t> ip_slot_counts;
  ip_slot_counts.reserve(kept.size());
  for (std::uint32_t id : kept) {
    ip_value_of_slot.push_back(ip_values[id]);
    ip_slot_counts.push_back(ip_counts[id]);
  }

  if (ip_capped_) {
    const std::size_t buckets = pow2_at_least(config.ip_tail_buckets);
    tail_mask_ = static_cast<std::uint32_t>(buckets - 1);
    // Aggregate capped IPs per bucket; representative = most frequent
    // member, ties by first occurrence (capped is in first-occurrence
    // order, so the first strict-max wins).
    std::vector<std::uint64_t> bucket_count(buckets, 0);
    std::vector<std::uint32_t> bucket_repr(buckets, 0);
    std::vector<std::uint64_t> bucket_repr_count(buckets, 0);
    for (std::uint32_t id : capped) {
      const std::uint32_t b =
          static_cast<std::uint32_t>(mix64(ip_values[id])) & tail_mask_;
      bucket_count[b] += ip_counts[id];
      if (ip_counts[id] > bucket_repr_count[b]) {
        bucket_repr_count[b] = ip_counts[id];
        bucket_repr[b] = ip_values[id];
      }
    }
    // Materialize only non-empty buckets (an empty bucket would be an
    // untrained row competing in nearest-neighbour decode).
    tail_slot_of_bucket_.assign(buckets, 0);
    for (std::size_t b = 0; b < buckets; ++b) {
      if (bucket_count[b] == 0) continue;
      ip_value_of_slot.push_back(bucket_repr[b]);
      ip_slot_counts.push_back(bucket_count[b]);
      tail_slot_of_bucket_[b] = static_cast<std::uint32_t>(
          ip_value_of_slot.size() - ip_exact_);
    }
  }

  // Final IP hash table holds only exact-slot addresses (capped ones route
  // through the bucket mapping like unseen addresses).
  if (ip_exact_ > 0) {
    ip_keys_.assign(pow2_at_least(2 * ip_exact_), 0);
    ip_slot_.assign(ip_keys_.size(), 0);
    const std::size_t mask = ip_keys_.size() - 1;
    for (std::size_t slot = 0; slot < ip_exact_; ++slot) {
      const std::uint32_t value = ip_value_of_slot[slot];
      std::size_t at = static_cast<std::size_t>(mix64(value)) & mask;
      while (ip_keys_[at] != 0) at = (at + 1) & mask;
      ip_keys_[at] = static_cast<std::uint64_t>(value) + 1;
      ip_slot_[at] = static_cast<std::uint32_t>(slot);
    }
  }

  // --- Layout: shards packed in TokenKind order.
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    kind_size_[k] = value_of_slot_[k].size();
  }
  std::size_t at = 0;
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    kind_offset_[k] = at;
    at += kind_size_[k];
  }
  total_ = at;

  counts_.resize(total_);
  for (std::size_t k = 0; k < kNumTokenKinds; ++k) {
    if (static_cast<TokenKind>(k) == TokenKind::kIp) {
      std::copy(ip_slot_counts.begin(), ip_slot_counts.end(),
                counts_.begin() + static_cast<std::ptrdiff_t>(kind_offset_[k]));
    } else {
      std::copy(kind_counts[k].begin(), kind_counts[k].end(),
                counts_.begin() + static_cast<std::ptrdiff_t>(kind_offset_[k]));
    }
  }
}

}  // namespace netshare::embed
