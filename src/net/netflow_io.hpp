// NetFlow-style CSV reader/writer (UGR16-like column layout).
#pragma once

#include <iosfwd>
#include <string>

#include "net/trace.hpp"

namespace netshare::net {

// Columns: start_time,duration,src_ip,dst_ip,src_port,dst_port,protocol,
//          packets,bytes,label,attack_type
void write_netflow_csv(const FlowTrace& trace, std::ostream& out);
void write_netflow_csv_file(const FlowTrace& trace, const std::string& path);

// Parses the format written by write_netflow_csv (header row required).
// Throws std::runtime_error on malformed rows.
FlowTrace read_netflow_csv(std::istream& in);
FlowTrace read_netflow_csv_file(const std::string& path);

}  // namespace netshare::net
