#include "net/checksum.hpp"

namespace netshare::net {

void ChecksumAccumulator::add(const std::uint8_t* data, std::size_t len) {
  std::size_t i = 0;
  if (odd_ && len > 0) {
    // Complete the previously-pending high byte with this buffer's first byte.
    sum_ += data[0];
    i = 1;
    odd_ = false;
  }
  for (; i + 1 < len; i += 2) {
    sum_ += (std::uint64_t{data[i]} << 8) | data[i + 1];
  }
  if (i < len) {
    sum_ += std::uint64_t{data[i]} << 8;
    odd_ = true;
  }
}

std::uint16_t ChecksumAccumulator::finalize() const {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  ChecksumAccumulator acc;
  acc.add(data, len);
  return acc.finalize();
}

}  // namespace netshare::net
