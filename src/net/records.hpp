// Packet- and flow-header records: the two input formats of the paper
// (PCAP-style packet headers, NetFlow-style flow headers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/five_tuple.hpp"

namespace netshare::net {

// Attack taxonomy covering the labeled datasets in the paper:
// CIDDS (DoS, brute force, port scan) and TON_IoT (nine IoT attack types).
enum class AttackType : std::uint8_t {
  kNone = 0,
  kDos,
  kBruteForce,
  kPortScan,
  kBackdoor,
  kDdos,
  kInjection,
  kMitm,
  kPassword,
  kRansomware,
  kScanning,
  kXss,
};

std::string attack_type_name(AttackType t);
AttackType attack_type_from_name(const std::string& name);

// One packet-header record: IPv4 header fields of interest plus the arrival
// timestamp and L4 ports (TCP/UDP only), per the paper's packet-trace scope.
struct PacketRecord {
  double timestamp = 0.0;  // seconds since trace start
  FiveTuple key;
  std::uint32_t size = 40;  // total IP packet length in bytes
  std::uint8_t ttl = 64;
  std::uint8_t tcp_flags = 0x10;

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

// One flow-header record with the 11 NetFlow fields the paper evaluates:
// 5-tuple, start time, duration, packets, bytes, label, attack type.
struct FlowRecord {
  FiveTuple key;
  double start_time = 0.0;  // seconds since trace start
  double duration = 0.0;    // seconds
  std::uint64_t packets = 1;
  std::uint64_t bytes = 40;
  bool is_attack = false;
  AttackType attack_type = AttackType::kNone;

  double end_time() const { return start_time + duration; }

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

}  // namespace netshare::net
