#include "net/pcap_io.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace netshare::net {

namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinktypeRaw = 101;       // raw IPv4/IPv6

// pcap is host-endian by convention; we fix little-endian on the wire for
// portability of generated files.
void put_le32(std::ostream& out, std::uint32_t v) {
  std::array<char, 4> b{static_cast<char>(v), static_cast<char>(v >> 8),
                        static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(b.data(), b.size());
}
void put_le16(std::ostream& out, std::uint16_t v) {
  std::array<char, 2> b{static_cast<char>(v), static_cast<char>(v >> 8)};
  out.write(b.data(), b.size());
}

std::uint32_t get_le32(std::istream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

// Builds the on-wire bytes for one record: IPv4 header + minimal L4 header,
// zero payload up to min(total_length, snaplen).
std::vector<std::uint8_t> build_packet_bytes(const PacketRecord& rec,
                                             std::uint32_t snaplen) {
  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(rec.size, kMaxPacketSize));
  ip.ttl = rec.ttl;
  ip.protocol = rec.key.protocol;
  ip.src = rec.key.src_ip;
  ip.dst = rec.key.dst_ip;

  std::vector<std::uint8_t> bytes;
  auto ip_bytes = ip.serialize();
  bytes.insert(bytes.end(), ip_bytes.begin(), ip_bytes.end());

  if (rec.key.protocol == Protocol::kTcp) {
    TcpHeaderLite tcp;
    tcp.src_port = rec.key.src_port;
    tcp.dst_port = rec.key.dst_port;
    tcp.flags = rec.tcp_flags;
    auto l4 = tcp.serialize();
    bytes.insert(bytes.end(), l4.begin(), l4.end());
  } else if (rec.key.protocol == Protocol::kUdp) {
    UdpHeaderLite udp;
    udp.src_port = rec.key.src_port;
    udp.dst_port = rec.key.dst_port;
    udp.length = static_cast<std::uint16_t>(
        std::max<std::uint32_t>(8, ip.total_length - Ipv4Header::kSize));
    auto l4 = udp.serialize();
    bytes.insert(bytes.end(), l4.begin(), l4.end());
  }

  std::size_t wire_len = std::max<std::size_t>(bytes.size(), ip.total_length);
  bytes.resize(std::min<std::size_t>(wire_len, snaplen), 0);
  return bytes;
}

}  // namespace

void write_pcap(const PacketTrace& trace, std::ostream& out,
                std::uint32_t snaplen) {
  // Global header.
  put_le32(out, kPcapMagic);
  put_le16(out, 2);  // version major
  put_le16(out, 4);  // version minor
  put_le32(out, 0);  // thiszone
  put_le32(out, 0);  // sigfigs
  put_le32(out, snaplen);
  put_le32(out, kLinktypeRaw);

  for (const auto& rec : trace.packets) {
    const auto bytes = build_packet_bytes(rec, snaplen);
    const double ts = std::max(0.0, rec.timestamp);
    const auto sec = static_cast<std::uint32_t>(ts);
    const auto usec = static_cast<std::uint32_t>(
        std::llround((ts - std::floor(ts)) * 1e6) % 1000000);
    put_le32(out, sec);
    put_le32(out, usec);
    put_le32(out, static_cast<std::uint32_t>(bytes.size()));  // captured len
    put_le32(out, std::max<std::uint32_t>(
                      rec.size, static_cast<std::uint32_t>(bytes.size())));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
}

void write_pcap_file(const PacketTrace& trace, const std::string& path,
                     std::uint32_t snaplen) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pcap_file: cannot open " + path);
  write_pcap(trace, out, snaplen);
}

PacketTrace read_pcap(std::istream& in) {
  if (get_le32(in) != kPcapMagic) {
    throw std::runtime_error("read_pcap: bad magic (expect LE microsecond pcap)");
  }
  in.ignore(2 + 2 + 4 + 4);  // version, thiszone, sigfigs
  (void)get_le32(in);        // snaplen
  const std::uint32_t linktype = get_le32(in);
  if (linktype != kLinktypeRaw) {
    throw std::runtime_error("read_pcap: unsupported linktype");
  }

  PacketTrace trace;
  for (;;) {
    const std::uint32_t sec = get_le32(in);
    if (!in) break;  // clean EOF
    const std::uint32_t usec = get_le32(in);
    const std::uint32_t caplen = get_le32(in);
    const std::uint32_t wirelen = get_le32(in);
    if (!in) throw std::runtime_error("read_pcap: truncated record header");

    std::vector<std::uint8_t> bytes(caplen);
    in.read(reinterpret_cast<char*>(bytes.data()), caplen);
    if (!in) throw std::runtime_error("read_pcap: truncated record body");

    Ipv4Header ip = Ipv4Header::parse(bytes.data(), bytes.size());
    PacketRecord rec;
    rec.timestamp = static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
    rec.size = std::max(wirelen, static_cast<std::uint32_t>(ip.total_length));
    rec.ttl = ip.ttl;
    rec.key.src_ip = ip.src;
    rec.key.dst_ip = ip.dst;
    rec.key.protocol = ip.protocol;
    const std::size_t l4_off = Ipv4Header::kSize;
    if ((ip.protocol == Protocol::kTcp || ip.protocol == Protocol::kUdp) &&
        bytes.size() >= l4_off + 4) {
      rec.key.src_port =
          static_cast<std::uint16_t>((bytes[l4_off] << 8) | bytes[l4_off + 1]);
      rec.key.dst_port = static_cast<std::uint16_t>((bytes[l4_off + 2] << 8) |
                                                    bytes[l4_off + 3]);
    }
    if (ip.protocol == Protocol::kTcp && bytes.size() >= l4_off + 14) {
      rec.tcp_flags = bytes[l4_off + 13];
    }
    trace.packets.push_back(rec);
  }
  return trace;
}

PacketTrace read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pcap_file: cannot open " + path);
  return read_pcap(in);
}

}  // namespace netshare::net
