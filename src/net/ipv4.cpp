#include "net/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

#include "net/checksum.hpp"

namespace netshare::net {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kIcmp:
      return "ICMP";
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kUdp:
      return "UDP";
  }
  return std::to_string(static_cast<int>(p));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Ipv4Address Ipv4Address::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  int n = std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("Ipv4Address::parse: malformed address '" +
                                dotted + "'");
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

namespace {
void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

// Serializes the header with the checksum field set to `checksum_value`.
std::array<std::uint8_t, Ipv4Header::kSize> serialize_with_checksum(
    const Ipv4Header& h, std::uint16_t checksum_value) {
  std::array<std::uint8_t, Ipv4Header::kSize> out{};
  out[0] = static_cast<std::uint8_t>((h.version << 4) | (h.ihl & 0x0f));
  out[1] = h.dscp_ecn;
  put_u16(&out[2], h.total_length);
  put_u16(&out[4], h.identification);
  put_u16(&out[6], h.flags_fragment);
  out[8] = h.ttl;
  out[9] = static_cast<std::uint8_t>(h.protocol);
  put_u16(&out[10], checksum_value);
  put_u32(&out[12], h.src.value());
  put_u32(&out[16], h.dst.value());
  return out;
}
}  // namespace

std::uint16_t Ipv4Header::compute_checksum() const {
  auto bytes = serialize_with_checksum(*this, 0);
  return internet_checksum(bytes.data(), bytes.size());
}

std::array<std::uint8_t, Ipv4Header::kSize> Ipv4Header::serialize() const {
  return serialize_with_checksum(*this, compute_checksum());
}

Ipv4Header Ipv4Header::parse(const std::uint8_t* data, std::size_t len) {
  if (len < kSize) throw std::invalid_argument("Ipv4Header::parse: short buffer");
  Ipv4Header h;
  h.version = data[0] >> 4;
  h.ihl = data[0] & 0x0f;
  if (h.version != 4) throw std::invalid_argument("Ipv4Header::parse: not IPv4");
  h.dscp_ecn = data[1];
  h.total_length = get_u16(&data[2]);
  h.identification = get_u16(&data[4]);
  h.flags_fragment = get_u16(&data[6]);
  h.ttl = data[8];
  h.protocol = static_cast<Protocol>(data[9]);
  h.checksum = get_u16(&data[10]);
  h.src = Ipv4Address(get_u32(&data[12]));
  h.dst = Ipv4Address(get_u32(&data[16]));
  return h;
}

std::array<std::uint8_t, TcpHeaderLite::kSize> TcpHeaderLite::serialize() const {
  std::array<std::uint8_t, kSize> out{};
  put_u16(&out[0], src_port);
  put_u16(&out[2], dst_port);
  put_u32(&out[4], seq);
  put_u32(&out[8], ack);
  out[12] = 5 << 4;  // data offset: 5 words
  out[13] = flags;
  put_u16(&out[14], window);
  // checksum (16) and urgent pointer (18) left zero; L4 checksum requires the
  // pseudo-header and is out of the paper's header-generation scope.
  return out;
}

std::array<std::uint8_t, UdpHeaderLite::kSize> UdpHeaderLite::serialize() const {
  std::array<std::uint8_t, kSize> out{};
  put_u16(&out[0], src_port);
  put_u16(&out[2], dst_port);
  put_u16(&out[4], length);
  return out;
}

}  // namespace netshare::net
