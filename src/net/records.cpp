#include "net/records.hpp"

#include <stdexcept>

namespace netshare::net {

std::string attack_type_name(AttackType t) {
  switch (t) {
    case AttackType::kNone:
      return "none";
    case AttackType::kDos:
      return "dos";
    case AttackType::kBruteForce:
      return "bruteforce";
    case AttackType::kPortScan:
      return "portscan";
    case AttackType::kBackdoor:
      return "backdoor";
    case AttackType::kDdos:
      return "ddos";
    case AttackType::kInjection:
      return "injection";
    case AttackType::kMitm:
      return "mitm";
    case AttackType::kPassword:
      return "password";
    case AttackType::kRansomware:
      return "ransomware";
    case AttackType::kScanning:
      return "scanning";
    case AttackType::kXss:
      return "xss";
  }
  return "none";
}

AttackType attack_type_from_name(const std::string& name) {
  static const struct {
    const char* name;
    AttackType type;
  } kTable[] = {
      {"none", AttackType::kNone},           {"dos", AttackType::kDos},
      {"bruteforce", AttackType::kBruteForce}, {"portscan", AttackType::kPortScan},
      {"backdoor", AttackType::kBackdoor},   {"ddos", AttackType::kDdos},
      {"injection", AttackType::kInjection}, {"mitm", AttackType::kMitm},
      {"password", AttackType::kPassword},   {"ransomware", AttackType::kRansomware},
      {"scanning", AttackType::kScanning},   {"xss", AttackType::kXss},
  };
  for (const auto& e : kTable) {
    if (name == e.name) return e.type;
  }
  throw std::invalid_argument("attack_type_from_name: unknown '" + name + "'");
}

}  // namespace netshare::net
