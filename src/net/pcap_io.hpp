// Binary libpcap file reader/writer.
//
// Synthetic packet traces are materialized as genuine pcap files (magic
// 0xa1b2c3d4, LINKTYPE_RAW) containing real IPv4 + TCP/UDP headers with
// valid RFC 1071 checksums, so tools like tcpdump can consume them.
#pragma once

#include <iosfwd>
#include <string>

#include "net/trace.hpp"

namespace netshare::net {

// Writes `trace` as a pcap file. Each record becomes an IPv4 packet with a
// TCP or UDP header (per the record's protocol); payload bytes are zero and
// only header-relevant bytes up to `snaplen` are stored.
void write_pcap(const PacketTrace& trace, std::ostream& out,
                std::uint32_t snaplen = 96);
void write_pcap_file(const PacketTrace& trace, const std::string& path,
                     std::uint32_t snaplen = 96);

// Reads a pcap file produced by write_pcap (LINKTYPE_RAW, microsecond
// timestamps). Throws std::runtime_error on malformed input.
PacketTrace read_pcap(std::istream& in);
PacketTrace read_pcap_file(const std::string& path);

}  // namespace netshare::net
