#include "net/ports.hpp"

namespace netshare::net {

namespace {
struct PortProto {
  std::uint16_t port;
  Protocol protocol;
};

// Conventional single-protocol service ports. DNS (53) and NTP (123) are
// overwhelmingly UDP in backbone traffic; the web/mail/file-transfer ports
// are TCP.
constexpr PortProto kWellKnown[] = {
    {20, Protocol::kTcp},   {21, Protocol::kTcp},  {22, Protocol::kTcp},
    {23, Protocol::kTcp},   {25, Protocol::kTcp},  {53, Protocol::kUdp},
    {80, Protocol::kTcp},   {110, Protocol::kTcp}, {123, Protocol::kUdp},
    {143, Protocol::kTcp},  {161, Protocol::kUdp}, {443, Protocol::kTcp},
    {445, Protocol::kTcp},  {993, Protocol::kTcp}, {995, Protocol::kTcp},
    {3306, Protocol::kTcp}, {3389, Protocol::kTcp}, {5060, Protocol::kUdp},
    {8080, Protocol::kTcp},
};
}  // namespace

std::optional<Protocol> well_known_port_protocol(std::uint16_t port) {
  for (const auto& e : kWellKnown) {
    if (e.port == port) return e.protocol;
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint16_t, Protocol>> common_port_protocol_pairs() {
  std::vector<std::pair<std::uint16_t, Protocol>> pairs;
  pairs.reserve(std::size(kWellKnown) + 64);
  for (const auto& e : kWellKnown) pairs.emplace_back(e.port, e.protocol);
  // Ephemeral ports appear with both TCP and UDP on a backbone.
  for (std::uint32_t p = 1024; p <= 65535; p += 1024) {
    pairs.emplace_back(static_cast<std::uint16_t>(p), Protocol::kTcp);
    pairs.emplace_back(static_cast<std::uint16_t>(p), Protocol::kUdp);
  }
  return pairs;
}

}  // namespace netshare::net
