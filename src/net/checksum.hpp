// RFC 1071 Internet checksum.
#pragma once

#include <cstddef>
#include <cstdint>

namespace netshare::net {

// One's-complement sum of 16-bit words over `len` bytes (odd trailing byte is
// zero-padded), folded and complemented per RFC 1071.
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len);

// Incremental accumulator form: fold partial sums from multiple buffers
// (e.g. pseudo-header + TCP header) before finalizing.
class ChecksumAccumulator {
 public:
  void add(const std::uint8_t* data, std::size_t len);
  std::uint16_t finalize() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending alignment
};

}  // namespace netshare::net
