// NetFlow collector emulation.
//
// Converts a packet trace into flow records the way real collectors do:
// a flow record is exported when the flow is idle longer than the inactive
// timeout, when it exceeds the active timeout (max flow duration), or at the
// end of the trace. This is the mechanism behind the paper's Fig. 1a
// observation that the same 5-tuple appears in multiple NetFlow records,
// both within and across measurement epochs.
#pragma once

#include "net/trace.hpp"

namespace netshare::net {

struct FlowCollectorConfig {
  double inactive_timeout_s = 15.0;  // export if idle this long
  double active_timeout_s = 60.0;    // export if flow lives this long
};

class FlowCollector {
 public:
  explicit FlowCollector(FlowCollectorConfig config) : config_(config) {}

  // Processes the packet trace in timestamp order and returns the exported
  // flow records sorted by start time.
  FlowTrace collect(PacketTrace trace) const;

 private:
  FlowCollectorConfig config_;
};

}  // namespace netshare::net
