#include "net/netflow_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace netshare::net {

namespace {
constexpr char kHeader[] =
    "start_time,duration,src_ip,dst_ip,src_port,dst_port,protocol,packets,"
    "bytes,label,attack_type";

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

Protocol protocol_from_string(const std::string& s) {
  if (s == "TCP") return Protocol::kTcp;
  if (s == "UDP") return Protocol::kUdp;
  if (s == "ICMP") return Protocol::kIcmp;
  throw std::runtime_error("netflow csv: unknown protocol '" + s + "'");
}
}  // namespace

void write_netflow_csv(const FlowTrace& trace, std::ostream& out) {
  // Full round-trip precision for the time fields.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n';
  for (const auto& r : trace.records) {
    out << r.start_time << ',' << r.duration << ',' << r.key.src_ip.to_string()
        << ',' << r.key.dst_ip.to_string() << ',' << r.key.src_port << ','
        << r.key.dst_port << ',' << protocol_name(r.key.protocol) << ','
        << r.packets << ',' << r.bytes << ',' << (r.is_attack ? 1 : 0) << ','
        << attack_type_name(r.attack_type) << '\n';
  }
}

void write_netflow_csv_file(const FlowTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_netflow_csv_file: cannot open " + path);
  write_netflow_csv(trace, out);
}

FlowTrace read_netflow_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("netflow csv: missing or unexpected header row");
  }
  FlowTrace trace;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto f = split_csv_row(line);
    if (f.size() != 11) {
      throw std::runtime_error("netflow csv: bad column count at line " +
                               std::to_string(line_no));
    }
    FlowRecord r;
    r.start_time = std::stod(f[0]);
    r.duration = std::stod(f[1]);
    r.key.src_ip = Ipv4Address::parse(f[2]);
    r.key.dst_ip = Ipv4Address::parse(f[3]);
    r.key.src_port = static_cast<std::uint16_t>(std::stoul(f[4]));
    r.key.dst_port = static_cast<std::uint16_t>(std::stoul(f[5]));
    r.key.protocol = protocol_from_string(f[6]);
    r.packets = std::stoull(f[7]);
    r.bytes = std::stoull(f[8]);
    r.is_attack = f[9] == "1";
    r.attack_type = attack_type_from_name(f[10]);
    trace.records.push_back(r);
  }
  return trace;
}

FlowTrace read_netflow_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_netflow_csv_file: cannot open " + path);
  return read_netflow_csv(in);
}

}  // namespace netshare::net
