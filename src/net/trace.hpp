// Trace containers and the epoch/flow reshaping operations at the heart of
// NetShare Insight 1: merge measurement epochs into one giant trace, then
// split the giant trace into per-5-tuple flow series.
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/records.hpp"

namespace netshare::net {

// A packet-header trace (PCAP-like).
struct PacketTrace {
  std::vector<PacketRecord> packets;

  std::size_t size() const { return packets.size(); }
  bool empty() const { return packets.empty(); }

  // Stable sort by arrival timestamp (postprocessing merge step).
  void sort_by_time();

  double start_time() const;
  double end_time() const;

  // Split into consecutive epochs of length `epoch_seconds` (Sec. 3.1's D_t).
  std::vector<PacketTrace> split_epochs(double epoch_seconds) const;

  // Inverse of split_epochs: concatenate epochs into one giant trace.
  static PacketTrace merge(const std::vector<PacketTrace>& epochs);

  // Group packet indices by 5-tuple, in first-seen order of flows.
  std::vector<std::pair<FiveTuple, std::vector<std::size_t>>> group_by_flow()
      const;
};

// A flow-header trace (NetFlow-like).
struct FlowTrace {
  std::vector<FlowRecord> records;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }

  void sort_by_time();

  double start_time() const;
  double end_time() const;

  std::vector<FlowTrace> split_epochs(double epoch_seconds) const;
  static FlowTrace merge(const std::vector<FlowTrace>& epochs);

  // Group record indices by 5-tuple, in first-seen order of flows. Flows with
  // several records (collector re-exports, Fig. 1a) get multi-entry groups.
  std::vector<std::pair<FiveTuple, std::vector<std::size_t>>> group_by_flow()
      const;
};

// Per-flow aggregate of a packet trace: the flow-size/packet-count views
// used by the fidelity metrics (FS) and the sketching substrate.
struct FlowAggregate {
  FiveTuple key;
  double first_seen = 0.0;
  double last_seen = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

// Aggregates a packet trace into per-5-tuple totals (first-seen order).
std::vector<FlowAggregate> aggregate_flows(const PacketTrace& trace);

}  // namespace netshare::net
