// IPv4 addresses and header construction.
//
// Addresses are stored host-order in a strong type; headers are serialized
// network-order (big-endian) byte-exactly per RFC 791 so the pcap writer
// emits traces readable by tcpdump/wireshark.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace netshare::net {

// IP protocol numbers used throughout the library.
enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// Human-readable protocol name ("TCP", "UDP", "ICMP", or the number).
std::string protocol_name(Protocol p);

// Strongly-typed IPv4 address (host byte order).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  // Dotted-quad formatting / parsing.
  std::string to_string() const;
  static Ipv4Address parse(const std::string& dotted);

  // Address-class predicates used by the paper's validity Test 1 (App. B).
  constexpr bool is_multicast() const {  // 224.0.0.0/4
    return octet(0) >= 224 && octet(0) <= 239;
  }
  constexpr bool is_broadcast_prefix() const {  // 255.x.x.x
    return octet(0) == 255;
  }
  constexpr bool is_zero_prefix() const {  // 0.x.x.x
    return octet(0) == 0;
  }
  constexpr bool is_private() const {
    return octet(0) == 10 || (octet(0) == 172 && octet(1) >= 16 && octet(1) <= 31) ||
           (octet(0) == 192 && octet(1) == 168);
  }

  friend constexpr bool operator==(Ipv4Address a, Ipv4Address b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Ipv4Address a, Ipv4Address b) {
    return !(a == b);
  }
  friend constexpr bool operator<(Ipv4Address a, Ipv4Address b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

// IPv4 header (no options; the paper explicitly excludes the options field).
struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 20-byte header
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF set, no fragmentation
  std::uint8_t ttl = 64;
  Protocol protocol = Protocol::kTcp;
  std::uint16_t checksum = 0;  // filled by serialize()/compute_checksum()
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr std::size_t kSize = 20;

  // Serializes to 20 network-order bytes, computing the header checksum.
  std::array<std::uint8_t, kSize> serialize() const;

  // Parses 20 bytes; throws std::invalid_argument on malformed input.
  static Ipv4Header parse(const std::uint8_t* data, std::size_t len);

  // RFC 1071 checksum over this header with the checksum field zeroed.
  std::uint16_t compute_checksum() const;

  // True iff the stored checksum equals the recomputed one.
  bool checksum_valid() const { return checksum == compute_checksum(); }
};

// Minimal L4 headers (the scope is the 5-tuple + sizes; deep TCP state is a
// documented non-goal of the paper).
struct TcpHeaderLite {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0x10;  // ACK
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;
  std::array<std::uint8_t, kSize> serialize() const;
};

struct UdpHeaderLite {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 8;

  static constexpr std::size_t kSize = 8;
  std::array<std::uint8_t, kSize> serialize() const;
};

// Minimum valid on-wire IP packet sizes used by validity Tests 2/4:
// TCP: 20 (IP) + 20 (TCP) = 40 bytes; UDP: 20 (IP) + 8 (UDP) = 28 bytes.
constexpr std::uint32_t min_packet_size(Protocol p) {
  return p == Protocol::kUdp ? 28u : (p == Protocol::kTcp ? 40u : 28u);
}
constexpr std::uint32_t kMaxPacketSize = 65535;

}  // namespace netshare::net
