#include "net/flow_collector.hpp"

#include <unordered_map>

namespace netshare::net {

namespace {
struct ActiveFlow {
  double first_ts = 0.0;
  double last_ts = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

FlowRecord export_record(const FiveTuple& key, const ActiveFlow& f) {
  FlowRecord r;
  r.key = key;
  r.start_time = f.first_ts;
  r.duration = f.last_ts - f.first_ts;
  r.packets = f.packets;
  r.bytes = f.bytes;
  return r;
}
}  // namespace

FlowTrace FlowCollector::collect(PacketTrace trace) const {
  trace.sort_by_time();
  FlowTrace out;
  std::unordered_map<FiveTuple, ActiveFlow> active;
  active.reserve(trace.size());

  for (const auto& p : trace.packets) {
    auto it = active.find(p.key);
    if (it != active.end()) {
      ActiveFlow& f = it->second;
      const bool inactive_expired =
          p.timestamp - f.last_ts > config_.inactive_timeout_s;
      const bool active_expired =
          p.timestamp - f.first_ts > config_.active_timeout_s;
      if (inactive_expired || active_expired) {
        out.records.push_back(export_record(p.key, f));
        f = ActiveFlow{};
        f.first_ts = p.timestamp;
      }
      f.last_ts = p.timestamp;
      f.packets += 1;
      f.bytes += p.size;
    } else {
      active.emplace(p.key,
                     ActiveFlow{p.timestamp, p.timestamp, 1, p.size});
    }
  }
  for (const auto& [key, f] : active) {
    out.records.push_back(export_record(key, f));
  }
  out.sort_by_time();
  return out;
}

}  // namespace netshare::net
