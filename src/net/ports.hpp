// Well-known service port knowledge used by the workload simulator, the
// IP2Vec decode step, and the paper's protocol-compliance Test 3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace netshare::net {

// Service ports are < 1024 by IANA convention (the paper's Fig. 3 focuses on
// learning these).
constexpr bool is_service_port(std::uint16_t port) { return port < 1024; }

// If the port conventionally pins one L4 protocol (e.g. 80/TCP, 53/UDP),
// returns it; otherwise nullopt. Used by validity Test 3.
std::optional<Protocol> well_known_port_protocol(std::uint16_t port);

// The (port, protocol) combinations a public backbone trace would cover —
// used to build the public IP2Vec vocabulary (Insight 2).
std::vector<std::pair<std::uint16_t, Protocol>> common_port_protocol_pairs();

}  // namespace netshare::net
