#include "net/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace netshare::net {

namespace {

template <typename Record>
double min_time(const std::vector<Record>& v, double (*get)(const Record&)) {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& r : v) lo = std::min(lo, get(r));
  return v.empty() ? 0.0 : lo;
}

template <typename Record>
double max_time(const std::vector<Record>& v, double (*get)(const Record&)) {
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& r : v) hi = std::max(hi, get(r));
  return v.empty() ? 0.0 : hi;
}

// Shared first-seen-order grouping for packet and flow records.
template <typename Record>
std::vector<std::pair<FiveTuple, std::vector<std::size_t>>> group_records(
    const std::vector<Record>& records) {
  std::vector<std::pair<FiveTuple, std::vector<std::size_t>>> groups;
  std::unordered_map<FiveTuple, std::size_t> index;
  index.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FiveTuple& key = records[i].key;
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) groups.push_back({key, {}});
    groups[it->second].second.push_back(i);
  }
  return groups;
}

}  // namespace

void PacketTrace::sort_by_time() {
  std::stable_sort(packets.begin(), packets.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

double PacketTrace::start_time() const {
  return min_time<PacketRecord>(packets,
                                [](const PacketRecord& p) { return p.timestamp; });
}

double PacketTrace::end_time() const {
  return max_time<PacketRecord>(packets,
                                [](const PacketRecord& p) { return p.timestamp; });
}

std::vector<PacketTrace> PacketTrace::split_epochs(double epoch_seconds) const {
  std::vector<PacketTrace> epochs;
  if (packets.empty() || epoch_seconds <= 0) return epochs;
  const double t0 = start_time();
  for (const auto& p : packets) {
    auto e = static_cast<std::size_t>(std::floor((p.timestamp - t0) / epoch_seconds));
    if (e >= epochs.size()) epochs.resize(e + 1);
    epochs[e].packets.push_back(p);
  }
  return epochs;
}

PacketTrace PacketTrace::merge(const std::vector<PacketTrace>& epochs) {
  PacketTrace out;
  std::size_t total = 0;
  for (const auto& e : epochs) total += e.size();
  out.packets.reserve(total);
  for (const auto& e : epochs) {
    out.packets.insert(out.packets.end(), e.packets.begin(), e.packets.end());
  }
  out.sort_by_time();
  return out;
}

std::vector<std::pair<FiveTuple, std::vector<std::size_t>>>
PacketTrace::group_by_flow() const {
  return group_records(packets);
}

void FlowTrace::sort_by_time() {
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.start_time < b.start_time;
                   });
}

double FlowTrace::start_time() const {
  return min_time<FlowRecord>(records,
                              [](const FlowRecord& r) { return r.start_time; });
}

double FlowTrace::end_time() const {
  return max_time<FlowRecord>(records,
                              [](const FlowRecord& r) { return r.end_time(); });
}

std::vector<FlowTrace> FlowTrace::split_epochs(double epoch_seconds) const {
  std::vector<FlowTrace> epochs;
  if (records.empty() || epoch_seconds <= 0) return epochs;
  const double t0 = start_time();
  for (const auto& r : records) {
    auto e = static_cast<std::size_t>(std::floor((r.start_time - t0) / epoch_seconds));
    if (e >= epochs.size()) epochs.resize(e + 1);
    epochs[e].records.push_back(r);
  }
  return epochs;
}

FlowTrace FlowTrace::merge(const std::vector<FlowTrace>& epochs) {
  FlowTrace out;
  std::size_t total = 0;
  for (const auto& e : epochs) total += e.size();
  out.records.reserve(total);
  for (const auto& e : epochs) {
    out.records.insert(out.records.end(), e.records.begin(), e.records.end());
  }
  out.sort_by_time();
  return out;
}

std::vector<std::pair<FiveTuple, std::vector<std::size_t>>>
FlowTrace::group_by_flow() const {
  return group_records(records);
}

std::vector<FlowAggregate> aggregate_flows(const PacketTrace& trace) {
  std::vector<FlowAggregate> aggs;
  std::unordered_map<FiveTuple, std::size_t> index;
  index.reserve(trace.packets.size());
  for (const auto& p : trace.packets) {
    auto [it, inserted] = index.try_emplace(p.key, aggs.size());
    if (inserted) {
      aggs.push_back({p.key, p.timestamp, p.timestamp, 0, 0});
    }
    FlowAggregate& a = aggs[it->second];
    a.first_seen = std::min(a.first_seen, p.timestamp);
    a.last_seen = std::max(a.last_seen, p.timestamp);
    a.packets += 1;
    a.bytes += p.size;
  }
  return aggs;
}

}  // namespace netshare::net
