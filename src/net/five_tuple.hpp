// The IP 5-tuple (src/dst address, src/dst port, protocol) — the flow key
// used throughout NetShare's flow split and the sketching substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4.hpp"

namespace netshare::net {

struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kTcp;

  friend bool operator==(const FiveTuple& a, const FiveTuple& b) {
    return a.src_ip == b.src_ip && a.dst_ip == b.dst_ip &&
           a.src_port == b.src_port && a.dst_port == b.dst_port &&
           a.protocol == b.protocol;
  }
  friend bool operator!=(const FiveTuple& a, const FiveTuple& b) {
    return !(a == b);
  }
  // Lexicographic order, for use as a map key / deterministic sorting.
  friend bool operator<(const FiveTuple& a, const FiveTuple& b);

  // 64-bit mix of all five fields (splitmix-style); stable across runs.
  std::uint64_t hash() const;

  std::string to_string() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    return static_cast<std::size_t>(t.hash());
  }
};

}  // namespace netshare::net

template <>
struct std::hash<netshare::net::FiveTuple> {
  std::size_t operator()(const netshare::net::FiveTuple& t) const {
    return static_cast<std::size_t>(t.hash());
  }
};
