#include "net/five_tuple.hpp"

#include <tuple>

namespace netshare::net {

bool operator<(const FiveTuple& a, const FiveTuple& b) {
  return std::tie(a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.protocol) <
         std::tie(b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.protocol);
}

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t FiveTuple::hash() const {
  std::uint64_t h = splitmix64((std::uint64_t{src_ip.value()} << 32) |
                               dst_ip.value());
  h = splitmix64(h ^ ((std::uint64_t{src_port} << 32) |
                      (std::uint64_t{dst_port} << 8) |
                      static_cast<std::uint64_t>(protocol)));
  return h;
}

std::string FiveTuple::to_string() const {
  return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst_ip.to_string() + ":" + std::to_string(dst_port) + " " +
         protocol_name(protocol);
}

}  // namespace netshare::net
