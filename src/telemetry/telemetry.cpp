// Telemetry subsystem implementation (DESIGN.md §8). Only compiled when
// NETSHARE_TELEMETRY=ON; the OFF build links without this TU.
//
// Sharding model: every thread lazily acquires a ThreadState holding its
// counter slots, histogram buckets, and span buffer. Slots are relaxed
// atomics written only by the owning thread (plain load+store, no RMW — a
// shard has exactly one writer) and read by scrapers, so aggregation is
// race-free without any hot-path lock. When a thread exits, its state is
// returned to a free list and the next new thread reuses it (continuing the
// same virtual tid), which caps telemetry memory at the maximum number of
// concurrently live threads instead of growing with every short-lived
// ThreadPool the pipeline spins up.
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#if !defined(NETSHARE_TELEMETRY_ENABLED)
#error "telemetry.cpp must only be compiled with NETSHARE_TELEMETRY_ENABLED"
#endif

namespace netshare::telemetry {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

namespace {

// Fixed capacities: registrations past these return kInvalidMetricId (ops
// become no-ops, counted in registrations_dropped); spans past the buffer
// capacity are dropped and counted. Sized generously for this codebase.
constexpr std::size_t kMaxCounters = 64;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 16;
constexpr std::size_t kMaxBucketEdges = 16;
constexpr std::size_t kSpanCapacity = 4096;

struct TraceEvent {
  const char* name;
  const char* arg_key;  // nullptr when the span carried no Arg
  long long arg_value;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
};

struct HistShard {
  std::array<std::atomic<std::uint64_t>, kMaxBucketEdges + 1> counts{};
  std::atomic<double> sum{0.0};
};

struct ThreadState {
  std::uint32_t tid = 0;
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
  // Span buffer: single-writer append; count is the publication point
  // (release store after the event words are written, acquire load before a
  // scraper reads them).
  std::atomic<std::uint32_t> span_count{0};
  std::atomic<std::uint64_t> spans_dropped{0};
  std::vector<TraceEvent> span_events;  // sized kSpanCapacity on creation

  ThreadState() { span_events.resize(kSpanCapacity); }
};

struct GaugeSlot {
  std::string name;
  std::atomic<double> value{0.0};
  std::atomic<bool> set{false};
};

struct HistDef {
  std::string name;
  std::vector<double> edges;
};

struct Registry {
  std::mutex mu;  // guards registration tables, state list, diag list
  std::vector<std::unique_ptr<ThreadState>> states;
  std::vector<ThreadState*> free_states;
  std::uint32_t next_tid = 1;

  std::vector<std::string> counter_names;                       // id -> name
  std::array<std::unique_ptr<GaugeSlot>, kMaxGauges> gauges{};  // id -> slot
  std::size_t num_gauges = 0;
  std::array<std::unique_ptr<HistDef>, kMaxHistograms> hists{};  // id -> def
  std::size_t num_hists = 0;
  std::atomic<std::uint64_t> registrations_dropped{0};

  std::vector<DiagSite*> diag_sites;
};

Registry& reg() {
  static Registry* r = new Registry();  // leaked: outlives every TLS dtor
  return *r;
}

ThreadState* acquire_state() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.free_states.empty()) {
    ThreadState* s = r.free_states.back();
    r.free_states.pop_back();
    return s;
  }
  r.states.push_back(std::make_unique<ThreadState>());
  r.states.back()->tid = r.next_tid++;
  return r.states.back().get();
}

void release_state(ThreadState* s) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.free_states.push_back(s);
}

// TLS handle: acquires lazily on first use, returns the state to the free
// list at thread exit (the registry owns the storage, so recorded spans and
// counts survive the thread).
struct StateHandle {
  ThreadState* s = nullptr;
  ~StateHandle() {
    if (s != nullptr) release_state(s);
  }
};
thread_local StateHandle tl_state;

ThreadState& local_state() {
  if (tl_state.s == nullptr) tl_state.s = acquire_state();
  return *tl_state.s;
}

// Single-writer relaxed bump: the owning thread is the only writer of its
// shard slots, so load+store (no RMW) is race-free and cheapest.
inline void bump(std::atomic<std::uint64_t>& slot, std::uint64_t delta) {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

const char* severity_label(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

// Minimal JSON string escaping for metric/diag names and span labels.
void write_json_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (c < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void span_end(const char* name, Arg arg, std::uint64_t t0_ns) {
  const std::uint64_t t1 = now_ns();
  ThreadState& s = local_state();
  const std::uint32_t n = s.span_count.load(std::memory_order_relaxed);
  if (n >= kSpanCapacity) {
    bump(s.spans_dropped, 1);
    return;
  }
  s.span_events[n] = TraceEvent{name, arg.key, arg.value, t0_ns, t1};
  s.span_count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t register_counter(const char* name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    if (r.counter_names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (r.counter_names.size() >= kMaxCounters) {
    r.registrations_dropped.fetch_add(1, std::memory_order_relaxed);
    return kInvalidMetricId;
  }
  r.counter_names.emplace_back(name);
  return static_cast<std::uint32_t>(r.counter_names.size() - 1);
}

std::uint32_t register_gauge(const char* name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.num_gauges; ++i) {
    if (r.gauges[i]->name == name) return static_cast<std::uint32_t>(i);
  }
  if (r.num_gauges >= kMaxGauges) {
    r.registrations_dropped.fetch_add(1, std::memory_order_relaxed);
    return kInvalidMetricId;
  }
  r.gauges[r.num_gauges] = std::make_unique<GaugeSlot>();
  r.gauges[r.num_gauges]->name = name;
  return static_cast<std::uint32_t>(r.num_gauges++);
}

std::uint32_t register_histogram(const char* name,
                                 std::initializer_list<double> edges) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.num_hists; ++i) {
    if (r.hists[i]->name == name) return static_cast<std::uint32_t>(i);
  }
  if (r.num_hists >= kMaxHistograms || edges.size() == 0 ||
      edges.size() > kMaxBucketEdges) {
    r.registrations_dropped.fetch_add(1, std::memory_order_relaxed);
    return kInvalidMetricId;
  }
  auto def = std::make_unique<HistDef>();
  def->name = name;
  def->edges.assign(edges.begin(), edges.end());
  std::sort(def->edges.begin(), def->edges.end());
  r.hists[r.num_hists] = std::move(def);
  return static_cast<std::uint32_t>(r.num_hists++);
}

void counter_add(std::uint32_t id, std::uint64_t delta) {
  if (!enabled() || id >= kMaxCounters) return;
  bump(local_state().counters[id], delta);
}

void gauge_set(std::uint32_t id, double value) {
  if (!enabled() || id >= kMaxGauges) return;
  // Publication of the slot pointer happens-before any gauge_set with this
  // id: the id came out of register_gauge through a static-local guard.
  GaugeSlot* slot = reg().gauges[id].get();
  slot->value.store(value, std::memory_order_relaxed);
  slot->set.store(true, std::memory_order_relaxed);
}

void histogram_observe(std::uint32_t id, double value) {
  if (!enabled() || id >= kMaxHistograms) return;
  const HistDef& def = *reg().hists[id];
  std::size_t bucket = def.edges.size();  // overflow bucket
  for (std::size_t i = 0; i < def.edges.size(); ++i) {
    if (value <= def.edges[i]) {
      bucket = i;
      break;
    }
  }
  HistShard& shard = local_state().hists[id];
  bump(shard.counts[bucket], 1);
  shard.sum.store(shard.sum.load(std::memory_order_relaxed) + value,
                  std::memory_order_relaxed);
}

DiagSite::DiagSite(const char* id, Severity severity, std::uint32_t print_limit)
    : id_(id), severity_(severity), print_limit_(print_limit) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.diag_sites.push_back(this);
}

DiagSite::~DiagSite() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.diag_sites.erase(
      std::remove(r.diag_sites.begin(), r.diag_sites.end(), this),
      r.diag_sites.end());
}

void DiagSite::emit(const char* fmt, ...) {
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n > print_limit_) return;  // rate limit: counting continues, printing stops
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[netshare][%s][%s] %s%s\n", severity_label(severity_),
               id_, buf,
               n == print_limit_
                   ? " (print limit reached; further occurrences are counted "
                     "but not printed)"
                   : "");
}

std::uint64_t diag_count(const char* id) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const DiagSite* site : r.diag_sites) {
    if (std::strcmp(site->id(), id) == 0) total += site->count();
  }
  return total;
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;

  snap.counters.reserve(r.counter_names.size());
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& s : r.states) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(r.counter_names[i], total);
  }

  for (std::size_t i = 0; i < r.num_gauges; ++i) {
    const GaugeSlot& g = *r.gauges[i];
    if (g.set.load(std::memory_order_relaxed)) {
      snap.gauges.emplace_back(g.name, g.value.load(std::memory_order_relaxed));
    }
  }

  for (std::size_t i = 0; i < r.num_hists; ++i) {
    const HistDef& def = *r.hists[i];
    HistogramSnapshot h;
    h.name = def.name;
    h.edges = def.edges;
    h.counts.assign(def.edges.size() + 1, 0);
    for (const auto& s : r.states) {
      const HistShard& shard = s->hists[i];
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
      }
      h.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : h.counts) h.total += c;
    snap.histograms.push_back(std::move(h));
  }

  // Merge diag sites sharing an id (severity from the first registered).
  for (const DiagSite* site : r.diag_sites) {
    bool merged = false;
    for (DiagSnapshot& d : snap.diags) {
      if (d.id == site->id()) {
        d.count += site->count();
        merged = true;
        break;
      }
    }
    if (!merged) {
      snap.diags.push_back(DiagSnapshot{site->id(), site->severity(),
                                        site->count()});
    }
  }

  for (const auto& s : r.states) {
    snap.spans_recorded += s->span_count.load(std::memory_order_acquire);
    snap.spans_dropped += s->spans_dropped.load(std::memory_order_relaxed);
  }
  return snap;
}

std::uint64_t trace_event_count() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& s : r.states) {
    total += s->span_count.load(std::memory_order_acquire);
  }
  return total;
}

bool write_run_json(const std::string& path, const OverheadInfo& overhead) {
  const MetricsSnapshot snap = snapshot_metrics();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f, "{\n  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"displayTimeUnit\": \"ms\",\n");

  // Chrome trace-event array: complete ("X") events, ts/dur in microseconds.
  std::fprintf(f, "  \"traceEvents\": [");
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    bool first = true;
    for (const auto& s : r.states) {
      const std::uint32_t n = s->span_count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        const TraceEvent& e = s->span_events[i];
        std::fprintf(f, "%s\n    {\"name\": \"", first ? "" : ",");
        first = false;
        write_json_escaped(f, e.name);
        std::fprintf(f,
                     "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                     "\"pid\": 0, \"tid\": %u",
                     static_cast<double>(e.t0_ns) / 1e3,
                     static_cast<double>(e.t1_ns - e.t0_ns) / 1e3, s->tid);
        if (e.arg_key != nullptr) {
          std::fprintf(f, ", \"args\": {\"");
          write_json_escaped(f, e.arg_key);
          std::fprintf(f, "\": %lld}", e.arg_value);
        }
        std::fprintf(f, "}");
      }
    }
  }
  std::fprintf(f, "\n  ],\n");

  std::fprintf(f, "  \"metrics\": {\n    \"counters\": {");
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    std::fprintf(f, "%s\n      \"", i == 0 ? "" : ",");
    write_json_escaped(f, snap.counters[i].first.c_str());
    std::fprintf(f, "\": %llu",
                 static_cast<unsigned long long>(snap.counters[i].second));
  }
  std::fprintf(f, "\n    },\n    \"gauges\": {");
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    std::fprintf(f, "%s\n      \"", i == 0 ? "" : ",");
    write_json_escaped(f, snap.gauges[i].first.c_str());
    std::fprintf(f, "\": %.9g", snap.gauges[i].second);
  }
  std::fprintf(f, "\n    },\n    \"histograms\": {");
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    std::fprintf(f, "%s\n      \"", i == 0 ? "" : ",");
    write_json_escaped(f, h.name.c_str());
    std::fprintf(f, "\": {\"edges\": [");
    for (std::size_t b = 0; b < h.edges.size(); ++b) {
      std::fprintf(f, "%s%.9g", b == 0 ? "" : ", ", h.edges[b]);
    }
    std::fprintf(f, "], \"counts\": [");
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      std::fprintf(f, "%s%llu", b == 0 ? "" : ", ",
                   static_cast<unsigned long long>(h.counts[b]));
    }
    std::fprintf(f, "], \"count\": %llu, \"sum\": %.9g}",
                 static_cast<unsigned long long>(h.total), h.sum);
  }
  std::fprintf(f, "\n    },\n    \"diags\": {");
  for (std::size_t i = 0; i < snap.diags.size(); ++i) {
    std::fprintf(f, "%s\n      \"", i == 0 ? "" : ",");
    write_json_escaped(f, snap.diags[i].id.c_str());
    std::fprintf(f, "\": {\"severity\": \"%s\", \"count\": %llu}",
                 severity_label(snap.diags[i].severity),
                 static_cast<unsigned long long>(snap.diags[i].count));
  }
  std::fprintf(f, "\n    }\n  },\n");

  std::fprintf(f, "  \"spans_recorded\": %llu,\n",
               static_cast<unsigned long long>(snap.spans_recorded));
  std::fprintf(f, "  \"spans_dropped\": %llu",
               static_cast<unsigned long long>(snap.spans_dropped));
  if (overhead.telemetry_on_sec >= 0.0 && overhead.telemetry_off_sec > 0.0) {
    std::fprintf(
        f,
        ",\n  \"overhead\": {\"telemetry_on_sec\": %.6f, "
        "\"telemetry_off_sec\": %.6f, \"frac\": %.6f}",
        overhead.telemetry_on_sec, overhead.telemetry_off_sec,
        (overhead.telemetry_on_sec - overhead.telemetry_off_sec) /
            overhead.telemetry_off_sec);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

void reset_for_testing() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.states) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) {
      for (auto& c : h.counts) c.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
    }
    s->span_count.store(0, std::memory_order_relaxed);
    s->spans_dropped.store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < r.num_gauges; ++i) {
    r.gauges[i]->set.store(false, std::memory_order_relaxed);
    r.gauges[i]->value.store(0.0, std::memory_order_relaxed);
  }
  for (DiagSite* site : r.diag_sites) site->reset_count();
}

}  // namespace netshare::telemetry
