// Low-overhead runtime telemetry for the whole NetShare pipeline
// (DESIGN.md §8): a metrics registry (counters / gauges / fixed-bucket
// histograms), scoped trace spans exported as Chrome trace-event JSON
// (loadable in Perfetto), and a rate-limited structured diag channel that
// replaces raw stderr prints.
//
// Overhead contract:
//  - Hot-path metric ops are a relaxed-atomic write into a thread-local
//    shard; shards are aggregated only on scrape. After the first op on a
//    thread (which lazily acquires its shard), counter/gauge/histogram ops
//    and span begin/end perform ZERO heap allocations (asserted in
//    tests/test_telemetry.cpp with a counting operator new).
//  - A runtime kill switch (`set_enabled(false)`) reduces every op to one
//    relaxed atomic load and a branch; spans skip their clock reads.
//  - A compile-time kill switch (CMake -DNETSHARE_TELEMETRY=OFF) compiles
//    every TELEM_* macro to a no-op, turns this header into inline empty
//    stubs, and links the library without the telemetry translation unit.
//
// Determinism contract: telemetry only observes — it never touches an Rng,
// reorders work, or feeds values back into the pipeline, so instrumented
// builds produce bitwise-identical traces to uninstrumented ones
// (tests/test_generate.cpp still passes at every worker count).
//
// Thread-safety of scrape: metric scrapes (snapshot_metrics) are safe at any
// time. Trace export and reset_for_testing read/clear multi-word span
// buffers and must run at a quiescent point (no spans concurrently open on
// other threads) — which is how the benches use them (after pools joined).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#if defined(NETSHARE_TELEMETRY_ENABLED)
#include <atomic>
#endif

namespace netshare::telemetry {

// True when the subsystem is compiled in. Guards for instrumentation-only
// computation (e.g. deriving a loss estimate just to feed a gauge): write
// `if (telemetry::kCompiledIn && telemetry::enabled()) { ... }` and the
// whole block folds away under -DNETSHARE_TELEMETRY=OFF.
#if defined(NETSHARE_TELEMETRY_ENABLED)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

// Id returned when a registration table is full; ops on it are no-ops.
inline constexpr std::uint32_t kInvalidMetricId = 0xffffffffu;

// Optional span annotation: one integer-valued key per span keeps the event
// record POD and the hot path allocation-free. `key` must be a string with
// static storage duration (macro call sites pass literals).
struct Arg {
  const char* key;
  long long value;
};

enum class Severity { kInfo = 0, kWarn = 1, kError = 2 };

// ---------------------------------------------------------------------------
// Scrape results (defined in both modes so benches compile either way).
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::string name;
  std::vector<double> edges;           // ascending upper bucket bounds
  std::vector<std::uint64_t> counts;   // edges.size() + 1 buckets; counts[i]
                                       // = observations in (edge[i-1], edge[i]],
                                       // last bucket = > edges.back()
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct DiagSnapshot {
  std::string id;
  Severity severity = Severity::kInfo;
  std::uint64_t count = 0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;  // only gauges ever set
  std::vector<HistogramSnapshot> histograms;
  std::vector<DiagSnapshot> diags;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;  // ring-buffer overflow, counted not lost
};

// Overhead measurement attached to RUN_telemetry.json by bench/pipeline_e2e:
// the same workload timed with telemetry runtime-enabled and runtime-
// disabled. Negative values mean "not measured".
struct OverheadInfo {
  double telemetry_on_sec = -1.0;
  double telemetry_off_sec = -1.0;
};

#if defined(NETSHARE_TELEMETRY_ENABLED)

// ---------------------------------------------------------------------------
// Compiled-in API.
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
std::uint64_t now_ns();
void span_end(const char* name, Arg arg, std::uint64_t t0_ns);
}  // namespace detail

// Runtime kill switch; defaults to enabled. Disabling reduces every metric
// op to a relaxed load + branch (the compile-time switch removes even that).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Registration dedupes by name (two call sites naming the same metric share
// one id) and returns kInvalidMetricId when the fixed table is full — the
// op functions then no-op, so a full table degrades coverage, never safety.
// For histograms the first registration's bucket edges win.
std::uint32_t register_counter(const char* name);
std::uint32_t register_gauge(const char* name);
std::uint32_t register_histogram(const char* name,
                                 std::initializer_list<double> edges);

void counter_add(std::uint32_t id, std::uint64_t delta);
void gauge_set(std::uint32_t id, double value);
void histogram_observe(std::uint32_t id, double value);

// Scoped trace span: records one Chrome "X" (complete) event into the
// calling thread's fixed-capacity buffer on destruction. Nesting works the
// way Perfetto expects — inner spans have enclosing [begin, end) windows on
// the same tid. Use via TELEM_SPAN.
class Span {
 public:
  explicit Span(const char* name) : Span(name, Arg{nullptr, 0}) {}
  Span(const char* name, Arg arg) {
    if (enabled()) {
      name_ = name;
      arg_ = arg;
      t0_ = detail::now_ns();
      active_ = true;
    }
  }
  ~Span() {
    if (active_) detail::span_end(name_, arg_, t0_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  Arg arg_{nullptr, 0};
  std::uint64_t t0_ = 0;
  bool active_ = false;
};

// One diag call site: severity-tagged, rate-limited stderr line plus an
// always-on occurrence counter (scraped into MetricsSnapshot::diags and
// queryable via diag_count for tests). Deliberately independent of the
// runtime enable switch: diagnostics are control-plane, not data-plane.
// Use via TELEM_DIAG; instances must have static storage duration.
class DiagSite {
 public:
  DiagSite(const char* id, Severity severity, std::uint32_t print_limit = 5);
  ~DiagSite();  // unregisters, so non-static sites (tests) cannot dangle
  DiagSite(const DiagSite&) = delete;
  DiagSite& operator=(const DiagSite&) = delete;
  // printf-style; prints "[netshare][sev][id] msg" to stderr for the first
  // `print_limit` occurrences, then only counts.
  [[gnu::format(printf, 2, 3)]] void emit(const char* fmt, ...);

  const char* id() const { return id_; }
  Severity severity() const { return severity_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset_count() { count_.store(0, std::memory_order_relaxed); }

 private:
  const char* id_;
  Severity severity_;
  std::uint32_t print_limit_;
  std::atomic<std::uint64_t> count_{0};
};

// Total occurrences across every DiagSite registered under `id`.
std::uint64_t diag_count(const char* id);

// Aggregates all thread shards + gauges + diag counters. Safe concurrently
// with metric ops (relaxed-atomic slots); cheap enough for periodic scrapes.
MetricsSnapshot snapshot_metrics();

// Number of span events currently recorded across all thread buffers.
std::uint64_t trace_event_count();

// Writes RUN_telemetry.json: a valid Chrome trace-event object
// ({"traceEvents": [...]}, directly loadable in Perfetto) carrying the
// metrics snapshot and overhead numbers as extra top-level metadata keys.
// Returns false if the file cannot be opened. Quiescent-point only.
bool write_run_json(const std::string& path,
                    const OverheadInfo& overhead = OverheadInfo{});

// Zeroes every counter/gauge/histogram shard, span buffer, and diag count
// while keeping registrations (ids held in static locals stay valid).
// Quiescent-point only — tests and benches between phases.
void reset_for_testing();

#else  // !NETSHARE_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Compiled-out stubs: every entry point is an inline no-op so instrumented
// code compiles unchanged and the optimizer deletes it. No telemetry TU is
// linked in this mode.
// ---------------------------------------------------------------------------

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

inline std::uint32_t register_counter(const char*) { return kInvalidMetricId; }
inline std::uint32_t register_gauge(const char*) { return kInvalidMetricId; }
inline std::uint32_t register_histogram(const char*,
                                        std::initializer_list<double>) {
  return kInvalidMetricId;
}
inline void counter_add(std::uint32_t, std::uint64_t) {}
inline void gauge_set(std::uint32_t, double) {}
inline void histogram_observe(std::uint32_t, double) {}

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, Arg) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

class DiagSite {
 public:
  constexpr DiagSite(const char*, Severity, std::uint32_t = 5) {}
  DiagSite(const DiagSite&) = delete;
  DiagSite& operator=(const DiagSite&) = delete;
  inline void emit(const char*, ...) {}
};

inline std::uint64_t diag_count(const char*) { return 0; }
inline MetricsSnapshot snapshot_metrics() { return MetricsSnapshot{}; }
inline std::uint64_t trace_event_count() { return 0; }
inline bool write_run_json(const std::string&,
                           const OverheadInfo& = OverheadInfo{}) {
  return false;
}
inline void reset_for_testing() {}

#endif  // NETSHARE_TELEMETRY_ENABLED

}  // namespace netshare::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros — identical in both modes; only the functions and
// classes behind them change. Each metric macro caches its registration in a
// function-local static, so the name lookup happens once per call site.
// ---------------------------------------------------------------------------

#define NETSHARE_TELEM_CONCAT_INNER(a, b) a##b
#define NETSHARE_TELEM_CONCAT(a, b) NETSHARE_TELEM_CONCAT_INNER(a, b)

// Adds `delta` to the named counter.
#define TELEM_COUNT_N(name, delta)                                         \
  do {                                                                     \
    static const std::uint32_t netshare_telem_id =                         \
        ::netshare::telemetry::register_counter(name);                     \
    ::netshare::telemetry::counter_add(                                    \
        netshare_telem_id, static_cast<std::uint64_t>(delta));             \
  } while (0)
#define TELEM_COUNT(name) TELEM_COUNT_N(name, 1)

// Sets the named gauge (last writer wins; one global slot per gauge).
#define TELEM_GAUGE_SET(name, value)                                       \
  do {                                                                     \
    static const std::uint32_t netshare_telem_id =                         \
        ::netshare::telemetry::register_gauge(name);                       \
    ::netshare::telemetry::gauge_set(netshare_telem_id,                    \
                                     static_cast<double>(value));          \
  } while (0)

// Observes `value` in the named fixed-bucket histogram; trailing arguments
// are the ascending bucket edges, e.g. TELEM_HIST("len", n, 1, 2, 4, 8).
#define TELEM_HIST(name, value, ...)                                       \
  do {                                                                     \
    static const std::uint32_t netshare_telem_id =                         \
        ::netshare::telemetry::register_histogram(name, {__VA_ARGS__});    \
    ::netshare::telemetry::histogram_observe(                              \
        netshare_telem_id, static_cast<double>(value));                    \
  } while (0)

// Scoped span covering the rest of the enclosing block:
//   TELEM_SPAN("train.chunk");
//   TELEM_SPAN("train.chunk", {"chunk", static_cast<long long>(c)});
#define TELEM_SPAN(...)                                                    \
  [[maybe_unused]] ::netshare::telemetry::Span NETSHARE_TELEM_CONCAT(      \
      netshare_telem_span_, __COUNTER__)(__VA_ARGS__)

// Structured, rate-limited diagnostic:
//   TELEM_DIAG(::netshare::telemetry::Severity::kWarn, "core.x", "n=%zu", n);
#define TELEM_DIAG(severity, id, ...)                                      \
  do {                                                                     \
    static ::netshare::telemetry::DiagSite netshare_telem_site(id,         \
                                                               severity);  \
    netshare_telem_site.emit(__VA_ARGS__);                                 \
  } while (0)
