#include "core/parallel.hpp"

#include <algorithm>
#include <thread>

#include "common/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

std::size_t parallel_phase_budget(std::size_t budget) {
  budget = std::max<std::size_t>(1, budget);
  if (budget > 1 &&
      (ThreadPool::on_worker_thread() || ml::kernels::in_kernel_task())) {
    TELEM_DIAG(::netshare::telemetry::Severity::kWarn,
               "core.parallel.oversubscribed",
               "parallel phase requested %zu threads from inside an "
               "already-parallel context; clamping to 1 to avoid "
               "oversubscription",
               budget);
    return 1;
  }
  // These phases are CPU-bound: threads beyond the physical core count only
  // add dispatch overhead and scheduler churn, so the budget is silently
  // capped at hardware_concurrency (0 = unknown, leave the request alone).
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores > 0) budget = std::min(budget, cores);
  return budget;
}

PhaseBudget split_phase_budget(std::size_t budget, std::size_t tasks,
                               const ml::kernels::KernelConfig& base) {
  PhaseBudget split;
  budget = std::max<std::size_t>(1, budget);
  split.workers = std::max<std::size_t>(1, std::min(budget, tasks));
  split.kernel_cfg = base;
  if (split.kernel_cfg.threads == 0) split.kernel_cfg.threads = budget;
  split.kernel_cfg.threads =
      std::max<std::size_t>(1, split.kernel_cfg.threads / split.workers);
  return split;
}

void run_parallel_tasks(std::size_t workers, std::size_t tasks,
                        const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers <= 1 || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(workers, tasks));
  pool.parallel_for(tasks, fn);
}

std::size_t num_ranges(std::size_t workers, std::size_t n) {
  if (n == 0) return 0;
  return std::max<std::size_t>(1, std::min(workers, n));
}

void parallel_ranges(
    std::size_t workers, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t ntasks = num_ranges(workers, n);
  if (ntasks == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk = (n + ntasks - 1) / ntasks;
  ThreadPool pool(ntasks);
  pool.parallel_for(ntasks, [&](std::size_t t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(t, begin, end);
  });
}

}  // namespace netshare::core
