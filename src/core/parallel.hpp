// Thread-budget helpers shared by the parallel generation path and the
// parallel preprocess/postprocess stages (DESIGN.md §7).
//
// All of them preserve determinism: the helpers only decide *where* work
// runs, and every parallel loop in core writes disjoint outputs computed
// from per-task state, so results are identical at any worker count.
#pragma once

#include <cstddef>
#include <functional>

#include "ml/kernels.hpp"

namespace netshare::core {

// Thread budget a new parallel phase may actually use: `budget` normally,
// clamped to 1 (printing a one-line oversubscription warning to stderr) when
// the caller is already inside a parallel context — a ThreadPool worker or a
// kernel row-panel task — where fanning out the full budget would
// oversubscribe the machine, exactly as nested kernel dispatch is forced
// serial in ml/kernels.cpp. At top level the budget is additionally capped
// at std::thread::hardware_concurrency() (silently; 0 = unknown leaves the
// request alone): these phases are CPU-bound, so extra threads beyond the
// physical cores only add dispatch overhead.
std::size_t parallel_phase_budget(std::size_t budget);

// Splits `budget` between task-level workers and per-worker kernel threads,
// mirroring ChunkedTrainer::fit: workers = min(budget, tasks), and the
// kernel thread count (resolving 0 to `budget` first) is divided by the
// worker count so workers x kernel_threads ~= budget. Apply `kernel_cfg` via
// ml::kernels::ConfigOverride for the duration of the phase.
struct PhaseBudget {
  std::size_t workers = 1;
  ml::kernels::KernelConfig kernel_cfg;
};
PhaseBudget split_phase_budget(std::size_t budget, std::size_t tasks,
                               const ml::kernels::KernelConfig& base);

// Runs fn(i) for i in [0, tasks): on the calling thread when workers <= 1,
// otherwise across a ThreadPool of `workers`. fn must write disjoint state
// per index.
void run_parallel_tasks(std::size_t workers, std::size_t tasks,
                        const std::function<void(std::size_t)>& fn);

// Runs fn(range_index, begin, end) over up to `workers` contiguous, disjoint
// ranges covering [0, n); serial when workers <= 1. Range boundaries and
// indices depend only on (workers, n), never on scheduling, so per-range
// partial results indexed by range_index merge deterministically.
void parallel_ranges(
    std::size_t workers, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

// Number of ranges parallel_ranges(workers, n, ...) will invoke — the size
// to use for per-range partial-result buffers.
std::size_t num_ranges(std::size_t workers, std::size_t n);

}  // namespace netshare::core
