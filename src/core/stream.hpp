// Streaming chunk-granular dataflow (DESIGN.md §11): each epoch-chunk flows
// preprocess -> train -> generate -> export as an independent pipeline, so
// chunk k generates while chunk k+1 still trains. The executor is a small
// dependency-graph scheduler: every (stage, chunk) pair is one task, chunks
// are admitted in ascending order under a chunks-in-flight bound (peak memory
// scales with chunks-in-flight, not trace size), per-stage ready queues are
// bounded (a full queue parks the handoff instead of blocking the producer —
// backpressure without deadlock), and a fixed set of workers steal across
// stages under one shared `common/thread_pool` budget, deepest stage first,
// so in-flight chunks drain before new work starts.
//
// Determinism: the executor only decides *when* a stage body runs, never
// what it computes — bodies are pure functions of their chunk index (the
// counter-based NoiseStream makes sampling a pure function of (chunk, seed,
// series index)), so any worker count and any interleaving produce bitwise-
// identical output to running the stages as batch barriers.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/stopwatch.hpp"

namespace netshare::core {

enum class StreamStage : std::size_t {
  kPreprocess = 0,  // encode one chunk's records into a dataset
  kTrain = 1,       // seed-train or fine-tune the chunk model
  kGenerate = 2,    // deficit-loop sampling + decode
  kExport = 3,      // sort + truncate the chunk's sub-trace
};
inline constexpr std::size_t kNumStreamStages = 4;

const char* to_string(StreamStage stage);

struct StreamOptions {
  std::size_t workers = 1;        // stage-task workers (one shared pool)
  std::size_t max_in_flight = 2;  // admitted-but-unfinished chunk bound
  std::size_t queue_capacity = 1; // per-stage ready-queue bound (stages > 0)
};

// Filled by StreamExecutor::run; exposed through NetShare::fit_generate_*.
struct StreamStats {
  std::size_t chunks = 0;
  std::size_t workers = 0;
  std::size_t peak_in_flight = 0;
  // Handoffs that found the downstream ready queue full and were parked on
  // the overflow wait-list (refilled as the consumer drains the queue).
  std::size_t backpressure_parks = 0;
  double wall_sec = 0.0;
  // Wall-clock during which >= 2 stage tasks ran concurrently; the direct
  // measure of the inter-stage overlap the streaming refactor buys.
  double overlap_sec = 0.0;
  double overlap_frac = 0.0;
  std::array<double, kNumStreamStages> stage_busy_sec{};
};

class StreamExecutor {
 public:
  using Body = std::function<void(std::size_t chunk)>;

  StreamExecutor(std::size_t num_chunks,
                 std::array<Body, kNumStreamStages> bodies,
                 StreamOptions options);

  // Adds an extra edge: (stage, chunk) waits for (dep_stage, dep_chunk).
  // Must be called before run(). The per-chunk stage chain S0 -> S1 -> S2 ->
  // S3 is implicit. A dependency on a *later* chunk can stall the graph
  // under the admission bound; run() detects the stall and throws rather
  // than hanging.
  void add_dependency(StreamStage stage, std::size_t chunk,
                      StreamStage dep_stage, std::size_t dep_chunk);

  // Runs the graph to completion (single use). The first body exception
  // cancels the remaining tasks and is rethrown — matching the batch path,
  // where e.g. a seed-train failure propagates. workers == 1 executes inline
  // on the calling thread (the batch-equivalent serial order).
  void run();

  const StreamStats& stats() const { return stats_; }

 private:
  struct Interval {
    double begin = 0.0;
    double end = 0.0;
    bool ran = false;
  };

  std::size_t task_id(StreamStage stage, std::size_t chunk) const {
    return static_cast<std::size_t>(stage) * chunks_ + chunk;
  }
  void worker_loop();
  void execute(StreamStage stage, std::size_t chunk);
  void run_body(StreamStage stage, std::size_t chunk);
  std::optional<std::pair<StreamStage, std::size_t>> pick_locked();
  void offer_locked(std::size_t id);
  void complete_locked(StreamStage stage, std::size_t chunk);
  void admit_locked();
  void finalize_stats();

  std::size_t chunks_;
  std::array<Body, kNumStreamStages> bodies_;
  StreamOptions opts_;

  // Graph (fixed after add_dependency calls).
  std::vector<int> waiting_deps_;                     // per task id
  std::vector<std::vector<std::size_t>> dependents_;  // task id -> task ids

  // Scheduler state (all under mu_).
  std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<std::size_t>, kNumStreamStages> ready_;
  std::array<std::deque<std::size_t>, kNumStreamStages> parked_;
  std::vector<char> admitted_;  // per chunk
  std::size_t next_admit_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t completed_chunks_ = 0;
  std::size_t running_ = 0;
  bool cancelled_ = false;
  std::exception_ptr first_error_;

  // Each task writes only its own slot, unlocked; read after the join.
  std::vector<Interval> intervals_;
  Stopwatch clock_;
  StreamStats stats_;
  bool ran_ = false;
};

}  // namespace netshare::core
