// Chunked training orchestration (Insight 3): train a seed model on the
// first (non-empty) chunk, snapshot it, and fine-tune one model per
// remaining chunk in parallel. Also hosts the DP path (Insight 4): restore a
// public-data snapshot, then run DP-SGD fine-tuning.
//
// Thread budgeting: NetShareConfig::threads is the total budget. The seed
// phase hands it all to the matmul kernel layer (ml/kernels.hpp); the
// fine-tune phase splits it between chunk-level workers and per-worker
// kernel threads. Determinism is unaffected — the kernels are bitwise
// identical at any thread count.
//
// Memory: every DoppelGanger owns its own ml::Workspace allocation arena
// (DESIGN.md §6), so the chunk models fine-tuning in parallel here never
// share mutable scratch buffers — no locks, and TSan stays green.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "gan/doppelganger.hpp"

namespace netshare::core {

class ChunkedTrainer {
 public:
  ChunkedTrainer(gan::TimeSeriesSpec spec, const NetShareConfig& config);

  // Trains on per-chunk datasets (empty chunks get no model).
  void fit(const std::vector<gan::TimeSeriesDataset>& chunks);

  // Samples n series from chunk c's model; returns an empty series (0 rows)
  // if the chunk had no data.
  gan::GeneratedSeries sample_chunk(std::size_t c, std::size_t n, Rng& rng);

  // Sum of thread-CPU seconds across all chunk models (Fig. 4 cost axis).
  double train_cpu_seconds() const;

  // Seed-model weights (for exporting a public pretraining snapshot).
  std::vector<double> seed_snapshot();

  std::size_t num_chunks() const { return models_.size(); }
  bool has_model(std::size_t c) const {
    return c < models_.size() && models_[c] != nullptr;
  }
  // Total DP-SGD steps across models (for the accountant).
  std::size_t total_dp_steps() const;

 private:
  gan::DgConfig chunk_config() const;

  gan::TimeSeriesSpec spec_;
  const NetShareConfig config_;
  std::vector<std::unique_ptr<gan::DoppelGanger>> models_;
  std::size_t seed_chunk_ = 0;
};

}  // namespace netshare::core
