// Chunked training orchestration (Insight 3): train a seed model on the
// first (non-empty) chunk, snapshot it, and fine-tune one model per
// remaining chunk in parallel. Also hosts the DP path (Insight 4): restore a
// public-data snapshot, then run DP-SGD fine-tuning.
//
// Thread budgeting: NetShareConfig::threads is the total budget. The seed
// phase hands it all to the matmul kernel layer (ml/kernels.hpp); the
// fine-tune phase splits it between chunk-level workers and per-worker
// kernel threads. Determinism is unaffected — the kernels are bitwise
// identical at any thread count.
//
// Memory: every DoppelGanger owns its own ml::Workspace allocation arena
// (DESIGN.md §6), so the chunk models fine-tuning in parallel here never
// share mutable scratch buffers — no locks, and TSan stays green.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "gan/doppelganger.hpp"

namespace netshare::core {

class ChunkedTrainer {
 public:
  ChunkedTrainer(gan::TimeSeriesSpec spec, const NetShareConfig& config);

  // Trains on per-chunk datasets (empty chunks get no model).
  void fit(const std::vector<gan::TimeSeriesDataset>& chunks);

  // Samples n series from chunk c's model; returns an empty series (0 rows)
  // if the chunk had no data.
  gan::GeneratedSeries sample_chunk(std::size_t c, std::size_t n, Rng& rng);

  // Deterministic stream-seeded sampling into caller-owned buffers: series
  // `first_series + i` of chunk c draws from the counter-based stream
  // (mix_seed(seed, c), first_series + i), so the output is a pure function
  // of (c, seed, series index) — independent of batching, of call
  // partitioning, and of worker/kernel thread counts. Zero steady-state
  // Matrix allocations after a same-shape warm-up call.
  void sample_chunk_into(std::size_t c, std::size_t n, std::uint64_t seed,
                         std::size_t first_series, gan::GeneratedSeries& out);

  // Same contract through the full-unroll reference sampler
  // (DoppelGanger::sample_reference_into): bitwise identical to
  // sample_chunk_into, kept as the serial baseline for bench/pipeline_e2e
  // and the oracle in tests.
  void sample_chunk_reference_into(std::size_t c, std::size_t n,
                                   std::uint64_t seed,
                                   std::size_t first_series,
                                   gan::GeneratedSeries& out);

  // Samples counts[c] series from every chunk model, splitting the thread
  // budget between chunk workers and per-worker kernel threads exactly like
  // fit() (see parallel_phase_budget / split_phase_budget). Chunks without a
  // model (or with counts[c] == 0) yield empty series. `thread_budget` == 0
  // uses config.threads; any value produces bitwise-identical output.
  void sample_chunks(const std::vector<std::size_t>& counts, std::uint64_t seed,
                     std::vector<gan::GeneratedSeries>& out,
                     std::size_t thread_budget = 0);

  // Sum of thread-CPU seconds across all chunk models (Fig. 4 cost axis).
  double train_cpu_seconds() const;

  // Seed-model weights (for exporting a public pretraining snapshot).
  std::vector<double> seed_snapshot();

  std::size_t num_chunks() const { return models_.size(); }
  bool has_model(std::size_t c) const {
    return c < models_.size() && models_[c] != nullptr;
  }
  // Total DP-SGD steps across models (for the accountant).
  std::size_t total_dp_steps() const;

 private:
  gan::DgConfig chunk_config() const;

  gan::TimeSeriesSpec spec_;
  const NetShareConfig config_;
  std::vector<std::unique_ptr<gan::DoppelGanger>> models_;
  std::size_t seed_chunk_ = 0;
};

}  // namespace netshare::core
