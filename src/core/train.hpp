// Chunked training orchestration (Insight 3): train a seed model on the
// first (non-empty) chunk, snapshot it, and fine-tune one model per
// remaining chunk in parallel. Also hosts the DP path (Insight 4): restore a
// public-data snapshot, then run DP-SGD fine-tuning.
//
// Thread budgeting: NetShareConfig::threads is the total budget. The seed
// phase hands it all to the matmul kernel layer (ml/kernels.hpp); the
// fine-tune phase splits it between chunk-level workers and per-worker
// kernel threads. Determinism is unaffected — the kernels are bitwise
// identical at any thread count.
//
// Memory: every DoppelGanger owns its own ml::Workspace allocation arena
// (DESIGN.md §6), so the chunk models fine-tuning in parallel here never
// share mutable scratch buffers — no locks, and TSan stays green.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "gan/doppelganger.hpp"

namespace netshare::core {

// Per-chunk training outcome (chunk fault isolation, DESIGN.md §9).
struct ChunkTrainReport {
  enum class Status {
    kEmpty,         // chunk had no data; no model
    kTrained,       // trained this run (rollbacks counts in-fit recoveries)
    kResumed,       // restored from a valid on-disk checkpoint; not retrained
    kSeedFallback,  // training failed; model is a copy of the seed snapshot
  };
  Status status = Status::kEmpty;
  bool is_seed = false;  // this chunk trained the seed model
  int attempts = 0;      // training attempts (1 + in-fit rollback retries)
  int rollbacks = 0;     // health-guard rollback-and-retry recoveries
  // Per-chunk stage wall-clock: chunks complete out of lockstep under the
  // streaming pipeline, so aggregate stage seconds no longer tell the story.
  double train_sec = 0.0;     // train_seed / train_finetune (incl. resume)
  double generate_sec = 0.0;  // sampling + decode, via note_generate_seconds
  std::string error;          // failure detail when status == kSeedFallback
};

const char* to_string(ChunkTrainReport::Status status);

// Whole-run report ChunkedTrainer::fit fills and NetShare::train_report
// exposes; eval::print_train_report renders it.
struct TrainReport {
  std::vector<ChunkTrainReport> chunks;
  std::size_t seed_chunk = 0;
  std::size_t count(ChunkTrainReport::Status status) const {
    std::size_t n = 0;
    for (const auto& c : chunks) n += c.status == status ? 1 : 0;
    return n;
  }
};

class ChunkedTrainer {
 public:
  ChunkedTrainer(gan::TimeSeriesSpec spec, const NetShareConfig& config);

  // Trains on per-chunk datasets (empty chunks get no model). Chunk faults
  // are isolated: a fine-tune chunk whose training fails (exception or
  // exhausted rollback retries) falls back to a copy of the seed snapshot
  // and the failure is recorded in report() — only a seed-chunk failure
  // propagates (there is nothing to fall back to). With
  // config.checkpoint_dir set, each trained chunk is durably checkpointed
  // and valid checkpoints found on entry are resumed instead of retrained.
  void fit(const std::vector<gan::TimeSeriesDataset>& chunks);

  // --- chunk-granular API (streaming dataflow, DESIGN.md §11) ---
  // fit() is exactly these calls composed, so the batch and streaming paths
  // share one training code path and stay bitwise identical by construction.
  //
  // begin_fit validates the per-chunk sample counts, sizes the run, picks
  // the seed chunk, and prepares the checkpoint directory. train_seed must
  // complete before any train_finetune (the stream graph encodes this as a
  // train(c) -> train(seed) edge); train_finetune is safe to call
  // concurrently for distinct chunks (disjoint models_/report_ slots).
  void begin_fit(const std::vector<std::size_t>& chunk_samples);
  std::size_t seed_chunk() const { return seed_chunk_; }
  void train_seed(const gan::TimeSeriesDataset& data);
  void train_finetune(std::size_t c, const gan::TimeSeriesDataset& data);
  // Records chunk c's generate-stage wall seconds in report(). Safe for
  // concurrent distinct chunks.
  void note_generate_seconds(std::size_t c, double sec);

  // --- serving path (DESIGN.md §13) ---
  // Installs chunk c's model directly from a flat parameter snapshot, no
  // training: the model registry restores published checkpoint files into a
  // sampling-only trainer. begin_fit must have sized the run. Throws
  // std::invalid_argument on a shape mismatch (restore validates every
  // boundary before writing, so the slot is never half-restored — the old
  // model for that chunk, if any, is simply replaced on success only).
  // Marks the chunk kResumed in report().
  void restore_chunk(std::size_t c, const std::vector<double>& params);

  // Per-chunk outcome of the last fit() (empty before the first fit).
  const TrainReport& report() const { return report_; }

  // Samples n series from chunk c's model; returns an empty series (0 rows)
  // if the chunk had no data.
  gan::GeneratedSeries sample_chunk(std::size_t c, std::size_t n, Rng& rng);

  // Deterministic stream-seeded sampling into caller-owned buffers: series
  // `first_series + i` of chunk c draws from the counter-based stream
  // (mix_seed(seed, c), first_series + i), so the output is a pure function
  // of (c, seed, series index) — independent of batching, of call
  // partitioning, and of worker/kernel thread counts. Zero steady-state
  // Matrix allocations after a same-shape warm-up call.
  void sample_chunk_into(std::size_t c, std::size_t n, std::uint64_t seed,
                         std::size_t first_series, gan::GeneratedSeries& out);

  // Same contract through the full-unroll reference sampler
  // (DoppelGanger::sample_reference_into): bitwise identical to
  // sample_chunk_into, kept as the serial baseline for bench/pipeline_e2e
  // and the oracle in tests.
  void sample_chunk_reference_into(std::size_t c, std::size_t n,
                                   std::uint64_t seed,
                                   std::size_t first_series,
                                   gan::GeneratedSeries& out);

  // Samples counts[c] series from every chunk model, splitting the thread
  // budget between chunk workers and per-worker kernel threads exactly like
  // fit() (see parallel_phase_budget / split_phase_budget). Chunks without a
  // model (or with counts[c] == 0) yield empty series. `thread_budget` == 0
  // uses config.threads; any value produces bitwise-identical output.
  void sample_chunks(const std::vector<std::size_t>& counts, std::uint64_t seed,
                     std::vector<gan::GeneratedSeries>& out,
                     std::size_t thread_budget = 0);

  // Sum of thread-CPU seconds across all chunk models (Fig. 4 cost axis).
  double train_cpu_seconds() const;

  // Seed-model weights (for exporting a public pretraining snapshot).
  std::vector<double> seed_snapshot();

  std::size_t num_chunks() const { return models_.size(); }
  bool has_model(std::size_t c) const {
    return c < models_.size() && models_[c] != nullptr;
  }
  // Total DP-SGD steps across models (for the accountant).
  std::size_t total_dp_steps() const;

 private:
  gan::DgConfig chunk_config() const;
  std::string checkpoint_path(std::size_t c) const;
  // Restores chunk c's model from its on-disk checkpoint if one exists and
  // validates (CRC32 + shape); invalid files are diagnosed and ignored.
  bool try_resume(std::size_t c);
  // Durably checkpoints chunk c (no-op without checkpoint_dir). A failed
  // write is diagnosed but never fails training — the chunk just retrains
  // on a future resume.
  void write_checkpoint(std::size_t c);

  gan::TimeSeriesSpec spec_;
  const NetShareConfig config_;
  std::vector<std::unique_ptr<gan::DoppelGanger>> models_;
  std::size_t seed_chunk_ = 0;
  // Seed-model weights cached by train_seed; train_finetune warm-starts
  // from it (const between the seed phase and the last fine-tune).
  std::vector<double> seed_snapshot_;
  TrainReport report_;
};

}  // namespace netshare::core
