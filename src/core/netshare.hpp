// NetShare end-to-end facade (Fig. 9): merge epochs -> flow split -> encode
// -> chunked GAN training -> sample -> decode -> merge by timestamp.
//
// Quickstart:
//   core::NetShareConfig cfg;
//   core::NetShare model(cfg, core::make_public_ip2vec());
//   model.fit(real_flow_trace);
//   Rng rng(1);
//   net::FlowTrace synthetic = model.generate_flows(10'000, rng);
#pragma once

#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/preprocess.hpp"
#include "core/stream.hpp"
#include "core/train.hpp"

namespace netshare::core {

// Trains an IP2Vec embedding on the public backbone preset (CAIDA Chicago
// 2015-like), per Insight 2's privacy argument. Deterministic in `seed`
// (and in nothing else: vocab/workers only bound table size / speed).
std::shared_ptr<embed::Ip2Vec> make_public_ip2vec(
    std::uint64_t seed = 2015, std::size_t records = 4000,
    std::size_t dim = 4, embed::VocabConfig vocab = {},
    std::size_t workers = 1);

// Same, with the scalability knobs taken from a NetShareConfig.
std::shared_ptr<embed::Ip2Vec> make_public_ip2vec_for(
    const NetShareConfig& config, std::uint64_t seed = 2015,
    std::size_t records = 4000);

// --- chunk-part sampling toolkit (DESIGN.md §13) ---
// The building blocks of the generation path, exposed so the serving layer
// (src/serve) can coalesce several jobs into shared chunk-part sampling
// passes while staying on the exact code path generate_flows() uses. Each
// part is a pure function of (chunk models, config, seed, chunk, target):
// independent of batching, of job interleaving, and of worker/kernel thread
// counts.

// Per-chunk record targets proportional to the real chunk sizes (sums to ~n).
std::vector<std::size_t> chunk_record_targets(
    const std::vector<ChunkInfo>& chunks, std::size_t n);

// Deficit-loop sampling + decode of chunk c's sub-trace toward `target`
// records (overshoot is trimmed by export_flow_chunk_part).
void sample_flow_chunk_part(const std::vector<ChunkInfo>& chunks,
                            std::size_t c, std::size_t target,
                            std::uint64_t seed, const NetShareConfig& config,
                            ChunkedTrainer& trainer,
                            const FlowEncoder& encoder, net::FlowTrace& out);

// Orders a chunk's sub-trace and trims the deficit-loop overshoot.
void export_flow_chunk_part(std::size_t target, net::FlowTrace& part);

// Concatenates per-chunk sub-traces in chunk order, orders globally, trims
// to n — the final merge both the offline path and the serving client run.
net::FlowTrace merge_flow_chunk_parts(std::vector<net::FlowTrace>& parts,
                                      std::size_t n);

class NetShare {
 public:
  // `ip2vec` may be null; it is then required that
  // config.use_ip2vec_ports == false.
  NetShare(NetShareConfig config, std::shared_ptr<embed::Ip2Vec> ip2vec);

  // --- NetFlow path ---
  void fit(const net::FlowTrace& trace);
  void fit(const std::vector<net::FlowTrace>& epochs);  // merges (Insight 1)
  net::FlowTrace generate_flows(std::size_t n, Rng& rng);

  // --- PCAP path ---
  void fit(const net::PacketTrace& trace);
  void fit(const std::vector<net::PacketTrace>& epochs);
  net::PacketTrace generate_packets(std::size_t n, Rng& rng);

  // --- streaming end-to-end (DESIGN.md §11) ---
  // One-shot fit + generate. With config.streaming set, runs the
  // chunk-granular stage graph (core/stream.hpp) so chunk k generates while
  // chunk k+1 still trains; bitwise identical to fit() + generate_*() at
  // any stream_workers count. With streaming unset this IS the batch path
  // (the oracle the streaming output is tested against). `stats`, when
  // non-null, receives the stream run's overlap/backpressure numbers
  // (zeroed on the batch path).
  net::FlowTrace fit_generate_flows(const net::FlowTrace& trace, std::size_t n,
                                    Rng& rng, StreamStats* stats = nullptr);
  net::PacketTrace fit_generate_packets(const net::PacketTrace& trace,
                                        std::size_t n, Rng& rng,
                                        StreamStats* stats = nullptr);

  // Total training cost in thread-CPU seconds (Fig. 4).
  double train_cpu_seconds() const;

  // Per-chunk training outcome of the last fit (status / attempts /
  // rollbacks / seed fallbacks; see core/train.hpp). Throws std::logic_error
  // before the first fit.
  const TrainReport& train_report() const;

  // Seed-model weights for public pretraining (Insight 4): train a NetShare
  // on public data, snapshot() it, and pass the snapshot in the private
  // model's config.public_snapshot.
  std::vector<double> snapshot();

  // Total DP-SGD steps taken (feed to privacy::compute_epsilon).
  std::size_t dp_steps() const;

  const NetShareConfig& config() const { return config_; }

 private:
  NetShareConfig config_;
  std::shared_ptr<embed::Ip2Vec> ip2vec_;
  std::optional<FlowEncoder> flow_encoder_;
  std::optional<PacketEncoder> packet_encoder_;
  std::unique_ptr<ChunkedTrainer> trainer_;
};

}  // namespace netshare::core
