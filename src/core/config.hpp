// NetShare end-to-end configuration (Sec. 4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gan/doppelganger.hpp"
#include "ml/kernels.hpp"

namespace netshare::core {

struct NetShareConfig {
  // --- Insight 1: flow-split time-series formulation ---
  std::size_t max_seq_len = 8;  // per-flow series truncation (scaled down)

  // --- Insight 2: encodings ---
  bool use_ip2vec_ports = true;  // false = bit-encode ports (ablation)
  bool log_transform = true;     // false = min-max on large-support fields
  std::size_t ip2vec_dim = 4;  // scaled-down embedding width
  // IP2Vec scalability knobs (DESIGN.md §12). max_ip_slots = 0 keeps the
  // legacy exact-slot-per-IP behaviour; a positive cap folds rare addresses
  // into shared tail buckets so million-IP vocabularies stay bounded.
  std::size_t ip2vec_max_ip_slots = 0;
  std::size_t ip2vec_tail_buckets = 256;
  // Coefficient-phase fan-out of IP2Vec training (0 = hardware concurrency).
  // Speed only: embeddings are bitwise identical at any worker count.
  std::size_t ip2vec_workers = 1;

  // --- Insight 3: chunked fine-tuning ---
  std::size_t num_chunks = 5;     // M evenly time-spaced chunks
  int seed_iterations = 250;      // chunk-0 training
  int finetune_iterations = 80;   // per later chunk
  std::size_t threads = 4;        // total thread budget (chunks × kernels)
  bool netshare_v0 = false;       // monolithic: single model, no chunking
  bool naive_parallel = false;    // ablation: chunks without warm start
  bool use_flow_tags = true;      // ablation: cross-chunk flow tags

  // --- matmul kernel layer (ml/kernels.hpp) ---
  // kernels.threads == 0 defers to `threads` above during training: the seed
  // phase gives the whole budget to the kernels, the fine-tune phase splits
  // it between chunk workers and per-worker kernel threads (see
  // ChunkedTrainer::fit). Parallel kernels are bitwise identical to serial.
  // kernels.simd is the vector-tier ceiling (DESIGN.md §10): kAvx2 (default)
  // lets runtime CPUID dispatch pick the SIMD tier, kScalar pins the blocked
  // scalar kernels. Either tier — like the NETSHARE_SIMD=off env override —
  // produces bitwise-identical models, flows, and snapshots.
  ml::kernels::KernelConfig kernels;

  // --- Insight 4: differential privacy ---
  bool dp = false;
  privacy::DpSgdConfig dp_config{1.0, 1.0};
  // Snapshot of a model pre-trained on PUBLIC data (see NetShare::snapshot);
  // when set with dp=true, DP-SGD fine-tunes from it.
  std::optional<std::vector<double>> public_snapshot;

  // GAN hyperparameters (identical across datasets, per Sec. 5).
  gan::DgConfig dg;

  // --- robustness (DESIGN.md §9) ---
  // When non-empty, ChunkedTrainer::fit writes one durable checkpoint per
  // successfully trained chunk into this directory (versioned + CRC32,
  // temp-file + atomic rename; see ml/serialize.hpp) and, on a later fit
  // with the same config, resumes: chunks whose valid checkpoint exists on
  // disk are restored instead of retrained, so a killed fit restarts from
  // where it died. Invalid/corrupt checkpoints are diagnosed and retrained.
  std::string checkpoint_dir;

  // --- streaming dataflow (DESIGN.md §11) ---
  // NetShare::fit_generate_* with streaming=true runs the chunk-granular
  // stage graph (core/stream.hpp): chunk k generates while chunk k+1 still
  // trains, under the same `threads` budget, with at most stream_max_in_flight
  // chunks' buffers alive at once. Output is bitwise identical to the batch
  // path at any worker count; streaming=false keeps the batch pipeline as
  // the oracle.
  bool streaming = false;
  std::size_t stream_workers = 0;         // stage-task workers; 0 -> threads
  std::size_t stream_max_in_flight = 2;   // admitted-chunk bound (memory)
  std::size_t stream_queue_capacity = 1;  // per-stage handoff queue bound

  std::uint64_t seed = 42;
};

}  // namespace netshare::core
