#include "core/postprocess.hpp"

#include <stdexcept>
#include <unordered_map>

namespace netshare::core {

namespace {

// Assigns each distinct input address the next offset in the target subnet,
// in first-seen order (preserves the rank structure of address popularity).
class SubnetMapper {
 public:
  SubnetMapper(net::Ipv4Address base, int prefix_len) : base_(base.value()) {
    if (prefix_len < 0 || prefix_len > 30) {
      throw std::invalid_argument("SubnetMapper: prefix_len out of range");
    }
    capacity_ = 1u << (32 - prefix_len);
    base_ &= ~(capacity_ - 1);
  }

  net::Ipv4Address map(net::Ipv4Address ip) {
    auto [it, inserted] = table_.try_emplace(ip.value(), next_);
    if (inserted) next_ = (next_ + 1) % capacity_;
    return net::Ipv4Address(base_ + (it->second % capacity_));
  }

 private:
  std::uint32_t base_;
  std::uint32_t capacity_;
  std::uint32_t next_ = 1;  // skip .0 (network address)
  std::unordered_map<std::uint32_t, std::uint32_t> table_;
};

template <typename Dist>
std::pair<std::vector<std::uint16_t>, std::vector<double>> split_dist(
    const Dist& dist) {
  if (dist.empty()) {
    throw std::invalid_argument("retrain_dst_ports: empty distribution");
  }
  std::vector<std::uint16_t> ports;
  std::vector<double> weights;
  for (const auto& [p, w] : dist) {
    ports.push_back(p);
    weights.push_back(w);
  }
  return {std::move(ports), std::move(weights)};
}

}  // namespace

net::FlowTrace remap_ips(const net::FlowTrace& trace, const IpRemapConfig& cfg) {
  SubnetMapper src(cfg.src_base, cfg.src_prefix_len);
  SubnetMapper dst(cfg.dst_base, cfg.dst_prefix_len);
  net::FlowTrace out = trace;
  for (auto& r : out.records) {
    r.key.src_ip = src.map(r.key.src_ip);
    r.key.dst_ip = dst.map(r.key.dst_ip);
  }
  return out;
}

net::PacketTrace remap_ips(const net::PacketTrace& trace,
                           const IpRemapConfig& cfg) {
  SubnetMapper src(cfg.src_base, cfg.src_prefix_len);
  SubnetMapper dst(cfg.dst_base, cfg.dst_prefix_len);
  net::PacketTrace out = trace;
  for (auto& p : out.packets) {
    p.key.src_ip = src.map(p.key.src_ip);
    p.key.dst_ip = dst.map(p.key.dst_ip);
  }
  return out;
}

net::FlowTrace retrain_dst_ports(const net::FlowTrace& trace,
                                 const std::map<std::uint16_t, double>& dist,
                                 Rng& rng) {
  auto [ports, weights] = split_dist(dist);
  net::FlowTrace out = trace;
  for (auto& r : out.records) {
    r.key.dst_port = ports[rng.categorical(weights)];
  }
  return out;
}

net::PacketTrace retrain_dst_ports(const net::PacketTrace& trace,
                                   const std::map<std::uint16_t, double>& dist,
                                   Rng& rng) {
  auto [ports, weights] = split_dist(dist);
  net::PacketTrace out = trace;
  for (auto& p : out.packets) {
    p.key.dst_port = ports[rng.categorical(weights)];
  }
  return out;
}

}  // namespace netshare::core
