#include "core/postprocess.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

namespace {

// Assigns each distinct input address the next offset in the target subnet,
// in first-seen order (preserves the rank structure of address popularity).
// Build the table serially with map(), then apply concurrently with the
// const lookup() — the table is immutable during the apply phase.
class SubnetMapper {
 public:
  SubnetMapper(net::Ipv4Address base, int prefix_len) : base_(base.value()) {
    if (prefix_len < 0 || prefix_len > 30) {
      throw std::invalid_argument("SubnetMapper: prefix_len out of range");
    }
    capacity_ = 1u << (32 - prefix_len);
    base_ &= ~(capacity_ - 1);
  }

  net::Ipv4Address map(net::Ipv4Address ip) {
    auto [it, inserted] = table_.try_emplace(ip.value(), next_);
    if (inserted) next_ = (next_ + 1) % capacity_;
    return net::Ipv4Address(base_ + (it->second % capacity_));
  }

  net::Ipv4Address lookup(net::Ipv4Address ip) const {
    return net::Ipv4Address(base_ + (table_.at(ip.value()) % capacity_));
  }

 private:
  std::uint32_t base_;
  std::uint32_t capacity_;
  std::uint32_t next_ = 1;  // skip .0 (network address)
  std::unordered_map<std::uint32_t, std::uint32_t> table_;
};

// Two-phase remap shared by both trace types: phase 1 enumerates addresses
// in record order (order-sensitive, serial); phase 2 rewrites keys through
// the now-const tables across `threads` disjoint ranges.
template <typename RecordVec>
void remap_records(RecordVec& records, const IpRemapConfig& cfg,
                   std::size_t threads) {
  SubnetMapper src(cfg.src_base, cfg.src_prefix_len);
  SubnetMapper dst(cfg.dst_base, cfg.dst_prefix_len);
  for (const auto& r : records) {
    src.map(r.key.src_ip);
    dst.map(r.key.dst_ip);
  }
  parallel_ranges(parallel_phase_budget(std::max<std::size_t>(1, threads)),
                  records.size(),
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      records[i].key.src_ip = src.lookup(records[i].key.src_ip);
                      records[i].key.dst_ip = dst.lookup(records[i].key.dst_ip);
                    }
                  });
}

template <typename Dist>
std::pair<std::vector<std::uint16_t>, std::vector<double>> split_dist(
    const Dist& dist) {
  if (dist.empty()) {
    throw std::invalid_argument("retrain_dst_ports: empty distribution");
  }
  std::vector<std::uint16_t> ports;
  std::vector<double> weights;
  for (const auto& [p, w] : dist) {
    ports.push_back(p);
    weights.push_back(w);
  }
  return {std::move(ports), std::move(weights)};
}

// Record i draws from stream (seed, i): the port choice is a pure function
// of (seed, i), so any range partition / thread count yields the same trace.
template <typename RecordVec>
void retrain_records(RecordVec& records,
                     const std::map<std::uint16_t, double>& dist, Rng& rng,
                     std::size_t threads) {
  auto [ports, weights] = split_dist(dist);
  const std::uint64_t seed = rng.engine()();
  parallel_ranges(parallel_phase_budget(std::max<std::size_t>(1, threads)),
                  records.size(),
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      Rng r = Rng::stream(seed, i);
                      records[i].key.dst_port = ports[r.categorical(weights)];
                    }
                  });
}

RepairStats sum_stats(const std::vector<RepairStats>& parts) {
  RepairStats total;
  for (const auto& p : parts) {
    total.size_clamped += p.size_clamped;
    total.ttl_fixed += p.ttl_fixed;
    total.ports_zeroed += p.ports_zeroed;
    total.duration_fixed += p.duration_fixed;
    total.packets_fixed += p.packets_fixed;
    total.checksum_failures += p.checksum_failures;
  }
  return total;
}

}  // namespace

net::FlowTrace remap_ips(const net::FlowTrace& trace, const IpRemapConfig& cfg,
                         std::size_t threads) {
  TELEM_SPAN("postprocess.remap_ips",
             {"records", static_cast<long long>(trace.records.size())});
  net::FlowTrace out = trace;
  remap_records(out.records, cfg, threads);
  return out;
}

net::PacketTrace remap_ips(const net::PacketTrace& trace,
                           const IpRemapConfig& cfg, std::size_t threads) {
  TELEM_SPAN("postprocess.remap_ips",
             {"records", static_cast<long long>(trace.packets.size())});
  net::PacketTrace out = trace;
  remap_records(out.packets, cfg, threads);
  return out;
}

net::FlowTrace retrain_dst_ports(const net::FlowTrace& trace,
                                 const std::map<std::uint16_t, double>& dist,
                                 Rng& rng, std::size_t threads) {
  TELEM_SPAN("postprocess.retrain_ports",
             {"records", static_cast<long long>(trace.records.size())});
  net::FlowTrace out = trace;
  retrain_records(out.records, dist, rng, threads);
  return out;
}

net::PacketTrace retrain_dst_ports(const net::PacketTrace& trace,
                                   const std::map<std::uint16_t, double>& dist,
                                   Rng& rng, std::size_t threads) {
  TELEM_SPAN("postprocess.retrain_ports",
             {"records", static_cast<long long>(trace.packets.size())});
  net::PacketTrace out = trace;
  retrain_records(out.packets, dist, rng, threads);
  return out;
}

RepairStats repair_packet_headers(net::PacketTrace& trace,
                                  std::size_t threads) {
  TELEM_SPAN("postprocess.repair",
             {"records", static_cast<long long>(trace.packets.size())});
  auto& pkts = trace.packets;
  const std::size_t workers =
      parallel_phase_budget(std::max<std::size_t>(1, threads));
  std::vector<RepairStats> parts(num_ranges(workers, pkts.size()));
  parallel_ranges(workers, pkts.size(),
                  [&](std::size_t range, std::size_t lo, std::size_t hi) {
    RepairStats local;
    for (std::size_t i = lo; i < hi; ++i) {
      net::PacketRecord& p = pkts[i];
      const std::uint32_t lo_size = net::min_packet_size(p.key.protocol);
      if (p.size < lo_size || p.size > net::kMaxPacketSize) {
        p.size = std::clamp(p.size, lo_size, net::kMaxPacketSize);
        ++local.size_clamped;
      }
      if (p.ttl == 0) {
        p.ttl = 1;
        ++local.ttl_fixed;
      }
      if (p.key.protocol == net::Protocol::kIcmp &&
          (p.key.src_port != 0 || p.key.dst_port != 0)) {
        p.key.src_port = 0;
        p.key.dst_port = 0;
        ++local.ports_zeroed;
      }
      net::Ipv4Header h;
      h.total_length = static_cast<std::uint16_t>(p.size);
      h.ttl = p.ttl;
      h.protocol = p.key.protocol;
      h.src = p.key.src_ip;
      h.dst = p.key.dst_ip;
      const auto bytes = h.serialize();
      const net::Ipv4Header parsed =
          net::Ipv4Header::parse(bytes.data(), bytes.size());
      if (!parsed.checksum_valid()) ++local.checksum_failures;
    }
    parts[range] = local;
  });
  const RepairStats total = sum_stats(parts);
  TELEM_COUNT_N("postprocess.fields_repaired",
                total.size_clamped + total.ttl_fixed + total.ports_zeroed);
  return total;
}

RepairStats repair_flow_fields(net::FlowTrace& trace, std::size_t threads) {
  TELEM_SPAN("postprocess.repair",
             {"records", static_cast<long long>(trace.records.size())});
  auto& recs = trace.records;
  const std::size_t workers =
      parallel_phase_budget(std::max<std::size_t>(1, threads));
  std::vector<RepairStats> parts(num_ranges(workers, recs.size()));
  parallel_ranges(workers, recs.size(),
                  [&](std::size_t range, std::size_t lo, std::size_t hi) {
    RepairStats local;
    for (std::size_t i = lo; i < hi; ++i) {
      net::FlowRecord& r = recs[i];
      if (r.packets == 0) {
        r.packets = 1;
        ++local.packets_fixed;
      }
      const std::uint64_t min_bytes =
          r.packets * net::min_packet_size(r.key.protocol);
      if (r.bytes < min_bytes) {
        r.bytes = min_bytes;
        ++local.size_clamped;
      }
      if (r.duration < 0.0) {
        r.duration = 0.0;
        ++local.duration_fixed;
      }
      if (r.key.protocol == net::Protocol::kIcmp &&
          (r.key.src_port != 0 || r.key.dst_port != 0)) {
        r.key.src_port = 0;
        r.key.dst_port = 0;
        ++local.ports_zeroed;
      }
    }
    parts[range] = local;
  });
  const RepairStats total = sum_stats(parts);
  TELEM_COUNT_N("postprocess.fields_repaired",
                total.size_clamped + total.duration_fixed +
                    total.packets_fixed + total.ports_zeroed);
  return total;
}

}  // namespace netshare::core
