#include "core/stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

const char* to_string(StreamStage stage) {
  switch (stage) {
    case StreamStage::kPreprocess: return "preprocess";
    case StreamStage::kTrain: return "train";
    case StreamStage::kGenerate: return "generate";
    case StreamStage::kExport: return "export";
  }
  return "unknown";
}

namespace {

// The telemetry macros require literal names with static storage, so the
// per-stage gauges are materialized as a switch rather than formatted.
void set_queue_gauge(std::size_t stage, std::size_t depth) {
  switch (stage) {
    case 0: TELEM_GAUGE_SET("stream.queue.preprocess", depth); break;
    case 1: TELEM_GAUGE_SET("stream.queue.train", depth); break;
    case 2: TELEM_GAUGE_SET("stream.queue.generate", depth); break;
    case 3: TELEM_GAUGE_SET("stream.queue.export", depth); break;
    default: break;
  }
}

}  // namespace

StreamExecutor::StreamExecutor(std::size_t num_chunks,
                               std::array<Body, kNumStreamStages> bodies,
                               StreamOptions options)
    : chunks_(num_chunks), bodies_(std::move(bodies)), opts_(options) {
  opts_.workers = std::max<std::size_t>(1, opts_.workers);
  opts_.max_in_flight = std::max<std::size_t>(1, opts_.max_in_flight);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  waiting_deps_.assign(chunks_ * kNumStreamStages, 0);
  dependents_.assign(chunks_ * kNumStreamStages, {});
  admitted_.assign(chunks_, 0);
  // Implicit per-chunk chain: each stage waits on the previous one.
  for (std::size_t c = 0; c < chunks_; ++c) {
    for (std::size_t s = 1; s < kNumStreamStages; ++s) {
      const std::size_t id = task_id(static_cast<StreamStage>(s), c);
      waiting_deps_[id] = 1;
      dependents_[task_id(static_cast<StreamStage>(s - 1), c)].push_back(id);
    }
  }
}

void StreamExecutor::add_dependency(StreamStage stage, std::size_t chunk,
                                    StreamStage dep_stage,
                                    std::size_t dep_chunk) {
  if (ran_) {
    throw std::logic_error("StreamExecutor::add_dependency: already ran");
  }
  if (chunk >= chunks_ || dep_chunk >= chunks_) {
    throw std::out_of_range("StreamExecutor::add_dependency: chunk index");
  }
  const std::size_t id = task_id(stage, chunk);
  const std::size_t dep = task_id(dep_stage, dep_chunk);
  if (id == dep) {
    throw std::invalid_argument(
        "StreamExecutor::add_dependency: task depends on itself");
  }
  ++waiting_deps_[id];
  dependents_[dep].push_back(id);
}

void StreamExecutor::run() {
  if (ran_) throw std::logic_error("StreamExecutor::run: single use");
  ran_ = true;
  stats_ = StreamStats{};
  stats_.chunks = chunks_;
  stats_.workers = opts_.workers;
  if (chunks_ == 0) return;
  intervals_.assign(chunks_ * kNumStreamStages, Interval{});
  clock_.reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    admit_locked();
  }
  if (opts_.workers == 1) {
    // Inline execution: the exact serial order a batch run would use, and —
    // since the caller is not a pool worker — kernels keep their configured
    // parallelism, mirroring the batch seed phase.
    worker_loop();
  } else {
    ThreadPool pool(opts_.workers);
    std::vector<std::future<void>> joins;
    joins.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w) {
      joins.push_back(pool.submit([this] { worker_loop(); }));
    }
    for (auto& f : joins) f.get();
  }
  stats_.wall_sec = clock_.seconds();
  finalize_stats();
  if (first_error_) std::rethrow_exception(first_error_);
}

void StreamExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled_ || completed_chunks_ == chunks_) return;
    const auto picked = pick_locked();
    if (!picked) {
      if (running_ == 0) {
        // Nothing ready, nothing running, chunks unfinished: the dependency
        // graph cannot make progress (a cycle, or an edge onto a chunk the
        // admission bound will never release). Fail loudly, don't hang.
        cancelled_ = true;
        if (!first_error_) {
          first_error_ = std::make_exception_ptr(std::logic_error(
              "StreamExecutor: dependency graph stalled (cycle or "
              "dependency on an unadmitted chunk)"));
        }
        cv_.notify_all();
        return;
      }
      cv_.wait(lock);
      continue;
    }
    ++running_;
    lock.unlock();
    execute(picked->first, picked->second);
    lock.lock();
    --running_;
    if (!cancelled_) complete_locked(picked->first, picked->second);
    cv_.notify_all();
  }
}

void StreamExecutor::run_body(StreamStage stage, std::size_t chunk) {
  const Body& body = bodies_[static_cast<std::size_t>(stage)];
  if (!body) return;
  const auto arg = static_cast<long long>(chunk);
  switch (stage) {
    case StreamStage::kPreprocess: {
      TELEM_SPAN("stream.preprocess", {"chunk", arg});
      body(chunk);
      break;
    }
    case StreamStage::kTrain: {
      TELEM_SPAN("stream.train", {"chunk", arg});
      body(chunk);
      break;
    }
    case StreamStage::kGenerate: {
      TELEM_SPAN("stream.generate", {"chunk", arg});
      body(chunk);
      break;
    }
    case StreamStage::kExport: {
      TELEM_SPAN("stream.export", {"chunk", arg});
      body(chunk);
      break;
    }
  }
}

void StreamExecutor::execute(StreamStage stage, std::size_t chunk) {
  Interval& iv = intervals_[task_id(stage, chunk)];
  iv.begin = clock_.seconds();
  try {
    run_body(stage, chunk);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    cancelled_ = true;
    for (auto& q : ready_) q.clear();
    for (auto& q : parked_) q.clear();
  }
  iv.end = clock_.seconds();
  iv.ran = true;
}

std::optional<std::pair<StreamStage, std::size_t>>
StreamExecutor::pick_locked() {
  // Deepest stage first: finishing in-flight chunks beats admitting work,
  // which keeps the in-flight set draining and the output streaming out.
  for (std::size_t s = kNumStreamStages; s-- > 0;) {
    if (ready_[s].empty()) continue;
    const std::size_t c = ready_[s].front();
    ready_[s].pop_front();
    if (!parked_[s].empty()) {
      // The consumer made room: move one parked handoff into the queue.
      ready_[s].push_back(parked_[s].front());
      parked_[s].pop_front();
    }
    set_queue_gauge(s, ready_[s].size());
    return std::make_pair(static_cast<StreamStage>(s), c);
  }
  return std::nullopt;
}

void StreamExecutor::offer_locked(std::size_t id) {
  const std::size_t s = id / chunks_;
  const std::size_t c = id % chunks_;
  // An entry task whose extra dependencies resolved before its chunk was
  // admitted stays pending — admit_locked enqueues it — so the in-flight
  // bound holds even with explicit edges onto stage 0.
  if (s == 0 && !admitted_[c]) return;
  if (s == 0 || ready_[s].size() < opts_.queue_capacity) {
    ready_[s].push_back(c);
    set_queue_gauge(s, ready_[s].size());
  } else {
    // Bounded handoff queue is full: park instead of blocking the producer
    // (a blocking wait here could deadlock the last worker).
    parked_[s].push_back(c);
    ++stats_.backpressure_parks;
    TELEM_COUNT("stream.backpressure_parks");
  }
}

void StreamExecutor::complete_locked(StreamStage stage, std::size_t chunk) {
  for (const std::size_t dep_id : dependents_[task_id(stage, chunk)]) {
    if (--waiting_deps_[dep_id] == 0) offer_locked(dep_id);
  }
  if (stage == StreamStage::kExport) {
    ++completed_chunks_;
    --in_flight_;
    TELEM_GAUGE_SET("stream.chunks_in_flight", in_flight_);
    admit_locked();
  }
}

void StreamExecutor::admit_locked() {
  // Chunks enter in ascending order. The seed chunk is the first non-empty
  // one, so everything admitted before it is a no-op chain that cannot block
  // on training — admission order alone keeps the graph deadlock-free at
  // any max_in_flight >= 1.
  while (next_admit_ < chunks_ && in_flight_ < opts_.max_in_flight) {
    const std::size_t c = next_admit_++;
    admitted_[c] = 1;
    ++in_flight_;
    stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
    TELEM_GAUGE_SET("stream.chunks_in_flight", in_flight_);
    if (waiting_deps_[task_id(StreamStage::kPreprocess, c)] == 0) {
      ready_[0].push_back(c);
      set_queue_gauge(0, ready_[0].size());
    }
  }
}

void StreamExecutor::finalize_stats() {
  std::vector<std::pair<double, int>> events;
  events.reserve(intervals_.size() * 2);
  for (std::size_t id = 0; id < intervals_.size(); ++id) {
    const Interval& iv = intervals_[id];
    if (!iv.ran) continue;
    stats_.stage_busy_sec[id / chunks_] += iv.end - iv.begin;
    events.emplace_back(iv.begin, +1);
    events.emplace_back(iv.end, -1);
  }
  // Ends sort before begins at equal timestamps, so zero-length touching
  // intervals do not count as overlap.
  std::sort(events.begin(), events.end());
  int active = 0;
  double prev = 0.0;
  for (const auto& [t, delta] : events) {
    if (active >= 2) stats_.overlap_sec += t - prev;
    active += delta;
    prev = t;
  }
  stats_.overlap_frac =
      stats_.wall_sec > 0.0 ? stats_.overlap_sec / stats_.wall_sec : 0.0;
}

}  // namespace netshare::core
