#include "core/netshare.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"
#include "datagen/presets.hpp"
#include "net/ports.hpp"

namespace netshare::core {

std::shared_ptr<embed::Ip2Vec> make_public_ip2vec(std::uint64_t seed,
                                                  std::size_t records,
                                                  std::size_t dim) {
  const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub,
                                         records, seed);
  auto sentences = embed::sentences_from_packets(pub.packets);
  // The paper's Insight 2 relies on the public trace covering "almost every
  // possible port number and protocol". Guarantee coverage of the well-known
  // (port, protocol) pairs and ICMP regardless of the sampled trace.
  for (const auto& [port, proto] : net::common_port_protocol_pairs()) {
    sentences.push_back(
        {{embed::TokenKind::kPort, port},
         {embed::TokenKind::kProtocol, static_cast<std::uint32_t>(proto)}});
  }
  sentences.push_back(
      {{embed::TokenKind::kProtocol,
        static_cast<std::uint32_t>(net::Protocol::kIcmp)}});
  auto model = std::make_shared<embed::Ip2Vec>();
  embed::Ip2Vec::Config cfg;
  cfg.dim = dim;
  cfg.epochs = 3;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  model->train(sentences, cfg, rng);
  return model;
}

NetShare::NetShare(NetShareConfig config, std::shared_ptr<embed::Ip2Vec> ip2vec)
    : config_(std::move(config)), ip2vec_(std::move(ip2vec)) {
  if (config_.use_ip2vec_ports && !ip2vec_) {
    throw std::invalid_argument(
        "NetShare: use_ip2vec_ports requires an IP2Vec model "
        "(see make_public_ip2vec)");
  }
}

void NetShare::fit(const net::FlowTrace& trace) {
  flow_encoder_.emplace(config_, ip2vec_.get());
  flow_encoder_->fit(trace);
  trainer_ = std::make_unique<ChunkedTrainer>(flow_encoder_->spec(), config_);
  trainer_->fit(flow_encoder_->encode(trace));
}

void NetShare::fit(const std::vector<net::FlowTrace>& epochs) {
  fit(net::FlowTrace::merge(epochs));
}

void NetShare::fit(const net::PacketTrace& trace) {
  packet_encoder_.emplace(config_, ip2vec_.get());
  packet_encoder_->fit(trace);
  trainer_ = std::make_unique<ChunkedTrainer>(packet_encoder_->spec(), config_);
  trainer_->fit(packet_encoder_->encode(trace));
}

void NetShare::fit(const std::vector<net::PacketTrace>& epochs) {
  fit(net::PacketTrace::merge(epochs));
}

namespace {

// Per-chunk record targets proportional to the real chunk sizes.
std::vector<std::size_t> record_targets(const std::vector<ChunkInfo>& chunks,
                                        std::size_t n) {
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.real_records;
  std::vector<std::size_t> targets(chunks.size(), 0);
  if (total == 0) return targets;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    targets[c] = (n * chunks[c].real_records + total / 2) / total;
  }
  return targets;
}

// Expected records per sampled flow in a chunk (>= 1).
double records_per_flow(const ChunkInfo& c) {
  if (c.real_flows == 0) return 1.0;
  return std::max(1.0, static_cast<double>(c.real_records) /
                           static_cast<double>(c.real_flows));
}

// Number of flows to request in one deficit-loop round. The first round
// sizes by the real records-per-flow ratio; later rounds request one flow
// per missing record (each sample yields >= 1 record), guaranteeing
// completion.
std::size_t round_flows(std::size_t deficit, double rpf, bool first) {
  return first ? std::max<std::size_t>(
                     8, static_cast<std::size_t>(
                            static_cast<double>(deficit) / rpf) + 1)
               : std::max<std::size_t>(8, deficit);
}

// Fills each target chunk's sub-trace in parallel across chunk workers,
// splitting the thread budget like ChunkedTrainer::fit. A chunk's sub-trace
// is a pure function of (chunk index, targets[c], seed) — the sampler draws
// from counter-based per-(chunk, series) streams and the decoder is const —
// so any worker count produces bitwise-identical traces; serial generation
// is just workers == 1.
template <typename TraceT, typename RecordsOf, typename DecodeFn>
TraceT generate_trace(const std::vector<ChunkInfo>& chunks,
                      const std::vector<std::size_t>& targets, std::size_t n,
                      std::uint64_t seed, const NetShareConfig& config,
                      ChunkedTrainer& trainer, const RecordsOf& records_of,
                      const DecodeFn& decode) {
  std::vector<std::size_t> active;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (targets[c] > 0 && trainer.has_model(c)) active.push_back(c);
  }
  std::vector<TraceT> parts(chunks.size());
  const std::size_t budget =
      parallel_phase_budget(std::max<std::size_t>(1, config.threads));
  const PhaseBudget split =
      split_phase_budget(budget, active.size(), config.kernels);
  ml::kernels::ConfigOverride guard(split.kernel_cfg);
  run_parallel_tasks(split.workers, active.size(), [&](std::size_t ai) {
    const std::size_t c = active[ai];
    TraceT chunk_out;
    const double rpf = std::min(records_per_flow(chunks[c]),
                                static_cast<double>(config.max_seq_len));
    bool first = true;
    std::size_t series_at = 0;  // keeps stream indices unique across rounds
    gan::GeneratedSeries series;
    while (chunk_out.size() < targets[c]) {
      const std::size_t flows =
          round_flows(targets[c] - chunk_out.size(), rpf, first);
      first = false;
      trainer.sample_chunk_into(c, flows, seed, series_at, series);
      series_at += flows;
      const TraceT decoded = decode(series, c);
      records_of(chunk_out).insert(records_of(chunk_out).end(),
                                   records_of(decoded).begin(),
                                   records_of(decoded).end());
    }
    chunk_out.sort_by_time();
    if (chunk_out.size() > targets[c]) records_of(chunk_out).resize(targets[c]);
    parts[c] = std::move(chunk_out);
  });
  TraceT out;
  records_of(out).reserve(n + 64);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    records_of(out).insert(records_of(out).end(), records_of(parts[c]).begin(),
                           records_of(parts[c]).end());
  }
  out.sort_by_time();
  if (out.size() > n) records_of(out).resize(n);
  return out;
}

}  // namespace

net::FlowTrace NetShare::generate_flows(std::size_t n, Rng& rng) {
  if (!flow_encoder_ || !trainer_) {
    throw std::logic_error("NetShare::generate_flows: fit a flow trace first");
  }
  const auto& chunks = flow_encoder_->chunks();
  return generate_trace<net::FlowTrace>(
      chunks, record_targets(chunks, n), n, rng.engine()(), config_, *trainer_,
      [](auto& trace) -> auto& { return trace.records; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return flow_encoder_->decode(series, c);
      });
}

net::PacketTrace NetShare::generate_packets(std::size_t n, Rng& rng) {
  if (!packet_encoder_ || !trainer_) {
    throw std::logic_error(
        "NetShare::generate_packets: fit a packet trace first");
  }
  const auto& chunks = packet_encoder_->chunks();
  return generate_trace<net::PacketTrace>(
      chunks, record_targets(chunks, n), n, rng.engine()(), config_, *trainer_,
      [](auto& trace) -> auto& { return trace.packets; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return packet_encoder_->decode(series, c);
      });
}

double NetShare::train_cpu_seconds() const {
  return trainer_ ? trainer_->train_cpu_seconds() : 0.0;
}

const TrainReport& NetShare::train_report() const {
  if (!trainer_) {
    throw std::logic_error("NetShare::train_report: fit a trace first");
  }
  return trainer_->report();
}

std::vector<double> NetShare::snapshot() {
  if (!trainer_) throw std::logic_error("NetShare::snapshot: not trained");
  return trainer_->seed_snapshot();
}

std::size_t NetShare::dp_steps() const {
  return trainer_ ? trainer_->total_dp_steps() : 0;
}

}  // namespace netshare::core
