#include "core/netshare.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "core/parallel.hpp"
#include "datagen/presets.hpp"
#include "net/ports.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

std::shared_ptr<embed::Ip2Vec> make_public_ip2vec(std::uint64_t seed,
                                                  std::size_t records,
                                                  std::size_t dim,
                                                  embed::VocabConfig vocab,
                                                  std::size_t workers) {
  const auto pub = datagen::make_dataset(datagen::DatasetId::kCaidaPub,
                                         records, seed);
  auto sentences = embed::sentences_from_packets(pub.packets);
  // The paper's Insight 2 relies on the public trace covering "almost every
  // possible port number and protocol". Guarantee coverage of the well-known
  // (port, protocol) pairs and ICMP regardless of the sampled trace.
  for (const auto& [port, proto] : net::common_port_protocol_pairs()) {
    sentences.push_back(
        {{embed::TokenKind::kPort, port},
         {embed::TokenKind::kProtocol, static_cast<std::uint32_t>(proto)}});
  }
  sentences.push_back(
      {{embed::TokenKind::kProtocol,
        static_cast<std::uint32_t>(net::Protocol::kIcmp)}});
  auto model = std::make_shared<embed::Ip2Vec>();
  embed::Ip2Vec::Config cfg;
  cfg.dim = dim;
  cfg.epochs = 3;
  cfg.vocab = vocab;
  cfg.workers = workers;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  model->train(sentences, cfg, rng);
  return model;
}

std::shared_ptr<embed::Ip2Vec> make_public_ip2vec_for(
    const NetShareConfig& config, std::uint64_t seed, std::size_t records) {
  embed::VocabConfig vocab;
  vocab.max_ip_slots = config.ip2vec_max_ip_slots;
  vocab.ip_tail_buckets = config.ip2vec_tail_buckets;
  return make_public_ip2vec(seed, records, config.ip2vec_dim, vocab,
                            config.ip2vec_workers);
}

NetShare::NetShare(NetShareConfig config, std::shared_ptr<embed::Ip2Vec> ip2vec)
    : config_(std::move(config)), ip2vec_(std::move(ip2vec)) {
  if (config_.use_ip2vec_ports && !ip2vec_) {
    throw std::invalid_argument(
        "NetShare: use_ip2vec_ports requires an IP2Vec model "
        "(see make_public_ip2vec)");
  }
}

void NetShare::fit(const net::FlowTrace& trace) {
  flow_encoder_.emplace(config_, ip2vec_.get());
  flow_encoder_->fit(trace);
  trainer_ = std::make_unique<ChunkedTrainer>(flow_encoder_->spec(), config_);
  trainer_->fit(flow_encoder_->encode(trace));
}

void NetShare::fit(const std::vector<net::FlowTrace>& epochs) {
  fit(net::FlowTrace::merge(epochs));
}

void NetShare::fit(const net::PacketTrace& trace) {
  packet_encoder_.emplace(config_, ip2vec_.get());
  packet_encoder_->fit(trace);
  trainer_ = std::make_unique<ChunkedTrainer>(packet_encoder_->spec(), config_);
  trainer_->fit(packet_encoder_->encode(trace));
}

void NetShare::fit(const std::vector<net::PacketTrace>& epochs) {
  fit(net::PacketTrace::merge(epochs));
}

namespace {

// Per-chunk record targets proportional to the real chunk sizes.
std::vector<std::size_t> record_targets(const std::vector<ChunkInfo>& chunks,
                                        std::size_t n) {
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.real_records;
  std::vector<std::size_t> targets(chunks.size(), 0);
  if (total == 0) return targets;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    targets[c] = (n * chunks[c].real_records + total / 2) / total;
  }
  return targets;
}

// Expected records per sampled flow in a chunk (>= 1).
double records_per_flow(const ChunkInfo& c) {
  if (c.real_flows == 0) return 1.0;
  return std::max(1.0, static_cast<double>(c.real_records) /
                           static_cast<double>(c.real_flows));
}

// Number of flows to request in one deficit-loop round. The first round
// sizes by the real records-per-flow ratio; later rounds request one flow
// per missing record (each sample yields >= 1 record), guaranteeing
// completion.
std::size_t round_flows(std::size_t deficit, double rpf, bool first) {
  return first ? std::max<std::size_t>(
                     8, static_cast<std::size_t>(
                            static_cast<double>(deficit) / rpf) + 1)
               : std::max<std::size_t>(8, deficit);
}

// Deficit-loop sampling + decode for one chunk. The result is a pure
// function of (chunk index, target, seed) — the sampler draws from
// counter-based per-(chunk, series) streams and the decoder is const — so
// batch and streaming schedules produce bitwise-identical sub-traces.
template <typename TraceT, typename RecordsOf, typename DecodeFn>
void sample_chunk_part(const std::vector<ChunkInfo>& chunks, std::size_t c,
                       std::size_t target, std::uint64_t seed,
                       const NetShareConfig& config, ChunkedTrainer& trainer,
                       const RecordsOf& records_of, const DecodeFn& decode,
                       TraceT& out) {
  Stopwatch sw;
  TELEM_SPAN("generate.chunk", {"chunk", static_cast<long long>(c)});
  out = TraceT{};
  const double rpf = std::min(records_per_flow(chunks[c]),
                              static_cast<double>(config.max_seq_len));
  bool first = true;
  std::size_t series_at = 0;  // keeps stream indices unique across rounds
  gan::GeneratedSeries series;
  while (out.size() < target) {
    const std::size_t flows = round_flows(target - out.size(), rpf, first);
    first = false;
    trainer.sample_chunk_into(c, flows, seed, series_at, series);
    series_at += flows;
    const TraceT decoded = decode(series, c);
    records_of(out).insert(records_of(out).end(), records_of(decoded).begin(),
                           records_of(decoded).end());
  }
  trainer.note_generate_seconds(c, sw.seconds());
}

// Export step for one chunk: order its sub-trace and trim the deficit-loop
// overshoot down to the target.
template <typename TraceT, typename RecordsOf>
void export_chunk_part(std::size_t target, const RecordsOf& records_of,
                       TraceT& part) {
  part.sort_by_time();
  if (part.size() > target) records_of(part).resize(target);
}

// Final merge: concatenate the per-chunk sub-traces in chunk order, order
// globally, trim to n.
template <typename TraceT, typename RecordsOf>
TraceT merge_chunk_parts(std::vector<TraceT>& parts, std::size_t n,
                         const RecordsOf& records_of) {
  TraceT out;
  records_of(out).reserve(n + 64);
  for (auto& part : parts) {
    records_of(out).insert(records_of(out).end(), records_of(part).begin(),
                           records_of(part).end());
  }
  out.sort_by_time();
  if (out.size() > n) records_of(out).resize(n);
  return out;
}

// Fills each target chunk's sub-trace in parallel across chunk workers,
// splitting the thread budget like ChunkedTrainer::fit. Any worker count
// produces bitwise-identical traces (see sample_chunk_part); serial
// generation is just workers == 1.
template <typename TraceT, typename RecordsOf, typename DecodeFn>
TraceT generate_trace(const std::vector<ChunkInfo>& chunks,
                      const std::vector<std::size_t>& targets, std::size_t n,
                      std::uint64_t seed, const NetShareConfig& config,
                      ChunkedTrainer& trainer, const RecordsOf& records_of,
                      const DecodeFn& decode) {
  std::vector<std::size_t> active;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (targets[c] > 0 && trainer.has_model(c)) active.push_back(c);
  }
  std::vector<TraceT> parts(chunks.size());
  const std::size_t budget =
      parallel_phase_budget(std::max<std::size_t>(1, config.threads));
  const PhaseBudget split =
      split_phase_budget(budget, active.size(), config.kernels);
  ml::kernels::ConfigOverride guard(split.kernel_cfg);
  run_parallel_tasks(split.workers, active.size(), [&](std::size_t ai) {
    const std::size_t c = active[ai];
    sample_chunk_part(chunks, c, targets[c], seed, config, trainer, records_of,
                      decode, parts[c]);
    export_chunk_part(targets[c], records_of, parts[c]);
  });
  return merge_chunk_parts(parts, n, records_of);
}

// Streaming end-to-end driver (DESIGN.md §11): encoder fit + split plan up
// front (both need the whole trace), then every chunk flows
// preprocess -> train -> generate -> export through the stage graph. The
// only cross-chunk edge is train(c) -> train(seed chunk): fine-tunes
// warm-start from the seed snapshot. Each stage body computes exactly what
// the batch path computes for that chunk — shared code paths, pure
// per-chunk functions — so the merged output is bitwise identical to
// fit() + generate_*() at any worker count.
template <typename TraceT, typename EncoderT, typename RecordsOf,
          typename DecodeFn>
TraceT stream_generate(EncoderT& encoder, const TraceT& giant, std::size_t n,
                       std::uint64_t seed, const NetShareConfig& config,
                       std::unique_ptr<ChunkedTrainer>& trainer,
                       const RecordsOf& records_of, const DecodeFn& decode,
                       StreamStats* stats_out) {
  encoder.fit(giant);
  const auto plan = encoder.plan(giant);
  trainer = std::make_unique<ChunkedTrainer>(encoder.spec(), config);
  const auto& chunks = encoder.chunks();
  const std::size_t M = chunks.size();
  const std::vector<std::size_t> targets = record_targets(chunks, n);
  std::vector<std::size_t> samples(M);
  for (std::size_t c = 0; c < M; ++c) samples[c] = plan.chunk_samples(c);
  trainer->begin_fit(samples);
  const std::size_t seed_chunk = trainer->seed_chunk();

  std::vector<gan::TimeSeriesDataset> datasets(M);
  std::vector<TraceT> parts(M);

  StreamOptions opts;
  opts.workers = std::max<std::size_t>(
      1, config.stream_workers != 0 ? config.stream_workers : config.threads);
  opts.max_in_flight = config.stream_max_in_flight;
  opts.queue_capacity = config.stream_queue_capacity;

  // One kernel budget for the whole run: stage tasks on pool workers
  // dispatch kernels serially anyway (nested-parallelism clamp), so the
  // split only matters for the inline workers==1 path, which gets the whole
  // budget like the batch seed phase. Kernel thread count never changes
  // results.
  const std::size_t budget = std::max<std::size_t>(1, config.threads);
  ml::kernels::KernelConfig kernel_cfg = config.kernels;
  if (kernel_cfg.threads == 0) {
    kernel_cfg.threads =
        opts.workers <= 1 ? budget
                          : std::max<std::size_t>(1, budget / opts.workers);
  }
  ml::kernels::ConfigOverride kernel_budget(kernel_cfg);

  std::array<StreamExecutor::Body, kNumStreamStages> bodies;
  bodies[static_cast<std::size_t>(StreamStage::kPreprocess)] =
      [&](std::size_t c) {
        if (samples[c] == 0) return;  // empty chunk: no model, no records
        datasets[c] = encoder.encode_chunk(plan, c);
      };
  bodies[static_cast<std::size_t>(StreamStage::kTrain)] = [&](std::size_t c) {
    if (samples[c] == 0) return;
    if (c == seed_chunk) {
      trainer->train_seed(datasets[c]);
    } else {
      trainer->train_finetune(c, datasets[c]);
    }
    // Release the encoded chunk: peak dataset memory is bounded by
    // chunks-in-flight, not by the trace.
    datasets[c] = gan::TimeSeriesDataset{};
  };
  bodies[static_cast<std::size_t>(StreamStage::kGenerate)] =
      [&](std::size_t c) {
        if (targets[c] == 0 || !trainer->has_model(c)) return;
        sample_chunk_part(chunks, c, targets[c], seed, config, *trainer,
                          records_of, decode, parts[c]);
      };
  bodies[static_cast<std::size_t>(StreamStage::kExport)] = [&](std::size_t c) {
    export_chunk_part(targets[c], records_of, parts[c]);
  };

  StreamExecutor exec(M, std::move(bodies), opts);
  for (std::size_t c = 0; c < M; ++c) {
    // The seed chunk is the FIRST non-empty chunk, so chunks admitted before
    // it are no-op chains — this edge never points at an unadmitted chunk
    // and the graph is deadlock-free at any max_in_flight >= 1.
    if (c == seed_chunk || samples[c] == 0) continue;
    exec.add_dependency(StreamStage::kTrain, c, StreamStage::kTrain,
                        seed_chunk);
  }
  exec.run();
  if (stats_out) *stats_out = exec.stats();
  return merge_chunk_parts(parts, n, records_of);
}

}  // namespace

std::vector<std::size_t> chunk_record_targets(
    const std::vector<ChunkInfo>& chunks, std::size_t n) {
  return record_targets(chunks, n);
}

void sample_flow_chunk_part(const std::vector<ChunkInfo>& chunks,
                            std::size_t c, std::size_t target,
                            std::uint64_t seed, const NetShareConfig& config,
                            ChunkedTrainer& trainer,
                            const FlowEncoder& encoder, net::FlowTrace& out) {
  sample_chunk_part(chunks, c, target, seed, config, trainer,
                    [](auto& trace) -> auto& { return trace.records; },
                    [&](const gan::GeneratedSeries& series, std::size_t cc) {
                      return encoder.decode(series, cc);
                    },
                    out);
}

void export_flow_chunk_part(std::size_t target, net::FlowTrace& part) {
  export_chunk_part(target, [](auto& trace) -> auto& { return trace.records; },
                    part);
}

net::FlowTrace merge_flow_chunk_parts(std::vector<net::FlowTrace>& parts,
                                      std::size_t n) {
  return merge_chunk_parts(parts, n,
                           [](auto& trace) -> auto& { return trace.records; });
}

net::FlowTrace NetShare::generate_flows(std::size_t n, Rng& rng) {
  if (!flow_encoder_ || !trainer_) {
    throw std::logic_error("NetShare::generate_flows: fit a flow trace first");
  }
  const auto& chunks = flow_encoder_->chunks();
  return generate_trace<net::FlowTrace>(
      chunks, record_targets(chunks, n), n, rng.engine()(), config_, *trainer_,
      [](auto& trace) -> auto& { return trace.records; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return flow_encoder_->decode(series, c);
      });
}

net::PacketTrace NetShare::generate_packets(std::size_t n, Rng& rng) {
  if (!packet_encoder_ || !trainer_) {
    throw std::logic_error(
        "NetShare::generate_packets: fit a packet trace first");
  }
  const auto& chunks = packet_encoder_->chunks();
  return generate_trace<net::PacketTrace>(
      chunks, record_targets(chunks, n), n, rng.engine()(), config_, *trainer_,
      [](auto& trace) -> auto& { return trace.packets; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return packet_encoder_->decode(series, c);
      });
}

net::FlowTrace NetShare::fit_generate_flows(const net::FlowTrace& trace,
                                            std::size_t n, Rng& rng,
                                            StreamStats* stats) {
  if (stats) *stats = StreamStats{};
  if (!config_.streaming) {
    fit(trace);
    return generate_flows(n, rng);
  }
  flow_encoder_.emplace(config_, ip2vec_.get());
  packet_encoder_.reset();
  return stream_generate<net::FlowTrace>(
      *flow_encoder_, trace, n, rng.engine()(), config_, trainer_,
      [](auto& t) -> auto& { return t.records; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return flow_encoder_->decode(series, c);
      },
      stats);
}

net::PacketTrace NetShare::fit_generate_packets(const net::PacketTrace& trace,
                                                std::size_t n, Rng& rng,
                                                StreamStats* stats) {
  if (stats) *stats = StreamStats{};
  if (!config_.streaming) {
    fit(trace);
    return generate_packets(n, rng);
  }
  packet_encoder_.emplace(config_, ip2vec_.get());
  flow_encoder_.reset();
  return stream_generate<net::PacketTrace>(
      *packet_encoder_, trace, n, rng.engine()(), config_, trainer_,
      [](auto& t) -> auto& { return t.packets; },
      [&](const gan::GeneratedSeries& series, std::size_t c) {
        return packet_encoder_->decode(series, c);
      },
      stats);
}

double NetShare::train_cpu_seconds() const {
  return trainer_ ? trainer_->train_cpu_seconds() : 0.0;
}

const TrainReport& NetShare::train_report() const {
  if (!trainer_) {
    throw std::logic_error("NetShare::train_report: fit a trace first");
  }
  return trainer_->report();
}

std::vector<double> NetShare::snapshot() {
  if (!trainer_) throw std::logic_error("NetShare::snapshot: not trained");
  return trainer_->seed_snapshot();
}

std::size_t NetShare::dp_steps() const {
  return trainer_ ? trainer_->total_dp_steps() : 0;
}

}  // namespace netshare::core
