// Post-generation utilities (Sec. 5): the two optional domain-specific
// privacy extensions NetShare implements on generated traces —
// (1) IP transformation into a user-specified (default: private) range,
// (2) attribute retraining: resampling chosen attributes to a user-desired
//     distribution —
// plus derived-field repair: clamping generated header fields into valid
// ranges and verifying IPv4 checksum round-trips before traces are
// materialized through net::write_pcap.
//
// Every function here is deterministic and thread-invariant: passing any
// `threads` value (including from different machines) produces bitwise
// identical traces. Parallel passes only touch per-record state; the one
// order-sensitive step (first-seen IP enumeration) runs serially.
#pragma once

#include <cstddef>
#include <map>

#include "common/rng.hpp"
#include "net/trace.hpp"

namespace netshare::core {

// Deterministically remaps every distinct IP into `base/prefix_len`,
// preserving distinctness (up to the subnet size) and popularity structure.
struct IpRemapConfig {
  net::Ipv4Address src_base{10, 0, 0, 0};
  int src_prefix_len = 16;
  net::Ipv4Address dst_base{192, 168, 0, 0};
  int dst_prefix_len = 16;
};

net::FlowTrace remap_ips(const net::FlowTrace& trace, const IpRemapConfig& cfg,
                         std::size_t threads = 1);
net::PacketTrace remap_ips(const net::PacketTrace& trace,
                           const IpRemapConfig& cfg, std::size_t threads = 1);

// Resamples destination ports to a user-specified distribution
// (port -> weight), leaving all other fields intact. Record i draws from the
// counter-based stream (seed, i) where seed comes from `rng`, so the result
// depends only on the Rng state at entry — not on `threads`.
net::FlowTrace retrain_dst_ports(const net::FlowTrace& trace,
                                 const std::map<std::uint16_t, double>& dist,
                                 Rng& rng, std::size_t threads = 1);
net::PacketTrace retrain_dst_ports(const net::PacketTrace& trace,
                                   const std::map<std::uint16_t, double>& dist,
                                   Rng& rng, std::size_t threads = 1);

// Counts of fields touched by the repair passes below.
struct RepairStats {
  std::size_t size_clamped = 0;    // packet size / flow bytes out of range
  std::size_t ttl_fixed = 0;       // TTL 0 raised to 1 (packets only)
  std::size_t ports_zeroed = 0;    // nonzero ports on ICMP records
  std::size_t duration_fixed = 0;  // negative flow durations (flows only)
  std::size_t packets_fixed = 0;   // zero flow packet counts (flows only)
  std::size_t checksum_failures = 0;  // serialized headers failing round-trip

  std::size_t total_repairs() const {
    return size_clamped + ttl_fixed + ports_zeroed + duration_fixed +
           packets_fixed;
  }
};

// In-place packet-header repair (validity Tests 1/2/4, App. B): clamps the
// IP length into [min_packet_size(proto), kMaxPacketSize], raises TTL 0 to
// 1, zeroes ports on ICMP packets, then materializes each record's
// Ipv4Header and verifies serialize -> parse -> checksum_valid round-trips
// (failures are counted, never silently dropped).
RepairStats repair_packet_headers(net::PacketTrace& trace,
                                  std::size_t threads = 1);

// In-place flow-field repair: packets >= 1, bytes >= packets *
// min_packet_size(proto), duration >= 0, ICMP ports zeroed.
RepairStats repair_flow_fields(net::FlowTrace& trace, std::size_t threads = 1);

}  // namespace netshare::core
