// Post-generation utilities (Sec. 5): the two optional domain-specific
// privacy extensions NetShare implements on generated traces —
// (1) IP transformation into a user-specified (default: private) range,
// (2) attribute retraining: resampling chosen attributes to a user-desired
//     distribution.
// Derived-field generation (valid IPv4 checksums) happens when traces are
// materialized through net::write_pcap.
#pragma once

#include <map>

#include "common/rng.hpp"
#include "net/trace.hpp"

namespace netshare::core {

// Deterministically remaps every distinct IP into `base/prefix_len`,
// preserving distinctness (up to the subnet size) and popularity structure.
struct IpRemapConfig {
  net::Ipv4Address src_base{10, 0, 0, 0};
  int src_prefix_len = 16;
  net::Ipv4Address dst_base{192, 168, 0, 0};
  int dst_prefix_len = 16;
};

net::FlowTrace remap_ips(const net::FlowTrace& trace, const IpRemapConfig& cfg);
net::PacketTrace remap_ips(const net::PacketTrace& trace,
                           const IpRemapConfig& cfg);

// Resamples destination ports to a user-specified distribution
// (port -> weight), leaving all other fields intact.
net::FlowTrace retrain_dst_ports(const net::FlowTrace& trace,
                                 const std::map<std::uint16_t, double>& dist,
                                 Rng& rng);
net::PacketTrace retrain_dst_ports(const net::PacketTrace& trace,
                                   const std::map<std::uint16_t, double>& dist,
                                   Rng& rng);

}  // namespace netshare::core
