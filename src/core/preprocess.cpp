#include "core/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "embed/bit_encoding.hpp"
#include "net/ports.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

using embed::Ip2Vec;
using embed::Token;
using embed::TokenKind;
using gan::TimeSeriesDataset;
using gan::TimeSeriesSpec;
using ml::OutputSegment;

namespace {

constexpr double kEps = 1e-9;

std::size_t chunk_of(double t, const std::vector<ChunkInfo>& chunks) {
  if (chunks.empty()) return 0;
  const double start = chunks.front().start_time;
  const double dur = chunks.front().duration;
  const auto idx = static_cast<std::ptrdiff_t>(std::floor((t - start) / dur));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0,
                                 static_cast<std::ptrdiff_t>(chunks.size()) - 1));
}

double offset_in_chunk(double t, const ChunkInfo& c) {
  return std::clamp((t - c.start_time) / std::max(c.duration, kEps), 0.0, 1.0);
}

// Shared splitting pass for both encoders: group the sorted trace by flow,
// then slice each flow's record indices into chunks (series truncated to T)
// with the starts-here / presence tag bits.
template <typename TraceT, typename TimeOf>
std::vector<std::vector<ChunkSample>> split_by_chunk(
    const TraceT& sorted, const std::vector<ChunkInfo>& chunks, std::size_t T,
    const TimeOf& time_of) {
  const std::size_t M = chunks.size();
  std::vector<std::vector<ChunkSample>> per_chunk(M);
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    std::vector<std::vector<std::size_t>> split(M);
    std::vector<bool> presence(M, false);
    for (std::size_t k : idx) {
      const std::size_t c = chunk_of(time_of(k), chunks);
      split[c].push_back(k);
      presence[c] = true;
    }
    const std::size_t home = chunk_of(time_of(idx.front()), chunks);
    for (std::size_t c = 0; c < M; ++c) {
      if (split[c].empty()) continue;
      if (split[c].size() > T) split[c].resize(T);  // truncate long series
      per_chunk[c].push_back({key, std::move(split[c]), c == home, presence});
    }
  }
  return per_chunk;
}

}  // namespace

std::vector<ChunkInfo> make_chunk_grid(double start, double end,
                                       std::size_t num_chunks) {
  num_chunks = std::max<std::size_t>(1, num_chunks);
  const double dur = std::max((end - start) / static_cast<double>(num_chunks),
                              kEps);
  std::vector<ChunkInfo> chunks(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    chunks[c].start_time = start + dur * static_cast<double>(c);
    chunks[c].duration = dur;
  }
  return chunks;
}

// ---------------------------------------------------------------------------
// TupleCodec

TupleCodec::TupleCodec(const NetShareConfig& config, const Ip2Vec* ip2vec)
    : config_(&config),
      ip2vec_(ip2vec),
      num_chunks_(config.netshare_v0 ? 1 : config.num_chunks),
      use_ip2vec_(config.use_ip2vec_ports && ip2vec != nullptr) {
  if (use_ip2vec_) {
    // Collect the public port vocabulary (sorted, for OOV nearest lookup) and
    // normalize embedding coordinates into [0,1] using the public vocabulary
    // range. Both depend only on public data -> DP-safe.
    emb_lo_ = 1e30;
    emb_hi_ = -1e30;
    for (std::uint32_t p = 0; p < 65536; ++p) {
      const Token t{TokenKind::kPort, p};
      if (!ip2vec_->contains(t)) continue;
      vocab_ports_.push_back(p);
      for (double v : ip2vec_->embed(t)) {
        emb_lo_ = std::min(emb_lo_, v);
        emb_hi_ = std::max(emb_hi_, v);
      }
    }
    if (vocab_ports_.empty()) {
      throw std::invalid_argument("TupleCodec: IP2Vec has no port vocabulary");
    }
    // Widen slightly to be robust to unseen coordinates.
    const double pad = 0.05 * (emb_hi_ - emb_lo_) + 0.01;
    emb_lo_ -= pad;
    emb_hi_ += pad;
    // Per-protocol accept masks over the port shard, one byte per slot.
    const std::size_t nports = ip2vec_->vocab().kind_size(TokenKind::kPort);
    const net::Protocol classes[3] = {net::Protocol::kTcp, net::Protocol::kUdp,
                                      net::Protocol::kIcmp};
    for (std::size_t cls = 0; cls < 3; ++cls) {
      port_mask_[cls].resize(nports);
      for (std::size_t s = 0; s < nports; ++s) {
        const auto port = static_cast<std::uint16_t>(
            ip2vec_->vocab().token_at(TokenKind::kPort, s).value);
        const auto pinned = net::well_known_port_protocol(port);
        port_mask_[cls][s] = (!pinned || *pinned == classes[cls]) ? 1 : 0;
      }
    }
  }
}

namespace {
// Protocol -> port_mask_ index (matches TupleCodec::encode_proto's one-hot).
std::size_t proto_class(net::Protocol p) {
  return p == net::Protocol::kTcp ? 0 : p == net::Protocol::kUdp ? 1 : 2;
}
}  // namespace

std::size_t TupleCodec::port_width() const {
  return use_ip2vec_ ? ip2vec_->dim() : embed::kPortBits;
}

std::size_t TupleCodec::proto_width() const { return 3; }

std::vector<OutputSegment> TupleCodec::attribute_segments(bool with_tags) const {
  std::vector<OutputSegment> segs;
  segs.push_back({OutputSegment::Kind::kSigmoid, embed::kIpBits});  // src IP
  segs.push_back({OutputSegment::Kind::kSigmoid, embed::kIpBits});  // dst IP
  segs.push_back({OutputSegment::Kind::kSigmoid, port_width()});    // src port
  segs.push_back({OutputSegment::Kind::kSigmoid, port_width()});    // dst port
  // Protocol stays a 3-way one-hot: it is training-data independent (hence
  // DP-safe like bit encoding) and avoids nearest-neighbour noise over a
  // 3-token embedding vocabulary.
  segs.push_back({OutputSegment::Kind::kSoftmax, 3});
  if (with_tags) {
    segs.push_back({OutputSegment::Kind::kSigmoid, 1 + num_chunks_});
  }
  return segs;
}

std::size_t TupleCodec::dim(bool with_tags) const {
  std::size_t d = 2 * embed::kIpBits + 2 * port_width() + proto_width();
  if (with_tags) d += 1 + num_chunks_;
  return d;
}

void TupleCodec::encode_port(std::uint16_t port, double* out) const {
  if (use_ip2vec_) {
    Token t{TokenKind::kPort, port};
    if (!ip2vec_->contains(t)) {
      // OOV private port: substitute the numerically nearest public port.
      // (The public backbone vocabulary covers service + sampled ephemeral
      // ports, so the substitution error is small.)
      const auto it = std::lower_bound(vocab_ports_.begin(), vocab_ports_.end(),
                                       std::uint32_t{port});
      std::uint32_t best;
      if (it == vocab_ports_.end()) {
        best = vocab_ports_.back();
      } else if (it == vocab_ports_.begin()) {
        best = *it;
      } else {
        const std::uint32_t above = *it;
        const std::uint32_t below = *(it - 1);
        best = (above - port <= port - below) ? above : below;
      }
      t.value = best;
    }
    const auto v = ip2vec_->embed(t);
    for (std::size_t k = 0; k < v.size(); ++k) {
      out[k] = std::clamp((v[k] - emb_lo_) / (emb_hi_ - emb_lo_), 0.0, 1.0);
    }
  } else {
    const auto bits = embed::port_to_bits(port);
    std::copy(bits.begin(), bits.end(), out);
  }
}

std::uint16_t TupleCodec::decode_port(const double* in,
                                      net::Protocol proto) const {
  if (use_ip2vec_) {
    // Joint (port, protocol) decode: exclude ports whose well-known
    // protocol contradicts the decoded one (public knowledge, DP-safe).
    // One-row call into the batched scorer's serial oracle, so this is
    // bitwise identical to decode_batch.
    ml::Matrix q(1, ip2vec_->dim());
    double* v = q.row_ptr(0);
    for (std::size_t k = 0; k < ip2vec_->dim(); ++k) {
      v[k] = emb_lo_ + in[k] * (emb_hi_ - emb_lo_);
    }
    const std::uint8_t* mask = port_mask_[proto_class(proto)].data();
    Token t;
    ip2vec_->nearest_batch_reference(
        q, TokenKind::kPort, std::span<const std::uint8_t* const>(&mask, 1),
        std::span<Token>(&t, 1));
    return static_cast<std::uint16_t>(t.value);
  }
  return embed::bits_to_port(std::span<const double>(in, embed::kPortBits));
}

void TupleCodec::encode_proto(net::Protocol proto, double* out) const {
  const std::size_t idx = proto == net::Protocol::kTcp   ? 0
                          : proto == net::Protocol::kUdp ? 1
                                                         : 2;
  out[0] = out[1] = out[2] = 0.0;
  out[idx] = 1.0;
}

net::Protocol TupleCodec::decode_proto(const double* in) const {
  const std::size_t idx = embed::one_hot_decode(std::span<const double>(in, 3));
  return idx == 0   ? net::Protocol::kTcp
         : idx == 1 ? net::Protocol::kUdp
                    : net::Protocol::kIcmp;
}

void TupleCodec::encode(const net::FiveTuple& key, double* out) const {
  std::size_t at = 0;
  const auto src_bits = embed::ip_to_bits(key.src_ip);
  std::copy(src_bits.begin(), src_bits.end(), out + at);
  at += embed::kIpBits;
  const auto dst_bits = embed::ip_to_bits(key.dst_ip);
  std::copy(dst_bits.begin(), dst_bits.end(), out + at);
  at += embed::kIpBits;
  encode_port(key.src_port, out + at);
  at += port_width();
  encode_port(key.dst_port, out + at);
  at += port_width();
  encode_proto(key.protocol, out + at);
}

net::FiveTuple TupleCodec::decode(const double* in) const {
  net::FiveTuple key;
  // Protocol first, so port decoding can respect the joint constraint.
  key.protocol = decode_proto(in + 2 * embed::kIpBits + 2 * port_width());
  std::size_t at = 0;
  key.src_ip = embed::bits_to_ip(std::span<const double>(in, embed::kIpBits));
  at += embed::kIpBits;
  key.dst_ip =
      embed::bits_to_ip(std::span<const double>(in + at, embed::kIpBits));
  at += embed::kIpBits;
  key.src_port = decode_port(in + at, key.protocol);
  at += port_width();
  key.dst_port = decode_port(in + at, key.protocol);
  if (key.protocol == net::Protocol::kIcmp) {
    key.src_port = 0;
    key.dst_port = 0;
  }
  return key;
}

void TupleCodec::decode_batch(const ml::Matrix& attrs,
                              std::span<net::FiveTuple> out,
                              ml::Workspace& ws) const {
  const std::size_t n = out.size();
  if (attrs.rows() < n || attrs.cols() < dim(false)) {
    throw std::invalid_argument("TupleCodec::decode_batch: attrs shape");
  }
  if (!use_ip2vec_) {
    for (std::size_t i = 0; i < n; ++i) out[i] = decode(attrs.row_ptr(i));
    return;
  }
  if (n == 0) return;
  // Rewind the pool: every call re-issues the same buffers in call order,
  // so repeated batches perform no heap allocation once the pool is warm.
  ws.reset();
  const std::size_t d = ip2vec_->dim();
  const std::size_t proto_at = 2 * embed::kIpBits + 2 * port_width();

  // decode() is const and runs concurrently from parallel postprocess, so
  // the variable-size scratch is thread-local (capacity persists -> no
  // steady-state allocations).
  thread_local std::vector<const std::uint8_t*> masks;
  thread_local std::vector<Token> tokens;
  masks.resize(n);
  tokens.resize(n);

  // Protocols and IPs first (scalar bit decodes), masks from the protocol.
  for (std::size_t i = 0; i < n; ++i) {
    const double* in = attrs.row_ptr(i);
    net::FiveTuple& key = out[i];
    key.protocol = decode_proto(in + proto_at);
    key.src_ip =
        embed::bits_to_ip(std::span<const double>(in, embed::kIpBits));
    key.dst_ip = embed::bits_to_ip(
        std::span<const double>(in + embed::kIpBits, embed::kIpBits));
    masks[i] = port_mask_[proto_class(key.protocol)].data();
  }

  // Both port searches batched through the blocked NN kernel.
  ml::Matrix& q = ws.get(n, d);
  const double scale = emb_hi_ - emb_lo_;
  for (int side = 0; side < 2; ++side) {
    const std::size_t at =
        2 * embed::kIpBits + static_cast<std::size_t>(side) * port_width();
    for (std::size_t i = 0; i < n; ++i) {
      const double* in = attrs.row_ptr(i) + at;
      double* qrow = q.row_ptr(i);
      for (std::size_t k = 0; k < d; ++k) qrow[k] = emb_lo_ + in[k] * scale;
    }
    ip2vec_->nearest_batch(q, TokenKind::kPort, masks,
                           std::span<Token>(tokens.data(), n), ws);
    for (std::size_t i = 0; i < n; ++i) {
      const auto port = static_cast<std::uint16_t>(tokens[i].value);
      if (side == 0) {
        out[i].src_port = port;
      } else {
        out[i].dst_port = port;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].protocol == net::Protocol::kIcmp) {
      out[i].src_port = 0;
      out[i].dst_port = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// FlowEncoder

FlowEncoder::FlowEncoder(const NetShareConfig& config, const Ip2Vec* ip2vec)
    : config_(&config), codec_(config, ip2vec) {}

void FlowEncoder::fit(const net::FlowTrace& giant) {
  if (giant.empty()) throw std::invalid_argument("FlowEncoder::fit: empty");
  const std::size_t M = config_->netshare_v0 ? 1 : config_->num_chunks;
  chunks_ = make_chunk_grid(giant.start_time(), giant.end_time() + kEps, M);

  double max_gap = 1.0, max_dur = 1.0;
  double max_pkts = 2.0, max_bytes = 2.0;
  std::vector<double> durs, pkts, byts;
  durs.reserve(giant.size());
  pkts.reserve(giant.size());
  byts.reserve(giant.size());
  net::FlowTrace sorted = giant;
  sorted.sort_by_time();
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    (void)key;
    for (std::size_t k = 1; k < idx.size(); ++k) {
      max_gap = std::max(max_gap, sorted.records[idx[k]].start_time -
                                      sorted.records[idx[k - 1]].start_time);
    }
  }
  for (const auto& r : sorted.records) {
    max_dur = std::max(max_dur, r.duration);
    max_pkts = std::max(max_pkts, static_cast<double>(r.packets));
    max_bytes = std::max(max_bytes, static_cast<double>(r.bytes));
    durs.push_back(r.duration);
    pkts.push_back(static_cast<double>(r.packets));
    byts.push_back(static_cast<double>(r.bytes));
  }
  gap_ = embed::LogTransform(max_gap);
  duration_ = embed::LogTransform(max_dur);
  packets_ = embed::LogTransform(max_pkts);
  bytes_ = embed::LogTransform(max_bytes);
  mm_duration_ = embed::MinMaxTransform::fit(durs);
  mm_packets_ = embed::MinMaxTransform::fit(pkts);
  mm_bytes_ = embed::MinMaxTransform::fit(byts);

  // Per-chunk flow/record counts for generation scaling.
  for (auto& c : chunks_) {
    c.real_flows = 0;
    c.real_records = 0;
  }
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    (void)key;
    std::vector<bool> seen(chunks_.size(), false);
    for (std::size_t k : idx) {
      const std::size_t c = chunk_of(sorted.records[k].start_time, chunks_);
      chunks_[c].real_records += 1;
      if (!seen[c]) {
        chunks_[c].real_flows += 1;
        seen[c] = true;
      }
    }
  }
}

TimeSeriesSpec FlowEncoder::spec() const {
  TimeSeriesSpec s;
  s.attribute_segments = codec_.attribute_segments(config_->use_flow_tags);
  s.feature_segments = {
      {OutputSegment::Kind::kSigmoid, 1},  // time (offset / log gap)
      {OutputSegment::Kind::kSigmoid, 1},  // duration
      {OutputSegment::Kind::kSigmoid, 1},  // packets
      {OutputSegment::Kind::kSigmoid, 1},  // bytes
      {OutputSegment::Kind::kSoftmax, kAttackClasses},
  };
  s.max_len = config_->max_seq_len;
  return s;
}

FlowEncodePlan FlowEncoder::plan(const net::FlowTrace& giant) const {
  FlowEncodePlan p;
  p.sorted = giant;
  p.sorted.sort_by_time();
  p.per_chunk = split_by_chunk(
      p.sorted, chunks_, spec().max_len,
      [&](std::size_t k) { return p.sorted.records[k].start_time; });
  return p;
}

gan::TimeSeriesDataset FlowEncoder::encode_chunk(const FlowEncodePlan& plan,
                                                 std::size_t c) const {
  if (c >= chunks_.size() || c >= plan.per_chunk.size()) {
    throw std::out_of_range("FlowEncoder::encode_chunk: chunk index");
  }
  const std::size_t M = chunks_.size();
  const TimeSeriesSpec sp = spec();
  const std::size_t A = sp.attribute_dim();
  const std::size_t F = sp.feature_dim();
  const std::size_t T = sp.max_len;
  TimeSeriesDataset d;
  d.spec = sp;
  const std::size_t n = plan.per_chunk[c].size();
  d.attributes = ml::Matrix(n, A);
  d.features.assign(T, ml::Matrix(n, F));
  d.lengths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ChunkSample& s = plan.per_chunk[c][i];
    double* arow = d.attributes.row_ptr(i);
    codec_.encode(s.key, arow);
    if (config_->use_flow_tags) {
      std::size_t at = codec_.dim(false);
      arow[at++] = s.starts_here ? 1.0 : 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        arow[at++] = s.presence[m] ? 1.0 : 0.0;
      }
    }
    d.lengths[i] = s.records.size();
    double prev_start = 0.0;
    for (std::size_t t = 0; t < s.records.size(); ++t) {
      const net::FlowRecord& r = plan.sorted.records[s.records[t]];
      double* frow = d.features[t].row_ptr(i);
      frow[0] = t == 0 ? offset_in_chunk(r.start_time, chunks_[c])
                       : gap_.encode(std::max(0.0, r.start_time - prev_start));
      prev_start = r.start_time;
      if (config_->log_transform) {
        frow[1] = duration_.encode(r.duration);
        frow[2] = packets_.encode(static_cast<double>(r.packets));
        frow[3] = bytes_.encode(static_cast<double>(r.bytes));
      } else {
        frow[1] = mm_duration_.encode(r.duration);
        frow[2] = mm_packets_.encode(static_cast<double>(r.packets));
        frow[3] = mm_bytes_.encode(static_cast<double>(r.bytes));
      }
      const std::size_t cls =
          r.is_attack ? static_cast<std::size_t>(r.attack_type) : 0;
      frow[4 + cls] = 1.0;
    }
  }
  return d;
}

std::vector<TimeSeriesDataset> FlowEncoder::encode(
    const net::FlowTrace& giant) const {
  TELEM_SPAN("preprocess.flow_encode",
             {"records", static_cast<long long>(giant.records.size())});
  TELEM_COUNT_N("preprocess.records_encoded", giant.records.size());
  const FlowEncodePlan p = plan(giant);
  const std::size_t M = chunks_.size();
  // Chunk datasets are independent (disjoint writes; the codec and
  // transforms are const), so they build in parallel under the configured
  // thread budget with output identical to the serial loop.
  std::vector<TimeSeriesDataset> datasets(M);
  const std::size_t workers = parallel_phase_budget(
      std::max<std::size_t>(1, config_->threads));
  run_parallel_tasks(std::min(workers, M), M, [&](std::size_t c) {
    datasets[c] = encode_chunk(p, c);
  });
  return datasets;
}

net::FlowTrace FlowEncoder::decode(const gan::GeneratedSeries& series,
                                   std::size_t chunk_index) const {
  if (chunk_index >= chunks_.size()) {
    throw std::out_of_range("FlowEncoder::decode: chunk index");
  }
  const ChunkInfo& chunk = chunks_[chunk_index];
  net::FlowTrace out;
  const std::size_t n = series.num_samples();
  out.records.reserve(n * 2);
  // All 5-tuples decoded in one batched NN pass (decode() is const and runs
  // concurrently across chunks, hence the thread-local scratch).
  thread_local ml::Workspace ws;
  thread_local std::vector<net::FiveTuple> keys;
  keys.resize(n);
  codec_.decode_batch(series.attributes, keys, ws);
  for (std::size_t i = 0; i < n; ++i) {
    const net::FiveTuple& key = keys[i];
    double t0 = 0.0;
    for (std::size_t t = 0; t < series.lengths[i]; ++t) {
      const double* frow = series.features[t].row_ptr(i);
      if (t == 0) {
        t0 = chunk.start_time + frow[0] * chunk.duration;
      } else {
        t0 += gap_.decode(frow[0]);
      }
      net::FlowRecord r;
      r.key = key;
      r.start_time = t0;
      if (config_->log_transform) {
        r.duration = duration_.decode(frow[1]);
        r.packets = static_cast<std::uint64_t>(
            std::max(1.0, std::round(packets_.decode(frow[2]))));
        r.bytes = static_cast<std::uint64_t>(
            std::max(1.0, std::round(bytes_.decode(frow[3]))));
      } else {
        r.duration = mm_duration_.decode(frow[1]);
        r.packets = static_cast<std::uint64_t>(
            std::max(1.0, std::round(mm_packets_.decode(frow[2]))));
        r.bytes = static_cast<std::uint64_t>(
            std::max(1.0, std::round(mm_bytes_.decode(frow[3]))));
      }
      const std::size_t cls = embed::one_hot_decode(
          std::span<const double>(frow + 4, kAttackClasses));
      r.is_attack = cls != 0;
      r.attack_type = static_cast<net::AttackType>(cls);
      out.records.push_back(r);
    }
  }
  out.sort_by_time();
  return out;
}

// ---------------------------------------------------------------------------
// PacketEncoder

PacketEncoder::PacketEncoder(const NetShareConfig& config, const Ip2Vec* ip2vec)
    : config_(&config), codec_(config, ip2vec) {}

void PacketEncoder::fit(const net::PacketTrace& giant) {
  if (giant.empty()) throw std::invalid_argument("PacketEncoder::fit: empty");
  const std::size_t M = config_->netshare_v0 ? 1 : config_->num_chunks;
  chunks_ = make_chunk_grid(giant.start_time(), giant.end_time() + kEps, M);

  net::PacketTrace sorted = giant;
  sorted.sort_by_time();
  double max_iat = 0.01;
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    (void)key;
    for (std::size_t k = 1; k < idx.size(); ++k) {
      max_iat = std::max(max_iat, sorted.packets[idx[k]].timestamp -
                                      sorted.packets[idx[k - 1]].timestamp);
    }
  }
  iat_ = embed::LogTransform(max_iat);

  for (auto& c : chunks_) {
    c.real_flows = 0;
    c.real_records = 0;
  }
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    (void)key;
    std::vector<bool> seen(chunks_.size(), false);
    for (std::size_t k : idx) {
      const std::size_t c = chunk_of(sorted.packets[k].timestamp, chunks_);
      chunks_[c].real_records += 1;
      if (!seen[c]) {
        chunks_[c].real_flows += 1;
        seen[c] = true;
      }
    }
  }
}

TimeSeriesSpec PacketEncoder::spec() const {
  TimeSeriesSpec s;
  s.attribute_segments = codec_.attribute_segments(config_->use_flow_tags);
  s.feature_segments = {
      {OutputSegment::Kind::kSigmoid, 1},  // time (offset / log IAT)
      {OutputSegment::Kind::kSigmoid, 1},  // packet size
      {OutputSegment::Kind::kSigmoid, 1},  // ttl
  };
  s.max_len = config_->max_seq_len;
  return s;
}

PacketEncodePlan PacketEncoder::plan(const net::PacketTrace& giant) const {
  PacketEncodePlan p;
  p.sorted = giant;
  p.sorted.sort_by_time();
  p.per_chunk = split_by_chunk(
      p.sorted, chunks_, spec().max_len,
      [&](std::size_t k) { return p.sorted.packets[k].timestamp; });
  return p;
}

gan::TimeSeriesDataset PacketEncoder::encode_chunk(const PacketEncodePlan& plan,
                                                   std::size_t c) const {
  if (c >= chunks_.size() || c >= plan.per_chunk.size()) {
    throw std::out_of_range("PacketEncoder::encode_chunk: chunk index");
  }
  const std::size_t M = chunks_.size();
  const TimeSeriesSpec sp = spec();
  const std::size_t A = sp.attribute_dim();
  const std::size_t F = sp.feature_dim();
  const std::size_t T = sp.max_len;
  TimeSeriesDataset d;
  d.spec = sp;
  const std::size_t n = plan.per_chunk[c].size();
  d.attributes = ml::Matrix(n, A);
  d.features.assign(T, ml::Matrix(n, F));
  d.lengths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ChunkSample& s = plan.per_chunk[c][i];
    double* arow = d.attributes.row_ptr(i);
    codec_.encode(s.key, arow);
    if (config_->use_flow_tags) {
      std::size_t at = codec_.dim(false);
      arow[at++] = s.starts_here ? 1.0 : 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        arow[at++] = s.presence[m] ? 1.0 : 0.0;
      }
    }
    d.lengths[i] = s.records.size();
    double prev_ts = 0.0;
    for (std::size_t t = 0; t < s.records.size(); ++t) {
      const net::PacketRecord& p = plan.sorted.packets[s.records[t]];
      double* frow = d.features[t].row_ptr(i);
      frow[0] = t == 0 ? offset_in_chunk(p.timestamp, chunks_[c])
                       : iat_.encode(std::max(0.0, p.timestamp - prev_ts));
      prev_ts = p.timestamp;
      frow[1] = size_.encode(static_cast<double>(p.size));
      frow[2] = static_cast<double>(p.ttl) / 255.0;
    }
  }
  return d;
}

std::vector<TimeSeriesDataset> PacketEncoder::encode(
    const net::PacketTrace& giant) const {
  TELEM_SPAN("preprocess.packet_encode",
             {"packets", static_cast<long long>(giant.packets.size())});
  TELEM_COUNT_N("preprocess.packets_encoded", giant.packets.size());
  const PacketEncodePlan p = plan(giant);
  const std::size_t M = chunks_.size();
  // Chunk datasets are built independently (disjoint writes, const codec),
  // so the per-chunk encode fans out like FlowEncoder::encode.
  std::vector<TimeSeriesDataset> datasets(M);
  const std::size_t workers = parallel_phase_budget(
      std::max<std::size_t>(1, config_->threads));
  run_parallel_tasks(std::min(workers, M), M, [&](std::size_t c) {
    datasets[c] = encode_chunk(p, c);
  });
  return datasets;
}

net::PacketTrace PacketEncoder::decode(const gan::GeneratedSeries& series,
                                       std::size_t chunk_index) const {
  if (chunk_index >= chunks_.size()) {
    throw std::out_of_range("PacketEncoder::decode: chunk index");
  }
  const ChunkInfo& chunk = chunks_[chunk_index];
  net::PacketTrace out;
  const std::size_t n = series.num_samples();
  out.packets.reserve(n * 2);
  thread_local ml::Workspace ws;
  thread_local std::vector<net::FiveTuple> keys;
  keys.resize(n);
  codec_.decode_batch(series.attributes, keys, ws);
  for (std::size_t i = 0; i < n; ++i) {
    const net::FiveTuple& key = keys[i];
    double ts = 0.0;
    for (std::size_t t = 0; t < series.lengths[i]; ++t) {
      const double* frow = series.features[t].row_ptr(i);
      if (t == 0) {
        ts = chunk.start_time + frow[0] * chunk.duration;
      } else {
        ts += iat_.decode(frow[0]);
      }
      net::PacketRecord p;
      p.key = key;
      p.timestamp = ts;
      // Derived-field step (Sec. 4.2 post-processing): sizes are clamped to
      // the protocol's valid range so headers can be materialized.
      const double raw_size = size_.decode(frow[1]);
      p.size = static_cast<std::uint32_t>(std::clamp(
          std::round(raw_size), static_cast<double>(net::min_packet_size(key.protocol)),
          1500.0));
      p.ttl = static_cast<std::uint8_t>(
          std::clamp(std::round(frow[2] * 255.0), 1.0, 255.0));
      out.packets.push_back(p);
    }
  }
  out.sort_by_time();
  return out;
}

}  // namespace netshare::core
