// NetShare preprocessing (Insights 1-3): merge measurement epochs, split the
// giant trace into per-5-tuple flow series, encode header fields
// (bit-encoded IPs, IP2Vec ports/protocols, log-transformed counters), slice
// into M evenly time-spaced chunks, and append cross-chunk flow tags.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "embed/ip2vec.hpp"
#include "embed/transforms.hpp"
#include "gan/timeseries.hpp"
#include "ml/workspace.hpp"
#include "net/trace.hpp"

namespace netshare::core {

// Per-chunk slice of the encoded data plus the bookkeeping needed to decode
// generated samples back into records.
struct ChunkInfo {
  double start_time = 0.0;
  double duration = 0.0;
  std::size_t real_flows = 0;    // flow samples in this chunk
  std::size_t real_records = 0;  // records/packets in this chunk
};

// One flow's slice of one chunk, as produced by FlowEncoder::plan /
// PacketEncoder::plan: record indices into the plan's time-sorted trace plus
// the cross-chunk tag bits. Keys are stored by value so a plan outlives the
// grouping pass that built it.
struct ChunkSample {
  net::FiveTuple key;
  std::vector<std::size_t> records;  // indices into EncodePlan::sorted
  bool starts_here = false;
  std::vector<bool> presence;
};

// The splitting pass of encode(), reified so the streaming pipeline
// (core/stream.hpp) can encode one chunk at a time: the sorted giant trace
// plus the per-chunk flow samples. encode_chunk(plan, c) is bitwise
// identical to encode(giant)[c], but the encoded matrices' memory is then
// bounded by chunks-in-flight instead of the whole trace.
template <typename TraceT>
struct EncodePlan {
  TraceT sorted;
  std::vector<std::vector<ChunkSample>> per_chunk;
  std::size_t chunk_samples(std::size_t c) const {
    return per_chunk[c].size();
  }
};
using FlowEncodePlan = EncodePlan<net::FlowTrace>;
using PacketEncodePlan = EncodePlan<net::PacketTrace>;

// Shared encoding state for the 5-tuple attributes.
//
// Layout of the attribute vector:
//   [src IP bits (32) | dst IP bits (32) | src port | dst port | protocol |
//    flow tags (1 + M, optional)]
// Ports/protocol are IP2Vec embeddings (normalized to [0,1]) or bit/one-hot
// encodings depending on config.
class TupleCodec {
 public:
  TupleCodec(const NetShareConfig& config, const embed::Ip2Vec* ip2vec);

  std::vector<ml::OutputSegment> attribute_segments(bool with_tags) const;
  std::size_t dim(bool with_tags) const;

  // Writes the encoded 5-tuple into out[0 .. dim(false)).
  void encode(const net::FiveTuple& key, double* out) const;
  net::FiveTuple decode(const double* in) const;

  // Decodes rows [0, out.size()) of `attrs` (each row laid out like decode's
  // input; trailing tag columns are ignored) in one pass, batching both port
  // nearest-neighbour searches through Ip2Vec::nearest_batch with the
  // per-protocol accept masks. Bitwise identical to calling decode() per
  // row. Resets `ws` and draws all scratch from it; zero allocations once
  // the pool is warm.
  void decode_batch(const ml::Matrix& attrs, std::span<net::FiveTuple> out,
                    ml::Workspace& ws) const;

 private:
  std::size_t port_width() const;
  std::size_t proto_width() const;
  void encode_port(std::uint16_t port, double* out) const;
  // Decode restricted to ports compatible with the decoded protocol — the
  // paper's joint (port, protocol) nearest-neighbour mapping. Routed through
  // the same scorer as decode_batch (nearest_batch_reference on one row), so
  // per-row and batched decode agree bitwise.
  std::uint16_t decode_port(const double* in, net::Protocol proto) const;
  void encode_proto(net::Protocol proto, double* out) const;
  net::Protocol decode_proto(const double* in) const;

  const NetShareConfig* config_;
  const embed::Ip2Vec* ip2vec_;  // may be null (bit-encoding mode)
  // Affine normalization of embedding coordinates to [0,1].
  double emb_lo_ = -1.0;
  double emb_hi_ = 1.0;
  // Sorted public port vocabulary, for nearest-port OOV substitution.
  std::vector<std::uint32_t> vocab_ports_;
  // Per-protocol-class (tcp/udp/icmp) accept masks over the kPort shard:
  // mask[slot] = the port's well-known protocol doesn't contradict the
  // decoded one. Precomputed once from public knowledge (DP-safe).
  std::vector<std::uint8_t> port_mask_[3];
  std::size_t num_chunks_;
  bool use_ip2vec_;
};

// Encoder for NetFlow-style flow traces.
//
// Per-timestep features:
//   [time (step0: offset in chunk; later: log gap) | log duration |
//    log packets | log bytes | attack-type softmax (fixed 12-way)]
class FlowEncoder {
 public:
  FlowEncoder(const NetShareConfig& config, const embed::Ip2Vec* ip2vec);

  // Learns normalizers and the chunk grid from the merged giant trace.
  void fit(const net::FlowTrace& giant);

  gan::TimeSeriesSpec spec() const;
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  // Encodes the giant trace into per-chunk datasets (Fig. 7); implemented
  // as plan() + one encode_chunk() per chunk.
  std::vector<gan::TimeSeriesDataset> encode(const net::FlowTrace& giant) const;

  // Sorts and splits the giant trace into per-chunk flow samples without
  // encoding anything yet (the streaming pipeline's stage-0 input).
  FlowEncodePlan plan(const net::FlowTrace& giant) const;
  // Encodes one chunk of a plan; bitwise identical to encode(giant)[c].
  gan::TimeSeriesDataset encode_chunk(const FlowEncodePlan& plan,
                                      std::size_t c) const;

  // Decodes generated series of chunk `chunk_index` back into flow records.
  net::FlowTrace decode(const gan::GeneratedSeries& series,
                        std::size_t chunk_index) const;

  const TupleCodec& tuple_codec() const { return codec_; }

 private:
  const NetShareConfig* config_;
  TupleCodec codec_;
  std::vector<ChunkInfo> chunks_;
  embed::LogTransform gap_ = embed::LogTransform(60.0);
  embed::LogTransform duration_ = embed::LogTransform(60.0);
  embed::LogTransform packets_ = embed::LogTransform(1e6);
  embed::LogTransform bytes_ = embed::LogTransform(1e9);
  // Ablation (log_transform = false): min-max instead.
  embed::MinMaxTransform mm_duration_, mm_packets_, mm_bytes_;
};

// Encoder for PCAP-style packet traces.
//
// Per-timestep features:
//   [time (step0: offset in chunk; later: log inter-arrival) |
//    packet size (min-max over [28,1500]) | ttl (/255)]
class PacketEncoder {
 public:
  PacketEncoder(const NetShareConfig& config, const embed::Ip2Vec* ip2vec);

  void fit(const net::PacketTrace& giant);

  gan::TimeSeriesSpec spec() const;
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  std::vector<gan::TimeSeriesDataset> encode(const net::PacketTrace& giant) const;

  PacketEncodePlan plan(const net::PacketTrace& giant) const;
  gan::TimeSeriesDataset encode_chunk(const PacketEncodePlan& plan,
                                      std::size_t c) const;

  net::PacketTrace decode(const gan::GeneratedSeries& series,
                          std::size_t chunk_index) const;

  const TupleCodec& tuple_codec() const { return codec_; }

 private:
  const NetShareConfig* config_;
  TupleCodec codec_;
  std::vector<ChunkInfo> chunks_;
  embed::LogTransform iat_ = embed::LogTransform(10.0);
  embed::MinMaxTransform size_{28.0, 1500.0};
};

// Builds the chunk grid for a time range.
std::vector<ChunkInfo> make_chunk_grid(double start, double end,
                                       std::size_t num_chunks);

// The fixed 12-way attack-type alphabet used in feature encoding, so that
// model snapshots transfer across labeled datasets (DP pretraining).
constexpr std::size_t kAttackClasses = 12;

}  // namespace netshare::core
