#include "core/train.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"

namespace netshare::core {

ChunkedTrainer::ChunkedTrainer(gan::TimeSeriesSpec spec,
                               const NetShareConfig& config)
    : spec_(std::move(spec)), config_(config) {}

gan::DgConfig ChunkedTrainer::chunk_config() const {
  gan::DgConfig dg = config_.dg;
  dg.dp = config_.dp;
  dg.dp_config = config_.dp_config;
  return dg;
}

void ChunkedTrainer::fit(const std::vector<gan::TimeSeriesDataset>& chunks) {
  if (chunks.empty()) throw std::invalid_argument("ChunkedTrainer::fit: no chunks");
  models_.clear();
  models_.resize(chunks.size());

  // Seed chunk: the first chunk with data.
  seed_chunk_ = chunks.size();
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (chunks[c].num_samples() > 0) {
      seed_chunk_ = c;
      break;
    }
  }
  if (seed_chunk_ == chunks.size()) {
    throw std::invalid_argument("ChunkedTrainer::fit: all chunks empty");
  }

  // Thread budget (see core/config.hpp): while only the seed model trains,
  // the whole budget goes to kernel-level parallelism; once chunks fine-tune
  // concurrently it is split so chunk_workers × kernel_threads ≈ budget.
  // Kernel results are bitwise identical at any thread count, so the split
  // affects wall-clock only.
  const std::size_t budget = std::max<std::size_t>(1, config_.threads);
  ml::kernels::KernelConfig kernel_cfg = config_.kernels;
  if (kernel_cfg.threads == 0) kernel_cfg.threads = budget;
  ml::kernels::ConfigOverride seed_budget(kernel_cfg);

  const gan::DgConfig dg = chunk_config();
  models_[seed_chunk_] = std::make_unique<gan::DoppelGanger>(
      spec_, dg, config_.seed + seed_chunk_);
  if (config_.public_snapshot) {
    // Insight 4: warm-start from a model pre-trained on public data before
    // any (possibly DP) training on this data.
    models_[seed_chunk_]->restore(*config_.public_snapshot);
  }
  models_[seed_chunk_]->fit(chunks[seed_chunk_], config_.seed_iterations);
  const std::vector<double> seed_snapshot = models_[seed_chunk_]->snapshot();

  // Remaining chunks fine-tune in parallel from the seed snapshot
  // (or train from scratch in the naive-parallel ablation).
  std::vector<std::size_t> todo;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (c != seed_chunk_ && chunks[c].num_samples() > 0) todo.push_back(c);
  }
  if (todo.empty()) return;

  for (std::size_t c : todo) {
    models_[c] = std::make_unique<gan::DoppelGanger>(spec_, dg,
                                                     config_.seed + 1000 + c);
    if (!config_.naive_parallel) {
      models_[c]->restore(seed_snapshot);
    } else if (config_.public_snapshot) {
      models_[c]->restore(*config_.public_snapshot);
    }
  }
  const int iters = config_.naive_parallel ? config_.seed_iterations
                                           : config_.finetune_iterations;
  const std::size_t chunk_workers = std::min(budget, todo.size());
  ml::kernels::KernelConfig finetune_cfg = kernel_cfg;
  finetune_cfg.threads =
      std::max<std::size_t>(1, kernel_cfg.threads / chunk_workers);
  ml::kernels::ConfigOverride finetune_budget(finetune_cfg);
  ThreadPool pool(chunk_workers);
  pool.parallel_for(todo.size(), [&](std::size_t i) {
    models_[todo[i]]->fit(chunks[todo[i]], iters);
  });
}

gan::GeneratedSeries ChunkedTrainer::sample_chunk(std::size_t c, std::size_t n,
                                                  Rng& rng) {
  if (!has_model(c)) {
    gan::GeneratedSeries empty;
    empty.spec = spec_;
    empty.attributes = ml::Matrix(0, spec_.attribute_dim());
    empty.features.assign(spec_.max_len, ml::Matrix(0, spec_.feature_dim()));
    return empty;
  }
  return models_[c]->sample(n, rng);
}

double ChunkedTrainer::train_cpu_seconds() const {
  double total = 0.0;
  for (const auto& m : models_) {
    if (m) total += m->train_cpu_seconds();
  }
  return total;
}

std::vector<double> ChunkedTrainer::seed_snapshot() {
  if (seed_chunk_ >= models_.size() || !models_[seed_chunk_]) {
    throw std::logic_error("ChunkedTrainer::seed_snapshot: not trained");
  }
  return models_[seed_chunk_]->snapshot();
}

std::size_t ChunkedTrainer::total_dp_steps() const {
  std::size_t steps = 0;
  for (const auto& m : models_) {
    if (m) steps += m->dp_steps();
  }
  return steps;
}

}  // namespace netshare::core
