#include "core/train.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/parallel.hpp"
#include "ml/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::core {

const char* to_string(ChunkTrainReport::Status status) {
  switch (status) {
    case ChunkTrainReport::Status::kEmpty: return "empty";
    case ChunkTrainReport::Status::kTrained: return "trained";
    case ChunkTrainReport::Status::kResumed: return "resumed";
    case ChunkTrainReport::Status::kSeedFallback: return "seed-fallback";
  }
  return "unknown";
}

ChunkedTrainer::ChunkedTrainer(gan::TimeSeriesSpec spec,
                               const NetShareConfig& config)
    : spec_(std::move(spec)), config_(config) {}

gan::DgConfig ChunkedTrainer::chunk_config() const {
  gan::DgConfig dg = config_.dg;
  dg.dp = config_.dp;
  dg.dp_config = config_.dp_config;
  return dg;
}

std::string ChunkedTrainer::checkpoint_path(std::size_t c) const {
  return config_.checkpoint_dir + "/chunk_" + std::to_string(c) + ".ckpt";
}

bool ChunkedTrainer::try_resume(std::size_t c) {
  if (config_.checkpoint_dir.empty()) return false;
  const std::string path = checkpoint_path(c);
  {
    // Missing checkpoint is the normal first-run case — stay silent.
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return false;
  }
  try {
    models_[c]->restore(ml::load_snapshot_file(path));
  } catch (const std::exception& e) {
    // Truncated / corrupted / foreign / wrong-shape checkpoint: restore
    // validated before writing, so the model is untouched — retrain it.
    TELEM_DIAG(::netshare::telemetry::Severity::kWarn,
               "core.train.checkpoint_invalid",
               "chunk %zu checkpoint rejected (%s); retraining", c, e.what());
    return false;
  }
  TELEM_COUNT("core.train.chunks_resumed");
  return true;
}

void ChunkedTrainer::write_checkpoint(std::size_t c) {
  if (config_.checkpoint_dir.empty()) return;
  try {
    ml::save_snapshot_file(models_[c]->snapshot(), checkpoint_path(c));
  } catch (const std::exception& e) {
    TELEM_DIAG(::netshare::telemetry::Severity::kWarn,
               "core.train.checkpoint_write_failed",
               "chunk %zu checkpoint not written (%s); a resume will retrain "
               "this chunk", c, e.what());
  }
}

void ChunkedTrainer::begin_fit(const std::vector<std::size_t>& chunk_samples) {
  if (chunk_samples.empty()) {
    throw std::invalid_argument("ChunkedTrainer::fit: no chunks");
  }
  models_.clear();
  models_.resize(chunk_samples.size());
  report_ = TrainReport{};
  report_.chunks.resize(chunk_samples.size());
  seed_snapshot_.clear();

  // Seed chunk: the first chunk with data.
  seed_chunk_ = chunk_samples.size();
  for (std::size_t c = 0; c < chunk_samples.size(); ++c) {
    if (chunk_samples[c] > 0) {
      seed_chunk_ = c;
      break;
    }
  }
  if (seed_chunk_ == chunk_samples.size()) {
    throw std::invalid_argument("ChunkedTrainer::fit: all chunks empty");
  }
  report_.seed_chunk = seed_chunk_;
  report_.chunks[seed_chunk_].is_seed = true;

  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (ec) {
      TELEM_DIAG(::netshare::telemetry::Severity::kWarn,
                 "core.train.checkpoint_dir_failed",
                 "cannot create checkpoint dir %s (%s); checkpoints disabled "
                 "for this run", config_.checkpoint_dir.c_str(),
                 ec.message().c_str());
    }
  }
}

void ChunkedTrainer::train_seed(const gan::TimeSeriesDataset& data) {
  Stopwatch sw;
  const gan::DgConfig dg = chunk_config();
  models_[seed_chunk_] = std::make_unique<gan::DoppelGanger>(
      spec_, dg, config_.seed + seed_chunk_);
  ChunkTrainReport& r = report_.chunks[seed_chunk_];
  if (try_resume(seed_chunk_)) {
    r.status = ChunkTrainReport::Status::kResumed;
  } else {
    if (config_.public_snapshot) {
      // Insight 4: warm-start from a model pre-trained on public data before
      // any (possibly DP) training on this data.
      models_[seed_chunk_]->restore(*config_.public_snapshot);
    }
    {
      TELEM_SPAN("train.seed",
                 {"chunk", static_cast<long long>(seed_chunk_)});
      // A seed failure propagates: every other chunk warm-starts from this
      // model, so there is nothing to fall back to.
      models_[seed_chunk_]->fit(data, config_.seed_iterations);
    }
    r.status = ChunkTrainReport::Status::kTrained;
    r.rollbacks = models_[seed_chunk_]->health_stats().rollbacks;
    r.attempts = 1 + r.rollbacks;
    write_checkpoint(seed_chunk_);
  }
  seed_snapshot_ = models_[seed_chunk_]->snapshot();
  r.train_sec = sw.seconds();
}

void ChunkedTrainer::train_finetune(std::size_t c,
                                    const gan::TimeSeriesDataset& data) {
  if (seed_snapshot_.empty()) {
    throw std::logic_error("ChunkedTrainer::train_finetune: seed not trained");
  }
  Stopwatch sw;
  TELEM_SPAN("train.chunk", {"chunk", static_cast<long long>(c)});
  const gan::DgConfig dg = chunk_config();
  const int iters = config_.naive_parallel ? config_.seed_iterations
                                           : config_.finetune_iterations;
  // Each call owns exactly its own chunk index: models_[c], the checkpoint
  // file chunk_<c>.ckpt, and report_.chunks[c] are all disjoint per chunk,
  // so distinct chunks fine-tune concurrently without locks.
  models_[c] = std::make_unique<gan::DoppelGanger>(spec_, dg,
                                                   config_.seed + 1000 + c);
  ChunkTrainReport& r = report_.chunks[c];
  if (try_resume(c)) {
    r.status = ChunkTrainReport::Status::kResumed;
    r.train_sec = sw.seconds();
    return;
  }
  if (!config_.naive_parallel) {
    models_[c]->restore(seed_snapshot_);
  } else if (config_.public_snapshot) {
    models_[c]->restore(*config_.public_snapshot);
  }
  try {
    models_[c]->fit(data, iters);
    r.status = ChunkTrainReport::Status::kTrained;
    r.rollbacks = models_[c]->health_stats().rollbacks;
    r.attempts = 1 + r.rollbacks;
    write_checkpoint(c);
  } catch (const std::exception& e) {
    // Chunk fault isolation (DESIGN.md §9): this chunk's model failed, the
    // run survives. Rebuild the model so no half-diverged state leaks, and
    // fall back to the seed snapshot it would have fine-tuned from.
    TELEM_DIAG(::netshare::telemetry::Severity::kError,
               "core.train.chunk_failed",
               "chunk %zu training failed (%s); falling back to the seed "
               "snapshot", c, e.what());
    r.rollbacks = models_[c]->health_stats().rollbacks;
    r.attempts = 1 + r.rollbacks;
    r.status = ChunkTrainReport::Status::kSeedFallback;
    r.error = e.what();
    models_[c] = std::make_unique<gan::DoppelGanger>(
        spec_, dg, config_.seed + 1000 + c);
    models_[c]->restore(seed_snapshot_);
  }
  r.train_sec = sw.seconds();
}

void ChunkedTrainer::note_generate_seconds(std::size_t c, double sec) {
  if (c < report_.chunks.size()) report_.chunks[c].generate_sec = sec;
}

void ChunkedTrainer::restore_chunk(std::size_t c,
                                   const std::vector<double>& params) {
  if (c >= models_.size()) {
    throw std::out_of_range("ChunkedTrainer::restore_chunk: chunk " +
                            std::to_string(c) + " out of range");
  }
  const gan::DgConfig dg = chunk_config();
  // Same per-chunk construction seeds as training; irrelevant to sampling
  // (restore overwrites every weight) but keeps the objects interchangeable.
  auto model = std::make_unique<gan::DoppelGanger>(
      spec_, dg,
      c == seed_chunk_ ? config_.seed + c : config_.seed + 1000 + c);
  model->restore(params);  // validates all boundaries before writing
  models_[c] = std::move(model);
  ChunkTrainReport& r = report_.chunks[c];
  r.status = ChunkTrainReport::Status::kResumed;
  if (c == seed_chunk_) seed_snapshot_ = params;
}

void ChunkedTrainer::fit(const std::vector<gan::TimeSeriesDataset>& chunks) {
  std::vector<std::size_t> sizes(chunks.size());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    sizes[c] = chunks[c].num_samples();
  }
  begin_fit(sizes);

  // Thread budget (see core/config.hpp): while only the seed model trains,
  // the whole budget goes to kernel-level parallelism; once chunks fine-tune
  // concurrently it is split so chunk_workers × kernel_threads ≈ budget.
  // Kernel results are bitwise identical at any thread count, so the split
  // affects wall-clock only.
  const std::size_t budget = std::max<std::size_t>(1, config_.threads);
  {
    ml::kernels::KernelConfig kernel_cfg = config_.kernels;
    if (kernel_cfg.threads == 0) kernel_cfg.threads = budget;
    ml::kernels::ConfigOverride seed_budget(kernel_cfg);
    train_seed(chunks[seed_chunk_]);
  }

  // Remaining chunks fine-tune in parallel from the seed snapshot
  // (or train from scratch in the naive-parallel ablation).
  std::vector<std::size_t> todo;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (c != seed_chunk_ && chunks[c].num_samples() > 0) todo.push_back(c);
  }
  if (todo.empty()) return;

  const PhaseBudget split =
      split_phase_budget(budget, todo.size(), config_.kernels);
  ml::kernels::ConfigOverride finetune_budget(split.kernel_cfg);
  TELEM_SPAN("train.finetune",
             {"chunks", static_cast<long long>(todo.size())});
  ThreadPool pool(split.workers);
  pool.parallel_for(todo.size(), [&](std::size_t i) {
    train_finetune(todo[i], chunks[todo[i]]);
  });
}

gan::GeneratedSeries ChunkedTrainer::sample_chunk(std::size_t c, std::size_t n,
                                                  Rng& rng) {
  gan::GeneratedSeries out;
  sample_chunk_into(c, n, rng.engine()(), 0, out);
  return out;
}

void ChunkedTrainer::sample_chunk_into(std::size_t c, std::size_t n,
                                       std::uint64_t seed,
                                       std::size_t first_series,
                                       gan::GeneratedSeries& out) {
  if (!has_model(c)) {
    out.spec = spec_;
    out.attributes.resize(0, spec_.attribute_dim());
    out.features.resize(spec_.max_len);
    for (auto& step : out.features) step.resize(0, spec_.feature_dim());
    out.lengths.clear();
    return;
  }
  models_[c]->sample_into(n, mix_seed(seed, c), first_series, out);
}

void ChunkedTrainer::sample_chunk_reference_into(std::size_t c, std::size_t n,
                                                 std::uint64_t seed,
                                                 std::size_t first_series,
                                                 gan::GeneratedSeries& out) {
  if (!has_model(c)) {
    out.spec = spec_;
    out.attributes.resize(0, spec_.attribute_dim());
    out.features.resize(spec_.max_len);
    for (auto& step : out.features) step.resize(0, spec_.feature_dim());
    out.lengths.clear();
    return;
  }
  models_[c]->sample_reference_into(n, mix_seed(seed, c), first_series, out);
}

void ChunkedTrainer::sample_chunks(const std::vector<std::size_t>& counts,
                                   std::uint64_t seed,
                                   std::vector<gan::GeneratedSeries>& out,
                                   std::size_t thread_budget) {
  if (counts.size() != models_.size()) {
    throw std::invalid_argument(
        "ChunkedTrainer::sample_chunks: counts size != num_chunks");
  }
  out.resize(models_.size());
  std::vector<std::size_t> active;
  for (std::size_t c = 0; c < models_.size(); ++c) {
    if (counts[c] > 0 && has_model(c)) {
      active.push_back(c);
    } else {
      sample_chunk_into(c, 0, seed, 0, out[c]);
    }
  }
  const std::size_t budget = parallel_phase_budget(
      thread_budget == 0 ? std::max<std::size_t>(1, config_.threads)
                         : thread_budget);
  const PhaseBudget split =
      split_phase_budget(budget, active.size(), config_.kernels);
  ml::kernels::ConfigOverride guard(split.kernel_cfg);
  TELEM_SPAN("generate.sample_chunks",
             {"chunks", static_cast<long long>(active.size())});
  run_parallel_tasks(split.workers, active.size(), [&](std::size_t i) {
    const std::size_t c = active[i];
    Stopwatch sw;
    TELEM_SPAN("generate.chunk", {"chunk", static_cast<long long>(c)});
    // One model per task: sample_into is not thread-safe per instance, but
    // distinct chunk models share no mutable state (per-model Workspace).
    sample_chunk_into(c, counts[c], seed, 0, out[c]);
    note_generate_seconds(c, sw.seconds());
  });
}

double ChunkedTrainer::train_cpu_seconds() const {
  double total = 0.0;
  for (const auto& m : models_) {
    if (m) total += m->train_cpu_seconds();
  }
  return total;
}

std::vector<double> ChunkedTrainer::seed_snapshot() {
  if (seed_chunk_ >= models_.size() || !models_[seed_chunk_]) {
    throw std::logic_error("ChunkedTrainer::seed_snapshot: not trained");
  }
  return models_[seed_chunk_]->snapshot();
}

std::size_t ChunkedTrainer::total_dp_steps() const {
  std::size_t steps = 0;
  for (const auto& m : models_) {
    if (m) steps += m->dp_steps();
  }
  return steps;
}

}  // namespace netshare::core
