// DoppelGANger-style time-series GAN (Lin et al., IMC 2020), configured per
// the paper's Appendix C: MLP metadata (attribute) generator, GRU
// measurement generator with 2-way softmax generation flags, Wasserstein
// loss, auxiliary discriminator on attributes, [0,1] normalization, no
// packing, no auto-normalization.
//
// Substitution note (DESIGN.md): the WGAN-GP gradient penalty is replaced by
// a two-point Lipschitz penalty on pairs of random interpolates, which
// penalizes the same constraint without second-order backprop.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gan/timeseries.hpp"
#include "ml/gru.hpp"
#include "ml/health.hpp"
#include "ml/mlp.hpp"
#include "ml/optim.hpp"
#include "ml/workspace.hpp"
#include "privacy/dp_sgd.hpp"

namespace netshare::gan {

struct DgConfig {
  std::size_t attr_noise_dim = 8;
  std::size_t feat_noise_dim = 8;
  std::vector<std::size_t> attr_hidden = {64, 64};
  std::size_t rnn_hidden = 48;
  std::vector<std::size_t> disc_hidden = {96, 96};
  std::vector<std::size_t> aux_hidden = {48};

  int iterations = 300;
  std::size_t batch_size = 64;
  int d_steps_per_g = 2;
  double lr = 1e-3;
  double lipschitz_weight = 10.0;
  double aux_weight = 1.0;
  double grad_clip = 5.0;

  // Differentially-private training: DP-SGD on the discriminators (the only
  // components touching real data; generator updates are post-processing).
  bool dp = false;
  privacy::DpSgdConfig dp_config;

  // Numeric health guard + rollback-and-retry policy (DESIGN.md §9). On a
  // healthy run the guard only reads, so determinism and the zero-allocation
  // steady state are unchanged; health.enabled = false removes even that.
  ml::health::HealthConfig health;
};

class DoppelGanger {
 public:
  DoppelGanger(TimeSeriesSpec spec, DgConfig config, std::uint64_t seed);

  // Trains (or, when called on a restored model, fine-tunes) for
  // config.iterations on `data`.
  void fit(const TimeSeriesDataset& data);
  // Same, with an explicit iteration count (fine-tuning uses fewer).
  void fit(const TimeSeriesDataset& data, int iterations);

  // Samples n synthetic series.
  GeneratedSeries sample(std::size_t n, Rng& rng);

  // Batched zero-allocation sampling into caller-owned buffers (the
  // generation twin of the DESIGN.md §6 training hot path). Series
  // `first_series + i` draws its noise from the counter-based stream
  // (stream_seed, first_series + i), and every stage of the generator
  // forward pass is row-wise, so each output row is a pure function of its
  // own stream: results are bitwise independent of the batch size, of how
  // callers partition [0, n) across calls, and of the kernel thread count.
  // After a warm-up call with the same n, repeated calls perform zero
  // Matrix heap allocations (asserted in tests/test_generate.cpp). Not
  // thread-safe per model instance: concurrent callers must use distinct
  // models (as ChunkedTrainer's chunk-parallel sampling does).
  // The fast path is length-adaptive: the generator is stepped one RNN step
  // at a time and series whose alive flag has dropped leave the batch, so
  // compute is proportional to the total emitted length rather than
  // n * max_len (generated series are usually much shorter than max_len).
  void sample_into(std::size_t n, std::uint64_t stream_seed,
                   std::size_t first_series, GeneratedSeries& out);

  // Reference sampler: the training-path full unroll (every series runs all
  // max_len steps through generator_tail, then lengths are read off the
  // alive flags). Bitwise identical to sample_into — steps at or past a
  // series' length were computed and discarded here, skipped there — and
  // kept as the oracle for tests and the serial baseline for
  // bench/pipeline_e2e. Same stream/zero-allocation contract as
  // sample_into.
  void sample_reference_into(std::size_t n, std::uint64_t stream_seed,
                             std::size_t first_series, GeneratedSeries& out);

  // Warm-start support (Insights 3 and 4).
  std::vector<double> snapshot();
  void restore(const std::vector<double>& snapshot);

  // Cumulative CPU-seconds spent inside fit() (Fig. 4's scalability axis).
  double train_cpu_seconds() const { return train_cpu_seconds_; }
  // Number of DP-SGD steps taken so far (for the accountant).
  std::size_t dp_steps() const { return dp_steps_; }

  // Health-guard counters accumulated across fit() calls (all zero when the
  // guard is disabled or fit() has not run).
  ml::health::TrainHealthStats health_stats() const {
    return monitor_ ? monitor_->stats() : ml::health::TrainHealthStats{};
  }

  const TimeSeriesSpec& spec() const { return spec_; }
  const DgConfig& config() const { return config_; }

 private:
  struct GenOutput {
    ml::Matrix attributes;             // B x A
    std::vector<ml::Matrix> features;  // T of B x (F+2), incl. gen flags
  };

  // Forward pass of the generator with caches retained for backward; writes
  // into `out` (a persistent member) so steady-state calls reuse capacity.
  void generator_forward(std::size_t batch, Rng& rng, GenOutput& out);
  // Noise-independent tail of the generator forward pass (attribute MLP,
  // per-step concat, GRU unroll, MixedHead): consumes `za` and the per-step
  // noise already staged in zts_. Shared by training (one rng draws all
  // noise) and sampling (per-series counter streams fill the same buffers).
  void generator_tail(const ml::Matrix& za, GenOutput& out);
  // Builds one batch of per-series counter-based noise streams
  // (samp_noise_), fills za (a ws_ cursor) with each series' attribute
  // noise, and returns za. Draw order per series is fixed — attribute
  // noise, then z_0, z_1, ... — so the adaptive sampler (which draws z_t
  // lazily, only for series still alive at step t) sees exactly the same
  // prefix of each stream as the reference sampler (which drains all
  // max_len steps).
  ml::Matrix& stage_attr_noise(std::size_t b, std::uint64_t stream_seed,
                               std::size_t first_series);
  // Backprop through the generator given dLoss/d(attr) and dLoss/d(features).
  void generator_backward(const ml::Matrix& attr_grad,
                          const std::vector<ml::Matrix>& feature_grads);

  // Flattens (attr, features) into the discriminator input [B, A + T*(F+2)],
  // assembling each output row directly (no intermediate concatenations).
  void disc_input_into(const ml::Matrix& attr,
                       const std::vector<ml::Matrix>& feats,
                       ml::Matrix& x) const;
  // Builds a real minibatch (with gen flags appended) from the dataset.
  void real_batch_into(const TimeSeriesDataset& data,
                       const std::vector<std::size_t>& rows,
                       GenOutput& out) const;

  void discriminator_update(const TimeSeriesDataset& data, Rng& rng);
  void discriminator_update_dp(const TimeSeriesDataset& data, Rng& rng);
  void generator_update(Rng& rng);

  std::size_t flag_offset() const;  // column of the alive flag within a step

  TimeSeriesSpec spec_;
  DgConfig config_;
  std::uint64_t seed_;  // construction seed; fault injection filters on it
  Rng rng_;

  std::unique_ptr<ml::Mlp> attr_gen_;
  std::unique_ptr<ml::Gru> rnn_;
  std::unique_ptr<ml::Linear> out_linear_;
  std::unique_ptr<ml::MixedHead> out_head_;
  std::unique_ptr<ml::Mlp> disc_;
  std::unique_ptr<ml::Mlp> aux_disc_;

  std::unique_ptr<ml::Adam> g_opt_;
  std::unique_ptr<ml::Adam> d_opt_;
  std::unique_ptr<privacy::DpSgdAggregator> dp_agg_;

  // Per-model allocation arena (DESIGN.md §6): reset at the top of every
  // training update; owned by the model so chunk-parallel fine-tuning
  // (core/train.cpp) never shares buffers across threads.
  ml::Workspace ws_;
  // Persistent batch buffers reused across iterations.
  GenOutput real_, fake_;
  std::vector<ml::Matrix> zts_;     // per-step generator noise z_t
  std::vector<ml::Matrix> xs_;      // generator RNN inputs [z_t | attr]
  std::vector<ml::Matrix> ghs_;     // per-step hidden-state gradients
  std::vector<ml::Matrix> fgrads_;  // per-step feature gradients
  ml::Matrix xr_, xf_, x1_, x2_, a1_, a2_, fa_row_;
  std::vector<double> dist_, adist_;
  std::vector<std::size_t> rows_, row1_;
  // Length-adaptive sampling state (sample_into): compacting double buffers
  // for the live sub-batch's hidden state and attribute rows, the per-step
  // RNN input, and the surviving series' original batch indices.
  ml::Matrix samp_h_, samp_h_next_, samp_x_, samp_attr_, samp_attr_next_;
  std::vector<std::size_t> live_;
  std::vector<NoiseStream> samp_noise_;  // per-series streams for one batch

  double train_cpu_seconds_ = 0.0;
  std::size_t dp_steps_ = 0;

  // Health guard (DESIGN.md §9): per-model monitor plus the most recent
  // losses / post-clip gradient norms the update functions record for it.
  std::unique_ptr<ml::health::HealthMonitor> monitor_;
  double last_d_loss_ = 0.0;
  double last_g_loss_ = 0.0;
  double last_d_grad_norm_ = 0.0;
  double last_g_grad_norm_ = 0.0;

  std::vector<ml::Parameter*> generator_params();
  std::vector<ml::Parameter*> discriminator_params();
  std::vector<ml::Parameter*> all_params();
};

}  // namespace netshare::gan
