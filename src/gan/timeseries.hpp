// Time-series dataset representation shared by the DoppelGANger GAN and
// NetShare's preprocessing (Insight 1): each sample has static attributes
// (metadata: encoded 5-tuple + flow tags) and a variable-length sequence of
// per-timestep feature vectors (measurements).
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace netshare::gan {

// Structural description of one sample, independent of the data.
struct TimeSeriesSpec {
  std::vector<ml::OutputSegment> attribute_segments;
  std::vector<ml::OutputSegment> feature_segments;
  std::size_t max_len = 8;

  std::size_t attribute_dim() const {
    std::size_t d = 0;
    for (const auto& s : attribute_segments) d += s.width;
    return d;
  }
  std::size_t feature_dim() const {
    std::size_t d = 0;
    for (const auto& s : feature_segments) d += s.width;
    return d;
  }
};

// Data in time-major layout: features[t] is [N, F]; steps past a sample's
// length are zero-padded.
struct TimeSeriesDataset {
  TimeSeriesSpec spec;
  ml::Matrix attributes;              // N x A
  std::vector<ml::Matrix> features;   // max_len entries of N x F
  std::vector<std::size_t> lengths;   // per-sample true length in [1, max_len]

  std::size_t num_samples() const { return attributes.rows(); }

  // Row-subset view used for minibatching.
  TimeSeriesDataset take(const std::vector<std::size_t>& rows) const;
};

// Generator output in the same shape.
using GeneratedSeries = TimeSeriesDataset;

}  // namespace netshare::gan
