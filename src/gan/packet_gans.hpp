// Packet-level GAN baselines (Sec. 6.1), all per-packet tabular models over
// byte-level encodings — which is precisely why none of them can generate
// multi-packet flows (challenge C1 / Fig. 1b):
//
//  * PAC-GAN (Cheng 2019): encodes each packet as a byte grid ("greyscale
//    image"); timestamps are NOT modeled — they are drawn out-of-band from a
//    Gaussian fitted to the training timestamps, exactly as the paper
//    describes. (CNN generator simplified to an MLP; DESIGN.md.)
//  * PacketCGAN (Wang et al. 2020): conditional GAN over byte vectors,
//    conditioned on the protocol class; timestamps appended during training.
//  * Flow-WGAN (Han et al. 2019): Wasserstein GAN with weight clipping over
//    byte-level embeddings; timestamps appended during training.
#pragma once

#include <memory>

#include "gan/synthesizer.hpp"
#include "gan/tabular_gan.hpp"

namespace netshare::gan {

struct PacketGanConfig {
  TabularGanConfig gan;
};

enum class PacketGanKind { kPacGan, kPacketCgan, kFlowWgan };

class BytePacketGan : public PacketSynthesizer {
 public:
  BytePacketGan(PacketGanKind kind, PacketGanConfig config, std::uint64_t seed);

  std::string name() const override;
  void fit(const net::PacketTrace& trace) override;
  net::PacketTrace generate(std::size_t n, Rng& rng) override;
  double train_cpu_seconds() const override;

 private:
  bool models_timestamps() const { return kind_ != PacketGanKind::kPacGan; }

  PacketGanKind kind_;
  PacketGanConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<TabularGan> gan_;
  // PAC-GAN's out-of-band Gaussian timestamp model.
  double ts_mean_ = 0.0, ts_std_ = 1.0;
  // Timestamp normalization when modeled in-band.
  double t0_ = 0.0, t_span_ = 1.0;
};

// Convenience factories.
std::unique_ptr<PacketSynthesizer> make_pac_gan(PacketGanConfig config,
                                                std::uint64_t seed);
std::unique_ptr<PacketSynthesizer> make_packet_cgan(PacketGanConfig config,
                                                    std::uint64_t seed);
std::unique_ptr<PacketSynthesizer> make_flow_wgan(PacketGanConfig config,
                                                  std::uint64_t seed);

}  // namespace netshare::gan
