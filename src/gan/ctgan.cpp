#include "gan/ctgan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "embed/bit_encoding.hpp"
#include "embed/transforms.hpp"

namespace netshare::gan {

using ml::Matrix;
using ml::OutputSegment;

// ---------------------------------------------------------------------------
// ModeNormalizer

void ModeNormalizer::fit(const std::vector<double>& values, std::size_t modes,
                         Rng& rng) {
  if (values.empty()) throw std::invalid_argument("ModeNormalizer::fit: empty");
  modes = std::max<std::size_t>(1, std::min(modes, values.size()));
  // k-means 1-D: init centers at quantiles, few Lloyd iterations.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  centers_.resize(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    centers_[m] = sorted[(sorted.size() - 1) * (2 * m + 1) / (2 * modes)];
  }
  (void)rng;
  std::vector<double> sums(modes), counts(modes), sq(modes);
  for (int iter = 0; iter < 12; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0.0);
    for (double v : values) {
      std::size_t best = 0;
      for (std::size_t m = 1; m < modes; ++m) {
        if (std::fabs(v - centers_[m]) < std::fabs(v - centers_[best])) best = m;
      }
      sums[best] += v;
      counts[best] += 1.0;
    }
    for (std::size_t m = 0; m < modes; ++m) {
      if (counts[m] > 0) centers_[m] = sums[m] / counts[m];
    }
  }
  std::sort(centers_.begin(), centers_.end());
  // Spread per mode: 4x stddev of members (CTGAN uses GMM stddev).
  spreads_.assign(modes, 1e-6);
  std::fill(sq.begin(), sq.end(), 0.0);
  std::fill(counts.begin(), counts.end(), 0.0);
  for (double v : values) {
    std::size_t best = 0;
    for (std::size_t m = 1; m < modes; ++m) {
      if (std::fabs(v - centers_[m]) < std::fabs(v - centers_[best])) best = m;
    }
    sq[best] += (v - centers_[best]) * (v - centers_[best]);
    counts[best] += 1.0;
  }
  for (std::size_t m = 0; m < modes; ++m) {
    if (counts[m] > 1) {
      spreads_[m] = std::max(1e-6, 4.0 * std::sqrt(sq[m] / counts[m]));
    } else {
      spreads_[m] = std::max(
          1e-6, (sorted.back() - sorted.front()) / static_cast<double>(modes));
    }
  }
}

void ModeNormalizer::encode(double value, double* out) const {
  std::size_t best = 0;
  for (std::size_t m = 1; m < centers_.size(); ++m) {
    if (std::fabs(value - centers_[m]) < std::fabs(value - centers_[best])) {
      best = m;
    }
  }
  for (std::size_t m = 0; m < centers_.size(); ++m) out[m] = m == best;
  // Offset scaled to [0,1] around the mode center.
  out[centers_.size()] =
      std::clamp(0.5 + (value - centers_[best]) / (2.0 * spreads_[best]), 0.0,
                 1.0);
}

double ModeNormalizer::decode(const double* in) const {
  const std::size_t best = embed::one_hot_decode(
      std::span<const double>(in, centers_.size()));
  const double offset = (in[centers_.size()] - 0.5) * 2.0 * spreads_[best];
  return centers_[best] + offset;
}

// ---------------------------------------------------------------------------
// Row layouts

namespace {

// Flow row: [ts mode | dur mode | pkts mode | bytes mode | srcIP bits 32 |
//            dstIP bits 32 | sport bits 16 | dport bits 16 | proto 3 |
//            attack 12]
struct FlowLayout {
  const ModeNormalizer *ts, *dur, *pkts, *bytes;

  std::vector<OutputSegment> segments() const {
    std::vector<OutputSegment> s;
    auto mode = [&s](const ModeNormalizer* m) {
      s.push_back({OutputSegment::Kind::kSoftmax, m->width() - 1});
      s.push_back({OutputSegment::Kind::kSigmoid, 1});
    };
    mode(ts);
    mode(dur);
    mode(pkts);
    mode(bytes);
    s.push_back({OutputSegment::Kind::kSigmoid, 32});
    s.push_back({OutputSegment::Kind::kSigmoid, 32});
    s.push_back({OutputSegment::Kind::kSigmoid, 16});
    s.push_back({OutputSegment::Kind::kSigmoid, 16});
    s.push_back({OutputSegment::Kind::kSoftmax, 3});
    s.push_back({OutputSegment::Kind::kSoftmax, 12});
    return s;
  }

  std::size_t dim() const {
    return ts->width() + dur->width() + pkts->width() + bytes->width() + 32 +
           32 + 16 + 16 + 3 + 12;
  }

  std::size_t proto_offset() const {
    return ts->width() + dur->width() + pkts->width() + bytes->width() + 96;
  }

  void encode(const net::FlowRecord& r, double* out) const {
    std::size_t at = 0;
    ts->encode(r.start_time, out + at);
    at += ts->width();
    dur->encode(r.duration, out + at);
    at += dur->width();
    pkts->encode(static_cast<double>(r.packets), out + at);
    at += pkts->width();
    bytes->encode(static_cast<double>(r.bytes), out + at);
    at += bytes->width();
    auto put_bits = [&](const std::vector<double>& bits) {
      std::copy(bits.begin(), bits.end(), out + at);
      at += bits.size();
    };
    put_bits(embed::ip_to_bits(r.key.src_ip));
    put_bits(embed::ip_to_bits(r.key.dst_ip));
    put_bits(embed::port_to_bits(r.key.src_port));
    put_bits(embed::port_to_bits(r.key.dst_port));
    const std::size_t pidx = r.key.protocol == net::Protocol::kTcp   ? 0
                             : r.key.protocol == net::Protocol::kUdp ? 1
                                                                     : 2;
    out[at + pidx] = 1.0;
    at += 3;
    out[at + (r.is_attack ? static_cast<std::size_t>(r.attack_type) : 0)] = 1.0;
  }

  net::FlowRecord decode(const double* in) const {
    net::FlowRecord r;
    std::size_t at = 0;
    r.start_time = ts->decode(in + at);
    at += ts->width();
    r.duration = std::max(0.0, dur->decode(in + at));
    at += dur->width();
    r.packets = static_cast<std::uint64_t>(
        std::max(1.0, std::round(pkts->decode(in + at))));
    at += pkts->width();
    r.bytes = static_cast<std::uint64_t>(
        std::max(1.0, std::round(bytes->decode(in + at))));
    at += bytes->width();
    r.key.src_ip = embed::bits_to_ip(std::span<const double>(in + at, 32));
    at += 32;
    r.key.dst_ip = embed::bits_to_ip(std::span<const double>(in + at, 32));
    at += 32;
    r.key.src_port = embed::bits_to_port(std::span<const double>(in + at, 16));
    at += 16;
    r.key.dst_port = embed::bits_to_port(std::span<const double>(in + at, 16));
    at += 16;
    const std::size_t pidx =
        embed::one_hot_decode(std::span<const double>(in + at, 3));
    r.key.protocol = pidx == 0   ? net::Protocol::kTcp
                     : pidx == 1 ? net::Protocol::kUdp
                                 : net::Protocol::kIcmp;
    at += 3;
    const std::size_t cls =
        embed::one_hot_decode(std::span<const double>(in + at, 12));
    r.is_attack = cls != 0;
    r.attack_type = static_cast<net::AttackType>(cls);
    return r;
  }
};

// Packet row: [ts mode | size mode | srcIP 32 | dstIP 32 | sport 16 |
//              dport 16 | proto 3 | ttl 1]
struct PacketLayout {
  const ModeNormalizer *ts, *size;

  std::vector<OutputSegment> segments() const {
    std::vector<OutputSegment> s;
    s.push_back({OutputSegment::Kind::kSoftmax, ts->width() - 1});
    s.push_back({OutputSegment::Kind::kSigmoid, 1});
    s.push_back({OutputSegment::Kind::kSoftmax, size->width() - 1});
    s.push_back({OutputSegment::Kind::kSigmoid, 1});
    s.push_back({OutputSegment::Kind::kSigmoid, 32});
    s.push_back({OutputSegment::Kind::kSigmoid, 32});
    s.push_back({OutputSegment::Kind::kSigmoid, 16});
    s.push_back({OutputSegment::Kind::kSigmoid, 16});
    s.push_back({OutputSegment::Kind::kSoftmax, 3});
    s.push_back({OutputSegment::Kind::kSigmoid, 1});
    return s;
  }

  std::size_t dim() const { return ts->width() + size->width() + 100; }

  std::size_t proto_offset() const { return ts->width() + size->width() + 96; }

  void encode(const net::PacketRecord& p, double* out) const {
    std::size_t at = 0;
    ts->encode(p.timestamp, out + at);
    at += ts->width();
    size->encode(static_cast<double>(p.size), out + at);
    at += size->width();
    auto put_bits = [&](const std::vector<double>& bits) {
      std::copy(bits.begin(), bits.end(), out + at);
      at += bits.size();
    };
    put_bits(embed::ip_to_bits(p.key.src_ip));
    put_bits(embed::ip_to_bits(p.key.dst_ip));
    put_bits(embed::port_to_bits(p.key.src_port));
    put_bits(embed::port_to_bits(p.key.dst_port));
    const std::size_t pidx = p.key.protocol == net::Protocol::kTcp   ? 0
                             : p.key.protocol == net::Protocol::kUdp ? 1
                                                                     : 2;
    out[at + pidx] = 1.0;
    at += 3;
    out[at] = static_cast<double>(p.ttl) / 255.0;
  }

  net::PacketRecord decode(const double* in) const {
    net::PacketRecord p;
    std::size_t at = 0;
    p.timestamp = std::max(0.0, ts->decode(in + at));
    at += ts->width();
    const double raw_size = size->decode(in + at);
    at += size->width();
    p.key.src_ip = embed::bits_to_ip(std::span<const double>(in + at, 32));
    at += 32;
    p.key.dst_ip = embed::bits_to_ip(std::span<const double>(in + at, 32));
    at += 32;
    p.key.src_port = embed::bits_to_port(std::span<const double>(in + at, 16));
    at += 16;
    p.key.dst_port = embed::bits_to_port(std::span<const double>(in + at, 16));
    at += 16;
    const std::size_t pidx =
        embed::one_hot_decode(std::span<const double>(in + at, 3));
    p.key.protocol = pidx == 0   ? net::Protocol::kTcp
                     : pidx == 1 ? net::Protocol::kUdp
                                 : net::Protocol::kIcmp;
    at += 3;
    p.ttl = static_cast<std::uint8_t>(
        std::clamp(std::round(in[at] * 255.0), 1.0, 255.0));
    p.size = static_cast<std::uint32_t>(
        std::clamp(std::round(raw_size),
                   static_cast<double>(net::min_packet_size(p.key.protocol)),
                   65535.0));
    if (p.key.protocol == net::Protocol::kIcmp) {
      p.key.src_port = 0;
      p.key.dst_port = 0;
    }
    return p;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// CtganFlow

void CtganFlow::fit(const net::FlowTrace& trace) {
  if (trace.empty()) throw std::invalid_argument("CtganFlow::fit: empty");
  Rng rng(seed_);
  std::vector<double> ts_v, dur_v, pkt_v, byt_v;
  for (const auto& r : trace.records) {
    ts_v.push_back(r.start_time);
    dur_v.push_back(r.duration);
    pkt_v.push_back(static_cast<double>(r.packets));
    byt_v.push_back(static_cast<double>(r.bytes));
  }
  ts_.fit(ts_v, config_.modes, rng);
  dur_.fit(dur_v, config_.modes, rng);
  pkts_.fit(pkt_v, config_.modes, rng);
  bytes_.fit(byt_v, config_.modes, rng);

  const FlowLayout layout{&ts_, &dur_, &pkts_, &bytes_};
  Matrix rows(trace.size(), layout.dim());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    layout.encode(trace.records[i], rows.row_ptr(i));
  }
  TabularGanConfig gcfg = config_.gan;
  gcfg.condition = {{layout.proto_offset(), 3}};  // conditional vector: proto
  gan_ = std::make_unique<TabularGan>(layout.segments(), gcfg, seed_ + 1);
  gan_->fit(rows);
}

net::FlowTrace CtganFlow::generate(std::size_t n, Rng& rng) {
  if (!gan_) throw std::logic_error("CtganFlow::generate: fit first");
  const FlowLayout layout{&ts_, &dur_, &pkts_, &bytes_};
  const Matrix rows = gan_->sample(n, rng);
  net::FlowTrace out;
  out.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.records.push_back(layout.decode(rows.row_ptr(i)));
  }
  out.sort_by_time();
  return out;
}

double CtganFlow::train_cpu_seconds() const {
  return gan_ ? gan_->train_cpu_seconds() : 0.0;
}

// ---------------------------------------------------------------------------
// CtganPacket

void CtganPacket::fit(const net::PacketTrace& trace) {
  if (trace.empty()) throw std::invalid_argument("CtganPacket::fit: empty");
  Rng rng(seed_);
  std::vector<double> ts_v, size_v;
  for (const auto& p : trace.packets) {
    ts_v.push_back(p.timestamp);
    size_v.push_back(static_cast<double>(p.size));
  }
  ts_.fit(ts_v, config_.modes, rng);
  size_.fit(size_v, config_.modes, rng);

  const PacketLayout layout{&ts_, &size_};
  Matrix rows(trace.size(), layout.dim());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    layout.encode(trace.packets[i], rows.row_ptr(i));
  }
  TabularGanConfig gcfg = config_.gan;
  gcfg.condition = {{layout.proto_offset(), 3}};
  gan_ = std::make_unique<TabularGan>(layout.segments(), gcfg, seed_ + 1);
  gan_->fit(rows);
}

net::PacketTrace CtganPacket::generate(std::size_t n, Rng& rng) {
  if (!gan_) throw std::logic_error("CtganPacket::generate: fit first");
  const PacketLayout layout{&ts_, &size_};
  const Matrix rows = gan_->sample(n, rng);
  net::PacketTrace out;
  out.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.packets.push_back(layout.decode(rows.row_ptr(i)));
  }
  out.sort_by_time();
  return out;
}

double CtganPacket::train_cpu_seconds() const {
  return gan_ ? gan_->train_cpu_seconds() : 0.0;
}

}  // namespace netshare::gan
