// Common interfaces for trace synthesizers — NetShare and every baseline
// implement these, so the evaluation harness can treat them uniformly.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "net/trace.hpp"

namespace netshare::gan {

class FlowSynthesizer {
 public:
  virtual ~FlowSynthesizer() = default;
  virtual std::string name() const = 0;
  virtual void fit(const net::FlowTrace& trace) = 0;
  virtual net::FlowTrace generate(std::size_t n, Rng& rng) = 0;
  // Thread-CPU seconds spent in fit() (Fig. 4 scalability axis).
  virtual double train_cpu_seconds() const = 0;
};

class PacketSynthesizer {
 public:
  virtual ~PacketSynthesizer() = default;
  virtual std::string name() const = 0;
  virtual void fit(const net::PacketTrace& trace) = 0;
  virtual net::PacketTrace generate(std::size_t n, Rng& rng) = 0;
  virtual double train_cpu_seconds() const = 0;
};

}  // namespace netshare::gan
