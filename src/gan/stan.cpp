#include "gan/stan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "common/stopwatch.hpp"
#include "net/ports.hpp"
#include "ml/loss.hpp"

namespace netshare::gan {

using ml::Matrix;

namespace {

std::size_t log2_class(double v, std::size_t num_classes) {
  const auto b = static_cast<std::size_t>(
      std::floor(std::log2(std::max(1.0, v))));
  return std::min(b, num_classes - 1);
}
double log2_class_center(std::size_t cls) {
  return std::pow(2.0, static_cast<double>(cls) + 0.5);
}

// Log-spaced buckets for a positive quantity with known max.
std::size_t log_bucket(double v, double max_v, std::size_t buckets) {
  const double x = std::log1p(std::max(0.0, v)) / std::log1p(max_v);
  return std::min(static_cast<std::size_t>(x * static_cast<double>(buckets)),
                  buckets - 1);
}
double log_bucket_center(std::size_t cls, double max_v, std::size_t buckets) {
  const double x = (static_cast<double>(cls) + 0.5) /
                   static_cast<double>(buckets);
  return std::expm1(x * std::log1p(max_v));
}

}  // namespace

std::vector<std::size_t> StanFlow::field_widths() const {
  return {dport_classes(), kProtoClasses, kPktClasses, kByteClasses,
          kDurClasses, kGapClasses};
}

std::size_t StanFlow::record_width() const {
  std::size_t w = 0;
  for (std::size_t f : field_widths()) w += f;
  return w;
}

std::size_t StanFlow::dport_class(std::uint16_t port) const {
  for (std::size_t i = 0; i < service_port_table_.size(); ++i) {
    if (service_port_table_[i] == port) return i;
  }
  // Ephemeral bucket by range.
  const std::size_t bucket =
      static_cast<std::size_t>(port) * config_.ephemeral_buckets / 65536;
  return config_.service_ports + std::min(bucket, config_.ephemeral_buckets - 1);
}

std::uint16_t StanFlow::sample_dport(std::size_t cls, Rng& rng) const {
  if (cls < service_port_table_.size()) return service_port_table_[cls];
  if (cls < config_.service_ports) return 80;  // padded class
  const std::size_t bucket = cls - config_.service_ports;
  const std::size_t lo = bucket * 65536 / config_.ephemeral_buckets;
  const std::size_t hi = (bucket + 1) * 65536 / config_.ephemeral_buckets - 1;
  return static_cast<std::uint16_t>(rng.uniform_int(
      static_cast<std::int64_t>(std::max<std::size_t>(lo, 1024)),
      static_cast<std::int64_t>(hi)));
}

void StanFlow::fit(const net::FlowTrace& trace) {
  if (trace.empty()) throw std::invalid_argument("StanFlow::fit: empty");
  const double cpu0 = thread_cpu_seconds();
  Rng rng(seed_);

  // Learn the top-K service ports from the data.
  std::map<std::uint16_t, std::size_t> port_counts;
  for (const auto& r : trace.records) {
    if (net::is_service_port(r.key.dst_port)) port_counts[r.key.dst_port]++;
  }
  std::vector<std::pair<std::size_t, std::uint16_t>> ranked;
  for (const auto& [p, c] : port_counts) ranked.push_back({c, p});
  std::sort(ranked.rbegin(), ranked.rend());
  service_port_table_.clear();
  for (std::size_t i = 0; i < std::min(config_.service_ports, ranked.size());
       ++i) {
    service_port_table_.push_back(ranked[i].second);
  }

  // Pools: hosts/destinations are drawn uniformly from the DISTINCT address
  // sets of the real data (the paper: "we randomly draw host IPs from the
  // real data") — which loses the popularity structure, one of STAN's
  // documented shortcomings.
  host_pool_.clear();
  dst_pool_.clear();
  start_time_pool_.clear();
  std::unordered_map<std::uint32_t, bool> seen_src, seen_dst;
  for (const auto& r : trace.records) {
    if (seen_src.emplace(r.key.src_ip.value(), true).second) {
      host_pool_.push_back(r.key.src_ip.value());
    }
    if (seen_dst.emplace(r.key.dst_ip.value(), true).second) {
      dst_pool_.push_back(r.key.dst_ip.value());
    }
    start_time_pool_.push_back(r.start_time);
    max_duration_ = std::max(max_duration_, r.duration);
  }

  // Group by host, ordered by time.
  net::FlowTrace sorted = trace;
  sorted.sort_by_time();
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_host;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    by_host[sorted.records[i].key.src_ip.value()].push_back(i);
  }
  records_per_host_pool_.clear();
  for (const auto& [h, idx] : by_host) {
    (void)h;
    records_per_host_pool_.push_back(idx.size());
    for (std::size_t k = 1; k < idx.size(); ++k) {
      max_gap_ = std::max(max_gap_, sorted.records[idx[k]].start_time -
                                        sorted.records[idx[k - 1]].start_time);
    }
  }

  // Build autoregressive training examples.
  const auto widths = field_widths();
  const std::size_t rec_w = record_width();
  auto encode_record = [&](const net::FlowRecord& r, double gap, double* out) {
    std::size_t at = 0;
    out[at + dport_class(r.key.dst_port)] = 1.0;
    at += widths[0];
    const std::size_t pidx = r.key.protocol == net::Protocol::kTcp   ? 0
                             : r.key.protocol == net::Protocol::kUdp ? 1
                                                                     : 2;
    out[at + pidx] = 1.0;
    at += widths[1];
    out[at + log2_class(static_cast<double>(r.packets), kPktClasses)] = 1.0;
    at += widths[2];
    out[at + log2_class(static_cast<double>(r.bytes), kByteClasses)] = 1.0;
    at += widths[3];
    out[at + log_bucket(r.duration, max_duration_, kDurClasses)] = 1.0;
    at += widths[4];
    out[at + log_bucket(gap, max_gap_, kGapClasses)] = 1.0;
  };
  auto record_labels = [&](const net::FlowRecord& r, double gap) {
    return std::vector<std::size_t>{
        dport_class(r.key.dst_port),
        static_cast<std::size_t>(r.key.protocol == net::Protocol::kTcp ? 0
                                 : r.key.protocol == net::Protocol::kUdp ? 1
                                                                         : 2),
        log2_class(static_cast<double>(r.packets), kPktClasses),
        log2_class(static_cast<double>(r.bytes), kByteClasses),
        log_bucket(r.duration, max_duration_, kDurClasses),
        log_bucket(gap, max_gap_, kGapClasses)};
  };

  // Per-field example sets: input = [prev record one-hots | current record
  // one-hots of earlier fields], label = this field's class.
  std::vector<std::vector<std::vector<double>>> inputs(widths.size());
  std::vector<std::vector<std::size_t>> labels(widths.size());
  for (const auto& [h, idx] : by_host) {
    (void)h;
    std::vector<double> prev(rec_w, 0.0);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const auto& r = sorted.records[idx[k]];
      const double gap =
          k + 1 < idx.size()
              ? sorted.records[idx[k + 1]].start_time - r.start_time
              : 0.0;
      std::vector<double> cur(rec_w, 0.0);
      encode_record(r, gap, cur.data());
      const auto labs = record_labels(r, gap);
      std::size_t at = 0;
      for (std::size_t f = 0; f < widths.size(); ++f) {
        std::vector<double> in(prev);
        in.insert(in.end(), cur.begin(), cur.begin() + static_cast<long>(at));
        in.resize(rec_w + rec_w, 0.0);  // pad partial to fixed width
        inputs[f].push_back(std::move(in));
        labels[f].push_back(labs[f]);
        at += widths[f];
      }
      prev = cur;
    }
  }

  // One MLP per field.
  field_nets_.clear();
  std::vector<std::unique_ptr<ml::Adam>> opts;
  for (std::size_t f = 0; f < widths.size(); ++f) {
    field_nets_.push_back(std::make_unique<ml::Mlp>(
        std::vector<std::size_t>{2 * rec_w, config_.hidden, widths[f]},
        ml::Activation::kRelu, rng));
    opts.push_back(
        std::make_unique<ml::Adam>(field_nets_[f]->parameters(), config_.lr));
  }

  // Minibatch cross-entropy training.
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t f = 0; f < widths.size(); ++f) {
      const auto perm = rng.permutation(inputs[f].size());
      for (std::size_t b = 0; b < perm.size(); b += config_.batch_size) {
        const std::size_t bs = std::min(config_.batch_size, perm.size() - b);
        Matrix x(bs, 2 * rec_w);
        std::vector<std::size_t> y(bs);
        for (std::size_t i = 0; i < bs; ++i) {
          const auto& in = inputs[f][perm[b + i]];
          std::copy(in.begin(), in.end(), x.row_ptr(i));
          y[i] = labels[f][perm[b + i]];
        }
        const Matrix logits = field_nets_[f]->forward(x);
        Matrix grad;
        ml::softmax_cross_entropy_loss(logits, y, &grad);
        field_nets_[f]->zero_grad();
        field_nets_[f]->backward(grad);
        opts[f]->step();
      }
    }
  }
  train_cpu_seconds_ += thread_cpu_seconds() - cpu0;
}

net::FlowTrace StanFlow::generate(std::size_t n, Rng& rng) {
  if (field_nets_.empty()) throw std::logic_error("StanFlow::generate: fit first");
  const auto widths = field_widths();
  const std::size_t rec_w = record_width();
  net::FlowTrace out;
  out.records.reserve(n);

  auto sample_from = [&](const Matrix& logits) {
    // Softmax sampling.
    const Matrix probs = ml::softmax_rows(logits);
    std::vector<double> w(probs.cols());
    for (std::size_t j = 0; j < probs.cols(); ++j) w[j] = probs(0, j);
    return rng.categorical(w);
  };

  while (out.size() < n) {
    const auto host = host_pool_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(host_pool_.size()) - 1))];
    std::size_t seq = records_per_host_pool_[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(records_per_host_pool_.size()) - 1))];
    seq = std::min(seq, n - out.size());
    double t = start_time_pool_[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(start_time_pool_.size()) - 1))];

    std::vector<double> prev(rec_w, 0.0);
    for (std::size_t k = 0; k < seq; ++k) {
      std::vector<double> cur(rec_w, 0.0);
      std::vector<std::size_t> cls(widths.size());
      std::size_t at = 0;
      for (std::size_t f = 0; f < widths.size(); ++f) {
        Matrix x(1, 2 * rec_w);
        std::copy(prev.begin(), prev.end(), x.row_ptr(0));
        std::copy(cur.begin(), cur.begin() + static_cast<long>(at),
                  x.row_ptr(0) + rec_w);
        cls[f] = sample_from(field_nets_[f]->forward(x));
        cur[at + cls[f]] = 1.0;
        at += widths[f];
      }

      net::FlowRecord r;
      r.key.src_ip = net::Ipv4Address(host);
      r.key.dst_ip = net::Ipv4Address(dst_pool_[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dst_pool_.size()) - 1))]);
      r.key.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      r.key.dst_port = sample_dport(cls[0], rng);
      r.key.protocol = cls[1] == 0   ? net::Protocol::kTcp
                       : cls[1] == 1 ? net::Protocol::kUdp
                                     : net::Protocol::kIcmp;
      r.packets = static_cast<std::uint64_t>(
          std::max(1.0, std::round(log2_class_center(cls[2]))));
      r.bytes = static_cast<std::uint64_t>(
          std::max(1.0, std::round(log2_class_center(cls[3]))));
      r.duration = log_bucket_center(cls[4], max_duration_, kDurClasses);
      r.start_time = t;
      out.records.push_back(r);

      t += log_bucket_center(cls[5], max_gap_, kGapClasses);
      prev = cur;
    }
  }
  out.sort_by_time();
  return out;
}

}  // namespace netshare::gan
