#include "gan/packet_gans.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "embed/bit_encoding.hpp"
#include "embed/transforms.hpp"

namespace netshare::gan {

using ml::Matrix;
using ml::OutputSegment;

namespace {

// Byte-level row: [srcIP 4B | dstIP 4B | sport 2B | dport 2B | size 2B |
//                  ttl 1B | proto one-hot 3 | (ts 1, if modeled)]
constexpr std::size_t kByteCols = 4 + 4 + 2 + 2 + 2 + 1;

std::size_t row_dim(bool with_ts) { return kByteCols + 3 + (with_ts ? 1 : 0); }
std::size_t proto_offset() { return kByteCols; }

void encode_packet(const net::PacketRecord& p, bool with_ts, double t0,
                   double t_span, double* out) {
  std::size_t at = 0;
  auto put = [&](const std::vector<double>& v) {
    std::copy(v.begin(), v.end(), out + at);
    at += v.size();
  };
  put(embed::ip_to_bytes(p.key.src_ip));
  put(embed::ip_to_bytes(p.key.dst_ip));
  put(embed::port_to_bytes(p.key.src_port));
  put(embed::port_to_bytes(p.key.dst_port));
  put({static_cast<double>(p.size >> 8) / 255.0,
       static_cast<double>(p.size & 0xff) / 255.0});
  out[at++] = static_cast<double>(p.ttl) / 255.0;
  const std::size_t pidx = p.key.protocol == net::Protocol::kTcp   ? 0
                           : p.key.protocol == net::Protocol::kUdp ? 1
                                                                   : 2;
  out[at + pidx] = 1.0;
  at += 3;
  if (with_ts) {
    out[at] = std::clamp((p.timestamp - t0) / t_span, 0.0, 1.0);
  }
}

net::PacketRecord decode_packet(const double* in, bool with_ts, double t0,
                                double t_span) {
  net::PacketRecord p;
  std::size_t at = 0;
  p.key.src_ip = embed::bytes_to_ip(std::span<const double>(in + at, 4));
  at += 4;
  p.key.dst_ip = embed::bytes_to_ip(std::span<const double>(in + at, 4));
  at += 4;
  p.key.src_port = embed::bytes_to_port(std::span<const double>(in + at, 2));
  at += 2;
  p.key.dst_port = embed::bytes_to_port(std::span<const double>(in + at, 2));
  at += 2;
  const auto hi = static_cast<std::uint32_t>(
      std::lround(std::clamp(in[at], 0.0, 1.0) * 255.0));
  const auto lo = static_cast<std::uint32_t>(
      std::lround(std::clamp(in[at + 1], 0.0, 1.0) * 255.0));
  at += 2;
  p.ttl = static_cast<std::uint8_t>(
      std::clamp(std::round(in[at] * 255.0), 1.0, 255.0));
  ++at;
  const std::size_t pidx =
      embed::one_hot_decode(std::span<const double>(in + at, 3));
  p.key.protocol = pidx == 0   ? net::Protocol::kTcp
                   : pidx == 1 ? net::Protocol::kUdp
                               : net::Protocol::kIcmp;
  at += 3;
  p.size = std::clamp<std::uint32_t>((hi << 8) | lo,
                                     net::min_packet_size(p.key.protocol),
                                     net::kMaxPacketSize);
  if (p.key.protocol == net::Protocol::kIcmp) {
    p.key.src_port = 0;
    p.key.dst_port = 0;
  }
  if (with_ts) {
    p.timestamp = t0 + std::clamp(in[at], 0.0, 1.0) * t_span;
  }
  return p;
}

std::vector<OutputSegment> row_segments(bool with_ts) {
  std::vector<OutputSegment> s{{OutputSegment::Kind::kSigmoid, kByteCols},
                               {OutputSegment::Kind::kSoftmax, 3}};
  if (with_ts) s.push_back({OutputSegment::Kind::kSigmoid, 1});
  return s;
}

}  // namespace

BytePacketGan::BytePacketGan(PacketGanKind kind, PacketGanConfig config,
                             std::uint64_t seed)
    : kind_(kind), config_(config), seed_(seed) {}

std::string BytePacketGan::name() const {
  switch (kind_) {
    case PacketGanKind::kPacGan:
      return "PAC-GAN";
    case PacketGanKind::kPacketCgan:
      return "PacketCGAN";
    case PacketGanKind::kFlowWgan:
      return "Flow-WGAN";
  }
  return "?";
}

void BytePacketGan::fit(const net::PacketTrace& trace) {
  if (trace.empty()) throw std::invalid_argument("BytePacketGan::fit: empty");
  const bool with_ts = models_timestamps();

  // Timestamp models.
  double sum = 0.0, sq = 0.0;
  double lo = trace.packets.front().timestamp, hi = lo;
  for (const auto& p : trace.packets) {
    sum += p.timestamp;
    sq += p.timestamp * p.timestamp;
    lo = std::min(lo, p.timestamp);
    hi = std::max(hi, p.timestamp);
  }
  const double n = static_cast<double>(trace.size());
  ts_mean_ = sum / n;
  ts_std_ = std::sqrt(std::max(1e-12, sq / n - ts_mean_ * ts_mean_));
  t0_ = lo;
  t_span_ = std::max(1e-9, hi - lo);

  Matrix rows(trace.size(), row_dim(with_ts));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    encode_packet(trace.packets[i], with_ts, t0_, t_span_, rows.row_ptr(i));
  }

  TabularGanConfig gcfg = config_.gan;
  if (kind_ == PacketGanKind::kPacketCgan) {
    gcfg.condition = {{proto_offset(), 3}};
  }
  if (kind_ == PacketGanKind::kFlowWgan) {
    gcfg.weight_clip = true;
  }
  gan_ = std::make_unique<TabularGan>(row_segments(with_ts), gcfg, seed_ + 1);
  gan_->fit(rows);
}

net::PacketTrace BytePacketGan::generate(std::size_t n, Rng& rng) {
  if (!gan_) throw std::logic_error("BytePacketGan::generate: fit first");
  const bool with_ts = models_timestamps();
  const Matrix rows = gan_->sample(n, rng);
  net::PacketTrace out;
  out.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::PacketRecord p = decode_packet(rows.row_ptr(i), with_ts, t0_, t_span_);
    if (!with_ts) {
      // PAC-GAN: timestamp sampled from the fitted Gaussian, out-of-band.
      p.timestamp = std::max(0.0, rng.normal(ts_mean_, ts_std_));
    }
    out.packets.push_back(p);
  }
  out.sort_by_time();
  return out;
}

double BytePacketGan::train_cpu_seconds() const {
  return gan_ ? gan_->train_cpu_seconds() : 0.0;
}

std::unique_ptr<PacketSynthesizer> make_pac_gan(PacketGanConfig config,
                                                std::uint64_t seed) {
  return std::make_unique<BytePacketGan>(PacketGanKind::kPacGan, config, seed);
}
std::unique_ptr<PacketSynthesizer> make_packet_cgan(PacketGanConfig config,
                                                    std::uint64_t seed) {
  return std::make_unique<BytePacketGan>(PacketGanKind::kPacketCgan, config,
                                         seed);
}
std::unique_ptr<PacketSynthesizer> make_flow_wgan(PacketGanConfig config,
                                                  std::uint64_t seed) {
  return std::make_unique<BytePacketGan>(PacketGanKind::kFlowWgan, config, seed);
}

}  // namespace netshare::gan
