// CTGAN baseline (Xu et al. 2019), adapted to header traces exactly as the
// paper does (Sec. 6.1): IPs and ports bit-encoded with each bit a 2-class
// categorical, other fields encoded by type (continuous via CTGAN's
// mode-specific normalization, categoricals one-hot), conditional-vector
// training on the protocol column.
//
// Being a per-record tabular model, it reproduces the baseline pathologies
// the paper documents: no multi-packet flows (C1) and poor large-support
// fields under min-max-style normalization (C2).
#pragma once

#include <vector>

#include "gan/synthesizer.hpp"
#include "gan/tabular_gan.hpp"

namespace netshare::gan {

// CTGAN's mode-specific normalization for one continuous column: k-means
// modes over the training values; a value becomes (mode one-hot, scaled
// offset within the mode).
class ModeNormalizer {
 public:
  ModeNormalizer() = default;

  void fit(const std::vector<double>& values, std::size_t modes, Rng& rng);

  std::size_t width() const { return centers_.size() + 1; }
  // Writes (mode one-hot, offset) into out[0 .. width()).
  void encode(double value, double* out) const;
  double decode(const double* in) const;

  const std::vector<double>& centers() const { return centers_; }

 private:
  std::vector<double> centers_;
  std::vector<double> spreads_;  // per-mode scale (>= epsilon)
};

struct CtganConfig {
  TabularGanConfig gan;
  std::size_t modes = 3;  // modes per continuous column
};

class CtganFlow : public FlowSynthesizer {
 public:
  explicit CtganFlow(CtganConfig config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  std::string name() const override { return "CTGAN"; }
  void fit(const net::FlowTrace& trace) override;
  net::FlowTrace generate(std::size_t n, Rng& rng) override;
  double train_cpu_seconds() const override;

 private:
  CtganConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<TabularGan> gan_;
  ModeNormalizer ts_, dur_, pkts_, bytes_;
};

class CtganPacket : public PacketSynthesizer {
 public:
  explicit CtganPacket(CtganConfig config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  std::string name() const override { return "CTGAN"; }
  void fit(const net::PacketTrace& trace) override;
  net::PacketTrace generate(std::size_t n, Rng& rng) override;
  double train_cpu_seconds() const override;

 private:
  CtganConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<TabularGan> gan_;
  ModeNormalizer ts_, size_;
};

}  // namespace netshare::gan
