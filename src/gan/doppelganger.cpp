#include "gan/doppelganger.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "ml/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::gan {

using ml::Matrix;
using ml::concat_cols_into;
using ml::randn_fill;
using ml::slice_rows_into;
using ml::stack_rows_into;

namespace {
constexpr std::size_t kFlagDims = 2;  // alive / done softmax

void random_rows_into(std::size_t n, std::size_t batch, Rng& rng,
                      std::vector<std::size_t>& rows) {
  rows.resize(batch);
  for (auto& r : rows) {
    r = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
}
}  // namespace

DoppelGanger::DoppelGanger(TimeSeriesSpec spec, DgConfig config,
                           std::uint64_t seed)
    : spec_(std::move(spec)), config_(config), seed_(seed), rng_(seed) {
  const std::size_t A = spec_.attribute_dim();
  const std::size_t F = spec_.feature_dim();
  const std::size_t step_dim = F + kFlagDims;
  const std::size_t T = spec_.max_len;
  const std::size_t disc_in = A + T * step_dim;

  // Attribute generator MLP with a mixed head matching the attribute layout.
  std::vector<std::size_t> attr_dims{config_.attr_noise_dim};
  attr_dims.insert(attr_dims.end(), config_.attr_hidden.begin(),
                   config_.attr_hidden.end());
  attr_dims.push_back(A);
  attr_gen_ = std::make_unique<ml::Mlp>(attr_dims, ml::Activation::kRelu,
                                        spec_.attribute_segments, rng_);

  rnn_ = std::make_unique<ml::Gru>(config_.feat_noise_dim + A,
                                   config_.rnn_hidden, rng_);
  out_linear_ =
      std::make_unique<ml::Linear>(config_.rnn_hidden, step_dim, rng_);
  std::vector<ml::OutputSegment> out_segments = spec_.feature_segments;
  out_segments.push_back({ml::OutputSegment::Kind::kSoftmax, kFlagDims});
  out_head_ = std::make_unique<ml::MixedHead>(std::move(out_segments));

  std::vector<std::size_t> disc_dims{disc_in};
  disc_dims.insert(disc_dims.end(), config_.disc_hidden.begin(),
                   config_.disc_hidden.end());
  disc_dims.push_back(1);
  disc_ = std::make_unique<ml::Mlp>(disc_dims, ml::Activation::kLeakyRelu, rng_);

  std::vector<std::size_t> aux_dims{A};
  aux_dims.insert(aux_dims.end(), config_.aux_hidden.begin(),
                  config_.aux_hidden.end());
  aux_dims.push_back(1);
  aux_disc_ =
      std::make_unique<ml::Mlp>(aux_dims, ml::Activation::kLeakyRelu, rng_);

  g_opt_ = std::make_unique<ml::Adam>(generator_params(), config_.lr);
  d_opt_ = std::make_unique<ml::Adam>(discriminator_params(), config_.lr);
  if (config_.dp) {
    dp_agg_ = std::make_unique<privacy::DpSgdAggregator>(discriminator_params(),
                                                         config_.dp_config);
  }
}

std::vector<ml::Parameter*> DoppelGanger::generator_params() {
  std::vector<ml::Parameter*> params = attr_gen_->parameters();
  for (ml::Parameter* p : rnn_->parameters()) params.push_back(p);
  for (ml::Parameter* p : out_linear_->parameters()) params.push_back(p);
  return params;
}

std::vector<ml::Parameter*> DoppelGanger::discriminator_params() {
  std::vector<ml::Parameter*> params = disc_->parameters();
  for (ml::Parameter* p : aux_disc_->parameters()) params.push_back(p);
  return params;
}

std::vector<ml::Parameter*> DoppelGanger::all_params() {
  std::vector<ml::Parameter*> params = generator_params();
  for (ml::Parameter* p : discriminator_params()) params.push_back(p);
  return params;
}

std::size_t DoppelGanger::flag_offset() const { return spec_.feature_dim(); }

void DoppelGanger::generator_forward(std::size_t batch, Rng& rng,
                                     GenOutput& out) {
  const std::size_t T = spec_.max_len;
  Matrix& za = ws_.get(batch, config_.attr_noise_dim);
  randn_fill(za, rng);
  zts_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    zts_[t].resize(batch, config_.feat_noise_dim);
    randn_fill(zts_[t], rng);
  }
  generator_tail(za, out);
}

void DoppelGanger::generator_tail(const Matrix& za, GenOutput& out) {
  const std::size_t T = spec_.max_len;
  const std::size_t batch = za.rows();
  out.attributes = attr_gen_->forward(za);

  xs_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    concat_cols_into(zts_[t], out.attributes, xs_[t]);
  }
  const std::vector<Matrix>& hs = rnn_->forward(xs_);
  Matrix& stacked = ws_.get(T * batch, rnn_->hidden_dim());
  stack_rows_into(hs, stacked);  // [T*B, H], t-major
  const Matrix& heads = out_head_->forward(out_linear_->forward(stacked));

  out.features.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    slice_rows_into(heads, t * batch, (t + 1) * batch, out.features[t]);
  }
}

void DoppelGanger::generator_backward(
    const Matrix& attr_grad, const std::vector<Matrix>& feature_grads) {
  const std::size_t T = spec_.max_len;
  const std::size_t batch = attr_grad.rows();
  const std::size_t A = spec_.attribute_dim();
  Matrix& g_stacked = ws_.get(T * batch, feature_grads[0].cols());
  stack_rows_into(feature_grads, g_stacked);  // [T*B, F+2]
  const Matrix& gh = out_linear_->backward(out_head_->backward(g_stacked));

  ghs_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    slice_rows_into(gh, t * batch, (t + 1) * batch, ghs_[t]);
  }
  const std::vector<Matrix>& gxs = rnn_->backward(ghs_);

  // Accumulate the attribute columns of every step's input gradient; same
  // element order (and rounding) as split_cols + operator+=, no temporaries.
  Matrix& attr_total = ws_.get(batch, A);
  attr_total = attr_grad;
  const std::size_t nz = config_.feat_noise_dim;
  for (const Matrix& gx : gxs) {
    for (std::size_t i = 0; i < batch; ++i) {
      const double* src = gx.row_ptr(i) + nz;
      double* dst = attr_total.row_ptr(i);
      for (std::size_t j = 0; j < A; ++j) dst[j] += src[j];
    }
  }
  attr_gen_->backward(attr_total);
}

void DoppelGanger::disc_input_into(const Matrix& attr,
                                   const std::vector<Matrix>& feats,
                                   Matrix& x) const {
  // Direct row assembly: the old concat_cols chain re-copied the growing
  // prefix for every step (O(T^2) bytes); this writes each row once.
  const std::size_t B = attr.rows();
  const std::size_t A = attr.cols();
  std::size_t width = A;
  for (const Matrix& f : feats) width += f.cols();
  x.resize(B, width);
  for (std::size_t i = 0; i < B; ++i) {
    double* dst = x.row_ptr(i);
    const double* asrc = attr.row_ptr(i);
    std::copy(asrc, asrc + A, dst);
    std::size_t at = A;
    for (const Matrix& f : feats) {
      const double* fsrc = f.row_ptr(i);
      std::copy(fsrc, fsrc + f.cols(), dst + at);
      at += f.cols();
    }
  }
}

void DoppelGanger::real_batch_into(const TimeSeriesDataset& data,
                                   const std::vector<std::size_t>& rows,
                                   GenOutput& out) const {
  const std::size_t T = spec_.max_len;
  const std::size_t F = spec_.feature_dim();
  out.attributes.resize(rows.size(), data.attributes.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double* src = data.attributes.row_ptr(rows[i]);
    std::copy(src, src + data.attributes.cols(), out.attributes.row_ptr(i));
  }
  out.features.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    Matrix& step = out.features[t];
    step.resize(rows.size(), F + kFlagDims);
    step.fill(0.0);  // dead steps must read as zero features
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::size_t r = rows[i];
      const bool alive = t < data.lengths[r];
      if (alive && t < data.features.size()) {
        const double* src = data.features[t].row_ptr(r);
        std::copy(src, src + F, step.row_ptr(i));
      }
      step(i, F) = alive ? 1.0 : 0.0;
      step(i, F + 1) = alive ? 0.0 : 1.0;
    }
  }
}

namespace {
// Assembles the two-point Lipschitz-penalty gradient rows for a stacked
// critic output. Rows [p1_begin, p1_begin+B) and [p2_begin, p2_begin+B)
// hold the two interpolates per pair; `pair_dist[i]` is ||x1_i - x2_i||.
void add_lipschitz_grads(const Matrix& scores, std::size_t p1_begin,
                         std::size_t p2_begin, std::size_t batch,
                         const std::vector<double>& pair_dist, double weight,
                         Matrix& grad_out) {
  for (std::size_t i = 0; i < batch; ++i) {
    const double d = std::max(pair_dist[i], 1e-8);
    const double slope = (scores(p1_begin + i, 0) - scores(p2_begin + i, 0)) / d;
    const double excess = std::fabs(slope) - 1.0;
    if (excess > 0.0) {
      const double g = 2.0 * excess * (slope > 0 ? 1.0 : -1.0) * weight /
                       (static_cast<double>(batch) * d);
      grad_out(p1_begin + i, 0) += g;
      grad_out(p2_begin + i, 0) -= g;
    }
  }
}

// Builds per-pair interpolates x1, x2 between matching rows of real/fake.
// Out-params are resized in place (capacity reuse on repeated calls).
void make_interpolates(const Matrix& xr, const Matrix& xf, Rng& rng,
                       Matrix& x1, Matrix& x2, std::vector<double>& dist) {
  const std::size_t batch = xr.rows();
  x1.resize(batch, xr.cols());
  x2.resize(batch, xr.cols());
  dist.assign(batch, 0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    const double e1 = rng.uniform();
    const double e2 = rng.uniform();
    double d2 = 0.0;
    for (std::size_t j = 0; j < xr.cols(); ++j) {
      const double r = xr(i, j), f = xf(i, j);
      x1(i, j) = e1 * r + (1.0 - e1) * f;
      x2(i, j) = e2 * r + (1.0 - e2) * f;
      const double d = x1(i, j) - x2(i, j);
      d2 += d * d;
    }
    dist[i] = std::sqrt(d2);
  }
}
}  // namespace

void DoppelGanger::discriminator_update(const TimeSeriesDataset& data,
                                        Rng& rng) {
  ws_.reset();
  const std::size_t B = std::min(config_.batch_size, data.num_samples());
  random_rows_into(data.num_samples(), B, rng, rows_);
  real_batch_into(data, rows_, real_);
  generator_forward(B, rng, fake_);

  disc_input_into(real_.attributes, real_.features, xr_);
  disc_input_into(fake_.attributes, fake_.features, xf_);
  make_interpolates(xr_, xf_, rng, x1_, x2_, dist_);

  // One batched critic pass over [real; fake; x1; x2].
  Matrix& big = ws_.get(4 * B, xr_.cols());
  stack_rows_into({&xr_, &xf_, &x1_, &x2_}, big);
  disc_->zero_grad();
  const Matrix& scores = disc_->forward(big);
  Matrix& gs = ws_.get(4 * B, 1);
  gs.fill(0.0);
  const double inv_b = 1.0 / static_cast<double>(B);
  for (std::size_t i = 0; i < B; ++i) {
    gs(i, 0) = -inv_b;      // maximize D(real)
    gs(B + i, 0) = inv_b;   // minimize D(fake)
  }
  add_lipschitz_grads(scores, 2 * B, 3 * B, B, dist_, config_.lipschitz_weight,
                      gs);
  // Wasserstein critic estimate, derived from scores already computed for
  // the gradient seed. Always recorded: it doubles as the health guard's
  // divergence signal (a NaN forward pass surfaces here first).
  {
    double real_mean = 0.0, fake_mean = 0.0;
    for (std::size_t i = 0; i < B; ++i) {
      real_mean += scores(i, 0);
      fake_mean += scores(B + i, 0);
    }
    last_d_loss_ = (fake_mean - real_mean) * inv_b;
    TELEM_GAUGE_SET("gan.train.d_loss", last_d_loss_);
  }
  disc_->backward(gs);

  // Auxiliary critic on attributes only.
  make_interpolates(real_.attributes, fake_.attributes, rng, a1_, a2_, adist_);
  Matrix& abig = ws_.get(4 * B, real_.attributes.cols());
  stack_rows_into({&real_.attributes, &fake_.attributes, &a1_, &a2_}, abig);
  aux_disc_->zero_grad();
  const Matrix& ascores = aux_disc_->forward(abig);
  Matrix& gas = ws_.get(4 * B, 1);
  gas.fill(0.0);
  for (std::size_t i = 0; i < B; ++i) {
    gas(i, 0) = -inv_b * config_.aux_weight;
    gas(B + i, 0) = inv_b * config_.aux_weight;
  }
  add_lipschitz_grads(ascores, 2 * B, 3 * B, B, adist_,
                      config_.lipschitz_weight * config_.aux_weight, gas);
  aux_disc_->backward(gas);

  // clip_grad_norm returns the PRE-clip norm; the post-clip norm the guard
  // checks is min(norm, clip) for finite norms and the norm itself when
  // non-finite (clipping is a no-op then, which is exactly the signal).
  const double norm = ml::clip_grad_norm(discriminator_params(),
                                         config_.grad_clip);
  last_d_grad_norm_ = std::min(norm, config_.grad_clip);
  d_opt_->step();
}

void DoppelGanger::discriminator_update_dp(const TimeSeriesDataset& data,
                                           Rng& rng) {
  // One reset for the whole update: xf_all / fake_ stay live through the
  // per-example loop, so the pool must not be recycled inside it (the loop
  // advances the cursors; the pool stabilizes after the first update).
  ws_.reset();
  const std::size_t B = std::min(config_.batch_size, data.num_samples());
  random_rows_into(data.num_samples(), B, rng, rows_);
  generator_forward(B, rng, fake_);
  Matrix& xf_all = ws_.get(B, spec_.attribute_dim() +
                                  spec_.max_len *
                                      (spec_.feature_dim() + kFlagDims));
  disc_input_into(fake_.attributes, fake_.features, xf_all);

  for (ml::Parameter* p : discriminator_params()) p->zero_grad();
  row1_.resize(1);
  for (std::size_t i = 0; i < B; ++i) {
    row1_[0] = rows_[i];
    real_batch_into(data, row1_, real_);
    disc_input_into(real_.attributes, real_.features, xr_);
    slice_rows_into(xf_all, i, i + 1, xf_);
    make_interpolates(xr_, xf_, rng, x1_, x2_, dist_);

    Matrix& big = ws_.get(4, xr_.cols());
    stack_rows_into({&xr_, &xf_, &x1_, &x2_}, big);
    const Matrix& scores = disc_->forward(big);
    Matrix& gs = ws_.get(4, 1);
    gs.fill(0.0);
    gs(0, 0) = -1.0;
    gs(1, 0) = 1.0;
    add_lipschitz_grads(scores, 2, 3, 1, dist_, config_.lipschitz_weight, gs);
    disc_->backward(gs);

    slice_rows_into(fake_.attributes, i, i + 1, fa_row_);
    make_interpolates(real_.attributes, fa_row_, rng, a1_, a2_, adist_);
    Matrix& abig = ws_.get(4, real_.attributes.cols());
    stack_rows_into({&real_.attributes, &fa_row_, &a1_, &a2_}, abig);
    const Matrix& ascores = aux_disc_->forward(abig);
    Matrix& gas = ws_.get(4, 1);
    gas.fill(0.0);
    gas(0, 0) = -config_.aux_weight;
    gas(1, 0) = config_.aux_weight;
    add_lipschitz_grads(ascores, 2, 3, 1, adist_,
                        config_.lipschitz_weight * config_.aux_weight, gas);
    aux_disc_->backward(gas);

    dp_agg_->accumulate_example();
  }
  dp_agg_->finalize_batch(B, rng);
  ++dp_steps_;
  d_opt_->step();
}

void DoppelGanger::generator_update(Rng& rng) {
  ws_.reset();
  const std::size_t B = config_.batch_size;
  generator_forward(B, rng, fake_);
  disc_input_into(fake_.attributes, fake_.features, xf_);

  const Matrix& fscores = disc_->forward(xf_);
  const double inv_b = 1.0 / static_cast<double>(B);
  // Generator objective is to maximize mean D(fake): record -mean as g_loss
  // (health-guard divergence signal as well as a telemetry gauge).
  {
    double fake_mean = 0.0;
    for (std::size_t i = 0; i < B; ++i) fake_mean += fscores(i, 0);
    last_g_loss_ = -fake_mean * inv_b;
    TELEM_GAUGE_SET("gan.train.g_loss", last_g_loss_);
  }
  Matrix& gseed = ws_.get(B, 1);
  gseed.fill(-inv_b);
  const Matrix& gin = disc_->backward(gseed);

  // Split the critic's input gradient into attribute / per-step pieces by
  // direct column copies (same elements as the old split_cols chain, without
  // re-copying the shrinking remainder O(T) times).
  const std::size_t A = spec_.attribute_dim();
  const std::size_t step_dim = spec_.feature_dim() + kFlagDims;
  Matrix& attr_grad = ws_.get(B, A);
  fgrads_.resize(spec_.max_len);
  for (std::size_t t = 0; t < spec_.max_len; ++t) {
    fgrads_[t].resize(B, step_dim);
  }
  for (std::size_t i = 0; i < B; ++i) {
    const double* src = gin.row_ptr(i);
    std::copy(src, src + A, attr_grad.row_ptr(i));
    for (std::size_t t = 0; t < spec_.max_len; ++t) {
      const double* seg = src + A + t * step_dim;
      std::copy(seg, seg + step_dim, fgrads_[t].row_ptr(i));
    }
  }

  aux_disc_->forward(fake_.attributes);
  Matrix& gaseed = ws_.get(B, 1);
  gaseed.fill(-config_.aux_weight * inv_b);
  attr_grad += aux_disc_->backward(gaseed);

  for (ml::Parameter* p : generator_params()) p->zero_grad();
  generator_backward(attr_grad, fgrads_);
  const double norm = ml::clip_grad_norm(generator_params(), config_.grad_clip);
  last_g_grad_norm_ = std::min(norm, config_.grad_clip);
  g_opt_->step();
}

void DoppelGanger::fit(const TimeSeriesDataset& data) {
  fit(data, config_.iterations);
}

void DoppelGanger::fit(const TimeSeriesDataset& data, int iterations) {
  if (data.num_samples() == 0) {
    throw std::invalid_argument("DoppelGanger::fit: empty dataset");
  }
  if (data.features.size() != spec_.max_len) {
    throw std::invalid_argument("DoppelGanger::fit: max_len mismatch");
  }
  const double cpu0 = thread_cpu_seconds();
  Stopwatch wall;
  const ml::health::HealthConfig& hc = config_.health;
  const bool guarded = hc.enabled && iterations > 0;
  if (guarded) {
    if (!monitor_) {
      monitor_ = std::make_unique<ml::health::HealthMonitor>(hc, all_params(),
                                                             seed_);
    }
    // The entry state (fresh init or a restored warm start) is the step-0
    // rollback target; a fine-tune that diverges immediately falls back to
    // the seed weights it started from.
    monitor_->begin_run();
    g_opt_->set_lr(config_.lr);
    d_opt_->set_lr(config_.lr);
  }
  int attempt = 0;
  int it = 0;
  while (it < iterations) {
    for (int d = 0; d < config_.d_steps_per_g; ++d) {
      if (config_.dp) {
        discriminator_update_dp(data, rng_);
      } else {
        discriminator_update(data, rng_);
      }
    }
    generator_update(rng_);
    ++it;
    TELEM_COUNT("gan.train.iterations");
    if (!guarded) continue;
    monitor_->maybe_inject(it);
    if (monitor_->check_due(it) || it == iterations) {
      const bool healthy = monitor_->check(it, last_d_loss_, last_g_loss_,
                                           last_d_grad_norm_,
                                           last_g_grad_norm_);
      if (healthy) {
        if (monitor_->checkpoint_due(it)) monitor_->checkpoint(it);
        continue;
      }
      TELEM_DIAG(::netshare::telemetry::Severity::kWarn, "gan.health.diverged",
                 "training diverged (%s), attempt %d/%d",
                 monitor_->stats().last_issue.c_str(), attempt + 1,
                 hc.max_retries);
      if (attempt >= hc.max_retries) {
        throw ml::health::TrainingDivergedError(
            "DoppelGanger::fit: training diverged (" +
            monitor_->stats().last_issue + ") and stayed diverged after " +
            std::to_string(attempt) + " rollback retries");
      }
      ++attempt;
      // Rollback-and-retry: restore the last healthy parameters, then
      // perturb the recovery — fresh Adam moments (the old ones are
      // poisoned by the bad gradients), a backed-off learning rate, and a
      // reseeded noise stream so the retry takes a different trajectory.
      it = static_cast<int>(monitor_->rollback());
      g_opt_->reset_state();
      d_opt_->reset_state();
      const double lr =
          config_.lr * std::pow(hc.lr_backoff, static_cast<double>(attempt));
      g_opt_->set_lr(lr);
      d_opt_->set_lr(lr);
      rng_ = Rng(mix_seed(seed_, 0x52455452u + static_cast<std::uint64_t>(
                                                   attempt)));
    }
  }
  if (telemetry::kCompiledIn && telemetry::enabled() && iterations > 0) {
    const double secs = wall.seconds();
    if (secs > 0.0) TELEM_GAUGE_SET("gan.train.iters_per_sec", iterations / secs);
  }
  train_cpu_seconds_ += thread_cpu_seconds() - cpu0;
}

GeneratedSeries DoppelGanger::sample(std::size_t n, Rng& rng) {
  GeneratedSeries out;
  sample_into(n, rng.engine()(), 0, out);
  return out;
}

Matrix& DoppelGanger::stage_attr_noise(std::size_t b,
                                       std::uint64_t stream_seed,
                                       std::size_t first_series) {
  // Stage each series' noise from its own counter-based stream, in the
  // fixed draw order (attribute noise, then z_t per step): row i's noise
  // depends only on stream_seed and its global series index, never on the
  // batch it landed in.
  Matrix& za = ws_.get(b, config_.attr_noise_dim);
  samp_noise_.clear();
  samp_noise_.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    samp_noise_.emplace_back(stream_seed, first_series + i);
    double* zrow = za.row_ptr(i);
    for (std::size_t j = 0; j < config_.attr_noise_dim; ++j) {
      zrow[j] = samp_noise_.back().normal();
    }
  }
  return za;
}

void DoppelGanger::sample_into(std::size_t n, std::uint64_t stream_seed,
                               std::size_t first_series, GeneratedSeries& out) {
  TELEM_SPAN("gan.sample", {"series", static_cast<long long>(n)});
  const std::size_t T = spec_.max_len;
  const std::size_t F = spec_.feature_dim();
  const std::size_t A = spec_.attribute_dim();
  const std::size_t H = rnn_->hidden_dim();
  const std::size_t Z = config_.feat_noise_dim;
  out.spec = spec_;
  out.attributes.resize(n, A);
  out.features.resize(T);
  for (Matrix& step : out.features) {
    step.resize(n, F);
    step.fill(0.0);  // rows beyond a series' length read as zero
  }
  out.lengths.assign(n, T);

  std::size_t done = 0;
  while (done < n) {
    const std::size_t b = std::min(config_.batch_size, n - done);
    ws_.reset();
    Matrix& za = stage_attr_noise(b, stream_seed, first_series + done);
    const Matrix& attr = attr_gen_->forward(za);
    for (std::size_t i = 0; i < b; ++i) {
      const double* asrc = attr.row_ptr(i);
      std::copy(asrc, asrc + A, out.attributes.row_ptr(done + i));
    }

    // Length-adaptive unroll: step the RNN one step at a time over the live
    // sub-batch only. Row j of samp_h_/samp_attr_ belongs to series
    // live_[j]; a series whose alive flag drops below 0.5 is emitted with
    // length max(1, t) — the same rule the reference full unroll applies
    // after the fact — and leaves the batch. Every kernel in the step
    // (fused GRU gates, linear, MixedHead) is row-wise, so dropping dead
    // rows never changes the surviving rows' values, and the output stays
    // bitwise identical to sample_reference_into.
    samp_attr_ = attr;
    samp_h_.resize(b, H);
    samp_h_.fill(0.0);
    live_.resize(b);
    for (std::size_t i = 0; i < b; ++i) live_[i] = i;

    for (std::size_t t = 0; t < T && !live_.empty(); ++t) {
      const std::size_t m = live_.size();
      // Live sub-batch size: how much the length-adaptive compaction shrinks
      // the step's work relative to the full unroll's constant b rows.
      TELEM_GAUGE_SET("gan.sample.live_rows", m);
      // Gather [z_t | attr] rows, matching generator_tail's concat layout.
      // z_t is drawn lazily, only for series still alive at this step: each
      // series' stream is private and its draw order fixed, so skipping the
      // dead series' later draws never changes the values live series see.
      samp_x_.resize(m, Z + A);
      for (std::size_t j = 0; j < m; ++j) {
        double* xrow = samp_x_.row_ptr(j);
        NoiseStream& ns = samp_noise_[live_[j]];
        for (std::size_t q = 0; q < Z; ++q) xrow[q] = ns.normal();
        const double* asrc = samp_attr_.row_ptr(j);
        std::copy(asrc, asrc + A, xrow + Z);
      }
      rnn_->step_into(samp_x_, samp_h_, samp_h_next_);
      const Matrix& y = out_head_->forward(out_linear_->forward(samp_h_next_));

      // Shape the compacted buffers before filling them (samp_h_'s h_{t-1}
      // contents were consumed by step_into above).
      std::size_t k = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (y(j, F) >= 0.5) ++k;
      }
      samp_h_.resize(k, H);
      samp_attr_next_.resize(k, A);
      std::size_t w = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t row = done + live_[j];
        const double* ysrc = y.row_ptr(j);
        if (ysrc[F] >= 0.5) {
          std::copy(ysrc, ysrc + F, out.features[t].row_ptr(row));
          const double* hsrc = samp_h_next_.row_ptr(j);
          std::copy(hsrc, hsrc + H, samp_h_.row_ptr(w));
          std::copy(samp_attr_.row_ptr(j), samp_attr_.row_ptr(j) + A,
                    samp_attr_next_.row_ptr(w));
          live_[w] = live_[j];
          ++w;
        } else {
          out.lengths[row] = std::max<std::size_t>(1, t);
          if (t == 0) {  // length is clamped to 1, so step 0 is still emitted
            std::copy(ysrc, ysrc + F, out.features[0].row_ptr(row));
          }
        }
      }
      live_.resize(k);
      std::swap(samp_attr_, samp_attr_next_);
    }
    done += b;
  }
  if (telemetry::kCompiledIn && telemetry::enabled()) {
    for (const std::size_t len : out.lengths) {
      TELEM_HIST("gan.sample.emitted_len", len, 1, 2, 4, 8, 16, 32, 64, 128);
    }
  }
}

void DoppelGanger::sample_reference_into(std::size_t n,
                                         std::uint64_t stream_seed,
                                         std::size_t first_series,
                                         GeneratedSeries& out) {
  const std::size_t T = spec_.max_len;
  const std::size_t F = spec_.feature_dim();
  out.spec = spec_;
  out.attributes.resize(n, spec_.attribute_dim());
  out.features.resize(T);
  for (Matrix& step : out.features) {
    step.resize(n, F);
    step.fill(0.0);  // rows beyond a series' length read as zero
  }
  out.lengths.assign(n, T);

  std::size_t done = 0;
  while (done < n) {
    const std::size_t b = std::min(config_.batch_size, n - done);
    ws_.reset();
    Matrix& za = stage_attr_noise(b, stream_seed, first_series + done);
    zts_.resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      zts_[t].resize(b, config_.feat_noise_dim);
    }
    for (std::size_t i = 0; i < b; ++i) {
      NoiseStream& ns = samp_noise_[i];
      for (std::size_t t = 0; t < T; ++t) {
        double* trow = zts_[t].row_ptr(i);
        for (std::size_t j = 0; j < config_.feat_noise_dim; ++j) {
          trow[j] = ns.normal();
        }
      }
    }
    generator_tail(za, fake_);
    const GenOutput& gen = fake_;
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t row = done + i;
      const double* asrc = gen.attributes.row_ptr(i);
      std::copy(asrc, asrc + spec_.attribute_dim(), out.attributes.row_ptr(row));
      // Length = first step whose alive-flag probability drops below 0.5.
      std::size_t len = T;
      for (std::size_t t = 0; t < T; ++t) {
        if (gen.features[t](i, F) < 0.5) {
          len = std::max<std::size_t>(1, t);
          break;
        }
      }
      out.lengths[row] = len;
      for (std::size_t t = 0; t < len; ++t) {
        const double* fsrc = gen.features[t].row_ptr(i);
        std::copy(fsrc, fsrc + F, out.features[t].row_ptr(row));
      }
    }
    done += b;
  }
}

std::vector<double> DoppelGanger::snapshot() {
  std::vector<ml::Parameter*> all = generator_params();
  for (ml::Parameter* p : discriminator_params()) all.push_back(p);
  return ml::snapshot_parameters(all);
}

void DoppelGanger::restore(const std::vector<double>& snapshot) {
  std::vector<ml::Parameter*> all = generator_params();
  for (ml::Parameter* p : discriminator_params()) all.push_back(p);
  ml::restore_parameters(all, snapshot);
}

}  // namespace netshare::gan
