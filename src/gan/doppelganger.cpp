#include "gan/doppelganger.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "ml/serialize.hpp"

namespace netshare::gan {

using ml::Matrix;
using ml::concat_cols;
using ml::slice_rows;
using ml::split_cols;
using ml::stack_rows;

namespace {
constexpr std::size_t kFlagDims = 2;  // alive / done softmax

std::vector<std::size_t> random_rows(std::size_t n, std::size_t batch,
                                     Rng& rng) {
  std::vector<std::size_t> rows(batch);
  for (auto& r : rows) {
    r = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
  return rows;
}
}  // namespace

DoppelGanger::DoppelGanger(TimeSeriesSpec spec, DgConfig config,
                           std::uint64_t seed)
    : spec_(std::move(spec)), config_(config), rng_(seed) {
  const std::size_t A = spec_.attribute_dim();
  const std::size_t F = spec_.feature_dim();
  const std::size_t step_dim = F + kFlagDims;
  const std::size_t T = spec_.max_len;
  const std::size_t disc_in = A + T * step_dim;

  // Attribute generator MLP with a mixed head matching the attribute layout.
  std::vector<std::size_t> attr_dims{config_.attr_noise_dim};
  attr_dims.insert(attr_dims.end(), config_.attr_hidden.begin(),
                   config_.attr_hidden.end());
  attr_dims.push_back(A);
  attr_gen_ = std::make_unique<ml::Mlp>(attr_dims, ml::Activation::kRelu,
                                        spec_.attribute_segments, rng_);

  rnn_ = std::make_unique<ml::Gru>(config_.feat_noise_dim + A,
                                   config_.rnn_hidden, rng_);
  out_linear_ =
      std::make_unique<ml::Linear>(config_.rnn_hidden, step_dim, rng_);
  std::vector<ml::OutputSegment> out_segments = spec_.feature_segments;
  out_segments.push_back({ml::OutputSegment::Kind::kSoftmax, kFlagDims});
  out_head_ = std::make_unique<ml::MixedHead>(std::move(out_segments));

  std::vector<std::size_t> disc_dims{disc_in};
  disc_dims.insert(disc_dims.end(), config_.disc_hidden.begin(),
                   config_.disc_hidden.end());
  disc_dims.push_back(1);
  disc_ = std::make_unique<ml::Mlp>(disc_dims, ml::Activation::kLeakyRelu, rng_);

  std::vector<std::size_t> aux_dims{A};
  aux_dims.insert(aux_dims.end(), config_.aux_hidden.begin(),
                  config_.aux_hidden.end());
  aux_dims.push_back(1);
  aux_disc_ =
      std::make_unique<ml::Mlp>(aux_dims, ml::Activation::kLeakyRelu, rng_);

  g_opt_ = std::make_unique<ml::Adam>(generator_params(), config_.lr);
  d_opt_ = std::make_unique<ml::Adam>(discriminator_params(), config_.lr);
  if (config_.dp) {
    dp_agg_ = std::make_unique<privacy::DpSgdAggregator>(discriminator_params(),
                                                         config_.dp_config);
  }
}

std::vector<ml::Parameter*> DoppelGanger::generator_params() {
  std::vector<ml::Parameter*> params = attr_gen_->parameters();
  for (ml::Parameter* p : rnn_->parameters()) params.push_back(p);
  for (ml::Parameter* p : out_linear_->parameters()) params.push_back(p);
  return params;
}

std::vector<ml::Parameter*> DoppelGanger::discriminator_params() {
  std::vector<ml::Parameter*> params = disc_->parameters();
  for (ml::Parameter* p : aux_disc_->parameters()) params.push_back(p);
  return params;
}

std::size_t DoppelGanger::flag_offset() const { return spec_.feature_dim(); }

DoppelGanger::GenOutput DoppelGanger::generator_forward(std::size_t batch,
                                                        Rng& rng) {
  const std::size_t T = spec_.max_len;
  GenOutput out;
  Matrix za = Matrix::randn(batch, config_.attr_noise_dim, rng);
  out.attributes = attr_gen_->forward(za);

  std::vector<Matrix> xs;
  xs.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    Matrix zt = Matrix::randn(batch, config_.feat_noise_dim, rng);
    xs.push_back(concat_cols(zt, out.attributes));
  }
  const std::vector<Matrix> hs = rnn_->forward(xs);
  Matrix stacked = stack_rows(hs);  // [T*B, H], t-major
  Matrix heads = out_head_->forward(out_linear_->forward(stacked));

  out.features.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    out.features.push_back(slice_rows(heads, t * batch, (t + 1) * batch));
  }
  return out;
}

void DoppelGanger::generator_backward(
    const Matrix& attr_grad, const std::vector<Matrix>& feature_grads) {
  const std::size_t T = spec_.max_len;
  const std::size_t batch = attr_grad.rows();
  Matrix g_stacked = stack_rows(feature_grads);  // [T*B, F+2]
  Matrix gh = out_linear_->backward(out_head_->backward(g_stacked));

  std::vector<Matrix> ghs;
  ghs.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    ghs.push_back(slice_rows(gh, t * batch, (t + 1) * batch));
  }
  const std::vector<Matrix> gxs = rnn_->backward(ghs);

  Matrix attr_total = attr_grad;
  for (const Matrix& gx : gxs) {
    auto [gz, ga] = split_cols(gx, config_.feat_noise_dim);
    (void)gz;
    attr_total += ga;
  }
  attr_gen_->backward(attr_total);
}

Matrix DoppelGanger::disc_input(const Matrix& attr,
                                const std::vector<Matrix>& feats) const {
  Matrix x = attr;
  for (const Matrix& f : feats) x = concat_cols(x, f);
  return x;
}

DoppelGanger::GenOutput DoppelGanger::real_batch(
    const TimeSeriesDataset& data, const std::vector<std::size_t>& rows) const {
  const std::size_t T = spec_.max_len;
  const std::size_t F = spec_.feature_dim();
  GenOutput out;
  out.attributes = Matrix(rows.size(), data.attributes.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double* src = data.attributes.row_ptr(rows[i]);
    std::copy(src, src + data.attributes.cols(), out.attributes.row_ptr(i));
  }
  out.features.assign(T, Matrix(rows.size(), F + kFlagDims));
  for (std::size_t t = 0; t < T; ++t) {
    Matrix& step = out.features[t];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::size_t r = rows[i];
      const bool alive = t < data.lengths[r];
      if (alive && t < data.features.size()) {
        const double* src = data.features[t].row_ptr(r);
        std::copy(src, src + F, step.row_ptr(i));
      }
      step(i, F) = alive ? 1.0 : 0.0;
      step(i, F + 1) = alive ? 0.0 : 1.0;
    }
  }
  return out;
}

namespace {
// Assembles the two-point Lipschitz-penalty gradient rows for a stacked
// critic output. Rows [p1_begin, p1_begin+B) and [p2_begin, p2_begin+B)
// hold the two interpolates per pair; `pair_dist[i]` is ||x1_i - x2_i||.
void add_lipschitz_grads(const Matrix& scores, std::size_t p1_begin,
                         std::size_t p2_begin, std::size_t batch,
                         const std::vector<double>& pair_dist, double weight,
                         Matrix& grad_out) {
  for (std::size_t i = 0; i < batch; ++i) {
    const double d = std::max(pair_dist[i], 1e-8);
    const double slope = (scores(p1_begin + i, 0) - scores(p2_begin + i, 0)) / d;
    const double excess = std::fabs(slope) - 1.0;
    if (excess > 0.0) {
      const double g = 2.0 * excess * (slope > 0 ? 1.0 : -1.0) * weight /
                       (static_cast<double>(batch) * d);
      grad_out(p1_begin + i, 0) += g;
      grad_out(p2_begin + i, 0) -= g;
    }
  }
}

// Builds per-pair interpolates x1, x2 between matching rows of real/fake.
void make_interpolates(const Matrix& xr, const Matrix& xf, Rng& rng,
                       Matrix& x1, Matrix& x2, std::vector<double>& dist) {
  const std::size_t batch = xr.rows();
  x1 = Matrix(batch, xr.cols());
  x2 = Matrix(batch, xr.cols());
  dist.assign(batch, 0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    const double e1 = rng.uniform();
    const double e2 = rng.uniform();
    double d2 = 0.0;
    for (std::size_t j = 0; j < xr.cols(); ++j) {
      const double r = xr(i, j), f = xf(i, j);
      x1(i, j) = e1 * r + (1.0 - e1) * f;
      x2(i, j) = e2 * r + (1.0 - e2) * f;
      const double d = x1(i, j) - x2(i, j);
      d2 += d * d;
    }
    dist[i] = std::sqrt(d2);
  }
}
}  // namespace

void DoppelGanger::discriminator_update(const TimeSeriesDataset& data,
                                        Rng& rng) {
  const std::size_t B = std::min(config_.batch_size, data.num_samples());
  const auto rows = random_rows(data.num_samples(), B, rng);
  GenOutput real = real_batch(data, rows);
  GenOutput fake = generator_forward(B, rng);

  const Matrix xr = disc_input(real.attributes, real.features);
  const Matrix xf = disc_input(fake.attributes, fake.features);
  Matrix x1, x2;
  std::vector<double> dist;
  make_interpolates(xr, xf, rng, x1, x2, dist);

  // One batched critic pass over [real; fake; x1; x2].
  Matrix big = stack_rows({xr, xf, x1, x2});
  disc_->zero_grad();
  const Matrix scores = disc_->forward(big);
  Matrix gs(4 * B, 1);
  const double inv_b = 1.0 / static_cast<double>(B);
  for (std::size_t i = 0; i < B; ++i) {
    gs(i, 0) = -inv_b;      // maximize D(real)
    gs(B + i, 0) = inv_b;   // minimize D(fake)
  }
  add_lipschitz_grads(scores, 2 * B, 3 * B, B, dist, config_.lipschitz_weight,
                      gs);
  disc_->backward(gs);

  // Auxiliary critic on attributes only.
  Matrix a1, a2;
  std::vector<double> adist;
  make_interpolates(real.attributes, fake.attributes, rng, a1, a2, adist);
  Matrix abig = stack_rows({real.attributes, fake.attributes, a1, a2});
  aux_disc_->zero_grad();
  const Matrix ascores = aux_disc_->forward(abig);
  Matrix gas(4 * B, 1);
  for (std::size_t i = 0; i < B; ++i) {
    gas(i, 0) = -inv_b * config_.aux_weight;
    gas(B + i, 0) = inv_b * config_.aux_weight;
  }
  add_lipschitz_grads(ascores, 2 * B, 3 * B, B, adist,
                      config_.lipschitz_weight * config_.aux_weight, gas);
  aux_disc_->backward(gas);

  ml::clip_grad_norm(discriminator_params(), config_.grad_clip);
  d_opt_->step();
}

void DoppelGanger::discriminator_update_dp(const TimeSeriesDataset& data,
                                           Rng& rng) {
  const std::size_t B = std::min(config_.batch_size, data.num_samples());
  const auto rows = random_rows(data.num_samples(), B, rng);
  GenOutput fake = generator_forward(B, rng);
  const Matrix xf_all = disc_input(fake.attributes, fake.features);

  for (ml::Parameter* p : discriminator_params()) p->zero_grad();
  for (std::size_t i = 0; i < B; ++i) {
    GenOutput real = real_batch(data, {rows[i]});
    const Matrix xr = disc_input(real.attributes, real.features);
    const Matrix xf = slice_rows(xf_all, i, i + 1);
    Matrix x1, x2;
    std::vector<double> dist;
    make_interpolates(xr, xf, rng, x1, x2, dist);

    Matrix big = stack_rows({xr, xf, x1, x2});
    const Matrix scores = disc_->forward(big);
    Matrix gs(4, 1);
    gs(0, 0) = -1.0;
    gs(1, 0) = 1.0;
    add_lipschitz_grads(scores, 2, 3, 1, dist, config_.lipschitz_weight, gs);
    disc_->backward(gs);

    Matrix a1, a2;
    std::vector<double> adist;
    make_interpolates(real.attributes, slice_rows(fake.attributes, i, i + 1),
                      rng, a1, a2, adist);
    Matrix abig = stack_rows({real.attributes,
                              slice_rows(fake.attributes, i, i + 1), a1, a2});
    const Matrix ascores = aux_disc_->forward(abig);
    Matrix gas(4, 1);
    gas(0, 0) = -config_.aux_weight;
    gas(1, 0) = config_.aux_weight;
    add_lipschitz_grads(ascores, 2, 3, 1, adist,
                        config_.lipschitz_weight * config_.aux_weight, gas);
    aux_disc_->backward(gas);

    dp_agg_->accumulate_example();
  }
  dp_agg_->finalize_batch(B, rng);
  ++dp_steps_;
  d_opt_->step();
}

void DoppelGanger::generator_update(Rng& rng) {
  const std::size_t B = config_.batch_size;
  GenOutput fake = generator_forward(B, rng);
  const Matrix xf = disc_input(fake.attributes, fake.features);

  disc_->forward(xf);
  const double inv_b = 1.0 / static_cast<double>(B);
  Matrix gin = disc_->backward(Matrix(B, 1, -inv_b));

  // Split the critic's input gradient into attribute / per-step pieces.
  auto [attr_grad, rest] = split_cols(gin, spec_.attribute_dim());
  const std::size_t step_dim = spec_.feature_dim() + kFlagDims;
  std::vector<Matrix> fgrads;
  fgrads.reserve(spec_.max_len);
  Matrix remaining = rest;
  for (std::size_t t = 0; t < spec_.max_len; ++t) {
    auto [head, tail] = split_cols(remaining, step_dim);
    fgrads.push_back(std::move(head));
    remaining = std::move(tail);
  }

  aux_disc_->forward(fake.attributes);
  Matrix ga = aux_disc_->backward(Matrix(B, 1, -config_.aux_weight * inv_b));
  attr_grad += ga;

  for (ml::Parameter* p : generator_params()) p->zero_grad();
  generator_backward(attr_grad, fgrads);
  ml::clip_grad_norm(generator_params(), config_.grad_clip);
  g_opt_->step();
}

void DoppelGanger::fit(const TimeSeriesDataset& data) {
  fit(data, config_.iterations);
}

void DoppelGanger::fit(const TimeSeriesDataset& data, int iterations) {
  if (data.num_samples() == 0) {
    throw std::invalid_argument("DoppelGanger::fit: empty dataset");
  }
  if (data.features.size() != spec_.max_len) {
    throw std::invalid_argument("DoppelGanger::fit: max_len mismatch");
  }
  const double cpu0 = thread_cpu_seconds();
  for (int it = 0; it < iterations; ++it) {
    for (int d = 0; d < config_.d_steps_per_g; ++d) {
      if (config_.dp) {
        discriminator_update_dp(data, rng_);
      } else {
        discriminator_update(data, rng_);
      }
    }
    generator_update(rng_);
  }
  train_cpu_seconds_ += thread_cpu_seconds() - cpu0;
}

GeneratedSeries DoppelGanger::sample(std::size_t n, Rng& rng) {
  const std::size_t T = spec_.max_len;
  const std::size_t F = spec_.feature_dim();
  GeneratedSeries out;
  out.spec = spec_;
  out.attributes = Matrix(n, spec_.attribute_dim());
  out.features.assign(T, Matrix(n, F));
  out.lengths.assign(n, T);

  std::size_t done = 0;
  while (done < n) {
    const std::size_t b = std::min(config_.batch_size, n - done);
    GenOutput gen = generator_forward(b, rng);
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t row = done + i;
      const double* asrc = gen.attributes.row_ptr(i);
      std::copy(asrc, asrc + spec_.attribute_dim(), out.attributes.row_ptr(row));
      // Length = first step whose alive-flag probability drops below 0.5.
      std::size_t len = T;
      for (std::size_t t = 0; t < T; ++t) {
        if (gen.features[t](i, F) < 0.5) {
          len = std::max<std::size_t>(1, t);
          break;
        }
      }
      out.lengths[row] = len;
      for (std::size_t t = 0; t < len; ++t) {
        const double* fsrc = gen.features[t].row_ptr(i);
        std::copy(fsrc, fsrc + F, out.features[t].row_ptr(row));
      }
    }
    done += b;
  }
  return out;
}

std::vector<double> DoppelGanger::snapshot() {
  std::vector<ml::Parameter*> all = generator_params();
  for (ml::Parameter* p : discriminator_params()) all.push_back(p);
  return ml::snapshot_parameters(all);
}

void DoppelGanger::restore(const std::vector<double>& snapshot) {
  std::vector<ml::Parameter*> all = generator_params();
  for (ml::Parameter* p : discriminator_params()) all.push_back(p);
  ml::restore_parameters(all, snapshot);
}

}  // namespace netshare::gan
