// Generic tabular WGAN over fixed-width encoded rows — the engine behind the
// CTGAN, PAC-GAN, PacketCGAN and Flow-WGAN baselines. Supports the original
// WGAN weight-clipping regime (Flow-WGAN) and the two-point Lipschitz
// penalty (see DESIGN.md), plus optional conditioning on a categorical
// segment (PacketCGAN / CTGAN's conditional vector).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "ml/health.hpp"
#include "ml/mlp.hpp"
#include "ml/optim.hpp"

namespace netshare::gan {

struct TabularGanConfig {
  std::size_t noise_dim = 16;
  std::vector<std::size_t> gen_hidden = {96, 96};
  std::vector<std::size_t> disc_hidden = {96, 96};
  int iterations = 400;
  std::size_t batch_size = 64;
  int d_steps_per_g = 2;
  double lr = 1e-3;
  double grad_clip = 5.0;

  // Lipschitz control: penalty weight, or original-WGAN weight clipping.
  double lipschitz_weight = 10.0;
  bool weight_clip = false;
  double weight_clip_c = 0.05;

  // Conditioning: when set, the (softmax) segment starting at
  // `cond_offset` with width `cond_width` acts as the conditional vector —
  // sampled from real rows, fed to the generator, and appended to the
  // critic input.
  std::optional<std::pair<std::size_t, std::size_t>> condition;
  double condition_loss_weight = 1.0;

  // Numeric health guard + rollback-and-retry policy (DESIGN.md §9).
  ml::health::HealthConfig health;
};

class TabularGan {
 public:
  TabularGan(std::vector<ml::OutputSegment> segments, TabularGanConfig config,
             std::uint64_t seed);

  // Trains on encoded rows [N, D] where D matches the segment widths.
  void fit(const ml::Matrix& rows);

  // Samples n rows; conditions are drawn from the training marginal.
  ml::Matrix sample(std::size_t n, Rng& rng);

  double train_cpu_seconds() const { return train_cpu_seconds_; }
  std::size_t row_dim() const;

  // Health-guard counters (all zero when the guard is disabled).
  ml::health::TrainHealthStats health_stats() const {
    return monitor_ ? monitor_->stats() : ml::health::TrainHealthStats{};
  }

 private:
  ml::Matrix gen_forward(const ml::Matrix& noise_and_cond);
  ml::Matrix cond_rows(const ml::Matrix& rows,
                       const std::vector<std::size_t>& idx) const;

  std::vector<ml::OutputSegment> segments_;
  TabularGanConfig config_;
  std::uint64_t seed_;
  Rng rng_;
  std::unique_ptr<ml::Mlp> gen_;
  std::unique_ptr<ml::Mlp> disc_;
  std::unique_ptr<ml::Adam> g_opt_;
  std::unique_ptr<ml::Adam> d_opt_;
  std::unique_ptr<ml::health::HealthMonitor> monitor_;
  ml::Matrix train_rows_;  // kept for conditional sampling
  double train_cpu_seconds_ = 0.0;
};

}  // namespace netshare::gan
