#include "gan/ewgan_gp.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"

namespace netshare::gan {

using embed::Token;
using embed::TokenKind;
using ml::Matrix;
using ml::OutputSegment;

namespace {

std::uint32_t log2_bucket(double v) {
  return static_cast<std::uint32_t>(std::floor(std::log2(std::max(1.0, v))));
}
double log2_bucket_center(std::uint32_t b) {
  return std::pow(2.0, static_cast<double>(b) + 0.5);
}

// Field order within a row: srcIP, dstIP, sport, dport, proto, pkts, bytes,
// duration, start time.
constexpr std::size_t kFields = 9;
constexpr TokenKind kFieldKind[kFields] = {
    TokenKind::kIp,       TokenKind::kIp,    TokenKind::kPort,
    TokenKind::kPort,     TokenKind::kProtocol, TokenKind::kPackets,
    TokenKind::kBytes,    TokenKind::kDuration, TokenKind::kStartTime,
};

}  // namespace

std::vector<Token> EwganGpFlow::tokenize(const net::FlowRecord& r) const {
  std::vector<Token> t(kFields);
  t[0] = {TokenKind::kIp, r.key.src_ip.value()};
  t[1] = {TokenKind::kIp, r.key.dst_ip.value()};
  t[2] = {TokenKind::kPort, r.key.src_port};
  t[3] = {TokenKind::kPort, r.key.dst_port};
  t[4] = {TokenKind::kProtocol, static_cast<std::uint32_t>(r.key.protocol)};
  t[5] = {TokenKind::kPackets, log2_bucket(static_cast<double>(r.packets))};
  t[6] = {TokenKind::kBytes, log2_bucket(static_cast<double>(r.bytes))};
  t[7] = {TokenKind::kDuration, log2_bucket(r.duration * 1e3 + 1.0)};
  const auto ts_bucket = static_cast<std::uint32_t>(
      std::clamp((r.start_time - t0_) / t_bucket_, 0.0,
                 static_cast<double>(config_.time_buckets - 1)));
  t[8] = {TokenKind::kStartTime, ts_bucket};
  return t;
}

void EwganGpFlow::fit(const net::FlowTrace& trace) {
  if (trace.empty()) throw std::invalid_argument("EwganGpFlow::fit: empty");
  const double cpu0 = thread_cpu_seconds();
  t0_ = trace.start_time();
  t_bucket_ = std::max(1e-6, (trace.end_time() - t0_) /
                                 static_cast<double>(config_.time_buckets));

  // Train the extended IP2Vec on the training data itself.
  std::vector<std::vector<Token>> sentences;
  sentences.reserve(trace.size());
  for (const auto& r : trace.records) sentences.push_back(tokenize(r));
  embed::Ip2Vec::Config ecfg;
  ecfg.dim = config_.embed_dim;
  ecfg.epochs = config_.embed_epochs;
  Rng erng(seed_);
  embedding_.train(sentences, ecfg, erng);

  // Normalization range over the whole learned vocabulary.
  emb_lo_ = 1e30;
  emb_hi_ = -1e30;
  for (const auto& s : sentences) {
    for (const Token& t : s) {
      for (double v : embedding_.embed(t)) {
        emb_lo_ = std::min(emb_lo_, v);
        emb_hi_ = std::max(emb_hi_, v);
      }
    }
    break;  // one sentence covers typical range; widen below
  }
  // Widen using a sample of sentences for robustness.
  for (std::size_t i = 0; i < sentences.size(); i += 17) {
    for (const Token& t : sentences[i]) {
      for (double v : embedding_.embed(t)) {
        emb_lo_ = std::min(emb_lo_, v);
        emb_hi_ = std::max(emb_hi_, v);
      }
    }
  }
  if (emb_hi_ <= emb_lo_) emb_hi_ = emb_lo_ + 1.0;

  // Encode rows as concatenated normalized embeddings.
  const std::size_t d = config_.embed_dim;
  Matrix rows(trace.size(), kFields * d);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto tokens = tokenize(trace.records[i]);
    double* row = rows.row_ptr(i);
    for (std::size_t f = 0; f < kFields; ++f) {
      const auto v = embedding_.embed(tokens[f]);
      for (std::size_t k = 0; k < d; ++k) {
        row[f * d + k] =
            std::clamp((v[k] - emb_lo_) / (emb_hi_ - emb_lo_), 0.0, 1.0);
      }
    }
  }
  train_cpu_seconds_ = thread_cpu_seconds() - cpu0;

  std::vector<OutputSegment> segments{
      {OutputSegment::Kind::kSigmoid, kFields * d}};
  gan_ = std::make_unique<TabularGan>(segments, config_.gan, seed_ + 1);
  gan_->fit(rows);
}

net::FlowTrace EwganGpFlow::generate(std::size_t n, Rng& rng) {
  if (!gan_) throw std::logic_error("EwganGpFlow::generate: fit first");
  const std::size_t d = config_.embed_dim;
  const Matrix rows = gan_->sample(n, rng);
  net::FlowTrace out;
  out.records.reserve(n);
  if (n == 0) return out;

  // One batched nearest-neighbour pass per field instead of n × kFields
  // linear scans (the blocked kernel path, DESIGN.md §12).
  ws_.reset();
  Matrix& q = ws_.get(n, d);
  std::vector<Token> tokens(kFields * n);
  for (std::size_t f = 0; f < kFields; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = rows.row_ptr(i) + f * d;
      double* qrow = q.row_ptr(i);
      for (std::size_t k = 0; k < d; ++k) {
        qrow[k] = emb_lo_ + row[k] * (emb_hi_ - emb_lo_);
      }
    }
    embedding_.nearest_batch(q, kFieldKind[f], {},
                             std::span<Token>(tokens.data() + f * n, n), ws_);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto tok = [&](std::size_t f) { return tokens[f * n + i]; };
    net::FlowRecord r;
    r.key.src_ip = net::Ipv4Address(tok(0).value);
    r.key.dst_ip = net::Ipv4Address(tok(1).value);
    r.key.src_port = static_cast<std::uint16_t>(tok(2).value);
    r.key.dst_port = static_cast<std::uint16_t>(tok(3).value);
    r.key.protocol = static_cast<net::Protocol>(tok(4).value);
    r.packets = static_cast<std::uint64_t>(
        std::max(1.0, std::round(log2_bucket_center(tok(5).value))));
    r.bytes = static_cast<std::uint64_t>(
        std::max(1.0, std::round(log2_bucket_center(tok(6).value))));
    r.duration =
        std::max(0.0, (log2_bucket_center(tok(7).value) - 1.0) * 1e-3);
    r.start_time =
        t0_ + (static_cast<double>(tok(8).value) + rng.uniform()) * t_bucket_;
    out.records.push_back(r);
  }
  out.sort_by_time();
  return out;
}

double EwganGpFlow::train_cpu_seconds() const {
  return train_cpu_seconds_ + (gan_ ? gan_->train_cpu_seconds() : 0.0);
}

}  // namespace netshare::gan
