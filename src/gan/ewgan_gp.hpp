// E-WGAN-GP baseline (Ring et al. 2019): extends IP2Vec to embed EVERY
// NetFlow field (IPs, ports, protocol, packets, bytes, start time, duration)
// into fixed-length vectors, trains a Wasserstein GAN over the concatenated
// embeddings, and decodes each field by nearest-neighbour search over the
// training vocabulary.
//
// Note the privacy property the paper highlights (Insight 2): this
// dictionary is built from the TRAINING data, so the approach is not
// differentially private — decoded IPs are literally training-set IPs.
#pragma once

#include <memory>

#include "embed/ip2vec.hpp"
#include "gan/synthesizer.hpp"
#include "gan/tabular_gan.hpp"

namespace netshare::gan {

struct EwganConfig {
  TabularGanConfig gan;
  std::size_t embed_dim = 4;
  int embed_epochs = 3;
  // Counter fields are log2-bucketed; times are bucketed on a linear grid.
  std::size_t time_buckets = 64;
};

class EwganGpFlow : public FlowSynthesizer {
 public:
  EwganGpFlow(EwganConfig config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  std::string name() const override { return "E-WGAN-GP"; }
  void fit(const net::FlowTrace& trace) override;
  net::FlowTrace generate(std::size_t n, Rng& rng) override;
  double train_cpu_seconds() const override;

 private:
  std::vector<embed::Token> tokenize(const net::FlowRecord& r) const;

  EwganConfig config_;
  std::uint64_t seed_;
  embed::Ip2Vec embedding_;
  ml::Workspace ws_;  // pooled scratch for batched nearest-neighbour decode
  std::unique_ptr<TabularGan> gan_;
  double emb_lo_ = 0.0, emb_hi_ = 1.0;
  double t0_ = 0.0, t_bucket_ = 1.0;  // start-time grid
  double train_cpu_seconds_ = 0.0;    // embedding training time
};

}  // namespace netshare::gan
