// STAN baseline (Xu et al. 2020): an autoregressive neural NetFlow
// synthesizer. Records are grouped by host (source IP); within a host,
// each successive record's fields are predicted field-by-field by small
// neural networks conditioned on the previous record and the fields already
// generated for the current record. Following the paper's evaluation setup,
// host IPs (and destination IPs) are drawn from the real data.
//
// Fields are discretized: destination port into top-service classes plus
// ephemeral buckets, counters into log2 buckets, times into log buckets.
#pragma once

#include <memory>
#include <vector>

#include "gan/synthesizer.hpp"
#include "ml/mlp.hpp"
#include "ml/optim.hpp"

namespace netshare::gan {

struct StanConfig {
  std::size_t hidden = 64;
  int epochs = 6;
  std::size_t batch_size = 64;
  double lr = 1e-3;
  std::size_t service_ports = 16;    // top-K service port classes
  std::size_t ephemeral_buckets = 16;
};

class StanFlow : public FlowSynthesizer {
 public:
  StanFlow(StanConfig config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  std::string name() const override { return "STAN"; }
  void fit(const net::FlowTrace& trace) override;
  net::FlowTrace generate(std::size_t n, Rng& rng) override;
  double train_cpu_seconds() const override { return train_cpu_seconds_; }

 private:
  // Field layout (in autoregressive order).
  std::size_t dport_classes() const {
    return config_.service_ports + config_.ephemeral_buckets;
  }
  static constexpr std::size_t kProtoClasses = 3;
  static constexpr std::size_t kPktClasses = 21;   // log2 buckets
  static constexpr std::size_t kByteClasses = 31;  // log2 buckets
  static constexpr std::size_t kDurClasses = 16;   // log buckets
  static constexpr std::size_t kGapClasses = 16;   // log buckets

  std::vector<std::size_t> field_widths() const;
  std::size_t record_width() const;

  std::size_t dport_class(std::uint16_t port) const;
  std::uint16_t sample_dport(std::size_t cls, Rng& rng) const;

  StanConfig config_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<ml::Mlp>> field_nets_;
  std::vector<std::uint16_t> service_port_table_;  // learned top-K
  // Empirical pools sampled at generation time (per the paper's setup).
  std::vector<std::uint32_t> host_pool_;
  std::vector<std::uint32_t> dst_pool_;
  std::vector<std::size_t> records_per_host_pool_;
  std::vector<double> start_time_pool_;
  double max_duration_ = 1.0;
  double max_gap_ = 1.0;
  double train_cpu_seconds_ = 0.0;
};

}  // namespace netshare::gan
