#include "gan/timeseries.hpp"

#include <stdexcept>

namespace netshare::gan {

TimeSeriesDataset TimeSeriesDataset::take(
    const std::vector<std::size_t>& rows) const {
  TimeSeriesDataset out;
  out.spec = spec;
  out.attributes = ml::Matrix(rows.size(), attributes.cols());
  out.features.assign(features.size(),
                      ml::Matrix(rows.size(),
                                 features.empty() ? 0 : features[0].cols()));
  out.lengths.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    if (r >= num_samples()) throw std::out_of_range("TimeSeriesDataset::take");
    const double* src = attributes.row_ptr(r);
    std::copy(src, src + attributes.cols(), out.attributes.row_ptr(i));
    for (std::size_t t = 0; t < features.size(); ++t) {
      const double* fsrc = features[t].row_ptr(r);
      std::copy(fsrc, fsrc + features[t].cols(), out.features[t].row_ptr(i));
    }
    out.lengths[i] = lengths[r];
  }
  return out;
}

}  // namespace netshare::gan
