#include "gan/tabular_gan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"

namespace netshare::gan {

using ml::Matrix;
using ml::concat_cols;
using ml::split_cols;
using ml::stack_rows;

namespace {
std::vector<std::size_t> random_rows(std::size_t n, std::size_t batch,
                                     Rng& rng) {
  std::vector<std::size_t> rows(batch);
  for (auto& r : rows) {
    r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
  return rows;
}

Matrix take_rows(const Matrix& m, const std::vector<std::size_t>& idx) {
  Matrix out(idx.size(), m.cols());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double* src = m.row_ptr(idx[i]);
    std::copy(src, src + m.cols(), out.row_ptr(i));
  }
  return out;
}
}  // namespace

TabularGan::TabularGan(std::vector<ml::OutputSegment> segments,
                       TabularGanConfig config, std::uint64_t seed)
    : segments_(std::move(segments)), config_(config), seed_(seed),
      rng_(seed) {
  std::size_t dim = 0;
  for (const auto& s : segments_) dim += s.width;
  const std::size_t cond_width =
      config_.condition ? config_.condition->second : 0;

  std::vector<std::size_t> gen_dims{config_.noise_dim + cond_width};
  gen_dims.insert(gen_dims.end(), config_.gen_hidden.begin(),
                  config_.gen_hidden.end());
  gen_dims.push_back(dim);
  gen_ = std::make_unique<ml::Mlp>(gen_dims, ml::Activation::kRelu, segments_,
                                   rng_);

  std::vector<std::size_t> disc_dims{dim + cond_width};
  disc_dims.insert(disc_dims.end(), config_.disc_hidden.begin(),
                   config_.disc_hidden.end());
  disc_dims.push_back(1);
  disc_ = std::make_unique<ml::Mlp>(disc_dims, ml::Activation::kLeakyRelu, rng_);

  g_opt_ = std::make_unique<ml::Adam>(gen_->parameters(), config_.lr);
  d_opt_ = std::make_unique<ml::Adam>(disc_->parameters(), config_.lr);
}

std::size_t TabularGan::row_dim() const {
  std::size_t dim = 0;
  for (const auto& s : segments_) dim += s.width;
  return dim;
}

Matrix TabularGan::cond_rows(const Matrix& rows,
                             const std::vector<std::size_t>& idx) const {
  const auto [off, width] = *config_.condition;
  Matrix cond(idx.size(), width);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double* src = rows.row_ptr(idx[i]) + off;
    std::copy(src, src + width, cond.row_ptr(i));
  }
  return cond;
}

void TabularGan::fit(const Matrix& rows) {
  if (rows.rows() == 0 || rows.cols() != row_dim()) {
    throw std::invalid_argument("TabularGan::fit: bad input shape");
  }
  train_rows_ = rows;
  const double cpu0 = thread_cpu_seconds();
  const std::size_t B = std::min(config_.batch_size, rows.rows());
  const double inv_b = 1.0 / static_cast<double>(B);

  const ml::health::HealthConfig& hc = config_.health;
  const bool guarded = hc.enabled && config_.iterations > 0;
  if (guarded) {
    if (!monitor_) {
      std::vector<ml::Parameter*> params = gen_->parameters();
      for (ml::Parameter* p : disc_->parameters()) params.push_back(p);
      monitor_ = std::make_unique<ml::health::HealthMonitor>(
          hc, std::move(params), seed_);
    }
    monitor_->begin_run();
    g_opt_->set_lr(config_.lr);
    d_opt_->set_lr(config_.lr);
  }
  double last_d_loss = 0.0, last_g_loss = 0.0;
  double last_d_norm = 0.0, last_g_norm = 0.0;
  int attempt = 0;
  int it = 0;
  while (it < config_.iterations) {
    for (int d = 0; d < config_.d_steps_per_g; ++d) {
      const auto idx = random_rows(rows.rows(), B, rng_);
      Matrix real = take_rows(rows, idx);
      Matrix cond;
      if (config_.condition) cond = cond_rows(rows, idx);

      Matrix noise = Matrix::randn(B, config_.noise_dim, rng_);
      Matrix gin = config_.condition ? concat_cols(noise, cond) : noise;
      Matrix fake = gen_->forward(gin);

      Matrix dreal = config_.condition ? concat_cols(real, cond) : real;
      Matrix dfake = config_.condition ? concat_cols(fake, cond) : fake;

      // Two-point interpolates for the Lipschitz penalty.
      Matrix x1(B, dreal.cols()), x2(B, dreal.cols());
      std::vector<double> dist(B, 0.0);
      for (std::size_t i = 0; i < B; ++i) {
        const double e1 = rng_.uniform(), e2 = rng_.uniform();
        double d2 = 0.0;
        for (std::size_t j = 0; j < dreal.cols(); ++j) {
          x1(i, j) = e1 * dreal(i, j) + (1 - e1) * dfake(i, j);
          x2(i, j) = e2 * dreal(i, j) + (1 - e2) * dfake(i, j);
          const double dd = x1(i, j) - x2(i, j);
          d2 += dd * dd;
        }
        dist[i] = std::sqrt(d2);
      }

      Matrix big = stack_rows({dreal, dfake, x1, x2});
      disc_->zero_grad();
      const Matrix scores = disc_->forward(big);
      Matrix gs(4 * B, 1);
      for (std::size_t i = 0; i < B; ++i) {
        gs(i, 0) = -inv_b;
        gs(B + i, 0) = inv_b;
        if (!config_.weight_clip) {
          const double dd = std::max(dist[i], 1e-8);
          const double slope = (scores(2 * B + i, 0) - scores(3 * B + i, 0)) / dd;
          const double excess = std::fabs(slope) - 1.0;
          if (excess > 0.0) {
            const double g = 2.0 * excess * (slope > 0 ? 1.0 : -1.0) *
                             config_.lipschitz_weight * inv_b / dd;
            gs(2 * B + i, 0) += g;
            gs(3 * B + i, 0) -= g;
          }
        }
      }
      double real_mean = 0.0, fake_mean = 0.0;
      for (std::size_t i = 0; i < B; ++i) {
        real_mean += scores(i, 0);
        fake_mean += scores(B + i, 0);
      }
      last_d_loss = (fake_mean - real_mean) * inv_b;
      disc_->backward(gs);
      const double dn = ml::clip_grad_norm(disc_->parameters(),
                                           config_.grad_clip);
      last_d_norm = std::min(dn, config_.grad_clip);
      d_opt_->step();
      if (config_.weight_clip) {
        ml::clip_weights(disc_->parameters(), config_.weight_clip_c);
      }
    }

    // Generator step.
    const auto idx = random_rows(rows.rows(), B, rng_);
    Matrix cond;
    if (config_.condition) cond = cond_rows(rows, idx);
    Matrix noise = Matrix::randn(B, config_.noise_dim, rng_);
    Matrix gin = config_.condition ? concat_cols(noise, cond) : noise;
    Matrix fake = gen_->forward(gin);
    Matrix dfake = config_.condition ? concat_cols(fake, cond) : fake;

    const Matrix& fscores = disc_->forward(dfake);
    double fscore_mean = 0.0;
    for (std::size_t i = 0; i < B; ++i) fscore_mean += fscores(i, 0);
    last_g_loss = -fscore_mean * inv_b;
    Matrix grad_full = disc_->backward(Matrix(B, 1, -inv_b));
    auto [grad_fake, grad_cond_part] = split_cols(grad_full, fake.cols());
    (void)grad_cond_part;

    if (config_.condition) {
      // Conditional consistency: push the generated conditional segment
      // toward the sampled condition (CTGAN's generator CE loss).
      const auto [off, width] = *config_.condition;
      for (std::size_t i = 0; i < B; ++i) {
        for (std::size_t j = 0; j < width; ++j) {
          const double p = fake(i, off + j);
          const double t = cond(i, j);
          grad_fake(i, off + j) +=
              config_.condition_loss_weight * (p - t) * inv_b;
        }
      }
    }

    gen_->zero_grad();
    gen_->backward(grad_fake);
    const double gn = ml::clip_grad_norm(gen_->parameters(),
                                         config_.grad_clip);
    last_g_norm = std::min(gn, config_.grad_clip);
    g_opt_->step();

    ++it;
    if (!guarded) continue;
    monitor_->maybe_inject(it);
    if (monitor_->check_due(it) || it == config_.iterations) {
      if (monitor_->check(it, last_d_loss, last_g_loss, last_d_norm,
                          last_g_norm)) {
        if (monitor_->checkpoint_due(it)) monitor_->checkpoint(it);
        continue;
      }
      if (attempt >= hc.max_retries) {
        throw ml::health::TrainingDivergedError(
            "TabularGan::fit: training diverged (" +
            monitor_->stats().last_issue + ") and stayed diverged after " +
            std::to_string(attempt) + " rollback retries");
      }
      ++attempt;
      it = static_cast<int>(monitor_->rollback());
      g_opt_->reset_state();
      d_opt_->reset_state();
      const double lr =
          config_.lr * std::pow(hc.lr_backoff, static_cast<double>(attempt));
      g_opt_->set_lr(lr);
      d_opt_->set_lr(lr);
      rng_ = Rng(mix_seed(seed_, 0x52455452u + static_cast<std::uint64_t>(
                                                   attempt)));
    }
  }
  train_cpu_seconds_ += thread_cpu_seconds() - cpu0;
}

Matrix TabularGan::sample(std::size_t n, Rng& rng) {
  if (train_rows_.rows() == 0) {
    throw std::logic_error("TabularGan::sample: fit first");
  }
  Matrix out(n, row_dim());
  std::size_t done = 0;
  while (done < n) {
    const std::size_t b = std::min(config_.batch_size, n - done);
    Matrix noise = Matrix::randn(b, config_.noise_dim, rng);
    Matrix gin = noise;
    if (config_.condition) {
      const auto idx = random_rows(train_rows_.rows(), b, rng);
      gin = concat_cols(noise, cond_rows(train_rows_, idx));
    }
    const Matrix fake = gen_forward(gin);
    for (std::size_t i = 0; i < b; ++i) {
      const double* src = fake.row_ptr(i);
      std::copy(src, src + fake.cols(), out.row_ptr(done + i));
    }
    done += b;
  }
  return out;
}

Matrix TabularGan::gen_forward(const Matrix& noise_and_cond) {
  return gen_->forward(noise_and_cond);
}

}  // namespace netshare::gan
