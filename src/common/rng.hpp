// Central random-number utilities.
//
// Every stochastic component in this library takes an explicit Rng (or a
// seed) so that all experiments are reproducible; there is no global RNG.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace netshare {

// Counter-based stream derivation (splitmix64, Steele et al.): seed `seed`
// indexed by counter `stream` yields a well-mixed 64-bit value. Used to give
// every (chunk, series) its own independent RNG stream during generation, so
// the noise a series draws does not depend on how callers batch or partition
// the work — the foundation of the serial-vs-parallel bitwise guarantee.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

// Thin wrapper over std::mt19937_64 with the handful of draws the library
// needs. Copyable (copying forks the stream deterministically).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform real in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Standard normal draw.
  double normal() { return normal_(engine_); }

  // Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Exponential with given rate (lambda > 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  // Poisson draw with given mean.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  // Index drawn from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  // Derive a new independent Rng; advances this stream.
  Rng fork() { return Rng(engine_()); }

  // Counter-based stream: the Rng for (seed, stream) is a pure function of
  // its arguments (this call touches no shared state), so independent
  // streams can be created in any order, from any thread.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index) {
    return Rng(mix_seed(seed, stream_index));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

// Cheap counter-based normal stream for the generation hot path. Rng::stream
// pays a full mt19937_64 state init (~312 words) per stream, which dominates
// noise staging when thousands of per-series streams are created per sampled
// batch; NoiseStream is a single splitmix64 counter advanced per draw, with
// Box–Muller pairs for normals. Like Rng::stream, the sequence is a pure
// function of (seed, stream_index): creation order, batching, and threads
// never affect the values — the foundation of the generation path's
// serial-vs-parallel bitwise guarantee.
class NoiseStream {
 public:
  NoiseStream(std::uint64_t seed, std::uint64_t stream_index)
      : state_(mix_seed(seed, stream_index)) {}

  // Standard normal draw (Box–Muller; every draw consumes exactly one or two
  // counter steps, so the sequence is reproducible draw-by-draw).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    // Uniforms in (0, 1]: +1 before scaling keeps log() finite.
    const double u1 =
        (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
    const double u2 =
        (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  std::uint64_t next_u64() {
    // splitmix64 (Steele et al.): one add + finalizer per output.
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace netshare
