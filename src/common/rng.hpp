// Central random-number utilities.
//
// Every stochastic component in this library takes an explicit Rng (or a
// seed) so that all experiments are reproducible; there is no global RNG.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace netshare {

// Thin wrapper over std::mt19937_64 with the handful of draws the library
// needs. Copyable (copying forks the stream deterministically).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform real in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Standard normal draw.
  double normal() { return normal_(engine_); }

  // Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Exponential with given rate (lambda > 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  // Poisson draw with given mean.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  // Index drawn from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  // Derive a new independent Rng; advances this stream.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace netshare
