// Injectable monotonic clock (DESIGN.md §14). Every wall-clock-window
// mechanism in the serving stack — request deadlines, token-bucket rate
// limiting, the scheduler watchdog — reads time through mono_now_ms(), so
// tests install a ManualClock and step time deterministically instead of
// sleeping. Production pays one relaxed atomic load and a branch per read.
//
// Install/uninstall a source only while the threads that read the clock are
// quiescent (tests construct the ScopedManualClock before the Service and
// destroy it after), mirroring the ml::health::FaultPlan arming contract.
#pragma once

#include <atomic>
#include <cstdint>

namespace netshare {

// Overridable time source. now_ns() must be monotone non-decreasing and
// safe to call from any thread.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual std::uint64_t now_ns() = 0;
};

// Monotonic nanoseconds since an arbitrary epoch: the installed ClockSource
// if any, otherwise std::chrono::steady_clock.
std::uint64_t mono_now_ns();

inline std::uint64_t mono_now_ms() { return mono_now_ns() / 1000000ull; }

// Installs `source` as the process-wide clock (nullptr restores
// steady_clock). Test-only; see the quiescence contract above.
void set_clock_source(ClockSource* source);

// A hand-stepped clock for deterministic time-window tests. Starts at one
// hour, not zero, so code treating timestamp 0 as "unset" stays unambiguous.
class ManualClock : public ClockSource {
 public:
  std::uint64_t now_ns() override {
    return ns_.load(std::memory_order_acquire);
  }
  void advance_ms(std::uint64_t ms) {
    ns_.fetch_add(ms * 1000000ull, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint64_t> ns_{3600ull * 1000000000ull};
};

// RAII install/uninstall of a ManualClock around a test scope.
class ScopedManualClock {
 public:
  ScopedManualClock() { set_clock_source(&clock_); }
  ~ScopedManualClock() { set_clock_source(nullptr); }
  ScopedManualClock(const ScopedManualClock&) = delete;
  ScopedManualClock& operator=(const ScopedManualClock&) = delete;

  ManualClock& clock() { return clock_; }

 private:
  ManualClock clock_;
};

}  // namespace netshare
