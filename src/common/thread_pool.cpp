#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "telemetry/telemetry.hpp"

namespace netshare {

namespace {
thread_local bool tl_pool_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return tl_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
    depth = tasks_.size();
  }
  TELEM_COUNT("threadpool.tasks_submitted");
  TELEM_GAUGE_SET("threadpool.queue_depth", depth);
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  TELEM_SPAN("threadpool.parallel_for",
             {"tasks", static_cast<long long>(n)});
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Every queued task holds a reference to fn (caller stack state), so all
  // futures must be waited on even when one throws; only then is the first
  // exception rethrown.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      depth = tasks_.size();
    }
    TELEM_GAUGE_SET("threadpool.queue_depth", depth);
    task();
  }
}

}  // namespace netshare
