// Wall-clock and CPU-time stopwatches for the scalability experiments
// (Fig. 4 measures total CPU-hours, not wall-clock).
#pragma once

#include <chrono>

namespace netshare {

// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }
  void reset() { start_ = std::chrono::steady_clock::now(); }
  // Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Process-wide CPU time (user + system) in seconds. Sums across threads,
// mirroring the paper's "total CPU hours" metric.
double process_cpu_seconds();

// Calling thread's CPU time in seconds. Summing this across parallel chunk
// trainers gives total CPU cost independent of wall-clock parallelism.
double thread_cpu_seconds();

}  // namespace netshare
