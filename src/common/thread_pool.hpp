// Minimal fixed-size thread pool used for parallel chunk fine-tuning
// (NetShare Insight 3), the blocked matmul kernels (ml/kernels.hpp), and
// multi-run evaluation harnesses.
//
// Exception semantics: a throwing task never kills its worker — the
// exception is captured in the task's future and rethrown from get().
// Destruction semantics: the destructor drains the queue (all already
// submitted tasks run) before joining the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace netshare {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; the returned future resolves when it completes (or
  // rethrows from get() if the task threw).
  std::future<void> submit(std::function<void()> task);

  // Run fn(i) for i in [0, n) across the pool and wait for completion. If
  // any invocation throws, every task still runs to completion (they share
  // caller stack state) and the first exception is rethrown afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

  // True when the calling thread is a worker of *any* ThreadPool. Lets code
  // that is about to fan out (chunk-parallel sampling, parallel postprocess)
  // detect that it is already running inside a parallel context and clamp
  // its thread budget instead of oversubscribing the machine.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace netshare
