#include "common/clock.hpp"

#include <chrono>

namespace netshare {

namespace {
std::atomic<ClockSource*> g_clock_source{nullptr};
}  // namespace

std::uint64_t mono_now_ns() {
  ClockSource* src = g_clock_source.load(std::memory_order_acquire);
  if (src != nullptr) return src->now_ns();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_clock_source(ClockSource* source) {
  g_clock_source.store(source, std::memory_order_release);
}

}  // namespace netshare
