#include "common/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace netshare {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // splitmix64: the stream-th output of the generator seeded at `seed`,
  // computed directly (the generator's state advances by the golden-ratio
  // increment, so output i is finalize(seed + (i+1)*phi)).
  std::uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("categorical: non-positive mass");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // guard against rounding
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace netshare
