// Heavy-tailed samplers used by the workload simulator: Zipf popularity for
// addresses, lognormal + Pareto mixtures for flow sizes, and helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace netshare::datagen {

// Zipf distribution over ranks {0, ..., n-1} with exponent alpha:
// P(rank k) ∝ 1 / (k+1)^alpha. Sampling is O(log n) via the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const;

  // Exact probability of a given rank (for tests).
  double probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Lognormal with parameters (mu, sigma) of the underlying normal.
double sample_lognormal(Rng& rng, double mu, double sigma);

// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
double sample_pareto(Rng& rng, double x_m, double alpha);

// Lognormal body with a Pareto tail: with probability `tail_prob` draw from
// the Pareto tail (elephant flows), otherwise from the lognormal body (mice).
// This reproduces the mice/elephant structure of flow-size distributions.
struct HeavyTailConfig {
  double body_mu = 1.0;
  double body_sigma = 1.0;
  double tail_prob = 0.05;
  double tail_scale = 50.0;
  double tail_alpha = 1.2;
  double max_value = 1e8;
};
double sample_heavy_tail(Rng& rng, const HeavyTailConfig& cfg);

// Empirical discrete distribution over arbitrary values with weights.
template <typename T>
class WeightedChoice {
 public:
  WeightedChoice() = default;
  WeightedChoice(std::vector<T> values, std::vector<double> weights)
      : values_(std::move(values)), weights_(std::move(weights)) {}

  const T& sample(Rng& rng) const { return values_[rng.categorical(weights_)]; }

  bool empty() const { return values_.empty(); }
  const std::vector<T>& values() const { return values_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<T> values_;
  std::vector<double> weights_;
};

}  // namespace netshare::datagen
