// Attack traffic signatures for the labeled datasets (CIDDS-like, TON-like).
//
// Each attack type gets a distinguishable signature over exactly the fields
// the paper's downstream traffic-type-prediction task uses (dst port,
// protocol, packets/flow, bytes/flow, duration), so classifiers trained on
// the synthetic-of-synthetic data face the same learning problem.
#pragma once

#include <vector>

#include "datagen/distributions.hpp"
#include "net/records.hpp"

namespace netshare::datagen {

struct AttackSignature {
  net::AttackType type = net::AttackType::kNone;
  // Weighted destination ports this attack targets.
  std::vector<std::pair<std::uint16_t, double>> dst_ports;
  net::Protocol protocol = net::Protocol::kTcp;
  HeavyTailConfig packets_per_flow;
  double bytes_per_packet_mu = 5.0;    // lognormal of per-packet size
  double bytes_per_packet_sigma = 0.3;
  double duration_mu = 0.0;            // lognormal of flow duration (s)
  double duration_sigma = 1.0;
  // Number of flows a single attack burst emits (e.g. a scan sweeps ports).
  int burst_flows = 1;
  // Port-scan style: each flow in a burst targets a distinct dst port.
  bool sweep_ports = false;
};

// Signature lookup; throws std::invalid_argument for kNone.
AttackSignature attack_signature(net::AttackType type);

}  // namespace netshare::datagen
