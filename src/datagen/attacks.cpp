#include "datagen/attacks.hpp"

#include <stdexcept>

namespace netshare::datagen {

using net::AttackType;
using net::Protocol;

AttackSignature attack_signature(AttackType type) {
  AttackSignature s;
  s.type = type;
  switch (type) {
    case AttackType::kDos:
      // Single-target flood: many small packets, short high-rate flows.
      s.dst_ports = {{80, 0.7}, {443, 0.3}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {4.5, 0.8, 0.10, 400.0, 1.3, 1e6};
      s.bytes_per_packet_mu = 3.8;  // ~45 B SYN-sized
      s.bytes_per_packet_sigma = 0.1;
      s.duration_mu = 0.5;
      s.duration_sigma = 0.6;
      s.burst_flows = 8;
      break;
    case AttackType::kDdos:
      // Distributed flood: like DoS but burstier and UDP-heavy.
      s.dst_ports = {{80, 0.5}, {53, 0.5}};
      s.protocol = Protocol::kUdp;
      s.packets_per_flow = {5.0, 0.7, 0.15, 600.0, 1.2, 1e6};
      s.bytes_per_packet_mu = 4.2;
      s.bytes_per_packet_sigma = 0.2;
      s.duration_mu = 0.2;
      s.duration_sigma = 0.5;
      s.burst_flows = 16;
      break;
    case AttackType::kBruteForce:
      // Repeated short SSH/FTP login attempts.
      s.dst_ports = {{22, 0.6}, {21, 0.4}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {2.3, 0.4, 0.0, 1.0, 1.0, 1e4};
      s.bytes_per_packet_mu = 4.4;
      s.bytes_per_packet_sigma = 0.2;
      s.duration_mu = 0.8;
      s.duration_sigma = 0.4;
      s.burst_flows = 6;
      break;
    case AttackType::kPortScan:
    case AttackType::kScanning:
      // One or two tiny probe packets per port, sweeping many ports.
      s.dst_ports = {{0, 1.0}};  // overridden by sweep_ports
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {0.3, 0.3, 0.0, 1.0, 1.0, 4.0};
      s.bytes_per_packet_mu = 3.7;  // 40 B probes
      s.bytes_per_packet_sigma = 0.05;
      s.duration_mu = -3.0;
      s.duration_sigma = 0.5;
      s.burst_flows = 24;
      s.sweep_ports = true;
      break;
    case AttackType::kBackdoor:
      // Long-lived low-rate command channel to a high port.
      s.dst_ports = {{4444, 0.5}, {31337, 0.5}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {3.2, 0.6, 0.0, 1.0, 1.0, 1e4};
      s.bytes_per_packet_mu = 5.0;
      s.bytes_per_packet_sigma = 0.4;
      s.duration_mu = 3.5;  // tens of seconds
      s.duration_sigma = 0.6;
      break;
    case AttackType::kInjection:
      // Web attacks: few medium flows with large request payloads.
      s.dst_ports = {{80, 0.6}, {8080, 0.4}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {2.8, 0.5, 0.0, 1.0, 1.0, 1e4};
      s.bytes_per_packet_mu = 6.5;  // ~650 B
      s.bytes_per_packet_sigma = 0.3;
      s.duration_mu = 0.0;
      s.duration_sigma = 0.5;
      break;
    case AttackType::kMitm:
      // ARP/DNS interception lookalike: small UDP flows to 53.
      s.dst_ports = {{53, 1.0}};
      s.protocol = Protocol::kUdp;
      s.packets_per_flow = {1.5, 0.4, 0.0, 1.0, 1.0, 1e3};
      s.bytes_per_packet_mu = 4.5;
      s.bytes_per_packet_sigma = 0.2;
      s.duration_mu = -1.0;
      s.duration_sigma = 0.5;
      break;
    case AttackType::kPassword:
      // Credential stuffing over HTTPS.
      s.dst_ports = {{443, 0.8}, {80, 0.2}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {2.5, 0.4, 0.0, 1.0, 1.0, 1e4};
      s.bytes_per_packet_mu = 5.5;
      s.bytes_per_packet_sigma = 0.2;
      s.duration_mu = 0.3;
      s.duration_sigma = 0.4;
      s.burst_flows = 4;
      break;
    case AttackType::kRansomware:
      // Bulk exfiltration / key exchange: few very large flows.
      s.dst_ports = {{443, 0.6}, {8443, 0.4}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {5.5, 0.8, 0.3, 800.0, 1.1, 1e6};
      s.bytes_per_packet_mu = 7.0;  // ~1100 B
      s.bytes_per_packet_sigma = 0.2;
      s.duration_mu = 2.5;
      s.duration_sigma = 0.7;
      break;
    case AttackType::kXss:
      // Scripted web requests: small repeated HTTP flows.
      s.dst_ports = {{80, 0.9}, {8080, 0.1}};
      s.protocol = Protocol::kTcp;
      s.packets_per_flow = {2.0, 0.3, 0.0, 1.0, 1.0, 1e3};
      s.bytes_per_packet_mu = 6.0;
      s.bytes_per_packet_sigma = 0.25;
      s.duration_mu = -0.5;
      s.duration_sigma = 0.4;
      s.burst_flows = 3;
      break;
    case AttackType::kNone:
      throw std::invalid_argument("attack_signature: kNone has no signature");
  }
  return s;
}

}  // namespace netshare::datagen
