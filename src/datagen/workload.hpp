// Parametric packet/flow workload simulator.
//
// Stands in for the paper's six public traces (see DESIGN.md substitution
// table): it reproduces the distribution families every NetShare experiment
// measures — Zipf address popularity, service-port mixtures, heavy-tailed
// flow sizes with mice/elephants, bimodal packet sizes, collector re-export
// behaviour, and labeled attack traffic.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/attacks.hpp"
#include "datagen/distributions.hpp"
#include "net/flow_collector.hpp"
#include "net/trace.hpp"

namespace netshare::datagen {

struct WorkloadConfig {
  std::string name = "generic";
  double duration_s = 600.0;

  // Address model: flows draw endpoints from Zipf-ranked IP pools.
  std::size_t num_src_ips = 200;
  double src_zipf_alpha = 1.0;
  net::Ipv4Address src_base{10, 0, 0, 1};
  std::size_t num_dst_ips = 400;
  double dst_zipf_alpha = 1.2;
  net::Ipv4Address dst_base{172, 16, 0, 1};

  // Destination-port model: well-known service ports with given weights,
  // otherwise an ephemeral port in [1024, 65535].
  std::vector<std::pair<std::uint16_t, double>> service_ports = {
      {53, 0.30}, {80, 0.25}, {443, 0.20}, {445, 0.10}, {21, 0.08}, {22, 0.04},
      {25, 0.03}};
  double service_port_prob = 0.85;

  // Protocol for flows whose dst port doesn't pin one: P(UDP), P(ICMP).
  double udp_prob = 0.25;
  double icmp_prob = 0.01;

  // Flow-size model (packets per flow), heavy-tailed.
  HeavyTailConfig packets_per_flow{1.0, 1.0, 0.05, 50.0, 1.2, 1e6};

  // Packet-size model: P(minimum-size control packet), P(full MTU data
  // packet), otherwise lognormal medium-size.
  double small_pkt_prob = 0.45;
  double full_pkt_prob = 0.25;
  double mid_pkt_mu = 5.8;  // ~330 B
  double mid_pkt_sigma = 0.6;

  // Within-flow packet inter-arrival (exponential with this mean).
  double mean_iat_s = 0.05;

  // Attack model: fraction of flows that are attacks, drawn uniformly from
  // the listed types.
  double attack_flow_fraction = 0.0;
  std::vector<net::AttackType> attack_types;

  // NetFlow collector behaviour (used when materializing flow traces).
  net::FlowCollectorConfig collector;
};

// A packet trace plus ground-truth per-5-tuple attack labels.
struct LabeledPacketTrace {
  net::PacketTrace packets;
  std::unordered_map<net::FiveTuple, net::AttackType> labels;
};

class TraceSimulator {
 public:
  explicit TraceSimulator(WorkloadConfig config);

  // Generates flows until at least `target_packets` packets exist, then
  // sorts by timestamp.
  LabeledPacketTrace generate_packets(std::size_t target_packets,
                                      Rng& rng) const;

  // Generates a packet trace, runs the NetFlow collector over it, and labels
  // the resulting records. Produces at least `target_records` records.
  net::FlowTrace generate_flows(std::size_t target_records, Rng& rng) const;

  const WorkloadConfig& config() const { return config_; }

  // Address-window sizes (power of two): the legacy 16/18-bit windows, or
  // the next power of two covering the configured IP pool when larger.
  // Observability for the vocabulary-scaling presets.
  std::uint64_t src_address_window() const {
    return static_cast<std::uint64_t>(src_mask_) + 1;
  }
  std::uint64_t dst_address_window() const {
    return static_cast<std::uint64_t>(dst_mask_) + 1;
  }

 private:
  // Appends one benign flow's packets; returns its 5-tuple.
  net::FiveTuple emit_benign_flow(net::PacketTrace& out, Rng& rng) const;
  // Appends one attack burst's packets; records labels.
  void emit_attack_burst(net::PacketTrace& out,
                         std::unordered_map<net::FiveTuple, net::AttackType>& labels,
                         Rng& rng) const;

  std::uint32_t sample_packet_size(net::Protocol proto, Rng& rng) const;
  net::Ipv4Address src_ip(std::size_t rank) const;
  net::Ipv4Address dst_ip(std::size_t rank) const;

  WorkloadConfig config_;
  ZipfSampler src_sampler_;
  ZipfSampler dst_sampler_;
  // Power-of-two address windows: the legacy 16/18-bit windows, widened
  // adaptively when an IP pool outgrows them (vocabulary-scaling studies).
  std::uint32_t src_mask_ = 0xffff;
  std::uint32_t dst_mask_ = 0x3ffff;
  WeightedChoice<std::uint16_t> service_port_choice_;
};

}  // namespace netshare::datagen
