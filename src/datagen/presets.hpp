// Six dataset presets mirroring the paper's evaluation traces, plus the
// public traces used for IP2Vec training and DP pretraining (Insights 2/4).
//
// Substitution note (DESIGN.md): these are simulator parameterizations that
// reproduce each trace's published structure, not the raw data.
#pragma once

#include <string>

#include "datagen/workload.hpp"

namespace netshare::datagen {

enum class DatasetId {
  kUgr16,      // NetFlow-1: Spanish ISP, attacks present
  kCidds,      // NetFlow-2: emulated small business, labeled attacks
  kTon,        // NetFlow-3: IoT telemetry, 9 attack types (~35% attack)
  kCaida,      // PCAP-1: commercial backbone (New York collector, 2018-like)
  kDc,         // PCAP-2: university data center (IMC 2010 "UNI1"-like)
  kCa,         // PCAP-3: collegiate cyber-defense competition
  kCaidaPub,   // public CAIDA backbone (Chicago collector, 2015-like):
               // IP2Vec vocabulary + DP "pretrain-SAME" source
  kDcPub,      // public data-center trace: DP "pretrain-DIFF" source
};

std::string dataset_name(DatasetId id);
bool dataset_is_pcap(DatasetId id);

// Simulator parameterization for a preset.
WorkloadConfig preset_config(DatasetId id);

// Optional preset dial-ups for vocabulary-scaling studies (DESIGN.md §12):
// zero / negative fields keep the preset's published value. Raising the IP
// pool sizes grows the distinct-address vocabulary (the simulator widens its
// address window adaptively, so pools beyond the legacy 16/18-bit windows —
// up to million-IP scale — stay collision-free).
struct PresetOverrides {
  std::size_t num_src_ips = 0;   // 0 = preset default
  std::size_t num_dst_ips = 0;   // 0 = preset default
  double src_zipf_alpha = -1.0;  // < 0 = preset default
  double dst_zipf_alpha = -1.0;  // < 0 = preset default
};
WorkloadConfig preset_config(DatasetId id, const PresetOverrides& ov);

// A generated dataset: packet view for PCAP presets, flow view for NetFlow
// presets (the other member is left empty).
struct DatasetBundle {
  std::string name;
  bool is_pcap = false;
  net::PacketTrace packets;
  net::FlowTrace flows;

  std::size_t size() const { return is_pcap ? packets.size() : flows.size(); }
};

// Generates `target_records` records (packets for PCAP presets, flow records
// for NetFlow presets) with a deterministic seed.
DatasetBundle make_dataset(DatasetId id, std::size_t target_records,
                           std::uint64_t seed);
DatasetBundle make_dataset(DatasetId id, std::size_t target_records,
                           std::uint64_t seed, const PresetOverrides& ov);

}  // namespace netshare::datagen
