#include "datagen/presets.hpp"

#include <stdexcept>

namespace netshare::datagen {

using net::AttackType;
using net::Ipv4Address;

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kUgr16:
      return "UGR16";
    case DatasetId::kCidds:
      return "CIDDS";
    case DatasetId::kTon:
      return "TON";
    case DatasetId::kCaida:
      return "CAIDA";
    case DatasetId::kDc:
      return "DC";
    case DatasetId::kCa:
      return "CA";
    case DatasetId::kCaidaPub:
      return "CAIDA-public-2015";
    case DatasetId::kDcPub:
      return "DC-public";
  }
  return "unknown";
}

bool dataset_is_pcap(DatasetId id) {
  switch (id) {
    case DatasetId::kCaida:
    case DatasetId::kCa:
    case DatasetId::kDc:
    case DatasetId::kCaidaPub:
    case DatasetId::kDcPub:
      return true;
    default:
      return false;
  }
}

WorkloadConfig preset_config(DatasetId id) {
  WorkloadConfig c;
  c.name = dataset_name(id);
  switch (id) {
    case DatasetId::kUgr16:
      // ISP NetFlow: wide address space, strong Zipf skew, classic service
      // mix, small share of DoS / scan / brute-force attacks.
      c.duration_s = 600.0;
      c.num_src_ips = 300;
      c.num_dst_ips = 600;
      c.src_zipf_alpha = 1.05;
      c.dst_zipf_alpha = 1.25;
      c.src_base = Ipv4Address(42, 10, 0, 1);
      c.dst_base = Ipv4Address(88, 20, 0, 1);
      c.service_ports = {{53, 0.32}, {80, 0.24}, {443, 0.22}, {445, 0.08},
                         {21, 0.06}, {25, 0.05}, {22, 0.03}};
      c.service_port_prob = 0.80;
      c.udp_prob = 0.30;
      c.packets_per_flow = {1.2, 1.1, 0.05, 100.0, 1.15, 1e6};
      c.mean_iat_s = 0.15;  // long-lived elephants span many export windows
      c.attack_flow_fraction = 0.02;
      c.attack_types = {AttackType::kDos, AttackType::kPortScan,
                        AttackType::kBruteForce};
      // ISP collectors re-export long-lived flows aggressively (Fig. 1a):
      // short timeouts make the same 5-tuple appear in many NetFlow records.
      c.collector = {8.0, 15.0};
      break;
    case DatasetId::kCidds:
      // Emulated small-business network: few clients and servers, web/email
      // services, heavily labeled attacks.
      c.duration_s = 600.0;
      c.num_src_ips = 24;
      c.num_dst_ips = 12;
      c.src_zipf_alpha = 0.8;
      c.dst_zipf_alpha = 0.9;
      c.src_base = Ipv4Address(192, 168, 100, 1);
      c.dst_base = Ipv4Address(192, 168, 200, 1);
      c.service_ports = {{80, 0.35}, {443, 0.25}, {25, 0.15}, {110, 0.10},
                         {53, 0.10}, {22, 0.05}};
      c.service_port_prob = 0.9;
      c.udp_prob = 0.15;
      c.packets_per_flow = {1.4, 0.9, 0.02, 60.0, 1.3, 1e5};
      c.mean_iat_s = 0.1;
      c.attack_flow_fraction = 0.05;
      c.attack_types = {AttackType::kDos, AttackType::kBruteForce,
                        AttackType::kPortScan};
      break;
    case DatasetId::kTon:
      // IoT telemetry: ~65% normal, rest spread over nine attack types.
      c.duration_s = 600.0;
      c.num_src_ips = 60;
      c.num_dst_ips = 40;
      c.src_zipf_alpha = 0.7;
      c.dst_zipf_alpha = 0.8;
      c.src_base = Ipv4Address(192, 168, 1, 1);
      c.dst_base = Ipv4Address(10, 50, 0, 1);
      c.service_ports = {{53, 0.25}, {80, 0.25}, {443, 0.20}, {445, 0.15},
                         {21, 0.10}, {123, 0.05}};
      c.service_port_prob = 0.85;
      c.udp_prob = 0.35;
      c.packets_per_flow = {1.0, 0.8, 0.02, 40.0, 1.3, 1e5};
      c.mean_iat_s = 0.12;
      // Attack bursts emit several flows each; 0.06 of generation draws
      // being bursts yields roughly the paper's ~35% attack records.
      c.attack_flow_fraction = 0.06;
      c.attack_types = {AttackType::kBackdoor,  AttackType::kDdos,
                        AttackType::kDos,       AttackType::kInjection,
                        AttackType::kMitm,      AttackType::kPassword,
                        AttackType::kRansomware, AttackType::kScanning,
                        AttackType::kXss};
      break;
    case DatasetId::kCaida:
    case DatasetId::kCaidaPub:
      // Backbone PCAP: very skewed addresses, dense small/full packet mix,
      // sub-millisecond inter-arrivals, no labeled attacks. The public
      // (Chicago 2015) variant differs in address space and mix weights.
      c.duration_s = 60.0;
      c.num_src_ips = 500;
      c.num_dst_ips = 800;
      c.src_zipf_alpha = 1.1;
      c.dst_zipf_alpha = 1.2;
      if (id == DatasetId::kCaida) {
        c.src_base = Ipv4Address(12, 30, 0, 1);   // "New York 2018"
        c.dst_base = Ipv4Address(96, 44, 0, 1);
        c.service_ports = {{443, 0.35}, {80, 0.30}, {53, 0.20}, {22, 0.05},
                           {25, 0.05}, {123, 0.05}};
      } else {
        c.src_base = Ipv4Address(64, 12, 0, 1);   // "Chicago 2015"
        c.dst_base = Ipv4Address(128, 95, 0, 1);
        c.service_ports = {{80, 0.40}, {443, 0.25}, {53, 0.20}, {25, 0.06},
                           {22, 0.04}, {123, 0.05}};
      }
      c.service_port_prob = 0.75;
      c.udp_prob = 0.25;
      c.icmp_prob = 0.02;
      c.packets_per_flow = {1.3, 1.0, 0.05, 60.0, 1.2, 1e5};
      c.small_pkt_prob = 0.40;
      c.full_pkt_prob = 0.30;
      c.mean_iat_s = 0.004;
      break;
    case DatasetId::kDc:
    case DatasetId::kDcPub:
      // Data-center PCAP (IMC 2010 "UNI1"-like): small address pool, strongly
      // bimodal packet sizes, heavy intra-rack traffic, tiny inter-arrivals.
      c.duration_s = 60.0;
      c.num_src_ips = 80;
      c.num_dst_ips = 80;
      c.src_zipf_alpha = 0.9;
      c.dst_zipf_alpha = 0.9;
      c.src_base = Ipv4Address(10, 128, 0, 1);
      c.dst_base = Ipv4Address(10, 129, 0, 1);
      c.service_ports = {{80, 0.25}, {443, 0.15}, {3306, 0.25}, {53, 0.10},
                         {445, 0.15}, {8080, 0.10}};
      c.service_port_prob = 0.7;
      c.udp_prob = 0.15;
      // Flow sizes scaled to the repo's record budgets (DESIGN.md): heavy-
      // tailed, but with enough distinct flows at a few thousand packets.
      c.packets_per_flow = {1.2, 1.0, 0.05, 40.0, 1.2, 1e4};
      c.small_pkt_prob = 0.50;
      c.full_pkt_prob = 0.35;
      c.mid_pkt_mu = 5.0;
      c.mean_iat_s = 0.002;
      if (id == DatasetId::kDcPub) {
        c.src_base = Ipv4Address(10, 200, 0, 1);
        c.dst_base = Ipv4Address(10, 201, 0, 1);
      }
      break;
    case DatasetId::kCa:
      // Cyber-defense competition PCAP: competition subnets plus abundant
      // scan / DoS / brute-force traffic.
      c.duration_s = 120.0;
      c.num_src_ips = 120;
      c.num_dst_ips = 60;
      c.src_zipf_alpha = 0.9;
      c.dst_zipf_alpha = 1.0;
      c.src_base = Ipv4Address(172, 16, 10, 1);
      c.dst_base = Ipv4Address(192, 168, 50, 1);
      c.service_ports = {{80, 0.30}, {443, 0.20}, {22, 0.15}, {21, 0.10},
                         {445, 0.15}, {53, 0.10}};
      c.service_port_prob = 0.8;
      c.udp_prob = 0.20;
      c.packets_per_flow = {1.2, 1.0, 0.04, 50.0, 1.25, 1e5};
      c.mean_iat_s = 0.01;
      c.attack_flow_fraction = 0.08;
      c.attack_types = {AttackType::kPortScan, AttackType::kDos,
                        AttackType::kBruteForce};
      break;
  }
  return c;
}

WorkloadConfig preset_config(DatasetId id, const PresetOverrides& ov) {
  WorkloadConfig c = preset_config(id);
  if (ov.num_src_ips > 0) c.num_src_ips = ov.num_src_ips;
  if (ov.num_dst_ips > 0) c.num_dst_ips = ov.num_dst_ips;
  if (ov.src_zipf_alpha >= 0.0) c.src_zipf_alpha = ov.src_zipf_alpha;
  if (ov.dst_zipf_alpha >= 0.0) c.dst_zipf_alpha = ov.dst_zipf_alpha;
  return c;
}

DatasetBundle make_dataset(DatasetId id, std::size_t target_records,
                           std::uint64_t seed) {
  return make_dataset(id, target_records, seed, PresetOverrides{});
}

DatasetBundle make_dataset(DatasetId id, std::size_t target_records,
                           std::uint64_t seed, const PresetOverrides& ov) {
  DatasetBundle bundle;
  bundle.name = dataset_name(id);
  bundle.is_pcap = dataset_is_pcap(id);
  TraceSimulator sim(preset_config(id, ov));
  Rng rng(seed);
  if (bundle.is_pcap) {
    LabeledPacketTrace labeled = sim.generate_packets(target_records, rng);
    bundle.packets = std::move(labeled.packets);
    if (bundle.packets.size() > target_records) {
      bundle.packets.packets.resize(target_records);
    }
  } else {
    bundle.flows = sim.generate_flows(target_records, rng);
  }
  return bundle;
}

}  // namespace netshare::datagen
