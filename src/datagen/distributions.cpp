#include "datagen/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::datagen {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(rng.normal(mu, sigma));
}

double sample_pareto(Rng& rng, double x_m, double alpha) {
  // Inverse CDF: x_m * (1-u)^(-1/alpha).
  double u = rng.uniform();
  return x_m * std::pow(1.0 - u, -1.0 / alpha);
}

double sample_heavy_tail(Rng& rng, const HeavyTailConfig& cfg) {
  double x = rng.bernoulli(cfg.tail_prob)
                 ? sample_pareto(rng, cfg.tail_scale, cfg.tail_alpha)
                 : sample_lognormal(rng, cfg.body_mu, cfg.body_sigma);
  return std::min(x, cfg.max_value);
}

}  // namespace netshare::datagen
