#include "datagen/workload.hpp"

#include <algorithm>
#include <cmath>

#include "net/ports.hpp"

namespace netshare::datagen {

using net::AttackType;
using net::FiveTuple;
using net::Ipv4Address;
using net::PacketRecord;
using net::Protocol;

namespace {

// Scatter pool ranks over the subnet so addresses are distinct and not
// consecutive (consecutive IPs would make bit encodings artificially easy).
constexpr std::uint32_t kAddressStride = 2654435761u;  // Knuth multiplicative

std::uint16_t ephemeral_port(Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
}

std::uint8_t sample_ttl(Rng& rng) {
  static constexpr std::uint8_t kBases[] = {32, 64, 128, 255};
  const auto base = kBases[rng.uniform_int(0, 3)];
  const auto hops = static_cast<std::uint8_t>(rng.uniform_int(1, 24));
  return static_cast<std::uint8_t>(base > hops ? base - hops : 1);
}

}  // namespace

namespace {
// Address window mask for a pool of `n` ranks: at least the legacy window
// (so every preset's addresses are unchanged), widened to the next power of
// two when the pool outgrows it. kAddressStride is odd, so rank -> offset
// stays bijective within any power-of-two window — million-IP pools map to
// distinct addresses.
std::uint32_t address_mask(std::size_t n, std::uint32_t legacy) {
  std::uint32_t mask = legacy;
  while (static_cast<std::uint64_t>(mask) + 1 < n && mask != 0xffffffffu) {
    mask = (mask << 1) | 1u;
  }
  return mask;
}
}  // namespace

TraceSimulator::TraceSimulator(WorkloadConfig config)
    : config_(std::move(config)),
      src_sampler_(config_.num_src_ips, config_.src_zipf_alpha),
      dst_sampler_(config_.num_dst_ips, config_.dst_zipf_alpha),
      src_mask_(address_mask(config_.num_src_ips, 0xffffu)),
      dst_mask_(address_mask(config_.num_dst_ips, 0x3ffffu)) {
  std::vector<std::uint16_t> ports;
  std::vector<double> weights;
  for (const auto& [port, w] : config_.service_ports) {
    ports.push_back(port);
    weights.push_back(w);
  }
  service_port_choice_ = WeightedChoice<std::uint16_t>(std::move(ports),
                                                       std::move(weights));
}

Ipv4Address TraceSimulator::src_ip(std::size_t rank) const {
  const std::uint32_t offset =
      (static_cast<std::uint32_t>(rank) * kAddressStride) & src_mask_;
  return Ipv4Address(config_.src_base.value() + offset);
}

Ipv4Address TraceSimulator::dst_ip(std::size_t rank) const {
  const std::uint32_t offset =
      (static_cast<std::uint32_t>(rank) * kAddressStride) & dst_mask_;
  return Ipv4Address(config_.dst_base.value() + offset);
}

std::uint32_t TraceSimulator::sample_packet_size(Protocol proto,
                                                 Rng& rng) const {
  const std::uint32_t min_size = net::min_packet_size(proto);
  double u = rng.uniform();
  std::uint32_t size;
  if (u < config_.small_pkt_prob) {
    size = min_size + static_cast<std::uint32_t>(rng.uniform_int(0, 12));
  } else if (u < config_.small_pkt_prob + config_.full_pkt_prob) {
    size = static_cast<std::uint32_t>(rng.uniform_int(1400, 1500));
  } else {
    size = static_cast<std::uint32_t>(
        sample_lognormal(rng, config_.mid_pkt_mu, config_.mid_pkt_sigma));
  }
  return std::clamp<std::uint32_t>(size, min_size, 1500);
}

FiveTuple TraceSimulator::emit_benign_flow(net::PacketTrace& out,
                                           Rng& rng) const {
  FiveTuple key;
  key.src_ip = src_ip(src_sampler_.sample(rng));
  key.dst_ip = dst_ip(dst_sampler_.sample(rng));
  key.src_port = ephemeral_port(rng);

  if (!service_port_choice_.empty() &&
      rng.bernoulli(config_.service_port_prob)) {
    key.dst_port = service_port_choice_.sample(rng);
  } else {
    key.dst_port = ephemeral_port(rng);
  }

  if (auto pinned = net::well_known_port_protocol(key.dst_port)) {
    key.protocol = *pinned;
  } else {
    const double u = rng.uniform();
    key.protocol = u < config_.icmp_prob               ? Protocol::kIcmp
                   : u < config_.icmp_prob + config_.udp_prob ? Protocol::kUdp
                                                              : Protocol::kTcp;
  }
  if (key.protocol == Protocol::kIcmp) {
    key.src_port = 0;
    key.dst_port = 0;
  }

  const auto npkts = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(sample_heavy_tail(rng, config_.packets_per_flow))));
  double t = rng.uniform(0.0, config_.duration_s);
  const std::uint8_t ttl = sample_ttl(rng);
  for (std::uint64_t i = 0; i < npkts; ++i) {
    PacketRecord p;
    p.timestamp = t;
    p.key = key;
    p.size = sample_packet_size(key.protocol, rng);
    p.ttl = ttl;
    p.tcp_flags = i == 0 ? 0x02 : 0x10;  // SYN then ACKs
    out.packets.push_back(p);
    t += rng.exponential(1.0 / config_.mean_iat_s);
  }
  return key;
}

void TraceSimulator::emit_attack_burst(
    net::PacketTrace& out,
    std::unordered_map<FiveTuple, AttackType>& labels, Rng& rng) const {
  const AttackType type = config_.attack_types[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(config_.attack_types.size()) - 1))];
  const AttackSignature sig = attack_signature(type);

  // Attackers come from a small dedicated pool so floods share sources.
  const auto attacker_rank = static_cast<std::size_t>(rng.uniform_int(
      0, type == AttackType::kDdos ? 31 : 3));
  const Ipv4Address attacker(config_.src_base.value() + 0xff00 + attacker_rank);
  const Ipv4Address victim = dst_ip(dst_sampler_.sample(rng));

  double burst_start = rng.uniform(0.0, config_.duration_s);
  std::uint16_t sweep_port = static_cast<std::uint16_t>(rng.uniform_int(1, 1024));

  for (int f = 0; f < sig.burst_flows; ++f) {
    FiveTuple key;
    key.src_ip = attacker;
    key.dst_ip = victim;
    key.src_port = ephemeral_port(rng);
    key.protocol = sig.protocol;
    if (sig.sweep_ports) {
      key.dst_port = sweep_port++;
    } else {
      std::vector<double> w;
      w.reserve(sig.dst_ports.size());
      for (const auto& [port, weight] : sig.dst_ports) {
        (void)port;
        w.push_back(weight);
      }
      key.dst_port = sig.dst_ports[rng.categorical(w)].first;
    }

    const auto npkts = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(sample_heavy_tail(rng, sig.packets_per_flow))));
    const double duration = std::max(
        1e-4, sample_lognormal(rng, sig.duration_mu, sig.duration_sigma));
    const double iat = duration / static_cast<double>(npkts);
    double t = burst_start + rng.uniform(0.0, 0.5);
    const std::uint8_t ttl = sample_ttl(rng);
    const std::uint32_t min_size = net::min_packet_size(key.protocol);
    for (std::uint64_t i = 0; i < npkts; ++i) {
      PacketRecord p;
      p.timestamp = t;
      p.key = key;
      p.size = std::clamp<std::uint32_t>(
          static_cast<std::uint32_t>(sample_lognormal(
              rng, sig.bytes_per_packet_mu, sig.bytes_per_packet_sigma)),
          min_size, 1500);
      p.ttl = ttl;
      p.tcp_flags = i == 0 ? 0x02 : 0x10;
      out.packets.push_back(p);
      t += rng.exponential(1.0 / std::max(1e-6, iat));
    }
    labels[key] = type;
  }
}

LabeledPacketTrace TraceSimulator::generate_packets(std::size_t target_packets,
                                                    Rng& rng) const {
  LabeledPacketTrace result;
  result.packets.packets.reserve(target_packets + 256);
  const bool has_attacks =
      config_.attack_flow_fraction > 0.0 && !config_.attack_types.empty();
  while (result.packets.size() < target_packets) {
    if (has_attacks && rng.bernoulli(config_.attack_flow_fraction)) {
      emit_attack_burst(result.packets, result.labels, rng);
    } else {
      emit_benign_flow(result.packets, rng);
    }
  }
  result.packets.sort_by_time();
  return result;
}

net::FlowTrace TraceSimulator::generate_flows(std::size_t target_records,
                                              Rng& rng) const {
  // Packets-per-record ratio is learned adaptively: start with an estimate
  // and regenerate with a larger packet budget if the collector produced too
  // few records.
  net::FlowCollector collector(config_.collector);
  std::size_t packet_budget = target_records * 4;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Rng local = rng.fork();
    LabeledPacketTrace labeled = generate_packets(packet_budget, local);
    net::FlowTrace flows = collector.collect(labeled.packets);
    if (flows.size() >= target_records || attempt == 7) {
      for (auto& r : flows.records) {
        auto it = labeled.labels.find(r.key);
        if (it != labeled.labels.end()) {
          r.is_attack = true;
          r.attack_type = it->second;
        }
      }
      if (flows.size() > target_records) {
        flows.records.resize(target_records);
      }
      return flows;
    }
    packet_budget *= 2;
  }
  return {};
}

}  // namespace netshare::datagen
