#include "ml/matrix.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "ml/kernels.hpp"

namespace netshare::ml {

namespace {
void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

std::atomic<std::uint64_t> g_matrix_allocs{0};
}  // namespace

namespace alloc_counter {
void reset() { g_matrix_allocs.store(0, std::memory_order_relaxed); }
std::uint64_t count() { return g_matrix_allocs.load(std::memory_order_relaxed); }
}  // namespace alloc_counter

namespace detail {
void note_matrix_alloc() {
  g_matrix_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  const std::size_t cap = data_.capacity();
  data_ = other.data_;  // reuses existing storage when capacity suffices
  if (data_.capacity() != cap) detail::note_matrix_alloc();
  return *this;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  const std::size_t cap = data_.capacity();
  data_.resize(rows * cols);
  if (data_.capacity() != cap) detail::note_matrix_alloc();
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     double scale) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.normal() * scale;
  return m;
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                       double hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(lo, hi);
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  kernels::matmul_into(a, b, c);
  return c;
}

Matrix matmul_trans_a(const Matrix& a, const Matrix& b) {
  Matrix c;
  kernels::matmul_trans_a_into(a, b, c);
  return c;
}

Matrix matmul_trans_b(const Matrix& a, const Matrix& b) {
  Matrix c;
  kernels::matmul_trans_b_into(a, b, c);
  return c;
}

namespace reference {

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // ikj order for cache-friendly access to b and c rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_trans_a(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_trans_a: row mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_ptr(k);
    const double* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_trans_b(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_trans_b: col mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_ptr(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace reference

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape mismatch");
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "hadamard_into: shape mismatch");
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  Matrix c = a;
  add_row_broadcast_inplace(c, row);
  return c;
}

void add_row_broadcast_inplace(Matrix& a, const Matrix& row) {
  require(row.rows() == 1 && row.cols() == a.cols(),
          "add_row_broadcast: row must be 1 x cols(a)");
  const double* r = row.row_ptr(0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* arow = a.row_ptr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) arow[j] += r[j];
  }
}

Matrix sum_rows(const Matrix& a) {
  Matrix s(1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) s(0, j) += arow[j];
  }
  return s;
}

void sum_rows_into(const Matrix& a, Matrix& out) {
  out.resize(1, a.cols());
  out.fill(0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) out(0, j) += arow[j];
  }
}

Matrix concat_cols(const Matrix& a, const Matrix& b) {
  Matrix c;
  concat_cols_into(a, b, c);
  return c;
}

void concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out) {
  require(a.rows() == b.rows(), "concat_cols: row mismatch");
  out.resize(a.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = out.row_ptr(i);
    const double* arow = a.row_ptr(i);
    const double* brow = b.row_ptr(i);
    std::copy(arow, arow + a.cols(), crow);
    std::copy(brow, brow + b.cols(), crow + a.cols());
  }
}

std::pair<Matrix, Matrix> split_cols(const Matrix& a, std::size_t k) {
  require(k <= a.cols(), "split_cols: k out of range");
  Matrix left(a.rows(), k), right(a.rows(), a.cols() - k);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    std::copy(arow, arow + k, left.row_ptr(i));
    std::copy(arow + k, arow + a.cols(), right.row_ptr(i));
  }
  return {std::move(left), std::move(right)};
}

Matrix slice_rows(const Matrix& a, std::size_t begin, std::size_t end) {
  Matrix c;
  slice_rows_into(a, begin, end, c);
  return c;
}

void slice_rows_into(const Matrix& a, std::size_t begin, std::size_t end,
                     Matrix& out) {
  require(begin <= end && end <= a.rows(), "slice_rows: range out of bounds");
  out.resize(end - begin, a.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const double* arow = a.row_ptr(i);
    std::copy(arow, arow + a.cols(), out.row_ptr(i - begin));
  }
}

Matrix take_row(const Matrix& a, std::size_t r) { return slice_rows(a, r, r + 1); }

Matrix stack_rows(const std::vector<Matrix>& rows) {
  Matrix c;
  stack_rows_into(rows, c);
  return c;
}

void stack_rows_into(const std::vector<Matrix>& rows, Matrix& out) {
  require(!rows.empty(), "stack_rows: empty input");
  std::size_t total = 0;
  for (const auto& r : rows) {
    require(r.cols() == rows[0].cols(), "stack_rows: col mismatch");
    total += r.rows();
  }
  out.resize(total, rows[0].cols());
  std::size_t at = 0;
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.rows(); ++i) {
      const double* row = r.row_ptr(i);
      std::copy(row, row + r.cols(), out.row_ptr(at++));
    }
  }
}

void stack_rows_into(std::initializer_list<const Matrix*> rows, Matrix& out) {
  require(rows.size() > 0, "stack_rows: empty input");
  const std::size_t cols = (*rows.begin())->cols();
  std::size_t total = 0;
  for (const Matrix* r : rows) {
    require(r->cols() == cols, "stack_rows: col mismatch");
    total += r->rows();
  }
  out.resize(total, cols);
  std::size_t at = 0;
  for (const Matrix* r : rows) {
    for (std::size_t i = 0; i < r->rows(); ++i) {
      const double* row = r->row_ptr(i);
      std::copy(row, row + cols, out.row_ptr(at++));
    }
  }
}

void sigmoid_inplace(Matrix& a) {
  for (auto& v : a.data()) v = detail::sigmoid1(v);
}

void tanh_inplace(Matrix& a) {
  for (auto& v : a.data()) v = std::tanh(v);
}

void randn_fill(Matrix& m, Rng& rng, double scale) {
  for (auto& v : m.data()) v = rng.normal() * scale;
}

double frobenius_norm(const Matrix& a) {
  double s = 0.0;
  for (double v : a.data()) s += v * v;
  return std::sqrt(s);
}

double mean(const Matrix& a) {
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (double v : a.data()) s += v;
  return s / static_cast<double>(a.size());
}

}  // namespace netshare::ml
