#include "ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/kernels.hpp"

namespace netshare::ml {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : w_(Matrix::randn(in, out, rng, std::sqrt(2.0 / static_cast<double>(in)))),
      b_(Matrix::zeros(1, out)) {}

const Matrix& Linear::forward(const Matrix& x) {
  x_cache_ = x;
  // The fused kernel writes product + broadcast bias in one pass (same
  // rounding sequence as matmul_into then add_row_broadcast_inplace). The
  // matmul reads x_cache_, not x, so the call stays correct even if the
  // caller passes this layer's own previous output.
  kernels::matmul_bias_into(x_cache_, w_.value, b_.value, y_);
  return y_;
}

const Matrix& Linear::backward(const Matrix& grad_out) {
  // The accumulating kernel keeps the gradient rounding sequence of the
  // scratch-then-`grad += product` path it replaces.
  kernels::matmul_trans_a_acc_into(x_cache_, grad_out, w_.grad);
  sum_rows_into(grad_out, gb_);
  b_.grad += gb_;
  kernels::matmul_trans_b_into(grad_out, w_.value, gx_);
  return gx_;
}

const Matrix& ActivationLayer::forward(const Matrix& x) {
  if (kind_ == Activation::kRelu || kind_ == Activation::kLeakyRelu) {
    x_cache_ = x;  // only the relu family needs pre-activations in backward
  }
  y_cache_ = x;
  switch (kind_) {
    case Activation::kRelu:
      for (auto& v : y_cache_.data()) v = v > 0 ? v : 0.0;
      break;
    case Activation::kLeakyRelu:
      for (auto& v : y_cache_.data()) v = v > 0 ? v : slope_ * v;
      break;
    case Activation::kTanh:
      tanh_inplace(y_cache_);
      break;
    case Activation::kSigmoid:
      sigmoid_inplace(y_cache_);
      break;
    case Activation::kIdentity:
      break;
  }
  return y_cache_;
}

const Matrix& ActivationLayer::backward(const Matrix& grad_out) {
  Matrix& g = g_;
  g = grad_out;
  switch (kind_) {
    case Activation::kRelu:
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (x_cache_.data()[i] <= 0) g.data()[i] = 0.0;
      }
      break;
    case Activation::kLeakyRelu:
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (x_cache_.data()[i] <= 0) g.data()[i] *= slope_;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < g.size(); ++i) {
        const double y = y_cache_.data()[i];
        g.data()[i] *= 1.0 - y * y;
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < g.size(); ++i) {
        const double y = y_cache_.data()[i];
        g.data()[i] *= y * (1.0 - y);
      }
      break;
    case Activation::kIdentity:
      break;
  }
  return g_;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix y = logits;
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double* row = y.row_ptr(i);
    const double mx = *std::max_element(row, row + y.cols());
    double sum = 0.0;
    for (std::size_t j = 0; j < y.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (std::size_t j = 0; j < y.cols(); ++j) row[j] /= sum;
  }
  return y;
}

std::size_t MixedHead::width() const {
  std::size_t w = 0;
  for (const auto& s : segments_) w += s.width;
  return w;
}

const Matrix& MixedHead::forward(const Matrix& x) {
  if (x.cols() != width()) {
    throw std::invalid_argument("MixedHead::forward: width mismatch");
  }
  Matrix& y = y_cache_;
  y = x;
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double* row = y.row_ptr(i);
    std::size_t at = 0;
    for (const auto& seg : segments_) {
      switch (seg.kind) {
        case OutputSegment::Kind::kSoftmax: {
          const double mx = *std::max_element(row + at, row + at + seg.width);
          double sum = 0.0;
          for (std::size_t j = 0; j < seg.width; ++j) {
            row[at + j] = std::exp(row[at + j] - mx);
            sum += row[at + j];
          }
          for (std::size_t j = 0; j < seg.width; ++j) row[at + j] /= sum;
          break;
        }
        case OutputSegment::Kind::kSigmoid:
          for (std::size_t j = 0; j < seg.width; ++j) {
            row[at + j] = 1.0 / (1.0 + std::exp(-row[at + j]));
          }
          break;
        case OutputSegment::Kind::kTanh:
          for (std::size_t j = 0; j < seg.width; ++j) {
            row[at + j] = std::tanh(row[at + j]);
          }
          break;
        case OutputSegment::Kind::kIdentity:
          break;
      }
      at += seg.width;
    }
  }
  return y_cache_;
}

const Matrix& MixedHead::backward(const Matrix& grad_out) {
  Matrix& g = g_;
  g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    double* grow = g.row_ptr(i);
    const double* yrow = y_cache_.row_ptr(i);
    std::size_t at = 0;
    for (const auto& seg : segments_) {
      switch (seg.kind) {
        case OutputSegment::Kind::kSoftmax: {
          // Jacobian-vector product: g_j = y_j * (g_j - sum_k g_k y_k).
          double dot = 0.0;
          for (std::size_t j = 0; j < seg.width; ++j) {
            dot += grow[at + j] * yrow[at + j];
          }
          for (std::size_t j = 0; j < seg.width; ++j) {
            grow[at + j] = yrow[at + j] * (grow[at + j] - dot);
          }
          break;
        }
        case OutputSegment::Kind::kSigmoid:
          for (std::size_t j = 0; j < seg.width; ++j) {
            const double y = yrow[at + j];
            grow[at + j] *= y * (1.0 - y);
          }
          break;
        case OutputSegment::Kind::kTanh:
          for (std::size_t j = 0; j < seg.width; ++j) {
            const double y = yrow[at + j];
            grow[at + j] *= 1.0 - y * y;
          }
          break;
        case OutputSegment::Kind::kIdentity:
          break;
      }
      at += seg.width;
    }
  }
  return g;
}

}  // namespace netshare::ml
