#include "ml/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace netshare::ml {

std::vector<double> snapshot_parameters(const std::vector<Parameter*>& params) {
  std::vector<double> flat;
  std::size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  flat.reserve(total);
  for (const Parameter* p : params) {
    flat.insert(flat.end(), p->value.data().begin(), p->value.data().end());
  }
  return flat;
}

void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<double>& snapshot) {
  std::size_t at = 0;
  for (Parameter* p : params) {
    if (at + p->value.size() > snapshot.size()) {
      throw std::invalid_argument("restore_parameters: snapshot too small");
    }
    std::copy(snapshot.begin() + static_cast<std::ptrdiff_t>(at),
              snapshot.begin() + static_cast<std::ptrdiff_t>(at + p->value.size()),
              p->value.data().begin());
    at += p->value.size();
  }
  if (at != snapshot.size()) {
    throw std::invalid_argument("restore_parameters: snapshot size mismatch");
  }
}

void save_snapshot_file(const std::vector<double>& snapshot,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_snapshot_file: cannot open " + path);
  const std::uint64_t n = snapshot.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(snapshot.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
}

std::vector<double> load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_snapshot_file: cannot open " + path);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  std::vector<double> flat(n);
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw std::runtime_error("load_snapshot_file: truncated " + path);
  return flat;
}

}  // namespace netshare::ml
