#include "ml/serialize.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ml/health.hpp"

namespace netshare::ml {

namespace {

constexpr std::array<char, 8> kMagic = {'N', 'S', 'S', 'N', 'A', 'P', 'S', 'H'};
constexpr std::uint32_t kVersion = 1;

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<double> snapshot_parameters(const std::vector<Parameter*>& params) {
  std::vector<double> flat;
  snapshot_parameters_into(params, flat);
  return flat;
}

void snapshot_parameters_into(const std::vector<Parameter*>& params,
                              std::vector<double>& out) {
  std::size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  out.resize(total);
  std::size_t at = 0;
  for (const Parameter* p : params) {
    const std::vector<double>& data = p->value.data();
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(at));
    at += data.size();
  }
}

void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<double>& snapshot) {
  // Validate every boundary before writing anything: a rejected snapshot
  // must never leave a partially restored model.
  std::size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  if (total != snapshot.size()) {
    std::ostringstream msg;
    msg << "restore_parameters: snapshot size mismatch: model expects "
        << total << " doubles across " << params.size()
        << " parameters, snapshot holds " << snapshot.size();
    std::size_t at = 0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const std::size_t size = params[i]->value.size();
      if (at + size > snapshot.size()) {
        msg << "; parameter " << i << " (" << params[i]->value.rows() << "x"
            << params[i]->value.cols() << ") spans doubles [" << at << ", "
            << at + size << ") past the snapshot end";
        break;
      }
      at += size;
    }
    throw std::invalid_argument(msg.str());
  }
  std::size_t at = 0;
  for (Parameter* p : params) {
    std::copy(snapshot.begin() + static_cast<std::ptrdiff_t>(at),
              snapshot.begin() + static_cast<std::ptrdiff_t>(at + p->value.size()),
              p->value.data().begin());
    at += p->value.size();
  }
}

void save_snapshot_file(const std::vector<double>& snapshot,
                        const std::string& path) {
  if (health::consume_snapshot_write_fault()) {
    throw SnapshotError(SnapshotError::Kind::kIo,
                        "save_snapshot_file: injected write fault for " + path);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError(SnapshotError::Kind::kIo,
                          "save_snapshot_file: cannot open " + tmp);
    }
    const std::uint64_t n = snapshot.size();
    std::uint32_t crc = crc32(kMagic.data(), kMagic.size());
    crc = crc32(&kVersion, sizeof kVersion, crc);
    crc = crc32(&n, sizeof n, crc);
    crc = crc32(snapshot.data(), n * sizeof(double), crc);
    out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(snapshot.data()),
              static_cast<std::streamsize>(n * sizeof(double)));
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw SnapshotError(SnapshotError::Kind::kIo,
                          "save_snapshot_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(SnapshotError::Kind::kIo,
                        "save_snapshot_file: cannot rename " + tmp + " to " +
                            path);
  }
}

std::vector<double> load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotError::Kind::kIo,
                        "load_snapshot_file: cannot open " + path);
  }
  std::array<char, 8> magic{};
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (in.gcount() != static_cast<std::streamsize>(magic.size())) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        "load_snapshot_file: " + path +
                            " shorter than the 8-byte magic (" +
                            std::to_string(in.gcount()) + " bytes)");
  }
  if (std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    throw SnapshotError(SnapshotError::Kind::kBadMagic,
                        "load_snapshot_file: " + path +
                            " is not a NetShare snapshot (bad magic)");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (in.gcount() != sizeof version) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        "load_snapshot_file: " + path + " truncated in header");
  }
  if (version != kVersion) {
    throw SnapshotError(SnapshotError::Kind::kBadVersion,
                        "load_snapshot_file: " + path + " has format version " +
                            std::to_string(version) + ", this build reads " +
                            std::to_string(kVersion));
  }
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (in.gcount() != sizeof n) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        "load_snapshot_file: " + path + " truncated in header");
  }
  std::vector<double> flat(n);
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (in.gcount() != static_cast<std::streamsize>(n * sizeof(double))) {
    throw SnapshotError(
        SnapshotError::Kind::kTruncated,
        "load_snapshot_file: " + path + " payload truncated: expected " +
            std::to_string(n * sizeof(double)) + " bytes, got " +
            std::to_string(in.gcount()));
  }
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (in.gcount() != sizeof stored) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        "load_snapshot_file: " + path + " missing checksum");
  }
  std::uint32_t crc = crc32(kMagic.data(), kMagic.size());
  crc = crc32(&version, sizeof version, crc);
  crc = crc32(&n, sizeof n, crc);
  crc = crc32(flat.data(), n * sizeof(double), crc);
  if (crc != stored) {
    std::ostringstream msg;
    msg << "load_snapshot_file: " << path << " checksum mismatch: stored 0x"
        << std::hex << stored << ", computed 0x" << crc;
    throw SnapshotError(SnapshotError::Kind::kChecksum, msg.str());
  }
  return flat;
}

}  // namespace netshare::ml
