// Cache-blocked, thread-pool-parallel matmul kernels — the hot path under
// every GAN training step (GRU BPTT, MLP discriminators, baselines).
//
// Determinism contract (see DESIGN.md §5): for every output element the
// reduction over the inner dimension runs in ascending-k order with one
// rounding per partial product, exactly as in the serial reference kernels
// in matrix.cpp, and parallel workers write disjoint row panels of the
// output. Results are therefore bitwise identical to the serial reference
// for any thread count, any block size, and any row partition. The kernel
// translation unit is compiled without FP contraction so no FMA fuses the
// multiply-add rounding steps away.
#pragma once

#include <cstddef>

#include "ml/matrix.hpp"

namespace netshare::ml::kernels {

// Kernel tiers (DESIGN.md §10). Every tier writes bitwise-identical output
// — the tier choice is a speed decision, never a values decision — so the
// dispatcher is free to pick the fastest tier the host supports. kAvx2 is
// the explicitly vectorized tier in ml/kernels_simd.cpp (columns vectorized,
// k-chains untouched, no FMA); kScalar is the blocked tier in this TU.
enum class SimdTier { kScalar = 0, kAvx2 = 1 };

// Fastest tier the executing CPU supports (cached CPUID probe).
SimdTier supported_tier();
// Tier the next kernel dispatch will actually use:
// min(KernelConfig::simd ceiling, NETSHARE_SIMD env cap, supported_tier()).
SimdTier active_tier();
// Re-reads the NETSHARE_SIMD environment variable (cached on first use;
// tests that setenv() at runtime call this to make the change visible).
// Recognized "off" spellings: "off", "scalar", "0".
void reload_simd_env();

// Process-wide kernel tuning. `threads == 0` resolves, in order, to the
// NETSHARE_KERNEL_THREADS environment variable and then to
// std::thread::hardware_concurrency(). Products whose flop count
// (2*rows*inner*cols) falls below `min_parallel_flops` run serially on the
// calling thread; parallelism never changes results, only wall-clock.
struct KernelConfig {
  std::size_t threads = 0;
  std::size_t min_parallel_flops = 1u << 20;
  std::size_t block_k = 64;   // inner-dimension tile (L1 reuse of the A row)
  std::size_t block_j = 256;  // output-column tile (L2 reuse of the B panel)
  // Requested tier ceiling: the dispatcher never exceeds it, and drops to
  // kScalar when the CPU or NETSHARE_SIMD says so. Identical results either
  // way (the property suite in tests/test_simd.cpp enforces this).
  SimdTier simd = SimdTier::kAvx2;
  // Online autotuner toggle for the SIMD tier's register-block width: when
  // on, the first few dispatches of each (op, shape) time one candidate
  // each on the real operands and memoize the winner process-wide. All
  // candidates are bitwise-identical, so tuning never perturbs results.
  bool autotune = true;
  // Nonzero pins every SIMD dispatch to this register-block width (8, 16,
  // or 32 output columns), bypassing the autotuner — the property tests use
  // it to sweep every candidate against the scalar oracle.
  unsigned force_jtile = 0;
};

// Shapes are tuned per operation family; the fused bias variant shares
// kMatmul plans and the accumulating Aᵀ·B variant shares kTransA plans
// (identical inner-loop structure, one memo each).
enum class TuneOp { kMatmul = 0, kTransA = 1, kTransB = 2, kGate = 3 };

// An autotuned execution plan for one (op, shape). Plans select speed only;
// every candidate produces bitwise-identical output.
struct TunePlan {
  unsigned jtile = 16;    // register-block width in output columns
  bool decided = false;   // true once the process-wide autotuner has voted
};

// The process-wide memoized plan for (op, rows × inner × cols). Returns the
// default (undecided) plan until enough dispatches of that shape have been
// timed. Same shapes always yield the same plan within a process.
TunePlan tuned_plan(TuneOp op, std::size_t rows, std::size_t inner,
                    std::size_t cols);

// Reads / replaces the process-wide config. Replacing the thread count lazily
// rebuilds the shared worker pool on the next parallel dispatch; in-flight
// kernels keep the pool they started with.
KernelConfig config();
void set_config(const KernelConfig& cfg);

// Thread count a parallel dispatch would use right now (>= 1).
std::size_t effective_threads();

// True when the calling thread is executing a kernel row-panel task (nested
// dispatches already run serially; callers higher up the stack can use this
// to avoid spawning further parallelism from inside a kernel).
bool in_kernel_task();

// RAII override of the process-wide config (tests, trainer thread budgeting).
class ConfigOverride {
 public:
  explicit ConfigOverride(const KernelConfig& cfg) : saved_(config()) {
    set_config(cfg);
  }
  ~ConfigOverride() { set_config(saved_); }
  ConfigOverride(const ConfigOverride&) = delete;
  ConfigOverride& operator=(const ConfigOverride&) = delete;

 private:
  KernelConfig saved_;
};

// Destination-passing kernels. `c` is reshaped to the product shape via
// Matrix::resize — after a one-iteration warm-up the reshape reuses capacity
// and the call performs no heap allocation. `c` must not alias an input.
// C = A (r×k) * B (k×c).
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);
// C = Aᵀ * B with A stored k×r (i.e. matmul(transpose(a), b)).
void matmul_trans_a_into(const Matrix& a, const Matrix& b, Matrix& c);
// C = A * Bᵀ.
void matmul_trans_b_into(const Matrix& a, const Matrix& b, Matrix& c);

// C = A·B + bias (bias is 1 × cols(b), broadcast to every row). Bitwise
// contract: per element, the full ascending-k product sum first, then one
// bias add — exactly matmul_into followed by add_row_broadcast_inplace,
// fused into one pass (Linear::forward's hot path).
void matmul_bias_into(const Matrix& a, const Matrix& b, const Matrix& bias,
                      Matrix& c);

// acc += Aᵀ·B without materializing the product. `acc` must already have
// the product shape (cols(a) × cols(b)) — it is a gradient accumulator, not
// a destination to reshape. Bitwise contract: per element, the full
// ascending-k product sum forms first, then folds into the existing value
// with one add — exactly matmul_trans_a_into into a temporary followed by
// `acc += tmp` (the backward-pass sequence this kernel replaces).
void matmul_trans_a_acc_into(const Matrix& a, const Matrix& b, Matrix& acc);

// Fused GRU gate: out = act(x·wx + h·wh + bias), written into caller-owned
// buffers (out and a same-shaped scratch for the second product) with no
// temporaries. On the SIMD tier both products stay register-resident and
// `scratch` is left untouched; its contents are unspecified after the call
// on every tier. Bitwise contract: the two products run through the blocked
// matmul kernels above (ascending-k reduction, one rounding per partial
// product); the epilogue then applies, per element, exactly the rounding
// sequence of the unfused composition
//   sigmoid/tanh(add_row_broadcast(matmul(x,wx) + matmul(h,wh), bias))
// — one add of the two products, one bias add, one activation — so the
// fused gate is memcmp-identical to the composed allocating path and to the
// ml::reference::* kernels at every thread count. Lives in this
// -ffp-contract=off translation unit because the two embedded matmuls need
// the per-partial-product rounding guarantee like every other kernel here
// (the adds-only epilogue has no mul+add pair to contract, but keeping the
// whole fused path under one flag regime makes the guarantee auditable).
enum class GateAct { kSigmoid, kTanh };
void gru_gate_into(const Matrix& x, const Matrix& wx, const Matrix& h,
                   const Matrix& wh, const Matrix& bias, GateAct act,
                   Matrix& scratch, Matrix& out);

}  // namespace netshare::ml::kernels
