// AVX2 panel bodies for the kernel layer — the explicitly vectorized tier
// behind the runtime dispatch in ml/kernels.cpp (DESIGN.md §10).
//
// Determinism contract: every body below vectorizes across INDEPENDENT
// output columns only. For each output element the reduction over the inner
// dimension is one scalar chain in ascending-k order, one rounding per
// partial product (mul, then add — never an FMA), exactly as in the scalar
// kernels and the serial reference in matrix.cpp. Since _mm256_add_pd /
// _mm256_mul_pd / _mm256_div_pd are lane-wise IEEE-754 double ops with the
// same round-to-nearest-even behaviour as the corresponding scalar
// operators, every lane computes bit-for-bit the scalar result; the tier
// is therefore memcmp-identical to the scalar tier for all inputs. The
// translation unit is compiled with -mavx2 but WITHOUT -mfma and with
// -ffp-contract=off, so neither intrinsic selection nor the compiler can
// fuse the mul+add rounding steps away.
//
// The interface is raw pointers + strides (in doubles) so this header pulls
// in no SIMD headers and callers need no ISA flags; all functions here must
// only be CALLED after a runtime cpu_supports_avx2() check.
#pragma once

#include <cstddef>

namespace netshare::ml::kernels::simd {

// True when the CPU executing this process supports AVX2 (cached CPUID).
bool cpu_supports_avx2();

// C[r0..r1) = A·B. A is (rows×K, stride lda), B is (K×C, stride ldb),
// C is (rows×C, stride ldc). `jtile` is the register-block width in output
// columns (8, 16, or 32 — autotuned; any other value falls back to 16).
// Preserves the reference kernels' a(i,k)==0.0 skip semantics.
void matmul_panel(const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc, std::size_t K,
                  std::size_t C, std::size_t r0, std::size_t r1,
                  unsigned jtile);

// Same as matmul_panel plus a fused bias-add epilogue: each element gets
// (full ascending-k sum) + bias[j] — the exact rounding sequence of
// matmul_into followed by add_row_broadcast_inplace.
void matmul_bias_panel(const double* a, std::size_t lda, const double* b,
                       std::size_t ldb, const double* bias, double* c,
                       std::size_t ldc, std::size_t K, std::size_t C,
                       std::size_t r0, std::size_t r1, unsigned jtile);

// C[r0..r1) = Aᵀ·B with A stored K×rows (stride lda): c(i,j) reduces over
// a(k,i)·b(k,j) in ascending-k order with the reference a(k,i)==0.0 skip.
void matmul_trans_a_panel(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc,
                          std::size_t K, std::size_t C, std::size_t r0,
                          std::size_t r1, unsigned jtile);

// C[r0..r1) += Aᵀ·B: each output element forms the full ascending-k sum in
// a register first, then adds it to the existing value with one rounding —
// the exact sequence of matmul_trans_a_into followed by `acc += product`.
void matmul_trans_a_acc_panel(const double* a, std::size_t lda,
                              const double* b, std::size_t ldb, double* c,
                              std::size_t ldc, std::size_t K, std::size_t C,
                              std::size_t r0, std::size_t r1, unsigned jtile);

// C[r0..r1) = A·Bᵀ where `bt` is the pre-packed transpose of B produced by
// pack_transpose below: bt[k*C + j] == B(j,k), so the ascending-k inner
// loop reads contiguous lanes. No zero-skip — matching the scalar trans_b
// kernel and the serial reference, which accumulate every partial product.
void matmul_trans_b_panel(const double* a, std::size_t lda, const double* bt,
                          double* c, std::size_t ldc, std::size_t K,
                          std::size_t C, std::size_t r0, std::size_t r1,
                          unsigned jtile);

// bt[k*rows + j] = b[j*ldb + k] for j in [0,rows), k in [0,cols) — the
// packed/transposed B panel for matmul_trans_b_panel. Pure data movement
// (no FP arithmetic), so it cannot perturb any rounding.
void pack_transpose(const double* b, std::size_t rows, std::size_t cols,
                    std::size_t ldb, double* bt);

// Fused GRU gate, rows [r0..r1): out = act((x·wx + h·wh) + bias) with both
// products register-resident. Per element the rounding sequence is: full
// ascending-k sum of x·wx (zero-skip), full ascending-k sum of h·wh
// (zero-skip), one add of the two sums, one bias add, then the activation —
// identical to the scalar tier's matmul_into + matmul_into + fused epilogue.
// act: 0 = sigmoid (1/(1+exp(-v))), 1 = tanh. The transcendental itself is
// evaluated with the same scalar libm call as the scalar tier
// (detail::sigmoid1 / std::tanh); only the surrounding adds/divides are
// vectorized, which is lane-wise exact.
void gate_panel(const double* x, std::size_t ldx, const double* wx,
                std::size_t ldwx, const double* h, std::size_t ldh,
                const double* wh, std::size_t ldwh, const double* bias,
                int act, double* out, std::size_t ldo, std::size_t in_dim,
                std::size_t h_dim, std::size_t gate_dim, std::size_t r0,
                std::size_t r1, unsigned jtile);

}  // namespace netshare::ml::kernels::simd
