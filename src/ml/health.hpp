// Numeric training-health guards (DESIGN.md §9): cheap sampled checks on
// losses, post-clip gradient norms, and parameters; in-memory rollback
// checkpoints; and a deterministic fault-injection hook so every failure
// path is testable without flaky timing.
//
// Contract with the training hot path: on a healthy run the monitor only
// READS model state (the periodic checkpoint copies into a buffer sized at
// construction), so the bitwise-determinism and zero-steady-state-allocation
// contracts of DESIGN.md §5/§6 survive with guards enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml::health {

// Guard policy knobs; embedded in DgConfig / TabularGanConfig.
struct HealthConfig {
  bool enabled = true;
  // Run the non-finite / explosion check every `check_every` iterations
  // (plus once at the final iteration). 0 disables periodic checks.
  int check_every = 20;
  // Refresh the in-memory rollback checkpoint at iterations that are both a
  // passed check and a multiple of `checkpoint_every` (normalized up to a
  // multiple of check_every so a checkpoint is never taken unverified).
  int checkpoint_every = 40;
  // Divergence recoveries attempted before the model is declared failed.
  int max_retries = 2;
  // Learning-rate multiplier applied per retry (lr * backoff^attempt).
  double lr_backoff = 0.5;
  // Explosion thresholds: |loss|, post-clip grad norm, and |parameter|
  // beyond these count as divergence even when still finite.
  double loss_limit = 1e7;
  double grad_norm_limit = 1e7;
  double param_limit = 1e7;
};

// Thrown by a train loop when divergence persists after max_retries
// rollback-and-retry attempts. ChunkedTrainer catches it per chunk and
// falls back to the seed snapshot (chunk fault isolation).
class TrainingDivergedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Counters a model's monitor accumulates across fit() calls; surfaced
// through DoppelGanger::health_stats() into core::TrainReport.
struct TrainHealthStats {
  long long checks = 0;        // health checks run
  long long checkpoints = 0;   // in-memory checkpoints taken
  int rollbacks = 0;           // rollback-and-retry recoveries
  long long injected = 0;      // test-only injected faults observed
  long long last_bad_step = -1;
  std::string last_issue;      // human-readable cause of the last rollback
};

// ---------------------------------------------------------------------------
// Deterministic fault injection (tests only). A global plan, armed via an
// acquire/release atomic so the production cost is one relaxed load and a
// predicted-not-taken branch per guarded step. Arm/clear only while no
// training threads are running (tests do this around fit()).
// ---------------------------------------------------------------------------
struct FaultPlan {
  static constexpr std::uint64_t kAnyModel = ~std::uint64_t{0};
  // Overwrite one parameter with NaN after training step `nan_at_step`
  // (1-based count of completed iterations; < 0 disables).
  long long nan_at_step = -1;
  // false: inject once per model (recovery converges). true: re-inject every
  // time the step is re-reached after a rollback (recovery is impossible and
  // the retry budget exhausts deterministically).
  bool nan_repeats = false;
  // Restrict injection to the model constructed with this seed
  // (ChunkedTrainer seeds chunk c's model with config.seed + 1000 + c).
  std::uint64_t nan_model_seed = kAnyModel;
  // Fail the Nth call to ml::save_snapshot_file (1-based; 0 disables).
  int fail_nth_snapshot_write = 0;
};

void set_fault_plan(const FaultPlan& plan);
void clear_fault_plan();
bool fault_injection_armed();
const FaultPlan& fault_plan();
// Called by save_snapshot_file before writing; true = this write must fail.
bool consume_snapshot_write_fault();

// RAII arm/clear for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) { set_fault_plan(plan); }
  ~ScopedFaultPlan() { clear_fault_plan(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// ---------------------------------------------------------------------------
// Per-model monitor. Owns one flat checkpoint buffer (sized at construction,
// reused forever) over the parameter list it was built with.
// ---------------------------------------------------------------------------
class HealthMonitor {
 public:
  HealthMonitor(const HealthConfig& config, std::vector<Parameter*> params,
                std::uint64_t model_seed);

  // Checkpoints the current (assumed healthy) state as the step-0 baseline
  // of a fit() run. Called at the top of every guarded fit().
  void begin_run();

  bool check_due(long long step) const {
    return config_.check_every > 0 && step % config_.check_every == 0;
  }
  bool checkpoint_due(long long step) const {
    return checkpoint_every_ > 0 && step % checkpoint_every_ == 0;
  }

  // Scans losses, post-clip grad norms, and every parameter for non-finite
  // or beyond-limit values. Returns true when healthy. Reads only; the
  // failure description (allocated on the cold path only) lands in
  // stats().last_issue.
  bool check(long long step, double d_loss, double g_loss, double d_grad_norm,
             double g_grad_norm);

  // Copies all parameters into the preallocated checkpoint buffer.
  void checkpoint(long long step);

  // Restores the last healthy checkpoint into the parameters and returns the
  // step it was taken at (the train loop rewinds its counter to it).
  long long rollback();

  // Test hook: applies the armed FaultPlan at `step` (writes one NaN into
  // the first parameter). No-op unless a plan targeting this model is armed.
  void maybe_inject(long long step);

  const TrainHealthStats& stats() const { return stats_; }

 private:
  HealthConfig config_;
  int checkpoint_every_;  // normalized to a multiple of check_every
  std::vector<Parameter*> params_;
  std::uint64_t model_seed_;
  std::vector<double> last_good_;
  long long last_good_step_ = 0;
  bool injected_once_ = false;
  TrainHealthStats stats_;
};

}  // namespace netshare::ml::health
