// GRU recurrent layer with full backpropagation-through-time — the
// measurement generator of the DoppelGANger-style time-series GAN.
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

// Sequences are std::vector<Matrix> of length T; each element is
// [batch, features]. The hidden state starts at zero.
//
// forward()/backward() return references to member buffers, valid until the
// next forward()/backward() call (see ml/layers.hpp). The per-step caches
// and every backward scratch are persistent members reused across calls, so
// with stable (T, batch) shapes the whole BPTT pass performs no heap
// allocation after the first call. Gate pre-activations go through the
// fused kernels::gru_gate_into, which is bitwise-identical to the unfused
// matmul + add + bias + activation composition.
class Gru {
 public:
  Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  // Runs the full sequence; returns hidden states h_1..h_T and caches
  // everything backward() needs.
  const std::vector<Matrix>& forward(const std::vector<Matrix>& xs);

  // BPTT. grad_hs[t] is dLoss/dh_t (zero matrices allowed). Accumulates
  // parameter gradients and returns dLoss/dx_t for each step.
  const std::vector<Matrix>& backward(const std::vector<Matrix>& grad_hs);

  // Forward-only single step for generation: h_out = GRU(x, h_prev), using
  // exactly the same fused-gate kernel calls as forward(), so a step's
  // output row is bitwise identical to the corresponding row of a full
  // forward() unroll. Does not touch the BPTT caches (a training forward()
  // /backward() pair stays valid across step_into calls). `h_out` must not
  // alias `h_prev`; uses dedicated step scratch, zero-allocation once
  // capacities are warm.
  void step_into(const Matrix& x, const Matrix& h_prev, Matrix& h_out);

  std::vector<Parameter*> parameters();
  void zero_grad();

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

 private:
  struct StepCache {
    Matrix x, h_prev, z, r, c;
    Matrix rh;  // r ⊙ h_prev, reused by backward's candidate-path grads
  };

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  // Update gate z, reset gate r, candidate c.
  Parameter wxz_, whz_, bz_;
  Parameter wxr_, whr_, br_;
  Parameter wxc_, whc_, bc_;
  // Persistent step caches; steps_ tracks the live prefix (cache_ may be
  // longer than the last sequence).
  std::vector<StepCache> cache_;
  std::size_t steps_ = 0;
  // Forward buffers.
  std::vector<Matrix> hs_;  // returned hidden states h_1..h_T
  Matrix h0_;               // zero initial state
  Matrix gate_scratch_;     // second-product scratch for gru_gate_into
  // step_into scratch (kept apart from cache_ so generation never clobbers
  // a pending backward pass).
  Matrix step_z_, step_r_, step_c_, step_rh_;
  // Backward buffers (see backward() for roles).
  std::vector<Matrix> grad_xs_;
  Matrix dh_, daz_, dac_, dar_, dhp_, drh_, dh_carry_;
  Matrix bg_, mm_;
};

}  // namespace netshare::ml
