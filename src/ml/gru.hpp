// GRU recurrent layer with full backpropagation-through-time — the
// measurement generator of the DoppelGANger-style time-series GAN.
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

// Sequences are std::vector<Matrix> of length T; each element is
// [batch, features]. The hidden state starts at zero.
class Gru {
 public:
  Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  // Runs the full sequence; returns hidden states h_1..h_T and caches
  // everything backward() needs.
  std::vector<Matrix> forward(const std::vector<Matrix>& xs);

  // BPTT. grad_hs[t] is dLoss/dh_t (zero matrices allowed). Accumulates
  // parameter gradients and returns dLoss/dx_t for each step.
  std::vector<Matrix> backward(const std::vector<Matrix>& grad_hs);

  std::vector<Parameter*> parameters();
  void zero_grad();

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

 private:
  struct StepCache {
    Matrix x, h_prev, z, r, c;
    Matrix rh;  // r ⊙ h_prev, reused by backward's candidate-path grads
  };

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  // Update gate z, reset gate r, candidate c.
  Parameter wxz_, whz_, bz_;
  Parameter wxr_, whr_, br_;
  Parameter wxc_, whc_, bc_;
  std::vector<StepCache> cache_;
};

}  // namespace netshare::ml
