// Losses. Each returns the scalar loss and writes dLoss/dInput so callers
// can feed it straight into Module::backward.
#pragma once

#include "ml/matrix.hpp"

namespace netshare::ml {

// Mean squared error over all elements; grad is w.r.t. `pred`.
double mse_loss(const Matrix& pred, const Matrix& target, Matrix* grad);

// Binary cross-entropy on logits (numerically stable); target in {0,1}.
double bce_with_logits_loss(const Matrix& logits, const Matrix& target,
                            Matrix* grad);

// Softmax cross-entropy on logits against integer class labels (one label
// per row). Returns mean loss; grad is w.r.t. logits.
double softmax_cross_entropy_loss(const Matrix& logits,
                                  const std::vector<std::size_t>& labels,
                                  Matrix* grad);

// Wasserstein critic objective pieces: the critic maximizes
// E[D(real)] − E[D(fake)], i.e. minimizes the negation. These helpers
// produce the gradient of the *mean* critic output with sign baked in.
// scores: [batch, 1].
double mean_score(const Matrix& scores);
Matrix fill_like(const Matrix& m, double value);

}  // namespace netshare::ml
