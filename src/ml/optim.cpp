#include "ml/optim.hpp"

#include <algorithm>
#include <cmath>

namespace netshare::ml {

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.push_back(Matrix::zeros(p->value.rows(), p->value.cols()));
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ > 0.0) {
      velocity_[i] *= momentum_;
      velocity_[i] += p.grad;
      p.value -= lr_ * velocity_[i];
    } else {
      p.value -= lr_ * p.grad;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Matrix::zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Matrix::zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    auto& g = p.grad.data();
    auto& w = p.value.data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) {
    for (double g : p->grad.data()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Parameter* p : params) {
      for (double& g : p->grad.data()) g *= scale;
    }
  }
  return norm;
}

void clip_weights(const std::vector<Parameter*>& params, double c) {
  for (Parameter* p : params) {
    for (double& w : p->value.data()) w = std::clamp(w, -c, c);
  }
}

}  // namespace netshare::ml
