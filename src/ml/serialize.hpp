// Flat parameter (de)serialization — the mechanism behind NetShare's
// fine-tuning warm starts (Insights 3 and 4): train a seed model, snapshot
// its parameters, load them into per-chunk models before fine-tuning.
#pragma once

#include <string>
#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

// Concatenates all parameter values into one flat vector.
std::vector<double> snapshot_parameters(const std::vector<Parameter*>& params);

// Loads a snapshot produced by snapshot_parameters into an identically-shaped
// parameter list. Throws std::invalid_argument on size mismatch.
void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<double>& snapshot);

// Simple binary file round trip for model checkpoints.
void save_snapshot_file(const std::vector<double>& snapshot,
                        const std::string& path);
std::vector<double> load_snapshot_file(const std::string& path);

}  // namespace netshare::ml
