// Flat parameter (de)serialization — the mechanism behind NetShare's
// fine-tuning warm starts (Insights 3 and 4): train a seed model, snapshot
// its parameters, load them into per-chunk models before fine-tuning.
//
// On-disk snapshot format v1 (DESIGN.md §9), little-endian:
//   [8]  magic  "NSSNAPSH"
//   [4]  u32    version (= 1)
//   [8]  u64    count (number of doubles)
//   [8n] f64    payload
//   [4]  u32    CRC32 over everything above (IEEE, poly 0xEDB88320)
// Files are written to <path>.tmp and atomically renamed into place, so a
// crash mid-write never leaves a half-written file under the final name;
// load rejects truncated / corrupted / foreign files with a typed error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

// Typed snapshot-file failure. Derives from std::runtime_error so callers
// that only care about "load failed" keep working; kind() distinguishes the
// corruption modes for recovery policy and tests.
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,          // cannot open / write / rename
    kTruncated,   // file shorter than its header promises (incl. zero-length)
    kBadMagic,    // not a snapshot file (or pre-v1 raw format)
    kBadVersion,  // snapshot format version this build does not understand
    kChecksum,    // payload bytes do not match the stored CRC32
  };
  SnapshotError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320). `seed` chains calls:
// pass the previous return value to continue a running checksum.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

// Concatenates all parameter values into one flat vector.
std::vector<double> snapshot_parameters(const std::vector<Parameter*>& params);

// Same, into a caller-owned buffer (resized; capacity reused on repeat
// calls, so steady-state callers like the rollback checkpoint never
// reallocate).
void snapshot_parameters_into(const std::vector<Parameter*>& params,
                              std::vector<double>& out);

// Loads a snapshot produced by snapshot_parameters into an identically-shaped
// parameter list. Validates the total size and every per-parameter boundary
// BEFORE writing anything, so a mismatched snapshot never leaves a partially
// restored model; throws std::invalid_argument naming the offending
// parameter with expected/actual sizes.
void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<double>& snapshot);

// Durable snapshot file round trip (format at the top of this header).
// save: temp-file + atomic rename; throws SnapshotError(kIo) on any write
// failure (the temp file is removed). load: throws SnapshotError with the
// matching Kind on open failure, truncation, foreign magic, unknown
// version, or checksum mismatch.
void save_snapshot_file(const std::vector<double>& snapshot,
                        const std::string& path);
std::vector<double> load_snapshot_file(const std::string& path);

}  // namespace netshare::ml
