// Multi-layer perceptron assembled from Linear + activation layers, with an
// optional MixedHead output (for generators emitting one-hot groups +
// bounded continuous fields).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}; hidden activations after every layer but the
  // last; `output` optionally appends an activation or mixed head.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden, Rng& rng);
  Mlp(const std::vector<std::size_t>& dims, Activation hidden,
      Activation output, Rng& rng);
  Mlp(const std::vector<std::size_t>& dims, Activation hidden,
      std::vector<OutputSegment> output_segments, Rng& rng);

  const Matrix& forward(const Matrix& x) override;
  const Matrix& backward(const Matrix& grad_out) override;
  std::vector<Parameter*> parameters() override;

 private:
  void build_hidden(const std::vector<std::size_t>& dims, Activation hidden,
                    Rng& rng);
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace netshare::ml
