// Module interface and elementary layers with manual backprop.
//
// Convention: inputs/outputs are [batch, features]. forward() caches what
// backward() needs; backward() accumulates parameter gradients (so several
// forward/backward passes between optimizer steps sum up, which WGAN critic
// training relies on) and returns the gradient w.r.t. its input (so the
// generator receives gradients *through* the discriminator).
//
// Buffer ownership (DESIGN.md §6): forward()/backward() return a const
// reference to a buffer owned by the module, valid until the module's next
// forward()/backward() call. Callers that need the value past that point
// copy it (`Matrix y = m.forward(x)`); the training hot path chains the
// references without copying. After a one-iteration warm-up with stable
// shapes these calls perform no heap allocation.
#pragma once

#include <memory>
#include <vector>

#include "ml/matrix.hpp"

namespace netshare::ml {

struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v) : value(std::move(v)) {
    grad = Matrix::zeros(value.rows(), value.cols());
  }
  void zero_grad() { grad.fill(0.0); }
};

class Module {
 public:
  virtual ~Module() = default;
  virtual const Matrix& forward(const Matrix& x) = 0;
  virtual const Matrix& backward(const Matrix& grad_out) = 0;
  virtual std::vector<Parameter*> parameters() { return {}; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }
};

// y = x W + b, W: [in, out], b: [1, out].
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  const Matrix& forward(const Matrix& x) override;
  const Matrix& backward(const Matrix& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&w_, &b_}; }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  Parameter w_;
  Parameter b_;
  Matrix x_cache_;
  Matrix y_;             // forward output buffer
  Matrix gx_, gb_;  // backward output / bias-grad scratch
};

enum class Activation { kRelu, kLeakyRelu, kTanh, kSigmoid, kIdentity };

// Elementwise activation layer.
class ActivationLayer : public Module {
 public:
  explicit ActivationLayer(Activation kind, double leaky_slope = 0.2)
      : kind_(kind), slope_(leaky_slope) {}

  const Matrix& forward(const Matrix& x) override;
  const Matrix& backward(const Matrix& grad_out) override;

 private:
  Activation kind_;
  double slope_;
  Matrix y_cache_;  // activations; doubles as the forward output buffer
  Matrix x_cache_;  // pre-activations (kept only for the relu family)
  Matrix g_;        // backward output buffer
};

// Stable row-wise softmax as a pure function (used by losses and MixedHead).
Matrix softmax_rows(const Matrix& logits);

// Output head for mixed records: consecutive column segments are each given
// a softmax (categorical one-hot groups), sigmoid (bounded continuous /
// generation flags), tanh, or identity. This mirrors DoppelGANger's output
// layer over metadata + measurements.
struct OutputSegment {
  enum class Kind { kSoftmax, kSigmoid, kTanh, kIdentity } kind;
  std::size_t width;
};

class MixedHead : public Module {
 public:
  explicit MixedHead(std::vector<OutputSegment> segments)
      : segments_(std::move(segments)) {}

  const Matrix& forward(const Matrix& x) override;
  const Matrix& backward(const Matrix& grad_out) override;

  std::size_t width() const;
  const std::vector<OutputSegment>& segments() const { return segments_; }

 private:
  std::vector<OutputSegment> segments_;
  Matrix y_cache_;  // activations; doubles as the forward output buffer
  Matrix g_;        // backward output buffer
};

}  // namespace netshare::ml
