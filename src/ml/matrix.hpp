// Dense row-major matrix over double — the numeric workhorse for the GAN
// substrate. Minimal by design: exactly the operations the models need.
//
// Allocation discipline (DESIGN.md §6): the training hot path is built from
// the destination-passing `*_into` / `*_inplace` variants below plus
// `Matrix::resize`, which reshapes without reallocating whenever the
// existing capacity suffices. Every heap (re)allocation of a matrix element
// buffer is counted by the process-wide instrumentation in
// `ml::alloc_counter`, which is how the zero-allocation steady-state
// contract is measured rather than asserted.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace netshare::ml {

// Process-wide matrix-buffer allocation counter. Counts one event per heap
// (re)allocation performed on behalf of a Matrix element buffer —
// construction with nonzero size, a copy that grows capacity, or a resize
// past capacity. Relaxed atomics: always compiled in (the increment only
// runs on actual allocation events, which the hot path has none of after
// warm-up), safe to read from tests running threaded kernels.
namespace alloc_counter {
void reset();
std::uint64_t count();
}  // namespace alloc_counter

namespace detail {
void note_matrix_alloc();
inline double sigmoid1(double v) { return 1.0 / (1.0 + std::exp(-v)); }
}  // namespace detail

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (!data_.empty()) detail::note_matrix_alloc();
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    if (!data_.empty()) detail::note_matrix_alloc();
  }
  Matrix(Matrix&&) noexcept = default;
  // Copy assignment reuses the destination's capacity when it suffices (the
  // steady-state case for layer caches); only a capacity growth counts as an
  // allocation.
  Matrix& operator=(const Matrix& other);
  Matrix& operator=(Matrix&&) noexcept = default;

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  // Gaussian init with given scale (He/Xavier handled by callers).
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double scale = 1.0);
  static Matrix uniform(std::size_t rows, std::size_t cols, Rng& rng,
                        double lo, double hi);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Reshapes to rows x cols, reusing the existing buffer when capacity
  // allows (no allocation — the point of the pooled hot path). The element
  // values are unspecified afterwards unless the shape is unchanged; callers
  // overwrite or fill().
  void resize(std::size_t rows, std::size_t cols);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// C = A (r×k) * B (k×c). Dispatches to the blocked (optionally parallel)
// kernel layer in ml/kernels.hpp; results are bitwise identical to the
// reference kernels below for every thread count.
Matrix matmul(const Matrix& a, const Matrix& b);
// C = Aᵀ (k×r→r×k)ᵀ * B — i.e. matmul(transpose(a), b) without materializing.
Matrix matmul_trans_a(const Matrix& a, const Matrix& b);
// C = A * Bᵀ
Matrix matmul_trans_b(const Matrix& a, const Matrix& b);

// Serial triple-loop kernels, kept verbatim from the original implementation.
// They are the bitwise ground truth that tests/test_kernels.cpp checks the
// blocked parallel kernels against and the baseline bench/micro_kernels.cpp
// measures speedups over. Not for production use.
namespace reference {
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix matmul_trans_a(const Matrix& a, const Matrix& b);
Matrix matmul_trans_b(const Matrix& a, const Matrix& b);
}  // namespace reference

Matrix transpose(const Matrix& a);
// Elementwise product.
Matrix hadamard(const Matrix& a, const Matrix& b);
// Adds a 1×c row vector to every row of a (bias broadcast).
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
// In-place variant — same values, no copy (hot path of Linear/GRU forward).
void add_row_broadcast_inplace(Matrix& a, const Matrix& row);
// Sums rows into a 1×c vector (bias gradient).
Matrix sum_rows(const Matrix& a);
// Horizontal concatenation [a | b].
Matrix concat_cols(const Matrix& a, const Matrix& b);
// Splits columns at k: returns ([:, :k], [:, k:]).
std::pair<Matrix, Matrix> split_cols(const Matrix& a, std::size_t k);
// Extracts rows [begin, end).
Matrix slice_rows(const Matrix& a, std::size_t begin, std::size_t end);
// Extracts a single row as 1×c.
Matrix take_row(const Matrix& a, std::size_t r);
// Stacks 1×c rows into an n×c matrix.
Matrix stack_rows(const std::vector<Matrix>& rows);

// --- destination-passing variants (zero-allocation steady state) ----------
// Each writes the same values, in the same element order, as its allocating
// counterpart above; `out` is reshaped via Matrix::resize (capacity-reusing)
// and must not alias any input.
void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out);
void sum_rows_into(const Matrix& a, Matrix& out);
void concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out);
void slice_rows_into(const Matrix& a, std::size_t begin, std::size_t end,
                     Matrix& out);
void stack_rows_into(const std::vector<Matrix>& rows, Matrix& out);
// Row-stacks an explicit list of blocks (e.g. the critic's [real; fake;
// interpolate1; interpolate2] batch) without building a vector of copies.
void stack_rows_into(std::initializer_list<const Matrix*> rows, Matrix& out);

// Elementwise activations, shared by ml/layers.cpp, the GRU, and the fused
// gate kernel in ml/kernels.cpp (one definition of the scalar op each —
// detail::sigmoid1 / std::tanh — so all paths round identically).
void sigmoid_inplace(Matrix& a);
void tanh_inplace(Matrix& a);

// Overwrites m with standard normal draws scaled by `scale`, in the same
// row-major draw order as Matrix::randn, without allocating.
void randn_fill(Matrix& m, Rng& rng, double scale = 1.0);

double frobenius_norm(const Matrix& a);
double mean(const Matrix& a);

}  // namespace netshare::ml
