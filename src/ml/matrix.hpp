// Dense row-major matrix over double — the numeric workhorse for the GAN
// substrate. Minimal by design: exactly the operations the models need.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace netshare::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  // Gaussian init with given scale (He/Xavier handled by callers).
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double scale = 1.0);
  static Matrix uniform(std::size_t rows, std::size_t cols, Rng& rng,
                        double lo, double hi);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// C = A (r×k) * B (k×c). Dispatches to the blocked (optionally parallel)
// kernel layer in ml/kernels.hpp; results are bitwise identical to the
// reference kernels below for every thread count.
Matrix matmul(const Matrix& a, const Matrix& b);
// C = Aᵀ (k×r→r×k)ᵀ * B — i.e. matmul(transpose(a), b) without materializing.
Matrix matmul_trans_a(const Matrix& a, const Matrix& b);
// C = A * Bᵀ
Matrix matmul_trans_b(const Matrix& a, const Matrix& b);

// Serial triple-loop kernels, kept verbatim from the original implementation.
// They are the bitwise ground truth that tests/test_kernels.cpp checks the
// blocked parallel kernels against and the baseline bench/micro_kernels.cpp
// measures speedups over. Not for production use.
namespace reference {
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix matmul_trans_a(const Matrix& a, const Matrix& b);
Matrix matmul_trans_b(const Matrix& a, const Matrix& b);
}  // namespace reference

Matrix transpose(const Matrix& a);
// Elementwise product.
Matrix hadamard(const Matrix& a, const Matrix& b);
// Adds a 1×c row vector to every row of a (bias broadcast).
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
// In-place variant — same values, no copy (hot path of Linear/GRU forward).
void add_row_broadcast_inplace(Matrix& a, const Matrix& row);
// Sums rows into a 1×c vector (bias gradient).
Matrix sum_rows(const Matrix& a);
// Horizontal concatenation [a | b].
Matrix concat_cols(const Matrix& a, const Matrix& b);
// Splits columns at k: returns ([:, :k], [:, k:]).
std::pair<Matrix, Matrix> split_cols(const Matrix& a, std::size_t k);
// Extracts rows [begin, end).
Matrix slice_rows(const Matrix& a, std::size_t begin, std::size_t end);
// Extracts a single row as 1×c.
Matrix take_row(const Matrix& a, std::size_t r);
// Stacks 1×c rows into an n×c matrix.
Matrix stack_rows(const std::vector<Matrix>& rows);

double frobenius_norm(const Matrix& a);
double mean(const Matrix& a);

}  // namespace netshare::ml
