// Optimizers and gradient utilities.
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace netshare::ml {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients (does not zero them).
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }
  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr = 1e-3, double beta1 = 0.5,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

  void set_lr(double lr) { lr_ = lr; }

  // Zeroes the moment estimates and the step counter. Used by the
  // rollback-and-retry recovery (ml/health.hpp): after NaN gradients the
  // moments are poisoned, so restoring parameters alone would re-diverge.
  void reset_state() {
    t_ = 0;
    for (Matrix& m : m_) m.fill(0.0);
    for (Matrix& v : v_) v.fill(0.0);
  }

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_, v_;
};

// Global-norm gradient clipping across all parameters; returns the pre-clip
// norm. No-op if the norm is already <= max_norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

// Weight clipping to [-c, c] (original WGAN; used by the Flow-WGAN baseline).
void clip_weights(const std::vector<Parameter*>& params, double c);

}  // namespace netshare::ml
