#include "ml/workspace.hpp"

namespace netshare::ml {

namespace {
std::uint64_t shape_key(std::size_t rows, std::size_t cols) {
  return (static_cast<std::uint64_t>(rows) << 32) |
         static_cast<std::uint64_t>(cols & 0xffffffffu);
}
}  // namespace

Matrix& Workspace::get(std::size_t rows, std::size_t cols) {
  Pool& pool = pools_[shape_key(rows, cols)];
  if (pool.next < pool.buffers.size()) {
    return *pool.buffers[pool.next++];
  }
  pool.buffers.push_back(std::make_unique<Matrix>(rows, cols));
  ++pool.next;
  return *pool.buffers.back();
}

void Workspace::reset() {
  for (auto& [key, pool] : pools_) pool.next = 0;
}

std::size_t Workspace::pooled_buffers() const {
  std::size_t n = 0;
  for (const auto& [key, pool] : pools_) n += pool.buffers.size();
  return n;
}

std::size_t Workspace::pooled_doubles() const {
  std::size_t n = 0;
  for (const auto& [key, pool] : pools_) {
    for (const auto& m : pool.buffers) n += m->size();
  }
  return n;
}

}  // namespace netshare::ml
