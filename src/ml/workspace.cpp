#include "ml/workspace.hpp"

namespace netshare::ml {

namespace {
std::uint64_t shape_key(std::size_t rows, std::size_t cols) {
  return (static_cast<std::uint64_t>(rows) << 32) |
         static_cast<std::uint64_t>(cols & 0xffffffffu);
}
}  // namespace

Matrix& Workspace::get(std::size_t rows, std::size_t cols) {
  Pool& pool = pools_[shape_key(rows, cols)];
  if (pool.next < pool.buffers.size()) {
    return *pool.buffers[pool.next++];
  }
  pool.buffers.push_back(std::make_unique<Matrix>(rows, cols));
  ++pool.next;
  return *pool.buffers.back();
}

void Workspace::reset() {
  for (auto& [key, pool] : pools_) pool.next = 0;
}

std::size_t Workspace::pooled_buffers() const {
  std::size_t n = 0;
  for (const auto& [key, pool] : pools_) n += pool.buffers.size();
  return n;
}

kernels::TunePlan Workspace::tune_plan(kernels::TuneOp op, std::size_t rows,
                                       std::size_t inner, std::size_t cols) {
  // Key mixes the op into the packed shape key; collisions only cost an
  // extra delegate call, never a wrong plan, because the global memo is the
  // authority and decided plans are immutable.
  const std::uint64_t key = (static_cast<std::uint64_t>(op) << 60) ^
                            (static_cast<std::uint64_t>(rows) << 40) ^
                            (static_cast<std::uint64_t>(inner) << 20) ^
                            static_cast<std::uint64_t>(cols);
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;
  const kernels::TunePlan plan = kernels::tuned_plan(op, rows, inner, cols);
  if (plan.decided) plans_.emplace(key, plan);
  return plan;
}

std::size_t Workspace::pooled_doubles() const {
  std::size_t n = 0;
  for (const auto& [key, pool] : pools_) {
    for (const auto& m : pool.buffers) n += m->size();
  }
  return n;
}

}  // namespace netshare::ml
