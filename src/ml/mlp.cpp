#include "ml/mlp.hpp"

#include <stdexcept>

namespace netshare::ml {

void Mlp::build_hidden(const std::vector<std::size_t>& dims, Activation hidden,
                       Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need >= 2 dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      layers_.push_back(std::make_unique<ActivationLayer>(hidden));
    }
  }
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden, Rng& rng) {
  build_hidden(dims, hidden, rng);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden,
         Activation output, Rng& rng) {
  build_hidden(dims, hidden, rng);
  layers_.push_back(std::make_unique<ActivationLayer>(output));
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden,
         std::vector<OutputSegment> output_segments, Rng& rng) {
  build_hidden(dims, hidden, rng);
  layers_.push_back(std::make_unique<MixedHead>(std::move(output_segments)));
}

const Matrix& Mlp::forward(const Matrix& x) {
  // Chain layer output references without copying; every layer owns its
  // output buffer, so the returned reference is valid until the next call.
  const Matrix* cur = &x;
  for (auto& layer : layers_) cur = &layer->forward(*cur);
  return *cur;
}

const Matrix& Mlp::backward(const Matrix& grad_out) {
  const Matrix* cur = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = &(*it)->backward(*cur);
  }
  return *cur;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> params;
  params.reserve(layers_.size() * 2);  // Linear contributes {W, b}
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace netshare::ml
